#!/usr/bin/env bash
#
# Tier-1 verification: build and run the full test suite twice, once plain
# and once under ASan+UBSan (-DGIS_SANITIZE=address,undefined).  Run from
# anywhere; builds land in build/ and build-san/ next to the sources.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  cmake -S "$ROOT" -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== plain build =="
run_suite "$ROOT/build"

echo "== sanitized build (address,undefined) =="
run_suite "$ROOT/build-san" -DGIS_SANITIZE=address,undefined

echo "OK: both suites passed"

#!/usr/bin/env bash
#
# Tier-1 verification: build and run the full test suite twice, once plain
# and once under ASan+UBSan (-DGIS_SANITIZE=address,undefined), then run
# the multi-threaded suites -- the batch-compilation engine and the
# region-parallel scheduler (ctest label "parallel") -- under TSan
# (-DGIS_SANITIZE=thread; TSan and ASan cannot share a build), and
# finally the cold-path equivalence suite (label "perf-equiv") in a
# -DGIS_SLOWPATH_CHECK=ON build where the incremental scheduler
# cross-checks every update against full recomputation.  Run from
# anywhere; builds land in build/, build-san/, build-tsan/ and
# build-slowcheck/ next to the sources.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

build_tree() {
  local dir="$1"
  shift
  cmake -S "$ROOT" -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

run_suite() {
  local dir="$1"
  shift
  build_tree "$dir" "$@"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== plain build =="
run_suite "$ROOT/build"

echo "== sanitized build (address,undefined) =="
run_suite "$ROOT/build-san" -DGIS_SANITIZE=address,undefined

echo "== sanitized build (thread): parallel + obs + regalloc + persist + opt + perf-equiv + trace suites =="
build_tree "$ROOT/build-tsan" -DGIS_SANITIZE=thread
# The "parallel" label covers gis_parallel_tests: the batch engine, the
# thread pool / cache / hashing units, and the region-parallel scheduling
# determinism tests (tests/region_parallel_test.cpp).  The "obs" label
# covers gis_obs_tests: the event tracer records from region worker
# threads and the counter/decision buffers merge across them, so the
# observability suite runs under TSan too (it is already part of the full
# ASan run above).  The "regalloc" label covers gis_regalloc_tests: the
# allocator rewrites functions that engine worker threads compile
# concurrently and its cache test shares one ScheduleCache across
# engines, so it runs under TSan as well.  The "persist" label covers
# gis_persist_tests: the disk cache tier is written and read by engine
# worker threads, the compile daemon runs an acceptor plus workers over
# one shared cache, and two engines share a cache directory in-process.
# The "opt" label covers gis_opt_tests: the optimizer suite drives
# engines whose workers compile optimized modules concurrently and its
# cache-isolation test shares memory and disk tiers across -O levels.
# The "perf-equiv" label covers gis_coldpath_tests: the incremental
# scheduler's per-region state is built and torn down on region worker
# threads, so the equivalence fuzz runs under TSan too.  The "trace"
# label covers gis_trace_tests: tail-duplicated functions are scheduled
# through the region-parallel wave machinery (its determinism test runs
# --region-jobs 4), so the superblock suite runs under TSan as well.
ctest --test-dir "$ROOT/build-tsan" --output-on-failure -L 'parallel|obs|regalloc|persist|opt|perf-equiv|trace'

echo "== slowpath-check build (GIS_SLOWPATH_CHECK=ON): perf-equiv suite =="
# The incremental cold path re-derives every liveness set, heuristic
# value and per-cycle ready list from scratch and fatal-errors on any
# divergence (DESIGN.md section 14); the equivalence suite then checks
# the fast path pick by pick, not just end to end.
build_tree "$ROOT/build-slowcheck" -DGIS_SLOWPATH_CHECK=ON
ctest --test-dir "$ROOT/build-slowcheck" --output-on-failure -L 'perf-equiv'

echo "== cross-process cache-dir sharing (two gisc processes, one directory) =="
# Beyond the in-process test, run two real gisc processes concurrently
# against one cache directory: the atomic-rename publish protocol must
# hold across processes (no quarantines on a clean path, no crashes),
# and a third run must be served from the disk tier they populated.
GISC="$ROOT/build/examples/example_gisc"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cat > "$WORK/a.c" <<'EOF'
int work(int n) { int s = 0; int i = 0; while (i < n) { s = s + i * i; i = i + 1; } return s; }
int main(int n) { return work(n) + work(n + 1); }
EOF
cp "$WORK/a.c" "$WORK/b.c"
"$GISC" "$WORK/a.c" "$WORK/b.c" --cache-dir "$WORK/cache" --stats-json "$WORK/s1.json" >/dev/null &
P1=$!
"$GISC" "$WORK/b.c" "$WORK/a.c" --cache-dir "$WORK/cache" --stats-json "$WORK/s2.json" >/dev/null &
P2=$!
wait "$P1"
wait "$P2"
"$GISC" "$WORK/a.c" --cache-dir "$WORK/cache" --stats-json "$WORK/s3.json" >/dev/null
# A clean-path run must not leak quarantines: any nonzero count here
# means the publish protocol produced an entry some reader refused.
for s in "$WORK"/s1.json "$WORK"/s2.json "$WORK"/s3.json; do
  if ! grep -q '"quarantines": 0' "$s"; then
    echo "FAIL: quarantine counter leaked in clean-path run ($s):" >&2
    grep '"quarantines"' "$s" >&2 || cat "$s" >&2
    exit 1
  fi
done
if ! grep -q '"disk_hits": [1-9]' "$WORK/s3.json"; then
  echo "FAIL: warm restart saw no disk hits ($WORK/s3.json):" >&2
  grep '"disk_hits"' "$WORK/s3.json" >&2 || cat "$WORK/s3.json" >&2
  exit 1
fi

echo "OK: all suites passed"

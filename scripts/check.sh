#!/usr/bin/env bash
#
# Tier-1 verification: build and run the full test suite twice, once plain
# and once under ASan+UBSan (-DGIS_SANITIZE=address,undefined), then run
# the multi-threaded batch-compilation engine tests under TSan
# (-DGIS_SANITIZE=thread; TSan and ASan cannot share a build).  Run from
# anywhere; builds land in build/, build-san/ and build-tsan/ next to the
# sources.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

build_tree() {
  local dir="$1"
  shift
  cmake -S "$ROOT" -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

run_suite() {
  local dir="$1"
  shift
  build_tree "$dir" "$@"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== plain build =="
run_suite "$ROOT/build"

echo "== sanitized build (address,undefined) =="
run_suite "$ROOT/build-san" -DGIS_SANITIZE=address,undefined

echo "== sanitized build (thread): engine smoke test =="
build_tree "$ROOT/build-tsan" -DGIS_SANITIZE=thread
ctest --test-dir "$ROOT/build-tsan" --output-on-failure \
  -R '^(ThreadPoolTest|ScheduleCacheTest|CompileEngineTest|HashingTest)'

echo "OK: all suites passed"

#!/usr/bin/env bash
#
# Tier-1 verification: build and run the full test suite twice, once plain
# and once under ASan+UBSan (-DGIS_SANITIZE=address,undefined), then run
# the multi-threaded suites -- the batch-compilation engine and the
# region-parallel scheduler (ctest label "parallel") -- under TSan
# (-DGIS_SANITIZE=thread; TSan and ASan cannot share a build).  Run from
# anywhere; builds land in build/, build-san/ and build-tsan/ next to the
# sources.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

build_tree() {
  local dir="$1"
  shift
  cmake -S "$ROOT" -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
}

run_suite() {
  local dir="$1"
  shift
  build_tree "$dir" "$@"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== plain build =="
run_suite "$ROOT/build"

echo "== sanitized build (address,undefined) =="
run_suite "$ROOT/build-san" -DGIS_SANITIZE=address,undefined

echo "== sanitized build (thread): parallel + obs + regalloc suites =="
build_tree "$ROOT/build-tsan" -DGIS_SANITIZE=thread
# The "parallel" label covers gis_parallel_tests: the batch engine, the
# thread pool / cache / hashing units, and the region-parallel scheduling
# determinism tests (tests/region_parallel_test.cpp).  The "obs" label
# covers gis_obs_tests: the event tracer records from region worker
# threads and the counter/decision buffers merge across them, so the
# observability suite runs under TSan too (it is already part of the full
# ASan run above).  The "regalloc" label covers gis_regalloc_tests: the
# allocator rewrites functions that engine worker threads compile
# concurrently and its cache test shares one ScheduleCache across
# engines, so it runs under TSan as well.
ctest --test-dir "$ROOT/build-tsan" --output-on-failure -L 'parallel|obs|regalloc'

echo "OK: all suites passed"

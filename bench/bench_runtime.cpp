//===- bench/bench_runtime.cpp - Experiment E3: Figure 8 -------------------===//
//
// Regenerates the paper's Figure 8 (run-time improvements of global
// scheduling) on the SPEC-shaped workloads.  The paper's shape to
// reproduce (not its absolute numbers):
//
//     PROGRAM    BASE   RTI/USEFUL   RTI/SPECULATIVE
//     LI         312        2.0%          6.9%        (speculation-bound)
//     EQNTOTT     45        7.1%          7.3%        (useful-bound)
//     ESPRESSO   106       -0.5%          0%          (~0)
//     GCC         76       -1.5%          0%          (~0)
//
// BASE is the simulated cycle count with global scheduling disabled (the
// basic-block scheduler stays on, like the paper's base compiler); RTI is
// the percentage improvement of each global level.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace gis;
using namespace gis::bench;

namespace {

const std::vector<Workload> &workloads() {
  static std::vector<Workload> W = specLikeWorkloads();
  return W;
}

void BM_SimulateWorkload(benchmark::State &State) {
  const Workload &W = workloads()[static_cast<size_t>(State.range(0))];
  MachineDescription MD = MachineDescription::rs6k();
  auto M = buildWorkload(W, MD, speculativeOptions());
  for (auto _ : State) {
    uint64_t Cycles = runWorkloadCycles(W, *M, MD);
    benchmark::DoNotOptimize(Cycles);
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_SimulateWorkload)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void printPaperTable() {
  MachineDescription MD = MachineDescription::rs6k();
  struct PaperRow {
    double Useful;
    double Spec;
  };
  const PaperRow Paper[] = {
      {2.0, 6.9}, {7.1, 7.3}, {-0.5, 0.0}, {-1.5, 0.0}};

  std::printf("\nE3 (Figure 8): run-time improvements of global "
              "scheduling\n");
  rule(78);
  std::printf("%-10s %14s %11s %13s   %s\n", "PROGRAM", "BASE(cycles)",
              "RTI/USEFUL", "RTI/SPECUL.", "PAPER(useful/spec)");
  rule(78);
  size_t Idx = 0;
  for (const Workload &W : workloads()) {
    uint64_t Base = workloadCycles(W, MD, baseOptions());
    uint64_t Useful = workloadCycles(W, MD, usefulOptions());
    uint64_t Spec = workloadCycles(W, MD, speculativeOptions());
    double RTIU = 100.0 * (1.0 - double(Useful) / double(Base));
    double RTIS = 100.0 * (1.0 - double(Spec) / double(Base));
    std::printf("%-10s %14llu %10.1f%% %12.1f%%   %.1f%% / %.1f%%\n",
                W.Name.c_str(), static_cast<unsigned long long>(Base), RTIU,
                RTIS, Paper[Idx].Useful, Paper[Idx].Spec);
    ++Idx;
  }
  rule(78);
  std::printf("shape checks: LI gains mostly from speculation; EQNTOTT "
              "mostly from useful\nmotion; ESPRESSO and GCC stay near "
              "zero.\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  return 0;
}

//===- bench/bench_opt.cpp - Experiment E12: optimizer x scheduler ---------===//
//
// The paper schedules IR the XL compiler had already optimized; src/opt/
// recreates that stage.  E12 measures how the mid-end optimizer changes
// the global scheduler's raw material and payoff: run-time cycles under
// useful-only, speculative and speculative+duplication scheduling at each
// -O level, plus the block-size and register-pressure deltas that explain
// the differences (smaller, cleaner blocks leave less local parallelism,
// so global motion matters more).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace gis;
using namespace gis::bench;

namespace {

struct SchedConfig {
  const char *Name;
  PipelineOptions Opts;
};

std::vector<SchedConfig> schedConfigs() {
  std::vector<SchedConfig> C;
  C.push_back({"base", baseOptions()});
  C.push_back({"useful", usefulOptions()});
  C.push_back({"spec", speculativeOptions()});
  PipelineOptions Dup = speculativeOptions();
  Dup.AllowDuplication = true;
  C.push_back({"spec+dup", Dup});
  return C;
}

PipelineOptions withOptLevel(PipelineOptions Opts, unsigned Level) {
  Opts.Opt.Level = Level;
  return Opts;
}

/// Average instructions per (non-empty) layout block across the module's
/// functions -- the block size the global scheduler actually sees.
double averageBlockSize(const Module &M) {
  uint64_t Instrs = 0, Blocks = 0;
  for (const auto &F : M.functions())
    for (BlockId B : F->layout()) {
      if (F->block(B).instrs().empty())
        continue;
      Instrs += F->block(B).instrs().size();
      ++Blocks;
    }
  return Blocks ? static_cast<double>(Instrs) / static_cast<double>(Blocks)
                : 0.0;
}

/// One (workload, opt level, sched config) measurement.
struct Cell {
  uint64_t Cycles = 0;
  double AvgBlock = 0;    ///< block size after opt + scheduling
  unsigned GprPeak = 0;   ///< peak GPR pressure of the scheduled code
  unsigned SpecMotions = 0;
};

Cell measure(const Workload &W, const MachineDescription &MD,
             const PipelineOptions &Opts) {
  auto M = compileMiniCOrDie(W.Source);
  PipelineStats Stats = scheduleModule(*M, MD, Opts);
  Cell C;
  C.Cycles = runWorkloadCycles(W, *M, MD);
  C.AvgBlock = averageBlockSize(*M);
  C.GprPeak = Stats.PressurePeak[0];
  C.SpecMotions = Stats.Global.SpeculativeMotions;
  return C;
}

void BM_OptimizedPipeline(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(State.range(0))];
  const unsigned Level = static_cast<unsigned>(State.range(1));
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts = withOptLevel(speculativeOptions(), Level);
  for (auto _ : State) {
    auto M = buildWorkload(W, MD, Opts);
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(W.Name + formatString(" -O%u", Level));
}
BENCHMARK(BM_OptimizedPipeline)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 2}})
    ->Unit(benchmark::kMillisecond);

void printCycleTable() {
  MachineDescription MD = MachineDescription::rs6k();

  std::printf("\nE12: optimizer x global scheduler (run-time cycles, "
              "RS/6000)\n");
  rule(90);
  std::printf("%-14s", "CONFIG");
  for (const Workload &W : specLikeWorkloads())
    std::printf("%12s", W.Name.c_str());
  std::printf("%12s%8s\n", "TOTAL", "RTI");
  rule(90);

  for (unsigned Level = 0; Level != 3; ++Level) {
    double LevelBase = 0;
    for (const SchedConfig &SC : schedConfigs()) {
      std::printf("-O%u %-10s", Level, SC.Name);
      double Total = 0;
      for (const Workload &W : specLikeWorkloads()) {
        Cell C = measure(W, MD, withOptLevel(SC.Opts, Level));
        Total += static_cast<double>(C.Cycles);
        std::printf("%12llu", static_cast<unsigned long long>(C.Cycles));
      }
      if (LevelBase == 0)
        LevelBase = Total; // the "base" row of this level
      std::printf("%12.0f%7.1f%%\n", Total,
                  100.0 * (1.0 - Total / LevelBase));
    }
  }
  rule(90);
  std::printf("RTI is run-time improvement over the same -O level's base "
              "(local-only) row, the\npaper's Table 2 metric; rows compare "
              "scheduling aggressiveness at fixed -O.\n");
}

void printDeltaTable() {
  MachineDescription MD = MachineDescription::rs6k();

  std::printf("\nE12b: what -O changes about the scheduler's input and "
              "payoff (speculative\nconfiguration, totals across "
              "workloads)\n");
  rule(90);
  std::printf("%-6s%12s%12s%12s%12s%14s\n", "LEVEL", "AVG BLOCK", "GPR PEAK",
              "SPEC MOVES", "USEFUL CYC", "SPEC PAYOFF");
  rule(90);

  std::string Json;
  for (unsigned Level = 0; Level != 3; ++Level) {
    double Useful = 0, Spec = 0, BlockSum = 0;
    unsigned GprPeak = 0, SpecMoves = 0;
    for (const Workload &W : specLikeWorkloads()) {
      Useful += static_cast<double>(
          measure(W, MD, withOptLevel(usefulOptions(), Level)).Cycles);
      Cell C = measure(W, MD, withOptLevel(speculativeOptions(), Level));
      Spec += static_cast<double>(C.Cycles);
      BlockSum += C.AvgBlock;
      GprPeak = GprPeak > C.GprPeak ? GprPeak : C.GprPeak;
      SpecMoves += C.SpecMotions;
    }
    double AvgBlock =
        BlockSum / static_cast<double>(specLikeWorkloads().size());
    double Payoff = 100.0 * (1.0 - Spec / Useful);
    std::printf("-O%u   %12.1f%12u%12u%12.0f%13.1f%%\n", Level, AvgBlock,
                GprPeak, SpecMoves, Useful, Payoff);
    Json += formatString("%s    {\"level\": %u, \"useful_cycles\": %.0f, "
                         "\"spec_cycles\": %.0f,\n     \"avg_block\": %.2f, "
                         "\"gpr_peak\": %u, \"spec_payoff_pct\": %.2f}",
                         Level ? ",\n" : "", Level, Useful, Spec, AvgBlock,
                         GprPeak, Payoff);
  }
  rule(90);
  std::printf("AVG BLOCK is instructions per non-empty block after opt + "
              "scheduling; SPEC\nPAYOFF is the speculative configuration's "
              "improvement over useful-only at the\nsame level.\n");

  std::string Section =
      formatString("{\n    \"levels\": [\n%s\n    ]\n  }", Json.c_str());
  if (mergeJsonSection("BENCH_engine.json", "bench_opt", "opt", Section))
    std::printf("wrote optimizer x scheduler results to BENCH_engine.json\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printCycleTable();
  printDeltaTable();
  return 0;
}

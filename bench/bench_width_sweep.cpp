//===- bench/bench_width_sweep.cpp - Experiment E4: machine width ----------===//
//
// Tests the paper's closing claim (Section 7): "We may expect even bigger
// payoffs in machines with a larger number of computational units."
// Sweeps the number of fixed-point units (1-4, with 2 branch units for
// the wider configurations) and reports the run-time improvement of the
// full scheduling pipeline over the local-only baseline per machine.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace gis;
using namespace gis::bench;

namespace {

MachineDescription machineOfWidth(unsigned FixedUnits) {
  return MachineDescription::superscalar(FixedUnits, 1,
                                         FixedUnits > 1 ? 2 : 1);
}

void BM_ScheduleForWidth(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[0]; // LI, the richest CFG
  MachineDescription MD =
      machineOfWidth(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    auto M = buildWorkload(W, MD, speculativeOptions());
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(MD.name());
}
BENCHMARK(BM_ScheduleForWidth)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

void printPaperTable() {
  std::printf("\nE4: run-time improvement of global scheduling vs machine "
              "width\n");
  rule(70);
  std::printf("%-10s", "PROGRAM");
  for (unsigned Width = 1; Width <= 4; ++Width)
    std::printf("%12s", formatString("fx=%u", Width).c_str());
  std::printf("\n");
  rule(70);

  double TotalBase[5] = {0}, TotalSched[5] = {0};
  for (const Workload &W : specLikeWorkloads()) {
    std::printf("%-10s", W.Name.c_str());
    for (unsigned Width = 1; Width <= 4; ++Width) {
      MachineDescription MD = machineOfWidth(Width);
      uint64_t Base = workloadCycles(W, MD, baseOptions());
      uint64_t Sched = workloadCycles(W, MD, speculativeOptions());
      TotalBase[Width] += static_cast<double>(Base);
      TotalSched[Width] += static_cast<double>(Sched);
      double RTI = 100.0 * (1.0 - double(Sched) / double(Base));
      std::printf("%11.1f%%", RTI);
    }
    std::printf("\n");
  }
  rule(70);
  std::printf("%-10s", "ALL");
  for (unsigned Width = 1; Width <= 4; ++Width)
    std::printf("%11.1f%%",
                100.0 * (1.0 - TotalSched[Width] / TotalBase[Width]));
  std::printf("\n");
  rule(70);
  std::printf("shape check (paper Section 7): the aggregate improvement "
              "grows (or at least\ndoes not shrink) as the machine gets "
              "wider.\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  return 0;
}

//===- bench/bench_trace.cpp - Experiment E14: superblocks, priced ---------===//
//
// Superblock formation pays in code growth for straighter hot paths; a
// branch predictor decides whether the payment was worth it.  E14 prices
// the trade: every SPEC-shaped workload is profiled, scheduled with and
// without profile-guided superblock formation (--superblocks), and the
// resulting dynamic trace is timed under each predictor model (none /
// always-taken / bimodal 2-bit / profile-oracle).  The interlock-only
// machine ("none") cannot see straightened branches, so it understates
// the superblock payoff; the bimodal column is the realistic one and is
// what the regression gate watches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace gis;
using namespace gis::bench;

namespace {

/// Interprets the compiled (possibly scheduled) module and collects the
/// entry function's block/edge profile alongside the dynamic trace.
struct TracedRun {
  std::vector<TraceEntry> Trace;
  ProfileData Profile;
  const Function *Entry = nullptr;
};

TracedRun interpretWorkload(const Workload &W, const Module &M) {
  TracedRun R;
  Interpreter I(M);
  I.enableTrace(true);
  if (W.Setup)
    W.Setup(I, M);
  Function *Entry = const_cast<Module &>(M).findFunction(W.EntryFunction);
  GIS_ASSERT(Entry, "workload entry function missing");
  for (size_t K = 0; K != W.Args.size(); ++K)
    I.setReg(Entry->params()[K], W.Args[K]);
  ExecResult Res = I.run(*Entry, W.MaxSteps);
  GIS_ASSERT(!Res.Trapped, "workload trapped");
  R.Trace = I.trace();
  R.Profile.record(*Entry, I.blockCounts());
  R.Profile.recordEdges(*Entry, I.edgeCounts());
  R.Entry = Entry;
  return R;
}

/// Cycle count of \p Trace under one predictor model; the profile of the
/// same run feeds the profile-oracle predictor.
TimingResult priceTrace(const std::vector<TraceEntry> &Trace,
                        const MachineDescription &MD, PredictorKind Kind,
                        const ProfileData &Profile) {
  TimingSimulator Sim(MD);
  BranchPredictorOptions PO;
  PO.Kind = Kind;
  PO.Profile = &Profile;
  Sim.setPredictor(PO);
  return Sim.simulate(Trace);
}

/// The superblock-signature workload: two diamonds on the *same*
/// condition, so the second branch's direction is fully determined by the
/// path into its join.  A bimodal predictor sees one branch fed by two
/// interleaved streams and mispredicts whenever they alternate; tail
/// duplication clones the join into each arm, giving every path its own
/// (perfectly biased) branch -- the classic predictor payoff of
/// superblock formation, invisible to the interlock-only machine.
Workload correlatedWorkload() {
  Workload C;
  C.Name = "CORR";
  C.Description = "correlated dual diamond: join branch determined by the "
                  "incoming path (tail-duplication-bound)";
  C.Source = R"(
int data[512];
int corr_dispatch(int n) {
  int i = 0;
  int s = 0;
  while (i < n) {
    int v = data[i - (i / 512) * 512];
    if (v > 0) { s = s + v; } else { s = s - v; }
    if (v > 0) { s = s + 1; } else { s = s + 2; }
    i = i + 1;
  }
  print(s);
  return s;
}
)";
  C.EntryFunction = "corr_dispatch";
  C.Args = {4000};
  C.Setup = [](Interpreter &I, const Module &M) {
    const GlobalArray &Data = M.globals().front();
    // 60/40 split with constant alternation: + + + - - repeating, the
    // worst case for one shared 2-bit counter, trivial for two split ones.
    for (int K = 0; K != 512; ++K)
      I.storeWord(Data.Address + 4 * K, K % 5 < 3 ? 1 : -1);
  };
  return C;
}

std::vector<Workload> benchWorkloads() {
  std::vector<Workload> W = specLikeWorkloads();
  W.push_back(correlatedWorkload());
  return W;
}

constexpr PredictorKind Kinds[] = {PredictorKind::None,
                                   PredictorKind::AlwaysTaken,
                                   PredictorKind::Bimodal2Bit,
                                   PredictorKind::ProfileOracle};
constexpr const char *KindNames[] = {"none", "taken", "bimodal", "oracle"};

/// One workload measured under one scheduling configuration: cycles per
/// predictor model, plus the growth the superblock pass charged.
struct Row {
  uint64_t Cycles[4] = {0, 0, 0, 0};
  uint64_t Mispredicts[4] = {0, 0, 0, 0};
  unsigned TailDupInstrs = 0;
  unsigned Superblocks = 0;
};

Row measure(const Workload &W, const MachineDescription &MD,
            bool Superblocks) {
  // Profile a plain compile first: profile-guided formation wants edge
  // counts for the *source* CFG it will carve traces from.
  auto Profiled = compileMiniCOrDie(W.Source);
  TracedRun Prof = interpretWorkload(W, *Profiled);

  auto M = compileMiniCOrDie(W.Source);
  PipelineOptions Opts = speculativeOptions();
  Opts.EnableSuperblocks = Superblocks;
  Opts.Profile = &Prof.Profile;
  PipelineStats Stats = scheduleModule(*M, MD, Opts);

  Row R;
  R.TailDupInstrs = Stats.TailDupInstrs;
  R.Superblocks = Stats.SuperblocksScheduled;
  TracedRun Run = interpretWorkload(W, *M); // fresh profile: block ids moved
  for (unsigned K = 0; K != 4; ++K) {
    TimingResult T = priceTrace(Run.Trace, MD, Kinds[K], Run.Profile);
    R.Cycles[K] = T.Cycles;
    R.Mispredicts[K] = T.Mispredicts;
  }
  return R;
}

void BM_SuperblockPipeline(benchmark::State &State) {
  const Workload W = benchWorkloads()[static_cast<size_t>(State.range(0))];
  MachineDescription MD = MachineDescription::rs6k();
  auto Profiled = compileMiniCOrDie(W.Source);
  TracedRun Prof = interpretWorkload(W, *Profiled);
  PipelineOptions Opts = speculativeOptions();
  Opts.EnableSuperblocks = true;
  Opts.Profile = &Prof.Profile;
  for (auto _ : State) {
    auto M = compileMiniCOrDie(W.Source);
    scheduleModule(*M, MD, Opts);
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(W.Name + " --superblocks");
}
BENCHMARK(BM_SuperblockPipeline)
    ->ArgsProduct({{0, 1, 2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

void printTable() {
  MachineDescription MD = MachineDescription::rs6k();

  std::printf("\nE14: superblock formation priced by branch predictor "
              "(run-time cycles,\nspeculative pipeline, RS/6000)\n");
  rule(96);
  std::printf("%-10s%-8s%12s%12s%12s%12s%8s%8s\n", "WORKLOAD", "SBLKS",
              "NONE", "TAKEN", "BIMODAL", "ORACLE", "DUP", "REGNS");
  rule(96);

  std::string Json;
  double GateRatio = 0; // bimodal cycles, superblocks on / off, LI row
  for (const Workload &W : benchWorkloads()) {
    Row Off = measure(W, MD, /*Superblocks=*/false);
    Row On = measure(W, MD, /*Superblocks=*/true);
    for (const Row *R : {&Off, &On}) {
      bool Sb = R == &On;
      std::printf("%-10s%-8s%12llu%12llu%12llu%12llu%8u%8u\n",
                  W.Name.c_str(), Sb ? "on" : "off",
                  static_cast<unsigned long long>(R->Cycles[0]),
                  static_cast<unsigned long long>(R->Cycles[1]),
                  static_cast<unsigned long long>(R->Cycles[2]),
                  static_cast<unsigned long long>(R->Cycles[3]),
                  R->TailDupInstrs, R->Superblocks);
      for (unsigned K = 0; K != 4; ++K)
        Json += formatString(
            "%s    {\"workload\": \"%s\", \"superblocks\": %s, "
            "\"predictor\": \"%s\",\n     \"cycles\": %llu, "
            "\"mispredicts\": %llu}",
            Json.empty() ? "" : ",\n", W.Name.c_str(),
            Sb ? "true" : "false", KindNames[K],
            static_cast<unsigned long long>(R->Cycles[K]),
            static_cast<unsigned long long>(R->Mispredicts[K]));
    }
    if (W.Name == "CORR" && Off.Cycles[2] != 0)
      GateRatio = static_cast<double>(On.Cycles[2]) /
                  static_cast<double>(Off.Cycles[2]);
  }
  rule(96);
  std::printf("DUP is tail-duplicated instructions, REGNS the superblock "
              "regions rescheduled.\nThe bimodal column prices "
              "mispredictions the way real front ends pay them; the\n"
              "CORR bimodal on/off ratio is the regression gate.\n");

  // Regression gate: the branch-heavy interpreter workload must keep its
  // superblock win under the realistic (bimodal) predictor.  The gate
  // trips when the on/off cycle ratio exceeds the recorded ratio by more
  // than the tolerance -- growth without payoff.
  std::string Section = formatString(
      "{\n    \"points\": [\n%s\n    ],\n"
      "    \"gate_workload\": \"CORR\",\n"
      "    \"gate_predictor\": \"bimodal\",\n"
      "    \"gate_cycles_ratio\": %.4f,\n"
      "    \"gate_ratio_tolerance\": 0.02\n  }",
      Json.c_str(), GateRatio);
  if (mergeJsonSection("BENCH_engine.json", "bench_trace", "trace", Section))
    std::printf("wrote superblock x predictor results to BENCH_engine.json\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  return 0;
}

//===- bench/bench_pipeline_ablation.cpp - Experiment E6: design choices ---===//
//
// Ablation of the Section 6 design decisions: each stage of the pipeline
// (loop unrolling, loop rotation, speculative level, register renaming,
// the final basic-block pass) is toggled individually and the run-time
// improvement over the local-only baseline is reported per workload.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "obs/Trace.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace gis;
using namespace gis::bench;

namespace {

struct Config {
  const char *Name;
  PipelineOptions Opts;
};

std::vector<Config> configs() {
  std::vector<Config> C;
  C.push_back({"full pipeline", speculativeOptions()});

  PipelineOptions NoUnroll = speculativeOptions();
  NoUnroll.EnableUnroll = false;
  C.push_back({"- unrolling", NoUnroll});

  PipelineOptions NoRotate = speculativeOptions();
  NoRotate.EnableRotate = false;
  C.push_back({"- rotation", NoRotate});

  PipelineOptions NoSpec = usefulOptions();
  C.push_back({"- speculation", NoSpec});

  PipelineOptions NoRename = speculativeOptions();
  NoRename.EnableRenaming = false;
  C.push_back({"- renaming", NoRename});

  PipelineOptions NoPreRename = speculativeOptions();
  NoPreRename.EnablePreRenaming = false;
  C.push_back({"- pre-renaming", NoPreRename});

  PipelineOptions NoLocal = speculativeOptions();
  NoLocal.RunLocalScheduler = false;
  C.push_back({"- local pass", NoLocal});

  PipelineOptions Deep = speculativeOptions();
  Deep.MaxSpecDepth = 3;
  Deep.OnlyTwoInnerLevels = false;
  C.push_back({"+ deep spec (ext)", Deep});

  PipelineOptions Dup = speculativeOptions();
  Dup.AllowDuplication = true;
  C.push_back({"+ duplication (ext)", Dup});

  PipelineOptions Opt = speculativeOptions();
  Opt.Opt.Level = 2;
  C.push_back({"+ optimizer -O2", Opt});
  return C;
}

void BM_FullPipeline(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(State.range(0))];
  MachineDescription MD = MachineDescription::rs6k();
  for (auto _ : State) {
    auto M = buildWorkload(W, MD, speculativeOptions());
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void printPaperTable() {
  MachineDescription MD = MachineDescription::rs6k();
  std::vector<Config> Cs = configs();

  std::printf("\nE6: pipeline-stage ablation (run-time improvement over "
              "base, RS/6000)\n");
  rule(90);
  std::printf("%-19s", "CONFIG");
  for (const Workload &W : specLikeWorkloads())
    std::printf("%12s", W.Name.c_str());
  std::printf("%12s\n", "ALL");
  rule(90);

  for (const Config &C : Cs) {
    std::printf("%-19s", C.Name);
    double TotalBase = 0, TotalSched = 0;
    for (const Workload &W : specLikeWorkloads()) {
      uint64_t Base = workloadCycles(W, MD, baseOptions());
      uint64_t Sched = workloadCycles(W, MD, C.Opts);
      TotalBase += static_cast<double>(Base);
      TotalSched += static_cast<double>(Sched);
      std::printf("%11.1f%%", 100.0 * (1.0 - double(Sched) / double(Base)));
    }
    std::printf("%11.1f%%\n", 100.0 * (1.0 - TotalSched / TotalBase));
  }
  rule(90);
  std::printf("each '-' row removes one stage from the paper's Section 6 "
              "flow; '+ deep spec'\nexercises the paper's future-work "
              "extension (3-branch speculation, all region\nlevels).\n");
}

// Compile-time cost of the transactional layer (checkpointing plus the
// structural and semantic verifiers), measured as scheduling-only seconds
// relative to a transactions-off run.  The differential oracle is far too
// slow for release compiles and stays off by default; set GIS_BENCH_ORACLE
// to include it as a debug row.
void printTransactionTable() {
  MachineDescription MD = MachineDescription::rs6k();
  std::vector<Config> Cs;

  PipelineOptions Off = speculativeOptions();
  Off.EnableTransactions = false;
  Cs.push_back({"transactions off", Off});

  PipelineOptions Snap = speculativeOptions();
  Snap.VerifyStructural = false;
  Snap.VerifySemantic = false;
  Cs.push_back({"+ checkpoint/rollback", Snap});

  PipelineOptions Struct = speculativeOptions();
  Struct.VerifySemantic = false;
  Cs.push_back({"+ structural verify", Struct});

  Cs.push_back({"+ semantic verify", speculativeOptions()});

  if (std::getenv("GIS_BENCH_ORACLE")) {
    PipelineOptions Oracle = speculativeOptions();
    Oracle.EnableOracle = true;
    Cs.push_back({"+ oracle (debug)", Oracle});
  }

  std::printf("\nE7: transactional-layer compile-time overhead "
              "(scheduling-only, RS/6000)\n");
  rule(90);
  std::printf("%-22s", "CONFIG");
  for (const Workload &W : specLikeWorkloads())
    std::printf("%12s", W.Name.c_str());
  std::printf("%12s%10s\n", "OVERHEAD", "ROLLBACKS");
  rule(90);

  double Reference = 0;
  for (const Config &C : Cs) {
    std::printf("%-22s", C.Name);
    double Total = 0;
    unsigned Rollbacks = 0;
    for (const Workload &W : specLikeWorkloads()) {
      double Secs = scheduleOnlySeconds(W, MD, C.Opts);
      Total += Secs;
      Rollbacks += scheduleRollbacks(W, MD, C.Opts);
      std::printf("%10.2fms", Secs * 1e3);
    }
    if (Reference == 0)
      Reference = Total;
    std::printf("%11.1f%%%10u\n", 100.0 * (Total / Reference - 1.0),
                Rollbacks);
  }
  rule(90);
  std::printf("OVERHEAD is total scheduling time relative to the first "
              "row; ROLLBACKS must be 0\noutside fault injection "
              "(GIS_FAULT_INJECT).\n");
}

// Compile-time cost of the observability subsystem (src/obs/), measured
// like E7 as scheduling-only seconds.  The guarded number is the cost of
// the *default* configuration -- counters on, tracer off -- over a run
// with all collection disabled: the issue budget is < 2%.  The result is
// merged into BENCH_engine.json (key "observability") next to the engine
// throughput numbers so the perf trajectory is machine-trackable.
/// Scheduling-only seconds for one workload, measured directly: the
/// module is compiled once and each timed call schedules fresh copies of
/// its functions.  Minimum of several trials -- the obs deltas under test
/// are percent-level, far below the noise of a single differenced
/// measurement (scheduleOnlySeconds subtracts two independently noisy
/// quantities).
double minScheduleSeconds(const Workload &W, const MachineDescription &MD,
                          const PipelineOptions &Opts) {
  auto M = compileMiniCOrDie(W.Source);
  double Best = 1e9;
  for (unsigned Trial = 0; Trial != 5; ++Trial) {
    double Secs = secondsPerCall([&] {
      for (const auto &F : M->functions()) {
        Function Copy = *F;
        schedulePipeline(Copy, MD, Opts);
      }
    });
    Best = Best < Secs ? Best : Secs;
  }
  return Best;
}

void printObservabilityTable() {
  MachineDescription MD = MachineDescription::rs6k();
  std::vector<Config> Cs;

  PipelineOptions Off = speculativeOptions();
  Off.CollectCounters = false;
  Off.CollectDecisions = false;
  Cs.push_back({"obs off", Off});

  Cs.push_back({"counters (default)", speculativeOptions()});

  PipelineOptions Decisions = speculativeOptions();
  Decisions.CollectDecisions = true;
  Cs.push_back({"+ decision log", Decisions});

  Cs.push_back({"+ tracer on", speculativeOptions()});

  std::printf("\nE8: observability compile-time overhead "
              "(scheduling-only, RS/6000)\n");
  rule(90);
  std::printf("%-22s", "CONFIG");
  for (const Workload &W : specLikeWorkloads())
    std::printf("%12s", W.Name.c_str());
  std::printf("%12s\n", "OVERHEAD");
  rule(90);

  double Reference = 0, DefaultOverhead = 0, TracerOverhead = 0;
  for (size_t K = 0; K != Cs.size(); ++K) {
    const Config &C = Cs[K];
    const bool Traced = K == 3; // "+ tracer on"
    if (Traced)
      obs::Tracer::instance().enable();
    std::printf("%-22s", C.Name);
    double Total = 0;
    for (const Workload &W : specLikeWorkloads()) {
      double Secs = minScheduleSeconds(W, MD, C.Opts);
      Total += Secs;
      std::printf("%10.2fms", Secs * 1e3);
    }
    if (Traced) {
      obs::Tracer::instance().disable();
      obs::Tracer::instance().clear();
    }
    if (Reference == 0)
      Reference = Total;
    double Overhead = 100.0 * (Total / Reference - 1.0);
    if (K == 1)
      DefaultOverhead = Overhead;
    if (Traced)
      TracerOverhead = Overhead;
    std::printf("%11.1f%%\n", Overhead);
  }
  rule(90);
  std::printf("the guarded number is row 2 (the default configuration: "
              "counters on, tracer\noff) -- budget < 2%%.  '+ tracer on' "
              "includes per-cycle instant events.\n");

  // Merge into BENCH_engine.json next to the engine throughput numbers.
  std::string Section = formatString("{\n"
                                     "    \"default_overhead_pct\": %.2f,\n"
                                     "    \"tracer_on_overhead_pct\": %.2f,\n"
                                     "    \"budget_pct\": 2.0\n  }",
                                     DefaultOverhead, TracerOverhead);
  if (!mergeJsonSection("BENCH_engine.json", "bench_pipeline_ablation",
                        "observability", Section))
    return;
  std::printf("wrote observability overhead to BENCH_engine.json\n");
  if (DefaultOverhead >= 2.0)
    std::printf("WARNING: default observability overhead %.2f%% exceeds "
                "the 2%% budget\n",
                DefaultOverhead);
}

// Compile-time cost of each mid-end optimizer pass at -O2, from the
// OptStats::PassTimes records the pass manager keeps per committed or
// rolled-back pass transaction.  Complements E12 (bench_opt.cpp), which
// measures the run-time side of the same configuration.
void printOptPassTable() {
  MachineDescription MD = MachineDescription::rs6k();
  PipelineOptions Opts = speculativeOptions();
  Opts.Opt.Level = 2;

  std::printf("\nE6b: per-pass optimizer compile time at -O2 "
              "(milliseconds)\n");
  rule(90);
  std::printf("%-19s", "PASS");
  for (const Workload &W : specLikeWorkloads())
    std::printf("%12s", W.Name.c_str());
  std::printf("%12s\n", "ALL");
  rule(90);

  std::array<std::vector<double>, opt::NumOptPasses> Times;
  for (auto &T : Times)
    T.assign(specLikeWorkloads().size(), 0.0);
  for (size_t WK = 0; WK != specLikeWorkloads().size(); ++WK) {
    auto M = compileMiniCOrDie(specLikeWorkloads()[WK].Source);
    PipelineStats Stats = scheduleModule(*M, MD, Opts);
    for (const opt::OptPassTime &PT : Stats.Opt.PassTimes)
      Times[static_cast<unsigned>(PT.Pass)][WK] += PT.Seconds;
  }
  for (opt::PassId P : opt::passPipeline()) {
    std::printf("%-19s", opt::passInfo(P).Name);
    double Total = 0;
    for (size_t WK = 0; WK != specLikeWorkloads().size(); ++WK) {
      double Ms = Times[static_cast<unsigned>(P)][WK] * 1e3;
      Total += Ms;
      std::printf("%10.3fms", Ms);
    }
    std::printf("%10.3fms\n", Total);
  }
  rule(90);
  std::printf("per-pass wall-clock includes the transactional wrapper "
              "(checkpoint + verify);\nsee E7 for the wrapper's own "
              "cost.\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  printOptPassTable();
  printTransactionTable();
  printObservabilityTable();
  return 0;
}

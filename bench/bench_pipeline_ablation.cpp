//===- bench/bench_pipeline_ablation.cpp - Experiment E6: design choices ---===//
//
// Ablation of the Section 6 design decisions: each stage of the pipeline
// (loop unrolling, loop rotation, speculative level, register renaming,
// the final basic-block pass) is toggled individually and the run-time
// improvement over the local-only baseline is reported per workload.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace gis;
using namespace gis::bench;

namespace {

struct Config {
  const char *Name;
  PipelineOptions Opts;
};

std::vector<Config> configs() {
  std::vector<Config> C;
  C.push_back({"full pipeline", speculativeOptions()});

  PipelineOptions NoUnroll = speculativeOptions();
  NoUnroll.EnableUnroll = false;
  C.push_back({"- unrolling", NoUnroll});

  PipelineOptions NoRotate = speculativeOptions();
  NoRotate.EnableRotate = false;
  C.push_back({"- rotation", NoRotate});

  PipelineOptions NoSpec = usefulOptions();
  C.push_back({"- speculation", NoSpec});

  PipelineOptions NoRename = speculativeOptions();
  NoRename.EnableRenaming = false;
  C.push_back({"- renaming", NoRename});

  PipelineOptions NoPreRename = speculativeOptions();
  NoPreRename.EnablePreRenaming = false;
  C.push_back({"- pre-renaming", NoPreRename});

  PipelineOptions NoLocal = speculativeOptions();
  NoLocal.RunLocalScheduler = false;
  C.push_back({"- local pass", NoLocal});

  PipelineOptions Deep = speculativeOptions();
  Deep.MaxSpecDepth = 3;
  Deep.OnlyTwoInnerLevels = false;
  C.push_back({"+ deep spec (ext)", Deep});

  PipelineOptions Dup = speculativeOptions();
  Dup.AllowDuplication = true;
  C.push_back({"+ duplication (ext)", Dup});
  return C;
}

void BM_FullPipeline(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(State.range(0))];
  MachineDescription MD = MachineDescription::rs6k();
  for (auto _ : State) {
    auto M = buildWorkload(W, MD, speculativeOptions());
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_FullPipeline)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void printPaperTable() {
  MachineDescription MD = MachineDescription::rs6k();
  std::vector<Config> Cs = configs();

  std::printf("\nE6: pipeline-stage ablation (run-time improvement over "
              "base, RS/6000)\n");
  rule(90);
  std::printf("%-19s", "CONFIG");
  for (const Workload &W : specLikeWorkloads())
    std::printf("%12s", W.Name.c_str());
  std::printf("%12s\n", "ALL");
  rule(90);

  for (const Config &C : Cs) {
    std::printf("%-19s", C.Name);
    double TotalBase = 0, TotalSched = 0;
    for (const Workload &W : specLikeWorkloads()) {
      uint64_t Base = workloadCycles(W, MD, baseOptions());
      uint64_t Sched = workloadCycles(W, MD, C.Opts);
      TotalBase += static_cast<double>(Base);
      TotalSched += static_cast<double>(Sched);
      std::printf("%11.1f%%", 100.0 * (1.0 - double(Sched) / double(Base)));
    }
    std::printf("%11.1f%%\n", 100.0 * (1.0 - TotalSched / TotalBase));
  }
  rule(90);
  std::printf("each '-' row removes one stage from the paper's Section 6 "
              "flow; '+ deep spec'\nexercises the paper's future-work "
              "extension (3-branch speculation, all region\nlevels).\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  return 0;
}

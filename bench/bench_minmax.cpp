//===- bench/bench_minmax.cpp - Experiment E1: Figures 2/5/6 ---------------===//
//
// Regenerates the paper's headline result on its running example: the
// minmax loop takes 20-22 cycles per iteration unscheduled (Figure 2),
// 12-13 after useful-only global scheduling (Figure 5) and 11-12 after
// adding 1-branch speculation (Figure 6).
//
// The google-benchmark entries measure the scheduler's own running time on
// the example; the paper-comparison table is printed afterwards.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "sched/GlobalScheduler.h"

#include <benchmark/benchmark.h>

using namespace gis;
using namespace gis::bench;

namespace {

std::unique_ptr<Module> scheduledMinmax(SchedLevel Level) {
  auto M = minmaxFigure2Module();
  if (Level == SchedLevel::None)
    return M;
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, 0);
  GlobalSchedOptions Opts;
  Opts.Level = Level;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GS.scheduleRegion(F, R);
  return M;
}

double cyclesPerIteration(const Module &M, int Updates) {
  const Function &F = *M.functions()[0];
  Interpreter I(M);
  I.enableTrace(true);
  seedMinmaxData(I, 130, Updates);
  ExecResult R = I.run(F);
  GIS_ASSERT(!R.Trapped, "minmax trapped");
  TimingSimulator Sim(MachineDescription::rs6k());
  Sim.recordIssueTimes(true);
  TimingResult T = Sim.simulate(I.trace());
  std::vector<size_t> Markers;
  for (size_t K = 0; K != I.trace().size(); ++K)
    if (F.instr(I.trace()[K].Instr).opcode() == Opcode::BT)
      Markers.push_back(K);
  return steadyStatePeriod(T.IssueTimes, Markers);
}

void BM_GlobalScheduleMinmax(benchmark::State &State) {
  SchedLevel Level = static_cast<SchedLevel>(State.range(0));
  for (auto _ : State) {
    auto M = scheduledMinmax(Level);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_GlobalScheduleMinmax)
    ->Arg(static_cast<int>(SchedLevel::Useful))
    ->Arg(static_cast<int>(SchedLevel::Speculative))
    ->Unit(benchmark::kMicrosecond);

void printPaperTable() {
  struct Row {
    const char *Name;
    SchedLevel Level;
    const char *Paper;
  };
  const Row Rows[] = {
      {"Figure 2 (original)", SchedLevel::None, "20-22"},
      {"Figure 5 (useful)", SchedLevel::Useful, "12-13"},
      {"Figure 6 (useful+speculative)", SchedLevel::Speculative, "11-12"},
  };

  std::printf("\nE1: minmax cycles per iteration (RS/6000 model)\n");
  rule();
  std::printf("%-32s %8s %8s %8s   %s\n", "VERSION", "0 upd", "1 upd",
              "2 upd", "PAPER");
  rule();
  for (const Row &R : Rows) {
    auto M = scheduledMinmax(R.Level);
    std::printf("%-32s %8.1f %8.1f %8.1f   %s\n", R.Name,
                cyclesPerIteration(*M, 0), cyclesPerIteration(*M, 1),
                cyclesPerIteration(*M, 2), R.Paper);
  }
  rule();
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  return 0;
}

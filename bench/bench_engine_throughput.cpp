//===- bench/bench_engine_throughput.cpp - Engine scaling & cache sweeps ---===//
//
// Throughput of the parallel batch-compilation engine on a synthetic
// workload batch: functions-per-second at 1/2/4/8 worker threads, and
// schedule-cache hit-rate sweeps (cold cache, in-batch duplicates, warm
// repeated batch).  Alongside the human-readable tables the run writes
// BENCH_engine.json so the perf trajectory is machine-trackable across
// PRs.  Thread scaling is only meaningful up to the host's hardware
// concurrency, which is recorded in the JSON next to the measurements.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/CompileEngine.h"
#include "support/ThreadPool.h"
#include "workloads/RandomProgram.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace gis;
using namespace gis::bench;

namespace {

constexpr unsigned BatchModules = 48;

/// Mini-C sources of the synthetic batch: \p Unique distinct random
/// programs cycled to \p Total modules (Total == Unique: no duplicates).
std::vector<std::string> batchSources(unsigned Unique, unsigned Total) {
  std::vector<std::string> Sources;
  Sources.reserve(Total);
  for (unsigned K = 0; K != Total; ++K)
    Sources.push_back(generateRandomMiniC(7000 + K % Unique));
  return Sources;
}

struct CompiledBatch {
  std::vector<std::unique_ptr<Module>> Modules;
  std::vector<BatchItem> Items;
};

CompiledBatch frontEnd(const std::vector<std::string> &Sources) {
  CompiledBatch B;
  for (size_t K = 0; K != Sources.size(); ++K) {
    B.Modules.push_back(compileMiniCOrDie(Sources[K]));
    B.Items.push_back(
        BatchItem{B.Modules.back().get(), "m" + std::to_string(K)});
  }
  return B;
}

EngineReport runOnce(const std::vector<std::string> &Sources, unsigned Jobs,
                     ScheduleCache *Shared, unsigned RegionJobs = 1) {
  CompiledBatch B = frontEnd(Sources);
  EngineOptions EOpts;
  EOpts.Jobs = Jobs;
  EOpts.SharedCache = Shared;
  PipelineOptions Opts = speculativeOptions();
  Opts.RegionJobs = RegionJobs;
  CompileEngine Engine(MachineDescription::rs6k(), Opts, EOpts);
  return Engine.compileBatch(B.Items);
}

/// Median-of-3 engine runs (fresh modules each time, shared cache state
/// carried through only when \p Shared is given).
EngineReport measure(const std::vector<std::string> &Sources, unsigned Jobs,
                     ScheduleCache *Shared = nullptr,
                     unsigned RegionJobs = 1) {
  EngineReport Best = runOnce(Sources, Jobs, Shared, RegionJobs);
  for (unsigned K = 0; K != 2 && !Shared; ++K) {
    EngineReport R = runOnce(Sources, Jobs, nullptr, RegionJobs);
    if (R.WallSeconds < Best.WallSeconds)
      Best = R; // min-of-3: least-noise estimate
  }
  return Best;
}

struct ThreadPoint {
  unsigned Threads;
  double FuncsPerSec;
  double Speedup;
};

struct CachePoint {
  std::string Scenario;
  double HitRate;
  double FuncsPerSec;
};

struct RegionJobsPoint {
  unsigned RegionJobs;
  double FuncsPerSec;
  double Speedup;
};

void writeJson(const std::vector<ThreadPoint> &Threads,
               const std::vector<CachePoint> &Cache,
               const std::vector<RegionJobsPoint> &RegionJobs,
               unsigned Functions) {
  std::FILE *F = std::fopen("BENCH_engine.json", "w");
  if (!F) {
    std::fprintf(stderr, "bench_engine_throughput: cannot write "
                         "BENCH_engine.json\n");
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"engine_throughput\",\n");
  std::fprintf(F, "  \"hardware_threads\": %u,\n",
               ThreadPool::hardwareThreads());
  std::fprintf(F, "  \"batch_modules\": %u,\n", BatchModules);
  std::fprintf(F, "  \"batch_functions\": %u,\n", Functions);
  std::fprintf(F, "  \"threads\": [\n");
  for (size_t K = 0; K != Threads.size(); ++K)
    std::fprintf(F,
                 "    {\"threads\": %u, \"funcs_per_sec\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 Threads[K].Threads, Threads[K].FuncsPerSec,
                 Threads[K].Speedup, K + 1 == Threads.size() ? "" : ",");
  std::fprintf(F, "  ],\n  \"cache\": [\n");
  for (size_t K = 0; K != Cache.size(); ++K)
    std::fprintf(F,
                 "    {\"scenario\": \"%s\", \"hit_rate\": %.3f, "
                 "\"funcs_per_sec\": %.1f}%s\n",
                 Cache[K].Scenario.c_str(), Cache[K].HitRate,
                 Cache[K].FuncsPerSec, K + 1 == Cache.size() ? "" : ",");
  std::fprintf(F, "  ],\n  \"region_jobs\": [\n");
  for (size_t K = 0; K != RegionJobs.size(); ++K)
    std::fprintf(F,
                 "    {\"region_jobs\": %u, \"funcs_per_sec\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 RegionJobs[K].RegionJobs, RegionJobs[K].FuncsPerSec,
                 RegionJobs[K].Speedup,
                 K + 1 == RegionJobs.size() ? "" : ",");
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

void printEngineTables() {
  std::vector<std::string> Unique = batchSources(BatchModules, BatchModules);

  std::printf("\nE8: engine throughput on %u synthetic modules "
              "(hardware threads: %u)\n",
              BatchModules, ThreadPool::hardwareThreads());
  rule(72);
  std::printf("%10s%16s%12s%14s\n", "THREADS", "FUNCS/SEC", "SPEEDUP",
              "QUEUE WAIT");
  rule(72);

  std::vector<ThreadPoint> ThreadPoints;
  unsigned Functions = 0;
  double Base = 0;
  for (unsigned T : {1u, 2u, 4u, 8u}) {
    EngineReport R = measure(Unique, T);
    Functions = R.FunctionsCompiled;
    double FPS = R.functionsPerSecond();
    if (T == 1)
      Base = FPS;
    double Speedup = Base > 0 ? FPS / Base : 0.0;
    ThreadPoints.push_back({T, FPS, Speedup});
    std::printf("%10u%16.1f%11.2fx%13.3fs\n", T, FPS, Speedup,
                R.TotalQueueWaitSeconds);
  }
  rule(72);
  if (ThreadPool::hardwareThreads() < 4)
    std::printf("note: host exposes %u hardware thread(s); wall-clock "
                "scaling beyond that\nis not observable here.\n",
                ThreadPool::hardwareThreads());

  std::printf("\nE8b: schedule-cache sweeps (4 threads, %u modules)\n",
              BatchModules);
  rule(72);
  std::printf("%-28s%12s%16s\n", "SCENARIO", "HIT RATE", "FUNCS/SEC");
  rule(72);

  std::vector<CachePoint> CachePoints;
  auto Record = [&](const std::string &Name, const EngineReport &R) {
    CachePoints.push_back({Name, R.cacheHitRate(), R.functionsPerSecond()});
    std::printf("%-28s%11.1f%%%16.1f\n", Name.c_str(),
                100.0 * R.cacheHitRate(), R.functionsPerSecond());
  };

  Record("cold, all unique", measure(Unique, 4));
  Record("50% in-batch duplicates",
         measure(batchSources(BatchModules / 2, BatchModules), 4));
  Record("90% in-batch duplicates",
         measure(batchSources(BatchModules / 10, BatchModules), 4));
  {
    ScheduleCache Shared;
    measure(Unique, 4, &Shared); // cold run warms the shared cache
    Record("warm repeat of batch", measure(Unique, 4, &Shared));
  }
  rule(72);
  std::printf("cold compiles pay one schedule per distinct function; every "
              "repeat is served\nby the content-addressed cache "
              "(engine/ScheduleCache.h).\n");

  std::printf("\nE9: region-jobs sweep (1 engine thread, %u modules, "
              "cold cache)\n",
              BatchModules);
  rule(72);
  std::printf("%14s%16s%12s\n", "REGION JOBS", "FUNCS/SEC", "SPEEDUP");
  rule(72);

  std::vector<RegionJobsPoint> RegionJobsPoints;
  double RJBase = 0;
  for (unsigned RJ : {1u, 2u, 4u, 8u}) {
    EngineReport R = measure(Unique, /*Jobs=*/1, nullptr, RJ);
    double FPS = R.functionsPerSecond();
    if (RJ == 1)
      RJBase = FPS;
    double Speedup = RJBase > 0 ? FPS / RJBase : 0.0;
    RegionJobsPoints.push_back({RJ, FPS, Speedup});
    std::printf("%14u%16.1f%11.2fx\n", RJ, FPS, Speedup);
  }
  rule(72);
  std::printf("intra-function parallelism: independent regions of one "
              "function scheduled\nconcurrently (sched/Pipeline.h "
              "RegionJobs); output is bit-identical at every\nwidth, so "
              "speedup is bounded by the per-function region count.\n");

  writeJson(ThreadPoints, CachePoints, RegionJobsPoints, Functions);
}

void BM_EngineBatch(benchmark::State &State) {
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  std::vector<std::string> Sources = batchSources(12, 12);
  for (auto _ : State) {
    EngineReport R = runOnce(Sources, Jobs, nullptr);
    benchmark::DoNotOptimize(R.FunctionsCompiled);
  }
  State.SetLabel("jobs=" + std::to_string(Jobs));
}
BENCHMARK(BM_EngineBatch)->RangeMultiplier(2)->Range(1, 8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printEngineTables();
  return 0;
}

//===- bench/bench_engine_throughput.cpp - Engine scaling & cache sweeps ---===//
//
// Throughput of the parallel batch-compilation engine on a synthetic
// workload batch: functions-per-second across a worker-thread sweep sized
// from the host's hardware concurrency, schedule-cache hit-rate sweeps
// (cold cache, in-batch duplicates, warm repeated batch), and the E11
// warm-restart experiment (a restarted engine process re-serving a
// duplicate-heavy batch from the persistent disk tier).  Alongside the
// human-readable tables the run writes BENCH_engine.json so the perf
// trajectory is machine-trackable across PRs.  Thread scaling is only
// meaningful up to the host's hardware concurrency, which is recorded in
// the JSON next to the measurements.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/CompileEngine.h"
#include "workloads/RandomProgram.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

using namespace gis;
using namespace gis::bench;

namespace {

constexpr unsigned BatchModules = 48;

/// Mini-C sources of the synthetic batch: \p Unique distinct random
/// programs cycled to \p Total modules (Total == Unique: no duplicates).
std::vector<std::string> batchSources(unsigned Unique, unsigned Total) {
  std::vector<std::string> Sources;
  Sources.reserve(Total);
  for (unsigned K = 0; K != Total; ++K)
    Sources.push_back(generateRandomMiniC(7000 + K % Unique));
  return Sources;
}

struct CompiledBatch {
  std::vector<std::unique_ptr<Module>> Modules;
  std::vector<BatchItem> Items;
};

CompiledBatch frontEnd(const std::vector<std::string> &Sources) {
  CompiledBatch B;
  for (size_t K = 0; K != Sources.size(); ++K) {
    B.Modules.push_back(compileMiniCOrDie(Sources[K]));
    B.Items.push_back(
        BatchItem{B.Modules.back().get(), "m" + std::to_string(K)});
  }
  return B;
}

EngineReport runOnce(const std::vector<std::string> &Sources, unsigned Jobs,
                     ScheduleCache *Shared, unsigned RegionJobs = 1,
                     const std::string &CacheDir = "") {
  CompiledBatch B = frontEnd(Sources);
  EngineOptions EOpts;
  EOpts.Jobs = Jobs;
  EOpts.SharedCache = Shared;
  EOpts.CacheDir = CacheDir;
  PipelineOptions Opts = speculativeOptions();
  Opts.RegionJobs = RegionJobs;
  CompileEngine Engine(MachineDescription::rs6k(), Opts, EOpts);
  return Engine.compileBatch(B.Items);
}

/// Worker-thread sweep sized from the host: powers of two up to the
/// hardware concurrency, plus the concurrency itself when it is not a
/// power of two.  Hardcoding {1,2,4,8} under-measures wide hosts and
/// reports meaningless oversubscription on narrow ones.
std::vector<unsigned> threadSweep() {
  unsigned HW = hardwareThreads();
  std::vector<unsigned> Sweep;
  for (unsigned T = 1; T <= HW; T *= 2)
    Sweep.push_back(T);
  if (Sweep.back() != HW)
    Sweep.push_back(HW);
  return Sweep;
}

/// Median-of-3 engine runs (fresh modules each time, shared cache state
/// carried through only when \p Shared is given).
EngineReport measure(const std::vector<std::string> &Sources, unsigned Jobs,
                     ScheduleCache *Shared = nullptr,
                     unsigned RegionJobs = 1) {
  EngineReport Best = runOnce(Sources, Jobs, Shared, RegionJobs);
  for (unsigned K = 0; K != 2 && !Shared; ++K) {
    EngineReport R = runOnce(Sources, Jobs, nullptr, RegionJobs);
    if (R.WallSeconds < Best.WallSeconds)
      Best = R; // min-of-3: least-noise estimate
  }
  return Best;
}

struct ThreadPoint {
  unsigned Threads;
  double FuncsPerSec;
  double Speedup;
};

struct CachePoint {
  std::string Scenario;
  double HitRate;
  double FuncsPerSec;
};

struct RegionJobsPoint {
  unsigned RegionJobs;
  double FuncsPerSec;
  double Speedup;
};

/// E11: schedule-cache hit rates across an engine-process restart.  The
/// restarted process starts with an empty memory tier and re-serves the
/// batch from the disk tier alone; the acceptance bar is reaching 90% of
/// the same-process warm rate.
struct WarmRestartResult {
  double ColdRate = 0;    ///< fresh process, empty cache directory
  double WarmRate = 0;    ///< same-process repeat (memory tier)
  double RestartRate = 0; ///< fresh process, populated directory
  double ratioToWarm() const {
    return WarmRate > 0 ? RestartRate / WarmRate : 0.0;
  }
};

void writeJson(const std::vector<ThreadPoint> &Threads,
               const std::vector<CachePoint> &Cache,
               const std::vector<RegionJobsPoint> &RegionJobs,
               const WarmRestartResult &Restart, unsigned Functions) {
  std::FILE *F = std::fopen("BENCH_engine.json", "w");
  if (!F) {
    std::fprintf(stderr, "bench_engine_throughput: cannot write "
                         "BENCH_engine.json\n");
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"engine_throughput\",\n");
  std::fprintf(F, "  \"hardware_threads\": %u,\n", hardwareThreads());
  std::fprintf(F, "  \"batch_modules\": %u,\n", BatchModules);
  std::fprintf(F, "  \"batch_functions\": %u,\n", Functions);
  std::fprintf(F, "  \"threads\": [\n");
  for (size_t K = 0; K != Threads.size(); ++K)
    std::fprintf(F,
                 "    {\"threads\": %u, \"funcs_per_sec\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 Threads[K].Threads, Threads[K].FuncsPerSec,
                 Threads[K].Speedup, K + 1 == Threads.size() ? "" : ",");
  std::fprintf(F, "  ],\n  \"cache\": [\n");
  for (size_t K = 0; K != Cache.size(); ++K)
    std::fprintf(F,
                 "    {\"scenario\": \"%s\", \"hit_rate\": %.3f, "
                 "\"funcs_per_sec\": %.1f}%s\n",
                 Cache[K].Scenario.c_str(), Cache[K].HitRate,
                 Cache[K].FuncsPerSec, K + 1 == Cache.size() ? "" : ",");
  std::fprintf(F, "  ],\n  \"region_jobs\": [\n");
  for (size_t K = 0; K != RegionJobs.size(); ++K)
    std::fprintf(F,
                 "    {\"region_jobs\": %u, \"funcs_per_sec\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 RegionJobs[K].RegionJobs, RegionJobs[K].FuncsPerSec,
                 RegionJobs[K].Speedup,
                 K + 1 == RegionJobs.size() ? "" : ",");
  std::fprintf(F,
               "  ],\n  \"warm_restart\": {\n"
               "    \"cold_hit_rate\": %.3f,\n"
               "    \"warm_hit_rate\": %.3f,\n"
               "    \"restart_hit_rate\": %.3f,\n"
               "    \"restart_to_warm_ratio\": %.3f,\n"
               "    \"target_ratio\": 0.9\n  }\n}\n",
               Restart.ColdRate, Restart.WarmRate, Restart.RestartRate,
               Restart.ratioToWarm());
  std::fclose(F);
}

/// Runs E11: populate a fresh cache directory with a duplicate-heavy
/// batch, then re-serve it from (a) the same process's memory tier and
/// (b) a simulated restarted process -- a fresh engine with an empty
/// memory cache pointed at the same directory, which is exactly the state
/// a new `gisc --cache-dir` process wakes up in.
WarmRestartResult measureWarmRestart() {
  WarmRestartResult R;
  // 90% in-batch duplicates: the regime where a persistent cache pays.
  std::vector<std::string> Sources =
      batchSources(BatchModules / 10, BatchModules);
  char Template[] = "bench-e11-cache-XXXXXX";
  if (!::mkdtemp(Template)) {
    std::fprintf(stderr, "bench_engine_throughput: mkdtemp failed; "
                         "skipping E11\n");
    return R;
  }
  std::string Dir = Template;
  {
    ScheduleCache Mem;
    R.ColdRate = runOnce(Sources, 4, &Mem, 1, Dir).cacheHitRate();
    R.WarmRate = runOnce(Sources, 4, &Mem, 1, Dir).cacheHitRate();
  }
  // The restarted process: no shared memory cache survives, only disk.
  R.RestartRate = runOnce(Sources, 4, nullptr, 1, Dir).cacheHitRate();
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  return R;
}

void printEngineTables() {
  std::vector<std::string> Unique = batchSources(BatchModules, BatchModules);

  std::printf("\nE8: engine throughput on %u synthetic modules "
              "(hardware threads: %u)\n",
              BatchModules, hardwareThreads());
  rule(72);
  std::printf("%10s%16s%12s%14s\n", "THREADS", "FUNCS/SEC", "SPEEDUP",
              "QUEUE WAIT");
  rule(72);

  std::vector<ThreadPoint> ThreadPoints;
  unsigned Functions = 0;
  double Base = 0;
  for (unsigned T : threadSweep()) {
    EngineReport R = measure(Unique, T);
    Functions = R.FunctionsCompiled;
    double FPS = R.functionsPerSecond();
    if (T == 1)
      Base = FPS;
    double Speedup = Base > 0 ? FPS / Base : 0.0;
    ThreadPoints.push_back({T, FPS, Speedup});
    std::printf("%10u%16.1f%11.2fx%13.3fs\n", T, FPS, Speedup,
                R.TotalQueueWaitSeconds);
  }
  rule(72);
  std::printf("sweep sized from the host's hardware concurrency (%u): "
              "powers of two up to\nthe width, plus the width itself.\n",
              hardwareThreads());

  std::printf("\nE8b: schedule-cache sweeps (4 threads, %u modules)\n",
              BatchModules);
  rule(72);
  std::printf("%-28s%12s%16s\n", "SCENARIO", "HIT RATE", "FUNCS/SEC");
  rule(72);

  std::vector<CachePoint> CachePoints;
  auto Record = [&](const std::string &Name, const EngineReport &R) {
    CachePoints.push_back({Name, R.cacheHitRate(), R.functionsPerSecond()});
    std::printf("%-28s%11.1f%%%16.1f\n", Name.c_str(),
                100.0 * R.cacheHitRate(), R.functionsPerSecond());
  };

  Record("cold, all unique", measure(Unique, 4));
  Record("50% in-batch duplicates",
         measure(batchSources(BatchModules / 2, BatchModules), 4));
  Record("90% in-batch duplicates",
         measure(batchSources(BatchModules / 10, BatchModules), 4));
  {
    ScheduleCache Shared;
    measure(Unique, 4, &Shared); // cold run warms the shared cache
    Record("warm repeat of batch", measure(Unique, 4, &Shared));
  }
  rule(72);
  std::printf("cold compiles pay one schedule per distinct function; every "
              "repeat is served\nby the content-addressed cache "
              "(engine/ScheduleCache.h).\n");

  std::printf("\nE9: region-jobs sweep (1 engine thread, %u modules, "
              "cold cache)\n",
              BatchModules);
  rule(72);
  std::printf("%14s%16s%12s\n", "REGION JOBS", "FUNCS/SEC", "SPEEDUP");
  rule(72);

  std::vector<RegionJobsPoint> RegionJobsPoints;
  double RJBase = 0;
  for (unsigned RJ : {1u, 2u, 4u, 8u}) {
    EngineReport R = measure(Unique, /*Jobs=*/1, nullptr, RJ);
    double FPS = R.functionsPerSecond();
    if (RJ == 1)
      RJBase = FPS;
    double Speedup = RJBase > 0 ? FPS / RJBase : 0.0;
    RegionJobsPoints.push_back({RJ, FPS, Speedup});
    std::printf("%14u%16.1f%11.2fx\n", RJ, FPS, Speedup);
  }
  rule(72);
  std::printf("intra-function parallelism: independent regions of one "
              "function scheduled\nconcurrently (sched/Pipeline.h "
              "RegionJobs); output is bit-identical at every\nwidth, so "
              "speedup is bounded by the per-function region count.\n");

  std::printf("\nE11: warm-restart hit rate (persistent disk tier, 90%% "
              "duplicate batch)\n");
  rule(72);
  std::printf("%-28s%12s\n", "SCENARIO", "HIT RATE");
  rule(72);
  WarmRestartResult Restart = measureWarmRestart();
  std::printf("%-28s%11.1f%%\n", "cold, empty directory",
              100.0 * Restart.ColdRate);
  std::printf("%-28s%11.1f%%\n", "same-process warm repeat",
              100.0 * Restart.WarmRate);
  std::printf("%-28s%11.1f%%\n", "restarted process",
              100.0 * Restart.RestartRate);
  rule(72);
  std::printf("restart/warm ratio: %.2f (target >= 0.90) -- the restarted "
              "engine has lost its\nmemory tier and re-serves the batch "
              "from engine/ScheduleCache.h's disk tier\n(persist/"
              "DiskCache.h).%s\n",
              Restart.ratioToWarm(),
              Restart.ratioToWarm() >= 0.9
                  ? ""
                  : "  WARNING: below target -- investigate");

  writeJson(ThreadPoints, CachePoints, RegionJobsPoints, Restart,
            Functions);
}

void BM_EngineBatch(benchmark::State &State) {
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  std::vector<std::string> Sources = batchSources(12, 12);
  for (auto _ : State) {
    EngineReport R = runOnce(Sources, Jobs, nullptr);
    benchmark::DoNotOptimize(R.FunctionsCompiled);
  }
  State.SetLabel("jobs=" + std::to_string(Jobs));
}
BENCHMARK(BM_EngineBatch)->RangeMultiplier(2)->Range(1, 8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printEngineTables();
  return 0;
}

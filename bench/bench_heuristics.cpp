//===- bench/bench_heuristics.cpp - Experiment E5: rule ordering -----------===//
//
// Ablation of the Section 5.2 priority rules.  The paper fixes the order
// "useful class, then delay heuristic D, then critical path CP, then
// original order", noting the ordering "is tuned towards a machine with a
// small number of resources" and that "experimentation and tuning are
// needed".  This harness runs that experimentation: each workload is
// scheduled under four rule orderings, on the 1-wide RS/6000 and on a
// 4-wide superscalar.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace gis;
using namespace gis::bench;

namespace {

struct OrderRow {
  PriorityOrder Order;
  const char *Name;
};

const OrderRow Orders[] = {
    {PriorityOrder::Paper, "class,D,CP (paper)"},
    {PriorityOrder::DelayFirst, "D,class,CP"},
    {PriorityOrder::CriticalFirst, "CP,class,D"},
    {PriorityOrder::SourceOrder, "source order"},
};

PipelineOptions withOrder(PriorityOrder O) {
  PipelineOptions Opts = speculativeOptions();
  Opts.Order = O;
  return Opts;
}

void BM_ScheduleWithOrder(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[0];
  const OrderRow &Row = Orders[static_cast<size_t>(State.range(0))];
  MachineDescription MD = MachineDescription::rs6k();
  for (auto _ : State) {
    auto M = buildWorkload(W, MD, withOrder(Row.Order));
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(Row.Name);
}
BENCHMARK(BM_ScheduleWithOrder)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void printTableFor(const MachineDescription &MD) {
  std::printf("\nmachine: %s\n", MD.name().c_str());
  rule(78);
  std::printf("%-10s", "PROGRAM");
  for (const OrderRow &Row : Orders)
    std::printf("%17s", Row.Name);
  std::printf("\n");
  rule(78);
  for (const Workload &W : specLikeWorkloads()) {
    uint64_t Base = workloadCycles(W, MD, baseOptions());
    std::printf("%-10s", W.Name.c_str());
    for (const OrderRow &Row : Orders) {
      uint64_t Sched = workloadCycles(W, MD, withOrder(Row.Order));
      double RTI = 100.0 * (1.0 - double(Sched) / double(Base));
      std::printf("%16.1f%%", RTI);
    }
    std::printf("\n");
  }
  rule(78);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nE5: priority-rule ordering ablation (run-time improvement "
              "over base)\n");
  printTableFor(MachineDescription::rs6k());
  printTableFor(MachineDescription::superscalar(4, 1, 2));
  std::printf("\nshape check: the paper's class-first order is competitive "
              "on the narrow\nmachine (it never loses to reordered rules "
              "by much), and no ordering beats\nhaving the heuristics "
              "(source order trails).\n");
  return 0;
}

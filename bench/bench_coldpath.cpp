//===- bench/bench_coldpath.cpp - E13: cold-path scheduling throughput -----===//
//
// Cold-compile throughput of the scheduler itself, cache off: functions
// per second over a multi-function random workload batch, across the
// {incremental, full-recompute} x {-O0, -O2} x {useful, speculative}
// matrix.  The incremental cold path (DESIGN.md section 14) emits
// bit-identical schedules (tests/coldpath_test.cpp), so the speedup
// column is a pure bookkeeping win.  The results merge into
// BENCH_engine.json as the "coldpath" section, and the run *fails* when
// the incremental speculative -O0 rate -- the configuration gisc runs by
// default -- drops more than 10% below the value the previous run
// recorded there.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/Counters.h"
#include "workloads/RandomProgram.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace gis;
using namespace gis::bench;

namespace {

constexpr unsigned BatchModules = 24;

std::vector<std::string> batchSources() {
  std::vector<std::string> Sources;
  Sources.reserve(BatchModules);
  for (unsigned K = 0; K != BatchModules; ++K)
    Sources.push_back(generateRandomMiniC(9000 + K));
  return Sources;
}

struct ColdRun {
  double Seconds = 0;
  unsigned Functions = 0;
  /// Batch totals of the coldpath.* registry (identical every rep: the
  /// machinery is deterministic, so whichever rep wins carries them).
  obs::CounterSet Counters;
  double funcsPerSec() const {
    return Seconds > 0 ? Functions / Seconds : 0.0;
  }
};

/// One cold batch compile: front end + scheduler for every module, no
/// cache anywhere.  Min-of-3 wall clock (least-noise estimate).
ColdRun measureCold(const std::vector<std::string> &Sources,
                    const PipelineOptions &Opts) {
  using Clock = std::chrono::steady_clock;
  ColdRun Best;
  for (unsigned Rep = 0; Rep != 3; ++Rep) {
    ColdRun R;
    auto Start = Clock::now();
    for (const std::string &Source : Sources) {
      auto M = compileMiniCOrDie(Source);
      PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
      R.Counters += Stats.Counters;
      R.Functions += static_cast<unsigned>(M->functions().size());
    }
    R.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
    if (Rep == 0 || R.Seconds < Best.Seconds)
      Best = R;
  }
  return Best;
}

struct MatrixPoint {
  unsigned OptLevel;
  const char *Level;
  bool Incremental;
  double FuncsPerSec;
  double Speedup; ///< vs the full-recompute twin of the same config
};

/// The previously recorded gate value: the incremental speculative -O0
/// funcs/s of the last run, parsed out of BENCH_engine.json's "coldpath"
/// section.  0 when the file or section does not exist yet.
double recordedGate(const char *Path) {
  std::FILE *In = std::fopen(Path, "r");
  if (!In)
    return 0.0;
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Text.append(Buf, N);
  std::fclose(In);
  size_t Sec = Text.find("\"coldpath\"");
  if (Sec == std::string::npos)
    return 0.0;
  size_t Key = Text.find("\"gate_funcs_per_sec\":", Sec);
  if (Key == std::string::npos)
    return 0.0;
  return std::strtod(Text.c_str() + Key + sizeof("\"gate_funcs_per_sec\":"),
                     nullptr);
}

std::string jsonSection(const std::vector<MatrixPoint> &Points,
                        unsigned Functions, double Gate,
                        const obs::CounterSet &GateCounters) {
  std::string S = "{\n";
  S += "    \"batch_modules\": " + std::to_string(BatchModules) + ",\n";
  S += "    \"batch_functions\": " + std::to_string(Functions) + ",\n";
  S += "    \"points\": [\n";
  char Line[160];
  for (size_t K = 0; K != Points.size(); ++K) {
    const MatrixPoint &P = Points[K];
    std::snprintf(Line, sizeof(Line),
                  "      {\"opt\": %u, \"level\": \"%s\", "
                  "\"incremental\": %s, \"funcs_per_sec\": %.1f, "
                  "\"speedup\": %.2f}%s\n",
                  P.OptLevel, P.Level, P.Incremental ? "true" : "false",
                  P.FuncsPerSec, P.Speedup,
                  K + 1 == Points.size() ? "" : ",");
    S += Line;
  }
  // Machinery totals of the gate configuration's batch (DESIGN.md
  // section 15): how much work the round-two incremental pieces saved.
  S += "    ],\n    \"gate_counters\": {\n";
  const struct {
    const char *Key;
    obs::CounterId Id;
  } GateKeys[] = {
      {"disambig_cache_hits", obs::ColdDisambigCacheHits},
      {"disambig_cache_misses", obs::ColdDisambigCacheMisses},
      {"ckpt_bytes", obs::ColdCkptBytes},
      {"verify_blocks_scoped", obs::ColdVerifyBlocksScoped},
      {"verify_blocks_total", obs::ColdVerifyBlocksTotal},
  };
  for (size_t K = 0; K != std::size(GateKeys); ++K) {
    std::snprintf(Line, sizeof(Line), "      \"%s\": %llu%s\n",
                  GateKeys[K].Key,
                  static_cast<unsigned long long>(
                      GateCounters.get(GateKeys[K].Id)),
                  K + 1 == std::size(GateKeys) ? "" : ",");
    S += Line;
  }
  std::snprintf(Line, sizeof(Line),
                "    },\n    \"gate_funcs_per_sec\": %.1f,\n"
                "    \"gate_drop_tolerance\": 0.10\n  }",
                Gate);
  S += Line;
  return S;
}

/// Runs the matrix, prints the E13 table, merges the JSON section, and
/// returns nonzero when the regression gate trips.
int runE13() {
  std::vector<std::string> Sources = batchSources();

  std::printf("\nE13: cold-path scheduling throughput "
              "(cache off, %u modules, hardware threads: %u)\n",
              BatchModules, hardwareThreads());
  rule(72);
  std::printf("%6s%14s%14s%14s%12s\n", "OPT", "LEVEL", "MODE", "FUNCS/SEC",
              "SPEEDUP");
  rule(72);

  std::vector<MatrixPoint> Points;
  unsigned Functions = 0;
  double GateValue = 0; // incremental speculative -O0
  obs::CounterSet GateCounters;
  for (unsigned OptLevel : {0u, 2u}) {
    for (const char *Level : {"useful", "speculative"}) {
      double FullRate = 0;
      for (bool Incremental : {false, true}) {
        PipelineOptions Opts = std::string(Level) == "useful"
                                   ? usefulOptions()
                                   : speculativeOptions();
        Opts.Opt.Level = OptLevel;
        Opts.Incremental = Incremental;
        ColdRun R = measureCold(Sources, Opts);
        Functions = R.Functions;
        double Rate = R.funcsPerSec();
        if (!Incremental)
          FullRate = Rate;
        double Speedup = FullRate > 0 ? Rate / FullRate : 0.0;
        Points.push_back({OptLevel, Level, Incremental, Rate, Speedup});
        if (Incremental && OptLevel == 0 &&
            std::string(Level) == "speculative") {
          GateValue = Rate;
          GateCounters = R.Counters;
        }
        std::printf("%6s%14s%14s%14.1f%11.2fx\n",
                    OptLevel ? "-O2" : "-O0", Level,
                    Incremental ? "incremental" : "full", Rate, Speedup);
      }
    }
  }
  rule(72);
  std::printf("\"full\" is --no-incremental: per-pick recomputation of the "
              "ready set and\nfull liveness re-solves (the reference mode "
              "the 200-seed fuzz in\ntests/coldpath_test.cpp checks "
              "bit-identity against).\n");

  const uint64_t Hits = GateCounters.get(obs::ColdDisambigCacheHits);
  const uint64_t Misses = GateCounters.get(obs::ColdDisambigCacheMisses);
  const uint64_t Scoped = GateCounters.get(obs::ColdVerifyBlocksScoped);
  const uint64_t Total = GateCounters.get(obs::ColdVerifyBlocksTotal);
  std::printf("\nround-two machinery on the gate batch (speculative -O0, "
              "incremental):\n"
              "  disambig cache: %llu hits / %llu misses (%.0f%% hit rate)\n"
              "  delta checkpoints: %llu bytes recorded\n"
              "  scoped verification: %llu of %llu region blocks swept "
              "(%.0f%% skipped)\n",
              static_cast<unsigned long long>(Hits),
              static_cast<unsigned long long>(Misses),
              Hits + Misses ? 100.0 * Hits / (Hits + Misses) : 0.0,
              static_cast<unsigned long long>(
                  GateCounters.get(obs::ColdCkptBytes)),
              static_cast<unsigned long long>(Scoped),
              static_cast<unsigned long long>(Total),
              Total ? 100.0 * (Total - Scoped) / Total : 0.0);

  const char *Path = "BENCH_engine.json";
  double Previous = recordedGate(Path);
  mergeJsonSection(Path, "bench_coldpath", "coldpath",
                   jsonSection(Points, Functions, GateValue, GateCounters));

  if (Previous > 0 && GateValue < 0.9 * Previous) {
    std::fprintf(stderr,
                 "bench_coldpath: REGRESSION -- incremental speculative -O0 "
                 "cold rate %.1f funcs/s is more than 10%% below the "
                 "recorded %.1f\n",
                 GateValue, Previous);
    return 1;
  }
  std::printf("\nregression gate: %.1f funcs/s recorded (previous %.1f, "
              "tolerance 10%%)\n",
              GateValue, Previous);
  return 0;
}

void BM_ColdSchedule(benchmark::State &State) {
  bool Incremental = State.range(0) != 0;
  std::string Source = generateRandomMiniC(9001);
  PipelineOptions Opts = speculativeOptions();
  Opts.Incremental = Incremental;
  for (auto _ : State) {
    auto M = compileMiniCOrDie(Source);
    PipelineStats Stats = scheduleModule(*M, MachineDescription::rs6k(), Opts);
    benchmark::DoNotOptimize(Stats.Global.UsefulMotions);
  }
  State.SetLabel(Incremental ? "incremental" : "full");
}
BENCHMARK(BM_ColdSchedule)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return runE13();
}

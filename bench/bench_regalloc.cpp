//===- bench/bench_regalloc.cpp - Experiment E10: finite register files ----===//
//
// The cost of finiteness: the paper schedules over unbounded symbolic
// registers (Section 2) and lets the XL back end map the result onto the
// RS/6000's 32 GPRs / 32 FPRs / 8 CRs.  This experiment runs that back
// end (src/regalloc/: linear scan, spill-everywhere, post-allocation
// rescheduling) and sweeps the register-file size against the speculation
// depth: at the real sizes allocation must be free (zero spills, cycles
// identical to the symbolic schedule), and as the file shrinks the spill
// code claws back the scheduler's winnings -- monotonically more cycles
// at 16 and 8 GPRs, and faster at deeper speculation, which lengthens
// live ranges.
//
// The table is merged into BENCH_engine.json (key "regalloc") so the
// trajectory is machine-trackable across PRs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace gis;
using namespace gis::bench;

namespace {

constexpr unsigned GprSizes[] = {32, 16, 8};

struct Depth {
  const char *Name;
  PipelineOptions Opts;
};

std::vector<Depth> depths() {
  std::vector<Depth> D;
  D.push_back({"useful", usefulOptions()});
  D.push_back({"spec-1", speculativeOptions()});
  PipelineOptions Deep = speculativeOptions();
  Deep.MaxSpecDepth = 3;
  D.push_back({"spec-3", Deep});
  return D;
}

struct Cell {
  uint64_t Cycles = 0;
  unsigned Spilled = 0;     ///< intervals spilled
  unsigned SpillInstrs = 0; ///< stores + reloads emitted
  unsigned Failures = 0;    ///< allocations rolled back
};

/// Compile + schedule + allocate one workload at \p Gprs registers, then
/// run it and simulate cycles.
Cell measure(const Workload &W, unsigned Gprs, const PipelineOptions &Base) {
  MachineDescription MD = MachineDescription::rs6k();
  MD.setNumRegs(RegClass::GPR, Gprs);
  PipelineOptions Opts = Base;
  Opts.AllocateRegisters = true;
  auto M = compileMiniCOrDie(W.Source);
  PipelineStats Stats = scheduleModule(*M, MD, Opts);
  Cell C;
  C.Cycles = runWorkloadCycles(W, *M, MD);
  C.Spilled = Stats.RegAlloc.IntervalsSpilled;
  C.SpillInstrs = Stats.RegAlloc.SpillStores + Stats.RegAlloc.SpillReloads;
  C.Failures = Stats.RegAllocFailures;
  return C;
}

void BM_ScheduleAndAllocate(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(State.range(0))];
  MachineDescription MD = MachineDescription::rs6k();
  MD.setNumRegs(RegClass::GPR, 16);
  PipelineOptions Opts = speculativeOptions();
  Opts.AllocateRegisters = true;
  for (auto _ : State) {
    auto M = buildWorkload(W, MD, Opts);
    benchmark::DoNotOptimize(M);
  }
  State.SetLabel(W.Name);
}
BENCHMARK(BM_ScheduleAndAllocate)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void printPaperTable() {
  std::vector<Depth> Ds = depths();
  std::vector<Workload> Ws = specLikeWorkloads();

  std::printf("\nE10: register-file size x speculation depth "
              "(simulated cycles; spill instrs)\n");
  rule(94);
  std::printf("%-10s%8s", "CONFIG", "GPRS");
  for (const Workload &W : Ws)
    std::printf("%19s", W.Name.c_str());
  std::printf("\n");
  rule(94);

  // JSON rows, one per (depth, gprs): totals across the workloads.
  std::string Json;
  bool Monotone = true;
  for (const Depth &D : Ds) {
    uint64_t Prev = 0;
    for (unsigned Gprs : GprSizes) {
      std::printf("%-10s%8u", D.Name, Gprs);
      uint64_t TotalCycles = 0;
      unsigned TotalSpills = 0, TotalFailures = 0;
      for (const Workload &W : Ws) {
        Cell C = measure(W, Gprs, D.Opts);
        TotalCycles += C.Cycles;
        TotalSpills += C.SpillInstrs;
        TotalFailures += C.Failures;
        std::printf("%11llu (%4u)",
                    static_cast<unsigned long long>(C.Cycles),
                    C.SpillInstrs);
      }
      std::printf("%s\n", TotalFailures ? "  [rollbacks!]" : "");
      if (Prev && TotalCycles < Prev)
        Monotone = false;
      Prev = TotalCycles;
      char Row[256];
      std::snprintf(Row, sizeof(Row),
                    "    {\"depth\": \"%s\", \"gprs\": %u, \"cycles\": "
                    "%llu, \"spill_instrs\": %u, \"failures\": %u},\n",
                    D.Name, Gprs,
                    static_cast<unsigned long long>(TotalCycles),
                    TotalSpills, TotalFailures);
      Json += Row;
    }
  }
  rule(94);
  std::printf("32 GPRs must spill nothing (cycles == the symbolic "
              "schedule); shrinking the file\nmust cost cycles "
              "monotonically.  monotone: %s\n",
              Monotone ? "yes" : "NO -- investigate");
  if (!Json.empty())
    Json.erase(Json.size() - 2, 1); // trailing comma of the last row

  // Merge into BENCH_engine.json (same protocol as the observability
  // section -- see bench::mergeJsonSection).
  std::string Section = "{\n    \"monotone\": " +
                        std::string(Monotone ? "true" : "false") +
                        ",\n    \"rows\": [\n" + Json + "    ]\n  }";
  if (!mergeJsonSection("BENCH_engine.json", "bench_regalloc", "regalloc",
                        Section))
    return;
  std::printf("wrote E10 register-file sweep to BENCH_engine.json\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  return 0;
}

//===- bench/bench_compile_time.cpp - Experiment E2: Figure 7 --------------===//
//
// Regenerates the paper's Figure 7 (compile-time overheads of global
// scheduling).  The paper reports base compile times and a 12-17% increase
// when the global scheduling steps (unrolling, two global passes,
// rotation) are enabled:
//
//     PROGRAM    BASE(s)   CTO
//     LI           206     13%
//     EQNTOTT       78     17%
//     ESPRESSO     465     12%
//     GCC         2457     13%
//
// Our BASE is the mini-C frontend plus the basic-block scheduler; CTO is
// the extra wall-clock of the full global pipeline, measured over the
// SPEC-shaped workloads plus a batch of generated programs (the paper
// compiled whole SPEC programs; our sources are smaller, so absolute times
// differ wildly -- the overhead percentage is the comparable number).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "workloads/RandomProgram.h"

#include <benchmark/benchmark.h>

using namespace gis;
using namespace gis::bench;

namespace {

/// The compile job measured: sources of one workload plus a batch of
/// random programs (to give the scheduler a realistic mix of region
/// shapes, like a whole SPEC translation unit would).
std::vector<std::string> compileJob(const Workload &W, uint64_t SeedBase) {
  std::vector<std::string> Sources;
  Sources.push_back(W.Source);
  RandomProgramOptions Opts;
  Opts.MaxStmtsPerFunction = 30;
  for (uint64_t K = 0; K != 6; ++K)
    Sources.push_back(generateRandomMiniC(SeedBase + K, Opts));
  return Sources;
}

void compileAll(const std::vector<std::string> &Sources,
                const PipelineOptions &Opts) {
  MachineDescription MD = MachineDescription::rs6k();
  for (const std::string &S : Sources) {
    auto M = compileMiniCOrDie(S);
    scheduleModule(*M, MD, Opts);
    benchmark::DoNotOptimize(M);
  }
}

void BM_CompileBase(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(State.range(0))];
  std::vector<std::string> Sources = compileJob(W, 7000);
  for (auto _ : State)
    compileAll(Sources, baseOptions());
  State.SetLabel(W.Name + "/base");
}
BENCHMARK(BM_CompileBase)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_CompileGlobal(benchmark::State &State) {
  const Workload W = specLikeWorkloads()[static_cast<size_t>(State.range(0))];
  std::vector<std::string> Sources = compileJob(W, 7000);
  for (auto _ : State)
    compileAll(Sources, speculativeOptions());
  State.SetLabel(W.Name + "/global");
}
BENCHMARK(BM_CompileGlobal)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void printPaperTable() {
  struct PaperRow {
    int BaseSeconds;
    int CTO;
  };
  const PaperRow Paper[] = {{206, 13}, {78, 17}, {465, 12}, {2457, 13}};

  // The paper's only overhead-control mechanism is the cap on region
  // sizes ("except of the control over the size of the regions that are
  // being scheduled"); the third column removes the caps to show the
  // mechanism at work.
  PipelineOptions Uncapped = speculativeOptions();
  Uncapped.RegionBlockLimit = ~0u;
  Uncapped.RegionInstrLimit = ~0u;
  Uncapped.UnrollMaxBlocks = 16;
  Uncapped.RotateMaxBlocks = 16;

  std::printf("\nE2 (Figure 7): compile-time overheads of global "
              "scheduling\n");
  rule(76);
  std::printf("%-10s %10s %8s %12s   %s\n", "PROGRAM", "BASE(ms)", "CTO",
              "CTO(no caps)", "PAPER(base s / CTO)");
  rule(76);
  size_t Idx = 0;
  for (const Workload &W : specLikeWorkloads()) {
    std::vector<std::string> Sources = compileJob(W, 7000);
    double Base = secondsPerCall([&] { compileAll(Sources, baseOptions()); });
    double Global =
        secondsPerCall([&] { compileAll(Sources, speculativeOptions()); });
    double NoCaps =
        secondsPerCall([&] { compileAll(Sources, Uncapped); });
    double CTO = 100.0 * (Global - Base) / Base;
    double CTONoCaps = 100.0 * (NoCaps - Base) / Base;
    std::printf("%-10s %10.2f %7.0f%% %11.0f%%   %d s / %d%%\n",
                W.Name.c_str(), Base * 1e3, CTO, CTONoCaps,
                Paper[Idx].BaseSeconds, Paper[Idx].CTO);
    ++Idx;
  }
  rule(76);
  std::printf(
      "Notes: our BASE (mini-C frontend + basic-block scheduler) is a tiny\n"
      "fraction of the XL compiler's full optimizer pipeline, so the same\n"
      "absolute scheduling work is a much larger *percentage* than the\n"
      "paper's 12-17%%.  The comparable shapes: the overhead is uniform\n"
      "across programs, and the paper's region-size caps visibly bound it\n"
      "(CTO vs CTO-no-caps).\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  return 0;
}

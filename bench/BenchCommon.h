//===- bench/BenchCommon.h - Shared benchmark helpers -----------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-experiment benchmark binaries (one binary per
/// paper table/figure; see DESIGN.md section 4).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_BENCH_BENCHCOMMON_H
#define GIS_BENCH_BENCHCOMMON_H

#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "machine/Timing.h"
#include "sched/Pipeline.h"
#include "support/Assert.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

namespace gis {
namespace bench {

/// Compiles a workload and optionally schedules it.
inline std::unique_ptr<Module>
buildWorkload(const Workload &W, const MachineDescription &MD,
              const std::optional<PipelineOptions> &Sched) {
  auto M = compileMiniCOrDie(W.Source);
  if (Sched)
    scheduleModule(*M, MD, *Sched);
  return M;
}

/// Runs a compiled workload and returns the simulated cycle count.
inline uint64_t runWorkloadCycles(const Workload &W, const Module &M,
                                  const MachineDescription &MD) {
  Interpreter I(M);
  I.enableTrace(true);
  if (W.Setup)
    W.Setup(I, M);
  Function *Entry = const_cast<Module &>(M).findFunction(W.EntryFunction);
  GIS_ASSERT(Entry, "workload entry function missing");
  GIS_ASSERT(Entry->params().size() == W.Args.size(),
             "workload argument count mismatch");
  for (size_t K = 0; K != W.Args.size(); ++K)
    I.setReg(Entry->params()[K], W.Args[K]);
  ExecResult R = I.run(*Entry, W.MaxSteps);
  GIS_ASSERT(!R.Trapped, "workload trapped");
  TimingSimulator Sim(MD);
  return Sim.simulate(I.trace()).Cycles;
}

/// Convenience: compile [+ schedule] + run, returning cycles.
inline uint64_t workloadCycles(const Workload &W, const MachineDescription &MD,
                               const std::optional<PipelineOptions> &Sched) {
  auto M = buildWorkload(W, MD, Sched);
  return runWorkloadCycles(W, *M, MD);
}

/// Baseline pipeline configuration: the paper's BASE compiler has global
/// scheduling disabled (basic-block scheduling stays on).
inline PipelineOptions baseOptions() {
  PipelineOptions Opts;
  Opts.Level = SchedLevel::None;
  Opts.EnableUnroll = false;
  Opts.EnableRotate = false;
  return Opts;
}

/// Useful-only global scheduling (the paper's first RTI column).
inline PipelineOptions usefulOptions() {
  PipelineOptions Opts;
  Opts.Level = SchedLevel::Useful;
  return Opts;
}

/// Useful + 1-branch speculative (the paper's second RTI column).
inline PipelineOptions speculativeOptions() {
  PipelineOptions Opts;
  Opts.Level = SchedLevel::Speculative;
  return Opts;
}

/// Wall-clock seconds of one call to \p Fn, repeated until at least ~20ms
/// have elapsed, divided by the repetition count.
template <typename CallableT> double secondsPerCall(CallableT Fn) {
  using Clock = std::chrono::steady_clock;
  unsigned Reps = 1;
  while (true) {
    auto Start = Clock::now();
    for (unsigned K = 0; K != Reps; ++K)
      Fn();
    double Elapsed =
        std::chrono::duration<double>(Clock::now() - Start).count();
    if (Elapsed > 0.02 || Reps >= 1u << 20)
      return Elapsed / Reps;
    Reps *= 4;
  }
}

/// Scheduling-only wall-clock seconds for one workload: seconds per
/// compile+schedule call minus seconds per compile-only call.  Used to
/// compare pipeline configurations whose run-time output is identical but
/// whose compile-time cost differs (e.g. the transactional layer's
/// checkpoint/verify overhead).
inline double scheduleOnlySeconds(const Workload &W,
                                  const MachineDescription &MD,
                                  const PipelineOptions &Opts) {
  double CompileOnly = secondsPerCall([&] {
    auto M = compileMiniCOrDie(W.Source);
    GIS_ASSERT(M, "workload must compile");
  });
  double Total = secondsPerCall([&] {
    auto M = compileMiniCOrDie(W.Source);
    scheduleModule(*M, MD, Opts);
  });
  return Total > CompileOnly ? Total - CompileOnly : 0.0;
}

/// Total rollbacks recorded while scheduling one workload (should be zero
/// outside fault injection; reported so regressions are visible).
inline unsigned scheduleRollbacks(const Workload &W,
                                  const MachineDescription &MD,
                                  const PipelineOptions &Opts) {
  auto M = compileMiniCOrDie(W.Source);
  PipelineStats Stats = scheduleModule(*M, MD, Opts);
  return Stats.RegionsRolledBack + Stats.TransformsRolledBack;
}

/// Prints a horizontal rule sized for our tables.
inline void rule(unsigned Width = 72) {
  std::fputs((std::string(Width, '-') + "\n").c_str(), stdout);
}

/// Hardware threads of the host, never zero (hardware_concurrency() may
/// return 0 when the count is unknowable).  Thread-scaling measurements
/// are only interpretable relative to this number, so every BENCH_*.json
/// blob records it.
inline unsigned hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

/// Merges one top-level \p Key section into the shared benchmark JSON
/// document at \p Path: strips the closing brace of the existing
/// document, drops a stale copy of the section (and anything after it) on
/// re-runs, and appends \p Section (a complete JSON value).  A fresh
/// document is opened with a "hardware_threads" field so the blob is
/// self-describing no matter which benchmark binary runs first.  Returns
/// false (with a diagnostic naming \p Tool) when the file is unwritable.
inline bool mergeJsonSection(const char *Path, const char *Tool,
                             const char *Key, const std::string &Section) {
  std::string Existing;
  if (std::FILE *In = std::fopen(Path, "r")) {
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
      Existing.append(Buf, N);
    std::fclose(In);
    // Strip exactly one closing brace -- the document's own.  Stripping
    // every trailing '}' would also eat the brace of a nested object that
    // happens to close the last section.
    while (!Existing.empty() &&
           (Existing.back() == '\n' || Existing.back() == ' '))
      Existing.pop_back();
    if (!Existing.empty() && Existing.back() == '}')
      Existing.pop_back();
  }
  if (size_t P = Existing.rfind(std::string("\n  \"") + Key + "\"");
      P != std::string::npos)
    Existing.resize(P);
  while (!Existing.empty() &&
         (Existing.back() == ',' || Existing.back() == '\n' ||
          Existing.back() == ' '))
    Existing.pop_back();
  if (Existing == "{")
    Existing.clear();
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "%s: cannot write %s\n", Tool, Path);
    return false;
  }
  if (Existing.empty())
    std::fprintf(Out, "{\n  \"hardware_threads\": %u,", hardwareThreads());
  else
    std::fputs((Existing + ",").c_str(), Out);
  std::fprintf(Out, "\n  \"%s\": %s\n}\n", Key, Section.c_str());
  std::fclose(Out);
  return true;
}

} // namespace bench
} // namespace gis

#endif // GIS_BENCH_BENCHCOMMON_H

# Empty dependencies file for gis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgis.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ControlDeps.cpp" "src/CMakeFiles/gis.dir/analysis/ControlDeps.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/ControlDeps.cpp.o.d"
  "/root/repo/src/analysis/DataDeps.cpp" "src/CMakeFiles/gis.dir/analysis/DataDeps.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/DataDeps.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/gis.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Graph.cpp" "src/CMakeFiles/gis.dir/analysis/Graph.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/Graph.cpp.o.d"
  "/root/repo/src/analysis/GraphViz.cpp" "src/CMakeFiles/gis.dir/analysis/GraphViz.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/GraphViz.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/CMakeFiles/gis.dir/analysis/Liveness.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/Liveness.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/gis.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/MemDisambig.cpp" "src/CMakeFiles/gis.dir/analysis/MemDisambig.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/MemDisambig.cpp.o.d"
  "/root/repo/src/analysis/PDG.cpp" "src/CMakeFiles/gis.dir/analysis/PDG.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/PDG.cpp.o.d"
  "/root/repo/src/analysis/RegPressure.cpp" "src/CMakeFiles/gis.dir/analysis/RegPressure.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/RegPressure.cpp.o.d"
  "/root/repo/src/analysis/Region.cpp" "src/CMakeFiles/gis.dir/analysis/Region.cpp.o" "gcc" "src/CMakeFiles/gis.dir/analysis/Region.cpp.o.d"
  "/root/repo/src/frontend/CodeGen.cpp" "src/CMakeFiles/gis.dir/frontend/CodeGen.cpp.o" "gcc" "src/CMakeFiles/gis.dir/frontend/CodeGen.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/CMakeFiles/gis.dir/frontend/Lexer.cpp.o" "gcc" "src/CMakeFiles/gis.dir/frontend/Lexer.cpp.o.d"
  "/root/repo/src/frontend/Parser.cpp" "src/CMakeFiles/gis.dir/frontend/Parser.cpp.o" "gcc" "src/CMakeFiles/gis.dir/frontend/Parser.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/gis.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/gis.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/gis.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/gis.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/CMakeFiles/gis.dir/ir/Opcode.cpp.o" "gcc" "src/CMakeFiles/gis.dir/ir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/gis.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/gis.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/gis.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/gis.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Register.cpp" "src/CMakeFiles/gis.dir/ir/Register.cpp.o" "gcc" "src/CMakeFiles/gis.dir/ir/Register.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/gis.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/gis.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/machine/MachineDescription.cpp" "src/CMakeFiles/gis.dir/machine/MachineDescription.cpp.o" "gcc" "src/CMakeFiles/gis.dir/machine/MachineDescription.cpp.o.d"
  "/root/repo/src/machine/Timing.cpp" "src/CMakeFiles/gis.dir/machine/Timing.cpp.o" "gcc" "src/CMakeFiles/gis.dir/machine/Timing.cpp.o.d"
  "/root/repo/src/sched/Duplication.cpp" "src/CMakeFiles/gis.dir/sched/Duplication.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/Duplication.cpp.o.d"
  "/root/repo/src/sched/GlobalScheduler.cpp" "src/CMakeFiles/gis.dir/sched/GlobalScheduler.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/GlobalScheduler.cpp.o.d"
  "/root/repo/src/sched/Heuristics.cpp" "src/CMakeFiles/gis.dir/sched/Heuristics.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/Heuristics.cpp.o.d"
  "/root/repo/src/sched/ListScheduler.cpp" "src/CMakeFiles/gis.dir/sched/ListScheduler.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/ListScheduler.cpp.o.d"
  "/root/repo/src/sched/LocalScheduler.cpp" "src/CMakeFiles/gis.dir/sched/LocalScheduler.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/LocalScheduler.cpp.o.d"
  "/root/repo/src/sched/LoopShape.cpp" "src/CMakeFiles/gis.dir/sched/LoopShape.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/LoopShape.cpp.o.d"
  "/root/repo/src/sched/Pipeline.cpp" "src/CMakeFiles/gis.dir/sched/Pipeline.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/Pipeline.cpp.o.d"
  "/root/repo/src/sched/PreRenaming.cpp" "src/CMakeFiles/gis.dir/sched/PreRenaming.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/PreRenaming.cpp.o.d"
  "/root/repo/src/sched/Renaming.cpp" "src/CMakeFiles/gis.dir/sched/Renaming.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/Renaming.cpp.o.d"
  "/root/repo/src/sched/Report.cpp" "src/CMakeFiles/gis.dir/sched/Report.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/Report.cpp.o.d"
  "/root/repo/src/sched/Rotate.cpp" "src/CMakeFiles/gis.dir/sched/Rotate.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/Rotate.cpp.o.d"
  "/root/repo/src/sched/Unroll.cpp" "src/CMakeFiles/gis.dir/sched/Unroll.cpp.o" "gcc" "src/CMakeFiles/gis.dir/sched/Unroll.cpp.o.d"
  "/root/repo/src/support/Format.cpp" "src/CMakeFiles/gis.dir/support/Format.cpp.o" "gcc" "src/CMakeFiles/gis.dir/support/Format.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/CMakeFiles/gis.dir/support/StringUtils.cpp.o" "gcc" "src/CMakeFiles/gis.dir/support/StringUtils.cpp.o.d"
  "/root/repo/src/workloads/RandomProgram.cpp" "src/CMakeFiles/gis.dir/workloads/RandomProgram.cpp.o" "gcc" "src/CMakeFiles/gis.dir/workloads/RandomProgram.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/gis.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/gis.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

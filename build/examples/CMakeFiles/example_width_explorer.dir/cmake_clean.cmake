file(REMOVE_RECURSE
  "CMakeFiles/example_width_explorer.dir/width_explorer.cpp.o"
  "CMakeFiles/example_width_explorer.dir/width_explorer.cpp.o.d"
  "example_width_explorer"
  "example_width_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_width_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_width_explorer.
# This may be replaced when dependencies are built.

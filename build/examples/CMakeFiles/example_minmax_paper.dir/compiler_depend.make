# Empty compiler generated dependencies file for example_minmax_paper.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_minmax_paper.dir/minmax_paper.cpp.o"
  "CMakeFiles/example_minmax_paper.dir/minmax_paper.cpp.o.d"
  "example_minmax_paper"
  "example_minmax_paper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_minmax_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_gisc.dir/gisc.cpp.o"
  "CMakeFiles/example_gisc.dir/gisc.cpp.o.d"
  "example_gisc"
  "example_gisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_gisc.
# This may be replaced when dependencies are built.

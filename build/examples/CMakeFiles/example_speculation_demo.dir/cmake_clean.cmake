file(REMOVE_RECURSE
  "CMakeFiles/example_speculation_demo.dir/speculation_demo.cpp.o"
  "CMakeFiles/example_speculation_demo.dir/speculation_demo.cpp.o.d"
  "example_speculation_demo"
  "example_speculation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_speculation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

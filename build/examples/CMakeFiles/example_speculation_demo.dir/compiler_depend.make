# Empty compiler generated dependencies file for example_speculation_demo.
# This may be replaced when dependencies are built.

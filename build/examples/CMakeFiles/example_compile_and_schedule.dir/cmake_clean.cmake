file(REMOVE_RECURSE
  "CMakeFiles/example_compile_and_schedule.dir/compile_and_schedule.cpp.o"
  "CMakeFiles/example_compile_and_schedule.dir/compile_and_schedule.cpp.o.d"
  "example_compile_and_schedule"
  "example_compile_and_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compile_and_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_compile_and_schedule.
# This may be replaced when dependencies are built.

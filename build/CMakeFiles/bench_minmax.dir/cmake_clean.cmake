file(REMOVE_RECURSE
  "CMakeFiles/bench_minmax.dir/bench/bench_minmax.cpp.o"
  "CMakeFiles/bench_minmax.dir/bench/bench_minmax.cpp.o.d"
  "bench/bench_minmax"
  "bench/bench_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gis_tests.
# This may be replaced when dependencies are built.

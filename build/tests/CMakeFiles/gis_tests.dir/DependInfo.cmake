
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis2_test.cpp" "tests/CMakeFiles/gis_tests.dir/analysis2_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/analysis2_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/gis_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/duplication_test.cpp" "tests/CMakeFiles/gis_tests.dir/duplication_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/duplication_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/gis_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/frontend2_test.cpp" "tests/CMakeFiles/gis_tests.dir/frontend2_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/frontend2_test.cpp.o.d"
  "/root/repo/tests/frontend_test.cpp" "tests/CMakeFiles/gis_tests.dir/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/frontend_test.cpp.o.d"
  "/root/repo/tests/graphviz_test.cpp" "tests/CMakeFiles/gis_tests.dir/graphviz_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/graphviz_test.cpp.o.d"
  "/root/repo/tests/heuristics_test.cpp" "tests/CMakeFiles/gis_tests.dir/heuristics_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/heuristics_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/gis_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/interp_test.cpp" "tests/CMakeFiles/gis_tests.dir/interp_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/interp_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/gis_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/machine_test.cpp" "tests/CMakeFiles/gis_tests.dir/machine_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/machine_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/gis_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/gis_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/pdg_test.cpp" "tests/CMakeFiles/gis_tests.dir/pdg_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/pdg_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/gis_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/profile_test.cpp" "tests/CMakeFiles/gis_tests.dir/profile_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/profile_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/gis_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/region2_test.cpp" "tests/CMakeFiles/gis_tests.dir/region2_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/region2_test.cpp.o.d"
  "/root/repo/tests/regpressure_test.cpp" "tests/CMakeFiles/gis_tests.dir/regpressure_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/regpressure_test.cpp.o.d"
  "/root/repo/tests/renaming_test.cpp" "tests/CMakeFiles/gis_tests.dir/renaming_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/renaming_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/gis_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/gis_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/sched_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/gis_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/timing2_test.cpp" "tests/CMakeFiles/gis_tests.dir/timing2_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/timing2_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/gis_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/gis_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

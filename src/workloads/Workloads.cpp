//===- workloads/Workloads.cpp - Benchmark workloads ------------------------===//

#include "workloads/Workloads.h"

#include "ir/Parser.h"
#include "support/Format.h"
#include "support/RNG.h"

using namespace gis;

//===----------------------------------------------------------------------===
// The paper's running example
//===----------------------------------------------------------------------===

std::string gis::minmaxFigure1Source() {
  return R"(
int a[4096];
int minmax(int n) {
  int i;
  int u;
  int v;
  int min = a[0];
  int max = min;
  i = 1;
  while (i < n) {
    u = a[i];
    v = a[i + 1];
    if (u > v) {
      if (u > max) max = u;
      if (v < min) min = v;
    }
    else {
      if (v > max) max = v;
      if (u < min) min = u;
    }
    i = i + 2;
  }
  print(min);
  print(max);
  return 0;
}
)";
}

std::unique_ptr<Module> gis::minmaxFigure2Module() {
  return parseModuleOrDie(R"(
; Figure 2 of the paper: the minmax loop in RS/6000 pseudo-code, with a
; pre-header (BL0) and exit (BL11) added so the function is runnable.
; Block naming: the paper's labels CL.0/CL.4/CL.6/CL.9/CL.11 correspond to
; BL1/BL6/BL4/BL10/BL8.
func minmax {
BL0:
  LI r31 = 1000
  L r28 = mem[r31 + 0]
  LR r30 = r28
  LI r29 = 1
BL1:
  I1: L r12 = mem[r31 + 4]          ; load u
  I2: LU r0, r31 = mem[r31 + 8]     ; load v and increment index
  I3: C cr7 = r12, r0               ; u > v
  I4: BF BL6, cr7, gt
BL2:
  I5: C cr6 = r12, r30              ; u > max
  I6: BF BL4, cr6, gt
BL3:
  I7: LR r30 = r12                  ; max = u
BL4:
  I8: C cr7 = r0, r28               ; v < min
  I9: BF BL10, cr7, lt
BL5:
  I10: LR r28 = r0                  ; min = v
  I11: B BL10
BL6:
  I12: C cr6 = r0, r30              ; v > max
  I13: BF BL8, cr6, gt
BL7:
  I14: LR r30 = r0                  ; max = v
BL8:
  I15: C cr7 = r12, r28             ; u < min
  I16: BF BL10, cr7, lt
BL9:
  I17: LR r28 = r12                 ; min = u
BL10:
  I18: AI r29 = r29, 2              ; i = i + 2
  I19: C cr4 = r29, r27             ; i < n
  I20: BT BL1, cr4, lt
BL11:
  CALL print(r28)
  CALL print(r30)
  RET
}
)");
}

void gis::seedMinmaxData(Interpreter &I, int Elements,
                         int UpdatesPerIteration) {
  for (int K = 0; K != Elements; ++K) {
    int64_t V = 0;
    switch (UpdatesPerIteration) {
    case 0:
      V = 5; // constant array: min/max settle after the first iteration
      break;
    case 1:
      V = K; // increasing values: one max update per iteration
      break;
    default:
      // Pairs (u, v) with u ever larger and v ever smaller: two updates.
      V = (K % 2 == 1) ? 1000 + K : -1000 - K;
      break;
    }
    I.storeWord(1000 + 4 * K, V);
  }
  I.setReg(Reg::gpr(27), Elements - 2);
}

//===----------------------------------------------------------------------===
// SPEC-shaped workloads
//===----------------------------------------------------------------------===

namespace {

/// LI: a small stack-machine interpreter.  The dispatch is a chain of
/// equality tests on data loaded from memory -- many tiny basic blocks
/// ended by unpredictable branches, the code shape the paper's
/// introduction blames for NOP-heavy basic-block schedules.  The HALT
/// check (never taken on this input, but the compiler cannot know) exits
/// the loop from the middle, so no block is equivalent to the dispatch
/// header: useful motion finds nothing, and all global gains come from
/// *speculatively* hoisting the dispatch-chain compares -- the paper's LI
/// signature (2.0% useful vs 6.9% speculative).
const char *LISource = R"(
int prog[512];
int stk[64];
int li_interp(int n) {
  int pc = 0;
  int sp = 0;
  int acc = 0;
  int top = 0;
  int steps = 0;
  while (steps < n) {
    pc = 0;
    while (pc < 498) {
      int op = prog[pc];
      int arg = prog[pc + 1];
      pc = pc + 2;
      steps = steps + 1;
      if (op == 9) break;
      if (op == 0) {
        stk[sp] = arg;
        sp = sp + 1;
        if (sp >= 60) sp = 0;
        continue;
      }
      if (op == 1) { acc = acc + stk[sp] + arg; continue; }
      if (op == 2) {
        acc = acc - arg;
        if (acc < 0) acc = acc + 9973;
        continue;
      }
      if (op == 3) { top = stk[sp] + acc; continue; }
      if (op == 4) { acc = acc + top - arg; continue; }
      acc = acc + 1;
    }
  }
  print(acc);
  print(sp);
  print(top);
  return acc;
}
)";

/// EQNTOTT: word-by-word comparison of product-term bit vectors (the shape
/// of eqntott's cmppt hot path), with the minmax-like structure the paper's
/// useful scheduling exploits: a loop whose latch block is equivalent to
/// the loads/compare header, so the induction update and loop-closing
/// compare hoist usefully into the delayed-load and compare-branch slots.
/// The diamond arms only update accumulators that are live on every exit,
/// which the Section 5.3 rule refuses to speculate: the speculative level
/// adds almost nothing, matching the paper's 7.1% -> 7.3%.
const char *EqntottSource = R"(
int pts[4096];
int eqntott_cmp(int npairs, int width) {
  int i = 0;
  int gt = 0;
  int le = 0;
  while (i < npairs) {
    int a = i * 2 * width;
    int b = a + width;
    int k = 0;
    while (k < width) {
      int x = pts[a + k];
      int y = pts[b + k];
      if (x > y) { gt = gt + 1; }
      if (x < y) { le = le + 1; }
      k = k + 1;
    }
    i = i + 1;
  }
  print(gt);
  print(le);
  return gt * 1000 + le;
}
)";

/// ESPRESSO: cube intersection/containment over wide bit rows.  The body
/// is deliberately a very large straight-line block: the loop region
/// exceeds the paper's 256-instruction cap, so the global scheduler skips
/// it (Section 6: only "small" regions are scheduled) and the basic-block
/// scheduler has already extracted the available parallelism.
std::string espressoSource() {
  std::string S = R"(
int cubes[8192];
int espresso_inter(int rows, int width) {
  int r = 0;
  int full = 0;
  int empty = 0;
  while (r < rows) {
    int a = r * 2 * width;
    int b = a + width;
    int acc = 0;
)";
  // A long straight-line body: word-by-word AND/OR accumulation, fully
  // unrolled in the source (width is fixed at 24 below).
  for (int K = 0; K != 24; ++K)
    S += formatString("    int t%d = cubes[a + %d] * cubes[b + %d];\n"
                      "    acc = acc + t%d - (t%d / 8) * 7;\n",
                      K, K, K, K, K);
  S += R"(
    if (acc == 0) empty = empty + 1;
    if (acc > 100) full = full + 1;
    r = r + 1;
  }
  print(empty);
  print(full);
  return empty * 1000 + full;
}
)";
  return S;
}

/// GCC: symbol-table / tree-walking code with frequent small subroutine
/// calls.  Calls are scheduling barriers that never move past block
/// boundaries, so global scheduling finds almost nothing -- matching the
/// paper's ~0% result for GCC.
const char *GCCSource = R"(
int nodes[4096];
int gcc_leafsum(int base, int count) {
  int s = 0;
  int i = 0;
  while (i < count) {
    s = s + nodes[base + i];
    i = i + 1;
  }
  return s;
}
int gcc_hash(int x) {
  int h = x * 31 + 7;
  int m = h % 1024;
  if (m < 0) m = 0 - m;
  return m;
}
int gcc_walk(int n) {
  int i = 0;
  int acc = 0;
  while (i < n) {
    int kind = nodes[i % 4000];
    int slot = gcc_hash(kind + i);
    if (kind % 3 == 0) {
      acc = acc + gcc_leafsum(slot % 512, 4);
    } else {
      if (kind % 3 == 1) {
        acc = acc + gcc_hash(kind);
      } else {
        acc = acc - gcc_leafsum(slot % 900, 2);
      }
    }
    i = i + 1;
  }
  print(acc);
  return acc;
}
)";

} // namespace

std::vector<Workload> gis::specLikeWorkloads() {
  std::vector<Workload> W;

  {
    Workload L;
    L.Name = "LI";
    L.Description = "interpreter dispatch: tiny blocks, unpredictable "
                    "branches (speculation-bound)";
    L.Source = LISource;
    L.EntryFunction = "li_interp";
    L.Args = {20000};
    L.Setup = [](Interpreter &I, const Module &M) {
      const GlobalArray *Prog = nullptr;
      for (const GlobalArray &G : M.globals())
        if (G.Name == "prog")
          Prog = &G;
      GIS_ASSERT(Prog, "LI workload must have a 'prog' array");
      RNG R(0xC0FFEE);
      for (int K = 0; K != 512; ++K)
        I.storeWord(Prog->Address + 4 * K,
                    K % 2 == 0 ? R.range(0, 5) : R.range(-50, 50));
    };
    W.push_back(std::move(L));
  }

  {
    Workload E;
    E.Name = "EQNTOTT";
    E.Description = "bit-vector compare loops: equivalent head/tail blocks "
                    "(useful-motion-bound)";
    E.Source = EqntottSource;
    E.EntryFunction = "eqntott_cmp";
    E.Args = {128, 16}; // 128 pairs of 16-word vectors
    E.Setup = [](Interpreter &I, const Module &M) {
      const GlobalArray &Pts = M.globals().front();
      RNG R(0xBEEF);
      for (int Pair = 0; Pair != 128; ++Pair) {
        int64_t A = Pts.Address + 4 * (Pair * 32);
        int64_t B = A + 4 * 16;
        for (int K = 0; K != 16; ++K) {
          int64_t V = R.range(0, 7);
          I.storeWord(A + 4 * K, V);
          // Mostly-equal vectors: the inner loop usually runs to the end.
          int64_t V2 = R.chancePercent(10) ? R.range(0, 7) : V;
          I.storeWord(B + 4 * K, V2);
        }
      }
    };
    W.push_back(std::move(E));
  }

  {
    Workload S;
    S.Name = "ESPRESSO";
    S.Description = "huge straight-line loop bodies: region over the "
                    "256-instruction cap (no global gain)";
    S.Source = espressoSource();
    S.EntryFunction = "espresso_inter";
    S.Args = {96, 24};
    S.Setup = [](Interpreter &I, const Module &M) {
      const GlobalArray &Cubes = M.globals().front();
      RNG R(0xE59);
      for (int K = 0; K != 96 * 48; ++K)
        I.storeWord(Cubes.Address + 4 * K, R.range(0, 3));
    };
    W.push_back(std::move(S));
  }

  {
    Workload G;
    G.Name = "GCC";
    G.Description = "tree walking with frequent calls: barriers defeat "
                    "motion (no global gain)";
    G.Source = GCCSource;
    G.EntryFunction = "gcc_walk";
    G.Args = {4000};
    G.Setup = [](Interpreter &I, const Module &M) {
      const GlobalArray &Nodes = M.globals().front();
      RNG R(0x6CC);
      for (int K = 0; K != 4096; ++K)
        I.storeWord(Nodes.Address + 4 * K, R.range(0, 999));
    };
    W.push_back(std::move(G));
  }

  return W;
}

//===- workloads/RandomProgram.h - Random program generator -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of random (but always terminating and trap-free)
/// mini-C programs, used by property tests: whatever the generator emits,
/// the scheduled program must behave exactly like the original.
///
/// Guarantees by construction:
///  - loops are counted (`while (cN < bound)` with a dedicated counter
///    that the body only increments), so every program terminates;
///  - division and remainder use constant divisors in 2..9, so no traps;
///  - array subscripts are masked through a non-negative remainder idiom,
///    so all accesses stay inside the declared arrays;
///  - helper-function calls form an acyclic call graph.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_WORKLOADS_RANDOMPROGRAM_H
#define GIS_WORKLOADS_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace gis {

/// Tuning knobs for the generator.
struct RandomProgramOptions {
  unsigned MaxStmtsPerFunction = 24;
  unsigned MaxExprDepth = 3;
  unsigned MaxBlockDepth = 3;
  unsigned NumHelpers = 2;     ///< helper functions callable from main
  unsigned NumScalars = 5;     ///< mutable scalar variables per function
  unsigned ArrayWords = 16;    ///< size of each of the two global arrays
  unsigned MaxLoopTrip = 12;   ///< upper bound for counted loops
};

/// Generates a self-contained mini-C program whose entry point is
/// `int main()`; it prints several observable values and returns a
/// checksum.  The same seed always yields the same program.
std::string generateRandomMiniC(uint64_t Seed,
                                const RandomProgramOptions &Opts = {});

} // namespace gis

#endif // GIS_WORKLOADS_RANDOMPROGRAM_H

//===- workloads/Workloads.h - Benchmark workloads ---------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workloads.  The paper measured four C programs from the
/// SPEC89 suite (LI, EQNTOTT, ESPRESSO, GCC) compiled by the IBM XL C
/// compiler; those sources and that compiler are not available, so each is
/// substituted by a synthetic mini-C program exhibiting the code shape the
/// paper attributes to it (see DESIGN.md section 2):
///
///  - LI        -> a bytecode-interpreter loop: tiny basic blocks ending in
///                 data-dependent, unpredictable branches.  Global gains
///                 come mostly from *speculative* motion.
///  - EQNTOTT   -> bit-vector comparison loops whose hot path pairs
///                 equivalent header/tail blocks with load-delay and
///                 compare-branch slots.  Gains come from *useful* motion.
///  - ESPRESSO  -> cube-manipulation loops with very large straight-line
///                 bodies; the region exceeds the paper's 256-instruction
///                 cap, so global scheduling leaves it to the (already
///                 good) basic-block scheduler: improvement ~ 0.
///  - GCC       -> small-block tree walking dominated by subroutine calls,
///                 which are scheduling barriers that never move:
///                 improvement ~ 0.
///
/// Also exports the paper's running example (Figures 1 and 2).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_WORKLOADS_WORKLOADS_H
#define GIS_WORKLOADS_WORKLOADS_H

#include "interp/Interpreter.h"
#include "ir/Module.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gis {

/// One benchmark workload: mini-C source plus a run recipe.
struct Workload {
  std::string Name;          ///< paper benchmark this substitutes for
  std::string Description;   ///< one-line code-shape summary
  std::string Source;        ///< mini-C program text
  std::string EntryFunction; ///< function to execute
  std::vector<int64_t> Args; ///< arguments for the entry function
  /// Seeds interpreter memory (input data) before the run.
  std::function<void(Interpreter &, const Module &)> Setup;
  uint64_t MaxSteps = 50'000'000;
};

/// The four SPEC-shaped workloads, in the paper's Figure 7/8 row order
/// (LI, EQNTOTT, ESPRESSO, GCC).
std::vector<Workload> specLikeWorkloads();

/// The mini-C source of the paper's Figure 1 (minmax).
std::string minmaxFigure1Source();

/// The exact RS/6000 pseudo-code of the paper's Figure 2, as a module
/// (loop blocks BL1-BL10 plus a pre-header and exit), ready to schedule.
std::unique_ptr<Module> minmaxFigure2Module();

/// Seeds the interpreter for a minmax run over \p Elements array values
/// driving \p UpdatesPerIteration (0, 1 or 2) min/max updates per
/// iteration; returns the expected number of loop iterations.
void seedMinmaxData(Interpreter &I, int Elements, int UpdatesPerIteration);

} // namespace gis

#endif // GIS_WORKLOADS_WORKLOADS_H

//===- workloads/RandomProgram.cpp - Random program generator --------------===//

#include "workloads/RandomProgram.h"

#include "support/Format.h"
#include "support/RNG.h"

#include <string>
#include <vector>

using namespace gis;

namespace {

/// Emits one function's body statement by statement.
class FunctionEmitter {
public:
  FunctionEmitter(RNG &R, const RandomProgramOptions &Opts,
                  const std::vector<std::string> &Callees, std::string &Out)
      : R(R), Opts(Opts), Callees(Callees), Out(Out) {}

  void emitBody(unsigned NumParams) {
    Indent = 1;
    // Declare the mutable scalar pool, seeding from parameters when
    // available.
    for (unsigned K = 0; K != Opts.NumScalars; ++K) {
      if (K < NumParams)
        line(formatString("int v%u = p%u;", K, K));
      else
        line(formatString("int v%u = %lld;", K,
                          static_cast<long long>(R.range(-20, 20))));
    }
    unsigned Stmts = 4 + static_cast<unsigned>(
                             R.nextBelow(Opts.MaxStmtsPerFunction - 3));
    for (unsigned K = 0; K != Stmts; ++K)
      emitStmt(1);
    // Observable result: print the scalars and return a checksum.
    for (unsigned K = 0; K != Opts.NumScalars; ++K)
      line(formatString("print(v%u);", K));
    std::string Sum = "v0";
    for (unsigned K = 1; K != Opts.NumScalars; ++K)
      Sum += formatString(" + v%u * %u", K, K + 1);
    line("return " + Sum + ";");
  }

private:
  void line(const std::string &S) {
    Out += std::string(Indent * 2, ' ') + S + "\n";
  }

  std::string scalar() {
    return formatString("v%u", static_cast<unsigned>(
                                   R.nextBelow(Opts.NumScalars)));
  }

  std::string arrayName() { return R.chancePercent(50) ? "ga" : "gb"; }

  /// An always-in-range subscript: a dedicated index variable that was
  /// masked beforehand.  Emits the masking statements and returns the
  /// index variable name.
  std::string maskedIndex(const std::string &E) {
    std::string Idx = formatString("ix%u", NextIndexVar++);
    line(formatString("int %s = (%s) %% %u;", Idx.c_str(), E.c_str(),
                      Opts.ArrayWords));
    line(formatString("if (%s < 0) %s = 0 - %s;", Idx.c_str(), Idx.c_str(),
                      Idx.c_str()));
    return Idx;
  }

  /// A side-effect-free expression of bounded depth.
  std::string expr(unsigned Depth) {
    if (Depth >= Opts.MaxExprDepth || R.chancePercent(35)) {
      // Leaf.
      if (R.chancePercent(50))
        return scalar();
      return formatString("%lld", static_cast<long long>(R.range(-99, 99)));
    }
    switch (R.nextBelow(8)) {
    case 0:
      return "(" + expr(Depth + 1) + " + " + expr(Depth + 1) + ")";
    case 1:
      return "(" + expr(Depth + 1) + " - " + expr(Depth + 1) + ")";
    case 2:
      return "(" + expr(Depth + 1) + " * " +
             formatString("%lld", static_cast<long long>(R.range(-9, 9))) +
             ")";
    case 3:
      // Constant divisor: trap-free.
      return "(" + expr(Depth + 1) +
             formatString(" / %lld", static_cast<long long>(R.range(2, 9))) +
             ")";
    case 4:
      return "(" + expr(Depth + 1) +
             formatString(" %% %lld", static_cast<long long>(R.range(2, 9))) +
             ")";
    case 5:
      return "(-" + expr(Depth + 1) + ")";
    case 6:
      return "(" + cond(Depth + 1) + ")"; // boolean as value
    default:
      return scalar();
    }
  }

  /// A boolean condition of bounded depth.
  std::string cond(unsigned Depth) {
    if (Depth >= Opts.MaxExprDepth || R.chancePercent(50)) {
      static const char *Rel[] = {"<", ">", "<=", ">=", "==", "!="};
      return expr(Depth + 1) + " " + Rel[R.nextBelow(6)] + " " +
             expr(Depth + 1);
    }
    switch (R.nextBelow(3)) {
    case 0:
      return "(" + cond(Depth + 1) + " && " + cond(Depth + 1) + ")";
    case 1:
      return "(" + cond(Depth + 1) + " || " + cond(Depth + 1) + ")";
    default:
      return "!(" + cond(Depth + 1) + ")";
    }
  }

  void emitStmt(unsigned Depth) {
    unsigned Choice = static_cast<unsigned>(R.nextBelow(100));

    if (Choice < 30) {
      // Scalar assignment.
      line(scalar() + " = " + expr(0) + ";");
      return;
    }
    if (Choice < 42) {
      // Array store.
      std::string Idx = maskedIndex(expr(1));
      line(arrayName() + "[" + Idx + "] = " + expr(0) + ";");
      return;
    }
    if (Choice < 54) {
      // Array load into a scalar.
      std::string Idx = maskedIndex(expr(1));
      line(scalar() + " = " + arrayName() + "[" + Idx + "];");
      return;
    }
    if (Choice < 72 && Depth < Opts.MaxBlockDepth) {
      // if / if-else.
      line("if (" + cond(0) + ") {");
      ++Indent;
      unsigned N = 1 + static_cast<unsigned>(R.nextBelow(3));
      for (unsigned K = 0; K != N; ++K)
        emitStmt(Depth + 1);
      --Indent;
      if (R.chancePercent(50)) {
        line("} else {");
        ++Indent;
        unsigned M = 1 + static_cast<unsigned>(R.nextBelow(3));
        for (unsigned K = 0; K != M; ++K)
          emitStmt(Depth + 1);
        --Indent;
      }
      line("}");
      return;
    }
    if (Choice < 88 && Depth < Opts.MaxBlockDepth) {
      // Counted loop with a dedicated counter variable.
      std::string Counter = formatString("c%u", NextCounterVar++);
      int64_t Trip = R.range(1, Opts.MaxLoopTrip);
      line(formatString("int %s = 0;", Counter.c_str()));
      line(formatString("while (%s < %lld) {", Counter.c_str(),
                        static_cast<long long>(Trip)));
      ++Indent;
      unsigned N = 1 + static_cast<unsigned>(R.nextBelow(3));
      for (unsigned K = 0; K != N; ++K)
        emitStmt(Depth + 1);
      line(formatString("%s = %s + 1;", Counter.c_str(), Counter.c_str()));
      --Indent;
      line("}");
      return;
    }
    if (Choice < 94 && !Callees.empty()) {
      // Helper call.
      const std::string &Callee =
          Callees[R.nextBelow(Callees.size())];
      line(scalar() + " = " + Callee + "(" + expr(1) + ", " + expr(1) +
           ");");
      return;
    }
    // Print (observability).
    line("print(" + expr(0) + ");");
  }

  RNG &R;
  const RandomProgramOptions &Opts;
  const std::vector<std::string> &Callees;
  std::string &Out;
  unsigned Indent = 0;
  unsigned NextIndexVar = 0;
  unsigned NextCounterVar = 0;
};

} // namespace

std::string gis::generateRandomMiniC(uint64_t Seed,
                                     const RandomProgramOptions &Opts) {
  RNG R(Seed);
  std::string Out;
  Out += formatString("int ga[%u];\nint gb[%u];\n", Opts.ArrayWords,
                      Opts.ArrayWords);

  // Helpers form an acyclic call graph: helper K may call helpers < K.
  std::vector<std::string> Defined;
  for (unsigned H = 0; H != Opts.NumHelpers; ++H) {
    std::string Name = formatString("helper%u", H);
    Out += "int " + Name + "(int p0, int p1) {\n";
    FunctionEmitter E(R, Opts, Defined, Out);
    E.emitBody(/*NumParams=*/2);
    Out += "}\n";
    Defined.push_back(Name);
  }

  Out += "int main() {\n";
  FunctionEmitter E(R, Opts, Defined, Out);
  E.emitBody(/*NumParams=*/0);
  Out += "}\n";
  return Out;
}

//===- sched/Transaction.cpp - Guarded function transforms -----------------===//

#include "sched/Transaction.h"

#include "interp/DifferentialOracle.h"
#include "ir/Checkpoint.h"
#include "ir/Verifier.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"

using namespace gis;

TransactionResult
gis::runFunctionTransaction(Function &F, const char *Stage,
                            const TransactionConfig &Cfg,
                            const std::function<Status()> &Body) {
  TransactionResult R;
  if (!Cfg.Enabled) {
    R.S = Body();
    if (!R.S.isOk())
      fatalError(__FILE__, __LINE__, R.S.str().c_str());
    R.Committed = true;
    return R;
  }

  FunctionSnapshot Snap(F);
  R.S = Body();
  if (!R.S.isOk())
    R.EngineFailure = true;

  if (R.S.isOk() && FaultInjector::instance().shouldFire(Stage) &&
      corruptFunctionForTest(F))
    R.FaultInjected = true;

  if (R.S.isOk() && Cfg.VerifyStructural) {
    std::vector<std::string> Problems = verifyFunction(F);
    if (!Problems.empty()) {
      R.S = Status::error(ErrorCode::VerifierStructural, Problems.front());
      R.VerifierFailure = true;
    }
  }
  if (R.S.isOk() && Cfg.EnableOracle && Cfg.OracleModule) {
    OracleOptions OOpts;
    OOpts.MaxSteps = Cfg.OracleMaxSteps;
    OracleReport Rep =
        runDifferentialOracle(*Cfg.OracleModule, Snap.function(), F, OOpts);
    if (Rep.Verdict == OracleVerdict::Mismatch) {
      R.S = Status::error(ErrorCode::OracleMismatch, Rep.Detail);
      R.OracleMismatch = true;
    }
  }

  if (R.S.isOk()) {
    R.Committed = true;
    return R;
  }

  Snap.restore(F);
  return R;
}

TransactionResult
gis::runFunctionTransactionDelta(Function &F, const char *Stage,
                                 const TransactionConfig &Cfg,
                                 DeltaCheckpoint &Ck,
                                 const std::function<Status()> &Body) {
  if (!Cfg.Enabled) {
    TransactionResult R;
    R.S = Body();
    if (!R.S.isOk())
      fatalError(__FILE__, __LINE__, R.S.str().c_str());
    R.Committed = true;
    return R;
  }
  // The oracle needs the complete pre-body function as its reference;
  // delegate to the full-snapshot path (the body still notes into Ck,
  // harmlessly).
  if (Cfg.EnableOracle && Cfg.OracleModule)
    return runFunctionTransaction(F, Stage, Cfg, Body);

#ifdef GIS_SLOWPATH_CHECK
  FunctionSnapshot RefSnap(F);
#endif

  TransactionResult R;
  R.S = Body();
  if (!R.S.isOk())
    R.EngineFailure = true;

  // Whole-function test corruption rewrites instruction lists only; save
  // every list first so the checkpoint can undo it.
  if (R.S.isOk() && FaultInjector::instance().shouldFire(Stage)) {
    Ck.noteAllBlocks();
    if (corruptFunctionForTest(F))
      R.FaultInjected = true;
  }

  // "ckpt-delta" fault: lose one record rollback genuinely needs, then
  // corrupt so the verifier forces that rollback.  Only meaningful when
  // the body actually produced records.
  if (R.S.isOk() && Ck.hasRecords() &&
      FaultInjector::instance().shouldFire("ckpt-delta")) {
    if (Ck.dropOneRecordForTest()) {
      Ck.noteAllBlocks();
      if (corruptFunctionForTest(F))
        R.FaultInjected = true;
    }
  }

  if (R.S.isOk() && Cfg.VerifyStructural) {
    std::vector<std::string> Problems = verifyFunction(F);
    if (!Problems.empty()) {
      R.S = Status::error(ErrorCode::VerifierStructural, Problems.front());
      R.VerifierFailure = true;
    }
  }

  if (R.S.isOk()) {
    R.Committed = true;
    return R;
  }

  if (!Ck.restore(F))
    fatalError(__FILE__, __LINE__,
               "delta checkpoint integrity check failed: rollback lost a "
               "record (manifest mismatch)");
#ifdef GIS_SLOWPATH_CHECK
  if (!functionsIdentical(F, RefSnap.function()))
    fatalError(__FILE__, __LINE__,
               "slow-path check: delta rollback diverges from the full "
               "snapshot");
#endif
  return R;
}

//===- sched/Transaction.cpp - Guarded function transforms -----------------===//

#include "sched/Transaction.h"

#include "interp/DifferentialOracle.h"
#include "ir/Checkpoint.h"
#include "ir/Verifier.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"

using namespace gis;

TransactionResult
gis::runFunctionTransaction(Function &F, const char *Stage,
                            const TransactionConfig &Cfg,
                            const std::function<Status()> &Body) {
  TransactionResult R;
  if (!Cfg.Enabled) {
    R.S = Body();
    if (!R.S.isOk())
      fatalError(__FILE__, __LINE__, R.S.str().c_str());
    R.Committed = true;
    return R;
  }

  FunctionSnapshot Snap(F);
  R.S = Body();
  if (!R.S.isOk())
    R.EngineFailure = true;

  if (R.S.isOk() && FaultInjector::instance().shouldFire(Stage) &&
      corruptFunctionForTest(F))
    R.FaultInjected = true;

  if (R.S.isOk() && Cfg.VerifyStructural) {
    std::vector<std::string> Problems = verifyFunction(F);
    if (!Problems.empty()) {
      R.S = Status::error(ErrorCode::VerifierStructural, Problems.front());
      R.VerifierFailure = true;
    }
  }
  if (R.S.isOk() && Cfg.EnableOracle && Cfg.OracleModule) {
    OracleOptions OOpts;
    OOpts.MaxSteps = Cfg.OracleMaxSteps;
    OracleReport Rep =
        runDifferentialOracle(*Cfg.OracleModule, Snap.function(), F, OOpts);
    if (Rep.Verdict == OracleVerdict::Mismatch) {
      R.S = Status::error(ErrorCode::OracleMismatch, Rep.Detail);
      R.OracleMismatch = true;
    }
  }

  if (R.S.isOk()) {
    R.Committed = true;
    return R;
  }

  Snap.restore(F);
  return R;
}

//===- sched/Duplication.cpp - Scheduling with duplication -----------------===//

#include "sched/Duplication.h"

#include "analysis/DataDeps.h"
#include "analysis/Liveness.h"
#include "machine/MachineDescription.h"

#include <algorithm>

using namespace gis;

DuplicationStats gis::duplicateIntoPreds(Function &F, const SchedRegion &R,
                                         const DuplicationOptions &Opts) {
  DuplicationStats Stats;
  // Dependence structure of the region (delays are irrelevant here, only
  // the edges; any machine description works).
  DataDeps DD = DataDeps::compute(F, R, MachineDescription::rs6k());

  std::vector<unsigned> TopoPos(R.numNodes(), ~0u);
  for (unsigned K = 0; K != R.topoOrder().size(); ++K)
    TopoPos[R.topoOrder()[K]] = K;

  // Instructions already replicated into the predecessors: for dependence
  // purposes they sit before any later insertion point.
  std::vector<bool> Replicated(DD.numNodes(), false);

  Liveness LV = Liveness::compute(F);
  bool LivenessDirty = false;

  for (unsigned BN : R.topoOrder()) {
    const RegionNode &BNode = R.node(BN);
    if (!BNode.isBlock() || BN == R.entryNode())
      continue;
    BlockId B = BNode.Block;

    // Region predecessors; joins only, all real blocks.
    const std::vector<unsigned> &Preds = R.forwardGraph().Preds[BN];
    if (Preds.size() < 2)
      continue;
    bool PredsOk = true;
    for (unsigned PN : Preds)
      PredsOk &= R.node(PN).isBlock();
    if (!PredsOk)
      continue;

    // Hoist from the head of B while the conditions hold.
    while (!F.block(B).instrs().empty() &&
           Stats.DuplicatedInstrs < Opts.MaxPerRegion) {
      InstrId Head = F.block(B).instrs().front();
      const Instruction &I = F.instr(Head);
      if (I.neverCrossesBlock() || I.isTerminator())
        break;
      int NodeIdx = DD.nodeOfInstr(Head);
      if (NodeIdx < 0)
        break; // inconsistent analysis state: leave the join untouched

      // Dependence predecessors must precede every insertion point.
      bool DepsOk = true;
      for (unsigned EIdx : DD.predEdges(static_cast<unsigned>(NodeIdx))) {
        unsigned PD = DD.edges()[EIdx].From;
        if (Replicated[PD])
          continue; // already sits at the end of every predecessor
        unsigned PB = DD.ddgNode(PD).RegionNode;
        for (unsigned PN : Preds)
          if (!(TopoPos[PB] < TopoPos[PN] || PB == PN)) {
            DepsOk = false;
            break;
          }
        if (!DepsOk)
          break;
      }
      if (!DepsOk)
        break;

      if (LivenessDirty) {
        LV = Liveness::compute(F);
        LivenessDirty = false;
      }

      // Per-predecessor safety.
      bool Safe = true;
      for (unsigned PN : Preds) {
        BlockId P = R.node(PN).Block;
        InstrId Term = F.terminatorOf(P);
        if (Term != InvalidId) {
          // The copy lands before the terminator: it must not clobber the
          // terminator's inputs.
          for (Reg D : I.defs())
            if (F.instr(Term).usesReg(D)) {
              Safe = false;
              break;
            }
        }
        if (!Safe)
          break;
        // Off-path execution: the copy runs on every path out of P.
        bool HasOtherSuccs = false;
        for (BlockId S : F.block(P).succs())
          HasOtherSuccs |= S != B;
        if (HasOtherSuccs) {
          if (I.neverSpeculates()) { // stores, trapping divides
            Safe = false;
            break;
          }
          for (BlockId S : F.block(P).succs()) {
            if (S == B)
              continue;
            for (Reg D : I.defs())
              if (LV.isLiveIn(S, D)) {
                Safe = false;
                break;
              }
            if (!Safe)
              break;
          }
        }
        if (!Safe)
          break;
      }
      if (!Safe)
        break;

      // Transform: one copy at the end of each predecessor, original gone.
      F.block(B).instrs().erase(F.block(B).instrs().begin());
      for (unsigned PN : Preds) {
        BlockId P = R.node(PN).Block;
        InstrId Copy = F.cloneInstr(Head);
        std::vector<InstrId> &PInstrs = F.block(P).instrs();
        InstrId Term = F.terminatorOf(P);
        if (Term != InvalidId)
          PInstrs.insert(PInstrs.end() - 1, Copy);
        else
          PInstrs.push_back(Copy);
        ++Stats.CopiesInserted;
      }
      Replicated[static_cast<unsigned>(NodeIdx)] = true;
      ++Stats.DuplicatedInstrs;
      LivenessDirty = true;
    }
  }

  if (Stats.DuplicatedInstrs) {
    F.recomputeCFG();
    F.renumberOriginalOrder();
  }
  return Stats;
}

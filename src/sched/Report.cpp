//===- sched/Report.cpp - Per-function scheduling report -------------------===//

#include "sched/Report.h"

#include "analysis/LoopInfo.h"
#include "analysis/RegPressure.h"
#include "analysis/Region.h"
#include "sched/Heuristics.h"
#include "sched/ListScheduler.h"
#include "support/Format.h"

#include <ostream>

using namespace gis;

namespace {

/// Static latency estimate: each block list-scheduled in isolation, the
/// block makespans summed.  Comparable before/after scheduling because
/// the instruction multiset only changes by motion (and bounded
/// duplication).
uint64_t staticCycleEstimate(const Function &F, const MachineDescription &MD) {
  uint64_t Total = 0;
  for (BlockId B : F.layout()) {
    if (F.block(B).empty())
      continue;
    SchedRegion R = SchedRegion::buildSingleBlock(F, B);
    DataDeps DD = DataDeps::compute(F, R, MD);
    std::vector<unsigned> Cur(DD.numNodes(), 0);
    Heuristics H = computeHeuristics(F, DD, MD, Cur);
    ListScheduler Engine(F, DD, MD, H);
    std::vector<unsigned> Own;
    for (InstrId I : F.block(B).instrs())
      Own.push_back(static_cast<unsigned>(DD.nodeOfInstr(I)));
    EngineResult S = Engine.run(
        Own, {}, [](unsigned) { return PredDisposition::Fixed; },
        [](unsigned) { return true; });
    Total += S.Makespan;
  }
  return Total;
}

} // namespace

std::vector<FunctionSnapshot>
gis::snapshotModule(const Module &M, const MachineDescription &MD) {
  std::vector<FunctionSnapshot> Out;
  for (const auto &FPtr : M.functions()) {
    Function &F = *FPtr;
    F.recomputeCFG();
    FunctionSnapshot S;
    S.Name = F.name();
    S.Blocks = F.numBlocks();
    for (BlockId B : F.layout())
      S.Instructions += static_cast<unsigned>(F.block(B).size());
    LoopInfo LI = LoopInfo::compute(F);
    S.Loops = LI.numLoops();
    S.Reducible = LI.isReducible();
    S.StaticCycleEstimate = staticCycleEstimate(F, MD);
    RegPressure P = computeRegPressure(F);
    S.PeakLive = P.MaxLive;
    Out.push_back(std::move(S));
  }
  return Out;
}

ScheduleReport gis::scheduleWithReport(Module &M,
                                       const MachineDescription &MD,
                                       const PipelineOptions &Opts) {
  ScheduleReport R;
  R.Before = snapshotModule(M, MD);
  R.Stats = scheduleModule(M, MD, Opts);
  R.After = snapshotModule(M, MD);
  return R;
}

void gis::printReport(const ScheduleReport &R, std::ostream &OS) {
  OS << formatString("%-16s %18s %18s %14s %12s\n", "FUNCTION",
                     "blocks/instrs", "static cycles", "peak GPR/CR",
                     "loops");
  OS << std::string(84, '-') << "\n";
  for (size_t K = 0; K != R.After.size(); ++K) {
    const FunctionSnapshot &B = R.Before[K];
    const FunctionSnapshot &A = R.After[K];
    OS << formatString(
        "%-16s %8u->%-8u %8llu->%-8llu %5u->%-2u/%u->%-2u %7u%s\n",
        A.Name.c_str(), B.Instructions, A.Instructions,
        static_cast<unsigned long long>(B.StaticCycleEstimate),
        static_cast<unsigned long long>(A.StaticCycleEstimate),
        B.PeakLive[0], A.PeakLive[0], B.PeakLive[2], A.PeakLive[2], A.Loops,
        A.Reducible ? "" : "  (irreducible)");
  }
  OS << std::string(84, '-') << "\n";
  OS << "motions: " << R.Stats.Global.UsefulMotions << " useful, "
     << R.Stats.Global.SpeculativeMotions << " speculative ("
     << R.Stats.Global.VetoedSpeculations << " vetoed, "
     << R.Stats.Global.Renames << " renames); "
     << R.Stats.LoopsUnrolled << " loops unrolled, " << R.Stats.LoopsRotated
     << " rotated; " << R.Stats.PreRenamedDefs << " defs pre-renamed; "
     << R.Stats.DuplicatedInstrs << " instrs replicated; "
     << R.Stats.RegionsSkippedBySize << " regions over the size cap\n";
}

//===- sched/LocalScheduler.cpp - Basic-block scheduler --------------------===//

#include "sched/LocalScheduler.h"

#include "analysis/DisambigCache.h"
#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "ir/Checkpoint.h"
#include "obs/Trace.h"
#include "sched/Heuristics.h"
#include "sched/ListScheduler.h"

#include <iterator>

using namespace gis;

namespace {

/// Schedules every real block of one region with the block's own
/// instructions as the only candidates.
void scheduleRegionBlocks(Function &F, const MachineDescription &MD,
                          const SchedRegion &R, LocalSchedStats &Stats,
                          const obs::SchedSink &Sink, bool Incremental,
                          DisambigCache *Cache, DeltaCheckpoint *Ckpt);

} // namespace

LocalSchedStats gis::scheduleLocal(Function &F, const MachineDescription &MD,
                                   const obs::SchedSink &Sink,
                                   bool Incremental, DisambigCache *Cache,
                                   DeltaCheckpoint *Ckpt) {
  LocalSchedStats Stats;
  F.recomputeCFG();
  // Earlier phases moved code since the cache last saw this function;
  // start a fresh facts epoch.  Within this pass the facts stay valid:
  // intra-block reorders patch positions in place below.
  if (Cache)
    Cache->noteFunctionChanged();
  LoopInfo LI = LoopInfo::compute(F);

  // Regions proper require reducible control flow; otherwise fall back to
  // degenerate one-block regions (the scheduling result is identical: the
  // local scheduler only uses intra-block structure).
  if (!LI.isReducible()) {
    for (BlockId B : F.layout())
      scheduleRegionBlocks(F, MD, SchedRegion::buildSingleBlock(F, B), Stats,
                           Sink, Incremental, Cache, Ckpt);
    return Stats;
  }

  // Every block is a direct member of exactly one region (its innermost
  // loop, or the top level); iterate all regions so all blocks are
  // rescheduled once.
  std::vector<int> RegionIds;
  for (unsigned L = 0; L != LI.numLoops(); ++L)
    RegionIds.push_back(static_cast<int>(L));
  RegionIds.push_back(-1);

  for (int RegionId : RegionIds) {
    SchedRegion R = SchedRegion::build(F, LI, RegionId);
    scheduleRegionBlocks(F, MD, R, Stats, Sink, Incremental, Cache, Ckpt);
  }
  return Stats;
}

namespace {

void scheduleRegionBlocks(Function &F, const MachineDescription &MD,
                          const SchedRegion &R, LocalSchedStats &Stats,
                          const obs::SchedSink &Sink, bool Incremental,
                          DisambigCache *Cache, DeltaCheckpoint *Ckpt) {
  DataDeps DD = DataDeps::compute(F, R, MD, Cache);

  std::vector<unsigned> CurNode(DD.numNodes());
  for (unsigned N = 0; N != DD.numNodes(); ++N)
    CurNode[N] = DD.ddgNode(N).RegionNode;
  Heuristics H = computeHeuristics(F, DD, MD, CurNode);
  ListScheduler Engine(F, DD, MD, H, PriorityOrder::Paper, Incremental);

  auto AllFixed = [](unsigned) { return PredDisposition::Fixed; };
  auto NoSpec = [](unsigned) { return true; };

  for (unsigned A : R.topoOrder()) {
    const RegionNode &ANode = R.node(A);
    if (!ANode.isBlock())
      continue;
    BasicBlock &BB = F.block(ANode.Block);
    ++Stats.BlocksScheduled;
    obs::TraceSpan BlockSpan("block", "sched", "block",
                             static_cast<int64_t>(ANode.Block));

    std::vector<unsigned> Own;
    bool AllInDDG = true;
    for (InstrId I : BB.instrs()) {
      int N = DD.nodeOfInstr(I);
      if (N < 0) {
        AllInDDG = false;
        break;
      }
      Own.push_back(static_cast<unsigned>(N));
    }
    if (!AllInDDG) {
      // Inconsistent analysis state; the block keeps its original order.
      ++Stats.BlocksFailed;
      continue;
    }

    // Per-block staging buffers: a failed block keeps its original order,
    // so its picks must not leak into the log or the counters.
    obs::CounterSet BlockCtrs;
    std::vector<obs::Decision> BlockDecisions;
    EngineObs Obs;
    Obs.Counters = Sink.Counters ? &BlockCtrs : nullptr;
    Obs.Decisions = Sink.Decisions ? &BlockDecisions : nullptr;
    Obs.Stage = "local";
    Obs.TargetBlock = ANode.Block;

    EngineResult Sched = Engine.run(Own, {}, AllFixed, NoSpec, nullptr, &Obs);
    if (!Sched.S.isOk() || Sched.Order.size() != Own.size()) {
      ++Stats.BlocksFailed;
      continue;
    }
    if (Sink.Counters)
      *Sink.Counters += BlockCtrs;
    if (Sink.Decisions)
      Sink.Decisions->insert(Sink.Decisions->end(),
                             std::make_move_iterator(BlockDecisions.begin()),
                             std::make_move_iterator(BlockDecisions.end()));

    std::vector<InstrId> NewContents;
    NewContents.reserve(Sched.Order.size());
    for (unsigned Node : Sched.Order)
      NewContents.push_back(DD.ddgNode(Node).Instr);
    if (NewContents != BB.instrs()) {
      ++Stats.BlocksReordered;
      if (Ckpt)
        Ckpt->noteBlock(ANode.Block); // save the pre-reorder list first
      BB.instrs() = std::move(NewContents);
      if (Cache)
        Cache->notePosChanged(F, ANode.Block);
    }
  }
}

} // namespace

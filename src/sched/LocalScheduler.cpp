//===- sched/LocalScheduler.cpp - Basic-block scheduler --------------------===//

#include "sched/LocalScheduler.h"

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "sched/Heuristics.h"
#include "sched/ListScheduler.h"

using namespace gis;

namespace {

/// Schedules every real block of one region with the block's own
/// instructions as the only candidates.
void scheduleRegionBlocks(Function &F, const MachineDescription &MD,
                          const SchedRegion &R, LocalSchedStats &Stats);

} // namespace

LocalSchedStats gis::scheduleLocal(Function &F, const MachineDescription &MD) {
  LocalSchedStats Stats;
  F.recomputeCFG();
  LoopInfo LI = LoopInfo::compute(F);

  // Regions proper require reducible control flow; otherwise fall back to
  // degenerate one-block regions (the scheduling result is identical: the
  // local scheduler only uses intra-block structure).
  if (!LI.isReducible()) {
    for (BlockId B : F.layout())
      scheduleRegionBlocks(F, MD, SchedRegion::buildSingleBlock(F, B), Stats);
    return Stats;
  }

  // Every block is a direct member of exactly one region (its innermost
  // loop, or the top level); iterate all regions so all blocks are
  // rescheduled once.
  std::vector<int> RegionIds;
  for (unsigned L = 0; L != LI.numLoops(); ++L)
    RegionIds.push_back(static_cast<int>(L));
  RegionIds.push_back(-1);

  for (int RegionId : RegionIds) {
    SchedRegion R = SchedRegion::build(F, LI, RegionId);
    scheduleRegionBlocks(F, MD, R, Stats);
  }
  return Stats;
}

namespace {

void scheduleRegionBlocks(Function &F, const MachineDescription &MD,
                        const SchedRegion &R, LocalSchedStats &Stats) {
  DataDeps DD = DataDeps::compute(F, R, MD);

  std::vector<unsigned> CurNode(DD.numNodes());
  for (unsigned N = 0; N != DD.numNodes(); ++N)
    CurNode[N] = DD.ddgNode(N).RegionNode;
  Heuristics H = computeHeuristics(F, DD, MD, CurNode);
  ListScheduler Engine(F, DD, MD, H);

  auto AllFixed = [](unsigned) { return PredDisposition::Fixed; };
  auto NoSpec = [](unsigned) { return true; };

  for (unsigned A : R.topoOrder()) {
    const RegionNode &ANode = R.node(A);
    if (!ANode.isBlock())
      continue;
    BasicBlock &BB = F.block(ANode.Block);
    ++Stats.BlocksScheduled;

    std::vector<unsigned> Own;
    bool AllInDDG = true;
    for (InstrId I : BB.instrs()) {
      int N = DD.nodeOfInstr(I);
      if (N < 0) {
        AllInDDG = false;
        break;
      }
      Own.push_back(static_cast<unsigned>(N));
    }
    if (!AllInDDG) {
      // Inconsistent analysis state; the block keeps its original order.
      ++Stats.BlocksFailed;
      continue;
    }

    EngineResult Sched = Engine.run(Own, {}, AllFixed, NoSpec);
    if (!Sched.S.isOk() || Sched.Order.size() != Own.size()) {
      ++Stats.BlocksFailed;
      continue;
    }

    std::vector<InstrId> NewContents;
    NewContents.reserve(Sched.Order.size());
    for (unsigned Node : Sched.Order)
      NewContents.push_back(DD.ddgNode(Node).Instr);
    if (NewContents != BB.instrs()) {
      ++Stats.BlocksReordered;
      BB.instrs() = std::move(NewContents);
    }
  }
}

} // namespace

//===- sched/Report.h - Per-function scheduling report ----------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured before/after report for one scheduling run: region
/// inventory, motion counts, code growth, register pressure, and a static
/// cycle estimate per block (the engine's makespans).  This is what a
/// compiler would print under a -fsched-verbose flag; gisc exposes it via
/// --report.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_REPORT_H
#define GIS_SCHED_REPORT_H

#include "ir/Module.h"
#include "machine/MachineDescription.h"
#include "sched/Pipeline.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace gis {

/// Inventory of one function before or after scheduling.
struct FunctionSnapshot {
  std::string Name;
  unsigned Blocks = 0;
  unsigned Instructions = 0;
  unsigned Loops = 0;
  bool Reducible = true;
  /// Sum over blocks of the machine-model makespan when each block is
  /// list-scheduled in isolation: a static per-function latency estimate.
  uint64_t StaticCycleEstimate = 0;
  /// Peak simultaneously-live registers (GPR, FPR, CR).
  std::array<unsigned, 3> PeakLive = {0, 0, 0};
};

/// Takes a snapshot of every function of \p M under machine \p MD.
std::vector<FunctionSnapshot> snapshotModule(const Module &M,
                                             const MachineDescription &MD);

/// A complete run report: snapshots around a pipeline invocation plus the
/// pipeline's own statistics.
struct ScheduleReport {
  std::vector<FunctionSnapshot> Before;
  std::vector<FunctionSnapshot> After;
  PipelineStats Stats;
};

/// Convenience: snapshot, schedule, snapshot.
ScheduleReport scheduleWithReport(Module &M, const MachineDescription &MD,
                                  const PipelineOptions &Opts);

/// Renders the report as a fixed-width table.
void printReport(const ScheduleReport &R, std::ostream &OS);

} // namespace gis

#endif // GIS_SCHED_REPORT_H

//===- sched/Unroll.h - Loop unrolling --------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop unrolling, the preparation step of the paper's Section 6 pipeline:
/// "inner regions that represent loops with up to 4 basic blocks are
/// unrolled once (i.e., after unrolling they include two iterations of a
/// loop instead of one)", which widens the region the global scheduler can
/// work with.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_UNROLL_H
#define GIS_SCHED_UNROLL_H

#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "support/Status.h"

namespace gis {

/// True if loop \p LoopIdx of \p LI is unrollable by unrollLoopOnce:
/// its blocks are contiguous in layout with the header first, and the
/// last block's terminator is a branch to the header (the common shape of
/// generated loops).
bool canUnrollOnce(const Function &F, const LoopInfo &LI, unsigned LoopIdx);

/// Unrolls the loop once: the body is duplicated, the original latch
/// branches into the copy, and the copy's latch closes the loop back to
/// the original header.  Returns false (leaving \p F untouched) when the
/// loop shape is unsupported.  On success the caller must recompute CFG
/// consumers (LoopInfo etc.); the function's CFG edge lists and original
/// order are refreshed.
///
/// With \p Err non-null, a mid-flight invariant failure is reported
/// through it and the function may be left partially transformed -- the
/// caller owns a checkpoint and must roll back.  With \p Err null such
/// failures abort.
bool unrollLoopOnce(Function &F, const LoopInfo &LI, unsigned LoopIdx,
                    Status *Err = nullptr);

} // namespace gis

#endif // GIS_SCHED_UNROLL_H

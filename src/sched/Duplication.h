//===- sched/Duplication.h - Scheduling with duplication --------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling with duplication -- the paper's Definition 6 motion, listed
/// as future work ("we are going to extend our work by supporting ...
/// scheduling with duplication of code").  This implements the restricted
/// join-replication form: an instruction at the head of a join block B is
/// replaced by one copy at the end of *every* region predecessor of B, so
/// each predecessor's scheduler (the final basic-block pass) can pull it
/// into otherwise-wasted delay slots.  This is also the flavour of code
/// replication the paper's base compiler used for loop-closing delays
/// [GR90].
///
/// Safety conditions per candidate I in join B with predecessors P_i:
///  - I may cross blocks (no calls/branches) and B is not the region entry;
///  - every dependence predecessor of I is placed before the insertion
///    point (in a block topologically before P_i, or inside P_i);
///  - for every P_i with successors other than B, executing I on those
///    paths must be harmless: I must not write memory or trap, and its
///    definitions must not be live into any other successor;
///  - every P_i lies in the region and is a real block.
///
/// The motion count per region is capped to bound code growth (the
/// paper's stated reason for deferring duplication: "might increase the
/// code size incurring additional costs in terms of instruction cache
/// misses").
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_DUPLICATION_H
#define GIS_SCHED_DUPLICATION_H

#include "analysis/Region.h"
#include "ir/Function.h"

namespace gis {

/// Options for the duplication pass.
struct DuplicationOptions {
  /// Maximum instructions duplicated per region.
  unsigned MaxPerRegion = 16;
};

/// Statistics of one duplication pass.
struct DuplicationStats {
  unsigned DuplicatedInstrs = 0; ///< originals removed from their joins
  unsigned CopiesInserted = 0;   ///< copies placed into predecessors
};

/// Applies join replication to one region of \p F.
DuplicationStats duplicateIntoPreds(Function &F, const SchedRegion &R,
                                    const DuplicationOptions &Opts);

} // namespace gis

#endif // GIS_SCHED_DUPLICATION_H

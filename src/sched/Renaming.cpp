//===- sched/Renaming.cpp - Register renaming for speculation --------------===//

#include "sched/Renaming.h"

using namespace gis;

bool gis::renameLocalDef(Function &F, BlockId B, InstrId I, Reg Old,
                         const Liveness &LV) {
  return renameLocalDef(F, B, I, Old, [&LV](BlockId Blk, Reg R) {
    return LV.isLiveOut(Blk, R);
  });
}

bool gis::renameLocalDef(Function &F, BlockId B, InstrId I, Reg Old,
                         const std::function<bool(BlockId, Reg)> &IsLiveOut) {
  const std::vector<InstrId> &Instrs = F.block(B).instrs();

  // Locate I in B and collect the uses its definition reaches: uses after
  // I, up to (exclusive) the next redefinition of Old in B.
  size_t DefPos = Instrs.size();
  for (size_t Pos = 0; Pos != Instrs.size(); ++Pos)
    if (Instrs[Pos] == I) {
      DefPos = Pos;
      break;
    }
  if (DefPos == Instrs.size())
    return false; // instruction is not in the block it claims to be in

  std::vector<InstrId> UsesToRewrite;
  bool Redefined = false;
  for (size_t Pos = DefPos + 1; Pos != Instrs.size(); ++Pos) {
    Instruction &Next = F.instr(Instrs[Pos]);
    if (Next.usesReg(Old))
      UsesToRewrite.push_back(Instrs[Pos]);
    if (Next.definesReg(Old)) {
      Redefined = true;
      break;
    }
  }

  // If the value survives to the block end, uses elsewhere may read it:
  // renaming would have to chase them across blocks.  Keep to the provable
  // local case.
  if (!Redefined && IsLiveOut(B, Old))
    return false;

  Reg Fresh = F.newReg(Old.regClass());
  Instruction &Def = F.instr(I);
  for (Reg &D : Def.defs())
    if (D == Old)
      D = Fresh;
  // An instruction that also reads the register it updates (e.g. LU's
  // base) cannot be renamed this way; such instructions never reach here
  // because the rewrite below would change their semantics.  Guarded by
  // the caller's choice of Old among pure defs; still, rewrite any
  // self-use consistently.
  for (InstrId UseId : UsesToRewrite) {
    Instruction &Use = F.instr(UseId);
    for (Reg &U : Use.uses())
      if (U == Old)
        U = Fresh;
  }
  return true;
}

//===- sched/PreRenaming.cpp - SSA-like renaming preprocessing -------------===//

#include "sched/PreRenaming.h"

#include "analysis/Liveness.h"
#include "ir/Checkpoint.h"
#include "sched/Renaming.h"

using namespace gis;

PreRenamingStats gis::preRenameLocals(Function &F, DeltaCheckpoint *Ckpt) {
  PreRenamingStats Stats;
  Liveness LV = Liveness::compute(F);

  for (BlockId B : F.layout()) {
    // Walk a snapshot of the block: renameLocalDef rewrites instructions
    // in place but never adds or removes them.
    std::vector<InstrId> Instrs = F.block(B).instrs();
    bool NotedBlock = false;
    for (size_t Pos = 0; Pos != Instrs.size(); ++Pos) {
      InstrId Id = Instrs[Pos];
      const Instruction &I = F.instr(Id);
      // Candidates: plain single-def computations.  Skip instructions
      // that read the register they write (LU/STU base updates) -- the
      // rename helper would detach them from their input.
      if (I.defs().size() != 1)
        continue;
      Reg D = I.defs()[0];
      if (I.usesReg(D))
        continue;
      // Only rename when the def is *not* the last write to D in the
      // block (a later redefinition exists) -- that is the pattern that
      // manufactures output/anti dependences.  The last write carries the
      // live-out value and must keep its register.
      bool RedefinedLater = false;
      for (size_t After = Pos + 1; After != Instrs.size(); ++After)
        if (F.instr(Instrs[After]).definesReg(D)) {
          RedefinedLater = true;
          break;
        }
      if (!RedefinedLater)
        continue;
      // A rename rewrites pool entries of this block only (the def and
      // its block-local uses); save them once before the first one.
      if (Ckpt && !NotedBlock) {
        for (InstrId Entry : Instrs)
          Ckpt->noteInstr(Entry);
        NotedBlock = true;
      }
      if (renameLocalDef(F, B, Id, D, LV))
        ++Stats.RenamedDefs;
    }
  }
  return Stats;
}

//===- sched/Transaction.h - Guarded function transforms --------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transactional execution core shared by the scheduling pipeline
/// (sched/Pipeline.cpp) and the mid-end optimizer (opt/PassManager.cpp):
/// snapshot a function, run a transform, pass the result through the fault
/// injector, the structural IR verifier and the differential interpreter
/// oracle, then commit or restore the snapshot.
///
/// This layer is deliberately policy-free: it does not touch pipeline
/// statistics, obs counters, or diagnostics.  Callers translate the
/// returned TransactionResult into whatever bookkeeping their subsystem
/// keeps (the pipeline's PipelineStats, the optimizer's OptRunReport), so
/// the exact counter semantics each subsystem documents stay local to it.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_TRANSACTION_H
#define GIS_SCHED_TRANSACTION_H

#include "ir/Module.h"
#include "support/Status.h"

#include <functional>

namespace gis {

/// Guard configuration of one transaction (a subset of PipelineOptions;
/// see the flags of the same names there for full documentation).
struct TransactionConfig {
  /// With transactions disabled the body runs bare: no snapshot, no
  /// verification, and a failure Status aborts the process (the
  /// historical fail-fast contract).
  bool Enabled = true;
  /// Run the structural IR verifier (ir/Verifier.h) on the body's output.
  bool VerifyStructural = true;
  /// Run the interpreter-based differential oracle against the snapshot.
  /// Requires OracleModule; ignored when it is null.
  bool EnableOracle = false;
  /// Module the function belongs to (call targets, global arrays).
  /// Borrowed; may be null, which disables the oracle.
  const Module *OracleModule = nullptr;
  /// Interpreter step budget per oracle run.
  uint64_t OracleMaxSteps = 500'000;
};

/// Outcome of one transaction.  At most one of the failure flags is set;
/// all are false on commit (except FaultInjected, which reports that the
/// deliberate corruption fired and is always paired with a rollback when
/// the verifier or oracle catches it).
struct TransactionResult {
  Status S = Status::ok();
  bool Committed = false;
  /// The body itself reported a recoverable engine failure.
  bool EngineFailure = false;
  /// The structural verifier rejected the transformed function.
  bool VerifierFailure = false;
  /// The differential oracle observed diverging behaviour.
  bool OracleMismatch = false;
  /// A GIS_FAULT_INJECT corruption fired on this stage.
  bool FaultInjected = false;
};

/// Runs \p Body over \p F as a guarded transaction.  \p Stage is the
/// stable stage name -- it keys fault injection (GIS_FAULT_INJECT) and
/// should match the name callers use in trace events and diagnostics.
/// On any failure the function is restored to its pre-body snapshot
/// before returning.
TransactionResult
runFunctionTransaction(Function &F, const char *Stage,
                       const TransactionConfig &Cfg,
                       const std::function<Status()> &Body);

class DeltaCheckpoint;

/// Delta variant of runFunctionTransaction: instead of snapshotting the
/// whole function, the caller constructs \p Ck against \p F immediately
/// before this call and the body notes each block/instruction before
/// first mutating it; rollback re-applies only those records, checked
/// against the construction-time manifest hash (a lost record is a fatal
/// error, never a silent mis-rollback).  Two deliberate fallbacks keep
/// semantics identical to the full-snapshot path: an enabled oracle needs
/// the complete pre-body function, so the transaction delegates to
/// runFunctionTransaction; and under -DGIS_SLOWPATH_CHECK a full snapshot
/// is taken anyway and every rollback is cross-checked bit-for-bit
/// against it.  The "ckpt-delta" fault stage drops one needed record
/// after the body to prove the manifest containment fires.
TransactionResult
runFunctionTransactionDelta(Function &F, const char *Stage,
                            const TransactionConfig &Cfg, DeltaCheckpoint &Ck,
                            const std::function<Status()> &Body);

} // namespace gis

#endif // GIS_SCHED_TRANSACTION_H

//===- sched/ListScheduler.h - Cycle-by-cycle list scheduler ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level scheduling engine of paper Section 5.1: schedule one
/// target block cycle by cycle against the parametric machine description,
/// maintaining a ready list and picking the "best" ready instructions by
/// the priority rules of Section 5.2:
///
///   1/2. useful instructions before speculative ones,
///   3/4. bigger delay heuristic D first,
///   5/6. bigger critical path heuristic CP first,
///   7.   original program order.
///
/// The same engine serves the global scheduler (own instructions plus
/// external candidates from C(A)) and the final basic-block scheduler
/// (own instructions only).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_LISTSCHEDULER_H
#define GIS_SCHED_LISTSCHEDULER_H

#include "analysis/DataDeps.h"
#include "machine/MachineDescription.h"
#include "obs/Counters.h"
#include "obs/Decision.h"
#include "sched/Heuristics.h"
#include "support/Status.h"

#include <functional>
#include <vector>

namespace gis {

/// Ordering of the priority rules, for the tuning experiments the paper
/// calls for ("experimentation and tuning are needed for better results",
/// Section 5.2).  The paper's order is class first -- "tuned towards a
/// machine with a small number of resources".
enum class PriorityOrder : uint8_t {
  Paper,       ///< useful class, then D, then CP, then original order
  DelayFirst,  ///< D, then class, then CP, then original order
  CriticalFirst, ///< CP, then class, then D, then original order
  SourceOrder, ///< original order only (no heuristics)
};

/// One candidate instruction offered to the engine.
struct EngineCandidate {
  unsigned DDGNode;     ///< node in the region DataDeps
  bool Useful;          ///< rules 1/2 class: true when B(I) is in U(A)
  bool Speculative;     ///< subject to the live-on-exit check at pick time
  /// Execution frequency of the home block when profiling data is
  /// available (paper Section 1: speculation "can take advantage of the
  /// branch probabilities"); 0 when unknown.  Among speculative
  /// candidates, higher frequency wins ties ahead of the D heuristic.
  uint64_t Freq = 0;
};

/// How the engine should treat a dependence predecessor that is not itself
/// a candidate.
enum class PredDisposition {
  Fixed,   ///< already placed before the target block; satisfied at cycle 0
  Blocked, ///< placed at or after the target block; the dependent candidate
           ///< can never be scheduled in this pass
};

/// Observation context for one engine run (src/obs/).  Counters and
/// decision records are appended to the caller's buffers; either pointer
/// may be null to observe only the other aspect.  Observation never feeds
/// back into scheduling: with identical inputs the engine emits the same
/// schedule whether or not it is observed (tests/trace_test.cpp).
struct EngineObs {
  obs::CounterSet *Counters = nullptr;
  std::vector<obs::Decision> *Decisions = nullptr;
  const char *Stage = "global"; ///< Decision::Stage tag
  BlockId TargetBlock = 0;      ///< block being scheduled
  /// Maps a DDG node to the id of its current home block, for the
  /// FromBlock field of external picks.  May be null when Decisions is.
  std::function<BlockId(unsigned)> HomeBlock;
};

/// Result of scheduling one target block.
struct EngineResult {
  /// Scheduled DDG nodes in emission (position) order.
  std::vector<unsigned> Order;
  /// Issue cycle of each entry of Order.
  std::vector<uint64_t> Cycles;
  /// Completion cycle of the block's own instructions.
  uint64_t Makespan = 0;
  /// Success, or why the engine gave up.  On error Order is incomplete and
  /// the caller must discard the whole attempt (the transaction layer rolls
  /// the function back, since OnSchedule may already have moved
  /// instructions).
  Status S;
};

/// The list-scheduling engine for one region.
class ListScheduler {
public:
  /// The engine borrows all four references; they must outlive it.
  ///
  /// \p Incremental selects the event-driven ready pool (DESIGN.md
  /// section 14): successor-arming counters feed a ReadyTime-keyed event
  /// queue instead of rescanning every candidate each cycle, and cycles
  /// with an empty ready list are skipped in one jump.  Picks are
  /// bit-identical either way; the full-scan path remains as the oracle
  /// for GIS_SLOWPATH_CHECK builds and the --no-incremental escape hatch.
  ListScheduler(const Function &F, const DataDeps &DD,
                const MachineDescription &MD, const Heuristics &H,
                PriorityOrder Order = PriorityOrder::Paper,
                bool Incremental = true)
      : F(F), DD(DD), MD(MD), H(H), Order(Order), Incremental(Incremental) {}

  /// Schedules a target block.
  ///
  /// \param Own         the block's own DDG nodes in program order; all of
  ///                    them are scheduled, and the block's terminator (if
  ///                    any) is kept positionally last.
  /// \param External    candidate instructions from other blocks; scheduled
  ///                    opportunistically, never forced.
  /// \param Disposition resolves non-candidate dependence predecessors.
  /// \param SpecCheck   invoked when a speculative candidate is about to be
  ///                    picked; returning false vetoes it (it is dropped
  ///                    for this block).  The callback may mutate the
  ///                    function (register renaming) before approving.
  /// \param OnSchedule  invoked right after a candidate is scheduled (the
  ///                    paper moves picked instructions immediately, so
  ///                    live-on-exit information can be kept up to date);
  ///                    the bool argument is true for external candidates.
  /// \param Obs         optional observation context; decisions are
  ///                    recorded before OnSchedule fires, so HomeBlock
  ///                    sees the pre-move placement.
  EngineResult
  run(const std::vector<unsigned> &Own,
      const std::vector<EngineCandidate> &External,
      const std::function<PredDisposition(unsigned)> &Disposition,
      const std::function<bool(unsigned)> &SpecCheck,
      const std::function<void(unsigned, bool)> &OnSchedule = nullptr,
      const EngineObs *Obs = nullptr);

private:
  const Function &F;
  const DataDeps &DD;
  const MachineDescription &MD;
  const Heuristics &H;
  PriorityOrder Order;
  bool Incremental;
};

} // namespace gis

#endif // GIS_SCHED_LISTSCHEDULER_H

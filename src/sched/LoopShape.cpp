//===- sched/LoopShape.cpp - Shared loop-shape helpers ---------------------===//

#include "sched/LoopShape.h"

using namespace gis;

std::vector<BlockId> gis::contiguousLoopBlocks(const Function &F,
                                               const Loop &L) {
  std::vector<BlockId> Blocks;
  size_t First = ~size_t(0);
  const std::vector<BlockId> &Layout = F.layout();
  for (size_t K = 0; K != Layout.size(); ++K)
    if (L.Blocks.test(Layout[K])) {
      First = K;
      break;
    }
  if (First == ~size_t(0))
    return {};
  for (size_t K = First; K != Layout.size() && L.Blocks.test(Layout[K]); ++K)
    Blocks.push_back(Layout[K]);
  if (Blocks.size() != L.numBlocks())
    return {}; // not contiguous in the layout
  if (Blocks.front() != L.Header)
    return {}; // header not first
  return Blocks;
}

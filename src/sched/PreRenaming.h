//===- sched/PreRenaming.h - SSA-like renaming preprocessing ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The renaming preprocessing of paper Section 4.2: "To minimize the
/// number of anti and output data dependences, which may unnecessarily
/// constrain the scheduling process, the XL compiler does certain renaming
/// of registers, which is similar to the effect of the static single
/// assignment form."
///
/// This pass renames every *block-local value* — a definition whose uses
/// all sit in the same block before any redefinition and whose register is
/// not live out of the block — to a fresh register.  Reusing a register
/// for unrelated temporaries is what creates the avoidable anti/output
/// edges; after this pass only genuine data flow constrains the scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_PRERENAMING_H
#define GIS_SCHED_PRERENAMING_H

#include "ir/Function.h"

namespace gis {

class DeltaCheckpoint;

/// Statistics of one pre-renaming pass.
struct PreRenamingStats {
  unsigned RenamedDefs = 0;
};

/// Renames block-local values of \p F to fresh registers (CFG must be up
/// to date).  Semantics-preserving.  \p Ckpt (optional) receives
/// first-touch records of the pool entries this pass may rewrite -- a
/// rename touches only instructions of the def's own block, so one
/// block's worth of entries is noted before its first rename.
PreRenamingStats preRenameLocals(Function &F, DeltaCheckpoint *Ckpt = nullptr);

} // namespace gis

#endif // GIS_SCHED_PRERENAMING_H

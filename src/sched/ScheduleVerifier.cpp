//===- sched/ScheduleVerifier.cpp - Semantic schedule verifier -------------===//

#include "sched/ScheduleVerifier.h"

#include "analysis/Liveness.h"
#include "analysis/PDG.h"
#include "support/Format.h"

#include <algorithm>

using namespace gis;

namespace {

/// Placement of one instruction: owning region node plus index in its
/// block's instruction list.
struct Placement {
  unsigned Node = 0;
  unsigned Idx = 0;
  bool Valid = false;
};

/// Read instructions witnessing "D is live on exit from B" in \p F: every
/// read of D reachable from B's exit before an intervening def.  Sorted by
/// id.  Conservation (checked before any caller runs) guarantees the
/// before and after functions share instruction ids, so the same read can
/// be looked up on both sides.
std::vector<InstrId> liveOutWitnesses(const Function &F, BlockId B, Reg D) {
  std::vector<InstrId> Witnesses;
  std::vector<bool> Visited(F.numBlocks(), false);
  std::vector<BlockId> Work(F.block(B).succs().begin(),
                            F.block(B).succs().end());
  while (!Work.empty()) {
    BlockId Cur = Work.back();
    Work.pop_back();
    if (Cur >= Visited.size() || Visited[Cur])
      continue;
    Visited[Cur] = true;
    bool Killed = false;
    for (InstrId I : F.block(Cur).instrs()) {
      if (F.instr(I).usesReg(D))
        Witnesses.push_back(I); // reads happen before the same instr's write
      if (F.instr(I).definesReg(D)) {
        Killed = true;
        break;
      }
    }
    if (!Killed)
      for (BlockId S : F.block(Cur).succs())
        Work.push_back(S);
  }
  std::sort(Witnesses.begin(), Witnesses.end());
  return Witnesses;
}

/// True when the two sorted witness lists share an instruction.
bool shareWitness(const std::vector<InstrId> &A, const std::vector<InstrId> &B) {
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    if (A[I] == B[J])
      return true;
    A[I] < B[J] ? ++I : ++J;
  }
  return false;
}

/// Placements of every instruction sitting in one of the region's real
/// blocks of \p F.
std::vector<Placement> placementsOf(const Function &F, const SchedRegion &R) {
  std::vector<Placement> P(F.numInstrs());
  for (unsigned N = 0; N != R.numNodes(); ++N) {
    if (!R.node(N).isBlock())
      continue;
    const std::vector<InstrId> &Instrs = F.block(R.node(N).Block).instrs();
    for (unsigned K = 0; K != Instrs.size(); ++K) {
      if (Instrs[K] >= P.size())
        continue; // structurally ill-formed; the IR verifier reports it
      P[Instrs[K]] = {N, K, true};
    }
  }
  return P;
}

} // namespace

std::vector<std::string> gis::verifyRegionSchedule(const Function &Before,
                                                   const Function &After,
                                                   const SchedRegion &R,
                                                   const MachineDescription &MD) {
  std::vector<std::string> Problems;
  auto Problem = [&](std::string Msg) {
    Problems.push_back("region schedule of '" + After.name() + "': " +
                       std::move(Msg));
  };

  // The pass reorders block contents only: the CFG shape is inviolable.
  if (Before.numBlocks() != After.numBlocks() ||
      Before.numInstrs() > After.numInstrs() ||
      Before.layout() != After.layout()) {
    Problem("CFG shape changed across a pure scheduling pass");
    return Problems;
  }

  std::vector<bool> InRegion(Before.numBlocks(), false);
  for (const RegionNode &N : R.nodes())
    if (N.isBlock())
      InRegion[N.Block] = true;
  for (BlockId B = 0; B != Before.numBlocks(); ++B)
    if (!InRegion[B] && Before.block(B).instrs() != After.block(B).instrs())
      Problem(formatString("block %s outside the region changed",
                           Before.block(B).label().c_str()));

  // Conservation: the region holds exactly the original instructions.
  std::vector<InstrId> OldIds, NewIds;
  for (const RegionNode &N : R.nodes()) {
    if (!N.isBlock())
      continue;
    const auto &BI = Before.block(N.Block).instrs();
    const auto &AI = After.block(N.Block).instrs();
    OldIds.insert(OldIds.end(), BI.begin(), BI.end());
    NewIds.insert(NewIds.end(), AI.begin(), AI.end());
  }
  std::sort(OldIds.begin(), OldIds.end());
  std::sort(NewIds.begin(), NewIds.end());
  if (OldIds != NewIds) {
    Problem(formatString("region instructions not conserved (%zu before, "
                         "%zu after)",
                         OldIds.size(), NewIds.size()));
    return Problems; // placements below assume conservation
  }

  std::vector<unsigned> TopoPos(R.numNodes(), ~0u);
  for (unsigned K = 0; K != R.topoOrder().size(); ++K)
    TopoPos[R.topoOrder()[K]] = K;

  PDG P = PDG::build(Before, R, MD);
  const DataDeps &DD = P.dataDeps();
  std::vector<Placement> NewPos = placementsOf(After, R);

  // Dependence order: every recorded DDG edge still runs forward.  (The
  // DDG is transitively reduced; per-edge order is transitive, so checking
  // recorded edges enforces all implied ones.)
  auto NodePosOk = [&](unsigned FromNode, unsigned ToNode, unsigned FromIdx,
                       unsigned ToIdx) {
    if (FromNode != ToNode)
      return TopoPos[FromNode] < TopoPos[ToNode];
    return FromIdx < ToIdx;
  };
  for (const DepEdge &E : DD.edges()) {
    const DataDeps::Node &FN = DD.ddgNode(E.From);
    const DataDeps::Node &TN = DD.ddgNode(E.To);
    if (FN.isBarrier() && TN.isBarrier())
      continue; // summaries never move
    bool Ok;
    if (FN.isBarrier())
      Ok = TopoPos[FN.RegionNode] < TopoPos[NewPos[TN.Instr].Node];
    else if (TN.isBarrier())
      Ok = TopoPos[NewPos[FN.Instr].Node] < TopoPos[TN.RegionNode];
    else
      Ok = NodePosOk(NewPos[FN.Instr].Node, NewPos[TN.Instr].Node,
                     NewPos[FN.Instr].Idx, NewPos[TN.Instr].Idx);
    if (!Ok)
      Problem(formatString("%s dependence %u -> %u no longer runs forward",
                           depKindName(E.Kind),
                           FN.isBarrier() ? ~0u : FN.Instr,
                           TN.isBarrier() ? ~0u : TN.Instr));
  }

  // Per-motion legality: upward only, pinned instructions stay, no
  // duplication-class motion, and the Section 5.3 live-on-exit rule.
  Liveness LVBefore = Liveness::compute(Before);
  Liveness LVAfter = Liveness::compute(After);
  for (unsigned N = 0; N != DD.numNodes(); ++N) {
    const DataDeps::Node &Node = DD.ddgNode(N);
    if (Node.isBarrier())
      continue;
    InstrId I = Node.Instr;
    unsigned OldNode = Node.RegionNode;
    if (!NewPos[I].Valid)
      continue; // conservation already reported
    unsigned NewNode = NewPos[I].Node;
    if (OldNode == NewNode)
      continue;

    if (Before.instr(I).neverCrossesBlock()) {
      Problem(formatString("pinned instruction %u crossed blocks", I));
      continue;
    }
    if (!(TopoPos[NewNode] < TopoPos[OldNode])) {
      Problem(formatString("instruction %u moved downward", I));
      continue;
    }
    MotionClass MC = P.classifyMotion(OldNode, NewNode);
    if (MC.Kind == MotionKind::Duplication || MC.Kind == MotionKind::SpecAndDup)
      Problem(formatString("instruction %u moved off the dominance spine "
                           "(requires duplication)",
                           I));
    if (MC.Kind != MotionKind::Speculative)
      continue;

    // Speculative motion must not kill a register a bypassed path reads.
    // A renamed def is a fresh register (never live anywhere in the
    // original) and thus always safe; an un-renamed def is illegal when
    // some read that consumed the pre-motion value from the target block's
    // exit before the pass (a bypassed reader) still consumes from that
    // exit after it.  Comparing the live-out bits alone is not enough:
    // reads the moved def itself used to feed from its home block keep D
    // live on exit from the target block after the pass, and the original
    // bypassed reader may itself have been scheduled above the target or
    // renamed -- so the *same* read must witness liveness on both sides.
    BlockId ABlock = R.node(NewNode).Block;
    for (Reg D : After.instr(I).defs()) {
      if (!Before.instr(I).definesReg(D))
        continue; // renamed: fresh register
      if (!LVBefore.isLiveOut(ABlock, D) || !LVAfter.isLiveOut(ABlock, D))
        continue;
      if (shareWitness(liveOutWitnesses(Before, ABlock, D),
                       liveOutWitnesses(After, ABlock, D)))
        Problem(formatString("speculative instruction %u kills %s, live on "
                             "exit from %s",
                             I, D.str().c_str(),
                             After.block(ABlock).label().c_str()));
    }
  }

  // Parallel write-after-read: two motions from dependence-unordered
  // source blocks land in the same target block; a write of D placed
  // ahead of a read of D would feed the read the wrong value, and no DDG
  // edge exists to order them (the homes are on parallel paths).
  for (unsigned N = 0; N != R.numNodes(); ++N) {
    if (!R.node(N).isBlock())
      continue;
    const std::vector<InstrId> &List = After.block(R.node(N).Block).instrs();
    std::vector<std::pair<unsigned, InstrId>> MovedIn; // (ddg node, instr)
    for (InstrId I : List) {
      int DN = DD.nodeOfInstr(I);
      if (DN >= 0 && DD.ddgNode(DN).RegionNode != N)
        MovedIn.push_back({static_cast<unsigned>(DN), I});
    }
    for (unsigned A = 0; A != MovedIn.size(); ++A)
      for (unsigned B = A + 1; B != MovedIn.size(); ++B) {
        auto [XN, X] = MovedIn[A]; // placed earlier
        auto [YN, Y] = MovedIn[B]; // placed later
        if (DD.depends(XN, YN) || DD.depends(YN, XN))
          continue; // ordered by the DDG; covered by the edge check
        for (Reg D : After.instr(X).defs())
          if (After.instr(Y).usesReg(D))
            Problem(formatString("write of %s (instruction %u) reordered "
                                 "ahead of a parallel read (instruction %u)",
                                 D.str().c_str(), X, Y));
      }
  }

  return Problems;
}

//===- sched/ScheduleVerifier.cpp - Semantic schedule verifier -------------===//

#include "sched/ScheduleVerifier.h"

#include "analysis/Liveness.h"
#include "analysis/PDG.h"
#include "support/Format.h"
#include "support/Hashing.h"

#include <algorithm>

using namespace gis;

namespace {

/// Placement of one instruction: owning region node plus index in its
/// block's instruction list.
struct Placement {
  unsigned Node = 0;
  unsigned Idx = 0;
  bool Valid = false;
};

/// A possibly-overlaid read view of a function: block lists and pool
/// entries resolve through the override tables when present (the scoped
/// verifier overlays the region snapshot onto the post-pass function to
/// reconstruct the "before" side), else straight from \p F.  CFG edges
/// always come from \p F -- a pure scheduling pass never changes them.
struct FuncView {
  const Function *F = nullptr;
  const std::vector<const std::vector<InstrId> *> *Lists = nullptr;
  const std::vector<const Instruction *> *Instrs = nullptr;

  const std::vector<InstrId> &listOf(BlockId B) const {
    if (Lists && (*Lists)[B])
      return *(*Lists)[B];
    return F->block(B).instrs();
  }
  const Instruction &instrOf(InstrId I) const {
    if (Instrs && (*Instrs)[I])
      return *(*Instrs)[I];
    return F->instr(I);
  }
};

/// Read instructions witnessing "D is live on exit from B" in \p V: every
/// read of D reachable from B's exit before an intervening def.  Sorted by
/// id.  Conservation (checked before any caller runs) guarantees the
/// before and after functions share instruction ids, so the same read can
/// be looked up on both sides.
std::vector<InstrId> liveOutWitnesses(const FuncView &V, BlockId B, Reg D) {
  const Function &F = *V.F;
  std::vector<InstrId> Witnesses;
  std::vector<bool> Visited(F.numBlocks(), false);
  std::vector<BlockId> Work(F.block(B).succs().begin(),
                            F.block(B).succs().end());
  while (!Work.empty()) {
    BlockId Cur = Work.back();
    Work.pop_back();
    if (Cur >= Visited.size() || Visited[Cur])
      continue;
    Visited[Cur] = true;
    bool Killed = false;
    for (InstrId I : V.listOf(Cur)) {
      if (V.instrOf(I).usesReg(D))
        Witnesses.push_back(I); // reads happen before the same instr's write
      if (V.instrOf(I).definesReg(D)) {
        Killed = true;
        break;
      }
    }
    if (!Killed)
      for (BlockId S : F.block(Cur).succs())
        Work.push_back(S);
  }
  std::sort(Witnesses.begin(), Witnesses.end());
  return Witnesses;
}

/// True when the two sorted witness lists share an instruction.
bool shareWitness(const std::vector<InstrId> &A, const std::vector<InstrId> &B) {
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    if (A[I] == B[J])
      return true;
    A[I] < B[J] ? ++I : ++J;
  }
  return false;
}

/// Placements of every instruction sitting in one of the region's real
/// blocks of \p F.
std::vector<Placement> placementsOf(const Function &F, const SchedRegion &R) {
  std::vector<Placement> P(F.numInstrs());
  for (unsigned N = 0; N != R.numNodes(); ++N) {
    if (!R.node(N).isBlock())
      continue;
    const std::vector<InstrId> &Instrs = F.block(R.node(N).Block).instrs();
    for (unsigned K = 0; K != Instrs.size(); ++K) {
      if (Instrs[K] >= P.size())
        continue; // structurally ill-formed; the IR verifier reports it
      P[Instrs[K]] = {N, K, true};
    }
  }
  return P;
}

/// Content hash of one block's instruction list (the scoped verifier's
/// out-of-region change detector).
uint64_t hashInstrList(const std::vector<InstrId> &List) {
  HashBuilder H;
  H.addU64(List.size());
  for (InstrId I : List)
    H.addU32(I);
  return H.hash();
}

/// The rule checks shared by both verifier entry points, from the
/// dependence-edge sweep down.  \p BV / \p AV are the before/after read
/// views; \p SkipEdge (optional) tells the edge sweep an edge is provably
/// still forward (both endpoints' home blocks untouched) and can be
/// skipped without changing the emitted diagnostics -- untouched
/// endpoints sit at their construction placements, and every recorded
/// edge ran forward at construction.
void checkMotions(const std::function<void(std::string)> &Problem,
                  const FuncView &BV, const FuncView &AV, const SchedRegion &R,
                  const PDG &P, const std::vector<unsigned> &TopoPos,
                  const std::function<bool(const DepEdge &)> &SkipEdge,
                  const Liveness *LVBefore, const Liveness *LVAfter) {
  const Function &After = *AV.F;
  const DataDeps &DD = P.dataDeps();
  std::vector<Placement> NewPos = placementsOf(After, R);

  // Dependence order: every recorded DDG edge still runs forward.  (The
  // DDG is transitively reduced; per-edge order is transitive, so checking
  // recorded edges enforces all implied ones.)
  auto NodePosOk = [&](unsigned FromNode, unsigned ToNode, unsigned FromIdx,
                       unsigned ToIdx) {
    if (FromNode != ToNode)
      return TopoPos[FromNode] < TopoPos[ToNode];
    return FromIdx < ToIdx;
  };
  for (const DepEdge &E : DD.edges()) {
    const DataDeps::Node &FN = DD.ddgNode(E.From);
    const DataDeps::Node &TN = DD.ddgNode(E.To);
    if (FN.isBarrier() && TN.isBarrier())
      continue; // summaries never move
    if (SkipEdge && SkipEdge(E))
      continue;
    bool Ok;
    if (FN.isBarrier())
      Ok = TopoPos[FN.RegionNode] < TopoPos[NewPos[TN.Instr].Node];
    else if (TN.isBarrier())
      Ok = TopoPos[NewPos[FN.Instr].Node] < TopoPos[TN.RegionNode];
    else
      Ok = NodePosOk(NewPos[FN.Instr].Node, NewPos[TN.Instr].Node,
                     NewPos[FN.Instr].Idx, NewPos[TN.Instr].Idx);
    if (!Ok)
      Problem(formatString("%s dependence %u -> %u no longer runs forward",
                           depKindName(E.Kind),
                           FN.isBarrier() ? ~0u : FN.Instr,
                           TN.isBarrier() ? ~0u : TN.Instr));
  }

  // Per-motion legality: upward only, pinned instructions stay, no
  // duplication-class motion, and the Section 5.3 live-on-exit rule.
  for (unsigned N = 0; N != DD.numNodes(); ++N) {
    const DataDeps::Node &Node = DD.ddgNode(N);
    if (Node.isBarrier())
      continue;
    InstrId I = Node.Instr;
    unsigned OldNode = Node.RegionNode;
    if (!NewPos[I].Valid)
      continue; // conservation already reported
    unsigned NewNode = NewPos[I].Node;
    if (OldNode == NewNode)
      continue;

    if (BV.instrOf(I).neverCrossesBlock()) {
      Problem(formatString("pinned instruction %u crossed blocks", I));
      continue;
    }
    if (!(TopoPos[NewNode] < TopoPos[OldNode])) {
      Problem(formatString("instruction %u moved downward", I));
      continue;
    }
    MotionClass MC = P.classifyMotion(OldNode, NewNode);
    if (MC.Kind == MotionKind::Duplication || MC.Kind == MotionKind::SpecAndDup)
      Problem(formatString("instruction %u moved off the dominance spine "
                           "(requires duplication)",
                           I));
    if (MC.Kind != MotionKind::Speculative)
      continue;

    // Speculative motion must not kill a register a bypassed path reads.
    // A renamed def is a fresh register (never live anywhere in the
    // original) and thus always safe; an un-renamed def is illegal when
    // some read that consumed the pre-motion value from the target block's
    // exit before the pass (a bypassed reader) still consumes from that
    // exit after it.  Comparing the live-out bits alone is not enough:
    // reads the moved def itself used to feed from its home block keep D
    // live on exit from the target block after the pass, and the original
    // bypassed reader may itself have been scheduled above the target or
    // renamed -- so the *same* read must witness liveness on both sides.
    // (A shared witness is itself a live-out proof on both sides, so the
    // live-out bit tests are a pure pre-filter: the scoped caller passes
    // no Liveness and the verdict is unchanged.)
    BlockId ABlock = R.node(NewNode).Block;
    for (Reg D : AV.instrOf(I).defs()) {
      if (!BV.instrOf(I).definesReg(D))
        continue; // renamed: fresh register
      if (LVBefore && LVAfter &&
          (!LVBefore->isLiveOut(ABlock, D) || !LVAfter->isLiveOut(ABlock, D)))
        continue;
      std::vector<InstrId> WB = liveOutWitnesses(BV, ABlock, D);
      if (WB.empty())
        continue;
      if (shareWitness(WB, liveOutWitnesses(AV, ABlock, D)))
        Problem(formatString("speculative instruction %u kills %s, live on "
                             "exit from %s",
                             I, D.str().c_str(),
                             After.block(ABlock).label().c_str()));
    }
  }

  // Parallel write-after-read: two motions from dependence-unordered
  // source blocks land in the same target block; a write of D placed
  // ahead of a read of D would feed the read the wrong value, and no DDG
  // edge exists to order them (the homes are on parallel paths).
  for (unsigned N = 0; N != R.numNodes(); ++N) {
    if (!R.node(N).isBlock())
      continue;
    const std::vector<InstrId> &List = After.block(R.node(N).Block).instrs();
    std::vector<std::pair<unsigned, InstrId>> MovedIn; // (ddg node, instr)
    for (InstrId I : List) {
      int DN = DD.nodeOfInstr(I);
      if (DN >= 0 && DD.ddgNode(DN).RegionNode != N)
        MovedIn.push_back({static_cast<unsigned>(DN), I});
    }
    for (unsigned A = 0; A != MovedIn.size(); ++A)
      for (unsigned B = A + 1; B != MovedIn.size(); ++B) {
        auto [XN, X] = MovedIn[A]; // placed earlier
        auto [YN, Y] = MovedIn[B]; // placed later
        if (DD.depends(XN, YN) || DD.depends(YN, XN))
          continue; // ordered by the DDG; covered by the edge check
        for (Reg D : After.instr(X).defs())
          if (After.instr(Y).usesReg(D))
            Problem(formatString("write of %s (instruction %u) reordered "
                                 "ahead of a parallel read (instruction %u)",
                                 D.str().c_str(), X, Y));
      }
  }
}

std::vector<unsigned> topoPositions(const SchedRegion &R) {
  std::vector<unsigned> TopoPos(R.numNodes(), ~0u);
  for (unsigned K = 0; K != R.topoOrder().size(); ++K)
    TopoPos[R.topoOrder()[K]] = K;
  return TopoPos;
}

} // namespace

std::vector<std::string> gis::verifyRegionSchedule(const Function &Before,
                                                   const Function &After,
                                                   const SchedRegion &R,
                                                   const MachineDescription &MD,
                                                   const PDG *Prebuilt) {
  std::vector<std::string> Problems;
  auto Problem = [&](std::string Msg) {
    Problems.push_back("region schedule of '" + After.name() + "': " +
                       std::move(Msg));
  };

  // The pass reorders block contents only: the CFG shape is inviolable.
  if (Before.numBlocks() != After.numBlocks() ||
      Before.numInstrs() > After.numInstrs() ||
      Before.layout() != After.layout()) {
    Problem("CFG shape changed across a pure scheduling pass");
    return Problems;
  }

  std::vector<bool> InRegion(Before.numBlocks(), false);
  for (const RegionNode &N : R.nodes())
    if (N.isBlock())
      InRegion[N.Block] = true;
  for (BlockId B = 0; B != Before.numBlocks(); ++B)
    if (!InRegion[B] && Before.block(B).instrs() != After.block(B).instrs())
      Problem(formatString("block %s outside the region changed",
                           Before.block(B).label().c_str()));

  // Conservation: the region holds exactly the original instructions.
  std::vector<InstrId> OldIds, NewIds;
  for (const RegionNode &N : R.nodes()) {
    if (!N.isBlock())
      continue;
    const auto &BI = Before.block(N.Block).instrs();
    const auto &AI = After.block(N.Block).instrs();
    OldIds.insert(OldIds.end(), BI.begin(), BI.end());
    NewIds.insert(NewIds.end(), AI.begin(), AI.end());
  }
  std::sort(OldIds.begin(), OldIds.end());
  std::sort(NewIds.begin(), NewIds.end());
  if (OldIds != NewIds) {
    Problem(formatString("region instructions not conserved (%zu before, "
                         "%zu after)",
                         OldIds.size(), NewIds.size()));
    return Problems; // placements below assume conservation
  }

  std::vector<unsigned> TopoPos = topoPositions(R);

  PDG Fresh;
  if (!Prebuilt) {
    Fresh = PDG::build(Before, R, MD);
    Prebuilt = &Fresh;
  }

  Liveness LVBefore = Liveness::compute(Before);
  Liveness LVAfter = Liveness::compute(After);
  FuncView BV{&Before, nullptr, nullptr};
  FuncView AV{&After, nullptr, nullptr};
  checkMotions(Problem, BV, AV, R, *Prebuilt, TopoPos, nullptr, &LVBefore,
               &LVAfter);
  return Problems;
}

ScopedVerifyContext ScopedVerifyContext::capture(const Function &F,
                                                 const SchedRegion &R) {
  ScopedVerifyContext Ctx;
  Ctx.NumBlocks = F.numBlocks();
  Ctx.NumInstrs = F.numInstrs();
  Ctx.Layout = F.layout();
  Ctx.InRegion.assign(F.numBlocks(), 0);
  for (const RegionNode &N : R.nodes())
    if (N.isBlock())
      Ctx.InRegion[N.Block] = 1;
  Ctx.OutListHash.assign(F.numBlocks(), 0);
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    if (!Ctx.InRegion[B])
      Ctx.OutListHash[B] = hashInstrList(F.block(B).instrs());
  return Ctx;
}

std::vector<std::string> gis::verifyRegionScheduleScoped(
    const ScopedVerifyContext &Ctx, const RegionSnapshot &BeforeRegion,
    const Function &After, const SchedRegion &R, const MachineDescription &MD,
    const PDG &P, ScopedVerifyStats *Stats) {
  (void)MD;
  std::vector<std::string> Problems;
  auto Problem = [&](std::string Msg) {
    Problems.push_back("region schedule of '" + After.name() + "': " +
                       std::move(Msg));
  };

  // The pass reorders block contents only: the CFG shape is inviolable.
  if (Ctx.NumBlocks != After.numBlocks() || Ctx.NumInstrs > After.numInstrs() ||
      Ctx.Layout != After.layout()) {
    Problem("CFG shape changed across a pure scheduling pass");
    return Problems;
  }

  // Out-of-region sweep against the captured fingerprints (the full
  // verifier compares the lists themselves; a 64-bit content hash stands
  // in for the untouched copy we no longer keep).
  for (BlockId B = 0; B != After.numBlocks(); ++B)
    if (!Ctx.InRegion[B] &&
        hashInstrList(After.block(B).instrs()) != Ctx.OutListHash[B])
      Problem(formatString("block %s outside the region changed",
                           After.block(B).label().c_str()));

  // The before side of the region, overlaid from the rollback snapshot:
  // per-block pre-pass lists, per-instruction pre-pass pool entries
  // (renaming rewrites operands of region instructions only -- a local
  // def's uses are block-local by construction -- so out-of-region pool
  // entries are identical on both sides; DESIGN.md section 15).
  std::vector<const std::vector<InstrId> *> BeforeLists(After.numBlocks(),
                                                        nullptr);
  const std::vector<BlockId> &SnapBlocks = BeforeRegion.blocks();
  for (unsigned K = 0; K != SnapBlocks.size(); ++K)
    BeforeLists[SnapBlocks[K]] = &BeforeRegion.blockInstrs()[K];
  std::vector<const Instruction *> BeforeInstrs(After.numInstrs(), nullptr);
  for (const auto &[Id, Ins] : BeforeRegion.instrs())
    if (Id < BeforeInstrs.size())
      BeforeInstrs[Id] = &Ins;

  // Conservation: the region holds exactly the original instructions.
  std::vector<InstrId> OldIds, NewIds;
  for (const std::vector<InstrId> &BI : BeforeRegion.blockInstrs())
    OldIds.insert(OldIds.end(), BI.begin(), BI.end());
  for (const RegionNode &N : R.nodes()) {
    if (!N.isBlock())
      continue;
    const auto &AI = After.block(N.Block).instrs();
    NewIds.insert(NewIds.end(), AI.begin(), AI.end());
  }
  std::sort(OldIds.begin(), OldIds.end());
  std::sort(NewIds.begin(), NewIds.end());
  if (OldIds != NewIds) {
    Problem(formatString("region instructions not conserved (%zu before, "
                         "%zu after)",
                         OldIds.size(), NewIds.size()));
    return Problems; // placements below assume conservation
  }

  std::vector<unsigned> TopoPos = topoPositions(R);
  const DataDeps &DD = P.dataDeps();

  // Touched region nodes: block list differs from the snapshot.  An
  // untouched node's instructions all sit at their construction
  // placements, so a dependence edge between two untouched homes is
  // still forward by construction and can be skipped exactly.
  std::vector<uint8_t> NodeTouched(R.numNodes(), 1);
  unsigned Touched = 0, Total = 0;
  for (unsigned N = 0; N != R.numNodes(); ++N) {
    if (!R.node(N).isBlock())
      continue;
    ++Total;
    BlockId B = R.node(N).Block;
    bool Same =
        BeforeLists[B] && *BeforeLists[B] == After.block(B).instrs();
    NodeTouched[N] = Same ? 0 : 1;
    Touched += NodeTouched[N];
  }
  if (Stats) {
    Stats->BlocksVerified = Touched;
    Stats->BlocksTotal = Total;
  }
  auto SkipEdge = [&](const DepEdge &E) {
    const DataDeps::Node &FN = DD.ddgNode(E.From);
    const DataDeps::Node &TN = DD.ddgNode(E.To);
    bool FromUntouched = FN.isBarrier() || !NodeTouched[FN.RegionNode];
    bool ToUntouched = TN.isBarrier() || !NodeTouched[TN.RegionNode];
    return FromUntouched && ToUntouched;
  };

  FuncView BV{&After, &BeforeLists, &BeforeInstrs};
  FuncView AV{&After, nullptr, nullptr};
  checkMotions(Problem, BV, AV, R, P, TopoPos, SkipEdge, nullptr, nullptr);
  return Problems;
}

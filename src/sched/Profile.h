//===- sched/Profile.h - Execution profiles for speculation -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-frequency profiles.  The paper (Section 1) notes that global
/// scheduling "is capable of taking advantage of the branch probabilities,
/// whenever available (e.g. computed by profiling)": a speculative motion
/// pays off in proportion to how often the gambled-on branch actually goes
/// the candidate's way.  A ProfileData carries per-block execution counts
/// (as recorded by the interpreter); when supplied to the scheduler, ties
/// among speculative candidates break toward the more frequently executed
/// home block.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_PROFILE_H
#define GIS_SCHED_PROFILE_H

#include "ir/Function.h"

#include <map>
#include <string>
#include <vector>

namespace gis {

/// Per-function, per-block execution counts keyed by function name (so a
/// profile collected on one compile of a program applies to a fresh
/// compile of the same source).
class ProfileData {
public:
  /// Records \p Counts (indexed by BlockId) for \p F.
  void record(const Function &F, std::vector<uint64_t> Counts) {
    BlockFreq[F.name()] = std::move(Counts);
  }

  /// Execution count of block \p B of \p F; 0 when unknown (unprofiled
  /// function, or a block created after profiling, e.g. by unrolling).
  uint64_t frequency(const Function &F, BlockId B) const {
    auto It = BlockFreq.find(F.name());
    if (It == BlockFreq.end() || B >= It->second.size())
      return 0;
    return It->second[B];
  }

  bool hasFunction(const std::string &Name) const {
    return BlockFreq.count(Name) != 0;
  }

  bool empty() const { return BlockFreq.empty(); }

private:
  std::map<std::string, std::vector<uint64_t>> BlockFreq;
};

} // namespace gis

#endif // GIS_SCHED_PROFILE_H

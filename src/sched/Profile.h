//===- sched/Profile.h - Execution profiles for speculation -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-frequency profiles.  The paper (Section 1) notes that global
/// scheduling "is capable of taking advantage of the branch probabilities,
/// whenever available (e.g. computed by profiling)": a speculative motion
/// pays off in proportion to how often the gambled-on branch actually goes
/// the candidate's way.  A ProfileData carries per-block execution counts
/// (as recorded by the interpreter); when supplied to the scheduler, ties
/// among speculative candidates break toward the more frequently executed
/// home block.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_PROFILE_H
#define GIS_SCHED_PROFILE_H

#include "ir/Function.h"

#include <map>
#include <string>
#include <vector>

namespace gis {

/// Per-function, per-block execution counts keyed by function name (so a
/// profile collected on one compile of a program applies to a fresh
/// compile of the same source).  Alongside the block counts, a profile
/// may carry per-edge branch counts -- how often control flowed directly
/// from one block to another -- which is what superblock formation
/// (trace/TraceFormation.h) needs: the mutual-most-likely criterion picks
/// the successor that receives most of a block's outgoing flow *and*
/// whose incoming flow mostly comes from that block, which block counts
/// alone cannot distinguish at joins.
class ProfileData {
public:
  /// Edge-count table of one function: key is (From << 32) | To (the same
  /// packing as Interpreter::edgeKey), value the transition count.
  using EdgeCountMap = std::map<uint64_t, uint64_t>;

  /// Records \p Counts (indexed by BlockId) for \p F.
  void record(const Function &F, std::vector<uint64_t> Counts) {
    BlockFreq[F.name()] = std::move(Counts);
  }

  /// Records per-edge transition counts for \p F (as produced by
  /// Interpreter::edgeCounts).
  void recordEdges(const Function &F, EdgeCountMap Counts) {
    EdgeFreq[F.name()] = std::move(Counts);
  }

  /// Execution count of block \p B of \p F; 0 when unknown (unprofiled
  /// function, or a block created after profiling, e.g. by unrolling).
  uint64_t frequency(const Function &F, BlockId B) const {
    auto It = BlockFreq.find(F.name());
    if (It == BlockFreq.end() || B >= It->second.size())
      return 0;
    return It->second[B];
  }

  /// Transition count of the CFG edge \p From -> \p To of \p F; 0 when
  /// unknown or never taken.
  uint64_t edgeFrequency(const Function &F, BlockId From, BlockId To) const {
    auto It = EdgeFreq.find(F.name());
    if (It == EdgeFreq.end())
      return 0;
    auto EIt = It->second.find((static_cast<uint64_t>(From) << 32) | To);
    return EIt == It->second.end() ? 0 : EIt->second;
  }

  /// True when per-edge counts were recorded for \p Name.
  bool hasEdges(const std::string &Name) const {
    return EdgeFreq.count(Name) != 0;
  }

  /// The edge-count table of \p Name (empty map when absent); for
  /// --stats-json surfacing.
  const EdgeCountMap &edges(const std::string &Name) const {
    static const EdgeCountMap Empty;
    auto It = EdgeFreq.find(Name);
    return It == EdgeFreq.end() ? Empty : It->second;
  }

  bool hasFunction(const std::string &Name) const {
    return BlockFreq.count(Name) != 0;
  }

  bool empty() const { return BlockFreq.empty(); }

private:
  std::map<std::string, std::vector<uint64_t>> BlockFreq;
  std::map<std::string, EdgeCountMap> EdgeFreq;
};

} // namespace gis

#endif // GIS_SCHED_PROFILE_H

//===- sched/Pipeline.cpp - The paper's scheduling pipeline ----------------===//

#include "sched/Pipeline.h"

#include "analysis/DisambigCache.h"
#include "analysis/RegPressure.h"
#include "analysis/Region.h"
#include "analysis/RegionSlice.h"
#include "interp/DifferentialOracle.h"
#include "ir/Checkpoint.h"
#include "ir/Verifier.h"
#include "obs/Trace.h"
#include "sched/Duplication.h"
#include "sched/PreRenaming.h"
#include "sched/Rotate.h"
#include "sched/ScheduleVerifier.h"
#include "sched/Transaction.h"
#include "sched/Unroll.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "trace/TailDuplication.h"
#include "trace/TraceFormation.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <functional>
#include <map>
#include <memory>

using namespace gis;

namespace {

/// Loop levels scheduled by the pipeline: a loop is "inner" when it has no
/// children; "outer" when all its children are inner.  The top-level
/// region (the function body) is treated as outer.
bool isInnerLoop(const LoopInfo &LI, unsigned L) {
  return LI.loop(L).Children.empty();
}

bool isOuterLoop(const LoopInfo &LI, unsigned L) {
  if (LI.loop(L).Children.empty())
    return false;
  for (int C : LI.loop(L).Children)
    if (!LI.loop(C).Children.empty())
      return false;
  return true;
}

/// Shared context of one pipeline run's transactions.
struct TxContext {
  Function &F;
  const MachineDescription &MD;
  const PipelineOptions &Opts;
  PipelineStats &Stats;
  /// The run's shared disambiguation cache (DESIGN.md section 15);
  /// null with incremental maintenance off (--no-incremental), which
  /// keeps that mode a fully uncached reference.
  DisambigCache *Cache = nullptr;
};

/// Runs one whole-function transform as a transaction: snapshot,
/// transform, verify, commit or roll back.  Region scheduling does not
/// come through here -- it uses the region-local transaction boundary of
/// scheduleRegionWave below, which rolls back a single region instead of
/// the whole function.
///
/// \param Stage    stable stage name ("prerename", "unroll", "rotate",
///                 "duplicate", "local"); also the fault injection trigger
///                 point (GIS_FAULT_INJECT).
/// \param LoopIdx  region loop index for diagnostics (-1: whole function).
/// \param Body     the transform.  Records its statistics into the passed
///                 delta (merged into Ctx.Stats only on commit) and
///                 reports recoverable failures through its return Status.
/// \param RegionScoped controls which rollback counter a failure bumps.
///
/// Returns true when the transaction committed.  With transactions
/// disabled the body runs bare: no snapshot, no verification, and a failure
/// Status aborts (the historical fail-fast contract).
bool runTransaction(TxContext &Ctx, const char *Stage, int LoopIdx,
                    const std::function<Status(PipelineStats &)> &Body,
                    bool RegionScoped) {
  obs::TraceSpan StageSpan(Stage, "stage", "loop",
                           static_cast<int64_t>(LoopIdx));
  if (!Ctx.Opts.EnableTransactions) {
    TransactionConfig Cfg;
    Cfg.Enabled = false;
    PipelineStats Delta;
    runFunctionTransaction(Ctx.F, Stage, Cfg,
                           [&] { return Body(Delta); });
    Ctx.Stats += Delta;
    return true;
  }

  ++Ctx.Stats.TransactionsRun;
  TransactionConfig Cfg;
  Cfg.VerifyStructural = Ctx.Opts.VerifyStructural;
  Cfg.EnableOracle = Ctx.Opts.EnableOracle;
  Cfg.OracleModule = Ctx.Opts.OracleModule;
  Cfg.OracleMaxSteps = Ctx.Opts.OracleMaxSteps;

  PipelineStats Delta;
  TransactionResult R =
      runFunctionTransaction(Ctx.F, Stage, Cfg, [&] { return Body(Delta); });
  if (R.EngineFailure)
    ++Ctx.Stats.EngineFailures;
  if (R.FaultInjected)
    ++Ctx.Stats.FaultsInjected;
  if (R.VerifierFailure)
    ++Ctx.Stats.VerifierFailures;
  if (R.OracleMismatch)
    ++Ctx.Stats.OracleMismatches;

  if (R.Committed) {
    Ctx.Stats += Delta;
    return true;
  }

  if (RegionScoped)
    ++Ctx.Stats.RegionsRolledBack;
  else
    ++Ctx.Stats.TransformsRolledBack;
  if (Ctx.Opts.CollectCounters)
    Ctx.Stats.Counters.bump(obs::Rollbacks);
  obs::Tracer::instance().instant("rollback", "tx", "loop",
                                  static_cast<int64_t>(LoopIdx));
  reportDiagnostic(Ctx.Stats.Diags, R.S, Ctx.F.name(), Stage, LoopIdx);
  return false;
}

/// Delta variant of runTransaction for whole-function transforms whose
/// touched state is a small fraction of the function (pre-renaming, the
/// local scheduler): instead of a full FunctionSnapshot the transaction
/// takes a DeltaCheckpoint and the body notes each block list / pool
/// entry before first mutating it (sched/Transaction.h).  With
/// incremental maintenance off -- or transactions off -- this delegates
/// to runTransaction, so --no-incremental keeps the historical
/// full-snapshot path bit for bit.
bool runDeltaTransaction(
    TxContext &Ctx, const char *Stage, int LoopIdx,
    const std::function<Status(PipelineStats &, DeltaCheckpoint &)> &Body,
    bool RegionScoped) {
  if (!Ctx.Opts.Incremental || !Ctx.Opts.EnableTransactions) {
    DeltaCheckpoint Ck(Ctx.F, /*Armed=*/false);
    return runTransaction(
        Ctx, Stage, LoopIdx,
        [&](PipelineStats &Delta) { return Body(Delta, Ck); }, RegionScoped);
  }

  obs::TraceSpan StageSpan(Stage, "stage", "loop",
                           static_cast<int64_t>(LoopIdx));
  ++Ctx.Stats.TransactionsRun;
  TransactionConfig Cfg;
  Cfg.VerifyStructural = Ctx.Opts.VerifyStructural;
  Cfg.EnableOracle = Ctx.Opts.EnableOracle;
  Cfg.OracleModule = Ctx.Opts.OracleModule;
  Cfg.OracleMaxSteps = Ctx.Opts.OracleMaxSteps;

  PipelineStats Delta;
  DeltaCheckpoint Ck(Ctx.F, /*Armed=*/true);
  TransactionResult R = runFunctionTransactionDelta(
      Ctx.F, Stage, Cfg, Ck, [&] { return Body(Delta, Ck); });
  if (Ctx.Opts.CollectCounters)
    Ctx.Stats.Counters.bump(obs::ColdCkptBytes, Ck.bytesSaved());
  if (R.EngineFailure)
    ++Ctx.Stats.EngineFailures;
  if (R.FaultInjected)
    ++Ctx.Stats.FaultsInjected;
  if (R.VerifierFailure)
    ++Ctx.Stats.VerifierFailures;
  if (R.OracleMismatch)
    ++Ctx.Stats.OracleMismatches;

  if (R.Committed) {
    Ctx.Stats += Delta;
    return true;
  }

  if (RegionScoped)
    ++Ctx.Stats.RegionsRolledBack;
  else
    ++Ctx.Stats.TransformsRolledBack;
  if (Ctx.Opts.CollectCounters)
    Ctx.Stats.Counters.bump(obs::Rollbacks);
  obs::Tracer::instance().instant("rollback", "tx", "loop",
                                  static_cast<int64_t>(LoopIdx));
  reportDiagnostic(Ctx.Stats.Diags, R.S, Ctx.F.name(), Stage, LoopIdx);
  return false;
}

//===----------------------------------------------------------------------===
// Region-parallel scheduling (the region dependence forest)
//===----------------------------------------------------------------------===
//
// Two regions of one function conflict exactly when one encloses the other:
// the enclosing region reads the enclosed loop's blocks through its summary
// nodes (SummaryDefs/SummaryUses), and "shares" no block otherwise --
// regions partition the function's blocks.  The dependence structure is
// therefore the loop forest itself, and its levels are the parallel waves:
// all loops of equal forest height are pairwise disjoint and independent,
// while a parent must wait for its children's commits.  The top-level
// region runs as the final wave of the second pass.
//
// Execution model (RegionJobs > 1): each wave forks the function once
// ("Base"); every region task copies Base, schedules its region there
// against its RegionSlice, and verifies the copy.  The serial merge then
// walks tasks in region-index order: a failed task's copy is simply
// dropped (the region-local rollback -- siblings are unaffected), a
// successful task's region blocks are committed into the master function
// via RegionSnapshot::applyTo, with registers the task allocated (renames)
// renumbered into the master's counter space in that same deterministic
// order.  A task never reads outside its slice, and the merge order is
// independent of thread interleaving, so the output is bit-identical for
// every RegionJobs value.

/// One region task of a wave.
struct RegionTask {
  int LoopIdx = -1;
  RegionSlice Slice;
  Function Priv{""}; ///< the task's private copy of the wave-base function
  PipelineStats Delta; ///< body statistics, merged only on commit
  Status S;
  bool FaultInjected = false;
  unsigned EngFailures = 0;
  unsigned VerFailures = 0;
  unsigned OracleFailures = 0;
  double Seconds = 0;
};

/// Forest height of every loop (leaves are 0); children therefore always
/// sit in a strictly earlier wave than their parent.
std::vector<unsigned> loopHeights(const LoopInfo &LI) {
  std::vector<unsigned> H(LI.numLoops(), 0);
  for (unsigned L : LI.innermostFirstOrder()) // children visited first
    for (int C : LI.loop(L).Children)
      H[L] = std::max(H[L], H[C] + 1);
  return H;
}

/// Schedules one wave of mutually independent, pre-built regions.  Shared
/// by the loop-forest waves (scheduleRegionWave below, which builds the
/// regions from loop indices) and the superblock phase (whose trace
/// regions have no loop index; SchedRegion::buildTrace).  Each task is
/// identified by its region's loopIndex() -- a real loop index, -1 for
/// the top-level region, or a trace encoding (<= -2) -- used only for
/// diagnostics and timing records.
void scheduleRegionWavePrebuilt(
    TxContext &Ctx, std::vector<SchedRegion> Regions,
    const std::function<ThreadPool *(size_t)> &PoolFor) {
  const bool Transactional = Ctx.Opts.EnableTransactions;

  // Serial setup on the master function: size limits, slices.  The
  // whole-function liveness is computed once per wave and only used to
  // freeze the slices' out-of-region boundaries.
  std::vector<std::unique_ptr<RegionTask>> Tasks;
  Liveness WaveLV;
  bool HaveWaveLV = false;
  for (SchedRegion &R : Regions) {
    if (R.numRealBlocks() > Ctx.Opts.RegionBlockLimit ||
        R.numInstrs() > Ctx.Opts.RegionInstrLimit) {
      ++Ctx.Stats.RegionsSkippedBySize;
      continue;
    }
    if (!HaveWaveLV) {
      WaveLV = Liveness::compute(Ctx.F);
      HaveWaveLV = true;
    }
    auto T = std::make_unique<RegionTask>();
    T->LoopIdx = R.loopIndex();
    T->Slice = RegionSlice::build(Ctx.F, std::move(R), WaveLV);
    Tasks.push_back(std::move(T));
  }
  if (Tasks.empty())
    return;

  const unsigned WaveNo = Ctx.Stats.RegionWaves;
  obs::TraceSpan WaveSpan("wave", "region", "wave",
                          static_cast<int64_t>(WaveNo), "tasks",
                          static_cast<int64_t>(Tasks.size()));

  // Earlier transforms (unroll, rotate, prior waves' commits) moved code
  // since the cache last saw this function; start a fresh facts epoch.
  // Within the wave the facts stay exact: every task builds its PDG
  // before any motion, when its private fork still equals the wave base.
  if (Ctx.Cache)
    Ctx.Cache->noteFunctionChanged();

  GlobalSchedOptions GOpts;
  GOpts.Level = Ctx.Opts.Level;
  GOpts.MaxSpecDepth = Ctx.Opts.MaxSpecDepth;
  GOpts.EnableRenaming = Ctx.Opts.EnableRenaming;
  GOpts.Order = Ctx.Opts.Order;
  GOpts.Profile = Ctx.Opts.Profile;
  GOpts.Incremental = Ctx.Opts.Incremental;
  GOpts.Cache = Ctx.Cache;

#ifndef GIS_SLOWPATH_CHECK
  // Single-task fast path (DESIGN.md section 15): schedule the region in
  // place instead of forking the wave base and copying the private result
  // back.  Rollback is guarded by a region snapshot and verification by
  // the block-scoped verifier reading the pre-pass state from a capture;
  // the commit/rollback bookkeeping below mirrors the forked merge
  // exactly, and with one task the register-renumbering merge is the
  // identity, so the output is bit-identical to the forked path (the
  // GIS_SLOWPATH_CHECK build always takes the forked path and dual-runs
  // both verifiers to enforce that).  Level None would return before the
  // PDG export, and the oracle needs the complete pre-pass function, so
  // both fall through to the forked path.
  if (Tasks.size() == 1 && Ctx.Opts.Incremental &&
      Ctx.Opts.Level != SchedLevel::None &&
      !(Ctx.Opts.EnableOracle && Ctx.Opts.OracleModule)) {
    RegionTask &T = *Tasks.front();
    obs::TraceSpan RegionSpan("region", "region", "loop",
                              static_cast<int64_t>(T.LoopIdx), "wave",
                              static_cast<int64_t>(WaveNo));
    auto Start = std::chrono::steady_clock::now();
    GlobalScheduler GS(Ctx.MD, GOpts);
    Status S;
    obs::SchedSink Sink;
    if (Ctx.Opts.CollectCounters)
      Sink.Counters = &T.Delta.Counters;
    if (Ctx.Opts.CollectDecisions)
      Sink.Decisions = &T.Delta.Decisions;

    const bool WantScoped = Transactional && Ctx.Opts.VerifySemantic;
    ScopedVerifyContext VCtx;
    if (WantScoped)
      VCtx = ScopedVerifyContext::capture(Ctx.F, T.Slice.region());
    std::unique_ptr<RegionSnapshot> Snap;
    if (Transactional)
      Snap = std::make_unique<RegionSnapshot>(Ctx.F, T.Slice.blocks());

    PDG P;
    T.Delta.Global += GS.scheduleRegion(Ctx.F, T.Slice.region(),
                                        Transactional ? &S : nullptr,
                                        &T.Slice, Sink,
                                        WantScoped ? &P : nullptr);
    if (Transactional) {
      if (!S.isOk())
        ++T.EngFailures;
      if (S.isOk() && FaultInjector::instance().shouldFire("region") &&
          corruptRegionForTest(Ctx.F, T.Slice.blocks()))
        T.FaultInjected = true;
      if (S.isOk() && Ctx.Opts.VerifyStructural) {
        std::vector<std::string> Problems = verifyFunction(Ctx.F);
        if (!Problems.empty()) {
          S = Status::error(ErrorCode::VerifierStructural, Problems.front());
          ++T.VerFailures;
        }
      }
      if (S.isOk() && Ctx.Opts.VerifySemantic) {
        ScopedVerifyStats VS;
        std::vector<std::string> Problems = verifyRegionScheduleScoped(
            VCtx, *Snap, Ctx.F, T.Slice.region(), Ctx.MD, P, &VS);
        if (Ctx.Opts.CollectCounters) {
          T.Delta.Counters.bump(obs::ColdVerifyBlocksScoped,
                                VS.BlocksVerified);
          T.Delta.Counters.bump(obs::ColdVerifyBlocksTotal, VS.BlocksTotal);
        }
        if (!Problems.empty()) {
          S = Status::error(ErrorCode::VerifierSemantic, Problems.front());
          ++T.VerFailures;
        }
      }
    } else if (!S.isOk()) {
      // Unreachable: with Err == nullptr scheduleRegion aborts on failure
      // (the historical fail-fast contract).
      fatalError(__FILE__, __LINE__, S.str().c_str());
    }
    T.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();

    if (Transactional)
      ++Ctx.Stats.TransactionsRun;
    Ctx.Stats.EngineFailures += T.EngFailures;
    Ctx.Stats.VerifierFailures += T.VerFailures;
    if (T.FaultInjected)
      ++Ctx.Stats.FaultsInjected;
    Ctx.Stats.RegionTimes.push_back({T.LoopIdx, WaveNo, T.Seconds});
    if (!S.isOk()) {
      // Region-local rollback, in place: restore the region's block lists,
      // pool entries and the register counters from the snapshot.
      Snap->restore(Ctx.F);
      ++Ctx.Stats.RegionsRolledBack;
      if (Ctx.Opts.CollectCounters)
        Ctx.Stats.Counters.bump(obs::Rollbacks);
      obs::Tracer::instance().instant("rollback", "tx", "loop",
                                      static_cast<int64_t>(T.LoopIdx));
      reportDiagnostic(Ctx.Stats.Diags, S, Ctx.F.name(), "region", T.LoopIdx);
    } else {
      for (obs::Decision &D : T.Delta.Decisions) {
        D.LoopIdx = T.LoopIdx;
        D.Wave = WaveNo;
      }
      Ctx.Stats += T.Delta;
    }
    ++Ctx.Stats.RegionWaves;
    return;
  }
#endif // !GIS_SLOWPATH_CHECK

  const Function Base = Ctx.F; // the wave's fork point

  auto RunTask = [&](RegionTask &T) {
    obs::TraceSpan RegionSpan("region", "region", "loop",
                              static_cast<int64_t>(T.LoopIdx), "wave",
                              static_cast<int64_t>(WaveNo));
    auto Start = std::chrono::steady_clock::now();
    T.Priv = Base;
    GlobalScheduler GS(Ctx.MD, GOpts);
    Status S;
    obs::SchedSink Sink;
    if (Ctx.Opts.CollectCounters)
      Sink.Counters = &T.Delta.Counters;
    if (Ctx.Opts.CollectDecisions)
      Sink.Decisions = &T.Delta.Decisions;
    // Reuse the PDG the scheduler built (exported pre-motion, so
    // content-equal to one built on Base) for semantic verification.
    // --no-incremental deliberately leaves it unused: the reference mode
    // re-derives everything from scratch.
    const bool UsePrebuilt =
        Transactional && Ctx.Opts.VerifySemantic && Ctx.Opts.Incremental;
#ifdef GIS_SLOWPATH_CHECK
    const bool ExportPDG = Transactional && Ctx.Opts.VerifySemantic;
    ScopedVerifyContext SlowCtx;
    std::unique_ptr<RegionSnapshot> SlowSnap;
    if (ExportPDG) {
      SlowCtx = ScopedVerifyContext::capture(Base, T.Slice.region());
      SlowSnap = std::make_unique<RegionSnapshot>(Base, T.Slice.blocks());
    }
#else
    const bool ExportPDG = UsePrebuilt;
#endif
    PDG P;
    T.Delta.Global += GS.scheduleRegion(T.Priv, T.Slice.region(),
                                        Transactional ? &S : nullptr,
                                        &T.Slice, Sink,
                                        ExportPDG ? &P : nullptr);
    if (Transactional) {
      if (!S.isOk())
        ++T.EngFailures;
      if (S.isOk() && FaultInjector::instance().shouldFire("region") &&
          corruptRegionForTest(T.Priv, T.Slice.blocks()))
        T.FaultInjected = true;
      if (S.isOk() && Ctx.Opts.VerifyStructural) {
        std::vector<std::string> Problems = verifyFunction(T.Priv);
        if (!Problems.empty()) {
          S = Status::error(ErrorCode::VerifierStructural, Problems.front());
          ++T.VerFailures;
        }
      }
      if (S.isOk() && Ctx.Opts.VerifySemantic) {
        std::vector<std::string> Problems =
            verifyRegionSchedule(Base, T.Priv, T.Slice.region(), Ctx.MD,
                                 UsePrebuilt ? &P : nullptr);
#ifdef GIS_SLOWPATH_CHECK
        // Dual-run: the block-scoped verifier must agree with the full
        // sweep -- same verdict, byte-identical diagnostics.
        std::vector<std::string> Scoped = verifyRegionScheduleScoped(
            SlowCtx, *SlowSnap, T.Priv, T.Slice.region(), Ctx.MD, P);
        if (Scoped != Problems)
          fatalError(__FILE__, __LINE__,
                     "slow-path check: scoped schedule verifier diverges "
                     "from the full sweep");
#endif
        if (!Problems.empty()) {
          S = Status::error(ErrorCode::VerifierSemantic, Problems.front());
          ++T.VerFailures;
        }
      }
      if (S.isOk() && Ctx.Opts.EnableOracle && Ctx.Opts.OracleModule) {
        OracleOptions OOpts;
        OOpts.MaxSteps = Ctx.Opts.OracleMaxSteps;
        OracleReport Rep = runDifferentialOracle(*Ctx.Opts.OracleModule,
                                                 Base, T.Priv, OOpts);
        if (Rep.Verdict == OracleVerdict::Mismatch) {
          S = Status::error(ErrorCode::OracleMismatch, Rep.Detail);
          ++T.OracleFailures;
        }
      }
    } else if (!S.isOk()) {
      // Unreachable: with Err == nullptr scheduleRegion aborts on failure
      // (the historical fail-fast contract).
      fatalError(__FILE__, __LINE__, S.str().c_str());
    }
    T.S = S;
    T.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();
  };

  if (ThreadPool *Pool = PoolFor(Tasks.size())) {
    for (auto &T : Tasks)
      Pool->submit([&RunTask, &Task = *T] { RunTask(Task); });
    Pool->waitIdle();
  } else {
    for (auto &T : Tasks)
      RunTask(*T);
  }

  // Serial merge in region-index (construction) order: failure counters
  // always, body statistics and the region patch only on commit.
  const std::array<RegClass, 3> Classes = {RegClass::GPR, RegClass::FPR,
                                           RegClass::CR};
  std::array<unsigned, 3> BaseRegs;
  for (unsigned C = 0; C != 3; ++C)
    BaseRegs[C] = Base.numRegs(Classes[C]);
  const unsigned Wave = Ctx.Stats.RegionWaves;
  for (auto &TP : Tasks) {
    RegionTask &T = *TP;
    if (Transactional)
      ++Ctx.Stats.TransactionsRun;
    Ctx.Stats.EngineFailures += T.EngFailures;
    Ctx.Stats.VerifierFailures += T.VerFailures;
    Ctx.Stats.OracleMismatches += T.OracleFailures;
    if (T.FaultInjected)
      ++Ctx.Stats.FaultsInjected;
    Ctx.Stats.RegionTimes.push_back({T.LoopIdx, Wave, T.Seconds});
    if (!T.S.isOk()) {
      // Region-local rollback: drop the private copy; siblings and the
      // master function are untouched by construction.  The task's
      // counters and decisions are dropped with it: observability reports
      // committed work only.
      ++Ctx.Stats.RegionsRolledBack;
      if (Ctx.Opts.CollectCounters)
        Ctx.Stats.Counters.bump(obs::Rollbacks);
      obs::Tracer::instance().instant("rollback", "tx", "loop",
                                      static_cast<int64_t>(T.LoopIdx));
      reportDiagnostic(Ctx.Stats.Diags, T.S, Ctx.F.name(), "region",
                       T.LoopIdx);
      continue;
    }
    for (obs::Decision &D : T.Delta.Decisions) {
      D.LoopIdx = T.LoopIdx;
      D.Wave = Wave;
    }
    Ctx.Stats += T.Delta;
    // Commit: copy the region's blocks into the master, renumbering the
    // registers this task allocated (renames) into the master's counter
    // space.  Task-order renumbering keeps the result independent of how
    // the tasks interleaved.
    std::array<unsigned, 3> MasterBase;
    for (unsigned C = 0; C != 3; ++C)
      MasterBase[C] = Ctx.F.numRegs(Classes[C]);
    RegionSnapshot Patch(T.Priv, T.Slice.blocks());
    Patch.applyTo(Ctx.F, [&](Reg R) {
      unsigned C = static_cast<unsigned>(R.regClass());
      if (R.index() < BaseRegs[C])
        return R;
      return Reg::make(R.regClass(), MasterBase[C] + (R.index() - BaseRegs[C]));
    });
    for (unsigned C = 0; C != 3; ++C) {
      unsigned Fresh = T.Priv.numRegs(Classes[C]) - BaseRegs[C];
      if (Fresh > 0)
        Ctx.F.noteReg(Reg::make(Classes[C], MasterBase[C] + Fresh - 1));
    }
  }
  ++Ctx.Stats.RegionWaves;
}

/// Schedules one wave of mutually independent regions (\p LoopIdxs; -1 is
/// the top-level region).  \p PoolFor returns the pool to dispatch on (or
/// null to run inline) given the number of runnable tasks.
void scheduleRegionWave(TxContext &Ctx, const LoopInfo &LI,
                        const std::vector<int> &LoopIdxs,
                        const std::function<ThreadPool *(size_t)> &PoolFor) {
  std::vector<SchedRegion> Regions;
  Regions.reserve(LoopIdxs.size());
  for (int LoopIdx : LoopIdxs)
    Regions.push_back(SchedRegion::build(Ctx.F, LI, LoopIdx));
  scheduleRegionWavePrebuilt(Ctx, std::move(Regions), PoolFor);
}

} // namespace

PipelineStats gis::schedulePipeline(Function &F, const MachineDescription &MD,
                                    const PipelineOptions &Opts) {
  PipelineStats Stats;
  // One disambiguation cache per pipeline run, shared by both global
  // passes, the local pass and every --region-jobs task (DESIGN.md
  // section 15).  --no-incremental runs fully uncached.
  DisambigCache DCache;
  TxContext Ctx{F, MD, Opts, Stats, Opts.Incremental ? &DCache : nullptr};
  obs::Tracer &Tr = obs::Tracer::instance();
  obs::TraceSpan PipeSpan("pipeline", "pipeline", nullptr, 0, nullptr, 0,
                          Tr.enabled() ? std::string(F.name())
                                       : std::string());
  F.recomputeCFG();

  // Step -1: the mid-end optimizer (src/opt/), the stage the paper's XL
  // compiler ran before handing IR to the scheduler.  Each pass is its own
  // transaction under the same guards as the scheduling transforms; its
  // report folds into this run's statistics so rollbacks, faults and
  // diagnostics surface through the one channel.
  if (Opts.Opt.anyEnabled()) {
    TransactionConfig TxCfg;
    TxCfg.Enabled = Opts.EnableTransactions;
    TxCfg.VerifyStructural = Opts.VerifyStructural;
    TxCfg.EnableOracle = Opts.EnableOracle;
    TxCfg.OracleModule = Opts.OracleModule;
    TxCfg.OracleMaxSteps = Opts.OracleMaxSteps;
    opt::OptRunReport R = opt::runOptPasses(
        F, MD, Opts.Opt, TxCfg,
        Opts.CollectCounters ? &Stats.Counters : nullptr);
    Stats.Opt += R.Opt;
    Stats.TransactionsRun += R.TransactionsRun;
    Stats.TransformsRolledBack += R.TransformsRolledBack;
    Stats.VerifierFailures += R.VerifierFailures;
    Stats.OracleMismatches += R.OracleMismatches;
    Stats.EngineFailures += R.EngineFailures;
    Stats.FaultsInjected += R.FaultsInjected;
    Stats.Diags.insert(Stats.Diags.end(), R.Diags.begin(), R.Diags.end());
  }

  F.renumberOriginalOrder();

  LoopInfo LI = LoopInfo::compute(F);
  bool GlobalEnabled = Opts.Level != SchedLevel::None;
  if (!LI.isReducible()) {
    ++Stats.FunctionsSkippedIrreducible;
    GlobalEnabled = false;
  }

  // The pool for region waves, created lazily for the first wave with two
  // or more runnable regions.  The pipeline owns its own pool rather than
  // borrowing the engine's: this run may itself be an engine task, and
  // waitIdle() must not be called from inside a task of the same pool.
  // With the oracle enabled region tasks run serially (the oracle
  // interprets whole functions); wave semantics are kept either way, so
  // the output does not depend on RegionJobs.
  const unsigned RegionJobs =
      Opts.RegionJobs == 0 ? ThreadPool::hardwareThreads() : Opts.RegionJobs;
  std::unique_ptr<ThreadPool> RegionPool;
  auto PoolFor = [&](size_t NumTasks) -> ThreadPool * {
    if (RegionJobs <= 1 || NumTasks <= 1)
      return nullptr;
    if (Opts.EnableOracle && Opts.OracleModule)
      return nullptr;
    if (!RegionPool)
      RegionPool = std::make_unique<ThreadPool>(RegionJobs);
    return RegionPool.get();
  };

  // Step 0: the Section 4.2 preprocessing -- rename block-local values so
  // register reuse does not manufacture anti/output dependences.  In the
  // paper this renaming belongs to the XL compiler's general optimization
  // (the base compiler has it too), so it is not gated on the global
  // scheduling level: the basic-block scheduler profits as well.
  if (Opts.EnablePreRenaming)
    runDeltaTransaction(
        Ctx, "prerename", -1,
        [&](PipelineStats &Delta, DeltaCheckpoint &Ck) {
          Delta.PreRenamedDefs =
              preRenameLocals(F, Ck.armed() ? &Ck : nullptr).RenamedDefs;
          return Status::ok();
        },
        /*RegionScoped=*/false);

  if (GlobalEnabled) {
    // Step 1: unroll small inner loops once.  Each unroll invalidates
    // LoopInfo, so process one loop at a time.  A rolled-back unroll marks
    // its header done, so the loop is simply left un-unrolled.
    if (Opts.EnableUnroll) {
      bool Progress = true;
      std::vector<BlockId> UnrolledHeaders;
      while (Progress) {
        Progress = false;
        LI = LoopInfo::compute(F);
        for (unsigned L = 0; L != LI.numLoops(); ++L) {
          if (!isInnerLoop(LI, L) ||
              LI.loop(L).numBlocks() > Opts.UnrollMaxBlocks)
            continue;
          BlockId Header = LI.loop(L).Header;
          if (std::find(UnrolledHeaders.begin(), UnrolledHeaders.end(),
                        Header) != UnrolledHeaders.end())
            continue; // already unrolled once
          UnrolledHeaders.push_back(Header);
          if (!canUnrollOnce(F, LI, L))
            continue; // shape unsupported; no transaction needed
          bool Changed = false;
          bool Committed = runTransaction(
              Ctx, "unroll", static_cast<int>(L),
              [&](PipelineStats &Delta) {
                Status S;
                Changed = unrollLoopOnce(
                    F, LI, L, Opts.EnableTransactions ? &S : nullptr);
                if (Changed)
                  ++Delta.LoopsUnrolled;
                return S;
              },
              /*RegionScoped=*/false);
          if (Committed && Changed) {
            Progress = true;
            break; // LoopInfo is stale; restart
          }
        }
      }
    }

    // Step 2: first global scheduling pass over the inner regions.  Inner
    // loops are leaves of the loop forest, hence pairwise disjoint: one
    // wave.
    LI = LoopInfo::compute(F);
    {
      obs::TraceSpan Pass1Span("pass1", "stage");
      std::vector<int> Inner;
      for (unsigned L : LI.innermostFirstOrder())
        if (isInnerLoop(LI, L))
          Inner.push_back(static_cast<int>(L));
      if (!Inner.empty())
        scheduleRegionWave(Ctx, LI, Inner, PoolFor);
    }

    // Step 3: rotate small inner loops.  As with unrolling, a rolled-back
    // rotation leaves the loop in its original shape and moves on.
    if (Opts.EnableRotate) {
      bool Progress = true;
      std::vector<BlockId> RotatedHeaders;
      while (Progress) {
        Progress = false;
        LI = LoopInfo::compute(F);
        for (unsigned L = 0; L != LI.numLoops(); ++L) {
          if (!isInnerLoop(LI, L) ||
              LI.loop(L).numBlocks() > Opts.RotateMaxBlocks)
            continue;
          BlockId Header = LI.loop(L).Header;
          if (std::find(RotatedHeaders.begin(), RotatedHeaders.end(),
                        Header) != RotatedHeaders.end())
            continue;
          if (!canRotateLoop(F, LI, L)) {
            RotatedHeaders.push_back(Header);
            continue;
          }
          bool Changed = false;
          bool Committed = runTransaction(
              Ctx, "rotate", static_cast<int>(L),
              [&](PipelineStats &Delta) {
                Status S;
                Changed = rotateLoop(F, LI, L,
                                     Opts.EnableTransactions ? &S : nullptr);
                if (Changed)
                  ++Delta.LoopsRotated;
                return S;
              },
              /*RegionScoped=*/false);
          if (Committed && Changed) {
            // The rotated loop's header changes; remember the new loops by
            // marking every current header as done after one rotation.
            LI = LoopInfo::compute(F);
            for (unsigned L2 = 0; L2 != LI.numLoops(); ++L2)
              RotatedHeaders.push_back(LI.loop(L2).Header);
            Progress = true;
            break;
          }
          RotatedHeaders.push_back(Header);
        }
      }
    }

    // Step 4: second global scheduling pass -- rotated inner loops plus
    // outer regions (and the top-level region).  Loops are grouped into
    // waves by loop-forest height, ascending: same-height loops are
    // pairwise disjoint (independent), while a parent region reads its
    // children's blocks through its summary nodes and so runs only after
    // their wave committed.
    LI = LoopInfo::compute(F);
    {
      obs::TraceSpan Pass2Span("pass2", "stage");
      std::vector<unsigned> Heights = loopHeights(LI);
      std::map<unsigned, std::vector<int>> Waves; // height -> loops
      for (unsigned L : LI.innermostFirstOrder()) {
        bool Schedule = isInnerLoop(LI, L) ||
                        (Opts.OnlyTwoInnerLevels ? isOuterLoop(LI, L) : true);
        if (Schedule)
          Waves[Heights[L]].push_back(static_cast<int>(L));
      }
      for (const auto &[Height, Loops] : Waves)
        scheduleRegionWave(Ctx, LI, Loops, PoolFor);
    }
    // The function body region: with the two-level restriction it is
    // scheduled only when no loop nesting exceeds it (the body is then
    // effectively the outer region).  It encloses every loop, so it is a
    // single-region wave after all of them.
    bool ScheduleTop = true;
    if (Opts.OnlyTwoInnerLevels) {
      for (unsigned L = 0; L != LI.numLoops(); ++L)
        if (LI.loop(L).Parent < 0 && !LI.loop(L).Children.empty())
          ScheduleTop = false; // top level sits above two loop levels
    }
    if (ScheduleTop) {
      obs::TraceSpan TopSpan("pass2", "stage");
      scheduleRegionWave(Ctx, LI, {-1}, PoolFor);
    }

    // Superblock formation (DESIGN.md section 16): pick hot chains by
    // mutual-most-likely edge selection (static branch-not-taken heuristic
    // without a profile), tail-duplicate their side entrances away, and
    // reschedule each surviving single-entry chain as one multi-exit
    // region.  Runs after the top-level wave so the superblock pass has
    // the last word over the hot path's code motion.  Formation is pure
    // analysis in its own transaction ("trace-form"); each duplication is
    // a separate "tail-dup" transaction -- a rollback drops that one
    // trace and its budget spend, never the whole phase.
    if (Opts.EnableSuperblocks) {
      LI = LoopInfo::compute(F);
      TraceFormationOptions TOpts;
      TOpts.MaxBlocks = std::min(Opts.TraceMaxBlocks, Opts.RegionBlockLimit);
      TOpts.Profile = Opts.Profile;
      std::vector<SuperblockTrace> Traces;
      bool Formed = runTransaction(
          Ctx, "trace-form", -1,
          [&](PipelineStats &Delta) {
            Traces = formTraces(F, LI, TOpts);
            for (const SuperblockTrace &T : Traces) {
              ++Delta.TracesFormed;
              Delta.TraceBlocks += static_cast<unsigned>(T.Blocks.size());
            }
            if (Opts.CollectCounters) {
              Delta.Counters.bump(obs::TraceFormed, Traces.size());
              Delta.Counters.bump(obs::TraceBlocksClaimed, Delta.TraceBlocks);
            }
            return Status::ok();
          },
          /*RegionScoped=*/false);
      if (!Formed)
        Traces.clear(); // the phase degrades to a no-op, nothing half-formed

      // Hottest trace first: it spends the clone budget before lukewarm
      // ones (stable, so the no-profile order is layout order).
      std::stable_sort(Traces.begin(), Traces.end(),
                       [](const SuperblockTrace &A, const SuperblockTrace &B) {
                         return A.HeadFreq > B.HeadFreq;
                       });

      unsigned BudgetLeft = Opts.TraceDupBudget;
      for (SuperblockTrace &T : Traces) {
        // Entrances are re-derived on the current CFG rather than trusted
        // from formation: an earlier trace's duplication may have added or
        // removed entrances of this one.
        F.recomputeCFG();
        if (findFirstSideEntrance(F, T.Blocks) < 0)
          continue;
        // The transform mutates the trace and the budget; operate on
        // copies and write back only on commit, so a rollback restores
        // both (the snapshot restores only the function).
        SuperblockTrace Tmp = T;
        unsigned Bud = BudgetLeft;
        TailDuplicationStats DS;
        bool Committed = runTransaction(
            Ctx, "tail-dup", -1,
            [&](PipelineStats &Delta) {
              DS = duplicateTails(F, Tmp, Bud);
              Delta.TailDupInstrs += DS.ClonedInstrs;
              Delta.TailDupBlocks += DS.ClonedBlocks + DS.TrampolineBlocks;
              Delta.TracesTruncated += DS.TracesTruncated;
              if (Opts.CollectCounters) {
                Delta.Counters.bump(obs::TraceTailDupInstrs, DS.ClonedInstrs);
                Delta.Counters.bump(obs::TraceTruncated, DS.TracesTruncated);
              }
              return Status::ok();
            },
            /*RegionScoped=*/true);
        // The transform fires the "tail-dup" fault itself (it drops one
        // cloned instruction -- the lost-duplicate bug class); the
        // transaction wrapper cannot see that, so count it here.
        if (DS.FaultInjected)
          ++Stats.FaultsInjected;
        if (Committed) {
          T = std::move(Tmp);
          BudgetLeft = Bud;
        } else {
          T.Blocks.clear(); // function rolled back; the trace goes with it
        }
      }

      // One wave of trace regions: traces are block-disjoint, so they are
      // mutually independent like a loop-forest level.  A chain that is
      // still multi-entry (unaffordable tail, rollback) is not a region;
      // its blocks were already scheduled by the regular passes.
      F.recomputeCFG();
      std::vector<SchedRegion> Regions;
      int TraceIdx = 0;
      for (const SuperblockTrace &T : Traces) {
        if (T.Blocks.size() < 2 || findFirstSideEntrance(F, T.Blocks) >= 0)
          continue;
        Regions.push_back(SchedRegion::buildTrace(F, T.Blocks, TraceIdx++));
      }
      if (!Regions.empty()) {
        Stats.SuperblocksScheduled += static_cast<unsigned>(Regions.size());
        if (Opts.CollectCounters)
          Stats.Counters.bump(obs::TraceSuperblocksScheduled, Regions.size());
        obs::TraceSpan SBSpan("superblocks", "stage");
        scheduleRegionWavePrebuilt(Ctx, std::move(Regions), PoolFor);
      }
    }

    // Future-work extension: join replication (Definition 6) over the
    // inner regions, feeding the final basic-block pass extra slack.
    // Duplication breaks instruction conservation by design, so only the
    // structural verifier and the oracle apply.
    if (Opts.AllowDuplication) {
      LI = LoopInfo::compute(F);
      DuplicationOptions DOpts;
      DOpts.MaxPerRegion = Opts.MaxDuplicationsPerRegion;
      for (unsigned L : LI.innermostFirstOrder()) {
        if (!isInnerLoop(LI, L))
          continue;
        SchedRegion R = SchedRegion::build(F, LI, static_cast<int>(L));
        if (R.numRealBlocks() > Opts.RegionBlockLimit ||
            R.numInstrs() > Opts.RegionInstrLimit)
          continue;
        runTransaction(
            Ctx, "duplicate", static_cast<int>(L),
            [&](PipelineStats &Delta) {
              Delta.DuplicatedInstrs +=
                  duplicateIntoPreds(F, R, DOpts).DuplicatedInstrs;
              if (Opts.CollectCounters)
                Delta.Counters.bump(obs::MotionDuplication,
                                    Delta.DuplicatedInstrs);
              return Status::ok();
            },
            /*RegionScoped=*/true);
      }
    }
  }

  // Step 5: the basic-block scheduler with its (per the paper, more
  // detailed) machine model runs over every block.
  if (Opts.RunLocalScheduler)
    runDeltaTransaction(
        Ctx, "local", -1,
        [&](PipelineStats &Delta, DeltaCheckpoint &Ck) {
          obs::SchedSink Sink;
          if (Opts.CollectCounters)
            Sink.Counters = &Delta.Counters;
          if (Opts.CollectDecisions)
            Sink.Decisions = &Delta.Decisions;
          Delta.Local = scheduleLocal(F, MD, Sink, Opts.Incremental,
                                      Ctx.Cache, Ck.armed() ? &Ck : nullptr);
          return Status::ok();
        },
        /*RegionScoped=*/false);

  // Peak pressure of the scheduled, still-symbolic code: the quantity the
  // finite register files must absorb (and what --stats reports even when
  // allocation is off).
  {
    RegPressure RP = computeRegPressure(F);
    for (unsigned C = 0; C != 3; ++C)
      Stats.PressurePeak[C] = std::max(Stats.PressurePeak[C], RP.MaxLive[C]);
  }

  // Step 6: register allocation (regalloc/LinearScan.h) maps the function
  // onto the machine's finite register files, then the basic-block
  // scheduler runs once more so the spill code's anti/output dependences
  // are woven into the issue slots -- the XL "twice-scheduled" flow the
  // paper describes.  A failed allocation rolls back to symbolic registers
  // and the pipeline's ordinary output stands.
  if (Opts.AllocateRegisters) {
    bool Committed = runTransaction(
        Ctx, "regalloc", -1,
        [&](PipelineStats &Delta) {
          RegAllocStats RA;
          Status S = allocateRegisters(F, MD, RA);
          if (!S.isOk())
            return S;
          Delta.RegAlloc += RA;
          if (Opts.CollectCounters) {
            Delta.Counters.bump(obs::RegAllocIntervals, RA.IntervalsBuilt);
            Delta.Counters.bump(obs::RegAllocSpilledIntervals,
                                RA.IntervalsSpilled);
            Delta.Counters.bump(obs::RegAllocSpillStores, RA.SpillStores);
            Delta.Counters.bump(obs::RegAllocSpillReloads, RA.SpillReloads);
          }
          return S;
        },
        /*RegionScoped=*/false);
    if (!Committed) {
      ++Stats.RegAllocFailures;
      if (Opts.CollectCounters)
        Stats.Counters.bump(obs::RegAllocFailures);
    }
    if (Committed && Opts.RescheduleAfterAlloc && Opts.RunLocalScheduler) {
      F.renumberOriginalOrder();
      runDeltaTransaction(
          Ctx, "postalloc", -1,
          [&](PipelineStats &Delta, DeltaCheckpoint &Ck) {
            obs::SchedSink Sink;
            if (Opts.CollectCounters)
              Sink.Counters = &Delta.Counters;
            if (Opts.CollectDecisions)
              Sink.Decisions = &Delta.Decisions;
            Delta.Local = scheduleLocal(F, MD, Sink, Opts.Incremental,
                                        Ctx.Cache,
                                        Ck.armed() ? &Ck : nullptr);
            return Status::ok();
          },
          /*RegionScoped=*/false);
    }
  }

  F.recomputeCFG();
  F.renumberOriginalOrder();
  for (obs::Decision &D : Stats.Decisions)
    if (D.Fn.empty())
      D.Fn = F.name();
  // Cache effectiveness of the whole run.  Bumped once at the end (the
  // cache is shared across stages, so per-stage deltas would double
  // count); request totals are deterministic -- one facts and one
  // reachability request per region build -- so these are exact for
  // every --region-jobs width like the rest of the registry.
  if (Opts.CollectCounters && Ctx.Cache) {
    Stats.Counters.bump(obs::ColdDisambigCacheHits, DCache.hits());
    Stats.Counters.bump(obs::ColdDisambigCacheMisses, DCache.misses());
  }
  return Stats;
}

PipelineStats gis::scheduleModule(Module &M, const MachineDescription &MD,
                                  const PipelineOptions &Opts) {
  PipelineStats Stats;
  PipelineOptions FnOpts = Opts;
  if (FnOpts.EnableOracle && !FnOpts.OracleModule)
    FnOpts.OracleModule = &M;
  for (auto &F : M.functions())
    Stats += schedulePipeline(*F, MD, FnOpts);
  return Stats;
}

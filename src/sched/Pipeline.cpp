//===- sched/Pipeline.cpp - The paper's scheduling pipeline ----------------===//

#include "sched/Pipeline.h"

#include "analysis/Region.h"
#include "interp/DifferentialOracle.h"
#include "ir/Checkpoint.h"
#include "ir/Verifier.h"
#include "sched/Duplication.h"
#include "sched/PreRenaming.h"
#include "sched/Rotate.h"
#include "sched/ScheduleVerifier.h"
#include "sched/Unroll.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <functional>

using namespace gis;

namespace {

/// Loop levels scheduled by the pipeline: a loop is "inner" when it has no
/// children; "outer" when all its children are inner.  The top-level
/// region (the function body) is treated as outer.
bool isInnerLoop(const LoopInfo &LI, unsigned L) {
  return LI.loop(L).Children.empty();
}

bool isOuterLoop(const LoopInfo &LI, unsigned L) {
  if (LI.loop(L).Children.empty())
    return false;
  for (int C : LI.loop(L).Children)
    if (!LI.loop(C).Children.empty())
      return false;
  return true;
}

/// Shared context of one pipeline run's transactions.
struct TxContext {
  Function &F;
  const MachineDescription &MD;
  const PipelineOptions &Opts;
  PipelineStats &Stats;
};

/// Runs one transform as a transaction: snapshot, transform, verify,
/// commit or roll back.
///
/// \param Stage    stable stage name ("prerename", "unroll", "region",
///                 "rotate", "duplicate", "local"); also the fault
///                 injection trigger point (GIS_FAULT_INJECT).
/// \param LoopIdx  region loop index for diagnostics (-1: whole function).
/// \param Body     the transform.  Records its statistics into the passed
///                 delta (merged into Ctx.Stats only on commit) and
///                 reports recoverable failures through its return Status.
/// \param SemanticRegion when non-null, the semantic schedule verifier
///                 re-checks every motion of the transaction against this
///                 region (built on the pre-transaction function).
/// \param RegionScoped controls which rollback counter a failure bumps.
///
/// Returns true when the transaction committed.  With transactions
/// disabled the body runs bare: no snapshot, no verification, and a failure
/// Status aborts (the historical fail-fast contract).
bool runTransaction(TxContext &Ctx, const char *Stage, int LoopIdx,
                    const std::function<Status(PipelineStats &)> &Body,
                    const SchedRegion *SemanticRegion, bool RegionScoped) {
  if (!Ctx.Opts.EnableTransactions) {
    PipelineStats Delta;
    Status S = Body(Delta);
    if (!S.isOk())
      fatalError(__FILE__, __LINE__, S.str().c_str());
    Ctx.Stats += Delta;
    return true;
  }

  ++Ctx.Stats.TransactionsRun;
  FunctionSnapshot Snap(Ctx.F);
  PipelineStats Delta;
  Status S = Body(Delta);
  if (!S.isOk())
    ++Ctx.Stats.EngineFailures;

  if (S.isOk() && FaultInjector::instance().shouldFire(Stage) &&
      corruptFunctionForTest(Ctx.F))
    ++Ctx.Stats.FaultsInjected;

  if (S.isOk() && Ctx.Opts.VerifyStructural) {
    std::vector<std::string> Problems = verifyFunction(Ctx.F);
    if (!Problems.empty()) {
      S = Status::error(ErrorCode::VerifierStructural, Problems.front());
      ++Ctx.Stats.VerifierFailures;
    }
  }
  if (S.isOk() && Ctx.Opts.VerifySemantic && SemanticRegion) {
    std::vector<std::string> Problems = verifyRegionSchedule(
        Snap.function(), Ctx.F, *SemanticRegion, Ctx.MD);
    if (!Problems.empty()) {
      S = Status::error(ErrorCode::VerifierSemantic, Problems.front());
      ++Ctx.Stats.VerifierFailures;
    }
  }
  if (S.isOk() && Ctx.Opts.EnableOracle && Ctx.Opts.OracleModule) {
    OracleOptions OOpts;
    OOpts.MaxSteps = Ctx.Opts.OracleMaxSteps;
    OracleReport Rep = runDifferentialOracle(*Ctx.Opts.OracleModule,
                                             Snap.function(), Ctx.F, OOpts);
    if (Rep.Verdict == OracleVerdict::Mismatch) {
      S = Status::error(ErrorCode::OracleMismatch, Rep.Detail);
      ++Ctx.Stats.OracleMismatches;
    }
  }

  if (S.isOk()) {
    Ctx.Stats += Delta;
    return true;
  }

  Snap.restore(Ctx.F);
  if (RegionScoped)
    ++Ctx.Stats.RegionsRolledBack;
  else
    ++Ctx.Stats.TransformsRolledBack;
  reportDiagnostic(Ctx.Stats.Diags, S, Ctx.F.name(), Stage, LoopIdx);
  return false;
}

/// Schedules region \p LoopIdx (or -1 for the top level) if it is within
/// the size limits.  Runs as one transaction with semantic verification.
void scheduleOneRegion(TxContext &Ctx, const LoopInfo &LI, int LoopIdx) {
  SchedRegion R = SchedRegion::build(Ctx.F, LI, LoopIdx);
  if (R.numRealBlocks() > Ctx.Opts.RegionBlockLimit ||
      R.numInstrs() > Ctx.Opts.RegionInstrLimit) {
    ++Ctx.Stats.RegionsSkippedBySize;
    return;
  }
  GlobalSchedOptions GOpts;
  GOpts.Level = Ctx.Opts.Level;
  GOpts.MaxSpecDepth = Ctx.Opts.MaxSpecDepth;
  GOpts.EnableRenaming = Ctx.Opts.EnableRenaming;
  GOpts.Order = Ctx.Opts.Order;
  GOpts.Profile = Ctx.Opts.Profile;
  GlobalScheduler GS(Ctx.MD, GOpts);
  runTransaction(
      Ctx, "region", LoopIdx,
      [&](PipelineStats &Delta) {
        Status S;
        Delta.Global +=
            GS.scheduleRegion(Ctx.F, R,
                              Ctx.Opts.EnableTransactions ? &S : nullptr);
        return S;
      },
      &R, /*RegionScoped=*/true);
}

} // namespace

PipelineStats gis::schedulePipeline(Function &F, const MachineDescription &MD,
                                    const PipelineOptions &Opts) {
  PipelineStats Stats;
  TxContext Ctx{F, MD, Opts, Stats};
  F.recomputeCFG();
  F.renumberOriginalOrder();

  LoopInfo LI = LoopInfo::compute(F);
  bool GlobalEnabled = Opts.Level != SchedLevel::None;
  if (!LI.isReducible()) {
    ++Stats.FunctionsSkippedIrreducible;
    GlobalEnabled = false;
  }

  // Step 0: the Section 4.2 preprocessing -- rename block-local values so
  // register reuse does not manufacture anti/output dependences.  In the
  // paper this renaming belongs to the XL compiler's general optimization
  // (the base compiler has it too), so it is not gated on the global
  // scheduling level: the basic-block scheduler profits as well.
  if (Opts.EnablePreRenaming)
    runTransaction(
        Ctx, "prerename", -1,
        [&](PipelineStats &Delta) {
          Delta.PreRenamedDefs = preRenameLocals(F).RenamedDefs;
          return Status::ok();
        },
        nullptr, /*RegionScoped=*/false);

  if (GlobalEnabled) {
    // Step 1: unroll small inner loops once.  Each unroll invalidates
    // LoopInfo, so process one loop at a time.  A rolled-back unroll marks
    // its header done, so the loop is simply left un-unrolled.
    if (Opts.EnableUnroll) {
      bool Progress = true;
      std::vector<BlockId> UnrolledHeaders;
      while (Progress) {
        Progress = false;
        LI = LoopInfo::compute(F);
        for (unsigned L = 0; L != LI.numLoops(); ++L) {
          if (!isInnerLoop(LI, L) ||
              LI.loop(L).numBlocks() > Opts.UnrollMaxBlocks)
            continue;
          BlockId Header = LI.loop(L).Header;
          if (std::find(UnrolledHeaders.begin(), UnrolledHeaders.end(),
                        Header) != UnrolledHeaders.end())
            continue; // already unrolled once
          UnrolledHeaders.push_back(Header);
          if (!canUnrollOnce(F, LI, L))
            continue; // shape unsupported; no transaction needed
          bool Changed = false;
          bool Committed = runTransaction(
              Ctx, "unroll", static_cast<int>(L),
              [&](PipelineStats &Delta) {
                Status S;
                Changed = unrollLoopOnce(
                    F, LI, L, Opts.EnableTransactions ? &S : nullptr);
                if (Changed)
                  ++Delta.LoopsUnrolled;
                return S;
              },
              nullptr, /*RegionScoped=*/false);
          if (Committed && Changed) {
            Progress = true;
            break; // LoopInfo is stale; restart
          }
        }
      }
    }

    // Step 2: first global scheduling pass over the inner regions.
    LI = LoopInfo::compute(F);
    for (unsigned L : LI.innermostFirstOrder())
      if (isInnerLoop(LI, L))
        scheduleOneRegion(Ctx, LI, static_cast<int>(L));

    // Step 3: rotate small inner loops.  As with unrolling, a rolled-back
    // rotation leaves the loop in its original shape and moves on.
    if (Opts.EnableRotate) {
      bool Progress = true;
      std::vector<BlockId> RotatedHeaders;
      while (Progress) {
        Progress = false;
        LI = LoopInfo::compute(F);
        for (unsigned L = 0; L != LI.numLoops(); ++L) {
          if (!isInnerLoop(LI, L) ||
              LI.loop(L).numBlocks() > Opts.RotateMaxBlocks)
            continue;
          BlockId Header = LI.loop(L).Header;
          if (std::find(RotatedHeaders.begin(), RotatedHeaders.end(),
                        Header) != RotatedHeaders.end())
            continue;
          if (!canRotateLoop(F, LI, L)) {
            RotatedHeaders.push_back(Header);
            continue;
          }
          bool Changed = false;
          bool Committed = runTransaction(
              Ctx, "rotate", static_cast<int>(L),
              [&](PipelineStats &Delta) {
                Status S;
                Changed = rotateLoop(F, LI, L,
                                     Opts.EnableTransactions ? &S : nullptr);
                if (Changed)
                  ++Delta.LoopsRotated;
                return S;
              },
              nullptr, /*RegionScoped=*/false);
          if (Committed && Changed) {
            // The rotated loop's header changes; remember the new loops by
            // marking every current header as done after one rotation.
            LI = LoopInfo::compute(F);
            for (unsigned L2 = 0; L2 != LI.numLoops(); ++L2)
              RotatedHeaders.push_back(LI.loop(L2).Header);
            Progress = true;
            break;
          }
          RotatedHeaders.push_back(Header);
        }
      }
    }

    // Step 4: second global scheduling pass -- rotated inner loops plus
    // outer regions (and the top-level region).
    LI = LoopInfo::compute(F);
    for (unsigned L : LI.innermostFirstOrder()) {
      bool Schedule = isInnerLoop(LI, L) ||
                      (Opts.OnlyTwoInnerLevels ? isOuterLoop(LI, L) : true);
      if (Schedule)
        scheduleOneRegion(Ctx, LI, static_cast<int>(L));
    }
    // The function body region: with the two-level restriction it is
    // scheduled only when no loop nesting exceeds it (the body is then
    // effectively the outer region).
    bool ScheduleTop = true;
    if (Opts.OnlyTwoInnerLevels) {
      for (unsigned L = 0; L != LI.numLoops(); ++L)
        if (LI.loop(L).Parent < 0 && !LI.loop(L).Children.empty())
          ScheduleTop = false; // top level sits above two loop levels
    }
    if (ScheduleTop)
      scheduleOneRegion(Ctx, LI, -1);

    // Future-work extension: join replication (Definition 6) over the
    // inner regions, feeding the final basic-block pass extra slack.
    // Duplication breaks instruction conservation by design, so only the
    // structural verifier and the oracle apply.
    if (Opts.AllowDuplication) {
      LI = LoopInfo::compute(F);
      DuplicationOptions DOpts;
      DOpts.MaxPerRegion = Opts.MaxDuplicationsPerRegion;
      for (unsigned L : LI.innermostFirstOrder()) {
        if (!isInnerLoop(LI, L))
          continue;
        SchedRegion R = SchedRegion::build(F, LI, static_cast<int>(L));
        if (R.numRealBlocks() > Opts.RegionBlockLimit ||
            R.numInstrs() > Opts.RegionInstrLimit)
          continue;
        runTransaction(
            Ctx, "duplicate", static_cast<int>(L),
            [&](PipelineStats &Delta) {
              Delta.DuplicatedInstrs +=
                  duplicateIntoPreds(F, R, DOpts).DuplicatedInstrs;
              return Status::ok();
            },
            nullptr, /*RegionScoped=*/true);
      }
    }
  }

  // Step 5: the basic-block scheduler with its (per the paper, more
  // detailed) machine model runs over every block.
  if (Opts.RunLocalScheduler)
    runTransaction(
        Ctx, "local", -1,
        [&](PipelineStats &Delta) {
          Delta.Local = scheduleLocal(F, MD);
          return Status::ok();
        },
        nullptr, /*RegionScoped=*/false);

  F.recomputeCFG();
  F.renumberOriginalOrder();
  return Stats;
}

PipelineStats gis::scheduleModule(Module &M, const MachineDescription &MD,
                                  const PipelineOptions &Opts) {
  PipelineStats Stats;
  PipelineOptions FnOpts = Opts;
  if (FnOpts.EnableOracle && !FnOpts.OracleModule)
    FnOpts.OracleModule = &M;
  for (auto &F : M.functions())
    Stats += schedulePipeline(*F, MD, FnOpts);
  return Stats;
}

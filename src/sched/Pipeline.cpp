//===- sched/Pipeline.cpp - The paper's scheduling pipeline ----------------===//

#include "sched/Pipeline.h"

#include "analysis/Region.h"
#include "sched/Duplication.h"
#include "sched/PreRenaming.h"
#include "sched/Rotate.h"
#include "sched/Unroll.h"

#include <algorithm>

using namespace gis;

namespace {

/// Loop levels scheduled by the pipeline: a loop is "inner" when it has no
/// children; "outer" when all its children are inner.  The top-level
/// region (the function body) is treated as outer.
bool isInnerLoop(const LoopInfo &LI, unsigned L) {
  return LI.loop(L).Children.empty();
}

bool isOuterLoop(const LoopInfo &LI, unsigned L) {
  if (LI.loop(L).Children.empty())
    return false;
  for (int C : LI.loop(L).Children)
    if (!LI.loop(C).Children.empty())
      return false;
  return true;
}

/// Schedules region \p LoopIdx (or -1 for the top level) if it is within
/// the size limits.
void scheduleOneRegion(Function &F, const MachineDescription &MD,
                       const PipelineOptions &Opts, const LoopInfo &LI,
                       int LoopIdx, PipelineStats &Stats) {
  SchedRegion R = SchedRegion::build(F, LI, LoopIdx);
  if (R.numRealBlocks() > Opts.RegionBlockLimit ||
      R.numInstrs() > Opts.RegionInstrLimit) {
    ++Stats.RegionsSkippedBySize;
    return;
  }
  GlobalSchedOptions GOpts;
  GOpts.Level = Opts.Level;
  GOpts.MaxSpecDepth = Opts.MaxSpecDepth;
  GOpts.EnableRenaming = Opts.EnableRenaming;
  GOpts.Order = Opts.Order;
  GOpts.Profile = Opts.Profile;
  GlobalScheduler GS(MD, GOpts);
  Stats.Global += GS.scheduleRegion(F, R);
}

} // namespace

PipelineStats gis::schedulePipeline(Function &F, const MachineDescription &MD,
                                    const PipelineOptions &Opts) {
  PipelineStats Stats;
  F.recomputeCFG();
  F.renumberOriginalOrder();

  LoopInfo LI = LoopInfo::compute(F);
  bool GlobalEnabled = Opts.Level != SchedLevel::None;
  if (!LI.isReducible()) {
    ++Stats.FunctionsSkippedIrreducible;
    GlobalEnabled = false;
  }

  // Step 0: the Section 4.2 preprocessing -- rename block-local values so
  // register reuse does not manufacture anti/output dependences.  In the
  // paper this renaming belongs to the XL compiler's general optimization
  // (the base compiler has it too), so it is not gated on the global
  // scheduling level: the basic-block scheduler profits as well.
  if (Opts.EnablePreRenaming)
    Stats.PreRenamedDefs = preRenameLocals(F).RenamedDefs;

  if (GlobalEnabled) {
    // Step 1: unroll small inner loops once.  Each unroll invalidates
    // LoopInfo, so process one loop at a time.
    if (Opts.EnableUnroll) {
      bool Progress = true;
      std::vector<BlockId> UnrolledHeaders;
      while (Progress) {
        Progress = false;
        LI = LoopInfo::compute(F);
        for (unsigned L = 0; L != LI.numLoops(); ++L) {
          if (!isInnerLoop(LI, L) ||
              LI.loop(L).numBlocks() > Opts.UnrollMaxBlocks)
            continue;
          if (std::find(UnrolledHeaders.begin(), UnrolledHeaders.end(),
                        LI.loop(L).Header) != UnrolledHeaders.end())
            continue; // already unrolled once
          if (unrollLoopOnce(F, LI, L)) {
            UnrolledHeaders.push_back(LI.loop(L).Header);
            ++Stats.LoopsUnrolled;
            Progress = true;
            break; // LoopInfo is stale; restart
          }
          UnrolledHeaders.push_back(LI.loop(L).Header); // shape unsupported
        }
      }
    }

    // Step 2: first global scheduling pass over the inner regions.
    LI = LoopInfo::compute(F);
    for (unsigned L : LI.innermostFirstOrder())
      if (isInnerLoop(LI, L))
        scheduleOneRegion(F, MD, Opts, LI, static_cast<int>(L), Stats);

    // Step 3: rotate small inner loops.
    if (Opts.EnableRotate) {
      bool Progress = true;
      std::vector<BlockId> RotatedHeaders;
      while (Progress) {
        Progress = false;
        LI = LoopInfo::compute(F);
        for (unsigned L = 0; L != LI.numLoops(); ++L) {
          if (!isInnerLoop(LI, L) ||
              LI.loop(L).numBlocks() > Opts.RotateMaxBlocks)
            continue;
          if (std::find(RotatedHeaders.begin(), RotatedHeaders.end(),
                        LI.loop(L).Header) != RotatedHeaders.end())
            continue;
          if (rotateLoop(F, LI, L)) {
            // The rotated loop's header changes; remember the new loops by
            // marking every current header as done after one rotation.
            ++Stats.LoopsRotated;
            LI = LoopInfo::compute(F);
            for (unsigned L2 = 0; L2 != LI.numLoops(); ++L2)
              RotatedHeaders.push_back(LI.loop(L2).Header);
            Progress = true;
            break;
          }
          RotatedHeaders.push_back(LI.loop(L).Header);
        }
      }
    }

    // Step 4: second global scheduling pass -- rotated inner loops plus
    // outer regions (and the top-level region).
    LI = LoopInfo::compute(F);
    for (unsigned L : LI.innermostFirstOrder()) {
      bool Schedule = isInnerLoop(LI, L) ||
                      (Opts.OnlyTwoInnerLevels ? isOuterLoop(LI, L) : true);
      if (Schedule)
        scheduleOneRegion(F, MD, Opts, LI, static_cast<int>(L), Stats);
    }
    // The function body region: with the two-level restriction it is
    // scheduled only when no loop nesting exceeds it (the body is then
    // effectively the outer region).
    bool ScheduleTop = true;
    if (Opts.OnlyTwoInnerLevels) {
      for (unsigned L = 0; L != LI.numLoops(); ++L)
        if (LI.loop(L).Parent < 0 && !LI.loop(L).Children.empty())
          ScheduleTop = false; // top level sits above two loop levels
    }
    if (ScheduleTop)
      scheduleOneRegion(F, MD, Opts, LI, -1, Stats);

    // Future-work extension: join replication (Definition 6) over the
    // inner regions, feeding the final basic-block pass extra slack.
    if (Opts.AllowDuplication) {
      LI = LoopInfo::compute(F);
      DuplicationOptions DOpts;
      DOpts.MaxPerRegion = Opts.MaxDuplicationsPerRegion;
      for (unsigned L : LI.innermostFirstOrder()) {
        if (!isInnerLoop(LI, L))
          continue;
        SchedRegion R = SchedRegion::build(F, LI, static_cast<int>(L));
        if (R.numRealBlocks() > Opts.RegionBlockLimit ||
            R.numInstrs() > Opts.RegionInstrLimit)
          continue;
        Stats.DuplicatedInstrs +=
            duplicateIntoPreds(F, R, DOpts).DuplicatedInstrs;
      }
    }
  }

  // Step 5: the basic-block scheduler with its (per the paper, more
  // detailed) machine model runs over every block.
  if (Opts.RunLocalScheduler)
    Stats.Local = scheduleLocal(F, MD);

  F.recomputeCFG();
  F.renumberOriginalOrder();
  return Stats;
}

PipelineStats gis::scheduleModule(Module &M, const MachineDescription &MD,
                                  const PipelineOptions &Opts) {
  PipelineStats Stats;
  for (auto &F : M.functions())
    Stats += schedulePipeline(*F, MD, Opts);
  return Stats;
}

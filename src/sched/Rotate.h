//===- sched/Rotate.h - Loop rotation ---------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop rotation, the second preparation step of the paper's Section 6
/// pipeline: "such regions that represent loops with up to 4 basic blocks
/// are rotated, by copying their first basic block after the end of the
/// loop.  By applying the global scheduling the second time to the rotated
/// inner loops, we achieve the partial effect of software pipelining" —
/// instructions of the next iteration's first block (the bottom copy) can
/// be hoisted into the previous iteration's body.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_ROTATE_H
#define GIS_SCHED_ROTATE_H

#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "support/Status.h"

namespace gis {

/// True if loop \p LoopIdx can be rotated by rotateLoop: contiguous in
/// layout with the header first, every back edge is an explicit branch,
/// and the header has at most one in-loop successor (otherwise the rotated
/// loop would become multi-entry).
bool canRotateLoop(const Function &F, const LoopInfo &LI, unsigned LoopIdx);

/// Rotates the loop: the header is copied after the loop's last block,
/// back edges are redirected to the copy, and the copy branches back into
/// the loop body (the original header is peeled and runs only on entry).
/// Returns false (no change) for unsupported shapes.
///
/// With \p Err non-null, a mid-flight invariant failure is reported
/// through it and the function may be left partially transformed -- the
/// caller owns a checkpoint and must roll back.  With \p Err null such
/// failures abort.
bool rotateLoop(Function &F, const LoopInfo &LI, unsigned LoopIdx,
                Status *Err = nullptr);

} // namespace gis

#endif // GIS_SCHED_ROTATE_H

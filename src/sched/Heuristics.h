//===- sched/Heuristics.h - D and CP scheduling heuristics ------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two integer-valued priority functions of paper Section 5.2, both
/// computed locally (over intra-block data dependence edges):
///
///  - D(I), the *delay heuristic*: how many delay slots may occur on a path
///    from I to the end of its block;
///      D(I) = max over intra-block DDG successors J of (D(J) + d(I,J)),
///    0 when I has no successors.
///
///  - CP(I), the *critical path heuristic*: time to finish everything that
///    depends on I within the block, assuming unbounded units;
///      CP(I) = max over successors J of (CP(J) + d(I,J)) + E(I),
///    E(I) when I has no successors.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_HEURISTICS_H
#define GIS_SCHED_HEURISTICS_H

#include "analysis/DataDeps.h"
#include "ir/Function.h"
#include "machine/MachineDescription.h"

#include <vector>

namespace gis {

/// Per-DDG-node D and CP values for one region.
struct Heuristics {
  std::vector<unsigned> D;  ///< delay heuristic per DDG node
  std::vector<unsigned> CP; ///< critical-path heuristic per DDG node
};

/// Computes D and CP over the intra-block edges of \p DD.  "Block" is the
/// current placement given by \p CurRegionNode (DDG node -> region node),
/// so the values reflect earlier code motions; pass the nodes' original
/// placement for the paper's one-shot computation.
Heuristics computeHeuristics(const Function &F, const DataDeps &DD,
                             const MachineDescription &MD,
                             const std::vector<unsigned> &CurRegionNode);

/// Recomputes D and CP in place for the nodes of one block only.
/// \p MembersAscending must list exactly the DDG nodes currently placed in
/// one region node, in ascending index order (DDG indices are topological,
/// so a reverse sweep sees every intra-block successor first).  Because
/// both functions only read same-block successors, a block's values are
/// self-contained: refreshing every block whose membership changed since
/// the last computation yields values bit-identical to a full
/// computeHeuristics() -- the incremental fast path's per-block update
/// (DESIGN.md section 14).
void recomputeHeuristicsForBlock(const Function &F, const DataDeps &DD,
                                 const MachineDescription &MD,
                                 const std::vector<unsigned> &CurRegionNode,
                                 const std::vector<unsigned> &MembersAscending,
                                 Heuristics &H);

} // namespace gis

#endif // GIS_SCHED_HEURISTICS_H

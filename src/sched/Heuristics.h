//===- sched/Heuristics.h - D and CP scheduling heuristics ------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two integer-valued priority functions of paper Section 5.2, both
/// computed locally (over intra-block data dependence edges):
///
///  - D(I), the *delay heuristic*: how many delay slots may occur on a path
///    from I to the end of its block;
///      D(I) = max over intra-block DDG successors J of (D(J) + d(I,J)),
///    0 when I has no successors.
///
///  - CP(I), the *critical path heuristic*: time to finish everything that
///    depends on I within the block, assuming unbounded units;
///      CP(I) = max over successors J of (CP(J) + d(I,J)) + E(I),
///    E(I) when I has no successors.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_HEURISTICS_H
#define GIS_SCHED_HEURISTICS_H

#include "analysis/DataDeps.h"
#include "ir/Function.h"
#include "machine/MachineDescription.h"

#include <vector>

namespace gis {

/// Per-DDG-node D and CP values for one region.
struct Heuristics {
  std::vector<unsigned> D;  ///< delay heuristic per DDG node
  std::vector<unsigned> CP; ///< critical-path heuristic per DDG node
};

/// Computes D and CP over the intra-block edges of \p DD.  "Block" is the
/// current placement given by \p CurRegionNode (DDG node -> region node),
/// so the values reflect earlier code motions; pass the nodes' original
/// placement for the paper's one-shot computation.
Heuristics computeHeuristics(const Function &F, const DataDeps &DD,
                             const MachineDescription &MD,
                             const std::vector<unsigned> &CurRegionNode);

} // namespace gis

#endif // GIS_SCHED_HEURISTICS_H

//===- sched/Pipeline.h - The paper's scheduling pipeline -------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end scheduling flow of paper Section 6:
///
///   1. certain inner loops are unrolled (<= 4 blocks, once);
///   2. global scheduling is applied the first time to the inner regions;
///   3. certain inner loops are rotated (<= 4 blocks);
///   4. global scheduling is applied the second time to the rotated inner
///      loops and the outer regions;
///   5. the basic-block scheduler reschedules every block (Section 5.1).
///
/// Also implements the paper's engineering limits: only two inner levels
/// of regions are scheduled, and only "small" reducible regions (at most
/// 64 basic blocks and 256 instructions).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_PIPELINE_H
#define GIS_SCHED_PIPELINE_H

#include "ir/Module.h"
#include "machine/MachineDescription.h"
#include "sched/GlobalScheduler.h"
#include "sched/LocalScheduler.h"
#include "sched/Profile.h"

namespace gis {

/// Options for the full scheduling pipeline.
struct PipelineOptions {
  SchedLevel Level = SchedLevel::Speculative;
  unsigned MaxSpecDepth = 1;
  bool EnableRenaming = true;
  /// The Section 4.2 preprocessing: SSA-like renaming of block-local
  /// values, minimizing anti/output dependences before scheduling.
  bool EnablePreRenaming = true;
  PriorityOrder Order = PriorityOrder::Paper;
  /// Optional execution profile (borrowed; may be null).  Block counts
  /// are keyed by the pre-transformation block ids, so profile-guided
  /// runs are most effective with unrolling/rotation disabled or after
  /// re-profiling.
  const ProfileData *Profile = nullptr;

  bool EnableUnroll = true;
  bool EnableRotate = true;
  unsigned UnrollMaxBlocks = 4; ///< paper: loops with up to 4 blocks
  unsigned RotateMaxBlocks = 4;

  unsigned RegionBlockLimit = 64;  ///< paper: "small" regions only
  unsigned RegionInstrLimit = 256;

  /// Schedule only the two innermost region levels (paper Section 6);
  /// false schedules every region level.
  bool OnlyTwoInnerLevels = true;

  /// Run the basic-block scheduler after global scheduling.
  bool RunLocalScheduler = true;

  /// Future-work extension (paper Section 7): scheduling with duplication
  /// (Definition 6), restricted to join replication.  Off by default, as
  /// in the paper's prototype ("no duplication of code is allowed").
  bool AllowDuplication = false;
  unsigned MaxDuplicationsPerRegion = 16;
};

/// Aggregate statistics of one pipeline run.
struct PipelineStats {
  GlobalSchedStats Global;
  LocalSchedStats Local;
  unsigned LoopsUnrolled = 0;
  unsigned LoopsRotated = 0;
  unsigned PreRenamedDefs = 0;
  unsigned DuplicatedInstrs = 0;
  unsigned RegionsSkippedBySize = 0;
  unsigned FunctionsSkippedIrreducible = 0;

  PipelineStats &operator+=(const PipelineStats &RHS) {
    Global += RHS.Global;
    Local.BlocksScheduled += RHS.Local.BlocksScheduled;
    Local.BlocksReordered += RHS.Local.BlocksReordered;
    LoopsUnrolled += RHS.LoopsUnrolled;
    LoopsRotated += RHS.LoopsRotated;
    PreRenamedDefs += RHS.PreRenamedDefs;
    DuplicatedInstrs += RHS.DuplicatedInstrs;
    RegionsSkippedBySize += RHS.RegionsSkippedBySize;
    FunctionsSkippedIrreducible += RHS.FunctionsSkippedIrreducible;
    return *this;
  }
};

/// Runs the full pipeline on one function.
PipelineStats schedulePipeline(Function &F, const MachineDescription &MD,
                               const PipelineOptions &Opts);

/// Runs the full pipeline on every function of \p M.
PipelineStats scheduleModule(Module &M, const MachineDescription &MD,
                             const PipelineOptions &Opts);

} // namespace gis

#endif // GIS_SCHED_PIPELINE_H

//===- sched/Pipeline.h - The paper's scheduling pipeline -------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end scheduling flow of paper Section 6:
///
///   1. certain inner loops are unrolled (<= 4 blocks, once);
///   2. global scheduling is applied the first time to the inner regions;
///   3. certain inner loops are rotated (<= 4 blocks);
///   4. global scheduling is applied the second time to the rotated inner
///      loops and the outer regions;
///   5. the basic-block scheduler reschedules every block (Section 5.1).
///
/// Also implements the paper's engineering limits: only two inner levels
/// of regions are scheduled, and only "small" reducible regions (at most
/// 64 basic blocks and 256 instructions).
///
/// Reentrancy contract: schedulePipeline keeps all of its state -- loop
/// info, regions, dependence graphs, checkpoints, statistics -- local to
/// the call, so concurrent runs over *distinct* Function objects are safe
/// (the engine's unit of parallelism; see engine/CompileEngine.h).  Two
/// concurrent runs over the same Function are not.  Exceptions: the
/// fault injector is shared, internally synchronized state
/// (support/FaultInjection.h), and an enabled differential oracle reads
/// the whole OracleModule, so no sibling function of that module may be
/// scheduled concurrently (the engine widens its work unit to the module
/// in that configuration).
///
/// Region-level parallelism: with PipelineOptions::RegionJobs > 1 the two
/// global scheduling passes dispatch independent regions of *one* function
/// to an internal thread pool (never the engine's: a pipeline run may
/// itself be an engine task, and blocking a pool on work queued to the
/// same pool would deadlock).  Each region task schedules a private copy
/// of the function forked from the wave start and the results are merged
/// in region-index order, so the output is bit-identical for every
/// RegionJobs value -- see the "Region-parallel scheduling" section of
/// DESIGN.md.  With the oracle enabled, region tasks run serially (the
/// oracle interprets whole functions); the wave-snapshot semantics are
/// kept, so the output is still RegionJobs-invariant.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_PIPELINE_H
#define GIS_SCHED_PIPELINE_H

#include "ir/Module.h"
#include "machine/MachineDescription.h"
#include "obs/Counters.h"
#include "obs/Decision.h"
#include "opt/PassManager.h"
#include "regalloc/LinearScan.h"
#include "sched/GlobalScheduler.h"
#include "sched/LocalScheduler.h"
#include "sched/Profile.h"
#include "support/Diagnostics.h"

namespace gis {

/// Options for the full scheduling pipeline.
struct PipelineOptions {
  SchedLevel Level = SchedLevel::Speculative;
  unsigned MaxSpecDepth = 1;
  bool EnableRenaming = true;
  /// The Section 4.2 preprocessing: SSA-like renaming of block-local
  /// values, minimizing anti/output dependences before scheduling.
  bool EnablePreRenaming = true;
  PriorityOrder Order = PriorityOrder::Paper;
  /// Optional execution profile (borrowed; may be null).  Block counts
  /// are keyed by the pre-transformation block ids, so profile-guided
  /// runs are most effective with unrolling/rotation disabled or after
  /// re-profiling.
  const ProfileData *Profile = nullptr;

  bool EnableUnroll = true;
  bool EnableRotate = true;
  unsigned UnrollMaxBlocks = 4; ///< paper: loops with up to 4 blocks
  unsigned RotateMaxBlocks = 4;

  unsigned RegionBlockLimit = 64;  ///< paper: "small" regions only
  unsigned RegionInstrLimit = 256;

  /// Schedule only the two innermost region levels (paper Section 6);
  /// false schedules every region level.
  bool OnlyTwoInnerLevels = true;

  /// Run the basic-block scheduler after global scheduling.
  bool RunLocalScheduler = true;

  //===--------------------------------------------------------------------===
  // Register allocation (src/regalloc/; gisc --regalloc)
  //===--------------------------------------------------------------------===

  /// Map the scheduled function onto the finite register files of the
  /// MachineDescription (regalloc/LinearScan.h), emitting spill code where
  /// pressure exceeds them.  Off by default, preserving the paper's
  /// Section 2 contract of scheduling over unbounded symbolic registers;
  /// on, the pipeline mirrors the XL flow the paper describes --
  /// schedule, allocate, reschedule.  Runs as a transaction: a failed
  /// allocation (see LinearScan.h) rolls back to symbolic registers.
  bool AllocateRegisters = false;
  /// Re-run the basic-block scheduler after allocation so spill code is
  /// woven into the issue slots (the "twice-scheduled" XL flow).  Only
  /// applies with AllocateRegisters and RunLocalScheduler.
  bool RescheduleAfterAlloc = true;

  /// Future-work extension (paper Section 7): scheduling with duplication
  /// (Definition 6), restricted to join replication.  Off by default, as
  /// in the paper's prototype ("no duplication of code is allowed").
  bool AllowDuplication = false;
  unsigned MaxDuplicationsPerRegion = 16;

  /// Superblock formation (DESIGN.md section 16; gisc --superblocks):
  /// form traces by mutual-most-likely edge selection over recorded edge
  /// profiles (ProfileData::recordEdges) -- static branch-not-taken
  /// heuristic without one -- tail-duplicate the side entrances away, and
  /// schedule each surviving chain as one single-entry region after the
  /// top-level global pass.  All three fields are part of the
  /// schedule-cache options fingerprint (engine/ScheduleCache.cpp).
  bool EnableSuperblocks = false;
  /// Maximum trace length in blocks (also capped by RegionBlockLimit).
  unsigned TraceMaxBlocks = 8;
  /// Per-function budget of instructions tail duplication may clone;
  /// unaffordable tails truncate their trace instead (code-growth cap,
  /// asserted by tests/superblock_test.cpp).
  unsigned TraceDupBudget = 64;

  /// Worker threads for scheduling independent regions of one function
  /// concurrently (gisc --region-jobs).  1 runs regions inline; 0 uses the
  /// hardware thread count.  The scheduled output is bit-identical for
  /// every value (asserted by tests/region_parallel_test.cpp), which is
  /// also why the schedule cache deliberately leaves this field out of its
  /// options fingerprint (engine/ScheduleCache.cpp).  Composes with
  /// EngineOptions::Jobs: a batch may run up to Jobs x RegionJobs workers.
  unsigned RegionJobs = 1;

  /// Incremental cold-path maintenance (DESIGN.md section 14): dirty-set
  /// liveness deltas, per-block D/CP refreshes and the engine's
  /// event-driven ready pool, instead of recomputing each from scratch.
  /// Emitted schedules are bit-identical either way (asserted by
  /// tests/coldpath_test.cpp and, pick by pick, by GIS_SLOWPATH_CHECK
  /// builds), which is why the schedule cache leaves this field out of
  /// its options fingerprint, like RegionJobs (engine/ScheduleCache.cpp).
  /// gisc --no-incremental turns it off.
  bool Incremental = true;

  //===--------------------------------------------------------------------===
  // Mid-end optimizer (src/opt/; gisc -O0/-O1/-O2)
  //===--------------------------------------------------------------------===

  /// Optimizer passes run over the IR before any scheduling (DESIGN.md
  /// section 13).  Defaults to level 0 -- no passes -- preserving the
  /// paper's near-raw-input contract; each pass runs as a transaction
  /// under the same guards configured below.  The resolved pass set is
  /// part of the schedule-cache options fingerprint.
  opt::OptOptions Opt;

  //===--------------------------------------------------------------------===
  // Transactional execution (failure model & recovery; see DESIGN.md)
  //===--------------------------------------------------------------------===

  /// Run every transform as a transaction: snapshot the function, run the
  /// transform, verify, and roll back to the snapshot on any failure.
  /// When false the pipeline keeps the historical fail-fast contract
  /// (internal invariant failures abort the process).
  bool EnableTransactions = true;
  /// Run the structural IR verifier on each transaction's output.
  bool VerifyStructural = true;
  /// Run the semantic schedule verifier (sched/ScheduleVerifier.h) on each
  /// region scheduling transaction.
  bool VerifySemantic = true;
  /// Run the interpreter-based differential oracle on each transaction.
  /// Off by default: it executes the function and is far too slow for
  /// release compiles; enable for fuzzing and debugging.
  bool EnableOracle = false;
  /// Module the function under transformation belongs to; required by the
  /// oracle (call targets, global arrays).  Borrowed; may be null, which
  /// disables the oracle.  scheduleModule fills it in automatically.
  const Module *OracleModule = nullptr;
  /// Interpreter step budget per oracle run.
  uint64_t OracleMaxSteps = 500'000;

  //===--------------------------------------------------------------------===
  // Observability (src/obs/; gisc --stats-json / --explain)
  //===--------------------------------------------------------------------===

  /// Collect the obs counter registry (PipelineStats::Counters): motion
  /// classes, comparator-rule wins, guard rejections, rollbacks.  Cheap
  /// (plain array increments on buffers already private to each region
  /// task), so on by default; bench_pipeline_ablation measures the cost of
  /// this flag and the issue budget is < 2%.
  bool CollectCounters = true;
  /// Record one obs::Decision per engine pick (PipelineStats::Decisions),
  /// the data behind `gisc --explain`.  Allocates per pick; off by
  /// default.
  bool CollectDecisions = false;
};

/// Wall-clock of one region-scheduling task, for --stats (-1: the
/// top-level region).  Waves number the region dependence forest's levels
/// across both global passes, in commit order.
struct RegionTime {
  int LoopIdx = -1;
  unsigned Wave = 0;
  double Seconds = 0;
};

/// Aggregate statistics of one pipeline run.
struct PipelineStats {
  GlobalSchedStats Global;
  LocalSchedStats Local;
  unsigned LoopsUnrolled = 0;
  unsigned LoopsRotated = 0;
  unsigned PreRenamedDefs = 0;
  unsigned DuplicatedInstrs = 0;
  unsigned RegionsSkippedBySize = 0;
  unsigned FunctionsSkippedIrreducible = 0;

  // Superblock formation (PipelineOptions::EnableSuperblocks).
  unsigned TracesFormed = 0;    ///< traces surviving formation (>= 2 blocks)
  unsigned TraceBlocks = 0;     ///< blocks claimed by those traces
  unsigned TailDupInstrs = 0;   ///< instructions cloned by tail duplication
  unsigned TailDupBlocks = 0;   ///< clone + trampoline blocks created
  unsigned TracesTruncated = 0; ///< traces cut short by the clone budget
  unsigned SuperblocksScheduled = 0; ///< traces scheduled as regions

  /// Peak register pressure per class (GPR, FPR, CR) of the scheduled
  /// code, before any allocation (analysis/RegPressure.h) -- across
  /// functions the *maximum* is kept, not the sum.
  std::array<unsigned, 3> PressurePeak = {0, 0, 0};
  /// Register allocation totals (PipelineOptions::AllocateRegisters);
  /// all zero when allocation is off or rolled back.
  RegAllocStats RegAlloc;
  /// Allocation transactions that failed and rolled back to symbolic
  /// registers (e.g. a condition-register interval would spill).
  unsigned RegAllocFailures = 0;

  /// Mid-end optimizer totals (PipelineOptions::Opt); all zero when no
  /// pass is enabled.
  opt::OptStats Opt;

  /// Waves of the region dependence forest dispatched by the two global
  /// scheduling passes (a wave's regions are mutually independent and may
  /// run concurrently; see PipelineOptions::RegionJobs).
  unsigned RegionWaves = 0;
  /// One record per region-scheduling task, in deterministic commit order.
  std::vector<RegionTime> RegionTimes;

  // Transactional execution (see PipelineOptions::EnableTransactions).
  unsigned TransactionsRun = 0;
  /// Region-scoped transactions (region scheduling, duplication) rolled
  /// back to their checkpoint.
  unsigned RegionsRolledBack = 0;
  /// Whole-function transforms (pre-renaming, unroll, rotate, local
  /// scheduling) rolled back to their checkpoint.
  unsigned TransformsRolledBack = 0;
  /// Transactions rejected by the structural or semantic verifier.
  unsigned VerifierFailures = 0;
  /// Transactions rejected by the differential oracle.
  unsigned OracleMismatches = 0;
  /// Transactions whose transform reported an engine failure (divergence
  /// or internal inconsistency) through the Status channel.
  unsigned EngineFailures = 0;
  /// Faults deliberately injected via GIS_FAULT_INJECT.
  unsigned FaultsInjected = 0;
  /// One record per rolled-back or degraded transform.
  std::vector<Diagnostic> Diags;

  /// Observability counter registry (PipelineOptions::CollectCounters).
  /// Collected into per-task buffers and merged along the same
  /// deterministic commit paths as the rest of this struct, so every value
  /// is exact -- identical for every --jobs/--region-jobs width, and
  /// rolled-back work never counts.
  obs::CounterSet Counters;
  /// Per-pick decision log (PipelineOptions::CollectDecisions), in
  /// deterministic commit order; rendered by `gisc --explain`.
  std::vector<obs::Decision> Decisions;

  PipelineStats &operator+=(const PipelineStats &RHS) {
    Global += RHS.Global;
    Local.BlocksScheduled += RHS.Local.BlocksScheduled;
    Local.BlocksReordered += RHS.Local.BlocksReordered;
    Local.BlocksFailed += RHS.Local.BlocksFailed;
    LoopsUnrolled += RHS.LoopsUnrolled;
    LoopsRotated += RHS.LoopsRotated;
    PreRenamedDefs += RHS.PreRenamedDefs;
    DuplicatedInstrs += RHS.DuplicatedInstrs;
    RegionsSkippedBySize += RHS.RegionsSkippedBySize;
    FunctionsSkippedIrreducible += RHS.FunctionsSkippedIrreducible;
    TracesFormed += RHS.TracesFormed;
    TraceBlocks += RHS.TraceBlocks;
    TailDupInstrs += RHS.TailDupInstrs;
    TailDupBlocks += RHS.TailDupBlocks;
    TracesTruncated += RHS.TracesTruncated;
    SuperblocksScheduled += RHS.SuperblocksScheduled;
    for (unsigned C = 0; C != 3; ++C)
      PressurePeak[C] = PressurePeak[C] > RHS.PressurePeak[C]
                            ? PressurePeak[C]
                            : RHS.PressurePeak[C];
    RegAlloc += RHS.RegAlloc;
    RegAllocFailures += RHS.RegAllocFailures;
    Opt += RHS.Opt;
    RegionWaves += RHS.RegionWaves;
    RegionTimes.insert(RegionTimes.end(), RHS.RegionTimes.begin(),
                       RHS.RegionTimes.end());
    TransactionsRun += RHS.TransactionsRun;
    RegionsRolledBack += RHS.RegionsRolledBack;
    TransformsRolledBack += RHS.TransformsRolledBack;
    VerifierFailures += RHS.VerifierFailures;
    OracleMismatches += RHS.OracleMismatches;
    EngineFailures += RHS.EngineFailures;
    FaultsInjected += RHS.FaultsInjected;
    Diags.insert(Diags.end(), RHS.Diags.begin(), RHS.Diags.end());
    Counters += RHS.Counters;
    Decisions.insert(Decisions.end(), RHS.Decisions.begin(),
                     RHS.Decisions.end());
    return *this;
  }
};

/// Runs the full pipeline on one function.
PipelineStats schedulePipeline(Function &F, const MachineDescription &MD,
                               const PipelineOptions &Opts);

/// Runs the full pipeline on every function of \p M.  When the oracle is
/// enabled and PipelineOptions::OracleModule is null, \p M itself is used
/// as the oracle module.
PipelineStats scheduleModule(Module &M, const MachineDescription &MD,
                             const PipelineOptions &Opts);

} // namespace gis

#endif // GIS_SCHED_PIPELINE_H

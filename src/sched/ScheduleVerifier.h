//===- sched/ScheduleVerifier.h - Semantic schedule verifier ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A semantic verifier for one global-scheduling region pass: given the
/// function before and after the pass (same CFG, reordered/moved
/// instructions), it mechanically re-checks the paper's legality rules for
/// every inter-block motion:
///
///  - conservation: region blocks hold exactly the same instructions, and
///    blocks outside the region are untouched;
///  - dependence order: every data-dependence edge of the region's DDG
///    (built on the *original* function) still runs forward in the new
///    placement;
///  - motion discipline: motion is upward only, never moves pinned
///    (call/branch) instructions, and never requires duplication
///    (Definition 6 motions are a separate pass);
///  - live-on-exit rule (Section 5.3): a speculatively moved instruction
///    must not kill a register that a bypassed path still reads -- checked
///    as "the (un-renamed) def is live on exit from the target block both
///    before and after the pass";
///  - parallel write-after-read order: a moved write must not be placed
///    ahead of a dependence-unordered moved read of the same register in
///    the target block (the paths are parallel, so the DDG has no edge to
///    order them; the read must keep seeing the value from above).
///
/// This is the CFG/PDG semantic-equivalence contract checked structurally;
/// the interpreter-based differential oracle (interp/DifferentialOracle.h)
/// complements it with end-to-end execution.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_SCHEDULEVERIFIER_H
#define GIS_SCHED_SCHEDULEVERIFIER_H

#include "analysis/Region.h"
#include "ir/Checkpoint.h"
#include "ir/Function.h"
#include "machine/MachineDescription.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gis {

class PDG;

/// Re-checks every motion of one region scheduling pass.  \p Before is the
/// function as it was when \p R was built; \p After is the transformed
/// function (same blocks and layout, possibly different block contents).
/// Returns human-readable problems; empty means the schedule is legal.
/// \p Prebuilt (optional) is a PDG already built on \p Before for \p R --
/// the scheduler exports the one it scheduled against, sparing the
/// verifier the dominant rebuild cost; verdicts are identical because the
/// PDG is a pure function of (Before, R, MD).
std::vector<std::string> verifyRegionSchedule(const Function &Before,
                                              const Function &After,
                                              const SchedRegion &R,
                                              const MachineDescription &MD,
                                              const PDG *Prebuilt = nullptr);

/// Convenience: true when verifyRegionSchedule reports no problems.
inline bool isScheduleLegal(const Function &Before, const Function &After,
                            const SchedRegion &R,
                            const MachineDescription &MD) {
  return verifyRegionSchedule(Before, After, R, MD).empty();
}

/// Pre-pass state the block-scoped verifier needs in place of a full
/// Before function: the function shape plus one content hash per
/// out-of-region block list.  Captured before the pass runs (in-place
/// scheduling leaves no untouched copy to compare against); the hashes
/// let the scoped verifier re-run the full verifier's
/// "block outside the region changed" sweep at O(instructions) hashing
/// cost instead of an O(function) deep copy.
class ScopedVerifyContext {
public:
  ScopedVerifyContext() = default;

  /// Captures \p F's shape and out-of-region block fingerprints for a
  /// coming pass over region \p R.
  static ScopedVerifyContext capture(const Function &F, const SchedRegion &R);

  unsigned NumBlocks = 0;
  unsigned NumInstrs = 0;
  std::vector<BlockId> Layout;
  /// Per block: is it one of the region's real blocks?
  std::vector<uint8_t> InRegion;
  /// Per block: content hash of its instruction list (0 for region
  /// blocks, which are covered by the RegionSnapshot instead).
  std::vector<uint64_t> OutListHash;
};

/// Per-verification work numbers for the coldpath counters.
struct ScopedVerifyStats {
  unsigned BlocksVerified = 0; ///< region blocks whose list actually changed
  unsigned BlocksTotal = 0;    ///< region blocks overall
};

/// Block-scoped variant of verifyRegionSchedule (DESIGN.md section 15):
/// verifies the same legality rules from a pre-pass capture
/// (\p Ctx + \p BeforeRegion, the region snapshot the transaction took
/// for rollback) instead of a full Before function, reusing the
/// scheduler's own PDG \p P, and skips the work only provably-untouched
/// blocks imply: dependence edges whose endpoints' home blocks kept their
/// exact pre-pass lists, and the liveness re-solves (the Section 5.3
/// rule is decided by same-read witnesses alone -- a shared witness *is*
/// a live-out proof on both sides, so the live-out bit tests are
/// redundant).  Verdicts and diagnostic strings are identical to the
/// full sweep; tests/coldpath_test.cpp fuzzes that equivalence and the
/// GIS_SLOWPATH_CHECK build asserts it on every region transaction.
std::vector<std::string> verifyRegionScheduleScoped(
    const ScopedVerifyContext &Ctx, const RegionSnapshot &BeforeRegion,
    const Function &After, const SchedRegion &R, const MachineDescription &MD,
    const PDG &P, ScopedVerifyStats *Stats = nullptr);

} // namespace gis

#endif // GIS_SCHED_SCHEDULEVERIFIER_H

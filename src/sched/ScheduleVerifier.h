//===- sched/ScheduleVerifier.h - Semantic schedule verifier ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A semantic verifier for one global-scheduling region pass: given the
/// function before and after the pass (same CFG, reordered/moved
/// instructions), it mechanically re-checks the paper's legality rules for
/// every inter-block motion:
///
///  - conservation: region blocks hold exactly the same instructions, and
///    blocks outside the region are untouched;
///  - dependence order: every data-dependence edge of the region's DDG
///    (built on the *original* function) still runs forward in the new
///    placement;
///  - motion discipline: motion is upward only, never moves pinned
///    (call/branch) instructions, and never requires duplication
///    (Definition 6 motions are a separate pass);
///  - live-on-exit rule (Section 5.3): a speculatively moved instruction
///    must not kill a register that a bypassed path still reads -- checked
///    as "the (un-renamed) def is live on exit from the target block both
///    before and after the pass";
///  - parallel write-after-read order: a moved write must not be placed
///    ahead of a dependence-unordered moved read of the same register in
///    the target block (the paths are parallel, so the DDG has no edge to
///    order them; the read must keep seeing the value from above).
///
/// This is the CFG/PDG semantic-equivalence contract checked structurally;
/// the interpreter-based differential oracle (interp/DifferentialOracle.h)
/// complements it with end-to-end execution.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_SCHEDULEVERIFIER_H
#define GIS_SCHED_SCHEDULEVERIFIER_H

#include "analysis/Region.h"
#include "ir/Function.h"
#include "machine/MachineDescription.h"

#include <string>
#include <vector>

namespace gis {

/// Re-checks every motion of one region scheduling pass.  \p Before is the
/// function as it was when \p R was built; \p After is the transformed
/// function (same blocks and layout, possibly different block contents).
/// Returns human-readable problems; empty means the schedule is legal.
std::vector<std::string> verifyRegionSchedule(const Function &Before,
                                              const Function &After,
                                              const SchedRegion &R,
                                              const MachineDescription &MD);

/// Convenience: true when verifyRegionSchedule reports no problems.
inline bool isScheduleLegal(const Function &Before, const Function &After,
                            const SchedRegion &R,
                            const MachineDescription &MD) {
  return verifyRegionSchedule(Before, After, R, MD).empty();
}

} // namespace gis

#endif // GIS_SCHED_SCHEDULEVERIFIER_H

//===- sched/Rotate.cpp - Loop rotation ------------------------------------===//

#include "sched/Rotate.h"

#include "sched/LoopShape.h"
#include "support/Assert.h"

using namespace gis;

namespace {

/// Shape analysis for the header's terminator.  Describes how the bottom
/// copy of the header must terminate.
struct RotationPlan {
  enum class Kind {
    Unsupported,
    AppendBranch,   ///< header falls through: copy gets "B <body>"
    CopyVerbatim,   ///< unconditional in-loop branch or self-loop test
    InvertedBranch, ///< "BT/BF <exit>" becomes inverted "<body>" target
  };
  Kind K = Kind::Unsupported;
  BlockId Target = InvalidId; ///< AppendBranch / InvertedBranch target
};

RotationPlan planRotation(const Function &F, const Loop &L,
                          const std::vector<BlockId> &Blocks) {
  RotationPlan Plan;
  BlockId Header = L.Header;
  BlockId Last = Blocks.back();
  InstrId Term = F.terminatorOf(Header);

  if (Term == InvalidId) {
    // Pure fall-through header: the copy branches explicitly to the
    // header's layout successor (in the loop, by contiguity).
    BlockId Next = F.layoutSuccessor(Header);
    if (Next == InvalidId || !L.Blocks.test(Next))
      return Plan;
    Plan.K = RotationPlan::Kind::AppendBranch;
    Plan.Target = Next;
    return Plan;
  }

  const Instruction &T = F.instr(Term);
  if (T.opcode() == Opcode::B) {
    if (!L.Blocks.test(T.target()))
      return Plan; // branches straight out: not a rotatable loop shape
    Plan.K = RotationPlan::Kind::CopyVerbatim;
    return Plan;
  }
  if (T.opcode() != Opcode::BT && T.opcode() != Opcode::BF)
    return Plan; // RET cannot head a loop body copy

  BlockId Taken = T.target();
  if (Taken == Header) {
    // Single-block loop testing itself: the copy keeps branching to the
    // original header, forming a two-block loop (an unroll-by-two).
    Plan.K = RotationPlan::Kind::CopyVerbatim;
    return Plan;
  }
  if (!L.Blocks.test(Taken)) {
    // "BT/BF exit" with fall-through into the body: the copy inverts the
    // branch so the body continuation is the explicit target and the exit
    // becomes the copy's fall-through -- valid only when the block after
    // the loop IS that exit.
    BlockId FallThrough = F.layoutSuccessor(Header);
    BlockId AfterLoop = F.layoutSuccessor(Last);
    if (FallThrough == InvalidId || !L.Blocks.test(FallThrough))
      return Plan;
    if (AfterLoop != Taken)
      return Plan;
    Plan.K = RotationPlan::Kind::InvertedBranch;
    Plan.Target = FallThrough;
    return Plan;
  }
  // Conditional branch with two in-loop successors: rotating would create
  // a multi-entry (irreducible) loop.
  return Plan;
}

} // namespace

bool gis::canRotateLoop(const Function &F, const LoopInfo &LI,
                        unsigned LoopIdx) {
  const Loop &L = LI.loop(LoopIdx);
  std::vector<BlockId> Blocks = contiguousLoopBlocks(F, L);
  if (Blocks.empty())
    return false;
  // All back edges must be explicit branches to the header.
  for (BlockId Latch : L.Latches) {
    InstrId Term = F.terminatorOf(Latch);
    if (Term == InvalidId)
      return false;
    const Instruction &T = F.instr(Term);
    if (!T.isBranch() || T.target() != L.Header)
      return false;
  }
  return planRotation(F, L, Blocks).K != RotationPlan::Kind::Unsupported;
}

bool gis::rotateLoop(Function &F, const LoopInfo &LI, unsigned LoopIdx,
                     Status *Err) {
  if (Err)
    *Err = Status::ok();
  if (!canRotateLoop(F, LI, LoopIdx))
    return false;
  // Mid-flight invariant failure: report and leave rollback to the caller,
  // or abort when no error channel was provided.
  auto Fail = [&](const char *Msg) {
    if (!Err)
      fatalError(__FILE__, __LINE__, Msg);
    *Err = Status::error(ErrorCode::LoopTransformFailed, Msg);
    return false;
  };
  const Loop &L = LI.loop(LoopIdx);
  std::vector<BlockId> Blocks = contiguousLoopBlocks(F, L);
  RotationPlan Plan = planRotation(F, L, Blocks);
  BlockId Last = Blocks.back();

  // Create the header copy behind the loop.
  BlockId Copy = F.createBlockAfter(Last, F.block(L.Header).label() + ".rot");
  for (InstrId I : F.block(L.Header).instrs()) {
    InstrId Cloned = F.cloneInstr(I);
    F.block(Copy).instrs().push_back(Cloned);
  }

  // Fix the copy's terminator per the rotation plan.
  switch (Plan.K) {
  case RotationPlan::Kind::AppendBranch: {
    Instruction Br(Opcode::B);
    Br.setTarget(Plan.Target);
    F.appendInstr(Copy, std::move(Br));
    break;
  }
  case RotationPlan::Kind::CopyVerbatim:
    break;
  case RotationPlan::Kind::InvertedBranch: {
    InstrId Term = F.block(Copy).instrs().back();
    Instruction &T = F.instr(Term);
    T.setOpcode(T.opcode() == Opcode::BT ? Opcode::BF : Opcode::BT);
    T.setTarget(Plan.Target);
    break;
  }
  case RotationPlan::Kind::Unsupported:
    return Fail("rotation plan must be supported here");
  }

  // Redirect all back edges to the copy.  A conditional back edge on the
  // loop's last block needs inverting: the copy now sits on its
  // fall-through path, so the exit keeps its explicit target and the
  // loop-again path becomes the fall-through into the copy.
  for (BlockId Latch : L.Latches) {
    InstrId Term = F.terminatorOf(Latch);
    if (Term == InvalidId)
      return Fail("latch without terminator");
    Instruction &T = F.instr(Term);
    if (!T.isBranch() || T.target() != L.Header)
      return Fail("latch must branch to the header");
    if (Latch == Last &&
        (T.opcode() == Opcode::BT || T.opcode() == Opcode::BF)) {
      BlockId Exit = F.layoutSuccessor(Copy);
      if (Exit == InvalidId)
        return Fail("loop exit fell off the layout");
      T.setOpcode(T.opcode() == Opcode::BT ? Opcode::BF : Opcode::BT);
      T.setTarget(Exit);
    } else {
      T.setTarget(Copy);
    }
  }

  F.recomputeCFG();
  F.renumberOriginalOrder();
  return true;
}

//===- sched/GlobalScheduler.h - PDG-based global scheduling ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's global instruction scheduler (Section 5): regions are
/// scheduled one basic block at a time in topological order; for each block
/// A the candidate set C(A) is derived from the CSPDG (useful level:
/// C(A) = EQUIV(A); speculative level: plus the immediate CSPDG successors
/// of A and of EQUIV(A)); candidates are scheduled cycle by cycle by the
/// list-scheduling engine; chosen external instructions are physically
/// moved into A.  Speculative motion is guarded by dynamically maintained
/// live-on-exit sets (Section 5.3), with register renaming as a rescue.
///
/// Principles (Section 5.1): instructions never move in or out of a
/// region; all motion is upward; the original order of branches is
/// preserved; no new basic blocks are created.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_GLOBALSCHEDULER_H
#define GIS_SCHED_GLOBALSCHEDULER_H

#include "analysis/PDG.h"
#include "ir/Function.h"
#include "machine/MachineDescription.h"
#include "sched/ListScheduler.h"
#include "sched/Profile.h"

namespace gis {

class DisambigCache;
class RegionSlice;

/// Scheduling level (paper Section 5.1 "two levels of scheduling").
enum class SchedLevel : uint8_t {
  None,        ///< no global scheduling (baseline)
  Useful,      ///< useful instructions only: C(A) = EQUIV(A)
  Speculative, ///< useful + n-branch speculative (paper: n = 1)
};

/// Options controlling the global scheduler.
struct GlobalSchedOptions {
  SchedLevel Level = SchedLevel::Speculative;
  /// Branches gambled on for speculative candidates (the paper supports 1;
  /// larger values exercise the paper's future-work extension).
  unsigned MaxSpecDepth = 1;
  /// Attempt register renaming when a speculative motion is blocked only
  /// by the live-on-exit check (the paper's Figure 6 cr6 -> cr5 rename).
  bool EnableRenaming = true;
  /// Ordering of the priority rules (Section 5.2 ablation).
  PriorityOrder Order = PriorityOrder::Paper;
  /// Optional execution profile: speculative candidates from hotter
  /// blocks win ties (paper Section 1).  Borrowed pointer; may be null.
  const ProfileData *Profile = nullptr;
  /// Maintain liveness, heuristics and the engine's ready pool
  /// incrementally across code motions (DESIGN.md section 14).  Emitted
  /// schedules are bit-identical either way; false selects the
  /// recompute-from-scratch slow path -- the --no-incremental escape hatch
  /// and the oracle that GIS_SLOWPATH_CHECK builds compare against.
  bool Incremental = true;
  /// Shared memo for the dependence builder's reachability closures and
  /// disambiguation facts (DESIGN.md section 15).  Borrowed; may be null
  /// (every region then re-solves from scratch, the reference mode).
  DisambigCache *Cache = nullptr;
};

/// Statistics of one scheduling run.
struct GlobalSchedStats {
  unsigned RegionsScheduled = 0;
  unsigned BlocksScheduled = 0;
  unsigned UsefulMotions = 0;
  unsigned SpeculativeMotions = 0;
  unsigned Renames = 0;
  unsigned VetoedSpeculations = 0;

  GlobalSchedStats &operator+=(const GlobalSchedStats &RHS) {
    RegionsScheduled += RHS.RegionsScheduled;
    BlocksScheduled += RHS.BlocksScheduled;
    UsefulMotions += RHS.UsefulMotions;
    SpeculativeMotions += RHS.SpeculativeMotions;
    Renames += RHS.Renames;
    VetoedSpeculations += RHS.VetoedSpeculations;
    return *this;
  }
};

/// PDG-based global scheduler for one machine description.
class GlobalScheduler {
public:
  GlobalScheduler(MachineDescription MD, GlobalSchedOptions Opts)
      : MD(std::move(MD)), Opts(Opts) {}

  /// Schedules one region of \p F in place (reordering block contents and
  /// moving instructions between the region's blocks).  The CFG shape is
  /// unchanged.  Returns statistics of the pass.
  ///
  /// With \p Err non-null, recoverable failures (engine divergence,
  /// internal inconsistencies) are reported through it and the function is
  /// left mid-transform -- the caller owns a checkpoint and must roll back.
  /// With \p Err null such failures abort, preserving the historical
  /// fail-fast contract for direct callers without a transaction layer.
  ///
  /// With \p Slice non-null (a RegionSlice built on \p F in its current
  /// state for this same region), the Section 5.3 live-on-exit guard uses
  /// the slice's region-restricted liveness instead of whole-function
  /// liveness: recomputation after a motion or rename then touches only
  /// the region's blocks, and -- the point of the slice -- the scheduler
  /// reads nothing outside the region, so disjoint regions of one function
  /// can be scheduled concurrently (sched/Pipeline.cpp).
  ///
  /// \p Sink optionally collects observability counters and per-pick
  /// decision records (src/obs/).  The buffers belong to the caller; with
  /// region parallelism each task passes private buffers that the wave
  /// merges deterministically.
  ///
  /// With \p OutPDG non-null the PDG this pass scheduled against (built on
  /// \p F *before* any motion) is exported -- a cheap three-shared-ptr
  /// copy -- so the transactional layer can hand it to the schedule
  /// verifier instead of paying a second build.
  GlobalSchedStats scheduleRegion(Function &F, const SchedRegion &R,
                                  Status *Err = nullptr,
                                  const RegionSlice *Slice = nullptr,
                                  const obs::SchedSink &Sink = {},
                                  PDG *OutPDG = nullptr);

private:
  MachineDescription MD;
  GlobalSchedOptions Opts;
};

} // namespace gis

#endif // GIS_SCHED_GLOBALSCHEDULER_H

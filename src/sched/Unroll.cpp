//===- sched/Unroll.cpp - Loop unrolling -----------------------------------===//

#include "sched/Unroll.h"

#include "sched/LoopShape.h"
#include "support/Assert.h"

#include <algorithm>
#include <map>

using namespace gis;

bool gis::canUnrollOnce(const Function &F, const LoopInfo &LI,
                        unsigned LoopIdx) {
  const Loop &L = LI.loop(LoopIdx);
  std::vector<BlockId> Blocks = contiguousLoopBlocks(F, L);
  if (Blocks.empty())
    return false;

  // The last block must branch to the header (conditionally or not), so
  // the copy can be spliced in behind it without breaking fall-through.
  InstrId Term = F.terminatorOf(Blocks.back());
  if (Term == InvalidId)
    return false;
  const Instruction &T = F.instr(Term);
  if (!T.isBranch() || T.target() != L.Header)
    return false;

  // Every other latch must end in a branch to the header as well (no
  // fall-through back edges are possible since the header is first).
  for (BlockId Latch : L.Latches) {
    InstrId LT = F.terminatorOf(Latch);
    if (LT == InvalidId || !F.instr(LT).isBranch())
      return false;
  }
  return true;
}

bool gis::unrollLoopOnce(Function &F, const LoopInfo &LI, unsigned LoopIdx,
                         Status *Err) {
  if (Err)
    *Err = Status::ok();
  if (!canUnrollOnce(F, LI, LoopIdx))
    return false;
  // Mid-flight invariant failure: report and leave rollback to the caller,
  // or abort when no error channel was provided.
  auto Fail = [&](const char *Msg) {
    if (!Err)
      fatalError(__FILE__, __LINE__, Msg);
    *Err = Status::error(ErrorCode::LoopTransformFailed, Msg);
    return false;
  };
  const Loop &L = LI.loop(LoopIdx);
  std::vector<BlockId> Blocks = contiguousLoopBlocks(F, L);
  BlockId Last = Blocks.back();

  // Create the copies, in order, right behind the loop.
  std::map<BlockId, BlockId> CopyOf;
  BlockId InsertAfter = Last;
  for (BlockId B : Blocks) {
    BlockId Copy =
        F.createBlockAfter(InsertAfter, F.block(B).label() + ".u");
    CopyOf[B] = Copy;
    InsertAfter = Copy;
  }
  for (BlockId B : Blocks) {
    BlockId Copy = CopyOf[B];
    for (InstrId I : F.block(B).instrs()) {
      InstrId Cloned = F.cloneInstr(I);
      F.block(Copy).instrs().push_back(Cloned);
      // Remap in-loop branch targets: to the header -> original header
      // (the copy's latch closes the loop); to other loop blocks -> their
      // copies.
      Instruction &CI = F.instr(Cloned);
      if (CI.isBranch() && CI.target() != InvalidId) {
        BlockId Target = CI.target();
        if (Target != L.Header && L.Blocks.test(Target))
          CI.setTarget(CopyOf[Target]);
      }
    }
  }

  // Redirect the original back edges into the copied body.
  BlockId FirstCopy = CopyOf[Blocks.front()];
  for (BlockId Latch : L.Latches) {
    InstrId Term = F.terminatorOf(Latch);
    if (Term == InvalidId)
      return Fail("latch without terminator");
    Instruction &T = F.instr(Term);
    if (!T.isBranch() || T.target() != L.Header)
      return Fail("latch terminator must branch to the header");
    if (Latch == Last && (T.opcode() == Opcode::BT || T.opcode() == Opcode::BF)) {
      // The copies sit on this block's fall-through path now.  Invert the
      // branch so the exit keeps its explicit target and the loop-again
      // path becomes the fall-through into the first copy.
      BlockId FallThrough = F.layoutSuccessor(Latch);
      if (FallThrough != FirstCopy)
        return Fail("first copy must follow the last loop block");
      // The original fall-through (the exit) is now behind all copies.
      BlockId Exit = F.layoutSuccessor(CopyOf[Last]);
      if (Exit == InvalidId)
        return Fail("loop exit fell off the layout");
      T.setOpcode(T.opcode() == Opcode::BT ? Opcode::BF : Opcode::BT);
      T.setTarget(Exit);
    } else {
      T.setTarget(FirstCopy);
    }
  }

  F.recomputeCFG();
  F.renumberOriginalOrder();
  return true;
}

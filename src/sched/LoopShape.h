//===- sched/LoopShape.h - Shared loop-shape helpers ------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layout-shape queries shared by the unrolling and rotation transforms.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_LOOPSHAPE_H
#define GIS_SCHED_LOOPSHAPE_H

#include "analysis/LoopInfo.h"
#include "ir/Function.h"

#include <vector>

namespace gis {

/// The loop's blocks in layout order if they are contiguous with the
/// header first; empty otherwise.  Both unrolling and rotation splice
/// copies behind the loop and rely on this shape (the shape every
/// frontend-generated loop has).
std::vector<BlockId> contiguousLoopBlocks(const Function &F, const Loop &L);

} // namespace gis

#endif // GIS_SCHED_LOOPSHAPE_H

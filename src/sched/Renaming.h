//===- sched/Renaming.h - Register renaming for speculation -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register renaming in support of speculative motion.  When a speculative
/// candidate is vetoed only because it writes a register that is live on
/// exit from the target block (Section 5.3), the conflict can often be
/// dissolved by renaming the written register — the paper's Figure 6 shows
/// exactly this: I12's condition register cr6 is renamed to cr5 so it can
/// be hoisted past I5.  (Section 4.2 notes the XL compiler performs "certain
/// renaming of registers" akin to SSA.)
///
/// The rename is performed only when it is locally provable: every use of
/// the old register reached by this definition lies in the same block,
/// after the definition and before any redefinition, and the value does not
/// escape the block.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_RENAMING_H
#define GIS_SCHED_RENAMING_H

#include "analysis/Liveness.h"
#include "ir/Function.h"

#include <functional>

namespace gis {

/// Tries to rename register \p Old, defined by instruction \p I (currently
/// placed in block \p B of \p F), to a fresh register of the same class.
/// Rewrites the definition and all block-local uses it reaches.  Returns
/// true on success; returns false (and changes nothing) when the value may
/// escape the block (\p LV must be up to date for \p F).
bool renameLocalDef(Function &F, BlockId B, InstrId I, Reg Old,
                    const Liveness &LV);

/// Same, with the escape check abstracted behind a predicate: \p IsLiveOut
/// must answer "is \p Old live on exit from \p B" against the current state
/// of \p F.  Lets the global scheduler supply a region-restricted liveness
/// view (analysis/RegionSlice.h) instead of whole-function liveness.
bool renameLocalDef(Function &F, BlockId B, InstrId I, Reg Old,
                    const std::function<bool(BlockId, Reg)> &IsLiveOut);

} // namespace gis

#endif // GIS_SCHED_RENAMING_H

//===- sched/ListScheduler.cpp - Cycle-by-cycle list scheduler -------------===//

#include "sched/ListScheduler.h"

#include "support/Format.h"

#include <algorithm>
#include <unordered_map>

using namespace gis;

namespace {

/// Per-candidate scheduling state.
struct CandState {
  unsigned DDGNode;
  bool Own;
  bool Useful;
  bool Speculative;
  uint64_t Freq = 0;
  bool IsTerminator;
  unsigned PredsRemaining = 0; ///< unscheduled candidate predecessors
  uint64_t ReadyTime = 0;
  bool Scheduled = false;
  bool Dropped = false;
};

} // namespace

EngineResult ListScheduler::run(
    const std::vector<unsigned> &Own,
    const std::vector<EngineCandidate> &External,
    const std::function<PredDisposition(unsigned)> &Disposition,
    const std::function<bool(unsigned)> &SpecCheck,
    const std::function<void(unsigned, bool)> &OnSchedule) {
  EngineResult Result;
  auto Fail = [&](ErrorCode Code, std::string Msg) {
    Result.S = Status::error(Code, std::move(Msg));
  };

  // Candidate table and DDG-node -> candidate index map.
  std::vector<CandState> Cands;
  std::unordered_map<unsigned, unsigned> CandOf;
  auto AddCand = [&](unsigned Node, bool IsOwn, bool Useful, bool Spec,
                     uint64_t Freq) {
    CandState C;
    C.DDGNode = Node;
    C.Own = IsOwn;
    C.Useful = Useful;
    C.Speculative = Spec;
    C.Freq = Freq;
    const DataDeps::Node &N = DD.ddgNode(Node);
    if (N.isBarrier())
      return Fail(ErrorCode::SchedulerInconsistency,
                  "barrier node offered as a scheduling candidate");
    if (CandOf.count(Node))
      return Fail(ErrorCode::SchedulerInconsistency,
                  formatString("instruction %u offered as a candidate twice",
                               N.Instr));
    C.IsTerminator = F.instr(N.Instr).isTerminator();
    CandOf.emplace(Node, static_cast<unsigned>(Cands.size()));
    Cands.push_back(C);
  };
  for (unsigned Node : Own)
    AddCand(Node, /*IsOwn=*/true, /*Useful=*/true, /*Spec=*/false,
            /*Freq=*/0);
  for (const EngineCandidate &E : External)
    AddCand(E.DDGNode, /*IsOwn=*/false, E.Useful, E.Speculative, E.Freq);
  if (!Result.S.isOk())
    return Result;

  // Resolve predecessors: count candidate preds, detect blocked ones.
  for (CandState &C : Cands) {
    for (unsigned EIdx : DD.predEdges(C.DDGNode)) {
      unsigned P = DD.edges()[EIdx].From;
      auto It = CandOf.find(P);
      if (It != CandOf.end()) {
        ++C.PredsRemaining;
        continue;
      }
      if (Disposition(P) == PredDisposition::Blocked) {
        if (C.Own) {
          Fail(ErrorCode::SchedulerInconsistency,
               "own instruction depends on a blocked external");
          return Result;
        }
        C.Dropped = true;
      }
    }
  }

  // Propagate drops: a candidate depending on a dropped candidate can
  // never be scheduled either.  One pass in node order suffices (edges go
  // forward).
  for (CandState &C : Cands) {
    if (C.Dropped)
      continue;
    for (unsigned EIdx : DD.predEdges(C.DDGNode)) {
      auto It = CandOf.find(DD.edges()[EIdx].From);
      if (It != CandOf.end() && Cands[It->second].Dropped) {
        if (C.Own) {
          Fail(ErrorCode::SchedulerInconsistency,
               "own instruction depends on a dropped external");
          return Result;
        }
        C.Dropped = true;
        break;
      }
    }
  }

  // Priority comparator (Section 5.2 rules, in the configured order).
  auto CmpClass = [&](const CandState &A, const CandState &B) -> int {
    return A.Useful == B.Useful ? 0 : (A.Useful ? 1 : -1);
  };
  auto CmpD = [&](const CandState &A, const CandState &B) -> int {
    unsigned DA = H.D[A.DDGNode], DB = H.D[B.DDGNode];
    return DA == DB ? 0 : (DA > DB ? 1 : -1);
  };
  auto CmpCP = [&](const CandState &A, const CandState &B) -> int {
    unsigned CPA = H.CP[A.DDGNode], CPB = H.CP[B.DDGNode];
    return CPA == CPB ? 0 : (CPA > CPB ? 1 : -1);
  };
  // Profile tie-break among speculative candidates: a motion from a more
  // frequently executed block gambles on a likelier branch outcome.
  auto CmpFreq = [&](const CandState &A, const CandState &B) -> int {
    if (!A.Speculative || !B.Speculative || A.Freq == B.Freq)
      return 0;
    return A.Freq > B.Freq ? 1 : -1;
  };
  auto Better = [&](const CandState &A, const CandState &B) {
    int R = 0;
    switch (Order) {
    case PriorityOrder::Paper:
      if ((R = CmpClass(A, B)) || (R = CmpFreq(A, B)) || (R = CmpD(A, B)) ||
          (R = CmpCP(A, B)))
        return R > 0;
      break;
    case PriorityOrder::DelayFirst:
      if ((R = CmpD(A, B)) || (R = CmpClass(A, B)) || (R = CmpFreq(A, B)) ||
          (R = CmpCP(A, B)))
        return R > 0;
      break;
    case PriorityOrder::CriticalFirst:
      if ((R = CmpCP(A, B)) || (R = CmpClass(A, B)) || (R = CmpFreq(A, B)) ||
          (R = CmpD(A, B)))
        return R > 0;
      break;
    case PriorityOrder::SourceOrder:
      break;
    }
    return F.instr(DD.ddgNode(A.DDGNode).Instr).originalOrder() <
           F.instr(DD.ddgNode(B.DDGNode).Instr).originalOrder(); // rule 7
  };

  // Unit occupancy: busy-until per unit instance, per type.
  std::vector<std::vector<uint64_t>> UnitBusy(MD.numUnitTypes());
  for (unsigned T = 0; T != MD.numUnitTypes(); ++T)
    UnitBusy[T].assign(MD.unitType(T).Count, 0);

  unsigned OwnRemaining = static_cast<unsigned>(Own.size());
  uint64_t Cycle = 0;
  constexpr uint64_t CycleCap = 1'000'000;

  auto OnScheduled = [&](CandState &C, uint64_t At) {
    C.Scheduled = true;
    Result.Order.push_back(C.DDGNode);
    Result.Cycles.push_back(At);
    unsigned Exec = MD.execTime(F.instr(DD.ddgNode(C.DDGNode).Instr).opcode());
    if (C.Own)
      Result.Makespan = std::max(Result.Makespan, At + Exec);
    // Release successors.
    for (unsigned EIdx : DD.succEdges(C.DDGNode)) {
      const DepEdge &E = DD.edges()[EIdx];
      auto It = CandOf.find(E.To);
      if (It == CandOf.end())
        continue;
      CandState &S = Cands[It->second];
      if (S.PredsRemaining == 0) {
        Fail(ErrorCode::SchedulerInconsistency,
             "predecessor count underflow while releasing successors");
        return;
      }
      --S.PredsRemaining;
      S.ReadyTime = std::max(S.ReadyTime, At + Exec + E.Delay);
    }
  };

  while (OwnRemaining > 0) {
    if (Cycle >= CycleCap) {
      Fail(ErrorCode::SchedulerDivergence,
           formatString("no forward progress after %llu cycles (%u own "
                        "instructions unplaced)",
                        static_cast<unsigned long long>(CycleCap),
                        OwnRemaining));
      return Result;
    }

    // Ready list for this cycle, best-first.
    std::vector<unsigned> Ready;
    for (unsigned K = 0; K != Cands.size(); ++K) {
      CandState &C = Cands[K];
      if (C.Scheduled || C.Dropped || C.PredsRemaining > 0 ||
          C.ReadyTime > Cycle)
        continue;
      // The target block's terminator stays positionally last: gate it
      // until it is the only own instruction left.
      if (C.Own && C.IsTerminator && OwnRemaining > 1)
        continue;
      Ready.push_back(K);
    }
    std::sort(Ready.begin(), Ready.end(), [&](unsigned A, unsigned B) {
      return Better(Cands[A], Cands[B]);
    });

    for (unsigned K : Ready) {
      CandState &C = Cands[K];
      if (C.Scheduled || C.Dropped)
        continue;
      Opcode Op = F.instr(DD.ddgNode(C.DDGNode).Instr).opcode();
      unsigned Type = MD.unitTypeForOp(Op);
      // A free unit instance of the right type this cycle?
      int Unit = -1;
      for (unsigned UI = 0; UI != UnitBusy[Type].size(); ++UI)
        if (UnitBusy[Type][UI] <= Cycle) {
          Unit = static_cast<int>(UI);
          break;
        }
      if (Unit < 0)
        continue;

      if (C.Speculative && SpecCheck && !SpecCheck(C.DDGNode)) {
        C.Dropped = true;
        continue;
      }

      UnitBusy[Type][static_cast<unsigned>(Unit)] =
          Cycle + MD.execTime(Op);
      OnScheduled(C, Cycle);
      if (!Result.S.isOk())
        return Result;
      if (OnSchedule)
        OnSchedule(C.DDGNode, !C.Own);
      if (C.Own && --OwnRemaining == 0)
        break; // target block complete; externals stop here too
    }

    ++Cycle;
  }

  return Result;
}

//===- sched/ListScheduler.cpp - Cycle-by-cycle list scheduler -------------===//

#include "sched/ListScheduler.h"

#include "obs/Trace.h"
#include "support/Assert.h"
#include "support/Format.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

using namespace gis;

namespace {

/// Per-candidate scheduling state.
struct CandState {
  unsigned DDGNode;
  bool Own;
  bool Useful;
  bool Speculative;
  uint64_t Freq = 0;
  bool IsTerminator;
  unsigned PredsRemaining = 0; ///< unscheduled candidate predecessors
  uint64_t ReadyTime = 0;
  bool Scheduled = false;
  bool Dropped = false;
};

/// Counter bucket for a comparator-rule win.
obs::CounterId counterOfRule(obs::RuleId Rule) {
  switch (Rule) {
  case obs::RuleId::UsefulOverSpec:
    return obs::RuleUsefulOverSpec;
  case obs::RuleId::SpecFreq:
    return obs::RuleSpecFreq;
  case obs::RuleId::DelayUseful:
    return obs::RuleDelayUseful;
  case obs::RuleId::DelaySpec:
    return obs::RuleDelaySpec;
  case obs::RuleId::CritPathUseful:
    return obs::RuleCritPathUseful;
  case obs::RuleId::CritPathSpec:
    return obs::RuleCritPathSpec;
  case obs::RuleId::SourceOrder:
  case obs::RuleId::None:
    break;
  }
  return obs::RuleSourceOrder;
}

} // namespace

EngineResult ListScheduler::run(
    const std::vector<unsigned> &Own,
    const std::vector<EngineCandidate> &External,
    const std::function<PredDisposition(unsigned)> &Disposition,
    const std::function<bool(unsigned)> &SpecCheck,
    const std::function<void(unsigned, bool)> &OnSchedule,
    const EngineObs *Obs) {
  EngineResult Result;
  auto Fail = [&](ErrorCode Code, std::string Msg) {
    Result.S = Status::error(Code, std::move(Msg));
  };

  // Candidate table and DDG-node -> candidate index map.
  std::vector<CandState> Cands;
  std::unordered_map<unsigned, unsigned> CandOf;
  auto AddCand = [&](unsigned Node, bool IsOwn, bool Useful, bool Spec,
                     uint64_t Freq) {
    CandState C;
    C.DDGNode = Node;
    C.Own = IsOwn;
    C.Useful = Useful;
    C.Speculative = Spec;
    C.Freq = Freq;
    const DataDeps::Node &N = DD.ddgNode(Node);
    if (N.isBarrier())
      return Fail(ErrorCode::SchedulerInconsistency,
                  "barrier node offered as a scheduling candidate");
    if (CandOf.count(Node))
      return Fail(ErrorCode::SchedulerInconsistency,
                  formatString("instruction %u offered as a candidate twice",
                               N.Instr));
    C.IsTerminator = F.instr(N.Instr).isTerminator();
    CandOf.emplace(Node, static_cast<unsigned>(Cands.size()));
    Cands.push_back(C);
  };
  for (unsigned Node : Own)
    AddCand(Node, /*IsOwn=*/true, /*Useful=*/true, /*Spec=*/false,
            /*Freq=*/0);
  for (const EngineCandidate &E : External)
    AddCand(E.DDGNode, /*IsOwn=*/false, E.Useful, E.Speculative, E.Freq);
  if (!Result.S.isOk())
    return Result;

  // Resolve predecessors: count candidate preds, detect blocked ones.
  for (CandState &C : Cands) {
    for (unsigned EIdx : DD.predEdges(C.DDGNode)) {
      unsigned P = DD.edges()[EIdx].From;
      auto It = CandOf.find(P);
      if (It != CandOf.end()) {
        ++C.PredsRemaining;
        continue;
      }
      if (Disposition(P) == PredDisposition::Blocked) {
        if (C.Own) {
          Fail(ErrorCode::SchedulerInconsistency,
               "own instruction depends on a blocked external");
          return Result;
        }
        C.Dropped = true;
      }
    }
  }

  // Propagate drops: a candidate depending on a dropped candidate can
  // never be scheduled either.  One pass in node order suffices (edges go
  // forward).
  for (CandState &C : Cands) {
    if (C.Dropped)
      continue;
    for (unsigned EIdx : DD.predEdges(C.DDGNode)) {
      auto It = CandOf.find(DD.edges()[EIdx].From);
      if (It != CandOf.end() && Cands[It->second].Dropped) {
        if (C.Own) {
          Fail(ErrorCode::SchedulerInconsistency,
               "own instruction depends on a dropped external");
          return Result;
        }
        C.Dropped = true;
        break;
      }
    }
  }

  // Priority comparator (Section 5.2 rules, in the configured order).
  auto CmpClass = [&](const CandState &A, const CandState &B) -> int {
    return A.Useful == B.Useful ? 0 : (A.Useful ? 1 : -1);
  };
  auto CmpD = [&](const CandState &A, const CandState &B) -> int {
    unsigned DA = H.D[A.DDGNode], DB = H.D[B.DDGNode];
    return DA == DB ? 0 : (DA > DB ? 1 : -1);
  };
  auto CmpCP = [&](const CandState &A, const CandState &B) -> int {
    unsigned CPA = H.CP[A.DDGNode], CPB = H.CP[B.DDGNode];
    return CPA == CPB ? 0 : (CPA > CPB ? 1 : -1);
  };
  // Profile tie-break among speculative candidates: a motion from a more
  // frequently executed block gambles on a likelier branch outcome.
  auto CmpFreq = [&](const CandState &A, const CandState &B) -> int {
    if (!A.Speculative || !B.Speculative || A.Freq == B.Freq)
      return 0;
    return A.Freq > B.Freq ? 1 : -1;
  };
  auto Better = [&](const CandState &A, const CandState &B) {
    int R = 0;
    switch (Order) {
    case PriorityOrder::Paper:
      if ((R = CmpClass(A, B)) || (R = CmpFreq(A, B)) || (R = CmpD(A, B)) ||
          (R = CmpCP(A, B)))
        return R > 0;
      break;
    case PriorityOrder::DelayFirst:
      if ((R = CmpD(A, B)) || (R = CmpClass(A, B)) || (R = CmpFreq(A, B)) ||
          (R = CmpCP(A, B)))
        return R > 0;
      break;
    case PriorityOrder::CriticalFirst:
      if ((R = CmpCP(A, B)) || (R = CmpClass(A, B)) || (R = CmpFreq(A, B)) ||
          (R = CmpD(A, B)))
        return R > 0;
      break;
    case PriorityOrder::SourceOrder:
      break;
    }
    return F.instr(DD.ddgNode(A.DDGNode).Instr).originalOrder() <
           F.instr(DD.ddgNode(B.DDGNode).Instr).originalOrder(); // rule 7
  };

  // Attribution mirror of Better(): the first comparator (in the
  // configured order) that separates the winner W from the runner-up L.
  // The D and CP wins are split by the winner's class so the paper's rule
  // pairs 3/4 and 5/6 get distinct counters.
  auto RuleOf = [&](const CandState &W, const CandState &L) -> obs::RuleId {
    auto DRule = [&] {
      return W.Useful ? obs::RuleId::DelayUseful : obs::RuleId::DelaySpec;
    };
    auto CPRule = [&] {
      return W.Useful ? obs::RuleId::CritPathUseful
                      : obs::RuleId::CritPathSpec;
    };
    switch (Order) {
    case PriorityOrder::Paper:
      if (CmpClass(W, L))
        return obs::RuleId::UsefulOverSpec;
      if (CmpFreq(W, L))
        return obs::RuleId::SpecFreq;
      if (CmpD(W, L))
        return DRule();
      if (CmpCP(W, L))
        return CPRule();
      break;
    case PriorityOrder::DelayFirst:
      if (CmpD(W, L))
        return DRule();
      if (CmpClass(W, L))
        return obs::RuleId::UsefulOverSpec;
      if (CmpFreq(W, L))
        return obs::RuleId::SpecFreq;
      if (CmpCP(W, L))
        return CPRule();
      break;
    case PriorityOrder::CriticalFirst:
      if (CmpCP(W, L))
        return CPRule();
      if (CmpClass(W, L))
        return obs::RuleId::UsefulOverSpec;
      if (CmpFreq(W, L))
        return obs::RuleId::SpecFreq;
      if (CmpD(W, L))
        return DRule();
      break;
    case PriorityOrder::SourceOrder:
      break;
    }
    return obs::RuleId::SourceOrder;
  };

  // Unit occupancy: busy-until per unit instance, per type.
  std::vector<std::vector<uint64_t>> UnitBusy(MD.numUnitTypes());
  for (unsigned T = 0; T != MD.numUnitTypes(); ++T)
    UnitBusy[T].assign(MD.unitType(T).Count, 0);

  unsigned OwnRemaining = static_cast<unsigned>(Own.size());
  uint64_t Cycle = 0;
  constexpr uint64_t CycleCap = 1'000'000;

  // Incremental ready pool (DESIGN.md section 14).  A candidate enters the
  // pool exactly once, when its candidate-predecessor count hits zero; at
  // that point its ReadyTime is final, because only scheduled predecessors
  // ever raise it.  Future holds pool entries whose ReadyTime is still in
  // the future, keyed by it; Live holds the currently eligible ones.  The
  // target block's own terminator is held aside until it is the last own
  // instruction, mirroring the full scan's positional gate.
  std::priority_queue<std::pair<uint64_t, unsigned>,
                      std::vector<std::pair<uint64_t, unsigned>>,
                      std::greater<std::pair<uint64_t, unsigned>>>
      Future;
  std::vector<unsigned> Live;
  std::vector<unsigned> HeldTerm;
  if (Incremental)
    for (unsigned K = 0; K != Cands.size(); ++K) {
      const CandState &C = Cands[K];
      if (C.Dropped || C.PredsRemaining > 0)
        continue;
      if (C.Own && C.IsTerminator && OwnRemaining > 1)
        HeldTerm.push_back(K);
      else
        Future.push({C.ReadyTime, K});
    }

  auto OnScheduled = [&](CandState &C, uint64_t At) {
    C.Scheduled = true;
    Result.Order.push_back(C.DDGNode);
    Result.Cycles.push_back(At);
    unsigned Exec = MD.execTime(F.instr(DD.ddgNode(C.DDGNode).Instr).opcode());
    if (C.Own)
      Result.Makespan = std::max(Result.Makespan, At + Exec);
    // Release successors.
    for (unsigned EIdx : DD.succEdges(C.DDGNode)) {
      const DepEdge &E = DD.edges()[EIdx];
      auto It = CandOf.find(E.To);
      if (It == CandOf.end())
        continue;
      CandState &S = Cands[It->second];
      if (S.PredsRemaining == 0) {
        Fail(ErrorCode::SchedulerInconsistency,
             "predecessor count underflow while releasing successors");
        return;
      }
      --S.PredsRemaining;
      S.ReadyTime = std::max(S.ReadyTime, At + Exec + E.Delay);
      if (Incremental && S.PredsRemaining == 0 && !S.Dropped) {
        if (S.Own && S.IsTerminator && OwnRemaining > 1)
          HeldTerm.push_back(It->second);
        else
          Future.push({S.ReadyTime, It->second});
      }
    }
  };

  while (OwnRemaining > 0) {
    if (Cycle >= CycleCap) {
      Fail(ErrorCode::SchedulerDivergence,
           formatString("no forward progress after %llu cycles (%u own "
                        "instructions unplaced)",
                        static_cast<unsigned long long>(CycleCap),
                        OwnRemaining));
      return Result;
    }

    // Ready list for this cycle, best-first.  The comparator is a strict
    // total order (rule 7 breaks every tie on the unique original order),
    // so equal ready *sets* sort to equal sequences -- which is what makes
    // the event-driven pool below bit-identical to the full scan.
    std::vector<unsigned> Ready;
    auto EligibleNow = [&](const CandState &C) {
      if (C.Scheduled || C.Dropped || C.PredsRemaining > 0 ||
          C.ReadyTime > Cycle)
        return false;
      // The target block's terminator stays positionally last: gate it
      // until it is the only own instruction left.
      if (C.Own && C.IsTerminator && OwnRemaining > 1)
        return false;
      return true;
    };
    if (Incremental) {
      while (!Future.empty() && Future.top().first <= Cycle) {
        Live.push_back(Future.top().second);
        Future.pop();
      }
      Live.erase(std::remove_if(Live.begin(), Live.end(),
                                [&](unsigned K) {
                                  return Cands[K].Scheduled ||
                                         Cands[K].Dropped;
                                }),
                 Live.end());
      if (Live.empty()) {
        // Fast-forward: with nothing live, the full scan would emit no
        // trace and pick nothing until the next ReadyTime threshold, so
        // jumping straight there is observably identical.  With no future
        // event either, jump to the cap to reproduce the slow path's
        // divergence failure verbatim.
        uint64_t Next = Future.empty() ? CycleCap : Future.top().first;
#ifdef GIS_SLOWPATH_CHECK
        for (const CandState &C : Cands)
          GIS_ASSERT(!EligibleNow(C),
                     "slowpath check: fast-forward past a live candidate");
        uint64_t OracleNext = ~0ull;
        for (const CandState &C : Cands) {
          if (C.Scheduled || C.Dropped || C.PredsRemaining > 0 ||
              (C.Own && C.IsTerminator && OwnRemaining > 1))
            continue;
          OracleNext = std::min(OracleNext, C.ReadyTime);
        }
        GIS_ASSERT(Future.empty() ? OracleNext == ~0ull
                                  : OracleNext == Future.top().first,
                   "slowpath check: fast-forward target mismatch");
#endif
        if (Obs && Obs->Counters)
          Obs->Counters->bump(obs::ColdFastForwards);
        Cycle = Next;
        continue;
      }
      Ready = Live;
    } else {
      for (unsigned K = 0; K != Cands.size(); ++K)
        if (EligibleNow(Cands[K]))
          Ready.push_back(K);
    }
    std::sort(Ready.begin(), Ready.end(), [&](unsigned A, unsigned B) {
      return Better(Cands[A], Cands[B]);
    });
#ifdef GIS_SLOWPATH_CHECK
    if (Incremental) {
      // Cross-check every cycle's ready set against the full scan the
      // slow path would have made.
      std::vector<unsigned> Oracle;
      for (unsigned K = 0; K != Cands.size(); ++K)
        if (EligibleNow(Cands[K]))
          Oracle.push_back(K);
      std::sort(Oracle.begin(), Oracle.end(), [&](unsigned A, unsigned B) {
        return Better(Cands[A], Cands[B]);
      });
      GIS_ASSERT(Oracle == Ready,
                 "slowpath check: incremental ready set diverged from the "
                 "full scan");
    }
#endif
    if (!Ready.empty())
      obs::Tracer::instance().instant("cycle", "cycle", "cycle",
                                      static_cast<int64_t>(Cycle), "ready",
                                      static_cast<int64_t>(Ready.size()));

    for (size_t RI = 0; RI != Ready.size(); ++RI) {
      CandState &C = Cands[Ready[RI]];
      if (C.Scheduled || C.Dropped)
        continue;
      Opcode Op = F.instr(DD.ddgNode(C.DDGNode).Instr).opcode();
      unsigned Type = MD.unitTypeForOp(Op);
      // A free unit instance of the right type this cycle?
      int Unit = -1;
      for (unsigned UI = 0; UI != UnitBusy[Type].size(); ++UI)
        if (UnitBusy[Type][UI] <= Cycle) {
          Unit = static_cast<int>(UI);
          break;
        }
      if (Unit < 0)
        continue;

      if (C.Speculative && SpecCheck && !SpecCheck(C.DDGNode)) {
        C.Dropped = true;
        continue;
      }

      unsigned Instr = DD.ddgNode(C.DDGNode).Instr;
      obs::Tracer::instance().instant("pick", "cycle", "cycle",
                                      static_cast<int64_t>(Cycle), "instr",
                                      static_cast<int64_t>(Instr));
      if (Obs && (Obs->Counters || Obs->Decisions)) {
        // The pick is about to be issued from position RI of the sorted
        // ready list; everything still live after it is what it outranked.
        // (Live entries *before* RI were stalled on a busy unit -- the
        // pick did not beat them by rule, so they neither make the pick
        // contested nor appear in its candidate list.)
        int Runner = -1;
        std::vector<unsigned> Beaten;
        for (size_t RJ = RI + 1; RJ != Ready.size(); ++RJ) {
          const CandState &L = Cands[Ready[RJ]];
          if (L.Scheduled || L.Dropped)
            continue;
          if (Runner < 0)
            Runner = static_cast<int>(Ready[RJ]);
          if (!Obs->Decisions)
            break;
          Beaten.push_back(DD.ddgNode(L.DDGNode).Instr);
        }
        obs::RuleId Rule = obs::RuleId::None;
        if (Runner >= 0)
          Rule = RuleOf(C, Cands[static_cast<unsigned>(Runner)]);
        if (obs::CounterSet *CS = Obs->Counters) {
          CS->bump(Runner >= 0 ? obs::PicksContested
                               : obs::PicksUncontested);
          if (Runner >= 0)
            CS->bump(counterOfRule(Rule));
          if (!C.Own)
            CS->bump(C.Useful ? obs::MotionUseful : obs::MotionSpeculative);
        }
        if (Obs->Decisions) {
          obs::Decision Rec;
          Rec.Stage = Obs->Stage;
          Rec.TargetBlock = Obs->TargetBlock;
          Rec.Cycle = Cycle;
          Rec.Instr = Instr;
          Rec.Op = std::string(opcodeName(F.instr(Instr).opcode()));
          Rec.Kind = C.Own ? obs::MotionKind::Own
                           : (C.Useful ? obs::MotionKind::Useful
                                       : obs::MotionKind::Speculative);
          Rec.FromBlock =
              C.Own ? Obs->TargetBlock
                    : (Obs->HomeBlock ? Obs->HomeBlock(C.DDGNode) : 0);
          Rec.Rule = Rule;
          Rec.Candidates.reserve(1 + Beaten.size());
          Rec.Candidates.push_back(Instr);
          Rec.Candidates.insert(Rec.Candidates.end(), Beaten.begin(),
                                Beaten.end());
          Obs->Decisions->push_back(std::move(Rec));
        }
      }

      UnitBusy[Type][static_cast<unsigned>(Unit)] =
          Cycle + MD.execTime(Op);
      OnScheduled(C, Cycle);
      if (!Result.S.isOk())
        return Result;
      if (OnSchedule)
        OnSchedule(C.DDGNode, !C.Own);
      if (C.Own) {
        if (--OwnRemaining == 0)
          break; // target block complete; externals stop here too
        if (Incremental && OwnRemaining == 1) {
          // The positional gate lifts next cycle, exactly when the full
          // scan would first admit the terminator.
          for (unsigned T : HeldTerm)
            Future.push({Cands[T].ReadyTime, T});
          HeldTerm.clear();
        }
      }
    }

    ++Cycle;
  }

  return Result;
}

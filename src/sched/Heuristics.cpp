//===- sched/Heuristics.cpp - D and CP scheduling heuristics ---------------===//

#include "sched/Heuristics.h"

#include <algorithm>

using namespace gis;

Heuristics gis::computeHeuristics(const Function &F, const DataDeps &DD,
                                  const MachineDescription &MD,
                                  const std::vector<unsigned> &CurRegionNode) {
  unsigned M = DD.numNodes();
  GIS_ASSERT(CurRegionNode.size() == M, "placement vector size mismatch");

  Heuristics H;
  H.D.assign(M, 0);
  H.CP.assign(M, 0);

  // DDG nodes are stored in topological order of the dependence graph
  // (edges go from lower to higher indices), so one reverse sweep computes
  // both functions.
  for (unsigned N = M; N-- > 0;) {
    const DataDeps::Node &Node = DD.ddgNode(N);
    unsigned ExecTime = 1;
    if (!Node.isBarrier())
      ExecTime = MD.execTime(F.instr(Node.Instr).opcode());

    unsigned BestD = 0;
    unsigned BestCP = 0;
    for (unsigned EIdx : DD.succEdges(N)) {
      const DepEdge &E = DD.edges()[EIdx];
      // Local computation: only successors currently in the same block.
      if (CurRegionNode[E.To] != CurRegionNode[N])
        continue;
      BestD = std::max(BestD, H.D[E.To] + E.Delay);
      BestCP = std::max(BestCP, H.CP[E.To] + E.Delay);
    }
    H.D[N] = BestD;
    H.CP[N] = BestCP + ExecTime;
  }
  return H;
}

void gis::recomputeHeuristicsForBlock(
    const Function &F, const DataDeps &DD, const MachineDescription &MD,
    const std::vector<unsigned> &CurRegionNode,
    const std::vector<unsigned> &MembersAscending, Heuristics &H) {
  // Same reverse topological sweep as computeHeuristics, restricted to one
  // block's members: intra-block successors have higher DDG indices, so
  // walking the ascending member list backwards sees them updated first.
  for (auto It = MembersAscending.rbegin(); It != MembersAscending.rend();
       ++It) {
    unsigned N = *It;
    const DataDeps::Node &Node = DD.ddgNode(N);
    unsigned ExecTime = 1;
    if (!Node.isBarrier())
      ExecTime = MD.execTime(F.instr(Node.Instr).opcode());

    unsigned BestD = 0;
    unsigned BestCP = 0;
    for (unsigned EIdx : DD.succEdges(N)) {
      const DepEdge &E = DD.edges()[EIdx];
      if (CurRegionNode[E.To] != CurRegionNode[N])
        continue;
      BestD = std::max(BestD, H.D[E.To] + E.Delay);
      BestCP = std::max(BestCP, H.CP[E.To] + E.Delay);
    }
    H.D[N] = BestD;
    H.CP[N] = BestCP + ExecTime;
  }
}

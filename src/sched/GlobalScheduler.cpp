//===- sched/GlobalScheduler.cpp - PDG-based global scheduling -------------===//

#include "sched/GlobalScheduler.h"

#include "analysis/Liveness.h"
#include "analysis/RegionSlice.h"
#include "obs/Trace.h"
#include "sched/Heuristics.h"
#include "sched/ListScheduler.h"
#include "sched/Renaming.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <unordered_set>

using namespace gis;

GlobalSchedStats GlobalScheduler::scheduleRegion(Function &F,
                                                 const SchedRegion &R,
                                                 Status *Err,
                                                 const RegionSlice *Slice,
                                                 const obs::SchedSink &Sink,
                                                 PDG *OutPDG) {
  GlobalSchedStats Stats;
  if (Err)
    *Err = Status::ok();
  if (Opts.Level == SchedLevel::None)
    return Stats;

  // Recoverable failure: report through Err when the caller can roll back,
  // abort otherwise (the historical fail-fast contract).
  Status Failure;
  auto Fail = [&](ErrorCode Code, std::string Msg) {
    if (Failure.isOk())
      Failure = Status::error(Code, std::move(Msg));
    if (!Err)
      fatalError(__FILE__, __LINE__, Failure.str().c_str());
  };

  // Built on F before any motion; the export hands the verifier the exact
  // graph this pass scheduled against (content-identical to rebuilding on
  // the pre-pass function, since the PDG is immutable once built).
  PDG P = PDG::build(F, R, MD, Opts.Cache);
  if (OutPDG)
    *OutPDG = P;
  const DataDeps &DD = P.dataDeps();
  Stats.RegionsScheduled = 1;

  auto BumpObs = [&](obs::CounterId Id, uint64_t N = 1) {
    if (Sink.Counters)
      Sink.Counters->bump(Id, N);
  };
  {
    DataDeps::Stats DS = DD.stats();
    BumpObs(obs::ColdArenaBytes, DS.ArenaBytes);
    BumpObs(obs::ColdDdgNodes, DS.Nodes);
  }

  // Topological position of each region node (for the Fixed/Blocked
  // disposition of non-candidate predecessors).
  std::vector<unsigned> TopoPos(R.numNodes(), ~0u);
  for (unsigned K = 0; K != R.topoOrder().size(); ++K)
    TopoPos[R.topoOrder()[K]] = K;

  // Current placement of every DDG node; updated as instructions move.
  std::vector<unsigned> CurNode(DD.numNodes());
  for (unsigned N = 0; N != DD.numNodes(); ++N)
    CurNode[N] = DD.ddgNode(N).RegionNode;

  // Live-on-exit sets, maintained dynamically (Section 5.3): recomputed
  // lazily after motions.  With a RegionSlice the view is region-restricted
  // (frozen out-of-region boundary) and recomputation touches only the
  // region's blocks; without one, classic whole-function liveness.
  Liveness LV;
  LivenessSlice SLV;
  const bool UseSlice = Slice != nullptr;
  if (UseSlice)
    SLV = Slice->liveness();
  else
    LV = Liveness::compute(F);
  // Dirty-set maintenance (DESIGN.md section 14): motions and renames
  // record which blocks changed; freshening re-solves only the affected
  // cone (or everything, after ForceFullLiveness -- the self-heal path of
  // the liveness-delta fault and the --no-incremental slow path).
  std::vector<BlockId> LivenessDirtyBlocks;
  bool ForceFullLiveness = false;
  auto MarkLivenessDirty = [&](BlockId B) {
    LivenessDirtyBlocks.push_back(B);
  };
  auto FreshenLiveness = [&]() {
    if (LivenessDirtyBlocks.empty() && !ForceFullLiveness)
      return;
    if (!Opts.Incremental || ForceFullLiveness) {
      if (UseSlice)
        SLV.recompute(F);
      else
        LV = Liveness::compute(F);
      BumpObs(obs::ColdLivenessFull);
      ForceFullLiveness = false;
    } else {
      Liveness::UpdateResult U =
          UseSlice ? SLV.recomputeBlocks(F, LivenessDirtyBlocks)
                   : LV.recomputeBlocks(F, LivenessDirtyBlocks);
      if (U.Full)
        BumpObs(obs::ColdLivenessFull);
      else
        BumpObs(obs::ColdLivenessDelta, U.BlocksResolved);
#ifdef GIS_SLOWPATH_CHECK
      if (UseSlice) {
        LivenessSlice Fresh = Slice->liveness();
        Fresh.recompute(F);
        GIS_ASSERT(SLV.sameSetsAs(Fresh),
                   "slowpath check: incremental slice liveness diverged "
                   "from a fresh recompute");
      } else {
        GIS_ASSERT(LV.sameSetsAs(Liveness::compute(F)),
                   "slowpath check: incremental liveness diverged from a "
                   "fresh recompute");
      }
#endif
    }
    LivenessDirtyBlocks.clear();
  };
  std::function<bool(BlockId, Reg)> IsLiveOut = [&](BlockId B, Reg Rg) {
    return UseSlice ? SLV.isLiveOut(B, Rg) : LV.isLiveOut(B, Rg);
  };

  unsigned SpecDepth =
      Opts.Level == SchedLevel::Speculative ? Opts.MaxSpecDepth : 0;

  // Per-region-node membership (DDG nodes currently placed there, in
  // ascending index order) and the set of nodes whose membership changed
  // since the last heuristics refresh.  D/CP only read same-block
  // successors, so refreshing exactly the dirty blocks reproduces a full
  // computeHeuristics() bit for bit (sched/Heuristics.h).
  std::vector<std::vector<unsigned>> MembersOf(R.numNodes());
  for (unsigned N = 0; N != DD.numNodes(); ++N)
    MembersOf[CurNode[N]].push_back(N);
  std::vector<uint8_t> HeurDirtyFlag(R.numNodes(), 0);
  std::vector<unsigned> HeurDirty;
  bool HeurForceFull = false;
  auto MarkHeurDirty = [&](unsigned RN) {
    if (!HeurDirtyFlag[RN]) {
      HeurDirtyFlag[RN] = 1;
      HeurDirty.push_back(RN);
    }
  };

  // Heuristics reflect the current placement; refreshed at each target
  // block (the previous block's motions changed block contents).
  Heuristics H = computeHeuristics(F, DD, MD, CurNode);

  // Process the region's real blocks in topological order.
  for (unsigned A : R.topoOrder()) {
    const RegionNode &ANode = R.node(A);
    if (!ANode.isBlock())
      continue;
    BlockId ABlock = ANode.Block;
    ++Stats.BlocksScheduled;
    obs::TraceSpan BlockSpan("block", "sched", "block",
                             static_cast<int64_t>(ABlock));

    if (!Opts.Incremental || HeurForceFull) {
      H = computeHeuristics(F, DD, MD, CurNode);
      for (unsigned RN : HeurDirty)
        HeurDirtyFlag[RN] = 0;
      HeurDirty.clear();
      HeurForceFull = false;
    } else {
      std::sort(HeurDirty.begin(), HeurDirty.end());
      for (unsigned RN : HeurDirty) {
        recomputeHeuristicsForBlock(F, DD, MD, CurNode, MembersOf[RN], H);
        HeurDirtyFlag[RN] = 0;
        BumpObs(obs::ColdHeurBlockRecomputes);
      }
      HeurDirty.clear();
#ifdef GIS_SLOWPATH_CHECK
      {
        Heuristics Ref = computeHeuristics(F, DD, MD, CurNode);
        GIS_ASSERT(Ref.D == H.D && Ref.CP == H.CP,
                   "slowpath check: incremental heuristics diverged from a "
                   "full recompute");
      }
#endif
    }
    if (FaultInjector::instance().shouldFire("heur-delta")) {
      // A buggy per-block refresh would leave wrong priorities behind.
      // Zeroed D/CP perturb pick order only, so the resulting schedule is
      // legal but different; the force-full flag is the next refresh's
      // self-heal.  Fired after the slowpath cross-check so a CHECK build
      // validates the real update, not the sabotage.
      std::fill(H.D.begin(), H.D.end(), 0u);
      std::fill(H.CP.begin(), H.CP.end(), 0u);
      HeurForceFull = true;
    }

    // Own instructions, in current program order.
    std::vector<unsigned> Own;
    for (InstrId I : F.block(ABlock).instrs()) {
      int N = DD.nodeOfInstr(I);
      if (N < 0) {
        Fail(ErrorCode::SchedulerInconsistency,
             "instruction in region block missing from DDG");
        break;
      }
      Own.push_back(static_cast<unsigned>(N));
    }
    if (!Failure.isOk())
      break;

    // U(A) = A union EQUIV(A) decides the useful/speculative class.
    std::vector<unsigned> Equiv = P.equivSet(A);
    std::unordered_set<unsigned> UofA(Equiv.begin(), Equiv.end());
    UofA.insert(A);

    // Candidate instructions from C(A) (Section 5.1), by *current*
    // placement.
    std::vector<EngineCandidate> External;
    for (unsigned Bn : P.candidateBlocks(A, SpecDepth)) {
      const RegionNode &BNode = R.node(Bn);
      if (!BNode.isBlock())
        continue; // summaries contribute no instructions
      bool Useful = UofA.count(Bn) != 0;
      for (InstrId I : F.block(BNode.Block).instrs()) {
        int N = DD.nodeOfInstr(I);
        if (N < 0 || CurNode[N] != Bn)
          continue;
        const Instruction &Ins = F.instr(I);
        if (Ins.neverCrossesBlock())
          continue;
        if (!Useful && Ins.neverSpeculates())
          continue;
        EngineCandidate C;
        C.DDGNode = static_cast<unsigned>(N);
        C.Useful = Useful;
        C.Speculative = !Useful;
        if (Opts.Profile && !Useful)
          C.Freq = Opts.Profile->frequency(F, BNode.Block);
        External.push_back(C);
      }
    }

    auto Disposition = [&](unsigned Pred) {
      return TopoPos[CurNode[Pred]] < TopoPos[A] ? PredDisposition::Fixed
                                                 : PredDisposition::Blocked;
    };

    // Section 5.3 guard: a speculative instruction must not write a
    // register that is live on exit from A.  Renaming rescues the common
    // local-value case (Figure 6's cr6 -> cr5).
    auto SpecCheck = [&](unsigned Node) {
      if (!Failure.isOk())
        return false; // already failing: no further motion
      InstrId I = DD.ddgNode(Node).Instr;
      FreshenLiveness();
      if (FaultInjector::instance().shouldFire("liveness-delta")) {
        // A buggy delta update would leave a stale live-on-exit set
        // behind.  Emptying A's set lets speculative defs that should be
        // vetoed slip through; the force-full flag makes the next freshen
        // self-heal, so the corruption window is exactly this guard
        // decision and the semantic verifier/rollback must catch whatever
        // escapes.  Fired after FreshenLiveness (and its slowpath
        // cross-check), which validates the real update, not the sabotage.
        if (UseSlice)
          SLV.corruptLiveOutForTest(ABlock);
        else
          LV.corruptLiveOutForTest(ABlock);
        ForceFullLiveness = true;
      }
      // Collect conflicting defs first; rename only if all are renameable.
      std::vector<Reg> Conflicts;
      for (Reg D : F.instr(I).defs())
        if (IsLiveOut(ABlock, D))
          Conflicts.push_back(D);
      if (Conflicts.empty())
        return true;
      if (!Opts.EnableRenaming) {
        ++Stats.VetoedSpeculations;
        BumpObs(obs::SpecVetoLiveOut);
        return false;
      }
      // An instruction reading the register it rewrites (LU-style base
      // update) cannot be detached from the old value by local renaming.
      BlockId Home = R.node(CurNode[Node]).Block;
      for (Reg D : Conflicts)
        if (F.instr(I).usesReg(D)) {
          ++Stats.VetoedSpeculations;
          BumpObs(obs::SpecVetoLiveOut);
          return false;
        }
      for (Reg D : Conflicts) {
        if (!renameLocalDef(F, Home, I, D, IsLiveOut)) {
          ++Stats.VetoedSpeculations;
          BumpObs(obs::SpecVetoLiveOut);
          return false; // earlier successful renames remain; still sound
        }
        ++Stats.Renames;
        BumpObs(obs::SpecRenames);
        // Renaming rewrites defs/uses inside Home only (the def was not
        // live out), so Home is the only block whose local sets changed.
        MarkLivenessDirty(Home);
      }
      return true;
    };

    // The paper moves a picked instruction immediately ("once an
    // instruction is picked up to be scheduled, it is moved to the proper
    // place in the code"), keeping live-on-exit information current for
    // subsequent speculative checks within the same target block.
    auto OnSchedule = [&](unsigned Node, bool IsExternal) {
      if (!IsExternal)
        return;
      InstrId I = DD.ddgNode(Node).Instr;
      unsigned From = CurNode[Node];
      BlockId Home = R.node(From).Block;
      std::vector<InstrId> &HomeInstrs = F.block(Home).instrs();
      auto It = std::find(HomeInstrs.begin(), HomeInstrs.end(), I);
      if (It == HomeInstrs.end()) {
        Fail(ErrorCode::SchedulerInconsistency,
             "moved instruction not found at its home block");
        return;
      }
      HomeInstrs.erase(It);
      // Placed at the end of A for now; the final intra-block order is
      // installed after the engine finishes.
      F.block(ABlock).instrs().push_back(I);
      CurNode[Node] = A;
      // Both endpoints changed contents (liveness) and membership (D/CP).
      MarkLivenessDirty(Home);
      MarkLivenessDirty(ABlock);
      MarkHeurDirty(From);
      MarkHeurDirty(A);
      std::vector<unsigned> &FromM = MembersOf[From];
      FromM.erase(std::lower_bound(FromM.begin(), FromM.end(), Node));
      std::vector<unsigned> &ToM = MembersOf[A];
      ToM.insert(std::lower_bound(ToM.begin(), ToM.end(), Node), Node);
      if (UofA.count(From))
        ++Stats.UsefulMotions;
      else
        ++Stats.SpeculativeMotions;
    };

    EngineObs Obs;
    Obs.Counters = Sink.Counters;
    Obs.Decisions = Sink.Decisions;
    Obs.Stage = "global";
    Obs.TargetBlock = ABlock;
    Obs.HomeBlock = [&](unsigned Node) { return R.node(CurNode[Node]).Block; };

    ListScheduler Engine(F, DD, MD, H, Opts.Order, Opts.Incremental);
    EngineResult Sched =
        Engine.run(Own, External, Disposition, SpecCheck, OnSchedule, &Obs);
    if (!Sched.S.isOk())
      Fail(Sched.S.code(), Sched.S.message());
    if (!Failure.isOk())
      break;

    // Install A's final intra-block order.
    std::vector<InstrId> NewContents;
    NewContents.reserve(Sched.Order.size());
    for (unsigned Node : Sched.Order)
      NewContents.push_back(DD.ddgNode(Node).Instr);
    if (NewContents.size() != F.block(ABlock).instrs().size()) {
      Fail(ErrorCode::SchedulerInconsistency,
           "scheduled order does not cover exactly the block contents");
      break;
    }
    F.block(ABlock).instrs() = std::move(NewContents);
  }

  if (Err)
    *Err = Failure;
  return Stats;
}

//===- sched/LocalScheduler.h - Basic-block scheduler -----------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basic-block scheduler applied to every block after global
/// scheduling (paper Section 5.1: "the basic block scheduler is applied to
/// every single basic block of a program after the global scheduling is
/// completed").  It reuses the list-scheduling engine with the block's own
/// instructions as the only candidates.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SCHED_LOCALSCHEDULER_H
#define GIS_SCHED_LOCALSCHEDULER_H

#include "ir/Function.h"
#include "machine/MachineDescription.h"
#include "obs/Decision.h"

namespace gis {

class DeltaCheckpoint;
class DisambigCache;

/// Statistics of a local scheduling pass.
struct LocalSchedStats {
  unsigned BlocksScheduled = 0;
  unsigned BlocksReordered = 0; ///< blocks whose instruction order changed
  /// Blocks the engine could not schedule (divergence or inconsistency);
  /// such blocks keep their original instruction order.  Local scheduling
  /// never moves instructions between blocks, so skipping is always safe.
  unsigned BlocksFailed = 0;
};

/// Reorders the instructions of every basic block of \p F for the machine
/// \p MD, respecting all data dependences.  The CFG never changes.
/// \p Sink optionally collects observability counters and decision records
/// (src/obs/); local picks carry stage tag "local".  \p Incremental
/// selects the engine's event-driven ready pool (bit-identical output;
/// see sched/ListScheduler.h).  \p Cache (optional) shares the dependence
/// builder's reachability/disambiguation inputs across this pass's
/// regions -- the pass bumps the cache epoch on entry and patches
/// positions after each intra-block reorder (DESIGN.md section 15).
/// \p Ckpt (optional) receives a first-touch record of every block list
/// this pass rewrites, for delta rollback.
LocalSchedStats scheduleLocal(Function &F, const MachineDescription &MD,
                              const obs::SchedSink &Sink = {},
                              bool Incremental = true,
                              DisambigCache *Cache = nullptr,
                              DeltaCheckpoint *Ckpt = nullptr);

} // namespace gis

#endif // GIS_SCHED_LOCALSCHEDULER_H

//===- engine/CompileEngine.h - Parallel batch compilation ------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch-compilation engine: drives the transactional schedulePipeline
/// over a batch of modules on a work-stealing thread pool, with a
/// content-addressed schedule cache in front of the scheduler.  The
/// paper's Section 6 flow is function-independent, so the engine's unit of
/// parallelism is one function; everything a pipeline run touches is
/// per-function state (see the reentrancy contract in sched/Pipeline.h).
///
/// Determinism: a batch compiled with N workers is bit-identical to the
/// same batch compiled with one worker, cache on or off.  Each function's
/// schedule depends only on its own content, and the report aggregates
/// per-function results in input order, never in completion order.
///
/// Exception to function-level parallelism: with the differential oracle
/// enabled, a pipeline run *reads* every function of the module it
/// verifies (calls, globals), so the engine widens the work unit to one
/// module to keep readers and writers apart.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ENGINE_COMPILEENGINE_H
#define GIS_ENGINE_COMPILEENGINE_H

#include "engine/ScheduleCache.h"
#include "ir/Module.h"
#include "machine/MachineDescription.h"
#include "persist/DiskCache.h"
#include "sched/Pipeline.h"

#include <memory>
#include <string>
#include <vector>

namespace gis {

/// Engine configuration, on top of the per-function PipelineOptions.
/// Intra-function parallelism is configured there, not here:
/// PipelineOptions::RegionJobs flows through the engine to every pipeline
/// run (gisc --region-jobs), and each run owns its private region pool, so
/// a batch may use up to Jobs x RegionJobs workers.
struct EngineOptions {
  /// Worker threads; 0 means ThreadPool::hardwareThreads().  With Jobs==1
  /// the engine runs inline on the calling thread (no pool).
  unsigned Jobs = 1;
  bool UseCache = true;
  /// Entry bound of the internally-owned cache (ignored for SharedCache).
  size_t CacheCapacity = 4096;
  /// Optional externally-owned cache, for reuse across batches/engines;
  /// the engine creates its own when null.
  ScheduleCache *SharedCache = nullptr;
  /// Directory of the persistent disk tier (persist/DiskCache.h); empty
  /// disables it.  The disk tier sits behind the memory tier: a disk hit
  /// is promoted into the memory cache, a compile is published to both.
  /// I/O failures degrade the engine to memory-only (never an abort); use
  /// persist::DiskScheduleCache::open() directly to fail fast instead
  /// (gisc does, at --cache-dir validation time).
  std::string CacheDir;
  /// Size bound of the disk tier in bytes (0: unbounded); enforced by
  /// oldest-entry eviction at publish time (gisc --cache-dir-max-mb).
  /// Ignored for SharedDisk, which carries its own bound.
  uint64_t CacheDirMaxBytes = 0;
  /// Optional externally-owned disk cache (the serve daemon shares one
  /// across requests); the engine opens its own from CacheDir when null.
  persist::DiskScheduleCache *SharedDisk = nullptr;
};

/// One batch entry: a borrowed module plus a display name for reports.
struct BatchItem {
  Module *M = nullptr;
  std::string Name;
};

/// Per-function outcome of one batch compile.
struct FunctionCompileResult {
  std::string Item;     ///< BatchItem::Name
  std::string Function;
  bool CacheHit = false;
  /// The hit was served by the disk tier (subset of CacheHit).
  bool DiskHit = false;
  double QueueWaitSeconds = 0;   ///< submit -> start of work
  double CompileSeconds = 0;     ///< schedule (or cache-serve) time
  PipelineStats Stats;
};

/// Aggregate outcome of one batch compile, per-function results in input
/// order.
struct EngineReport {
  unsigned Threads = 1;
  unsigned FunctionsCompiled = 0;
  uint64_t CacheHits = 0; ///< memory + disk tier hits
  uint64_t CacheMisses = 0;
  /// Hits served by the disk tier (subset of CacheHits), and the disk
  /// lookups that went on to a full compile.
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
  double WallSeconds = 0;
  double TotalQueueWaitSeconds = 0;
  double TotalCompileSeconds = 0;
  PipelineStats Aggregate;
  std::vector<FunctionCompileResult> PerFunction;

  /// Memory-cache view after the batch (lifetime counters when the cache
  /// is shared across batches/engines), including per-shard occupancy so
  /// disk-vs-memory hit attribution is debuggable (--stats-json).
  ScheduleCacheStats MemCache;
  std::vector<ShardOccupancy> MemShards;
  size_t MemCacheSize = 0;
  size_t MemCacheCapacity = 0;
  /// Disk-tier view after the batch; DiskEnabled is false when no
  /// EngineOptions::CacheDir/SharedDisk was configured.
  bool DiskEnabled = false;
  persist::DiskCacheStats Disk;

  double cacheHitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total ? static_cast<double>(CacheHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
  double functionsPerSecond() const {
    return WallSeconds > 0 ? FunctionsCompiled / WallSeconds : 0.0;
  }
  unsigned rollbacks() const {
    return Aggregate.RegionsRolledBack + Aggregate.TransformsRolledBack;
  }

  /// Renders a short human-readable summary (for gisc --stats).
  std::string summary() const;
};

class CompileEngine {
public:
  CompileEngine(const MachineDescription &MD, const PipelineOptions &Opts,
                const EngineOptions &EOpts = {});
  ~CompileEngine();

  /// Schedules every function of every batch item.  Modules are mutated in
  /// place; the report owns all statistics.
  EngineReport compileBatch(const std::vector<BatchItem> &Batch);

  /// Convenience: one anonymous module as a single-item batch.
  EngineReport compile(Module &M);

  /// The cache serving this engine (shared or internally owned).
  ScheduleCache &cache() { return *Cache; }

  /// The disk tier, or null when none is configured.
  persist::DiskScheduleCache *diskCache() { return Disk; }

  unsigned jobs() const { return EOpts.Jobs; }

private:
  MachineDescription MD;
  PipelineOptions Opts;
  EngineOptions EOpts;
  std::unique_ptr<ScheduleCache> OwnedCache;
  ScheduleCache *Cache = nullptr;
  std::unique_ptr<persist::DiskScheduleCache> OwnedDisk;
  persist::DiskScheduleCache *Disk = nullptr;
  uint64_t MachineFp = 0;
  uint64_t OptionsFp = 0;
};

} // namespace gis

#endif // GIS_ENGINE_COMPILEENGINE_H

//===- engine/CompileEngine.cpp - Parallel batch compilation ---------------===//

#include "engine/CompileEngine.h"

#include "obs/Trace.h"
#include "support/Format.h"
#include "support/ThreadPool.h"

#include <chrono>

using namespace gis;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// One schedulable work unit.  Granularity is one function, or one whole
/// module when the differential oracle is on (the oracle reads sibling
/// functions of the module under test; see the header comment).
struct WorkUnit {
  Module *M = nullptr;
  /// Functions of M this unit schedules (all in slot order).
  std::vector<Function *> Funcs;
  /// Result slots, parallel to Funcs (indices into EngineReport::PerFunction).
  std::vector<size_t> Slots;
  Clock::time_point Enqueued;
};

} // namespace

std::string EngineReport::summary() const {
  std::string S = formatString(
      "engine: %u function(s), %u thread(s), %.3fs wall (%.1f funcs/sec)\n",
      FunctionsCompiled, Threads, WallSeconds, functionsPerSecond());
  S += formatString(
      "  cache: %llu hit(s), %llu miss(es) (%.1f%% hit rate)\n",
      static_cast<unsigned long long>(CacheHits),
      static_cast<unsigned long long>(CacheMisses), 100.0 * cacheHitRate());
  if (DiskEnabled)
    S += formatString(
        "  disk tier: %llu hit(s) this batch, %llu quarantine(s), "
        "%llu write failure(s)%s\n",
        static_cast<unsigned long long>(DiskHits),
        static_cast<unsigned long long>(Disk.Quarantines),
        static_cast<unsigned long long>(Disk.WriteFailures),
        Disk.Degraded ? " [degraded: memory-only]" : "");
  S += formatString(
      "  queue wait: %.3fs total; schedule time: %.3fs total\n",
      TotalQueueWaitSeconds, TotalCompileSeconds);
  S += formatString("  rollbacks: %u (region %u / transform %u)\n",
                    rollbacks(), Aggregate.RegionsRolledBack,
                    Aggregate.TransformsRolledBack);
  S += formatString(
      "  region scheduling: %u task(s) in %u wave(s), %.3fs total\n",
      static_cast<unsigned>(Aggregate.RegionTimes.size()),
      Aggregate.RegionWaves, [this] {
        double T = 0;
        for (const RegionTime &RT : Aggregate.RegionTimes)
          T += RT.Seconds;
        return T;
      }());
  return S;
}

CompileEngine::CompileEngine(const MachineDescription &MD,
                             const PipelineOptions &Opts,
                             const EngineOptions &EOpts)
    : MD(MD), Opts(Opts), EOpts(EOpts) {
  if (this->EOpts.Jobs == 0)
    this->EOpts.Jobs = ThreadPool::hardwareThreads();
  if (EOpts.SharedCache) {
    Cache = EOpts.SharedCache;
  } else {
    OwnedCache = std::make_unique<ScheduleCache>(this->EOpts.CacheCapacity);
    Cache = OwnedCache.get();
  }
  if (EOpts.SharedDisk) {
    Disk = EOpts.SharedDisk;
  } else if (!this->EOpts.CacheDir.empty()) {
    OwnedDisk = std::make_unique<persist::DiskScheduleCache>(
        this->EOpts.CacheDir, this->EOpts.CacheDirMaxBytes);
    // A failed open degrades the tier to memory-only; the status is
    // recorded in the disk cache's diagnostics and surfaced per batch.
    // Callers that want fail-fast semantics probe before building the
    // engine (gisc --cache-dir).
    OwnedDisk->open();
    Disk = OwnedDisk.get();
  }
  MachineFp = fingerprintMachine(MD);
  OptionsFp = fingerprintOptions(Opts);
}

CompileEngine::~CompileEngine() = default;

EngineReport CompileEngine::compileBatch(const std::vector<BatchItem> &Batch) {
  Clock::time_point WallStart = Clock::now();

  EngineReport Report;
  Report.Threads = EOpts.Jobs;

  // The cache serves content-addressed results; inputs whose schedule
  // depends on state outside the hashed content (profile data, the
  // oracle's view of sibling functions) bypass it.
  const bool CacheOn =
      EOpts.UseCache && !Opts.Profile && !Opts.EnableOracle;
  // The disk tier additionally skips decision-log runs: decision logs are
  // not persisted (a disk hit must replay stats faithfully or not at all;
  // see persist::DiskScheduleCache::insert), so disk lookups under
  // CollectDecisions could only ever miss.
  const bool DiskOn = CacheOn && Disk && !Opts.CollectDecisions;
  const bool ModuleGranularity = Opts.EnableOracle;

  // Attribute only this batch's disk traffic to the report and the
  // counters registry (the disk cache's own stats are lifetime-scoped and
  // may be shared with other engines).
  const persist::DiskCacheStats DiskBefore =
      DiskOn ? Disk->stats() : persist::DiskCacheStats{};
  const size_t DiskDiagsBefore = DiskOn ? Disk->diagnostics().size() : 0;

  // Flatten the batch into work units and pre-size the result slots, so
  // workers write disjoint elements and the report ends up in input order
  // no matter which order units finish in.
  std::vector<WorkUnit> Units;
  for (const BatchItem &Item : Batch) {
    if (!Item.M)
      continue;
    WorkUnit *Current = nullptr;
    for (const auto &F : Item.M->functions()) {
      if (!Current || !ModuleGranularity) {
        Units.emplace_back();
        Current = &Units.back();
        Current->M = Item.M;
      }
      size_t Slot = Report.PerFunction.size();
      FunctionCompileResult R;
      R.Item = Item.Name;
      R.Function = F->name();
      Report.PerFunction.push_back(std::move(R));
      Current->Funcs.push_back(F.get());
      Current->Slots.push_back(Slot);
    }
  }

  const PipelineOptions &UnitOpts = Opts;

  auto Process = [&](const WorkUnit &Unit) {
    double QueueWait = secondsSince(Unit.Enqueued);
    for (size_t K = 0; K != Unit.Funcs.size(); ++K) {
      Function &F = *Unit.Funcs[K];
      FunctionCompileResult &R = Report.PerFunction[Unit.Slots[K]];
      R.QueueWaitSeconds = K == 0 ? QueueWait : 0.0;
      obs::Tracer &Tr = obs::Tracer::instance();
      obs::TraceSpan FnSpan("function", "engine", "slot",
                            static_cast<int64_t>(Unit.Slots[K]), nullptr, 0,
                            Tr.enabled() ? R.Item + ":" + R.Function
                                         : std::string());
      Clock::time_point Start = Clock::now();
      if (CacheOn) {
        Key128 Key = scheduleCacheKey(F, MachineFp, OptionsFp);
        if (Cache->lookup(Key, F, R.Stats)) {
          R.CacheHit = true;
          // A hit replays the cached PipelineStats -- including its obs
          // counters and decision log -- so observability stays exact
          // whether or not the schedule was recomputed.
          Tr.instant("cache-hit", "engine", "slot",
                     static_cast<int64_t>(Unit.Slots[K]));
          R.CompileSeconds = secondsSince(Start);
          continue;
        }
        if (DiskOn && Disk->lookup(Key, F, R.Stats)) {
          R.CacheHit = true;
          R.DiskHit = true;
          // Promote into the memory tier so repeats within this process
          // skip the filesystem.
          Cache->insert(Key, F, R.Stats);
          Tr.instant("disk-cache-hit", "engine", "slot",
                     static_cast<int64_t>(Unit.Slots[K]));
          R.CompileSeconds = secondsSince(Start);
          continue;
        }
        R.Stats = schedulePipeline(F, MD, UnitOpts);
        Cache->insert(Key, F, R.Stats);
        if (DiskOn)
          Disk->insert(Key, F, R.Stats);
      } else {
        PipelineOptions FnOpts = UnitOpts;
        if (FnOpts.EnableOracle && !FnOpts.OracleModule)
          FnOpts.OracleModule = Unit.M;
        R.Stats = schedulePipeline(F, MD, FnOpts);
      }
      R.CompileSeconds = secondsSince(Start);
    }
  };

  if (EOpts.Jobs <= 1 || Units.size() <= 1) {
    for (WorkUnit &Unit : Units) {
      Unit.Enqueued = Clock::now();
      Process(Unit);
    }
  } else {
    ThreadPool Pool(EOpts.Jobs);
    for (WorkUnit &Unit : Units) {
      Unit.Enqueued = Clock::now();
      Pool.submit([&Process, &Unit] { Process(Unit); });
    }
    Pool.waitIdle();
  }

  // Merge in input order: identical aggregates for any worker count.
  for (const FunctionCompileResult &R : Report.PerFunction) {
    ++Report.FunctionsCompiled;
    if (R.CacheHit)
      ++Report.CacheHits;
    else
      ++Report.CacheMisses;
    if (R.DiskHit)
      ++Report.DiskHits;
    else if (DiskOn && !R.CacheHit)
      ++Report.DiskMisses; // a full compile implies a disk miss first
    Report.TotalQueueWaitSeconds += R.QueueWaitSeconds;
    Report.TotalCompileSeconds += R.CompileSeconds;
    Report.Aggregate += R.Stats;
  }

  // Cache snapshots for the report (lifetime-scoped when shared).
  Report.MemCache = Cache->stats();
  Report.MemShards = Cache->shardStats();
  Report.MemCacheSize = Cache->size();
  Report.MemCacheCapacity = Cache->capacity();
  if (Disk) {
    Report.DiskEnabled = true;
    Report.Disk = Disk->stats();
  }
  // Persist-layer degradations and quarantines observed during this batch
  // join the aggregate diagnostics, so --stats and --stats-json surface
  // them through the established channel.
  if (DiskOn) {
    std::vector<Diagnostic> DiskDiags = Disk->diagnostics();
    Report.Aggregate.Diags.insert(Report.Aggregate.Diags.end(),
                                  DiskDiags.begin() + DiskDiagsBefore,
                                  DiskDiags.end());
  }

  // Cache traffic lives at the engine layer, not in any one pipeline run,
  // so it enters the merged registry here (after the deterministic merge).
  if (Opts.CollectCounters) {
    Report.Aggregate.Counters.bump(obs::CacheHits, Report.CacheHits);
    Report.Aggregate.Counters.bump(obs::CacheMisses, Report.CacheMisses);
    if (DiskOn) {
      Report.Aggregate.Counters.bump(obs::PersistDiskHits, Report.DiskHits);
      Report.Aggregate.Counters.bump(obs::PersistDiskMisses,
                                     Report.DiskMisses);
      Report.Aggregate.Counters.bump(
          obs::PersistQuarantines,
          Report.Disk.Quarantines - DiskBefore.Quarantines);
      Report.Aggregate.Counters.bump(
          obs::PersistWriteFailures,
          Report.Disk.WriteFailures - DiskBefore.WriteFailures);
      Report.Aggregate.Counters.bump(
          obs::PersistEvictions,
          Report.Disk.Evictions - DiskBefore.Evictions);
    }
  }
  Report.WallSeconds = secondsSince(WallStart);
  return Report;
}

EngineReport CompileEngine::compile(Module &M) {
  return compileBatch({BatchItem{&M, "<module>"}});
}

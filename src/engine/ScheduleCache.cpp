//===- engine/ScheduleCache.cpp - Content-addressed schedule cache ---------===//

#include "engine/ScheduleCache.h"

#include "ir/Printer.h"
#include "machine/MachineDescription.h"

using namespace gis;

uint64_t gis::fingerprintMachine(const MachineDescription &MD) {
  HashBuilder H;
  H.addString(MD.name());
  // Register-file sizes: an allocating run's output depends on them, so
  // two machines differing only in --regs-gpr must never share entries
  // (asserted by tests/regalloc_test.cpp).
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    H.addU32(MD.numRegs(C));
  H.addU32(MD.numUnitTypes());
  for (unsigned T = 0; T != MD.numUnitTypes(); ++T) {
    const UnitType &U = MD.unitType(T);
    H.addString(U.Name);
    H.addU32(U.Count);
  }
  for (unsigned Op = 0; Op != NumOpcodes; ++Op) {
    Opcode O = static_cast<Opcode>(Op);
    H.addU32(MD.unitTypeForOp(O));
    H.addU32(MD.execTime(O));
  }
  // Delay rules have no accessor; their effect is fully captured by the
  // pairwise flowDelay matrix, which is also order-insensitive where the
  // rule list is not.
  for (unsigned P = 0; P != NumOpcodes; ++P)
    for (unsigned C = 0; C != NumOpcodes; ++C) {
      unsigned D = MD.flowDelay(static_cast<Opcode>(P),
                                static_cast<Opcode>(C));
      if (D)
        H.addU32(P).addU32(C).addU32(D);
    }
  return H.hash();
}

uint64_t gis::fingerprintOptions(const PipelineOptions &Opts) {
  HashBuilder H;
  H.addU32(static_cast<uint32_t>(Opts.Level));
  H.addU32(Opts.MaxSpecDepth);
  H.addBool(Opts.EnableRenaming);
  H.addBool(Opts.EnablePreRenaming);
  H.addU32(static_cast<uint32_t>(Opts.Order));
  H.addBool(Opts.Profile != nullptr);
  H.addBool(Opts.EnableUnroll);
  H.addBool(Opts.EnableRotate);
  H.addU32(Opts.UnrollMaxBlocks);
  H.addU32(Opts.RotateMaxBlocks);
  H.addU32(Opts.RegionBlockLimit);
  H.addU32(Opts.RegionInstrLimit);
  H.addBool(Opts.OnlyTwoInnerLevels);
  H.addBool(Opts.RunLocalScheduler);
  H.addBool(Opts.AllowDuplication);
  H.addU32(Opts.MaxDuplicationsPerRegion);
  // Superblock formation rewrites the CFG (tail duplication) and
  // reschedules the hot chains, so every knob that steers it splits the
  // cache -- in the memory tier and the shared on-disk tier alike
  // (asserted by tests/superblock_test.cpp).
  H.addBool(Opts.EnableSuperblocks);
  H.addU32(Opts.TraceMaxBlocks);
  H.addU32(Opts.TraceDupBudget);
  H.addBool(Opts.EnableTransactions);
  H.addBool(Opts.VerifyStructural);
  H.addBool(Opts.VerifySemantic);
  H.addBool(Opts.EnableOracle);
  H.addBool(Opts.OracleModule != nullptr);
  H.addU64(Opts.OracleMaxSteps);
  // The observability flags ARE part of the fingerprint: cached
  // PipelineStats replay their obs counters and decision log on a hit, so
  // an entry produced without them must not serve a run that wants them
  // (and vice versa).
  H.addBool(Opts.CollectCounters);
  H.addBool(Opts.CollectDecisions);
  // Register allocation changes the emitted code outright; a hit must
  // never replay a schedule compiled under different allocator settings.
  H.addBool(Opts.AllocateRegisters);
  H.addBool(Opts.RescheduleAfterAlloc);
  // Mid-end optimizer: the *resolved* pass enablement is hashed, not the
  // raw -O level, so "-O2" and "-O0 with every pass forced on" share
  // entries (they run the identical pipeline) while -O0 and -O2 never
  // collide -- in the memory tier and, through the same fingerprint, in
  // the shared on-disk tier (asserted by tests/opt_test.cpp).
  for (opt::PassId P : opt::passPipeline())
    H.addBool(Opts.Opt.enabled(P));
  // RegionJobs is deliberately NOT part of the fingerprint: region-parallel
  // scheduling is bit-identical to sequential (see sched/Pipeline.h), so
  // cache entries are shared across --region-jobs values.  Asserted by
  // tests/region_parallel_test.cpp.
  //
  // Incremental is left out for the same reason: the incremental cold path
  // emits schedules bit-identical to the recompute-from-scratch one (see
  // sched/ListScheduler.h), so entries are shared across --no-incremental.
  // Asserted by tests/coldpath_test.cpp.
  return H.hash();
}

Key128 gis::scheduleCacheKey(const Function &F, uint64_t MachineFp,
                             uint64_t OptionsFp) {
  std::string Bytes = functionToString(F);
  Bytes.push_back('\0'); // separate IR text from the fingerprint tail
  for (uint64_t Fp : {MachineFp, OptionsFp})
    for (unsigned K = 0; K != 8; ++K)
      Bytes.push_back(static_cast<char>(Fp >> (8 * K)));
  return hashKey128(Bytes);
}

ScheduleCache::ScheduleCache(size_t Capacity, unsigned NumShards)
    : Capacity(Capacity) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (unsigned K = 0; K != NumShards; ++K)
    Shards.push_back(std::make_unique<Shard>());
}

bool ScheduleCache::lookup(const Key128 &Key, Function &F,
                           PipelineStats &Stats) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // refresh recency
  F = It->second->Scheduled;
  Stats += It->second->Stats;
  Hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ScheduleCache::insert(const Key128 &Key, const Function &F,
                           const PipelineStats &Stats) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Map.find(Key);
  if (It != S.Map.end()) {
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  S.Lru.emplace_front(Key, F, Stats);
  S.Map.emplace(Key, S.Lru.begin());
  Insertions.fetch_add(1, std::memory_order_relaxed);
  size_t ShardCap = Capacity ? (Capacity + Shards.size() - 1) / Shards.size()
                             : 0;
  while (ShardCap && S.Lru.size() > ShardCap) {
    S.Map.erase(S.Lru.back().Key);
    S.Lru.pop_back();
    ++S.Evictions;
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ScheduleCache::size() const {
  size_t N = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    N += S->Lru.size();
  }
  return N;
}

std::vector<ShardOccupancy> ScheduleCache::shardStats() const {
  std::vector<ShardOccupancy> R;
  R.reserve(Shards.size());
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    R.push_back(ShardOccupancy{S->Lru.size(), S->Evictions});
  }
  return R;
}

ScheduleCacheStats ScheduleCache::stats() const {
  ScheduleCacheStats R;
  R.Hits = Hits.load(std::memory_order_relaxed);
  R.Misses = Misses.load(std::memory_order_relaxed);
  R.Insertions = Insertions.load(std::memory_order_relaxed);
  R.Evictions = Evictions.load(std::memory_order_relaxed);
  return R;
}

void ScheduleCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    S->Map.clear();
    S->Lru.clear();
  }
}

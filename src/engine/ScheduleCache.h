//===- engine/ScheduleCache.h - Content-addressed schedule cache -*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of pipeline results.  The key is a stable
/// 128-bit hash of (function IR, machine description, pipeline options);
/// the value is a deep copy of the scheduled function plus the
/// PipelineStats of the run that produced it.  Two inputs with identical
/// content -- whichever module or batch they came from -- share one entry,
/// so repeated compiles are served by a copy instead of a reschedule, and
/// a cache hit is bit-identical to a fresh run by construction.
///
/// Thread safety: all public members are safe to call concurrently.  The
/// map is sharded by key; each shard holds its own mutex and an LRU list
/// bounding the shard's entry count (scheduled-function copies are not
/// small, so the cache is capacity-bounded, not append-only).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ENGINE_SCHEDULECACHE_H
#define GIS_ENGINE_SCHEDULECACHE_H

#include "ir/Function.h"
#include "sched/Pipeline.h"
#include "support/Hashing.h"

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace gis {

class MachineDescription;

/// Running counters of one cache instance (monotonic; read with stats()).
struct ScheduleCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// Point-in-time view of one shard, for hit attribution and eviction
/// debugging (--stats-json "cache.shards").  Entries is current occupancy;
/// Evictions is monotonic over the shard's lifetime.
struct ShardOccupancy {
  size_t Entries = 0;
  uint64_t Evictions = 0;
};

/// Stable fingerprint of a machine description: name, unit types and
/// counts, per-opcode unit map and exec times, delay rules.
uint64_t fingerprintMachine(const MachineDescription &MD);

/// Stable fingerprint of the scheduling-relevant pipeline options.  The
/// borrowed Profile and OracleModule pointers are hashed by presence only;
/// callers that vary their *contents* between runs must bypass the cache
/// (CompileEngine does).
uint64_t fingerprintOptions(const PipelineOptions &Opts);

/// The cache key of scheduling \p F under (\p MachineFp, \p OptionsFp):
/// a 128-bit hash of the function's printed IR plus both fingerprints.
/// Printing is the canonical serialization -- it captures exactly the
/// state the pipeline transforms (layout, instructions, operands).
Key128 scheduleCacheKey(const Function &F, uint64_t MachineFp,
                        uint64_t OptionsFp);

class ScheduleCache {
public:
  /// \p Capacity bounds the total entry count (0 disables the bound);
  /// entries are evicted least-recently-used per shard.
  explicit ScheduleCache(size_t Capacity = 4096, unsigned NumShards = 16);

  /// If \p Key is present, copy-assigns the cached scheduled function into
  /// \p F, merges the cached stats into \p Stats and returns true.
  bool lookup(const Key128 &Key, Function &F, PipelineStats &Stats);

  /// Inserts the result of scheduling under \p Key (deep-copies \p F).
  /// Re-inserting an existing key refreshes recency and keeps the first
  /// value (results for one key are identical by construction).
  void insert(const Key128 &Key, const Function &F,
              const PipelineStats &Stats);

  size_t size() const;
  size_t capacity() const { return Capacity; }
  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  ScheduleCacheStats stats() const;
  /// Per-shard occupancy and eviction counts, indexed by shard.
  std::vector<ShardOccupancy> shardStats() const;
  void clear();

private:
  struct Entry {
    Key128 Key;
    Function Scheduled;
    PipelineStats Stats;

    Entry(const Key128 &K, const Function &F, const PipelineStats &S)
        : Key(K), Scheduled(F), Stats(S) {}
  };

  struct Shard {
    mutable std::mutex Mu;
    /// LRU order, most recent first; map values point into the list.
    std::list<Entry> Lru;
    std::unordered_map<Key128, std::list<Entry>::iterator, Key128Hash> Map;
    /// Entries this shard evicted over its lifetime (under Mu).
    uint64_t Evictions = 0;
  };

  Shard &shardFor(const Key128 &Key) {
    return *Shards[Key.Hi % Shards.size()];
  }

  size_t Capacity;
  std::vector<std::unique_ptr<Shard>> Shards;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Insertions{0};
  std::atomic<uint64_t> Evictions{0};
};

} // namespace gis

#endif // GIS_ENGINE_SCHEDULECACHE_H

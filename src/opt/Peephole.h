//===- opt/Peephole.h - Algebraic peephole pass -----------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local algebraic simplification and constant folding.  Tracks
/// LI-defined constants through each block and rewrites instructions in
/// place: fully-constant ALU operations fold to LI, identities (x+0,
/// x<<0, x^x, ...) collapse to LR/LI, register compares against a known
/// constant become immediate compares, and self-moves disappear.
///
/// All folding is done in two's-complement (uint64_t) arithmetic with
/// shift amounts masked to 6 bits -- exactly the interpreter's semantics
/// (interp/Interpreter.cpp), so the differential oracle cannot observe a
/// folded value diverging.  DIV/REM are never folded or removed here:
/// their trap on a zero divisor is an observable effect.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OPT_PEEPHOLE_H
#define GIS_OPT_PEEPHOLE_H

#include "ir/Function.h"

namespace gis {
namespace opt {

/// Runs the peephole pass over \p F; returns the number of instructions
/// rewritten or removed.
unsigned runPeephole(Function &F);

} // namespace opt
} // namespace gis

#endif // GIS_OPT_PEEPHOLE_H

//===- opt/Pass.h - Optimizer pass registry ---------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mid-end optimizer's pass roster.  The paper schedules IR the XL
/// compiler had already optimized; src/opt/ recreates that stage so the
/// scheduling experiments can run over cleaned-up blocks (see DESIGN.md
/// section 13).  Every pass is identified by a PassId and described by a
/// static PassInfo record: its CLI flag, its fault-injection stage name,
/// and the lowest -O level that enables it.  The pipeline order is the
/// enumerator order.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OPT_PASS_H
#define GIS_OPT_PASS_H

#include <array>
#include <cstdint>

namespace gis {
namespace opt {

/// The registered passes, in pipeline order: simplify first (peephole),
/// then expose cheaper forms (strength reduction), then remove redundant
/// computations (value numbering), then sweep the dead code all three
/// leave behind.
enum class PassId : uint8_t {
  Peephole,       ///< algebraic identities + constant folding
  StrengthReduce, ///< mul/div-by-constant into shifts/adds
  ValueNumbering, ///< GVN-lite CSE over the dominator tree
  DeadCode,       ///< liveness-driven dead instruction removal
};

constexpr unsigned NumOptPasses = 4;

/// Static description of one pass.
struct PassInfo {
  const char *Name;        ///< human name, e.g. "peephole"
  const char *Flag;        ///< gisc toggle suffix: --opt-<Flag> / --no-opt-<Flag>
  const char *Stage;       ///< fault-injection / trace stage, e.g. "opt-peephole"
  const char *Description; ///< one-line summary for --list-passes
  unsigned MinLevel;       ///< lowest -O level that enables the pass
};

/// Returns the static record of \p P.
const PassInfo &passInfo(PassId P);

/// The full roster in pipeline order.
const std::array<PassId, NumOptPasses> &passPipeline();

} // namespace opt
} // namespace gis

#endif // GIS_OPT_PASS_H

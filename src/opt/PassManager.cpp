//===- opt/PassManager.cpp - Transactional optimizer driver ----------------===//

#include "opt/PassManager.h"

#include "obs/Trace.h"
#include "opt/DeadCodeElim.h"
#include "opt/Peephole.h"
#include "opt/StrengthReduce.h"
#include "opt/ValueNumbering.h"

#include <chrono>

using namespace gis;
using namespace gis::opt;

namespace {

/// Runs one pass body; returns the work count through \p Work.
Status runPassBody(PassId P, Function &F, const MachineDescription &MD,
                   unsigned &Work) {
  switch (P) {
  case PassId::Peephole:
    Work = runPeephole(F);
    return Status::ok();
  case PassId::StrengthReduce:
    Work = runStrengthReduce(F, MD);
    return Status::ok();
  case PassId::ValueNumbering:
    Work = runValueNumbering(F);
    return Status::ok();
  case PassId::DeadCode:
    Work = runDeadCodeElim(F);
    return Status::ok();
  }
  return Status::ok();
}

void recordWork(PassId P, unsigned Work, OptStats &Stats,
                obs::CounterSet *Counters) {
  switch (P) {
  case PassId::Peephole:
    Stats.PeepholeRewrites += Work;
    if (Counters)
      Counters->bump(obs::OptPeepholeRewrites, Work);
    break;
  case PassId::StrengthReduce:
    Stats.StrengthReduced += Work;
    if (Counters)
      Counters->bump(obs::OptStrengthReduced, Work);
    break;
  case PassId::ValueNumbering:
    Stats.ValuesNumbered += Work;
    if (Counters)
      Counters->bump(obs::OptValuesNumbered, Work);
    break;
  case PassId::DeadCode:
    Stats.DeadRemoved += Work;
    if (Counters)
      Counters->bump(obs::OptDceRemoved, Work);
    break;
  }
}

} // namespace

OptRunReport gis::opt::runOptPasses(Function &F, const MachineDescription &MD,
                                    const OptOptions &Opts,
                                    const TransactionConfig &Tx,
                                    obs::CounterSet *Counters) {
  using Clock = std::chrono::steady_clock;
  OptRunReport Report;
  for (PassId P : passPipeline()) {
    if (!Opts.enabled(P))
      continue;
    const PassInfo &Info = passInfo(P);
    obs::TraceSpan Span(Info.Stage, "opt");
    auto Start = Clock::now();

    if (Tx.Enabled)
      ++Report.TransactionsRun;
    unsigned Work = 0;
    TransactionResult R = runFunctionTransaction(
        F, Info.Stage, Tx, [&] { return runPassBody(P, F, MD, Work); });

    double Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
    Report.Opt.PassTimes.push_back({P, Seconds});

    if (R.EngineFailure)
      ++Report.EngineFailures;
    if (R.FaultInjected)
      ++Report.FaultsInjected;
    if (R.VerifierFailure)
      ++Report.VerifierFailures;
    if (R.OracleMismatch)
      ++Report.OracleMismatches;

    if (R.Committed) {
      ++Report.Opt.PassesRun;
      recordWork(P, Work, Report.Opt, Counters);
      if (Counters)
        Counters->bump(obs::OptPassesRun);
      continue;
    }

    ++Report.TransformsRolledBack;
    if (Counters)
      Counters->bump(obs::Rollbacks);
    obs::Tracer::instance().instant("rollback", "opt");
    reportDiagnostic(Report.Diags, R.S, F.name(), Info.Stage, -1);
  }
  return Report;
}

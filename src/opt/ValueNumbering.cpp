//===- opt/ValueNumbering.cpp - Dominator-scoped CSE -----------------------===//

#include "opt/ValueNumbering.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"

#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

using namespace gis;
using namespace gis::opt;

namespace {

/// Pure, single-def-producing opcodes eligible for numbering.  Loads are
/// excluded (memory), spill code is excluded (slots are storage), DIV/REM
/// are included (see header).
bool isNumberable(Opcode Op) {
  switch (Op) {
  case Opcode::LI:
  case Opcode::LR:
  case Opcode::AI:
  case Opcode::A:
  case Opcode::S:
  case Opcode::MUL:
  case Opcode::DIV:
  case Opcode::REM:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SL:
  case Opcode::SR:
  case Opcode::NEG:
  case Opcode::C:
  case Opcode::CI:
  case Opcode::FC:
  case Opcode::FA:
  case Opcode::FS:
  case Opcode::FM:
  case Opcode::FD:
  case Opcode::FMA:
    return true;
  default:
    return false;
  }
}

/// Expression identity: opcode, operand registers (in order; none of
/// these opcodes commute in the IR encoding), immediate, condition bit.
using ExprKey = std::tuple<unsigned, std::vector<uint32_t>, int64_t, unsigned>;

ExprKey keyFor(const Instruction &I) {
  std::vector<uint32_t> Uses;
  Uses.reserve(I.uses().size());
  for (Reg U : I.uses())
    Uses.push_back(U.key());
  return {static_cast<unsigned>(I.opcode()), std::move(Uses), I.imm(),
          static_cast<unsigned>(I.cond())};
}

/// Position of an instruction: (block, index in block).
struct InstrPos {
  BlockId Block = InvalidId;
  size_t Index = 0;
};

class Numberer {
public:
  explicit Numberer(Function &F) : F(F), DT(buildCFG(F)) {
    countDefsAndUses();
  }

  unsigned run() {
    Dead.assign(F.numInstrs(), false);
    visit(DT.root());
    unsigned Removed = 0;
    for (BlockId B : F.layout()) {
      std::vector<InstrId> Kept;
      Kept.reserve(F.block(B).size());
      for (InstrId Id : F.block(B).instrs()) {
        if (Dead[Id]) {
          ++Removed;
          continue;
        }
        Kept.push_back(Id);
      }
      F.block(B).instrs() = std::move(Kept);
    }
    return Removed;
  }

private:
  void countDefsAndUses() {
    for (Reg P : F.params())
      ++DefCount[P.key()];
    for (BlockId B : F.layout())
      for (size_t Pos = 0; Pos != F.block(B).size(); ++Pos) {
        InstrId Id = F.block(B).instrs()[Pos];
        Positions[Id] = {B, Pos};
        const Instruction &I = F.instr(Id);
        for (Reg D : I.defs())
          ++DefCount[D.key()];
        for (Reg U : I.uses())
          UseSites[U.key()].push_back(Id);
      }
  }

  bool singleDef(Reg R) const {
    auto It = DefCount.find(R.key());
    return It != DefCount.end() && It->second == 1;
  }

  bool eligible(const Instruction &I) const {
    if (!isNumberable(I.opcode()) || I.defs().size() != 1 ||
        !singleDef(I.defs()[0]))
      return false;
    for (Reg U : I.uses())
      if (!singleDef(U))
        return false;
    return true;
  }

  /// True if instruction \p User executes strictly after position \p P on
  /// every path that reaches it.
  bool executesAfter(InstrId User, const InstrPos &P) const {
    auto It = Positions.find(User);
    if (It == Positions.end())
      return false;
    const InstrPos &U = It->second;
    if (U.Block == P.Block)
      return U.Index > P.Index;
    return DT.strictlyDominates(P.Block, U.Block);
  }

  /// Forwards every use of \p From to \p To; returns false (doing
  /// nothing) unless all use sites are dominated by \p At.
  bool forwardUses(Reg From, Reg To, const InstrPos &At) {
    auto It = UseSites.find(From.key());
    if (It == UseSites.end())
      return true;
    // Bind the vector: inserting into UseSites below may rehash the map
    // (references stay valid, iterators do not).
    const std::vector<InstrId> &Users = It->second;
    for (InstrId User : Users)
      if (!Dead[User] && !executesAfter(User, At))
        return false;
    for (InstrId User : Users) {
      if (Dead[User])
        continue;
      for (Reg &U : F.instr(User).uses())
        if (U == From)
          U = To;
      UseSites[To.key()].push_back(User);
    }
    return true;
  }

  void visit(unsigned Node) {
    BlockId B = static_cast<BlockId>(Node);
    std::vector<ExprKey> Inserted;
    for (size_t Pos = 0; Pos != F.block(B).size(); ++Pos) {
      InstrId Id = F.block(B).instrs()[Pos];
      if (Dead[Id])
        continue;
      Instruction &I = F.instr(Id);
      if (!eligible(I))
        continue;
      ExprKey Key = keyFor(I);
      auto Found = Table.find(Key);
      if (Found == Table.end()) {
        Table.emplace(Key, I.defs()[0]);
        Inserted.push_back(std::move(Key));
        continue;
      }
      InstrPos Here{B, Pos};
      if (forwardUses(I.defs()[0], Found->second, Here))
        Dead[Id] = true;
    }
    for (unsigned Child : DT.children(Node))
      visit(Child);
    for (const ExprKey &Key : Inserted)
      Table.erase(Key);
  }

  Function &F;
  DomTree DT;
  std::unordered_map<uint32_t, unsigned> DefCount;
  std::unordered_map<uint32_t, std::vector<InstrId>> UseSites;
  std::unordered_map<InstrId, InstrPos> Positions;
  std::map<ExprKey, Reg> Table;
  std::vector<bool> Dead;
};

} // namespace

unsigned gis::opt::runValueNumbering(Function &F) {
  if (F.numBlocks() == 0)
    return 0;
  return Numberer(F).run();
}

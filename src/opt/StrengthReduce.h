//===- opt/StrengthReduce.h - Strength reduction ----------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strength reduction of multiplies and divides by block-local constants,
/// driven by the machine description's execution times: MUL by a power of
/// two becomes a shift, MUL by 2^k +/- 1 becomes a shift plus an add or
/// subtract (through a fresh register), and only when the replacement's
/// summed latency actually beats the multiply on the target machine.
/// Divides are only reduced in the always-safe cases (x/1, x%1): the
/// arithmetic right shift rounds toward negative infinity while the
/// machine's signed divide rounds toward zero, so x/2^k is deliberately
/// left alone.
///
/// All rewrites are exact under the interpreter's wrapping two's-
/// complement semantics (SL is a logical shift of the 64-bit pattern, so
/// x << k == x * 2^k modulo 2^64).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OPT_STRENGTHREDUCE_H
#define GIS_OPT_STRENGTHREDUCE_H

#include "ir/Function.h"
#include "machine/MachineDescription.h"

namespace gis {
namespace opt {

/// Runs strength reduction over \p F against \p MD's latencies; returns
/// the number of multiplies/divides reduced.
unsigned runStrengthReduce(Function &F, const MachineDescription &MD);

} // namespace opt
} // namespace gis

#endif // GIS_OPT_STRENGTHREDUCE_H

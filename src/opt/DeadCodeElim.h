//===- opt/DeadCodeElim.h - Dead code elimination ---------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Liveness-driven dead code elimination: a pure computation whose defined
/// registers are all dead after it -- not live out of the block and not
/// read before the next redefinition -- is removed.  NOPs are always
/// removed.  Instructions with observable effects survive unconditionally:
/// memory accesses, calls, branches and terminators, spill code, and
/// DIV/REM (their zero-divisor trap is observable behaviour).  Runs to a
/// fixpoint, recomputing liveness after each sweep, so chains of dead
/// computations unravel completely.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OPT_DEADCODEELIM_H
#define GIS_OPT_DEADCODEELIM_H

#include "ir/Function.h"

namespace gis {
namespace opt {

/// Runs DCE over \p F (CFG must be up to date); returns the number of
/// instructions removed.
unsigned runDeadCodeElim(Function &F);

} // namespace opt
} // namespace gis

#endif // GIS_OPT_DEADCODEELIM_H

//===- opt/Pass.cpp - Optimizer pass registry ------------------------------===//

#include "opt/Pass.h"

#include "support/Assert.h"

using namespace gis;
using namespace gis::opt;

namespace {

// Indexed by PassId.  MinLevel policy: -O1 runs the cheap cleanup pair
// (peephole + DCE); -O2 adds the latency-driven and dominator-tree passes.
const PassInfo Infos[NumOptPasses] = {
    {"peephole", "peephole", "opt-peephole",
     "algebraic identities and constant folding", 1},
    {"strength-reduce", "strength", "opt-strength",
     "mul/div by constant into shifts and adds (machine-latency driven)", 2},
    {"value-numbering", "gvn", "opt-gvn",
     "dominator-scoped common-subexpression elimination", 2},
    {"dead-code", "dce", "opt-dce",
     "liveness-driven dead instruction removal", 1},
};

const std::array<PassId, NumOptPasses> Pipeline = {
    PassId::Peephole, PassId::StrengthReduce, PassId::ValueNumbering,
    PassId::DeadCode};

} // namespace

const PassInfo &gis::opt::passInfo(PassId P) {
  unsigned Index = static_cast<unsigned>(P);
  GIS_ASSERT(Index < NumOptPasses, "pass id out of range");
  return Infos[Index];
}

const std::array<PassId, NumOptPasses> &gis::opt::passPipeline() {
  return Pipeline;
}

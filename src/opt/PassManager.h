//===- opt/PassManager.h - Transactional optimizer driver -------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mid-end optimizer's driver.  Each enabled pass runs as a guarded
/// transaction (sched/Transaction.h): snapshot, transform, fault-injection
/// point (GIS_FAULT_INJECT stage "opt-<pass>"), structural verifier,
/// differential oracle, commit or roll back.  A rolled-back pass leaves
/// the function exactly as the previous pass committed it -- the pipeline
/// simply schedules less-optimized IR, mirroring the degrade-don't-crash
/// contract of the scheduling transforms.
///
/// Pass selection: -O0 runs nothing, -O1 the cheap cleanup pair (peephole
/// + dead code), -O2 all four passes; per-pass Force overrides win over
/// the level in both directions.  The *resolved* enablement vector is part
/// of the schedule-cache options fingerprint (engine/ScheduleCache.cpp),
/// so cached schedules never cross optimization configurations.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OPT_PASSMANAGER_H
#define GIS_OPT_PASSMANAGER_H

#include "machine/MachineDescription.h"
#include "obs/Counters.h"
#include "opt/Pass.h"
#include "sched/Transaction.h"
#include "support/Diagnostics.h"

#include <array>
#include <vector>

namespace gis {
namespace opt {

/// Optimizer configuration.  Level picks the default pass set; Force
/// overrides individual passes (-1 defer to level, 0 off, 1 on).
struct OptOptions {
  unsigned Level = 0;
  std::array<int8_t, NumOptPasses> Force = {-1, -1, -1, -1};

  bool enabled(PassId P) const {
    int8_t F = Force[static_cast<unsigned>(P)];
    if (F >= 0)
      return F != 0;
    return Level >= passInfo(P).MinLevel;
  }

  bool anyEnabled() const {
    for (PassId P : passPipeline())
      if (enabled(P))
        return true;
    return false;
  }

  void force(PassId P, bool On) {
    Force[static_cast<unsigned>(P)] = On ? 1 : 0;
  }
};

/// Wall-clock of one committed or rolled-back pass run, for --stats and
/// the E6 ablation's per-pass timing table.
struct OptPassTime {
  PassId Pass = PassId::Peephole;
  double Seconds = 0;
};

/// Per-pass work totals of one or more optimizer runs.
struct OptStats {
  unsigned PassesRun = 0; ///< pass transactions committed
  unsigned PeepholeRewrites = 0;
  unsigned StrengthReduced = 0;
  unsigned ValuesNumbered = 0;
  unsigned DeadRemoved = 0;
  std::vector<OptPassTime> PassTimes;

  OptStats &operator+=(const OptStats &RHS) {
    PassesRun += RHS.PassesRun;
    PeepholeRewrites += RHS.PeepholeRewrites;
    StrengthReduced += RHS.StrengthReduced;
    ValuesNumbered += RHS.ValuesNumbered;
    DeadRemoved += RHS.DeadRemoved;
    PassTimes.insert(PassTimes.end(), RHS.PassTimes.begin(),
                     RHS.PassTimes.end());
    return *this;
  }
};

/// Everything one runOptPasses call produced, for the caller (the
/// pipeline) to fold into its own statistics.
struct OptRunReport {
  OptStats Opt;
  unsigned TransactionsRun = 0;
  unsigned TransformsRolledBack = 0;
  unsigned VerifierFailures = 0;
  unsigned OracleMismatches = 0;
  unsigned EngineFailures = 0;
  unsigned FaultsInjected = 0;
  std::vector<Diagnostic> Diags;
};

/// Runs every enabled pass over \p F in pipeline order, each as a guarded
/// transaction configured by \p Tx.  \p F's CFG must be up to date on
/// entry and is up to date on return (no pass changes control flow).
/// \p Counters may be null; when set, per-pass work and rollbacks are
/// bumped there.
OptRunReport runOptPasses(Function &F, const MachineDescription &MD,
                          const OptOptions &Opts, const TransactionConfig &Tx,
                          obs::CounterSet *Counters);

} // namespace opt
} // namespace gis

#endif // GIS_OPT_PASSMANAGER_H

//===- opt/DeadCodeElim.cpp - Dead code elimination ------------------------===//

#include "opt/DeadCodeElim.h"

#include "analysis/Liveness.h"

#include <algorithm>
#include <unordered_set>

using namespace gis;
using namespace gis::opt;

namespace {

/// True if \p I may be removed once its defs are dead.
bool isRemovable(const Instruction &I) {
  if (I.opcode() == Opcode::NOP)
    return true;
  if (I.isTerminator() || I.isBranch() || I.isCall() || I.touchesMemory() ||
      I.isSpillCode())
    return false;
  // The zero-divisor trap is observable even when the quotient is dead.
  if (I.opcode() == Opcode::DIV || I.opcode() == Opcode::REM)
    return false;
  return !I.defs().empty();
}

} // namespace

unsigned gis::opt::runDeadCodeElim(Function &F) {
  unsigned Removed = 0;
  while (true) {
    Liveness L = Liveness::compute(F);
    unsigned Round = 0;
    for (BlockId B : F.layout()) {
      std::unordered_set<uint32_t> Live;
      for (Reg R : L.liveOutRegs(B))
        Live.insert(R.key());

      const std::vector<InstrId> &Old = F.block(B).instrs();
      std::vector<InstrId> Kept;
      Kept.reserve(Old.size());
      for (size_t K = Old.size(); K != 0; --K) {
        InstrId Id = Old[K - 1];
        const Instruction &I = F.instr(Id);
        bool AnyDefLive = false;
        for (Reg D : I.defs())
          if (Live.count(D.key())) {
            AnyDefLive = true;
            break;
          }
        if (isRemovable(I) && !AnyDefLive) {
          ++Round;
          continue;
        }
        for (Reg D : I.defs())
          Live.erase(D.key());
        for (Reg U : I.uses())
          Live.insert(U.key());
        Kept.push_back(Id);
      }
      std::reverse(Kept.begin(), Kept.end());
      F.block(B).instrs() = std::move(Kept);
    }
    if (Round == 0)
      break;
    Removed += Round;
  }
  return Removed;
}

//===- opt/StrengthReduce.cpp - Strength reduction -------------------------===//

#include "opt/StrengthReduce.h"

#include <optional>
#include <unordered_map>

using namespace gis;
using namespace gis::opt;

namespace {

using ConstMap = std::unordered_map<uint32_t, int64_t>;

std::optional<int64_t> lookup(const ConstMap &Consts, Reg R) {
  auto It = Consts.find(R.key());
  return It == Consts.end() ? std::nullopt
                            : std::optional<int64_t>(It->second);
}

/// log2 of \p V when it is a power of two in [2, 2^62]; nullopt otherwise.
std::optional<unsigned> exactLog2(int64_t V) {
  if (V < 2 || (V & (V - 1)) != 0)
    return std::nullopt;
  unsigned K = 0;
  while ((int64_t(1) << K) != V)
    ++K;
  return K;
}

void rewriteToLI(Instruction &I, int64_t Value) {
  I.setOpcode(Opcode::LI);
  I.uses().clear();
  I.setImm(Value);
}

void rewriteToLR(Instruction &I, Reg Src) {
  I.setOpcode(Opcode::LR);
  I.uses().assign(1, Src);
  I.setImm(0);
}

/// One multiply rewritten as "rd = (x << K) op x" through a fresh
/// register: emits the SL right before \p Pos in \p B and turns the MUL
/// at \p Pos into the A/S.  Returns the number of list slots the block
/// grew by (always 1), so the caller can fix its iteration index.
void expandShiftOp(Function &F, BlockId B, size_t Pos, Reg X, unsigned K,
                   Opcode Combine) {
  Reg Tmp = F.newReg(RegClass::GPR);
  Instruction Shift(Opcode::SL);
  Shift.defs().push_back(Tmp);
  Shift.uses().push_back(X);
  Shift.setImm(static_cast<int64_t>(K));
  InstrId ShiftId = F.appendInstr(B, Shift);

  // appendInstr put the shift at the end of the block; move it in front
  // of the multiply being rewritten.
  std::vector<InstrId> &List = F.block(B).instrs();
  List.pop_back();
  List.insert(List.begin() + static_cast<ptrdiff_t>(Pos), ShiftId);

  Instruction &Mul = F.instr(List[Pos + 1]);
  Mul.setOpcode(Combine); // rd = Tmp +/- X
  Mul.uses().assign({Tmp, X});
  Mul.setImm(0);
}

} // namespace

unsigned gis::opt::runStrengthReduce(Function &F,
                                     const MachineDescription &MD) {
  const unsigned MulTime = MD.execTime(Opcode::MUL);
  const unsigned ShiftTime = MD.execTime(Opcode::SL);
  const unsigned AddTime = MD.execTime(Opcode::A);

  unsigned Reduced = 0;
  for (BlockId B : F.layout()) {
    ConstMap Consts;
    for (size_t Pos = 0; Pos != F.block(B).size(); ++Pos) {
      InstrId Id = F.block(B).instrs()[Pos];
      {
        Instruction &I = F.instr(Id);
        Opcode Op = I.opcode();

        if (Op == Opcode::MUL) {
          Reg Ra = I.uses()[0], Rb = I.uses()[1];
          std::optional<int64_t> C = lookup(Consts, Rb);
          Reg X = Ra;
          if (!C) {
            C = lookup(Consts, Ra);
            X = Rb;
          }
          if (C) {
            if (*C == 0) {
              rewriteToLI(I, 0);
              ++Reduced;
            } else if (*C == 1) {
              rewriteToLR(I, X);
              ++Reduced;
            } else if (*C == -1) {
              I.setOpcode(Opcode::NEG);
              I.uses().assign(1, X);
              I.setImm(0);
              ++Reduced;
            } else if (auto K = exactLog2(*C);
                       K && ShiftTime < MulTime) {
              I.setOpcode(Opcode::SL);
              I.uses().assign(1, X);
              I.setImm(static_cast<int64_t>(*K));
              ++Reduced;
            } else if (auto KP = exactLog2(static_cast<int64_t>(
                           static_cast<uint64_t>(*C) - 1));
                       KP && ShiftTime + AddTime < MulTime) {
              expandShiftOp(F, B, Pos, X, *KP, Opcode::A); // (x<<k) + x
              ++Reduced;
              ++Pos; // skip over the inserted shift
            } else if (auto KM = exactLog2(static_cast<int64_t>(
                           static_cast<uint64_t>(*C) + 1));
                       KM && ShiftTime + AddTime < MulTime) {
              expandShiftOp(F, B, Pos, X, *KM, Opcode::S); // (x<<k) - x
              ++Reduced;
              ++Pos;
            }
          }
        } else if (Op == Opcode::DIV) {
          if (auto C = lookup(Consts, I.uses()[1]); C && *C == 1) {
            rewriteToLR(I, I.uses()[0]);
            ++Reduced;
          }
        } else if (Op == Opcode::REM) {
          if (auto C = lookup(Consts, I.uses()[1]); C && *C == 1) {
            rewriteToLI(I, 0);
            ++Reduced;
          }
        }
      }

      // Re-fetch: expandShiftOp may have moved the rewritten instruction.
      Instruction &Done = F.instr(F.block(B).instrs()[Pos]);
      for (Reg D : Done.defs())
        Consts.erase(D.key());
      if (Done.opcode() == Opcode::LI)
        Consts[Done.defs()[0].key()] = Done.imm();
    }
  }
  return Reduced;
}

//===- opt/Peephole.cpp - Algebraic peephole pass --------------------------===//

#include "opt/Peephole.h"

#include <optional>
#include <unordered_map>

using namespace gis;
using namespace gis::opt;

namespace {

/// Block-local constant environment: register -> known LI value.  Any
/// other def of a register evicts its entry.
using ConstMap = std::unordered_map<uint32_t, int64_t>;

std::optional<int64_t> lookup(const ConstMap &Consts, Reg R) {
  auto It = Consts.find(R.key());
  if (It == Consts.end())
    return std::nullopt;
  return It->second;
}

/// Folds a two-operand fixed-point ALU op in wrapping two's-complement
/// arithmetic (the interpreter's semantics).  DIV/REM excluded (traps).
std::optional<int64_t> foldBinary(Opcode Op, int64_t A, int64_t B) {
  uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
  switch (Op) {
  case Opcode::A:
    return static_cast<int64_t>(UA + UB);
  case Opcode::S:
    return static_cast<int64_t>(UA - UB);
  case Opcode::MUL:
    return static_cast<int64_t>(UA * UB);
  case Opcode::AND:
    return static_cast<int64_t>(UA & UB);
  case Opcode::OR:
    return static_cast<int64_t>(UA | UB);
  case Opcode::XOR:
    return static_cast<int64_t>(UA ^ UB);
  default:
    return std::nullopt;
  }
}

/// Folds a one-operand-plus-immediate op, mirroring the interpreter: SL is
/// a logical shift of the 64-bit pattern, SR an arithmetic shift, both
/// with the amount masked to 6 bits.
std::optional<int64_t> foldUnary(Opcode Op, int64_t V, int64_t Imm) {
  switch (Op) {
  case Opcode::LR:
    return V;
  case Opcode::NEG:
    return static_cast<int64_t>(0 - static_cast<uint64_t>(V));
  case Opcode::AI:
    return static_cast<int64_t>(static_cast<uint64_t>(V) +
                                static_cast<uint64_t>(Imm));
  case Opcode::SL:
    return static_cast<int64_t>(static_cast<uint64_t>(V) << (Imm & 63));
  case Opcode::SR:
    return V >> (Imm & 63);
  default:
    return std::nullopt;
  }
}

/// Rewrites \p I into "rd = LI value", keeping its single def.
void rewriteToLI(Instruction &I, int64_t Value) {
  I.setOpcode(Opcode::LI);
  I.uses().clear();
  I.setImm(Value);
}

/// Rewrites \p I into "rd = LR src", keeping its single def.
void rewriteToLR(Instruction &I, Reg Src) {
  I.setOpcode(Opcode::LR);
  I.uses().assign(1, Src);
  I.setImm(0);
}

/// Applies one peephole rewrite to \p I if any matches; returns true when
/// the instruction changed.  \p Consts is the environment *before* I.
bool rewriteInstr(Instruction &I, const ConstMap &Consts) {
  Opcode Op = I.opcode();
  switch (Op) {
  case Opcode::LR:
  case Opcode::NEG:
    if (auto V = lookup(Consts, I.uses()[0]))
      if (auto R = foldUnary(Op, *V, 0)) {
        rewriteToLI(I, *R);
        return true;
      }
    return false;

  case Opcode::AI:
  case Opcode::SL:
  case Opcode::SR: {
    if (auto V = lookup(Consts, I.uses()[0]))
      if (auto R = foldUnary(Op, *V, I.imm())) {
        rewriteToLI(I, *R);
        return true;
      }
    bool Identity = Op == Opcode::AI ? I.imm() == 0 : (I.imm() & 63) == 0;
    if (Identity) {
      rewriteToLR(I, I.uses()[0]);
      return true;
    }
    return false;
  }

  case Opcode::A:
  case Opcode::S:
  case Opcode::MUL:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR: {
    Reg Ra = I.uses()[0], Rb = I.uses()[1];
    std::optional<int64_t> Va = lookup(Consts, Ra);
    std::optional<int64_t> Vb = lookup(Consts, Rb);
    if (Va && Vb) {
      if (auto R = foldBinary(Op, *Va, *Vb)) {
        rewriteToLI(I, *R);
        return true;
      }
      return false;
    }
    if (Ra == Rb) {
      if (Op == Opcode::S || Op == Opcode::XOR) {
        rewriteToLI(I, 0); // x - x == x ^ x == 0
        return true;
      }
      if (Op == Opcode::AND || Op == Opcode::OR) {
        rewriteToLR(I, Ra); // x & x == x | x == x
        return true;
      }
    }
    if (Op == Opcode::A) {
      if (Va && *Va == 0) {
        rewriteToLR(I, Rb);
        return true;
      }
      if (Vb && *Vb == 0) {
        rewriteToLR(I, Ra);
        return true;
      }
    }
    if (Op == Opcode::S && Vb && *Vb == 0) {
      rewriteToLR(I, Ra);
      return true;
    }
    if ((Op == Opcode::OR || Op == Opcode::XOR) && Vb && *Vb == 0) {
      rewriteToLR(I, Ra);
      return true;
    }
    if ((Op == Opcode::OR || Op == Opcode::XOR) && Va && *Va == 0) {
      rewriteToLR(I, Rb);
      return true;
    }
    return false;
  }

  case Opcode::C:
    // Compare against a known constant becomes an immediate compare; the
    // interpreter routes both through the same comparison, so this is
    // exact for any 64-bit constant.
    if (auto Vb = lookup(Consts, I.uses()[1])) {
      I.setOpcode(Opcode::CI);
      I.uses().resize(1);
      I.setImm(*Vb);
      return true;
    }
    return false;

  default:
    return false;
  }
}

} // namespace

unsigned gis::opt::runPeephole(Function &F) {
  unsigned Rewrites = 0;
  for (BlockId B : F.layout()) {
    ConstMap Consts;
    std::vector<InstrId> Kept;
    Kept.reserve(F.block(B).size());
    for (InstrId Id : F.block(B).instrs()) {
      Instruction &I = F.instr(Id);
      if (rewriteInstr(I, Consts))
        ++Rewrites;

      // Self-moves are dead once rewritten in place.
      if (I.opcode() == Opcode::LR && I.uses()[0] == I.defs()[0]) {
        ++Rewrites;
        continue;
      }

      // Update the environment after the instruction's defs take effect.
      for (Reg D : I.defs())
        Consts.erase(D.key());
      if (I.opcode() == Opcode::LI)
        Consts[I.defs()[0].key()] = I.imm();
      Kept.push_back(Id);
    }
    F.block(B).instrs() = std::move(Kept);
  }
  return Rewrites;
}

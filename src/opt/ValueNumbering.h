//===- opt/ValueNumbering.h - Dominator-scoped CSE --------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GVN-lite: common-subexpression elimination scoped by the dominator
/// tree.  The IR is not SSA, so the pass restricts itself to the safe
/// fragment: an expression participates only when its defined register and
/// every operand register have exactly one def in the whole function
/// (function parameters count as defs).  Such an expression computes the
/// same value on every execution, so a dominated re-computation can
/// forward all its uses to the dominating def and disappear -- provided
/// each use site is itself dominated by the deleted def (otherwise the
/// interpreter's read-before-write semantics could change).
///
/// DIV/REM are eligible: identical operands means identical trap
/// behaviour, and the dominating instance executes (and would trap) first.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OPT_VALUENUMBERING_H
#define GIS_OPT_VALUENUMBERING_H

#include "ir/Function.h"

namespace gis {
namespace opt {

/// Runs dominator-scoped value numbering over \p F (CFG must be up to
/// date); returns the number of redundant instructions removed.
unsigned runValueNumbering(Function &F);

} // namespace opt
} // namespace gis

#endif // GIS_OPT_VALUENUMBERING_H

//===- ir/Parser.h - Textual IR parsing -------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the GIS assembly syntax produced by ir/Printer.h.  Used by tests
/// and examples to write programs compactly, including a verbatim
/// transcription of the paper's Figure 2.
///
/// Syntax sketch:
/// \code
///   global a[100]
///   func minmax {
///   BL1:
///     L r12 = mem[r31 + 4]          ; load u
///     LU r0, r31 = mem[r31 + 8]
///     C cr7 = r12, r0
///     BF BL5, cr7, gt
///   BL2:
///     ...
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_PARSER_H
#define GIS_IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <string_view>

namespace gis {

/// Result of parsing: either a module, or an error with a 1-based line
/// number.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error;
  int Line = 0;

  bool ok() const { return M != nullptr; }
};

/// Parses a whole module from \p Text.
ParseResult parseModule(std::string_view Text);

/// Parses a module expected to be well-formed; aborts with the parse error
/// message otherwise.  Convenience for tests and examples.
std::unique_ptr<Module> parseModuleOrDie(std::string_view Text);

} // namespace gis

#endif // GIS_IR_PARSER_H

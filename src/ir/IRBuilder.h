//===- ir/IRBuilder.h - Instruction construction helper ---------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience builder for emitting instructions into a Function.  Used by
/// the mini-C code generator, the workload generators and tests.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_IRBUILDER_H
#define GIS_IR_IRBUILDER_H

#include "ir/Function.h"

namespace gis {

/// Appends instructions to a designated insertion block of one Function.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  Function &function() { return F; }

  void setInsertBlock(BlockId B) { Insert = B; }
  BlockId insertBlock() const { return Insert; }

  /// Allocates a fresh GPR.
  Reg newGPR() { return F.newReg(RegClass::GPR); }
  /// Allocates a fresh FPR.
  Reg newFPR() { return F.newReg(RegClass::FPR); }
  /// Allocates a fresh condition register.
  Reg newCR() { return F.newReg(RegClass::CR); }

  //===--------------------------------------------------------------------===
  // Fixed point
  //===--------------------------------------------------------------------===

  InstrId li(Reg Rd, int64_t Imm) {
    Instruction I(Opcode::LI);
    I.defs() = {Rd};
    I.setImm(Imm);
    return emit(std::move(I));
  }

  InstrId lr(Reg Rd, Reg Rs) {
    Instruction I(Opcode::LR);
    I.defs() = {Rd};
    I.uses() = {Rs};
    return emit(std::move(I));
  }

  InstrId ai(Reg Rd, Reg Rs, int64_t Imm) {
    Instruction I(Opcode::AI);
    I.defs() = {Rd};
    I.uses() = {Rs};
    I.setImm(Imm);
    return emit(std::move(I));
  }

  InstrId binop(Opcode Op, Reg Rd, Reg Ra, Reg Rb) {
    Instruction I(Op);
    I.defs() = {Rd};
    I.uses() = {Ra, Rb};
    return emit(std::move(I));
  }

  InstrId add(Reg Rd, Reg Ra, Reg Rb) { return binop(Opcode::A, Rd, Ra, Rb); }
  InstrId sub(Reg Rd, Reg Ra, Reg Rb) { return binop(Opcode::S, Rd, Ra, Rb); }
  InstrId mul(Reg Rd, Reg Ra, Reg Rb) {
    return binop(Opcode::MUL, Rd, Ra, Rb);
  }
  InstrId sdiv(Reg Rd, Reg Ra, Reg Rb) {
    return binop(Opcode::DIV, Rd, Ra, Rb);
  }
  InstrId srem(Reg Rd, Reg Ra, Reg Rb) {
    return binop(Opcode::REM, Rd, Ra, Rb);
  }
  InstrId and_(Reg Rd, Reg Ra, Reg Rb) {
    return binop(Opcode::AND, Rd, Ra, Rb);
  }
  InstrId or_(Reg Rd, Reg Ra, Reg Rb) { return binop(Opcode::OR, Rd, Ra, Rb); }
  InstrId xor_(Reg Rd, Reg Ra, Reg Rb) {
    return binop(Opcode::XOR, Rd, Ra, Rb);
  }

  InstrId shl(Reg Rd, Reg Ra, int64_t Amount) {
    Instruction I(Opcode::SL);
    I.defs() = {Rd};
    I.uses() = {Ra};
    I.setImm(Amount);
    return emit(std::move(I));
  }

  InstrId shr(Reg Rd, Reg Ra, int64_t Amount) {
    Instruction I(Opcode::SR);
    I.defs() = {Rd};
    I.uses() = {Ra};
    I.setImm(Amount);
    return emit(std::move(I));
  }

  InstrId neg(Reg Rd, Reg Ra) {
    Instruction I(Opcode::NEG);
    I.defs() = {Rd};
    I.uses() = {Ra};
    return emit(std::move(I));
  }

  //===--------------------------------------------------------------------===
  // Memory
  //===--------------------------------------------------------------------===

  InstrId load(Reg Rd, Reg Base, int64_t Disp) {
    Instruction I(Opcode::L);
    I.defs() = {Rd};
    I.uses() = {Base};
    I.setImm(Disp);
    return emit(std::move(I));
  }

  /// Load with update: Rd = mem[Base + Disp]; Base += Disp.
  InstrId loadUpdate(Reg Rd, Reg Base, int64_t Disp) {
    Instruction I(Opcode::LU);
    I.defs() = {Rd, Base};
    I.uses() = {Base};
    I.setImm(Disp);
    return emit(std::move(I));
  }

  InstrId store(Reg Value, Reg Base, int64_t Disp) {
    Instruction I(Opcode::ST);
    I.uses() = {Value, Base};
    I.setImm(Disp);
    return emit(std::move(I));
  }

  /// Store with update: mem[Base + Disp] = Value; Base += Disp.
  InstrId storeUpdate(Reg Value, Reg Base, int64_t Disp) {
    Instruction I(Opcode::STU);
    I.defs() = {Base};
    I.uses() = {Value, Base};
    I.setImm(Disp);
    return emit(std::move(I));
  }

  InstrId loadF(Reg Fd, Reg Base, int64_t Disp) {
    Instruction I(Opcode::LF);
    I.defs() = {Fd};
    I.uses() = {Base};
    I.setImm(Disp);
    return emit(std::move(I));
  }

  InstrId storeF(Reg Fs, Reg Base, int64_t Disp) {
    Instruction I(Opcode::STF);
    I.uses() = {Fs, Base};
    I.setImm(Disp);
    return emit(std::move(I));
  }

  //===--------------------------------------------------------------------===
  // Floating point arithmetic
  //===--------------------------------------------------------------------===

  InstrId fadd(Reg Fd, Reg Fa, Reg Fb) { return binop(Opcode::FA, Fd, Fa, Fb); }
  InstrId fsub(Reg Fd, Reg Fa, Reg Fb) { return binop(Opcode::FS, Fd, Fa, Fb); }
  InstrId fmul(Reg Fd, Reg Fa, Reg Fb) { return binop(Opcode::FM, Fd, Fa, Fb); }
  InstrId fdiv(Reg Fd, Reg Fa, Reg Fb) { return binop(Opcode::FD, Fd, Fa, Fb); }

  InstrId fma(Reg Fd, Reg Fa, Reg Fb, Reg Fc) {
    Instruction I(Opcode::FMA);
    I.defs() = {Fd};
    I.uses() = {Fa, Fb, Fc};
    return emit(std::move(I));
  }

  //===--------------------------------------------------------------------===
  // Compares and control flow
  //===--------------------------------------------------------------------===

  InstrId cmp(Reg Crd, Reg Ra, Reg Rb) {
    Instruction I(Opcode::C);
    I.defs() = {Crd};
    I.uses() = {Ra, Rb};
    return emit(std::move(I));
  }

  InstrId cmpi(Reg Crd, Reg Ra, int64_t Imm) {
    Instruction I(Opcode::CI);
    I.defs() = {Crd};
    I.uses() = {Ra};
    I.setImm(Imm);
    return emit(std::move(I));
  }

  InstrId fcmp(Reg Crd, Reg Fa, Reg Fb) {
    Instruction I(Opcode::FC);
    I.defs() = {Crd};
    I.uses() = {Fa, Fb};
    return emit(std::move(I));
  }

  InstrId br(BlockId Target) {
    Instruction I(Opcode::B);
    I.setTarget(Target);
    return emit(std::move(I));
  }

  InstrId bt(Reg Crs, CondBit Bit, BlockId Target) {
    Instruction I(Opcode::BT);
    I.uses() = {Crs};
    I.setCond(Bit);
    I.setTarget(Target);
    return emit(std::move(I));
  }

  InstrId bf(Reg Crs, CondBit Bit, BlockId Target) {
    Instruction I(Opcode::BF);
    I.uses() = {Crs};
    I.setCond(Bit);
    I.setTarget(Target);
    return emit(std::move(I));
  }

  InstrId call(std::string Callee, std::vector<Reg> Args, Reg Result = Reg()) {
    Instruction I(Opcode::CALL);
    I.setCallee(std::move(Callee));
    I.uses() = std::move(Args);
    if (Result.isValid())
      I.defs() = {Result};
    return emit(std::move(I));
  }

  InstrId ret() { return emit(Instruction(Opcode::RET)); }

  InstrId ret(Reg Value) {
    Instruction I(Opcode::RET);
    I.uses() = {Value};
    return emit(std::move(I));
  }

  InstrId nop() { return emit(Instruction(Opcode::NOP)); }

  /// Attaches a comment to the most recently emitted instruction.
  IRBuilder &comment(std::string C) {
    GIS_ASSERT(LastEmitted != InvalidId, "no instruction to annotate");
    F.instr(LastEmitted).setComment(std::move(C));
    return *this;
  }

  InstrId last() const { return LastEmitted; }

private:
  InstrId emit(Instruction I) {
    GIS_ASSERT(Insert != InvalidId, "no insertion block set");
    LastEmitted = F.appendInstr(Insert, std::move(I));
    return LastEmitted;
  }

  Function &F;
  BlockId Insert = InvalidId;
  InstrId LastEmitted = InvalidId;
};

} // namespace gis

#endif // GIS_IR_IRBUILDER_H

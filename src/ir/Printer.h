//===- ir/Printer.h - Textual IR printing -----------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules/functions/instructions in the GIS assembly syntax, the
/// same syntax accepted by ir/Parser.h.  The output visually mirrors the
/// paper's Figure 2 pseudo-code.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_PRINTER_H
#define GIS_IR_PRINTER_H

#include "ir/Module.h"

#include <iosfwd>
#include <string>

namespace gis {

/// Renders one instruction (without trailing newline).
std::string instructionToString(const Function &F, InstrId Id);

/// Renders a whole function.
std::string functionToString(const Function &F);

/// Renders a whole module (globals + functions).
std::string moduleToString(const Module &M);

/// Stream variants.
void printFunction(const Function &F, std::ostream &OS);
void printModule(const Module &M, std::ostream &OS);

} // namespace gis

#endif // GIS_IR_PRINTER_H

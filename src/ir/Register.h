//===- ir/Register.h - Symbolic register model ------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic registers.  Following the paper (Section 2), scheduling runs
/// before register allocation over an unbounded symbolic register file with
/// three classes: fixed-point (GPR), floating-point (FPR) and condition
/// registers (CR).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_REGISTER_H
#define GIS_IR_REGISTER_H

#include "support/Assert.h"

#include <cstdint>
#include <functional>
#include <string>

namespace gis {

/// Register class of a symbolic register.
enum class RegClass : uint8_t {
  GPR, ///< Fixed-point register (rN).
  FPR, ///< Floating-point register (fN).
  CR,  ///< Condition register (crN), written by compares, read by branches.
};

/// A symbolic register: a class plus an unbounded index.  Value type,
/// cheap to copy; the invalid register is the default-constructed one.
class Reg {
public:
  Reg() = default;

  static Reg gpr(uint32_t Index) { return Reg(RegClass::GPR, Index); }
  static Reg fpr(uint32_t Index) { return Reg(RegClass::FPR, Index); }
  static Reg cr(uint32_t Index) { return Reg(RegClass::CR, Index); }
  static Reg make(RegClass Class, uint32_t Index) { return Reg(Class, Index); }

  bool isValid() const { return Encoded != InvalidEncoding; }

  RegClass regClass() const {
    GIS_ASSERT(isValid(), "register class of invalid register");
    return static_cast<RegClass>(Encoded >> IndexBits);
  }

  uint32_t index() const {
    GIS_ASSERT(isValid(), "index of invalid register");
    return Encoded & IndexMask;
  }

  bool isGPR() const { return isValid() && regClass() == RegClass::GPR; }
  bool isFPR() const { return isValid() && regClass() == RegClass::FPR; }
  bool isCR() const { return isValid() && regClass() == RegClass::CR; }

  /// A dense key usable for hashing / array indexing across all classes.
  uint32_t key() const { return Encoded; }

  bool operator==(const Reg &RHS) const { return Encoded == RHS.Encoded; }
  bool operator!=(const Reg &RHS) const { return Encoded != RHS.Encoded; }
  bool operator<(const Reg &RHS) const { return Encoded < RHS.Encoded; }

  /// Textual name: r7, f2, cr6.
  std::string str() const;

private:
  static constexpr uint32_t IndexBits = 28;
  static constexpr uint32_t IndexMask = (uint32_t(1) << IndexBits) - 1;
  static constexpr uint32_t InvalidEncoding = ~uint32_t(0);

  Reg(RegClass Class, uint32_t Index)
      : Encoded((static_cast<uint32_t>(Class) << IndexBits) | Index) {
    GIS_ASSERT(Index <= IndexMask, "register index overflow");
  }

  uint32_t Encoded = InvalidEncoding;
};

} // namespace gis

namespace std {
template <> struct hash<gis::Reg> {
  size_t operator()(const gis::Reg &R) const noexcept {
    return std::hash<uint32_t>()(R.key());
  }
};
} // namespace std

#endif // GIS_IR_REGISTER_H

//===- ir/Checkpoint.h - Function checkpoint/restore ------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap deep snapshots of a Function, the substrate of the transactional
/// scheduling pipeline: every transform runs against a checkpoint, and a
/// failed verification rolls the function back to it bit-for-bit.  A
/// Function is a handful of dense vectors (instruction pool, blocks,
/// layout, register counters), so a snapshot is one deep copy with no
/// pointer fix-up.  RegionSnapshot narrows the transaction boundary to one
/// scheduling region so independent regions can fail (and roll back) or
/// commit without touching each other's blocks.  DeltaCheckpoint narrows
/// it further to first-touch records of exactly the blocks/instructions a
/// transform mutates, guarded by a manifest hash so a lost record is a
/// detected failure, not a silent mis-rollback (DESIGN.md section 15).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_CHECKPOINT_H
#define GIS_IR_CHECKPOINT_H

#include "ir/Function.h"

#include <array>
#include <functional>
#include <utility>
#include <vector>

namespace gis {

/// A deep snapshot of one Function.
class FunctionSnapshot {
public:
  /// Captures the complete state of \p F (pool, blocks, layout, registers,
  /// cached CFG edges).
  explicit FunctionSnapshot(const Function &F) : Saved(F) {}

  /// Rolls \p F back to the captured state.  \p F must be the function the
  /// snapshot was taken from (or an equally-shaped one); afterwards
  /// identical(F, function()) holds.
  void restore(Function &F) const { F = Saved; }

  /// The captured state, readable in place (used by the semantic verifier
  /// and the differential oracle as the "original" side).
  const Function &function() const { return Saved; }

private:
  Function Saved;
};

/// A snapshot of one scheduling region's slice of a Function: the
/// instruction lists of the region's blocks, the pool entries of the
/// instructions those lists reference, and the register counters.  This is
/// the region-local transaction boundary of the parallel pipeline
/// (sched/Pipeline.cpp): a failed region rolls back -- or a successful one
/// commits -- only its own blocks, leaving sibling regions' schedules
/// untouched, where the whole-function FunctionSnapshot would discard them.
class RegionSnapshot {
public:
  /// Captures the contents of \p Blocks in \p F.  Region scheduling never
  /// moves instructions across the region boundary, so these lists (plus
  /// the registers counters for renaming) are exactly the state a region
  /// transaction can change.
  RegionSnapshot(const Function &F, std::vector<BlockId> Blocks);

  /// Rolls the captured blocks of \p F back to the snapshot, including the
  /// register counters.  \p F must not have been mutated outside the
  /// captured region since the snapshot was taken.
  void restore(Function &F) const;

  /// Commits the captured region contents into \p F (which may be a
  /// different Function object of identical shape, e.g. the master copy a
  /// parallel region task was forked from), rewriting every register
  /// operand through \p RemapReg.  The parallel pipeline uses this to
  /// renumber task-allocated registers into the master's counter space in
  /// deterministic region-index order.  Register counters are not touched;
  /// the caller advances them to cover the remapped registers.
  void applyTo(Function &F, const std::function<Reg(Reg)> &RemapReg) const;

  const std::vector<BlockId> &blocks() const { return Blocks; }
  /// Per captured block (parallel to blocks()): its instruction list.
  /// The scoped verifier reads the pre-pass region through these.
  const std::vector<std::vector<InstrId>> &blockInstrs() const {
    return BlockInstrs;
  }
  /// Pool entries of every instruction referenced by the captured lists.
  const std::vector<std::pair<InstrId, Instruction>> &instrs() const {
    return Instrs;
  }

private:
  std::vector<BlockId> Blocks;
  std::vector<std::vector<InstrId>> BlockInstrs;
  std::vector<std::pair<InstrId, Instruction>> Instrs;
  std::array<unsigned, 3> RegCounts = {0, 0, 0};
};

/// A first-touch delta checkpoint of one Function: instead of copying the
/// whole function up front (FunctionSnapshot), the transform notes each
/// block list / pool entry *before* first mutating it, and rollback
/// re-applies exactly those records.  Construction takes an O(n)
/// allocation-free manifest hash of the full function; restore recomputes
/// it and reports a mismatch, so a transform that mutated state it never
/// noted (a lost delta) is detected fail-stop instead of silently
/// rolling back to a wrong state.  The "ckpt-delta" fault-injection stage
/// drops a record deliberately to prove that containment path fires.
class DeltaCheckpoint {
public:
  /// Captures shape and manifest of \p F.  With \p Armed false the
  /// checkpoint is a no-op shell (notes ignored, no manifest): the
  /// `--no-incremental` fallback runs under a FunctionSnapshot instead.
  explicit DeltaCheckpoint(const Function &F, bool Armed = true);

  /// Saves the current instruction list of block \p B (first touch only).
  void noteBlock(BlockId B);
  /// Saves the current pool entry of instruction \p I (first touch only).
  void noteInstr(InstrId I);
  /// Saves every block list (used before whole-function test corruption,
  /// which rewrites lists only).
  void noteAllBlocks();

  bool armed() const { return Armed; }
  /// True when any delta record has been saved.
  bool hasRecords() const {
    return !SavedBlocks.empty() || !SavedInstrs.empty();
  }
  /// Drops one record whose saved content still differs from the current
  /// function state -- i.e. a record rollback genuinely needs -- keeping
  /// its first-touch flag set so the loss is not silently repaired.
  /// Returns false when every record is redundant.  Test-only.
  bool dropOneRecordForTest();

  /// Rolls \p F back by re-applying the saved records and register
  /// counters, then recomputes the manifest.  Returns false when the
  /// restored bytes do not match the construction-time manifest (a delta
  /// record was lost); the caller must treat that as fatal.
  bool restore(Function &F) const;

  /// Approximate bytes of state the delta records hold, for the
  /// coldpath.ckpt_bytes counter (what a full FunctionSnapshot would have
  /// copied is the comparison point).
  uint64_t bytesSaved() const;

private:
  static uint64_t manifestOf(const Function &F);

  const Function *Src = nullptr;
  bool Armed = true;
  uint64_t Manifest = 0;
  unsigned NumBlocks = 0;
  unsigned NumInstrs = 0;
  std::array<unsigned, 3> RegCounts = {0, 0, 0};
  std::vector<uint8_t> BlockNoted, InstrNoted;
  std::vector<std::pair<BlockId, std::vector<InstrId>>> SavedBlocks;
  std::vector<std::pair<InstrId, Instruction>> SavedInstrs;
};

/// Field-by-field equality of two functions: same name, parameters,
/// register counters, layout, block labels and contents, and identical
/// instruction pools (opcode, operands, immediates, branch targets,
/// callees, original order).  This is the "bit-identical" contract that
/// rollback restores.
bool functionsIdentical(const Function &A, const Function &B);

} // namespace gis

#endif // GIS_IR_CHECKPOINT_H

//===- ir/Checkpoint.h - Function checkpoint/restore ------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap deep snapshots of a Function, the substrate of the transactional
/// scheduling pipeline: every transform runs against a checkpoint, and a
/// failed verification rolls the function back to it bit-for-bit.  A
/// Function is a handful of dense vectors (instruction pool, blocks,
/// layout, register counters), so a snapshot is one deep copy with no
/// pointer fix-up.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_CHECKPOINT_H
#define GIS_IR_CHECKPOINT_H

#include "ir/Function.h"

namespace gis {

/// A deep snapshot of one Function.
class FunctionSnapshot {
public:
  /// Captures the complete state of \p F (pool, blocks, layout, registers,
  /// cached CFG edges).
  explicit FunctionSnapshot(const Function &F) : Saved(F) {}

  /// Rolls \p F back to the captured state.  \p F must be the function the
  /// snapshot was taken from (or an equally-shaped one); afterwards
  /// identical(F, function()) holds.
  void restore(Function &F) const { F = Saved; }

  /// The captured state, readable in place (used by the semantic verifier
  /// and the differential oracle as the "original" side).
  const Function &function() const { return Saved; }

private:
  Function Saved;
};

/// Field-by-field equality of two functions: same name, parameters,
/// register counters, layout, block labels and contents, and identical
/// instruction pools (opcode, operands, immediates, branch targets,
/// callees, original order).  This is the "bit-identical" contract that
/// rollback restores.
bool functionsIdentical(const Function &A, const Function &B);

} // namespace gis

#endif // GIS_IR_CHECKPOINT_H

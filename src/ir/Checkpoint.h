//===- ir/Checkpoint.h - Function checkpoint/restore ------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap deep snapshots of a Function, the substrate of the transactional
/// scheduling pipeline: every transform runs against a checkpoint, and a
/// failed verification rolls the function back to it bit-for-bit.  A
/// Function is a handful of dense vectors (instruction pool, blocks,
/// layout, register counters), so a snapshot is one deep copy with no
/// pointer fix-up.  RegionSnapshot narrows the transaction boundary to one
/// scheduling region so independent regions can fail (and roll back) or
/// commit without touching each other's blocks.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_CHECKPOINT_H
#define GIS_IR_CHECKPOINT_H

#include "ir/Function.h"

#include <array>
#include <functional>
#include <utility>
#include <vector>

namespace gis {

/// A deep snapshot of one Function.
class FunctionSnapshot {
public:
  /// Captures the complete state of \p F (pool, blocks, layout, registers,
  /// cached CFG edges).
  explicit FunctionSnapshot(const Function &F) : Saved(F) {}

  /// Rolls \p F back to the captured state.  \p F must be the function the
  /// snapshot was taken from (or an equally-shaped one); afterwards
  /// identical(F, function()) holds.
  void restore(Function &F) const { F = Saved; }

  /// The captured state, readable in place (used by the semantic verifier
  /// and the differential oracle as the "original" side).
  const Function &function() const { return Saved; }

private:
  Function Saved;
};

/// A snapshot of one scheduling region's slice of a Function: the
/// instruction lists of the region's blocks, the pool entries of the
/// instructions those lists reference, and the register counters.  This is
/// the region-local transaction boundary of the parallel pipeline
/// (sched/Pipeline.cpp): a failed region rolls back -- or a successful one
/// commits -- only its own blocks, leaving sibling regions' schedules
/// untouched, where the whole-function FunctionSnapshot would discard them.
class RegionSnapshot {
public:
  /// Captures the contents of \p Blocks in \p F.  Region scheduling never
  /// moves instructions across the region boundary, so these lists (plus
  /// the registers counters for renaming) are exactly the state a region
  /// transaction can change.
  RegionSnapshot(const Function &F, std::vector<BlockId> Blocks);

  /// Rolls the captured blocks of \p F back to the snapshot, including the
  /// register counters.  \p F must not have been mutated outside the
  /// captured region since the snapshot was taken.
  void restore(Function &F) const;

  /// Commits the captured region contents into \p F (which may be a
  /// different Function object of identical shape, e.g. the master copy a
  /// parallel region task was forked from), rewriting every register
  /// operand through \p RemapReg.  The parallel pipeline uses this to
  /// renumber task-allocated registers into the master's counter space in
  /// deterministic region-index order.  Register counters are not touched;
  /// the caller advances them to cover the remapped registers.
  void applyTo(Function &F, const std::function<Reg(Reg)> &RemapReg) const;

  const std::vector<BlockId> &blocks() const { return Blocks; }

private:
  std::vector<BlockId> Blocks;
  /// Per captured block (parallel to Blocks): its instruction list.
  std::vector<std::vector<InstrId>> BlockInstrs;
  /// Pool entries of every instruction referenced by the captured lists.
  std::vector<std::pair<InstrId, Instruction>> Instrs;
  std::array<unsigned, 3> RegCounts = {0, 0, 0};
};

/// Field-by-field equality of two functions: same name, parameters,
/// register counters, layout, block labels and contents, and identical
/// instruction pools (opcode, operands, immediates, branch targets,
/// callees, original order).  This is the "bit-identical" contract that
/// rollback restores.
bool functionsIdentical(const Function &A, const Function &B);

} // namespace gis

#endif // GIS_IR_CHECKPOINT_H

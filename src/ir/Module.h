//===- ir/Module.h - Translation unit ---------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module: a list of functions plus statically allocated global memory
/// (arrays emitted by the mini-C frontend).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_MODULE_H
#define GIS_IR_MODULE_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace gis {

/// A named, statically allocated region of memory (e.g. a global array).
struct GlobalArray {
  std::string Name;
  int64_t Address;  ///< base address in the interpreter's flat memory
  int64_t SizeWords; ///< number of 8-byte words (one element per word slot,
                     ///< element stride is 4 as in the paper's examples)
};

/// A translation unit.
class Module {
public:
  Function &createFunction(std::string Name) {
    Functions.push_back(std::make_unique<Function>(std::move(Name)));
    return *Functions.back();
  }

  std::vector<std::unique_ptr<Function>> &functions() { return Functions; }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  Function *findFunction(const std::string &Name) {
    for (auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  std::vector<GlobalArray> &globals() { return Globals; }
  const std::vector<GlobalArray> &globals() const { return Globals; }

  /// Reserves \p SizeWords words of global memory for \p Name and returns
  /// the descriptor.  Addresses are laid out sequentially from 0x1000.
  const GlobalArray &allocateGlobal(std::string Name, int64_t SizeWords) {
    int64_t Address = 0x1000;
    if (!Globals.empty()) {
      const GlobalArray &Last = Globals.back();
      // Stride of 4 per element, padded to keep arrays disjoint.
      Address = Last.Address + Last.SizeWords * 4 + 64;
    }
    Globals.push_back(GlobalArray{std::move(Name), Address, SizeWords});
    return Globals.back();
  }

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<GlobalArray> Globals;
};

} // namespace gis

#endif // GIS_IR_MODULE_H

//===- ir/Verifier.cpp - IR structural verifier ---------------------------===//

#include "ir/Verifier.h"

#include "support/Format.h"

#include <set>

using namespace gis;

namespace {

/// Collects problems for one function.
class FunctionVerifier {
public:
  explicit FunctionVerifier(const Function &F) : F(F) {}

  std::vector<std::string> run() {
    checkLayout();
    for (BlockId B : F.layout())
      checkBlock(B);
    return std::move(Problems);
  }

private:
  void problem(const std::string &Msg) {
    Problems.push_back("function '" + F.name() + "': " + Msg);
  }

  void checkLayout() {
    if (F.layout().empty()) {
      problem("empty layout");
      return;
    }
    std::set<BlockId> Seen;
    for (BlockId B : F.layout()) {
      if (B >= F.numBlocks()) {
        problem(formatString("layout references unknown block %u", B));
        continue;
      }
      if (!Seen.insert(B).second)
        problem(formatString("block %s appears twice in layout",
                             F.block(B).label().c_str()));
    }
    if (Seen.size() != F.numBlocks())
      problem("some blocks are missing from the layout");

    // Instructions must belong to exactly one block.
    std::vector<unsigned> Owners(F.numInstrs(), 0);
    for (BlockId B : F.layout())
      for (InstrId I : F.block(B).instrs()) {
        if (I >= F.numInstrs()) {
          problem(formatString("block %s references unknown instruction %u",
                               F.block(B).label().c_str(), I));
          continue;
        }
        ++Owners[I];
      }
    for (InstrId I = 0; I != F.numInstrs(); ++I)
      if (Owners[I] > 1)
        problem(formatString("instruction %u appears in %u blocks", I,
                             Owners[I]));
  }

  void checkBlock(BlockId B) {
    if (B >= F.numBlocks())
      return;
    const BasicBlock &BB = F.block(B);
    const std::string &Label = BB.label();

    for (size_t Pos = 0, E = BB.instrs().size(); Pos != E; ++Pos) {
      const Instruction &I = F.instr(BB.instrs()[Pos]);
      if (I.isTerminator() && Pos + 1 != E)
        problem(formatString("%s: terminator %s is not the last instruction",
                             Label.c_str(),
                             std::string(opcodeName(I.opcode())).c_str()));
      checkInstr(Label, I);
    }

    // Fall-through off the end of the function.
    InstrId Term = F.terminatorOf(B);
    bool MayFallThrough =
        Term == InvalidId || F.instr(Term).opcode() == Opcode::BT ||
        F.instr(Term).opcode() == Opcode::BF;
    if (MayFallThrough && F.layoutSuccessor(B) == InvalidId)
      problem(formatString("%s: control may fall off the end of the function",
                           Label.c_str()));
  }

  void expectCounts(const std::string &Label, const Instruction &I,
                    size_t NumDefs, size_t NumUses) {
    if (I.defs().size() != NumDefs || I.uses().size() != NumUses)
      problem(formatString("%s: %s expects %zu defs / %zu uses, has %zu / %zu",
                           Label.c_str(),
                           std::string(opcodeName(I.opcode())).c_str(),
                           NumDefs, NumUses, I.defs().size(),
                           I.uses().size()));
  }

  void expectClass(const std::string &Label, const Instruction &I, Reg R,
                   RegClass Class, const char *Role) {
    if (!R.isValid() || R.regClass() != Class)
      problem(formatString("%s: %s operand '%s' of %s has wrong register "
                           "class",
                           Label.c_str(), Role, R.str().c_str(),
                           std::string(opcodeName(I.opcode())).c_str()));
  }

  void checkTarget(const std::string &Label, const Instruction &I) {
    if (I.target() == InvalidId || I.target() >= F.numBlocks())
      problem(formatString("%s: branch with invalid target", Label.c_str()));
  }

  void checkInstr(const std::string &Label, const Instruction &I) {
    switch (I.opcode()) {
    case Opcode::LI:
      expectCounts(Label, I, 1, 0);
      break;
    case Opcode::LR:
    case Opcode::NEG:
      expectCounts(Label, I, 1, 1);
      break;
    case Opcode::AI:
    case Opcode::SL:
    case Opcode::SR:
      expectCounts(Label, I, 1, 1);
      break;
    case Opcode::A:
    case Opcode::S:
    case Opcode::MUL:
    case Opcode::DIV:
    case Opcode::REM:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
      expectCounts(Label, I, 1, 2);
      for (Reg R : I.defs())
        expectClass(Label, I, R, RegClass::GPR, "def");
      for (Reg R : I.uses())
        expectClass(Label, I, R, RegClass::GPR, "use");
      break;
    case Opcode::FA:
    case Opcode::FS:
    case Opcode::FM:
    case Opcode::FD:
      expectCounts(Label, I, 1, 2);
      for (Reg R : I.defs())
        expectClass(Label, I, R, RegClass::FPR, "def");
      for (Reg R : I.uses())
        expectClass(Label, I, R, RegClass::FPR, "use");
      break;
    case Opcode::FMA:
      expectCounts(Label, I, 1, 3);
      break;
    case Opcode::L:
      expectCounts(Label, I, 1, 1);
      expectClass(Label, I, I.defs()[0], RegClass::GPR, "def");
      expectClass(Label, I, I.uses()[0], RegClass::GPR, "base");
      break;
    case Opcode::LU:
      expectCounts(Label, I, 2, 1);
      if (I.defs().size() == 2 && I.uses().size() == 1 &&
          I.defs()[1] != I.uses()[0])
        problem(formatString("%s: LU must update its base register",
                             Label.c_str()));
      // Like the POWER architecture's invalid form RT == RA for lwzu.
      if (I.defs().size() == 2 && I.defs()[0] == I.defs()[1])
        problem(formatString(
            "%s: LU destination must differ from its base register",
            Label.c_str()));
      break;
    case Opcode::ST:
      expectCounts(Label, I, 0, 2);
      break;
    case Opcode::STU:
      expectCounts(Label, I, 1, 2);
      if (I.defs().size() == 1 && I.uses().size() == 2 &&
          I.defs()[0] != I.uses()[1])
        problem(formatString("%s: STU must update its base register",
                             Label.c_str()));
      break;
    case Opcode::LF:
      expectCounts(Label, I, 1, 1);
      expectClass(Label, I, I.defs()[0], RegClass::FPR, "def");
      break;
    case Opcode::STF:
      expectCounts(Label, I, 0, 2);
      expectClass(Label, I, I.uses()[0], RegClass::FPR, "value");
      break;
    case Opcode::C:
      expectCounts(Label, I, 1, 2);
      expectClass(Label, I, I.defs()[0], RegClass::CR, "def");
      break;
    case Opcode::CI:
      expectCounts(Label, I, 1, 1);
      expectClass(Label, I, I.defs()[0], RegClass::CR, "def");
      break;
    case Opcode::FC:
      expectCounts(Label, I, 1, 2);
      expectClass(Label, I, I.defs()[0], RegClass::CR, "def");
      for (Reg R : I.uses())
        expectClass(Label, I, R, RegClass::FPR, "use");
      break;
    case Opcode::B:
      expectCounts(Label, I, 0, 0);
      checkTarget(Label, I);
      break;
    case Opcode::BT:
    case Opcode::BF:
      expectCounts(Label, I, 0, 1);
      if (!I.uses().empty())
        expectClass(Label, I, I.uses()[0], RegClass::CR, "cond");
      checkTarget(Label, I);
      break;
    case Opcode::CALL:
      if (I.callee().empty())
        problem(formatString("%s: CALL without callee name", Label.c_str()));
      break;
    case Opcode::RET:
      if (I.uses().size() > 1)
        problem(formatString("%s: RET with more than one value",
                             Label.c_str()));
      break;
    case Opcode::SPILL:
      expectCounts(Label, I, 0, 1);
      if (!I.uses().empty())
        expectClass(Label, I, I.uses()[0], RegClass::GPR, "value");
      break;
    case Opcode::RELOAD:
      expectCounts(Label, I, 1, 0);
      if (!I.defs().empty())
        expectClass(Label, I, I.defs()[0], RegClass::GPR, "def");
      break;
    case Opcode::SPILLF:
      expectCounts(Label, I, 0, 1);
      if (!I.uses().empty())
        expectClass(Label, I, I.uses()[0], RegClass::FPR, "value");
      break;
    case Opcode::RELOADF:
      expectCounts(Label, I, 1, 0);
      if (!I.defs().empty())
        expectClass(Label, I, I.defs()[0], RegClass::FPR, "def");
      break;
    case Opcode::NOP:
      expectCounts(Label, I, 0, 0);
      break;
    }
  }

  const Function &F;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> gis::verifyFunction(const Function &F) {
  return FunctionVerifier(F).run();
}

std::vector<std::string> gis::verifyModule(const Module &M) {
  std::vector<std::string> All;
  for (const auto &F : M.functions()) {
    std::vector<std::string> Problems = verifyFunction(*F);
    All.insert(All.end(), Problems.begin(), Problems.end());
  }
  return All;
}

//===- ir/Function.h - Function (procedure) ---------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function: an instruction pool, a set of basic blocks, and a layout
/// order.  Control flow is expressed by branch targets plus layout
/// fall-through, matching the paper's RS/6000 pseudo-code; explicit edge
/// lists are (re)derived on demand.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_FUNCTION_H
#define GIS_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Instruction.h"

#include <array>
#include <string>
#include <vector>

namespace gis {

/// A single function.  Blocks and instructions are stored in append-only
/// pools indexed by dense ids, so ids stay stable across scheduling
/// transformations.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Registers receiving the function's arguments (set by frontends; used
  /// by the interpreter to implement calls between module functions).
  const std::vector<Reg> &params() const { return ParamRegs; }
  void addParam(Reg R) {
    ParamRegs.push_back(R);
    noteReg(R);
  }

  /// Rewrites parameter \p K to live in register \p R (register allocation
  /// moves incoming values to their assigned physical registers).
  void setParam(size_t K, Reg R) {
    GIS_ASSERT(K < ParamRegs.size(), "parameter index out of range");
    ParamRegs[K] = R;
    noteReg(R);
  }

  //===--------------------------------------------------------------------===
  // Registers
  //===--------------------------------------------------------------------===

  /// Allocates a fresh symbolic register of the given class.
  Reg newReg(RegClass Class) {
    unsigned &Counter = RegCounters[static_cast<unsigned>(Class)];
    return Reg::make(Class, Counter++);
  }

  /// Number of symbolic registers allocated in \p Class.  Registers created
  /// by the parser/builder with explicit indices also advance this.
  unsigned numRegs(RegClass Class) const {
    return RegCounters[static_cast<unsigned>(Class)];
  }

  /// Tells the function that register \p R is in use (parser support, where
  /// register indices appear explicitly in the text).
  void noteReg(Reg R) {
    unsigned &Counter = RegCounters[static_cast<unsigned>(R.regClass())];
    if (R.index() >= Counter)
      Counter = R.index() + 1;
  }

  /// Rewinds the register counter of \p Class to exactly \p Count
  /// (checkpoint support: RegionSnapshot::restore discards registers
  /// allocated after the snapshot, which by construction are unreferenced
  /// once the snapshot's instructions are back in place).
  void setRegCount(RegClass Class, unsigned Count) {
    RegCounters[static_cast<unsigned>(Class)] = Count;
  }

  //===--------------------------------------------------------------------===
  // Blocks and layout
  //===--------------------------------------------------------------------===

  /// Creates a new block and appends it to the layout.
  BlockId createBlock(std::string Label);

  /// Creates a new block and inserts it into the layout right after
  /// \p After.
  BlockId createBlockAfter(BlockId After, std::string Label);

  BasicBlock &block(BlockId Id) {
    GIS_ASSERT(Id < Blocks.size(), "block id out of range");
    return Blocks[Id];
  }
  const BasicBlock &block(BlockId Id) const {
    GIS_ASSERT(Id < Blocks.size(), "block id out of range");
    return Blocks[Id];
  }

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  /// Emission/layout order of blocks.  Fall-through flows to the next
  /// layout entry.
  const std::vector<BlockId> &layout() const { return Layout; }
  std::vector<BlockId> &layout() { return Layout; }

  /// The entry block (first in layout).
  BlockId entry() const {
    GIS_ASSERT(!Layout.empty(), "function has no blocks");
    return Layout.front();
  }

  /// The block following \p Id in layout, or InvalidId if \p Id is last.
  BlockId layoutSuccessor(BlockId Id) const;

  //===--------------------------------------------------------------------===
  // Instructions
  //===--------------------------------------------------------------------===

  Instruction &instr(InstrId Id) {
    GIS_ASSERT(Id < Pool.size(), "instruction id out of range");
    return Pool[Id];
  }
  const Instruction &instr(InstrId Id) const {
    GIS_ASSERT(Id < Pool.size(), "instruction id out of range");
    return Pool[Id];
  }

  unsigned numInstrs() const { return static_cast<unsigned>(Pool.size()); }

  /// Appends \p I to block \p B; returns its id.
  InstrId appendInstr(BlockId B, Instruction I);

  /// Clones instruction \p Id into a fresh pool slot (not inserted into any
  /// block); used by loop unrolling and rotation.
  InstrId cloneInstr(InstrId Id);

  /// The terminator of \p B, or InvalidId if the block has none (pure
  /// fall-through block).
  InstrId terminatorOf(BlockId B) const;

  //===--------------------------------------------------------------------===
  // CFG
  //===--------------------------------------------------------------------===

  /// Rebuilds successor/predecessor lists from terminators and layout.
  /// Successor order convention: for a conditional branch, succs() lists
  /// the taken target first, then the fall-through.
  void recomputeCFG();

  /// Assigns Instruction::originalOrder by current layout and position.
  /// Called before scheduling so priority rule 7 ("pick the instruction that
  /// occurred first") reflects the incoming program text.
  void renumberOriginalOrder();

private:
  std::string Name;
  std::vector<Reg> ParamRegs;
  std::vector<Instruction> Pool;
  std::vector<BasicBlock> Blocks;
  std::vector<BlockId> Layout;
  std::array<unsigned, 3> RegCounters = {0, 0, 0};
};

} // namespace gis

#endif // GIS_IR_FUNCTION_H

//===- ir/Instruction.h - IR instruction ------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single pseudo-IR instruction.  Instructions live in a per-function pool
/// and are referenced by dense InstrIds, so the scheduler can move them
/// between basic blocks by editing block instruction lists without
/// invalidating references held by analyses.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_INSTRUCTION_H
#define GIS_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Register.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gis {

/// Dense index of an instruction within its Function's pool.
using InstrId = uint32_t;
/// Dense index of a basic block within its Function.
using BlockId = uint32_t;

/// Sentinel for "no instruction" / "no block".
constexpr uint32_t InvalidId = ~uint32_t(0);

/// One pseudo-IR instruction.
///
/// Operand conventions:
///  - Loads (L/LU/LF):   Defs = [dest (, base for LU)], Uses = [base],
///                       Imm = displacement.
///  - Stores (ST/STU/STF): Uses = [value, base], Defs = [base for STU],
///                       Imm = displacement.
///  - Compares (C/FC):   Defs = [cr], Uses = [a, b];  CI: Uses = [a], Imm.
///  - BT/BF:             Uses = [cr], Cond = tested bit, Target = block.
///  - CALL:              Callee = name, Uses = argument registers,
///                       Defs = optional result register.
///  - RET:               Uses = optional value register.
///  - SPILL/SPILLF:      Uses = [value], Imm = spill-slot id (no base reg).
///  - RELOAD/RELOADF:    Defs = [dest],  Imm = spill-slot id (no base reg).
class Instruction {
public:
  Instruction() = default;
  explicit Instruction(Opcode Op) : Op(Op) {}

  Opcode opcode() const { return Op; }
  void setOpcode(Opcode NewOp) { Op = NewOp; }

  const OpcodeInfo &info() const { return opcodeInfo(Op); }
  OpClass opClass() const { return info().Class; }
  bool isBranch() const { return info().IsBranch; }
  bool isTerminator() const { return info().IsTerminator; }
  bool touchesMemory() const { return info().TouchesMemory; }
  bool isLoad() const { return info().IsLoad; }
  bool isStore() const { return info().IsStore; }
  bool isCall() const { return Op == Opcode::CALL; }
  bool isSpillCode() const { return isSpillOpcode(Op); }

  /// True if the instruction may never be moved beyond its basic block
  /// (calls, branches, returns); paper Section 5.1.
  bool neverCrossesBlock() const { return info().NeverCrossBlock; }

  /// True if the instruction may never be scheduled speculatively (stores,
  /// trapping divides, calls, branches); paper Section 5.1.
  bool neverSpeculates() const { return info().NeverSpeculate; }

  std::vector<Reg> &defs() { return DefRegs; }
  const std::vector<Reg> &defs() const { return DefRegs; }
  std::vector<Reg> &uses() { return UseRegs; }
  const std::vector<Reg> &uses() const { return UseRegs; }

  int64_t imm() const { return Immediate; }
  void setImm(int64_t V) { Immediate = V; }

  CondBit cond() const { return Cond; }
  void setCond(CondBit C) { Cond = C; }

  BlockId target() const { return Target; }
  void setTarget(BlockId B) { Target = B; }

  const std::string &callee() const { return Callee; }
  void setCallee(std::string Name) { Callee = std::move(Name); }

  const std::string &comment() const { return Comment; }
  void setComment(std::string C) { Comment = std::move(C); }

  /// The base register of a memory access (the last use operand).  Spill
  /// code has no base register: slots are addressed by the immediate alone.
  Reg memBase() const {
    GIS_ASSERT(touchesMemory() && !isCall() && !isSpillCode() &&
                   !UseRegs.empty(),
               "memBase on a non-memory instruction");
    return UseRegs.back();
  }

  /// Original program order, assigned by Function::renumberOriginalOrder.
  /// Used as the final tie-break in the scheduling priority (rule 7).
  uint32_t originalOrder() const { return OrigOrder; }
  void setOriginalOrder(uint32_t N) { OrigOrder = N; }

  bool definesReg(Reg R) const {
    for (Reg D : DefRegs)
      if (D == R)
        return true;
    return false;
  }

  bool usesReg(Reg R) const {
    for (Reg U : UseRegs)
      if (U == R)
        return true;
    return false;
  }

private:
  Opcode Op = Opcode::NOP;
  std::vector<Reg> DefRegs;
  std::vector<Reg> UseRegs;
  int64_t Immediate = 0;
  CondBit Cond = CondBit::LT;
  BlockId Target = InvalidId;
  std::string Callee;
  std::string Comment;
  uint32_t OrigOrder = 0;
};

} // namespace gis

#endif // GIS_IR_INSTRUCTION_H

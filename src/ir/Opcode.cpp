//===- ir/Opcode.cpp - Opcode property tables -----------------------------===//

#include "ir/Opcode.h"

#include "support/Assert.h"

#include <array>

using namespace gis;

namespace {

constexpr OpcodeInfo makeInfo(std::string_view Name, OpClass Class,
                              bool IsBranch = false, bool IsTerminator = false,
                              bool TouchesMemory = false, bool IsLoad = false,
                              bool IsStore = false, bool NeverCrossBlock = false,
                              bool NeverSpeculate = false) {
  return OpcodeInfo{Name,   Class,  IsBranch,       IsTerminator,
                    TouchesMemory,  IsLoad, IsStore, NeverCrossBlock,
                    NeverSpeculate};
}

// Indexed by Opcode.  Kept in the exact order of the enum; checked by the
// unit tests against opcodeName round-trips.
const std::array<OpcodeInfo, NumOpcodes> InfoTable = {{
    makeInfo("LI", OpClass::FixedArith),
    makeInfo("LR", OpClass::FixedArith),
    makeInfo("AI", OpClass::FixedArith),
    makeInfo("A", OpClass::FixedArith),
    makeInfo("S", OpClass::FixedArith),
    makeInfo("MUL", OpClass::FixedArith),
    // DIV/REM trap on a zero divisor, so hoisting one above a guarding
    // branch could introduce a spurious trap: never speculate them.
    makeInfo("DIV", OpClass::FixedArith, false, false, false, false, false,
             false, /*NeverSpeculate=*/true),
    makeInfo("REM", OpClass::FixedArith, false, false, false, false, false,
             false, /*NeverSpeculate=*/true),
    makeInfo("AND", OpClass::FixedArith),
    makeInfo("OR", OpClass::FixedArith),
    makeInfo("XOR", OpClass::FixedArith),
    makeInfo("SL", OpClass::FixedArith),
    makeInfo("SR", OpClass::FixedArith),
    makeInfo("NEG", OpClass::FixedArith),
    makeInfo("L", OpClass::Load, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/true),
    makeInfo("LU", OpClass::Load, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/true),
    makeInfo("ST", OpClass::Store, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/false, /*IsStore=*/true, /*NeverCrossBlock=*/false,
             /*NeverSpeculate=*/true),
    makeInfo("STU", OpClass::Store, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/false, /*IsStore=*/true, /*NeverCrossBlock=*/false,
             /*NeverSpeculate=*/true),
    makeInfo("LF", OpClass::FloatLoad, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/true),
    makeInfo("STF", OpClass::FloatStore, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/false, /*IsStore=*/true, /*NeverCrossBlock=*/false,
             /*NeverSpeculate=*/true),
    makeInfo("FA", OpClass::FloatArith),
    makeInfo("FS", OpClass::FloatArith),
    makeInfo("FM", OpClass::FloatArith),
    makeInfo("FD", OpClass::FloatArith),
    makeInfo("FMA", OpClass::FloatArith),
    makeInfo("C", OpClass::FixCompare),
    makeInfo("CI", OpClass::FixCompare),
    makeInfo("FC", OpClass::FpCompare),
    makeInfo("B", OpClass::Branch, /*IsBranch=*/true, /*IsTerminator=*/true,
             false, false, false, /*NeverCrossBlock=*/true,
             /*NeverSpeculate=*/true),
    makeInfo("BT", OpClass::Branch, /*IsBranch=*/true, /*IsTerminator=*/true,
             false, false, false, /*NeverCrossBlock=*/true,
             /*NeverSpeculate=*/true),
    makeInfo("BF", OpClass::Branch, /*IsBranch=*/true, /*IsTerminator=*/true,
             false, false, false, /*NeverCrossBlock=*/true,
             /*NeverSpeculate=*/true),
    makeInfo("CALL", OpClass::Call, false, false, /*TouchesMemory=*/true,
             false, false, /*NeverCrossBlock=*/true, /*NeverSpeculate=*/true),
    makeInfo("RET", OpClass::Branch, false, /*IsTerminator=*/true, false,
             false, false, /*NeverCrossBlock=*/true, /*NeverSpeculate=*/true),
    // Spill code is emitted after scheduling; the post-allocation local
    // rescheduling pass may reorder it within a block (slot dependences are
    // tracked by MemDisambig), but it must never move across blocks or be
    // speculated: a slot is live exactly between its SPILL and RELOADs.
    makeInfo("SPILL", OpClass::Store, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/false, /*IsStore=*/true, /*NeverCrossBlock=*/true,
             /*NeverSpeculate=*/true),
    makeInfo("RELOAD", OpClass::Load, false, false, /*TouchesMemory=*/true,
             /*IsLoad=*/true, /*IsStore=*/false, /*NeverCrossBlock=*/true,
             /*NeverSpeculate=*/true),
    makeInfo("SPILLF", OpClass::FloatStore, false, false,
             /*TouchesMemory=*/true, /*IsLoad=*/false, /*IsStore=*/true,
             /*NeverCrossBlock=*/true, /*NeverSpeculate=*/true),
    makeInfo("RELOADF", OpClass::FloatLoad, false, false,
             /*TouchesMemory=*/true, /*IsLoad=*/true, /*IsStore=*/false,
             /*NeverCrossBlock=*/true, /*NeverSpeculate=*/true),
    makeInfo("NOP", OpClass::Other),
}};

} // namespace

const OpcodeInfo &gis::opcodeInfo(Opcode Op) {
  unsigned Index = static_cast<unsigned>(Op);
  GIS_ASSERT(Index < NumOpcodes, "opcode out of range");
  return InfoTable[Index];
}

std::string_view gis::opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

std::optional<Opcode> gis::parseOpcode(std::string_view Name) {
  for (unsigned I = 0; I != NumOpcodes; ++I)
    if (InfoTable[I].Name == Name)
      return static_cast<Opcode>(I);
  return std::nullopt;
}

std::string_view gis::condBitName(CondBit Bit) {
  switch (Bit) {
  case CondBit::LT:
    return "lt";
  case CondBit::GT:
    return "gt";
  case CondBit::EQ:
    return "eq";
  }
  gis_unreachable("invalid condition bit");
}

std::optional<CondBit> gis::parseCondBit(std::string_view Name) {
  if (Name == "lt")
    return CondBit::LT;
  if (Name == "gt")
    return CondBit::GT;
  if (Name == "eq")
    return CondBit::EQ;
  return std::nullopt;
}

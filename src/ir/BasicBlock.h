//===- ir/BasicBlock.h - Basic block ----------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: an ordered list of InstrIds plus cached CFG edges.  Edge
/// lists are derived from terminators and layout by Function::recomputeCFG.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_BASICBLOCK_H
#define GIS_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace gis {

/// A basic block.  Owns the ordered list of instruction ids; the
/// instructions themselves live in the Function's pool.
class BasicBlock {
public:
  BasicBlock() = default;
  BasicBlock(BlockId Id, std::string Label)
      : Id(Id), Label(std::move(Label)) {}

  BlockId id() const { return Id; }
  const std::string &label() const { return Label; }
  void setLabel(std::string L) { Label = std::move(L); }

  std::vector<InstrId> &instrs() { return InstrList; }
  const std::vector<InstrId> &instrs() const { return InstrList; }

  bool empty() const { return InstrList.empty(); }
  size_t size() const { return InstrList.size(); }

  /// CFG successors/predecessors; valid after Function::recomputeCFG.
  const std::vector<BlockId> &succs() const { return Successors; }
  const std::vector<BlockId> &preds() const { return Predecessors; }

  // CFG maintenance, used by Function only.
  void clearEdges() {
    Successors.clear();
    Predecessors.clear();
  }
  void addSucc(BlockId B) { Successors.push_back(B); }
  void addPred(BlockId B) { Predecessors.push_back(B); }

private:
  BlockId Id = InvalidId;
  std::string Label;
  std::vector<InstrId> InstrList;
  std::vector<BlockId> Successors;
  std::vector<BlockId> Predecessors;
};

} // namespace gis

#endif // GIS_IR_BASICBLOCK_H

//===- ir/Checkpoint.cpp - Function checkpoint/restore ---------------------===//

#include "ir/Checkpoint.h"

using namespace gis;

RegionSnapshot::RegionSnapshot(const Function &F, std::vector<BlockId> Bs)
    : Blocks(std::move(Bs)) {
  BlockInstrs.reserve(Blocks.size());
  for (BlockId B : Blocks) {
    BlockInstrs.push_back(F.block(B).instrs());
    for (InstrId Id : BlockInstrs.back())
      Instrs.emplace_back(Id, F.instr(Id));
  }
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    RegCounts[static_cast<unsigned>(C)] = F.numRegs(C);
}

void RegionSnapshot::restore(Function &F) const {
  for (unsigned K = 0; K != Blocks.size(); ++K)
    F.block(Blocks[K]).instrs() = BlockInstrs[K];
  for (const auto &[Id, Ins] : Instrs)
    F.instr(Id) = Ins;
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    F.setRegCount(C, RegCounts[static_cast<unsigned>(C)]);
}

void RegionSnapshot::applyTo(Function &F,
                             const std::function<Reg(Reg)> &RemapReg) const {
  for (unsigned K = 0; K != Blocks.size(); ++K)
    F.block(Blocks[K]).instrs() = BlockInstrs[K];
  for (const auto &[Id, Ins] : Instrs) {
    Instruction Copy = Ins;
    for (Reg &D : Copy.defs())
      D = RemapReg(D);
    for (Reg &U : Copy.uses())
      U = RemapReg(U);
    F.instr(Id) = std::move(Copy);
  }
}

static bool instructionsIdentical(const Instruction &A, const Instruction &B) {
  return A.opcode() == B.opcode() && A.defs() == B.defs() &&
         A.uses() == B.uses() && A.imm() == B.imm() && A.cond() == B.cond() &&
         A.target() == B.target() && A.callee() == B.callee() &&
         A.originalOrder() == B.originalOrder();
}

bool gis::functionsIdentical(const Function &A, const Function &B) {
  if (A.name() != B.name() || A.params() != B.params())
    return false;
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    if (A.numRegs(C) != B.numRegs(C))
      return false;
  if (A.numBlocks() != B.numBlocks() || A.numInstrs() != B.numInstrs() ||
      A.layout() != B.layout())
    return false;
  for (BlockId Blk = 0; Blk != A.numBlocks(); ++Blk) {
    if (A.block(Blk).label() != B.block(Blk).label() ||
        A.block(Blk).instrs() != B.block(Blk).instrs())
      return false;
  }
  for (InstrId I = 0; I != A.numInstrs(); ++I)
    if (!instructionsIdentical(A.instr(I), B.instr(I)))
      return false;
  return true;
}

//===- ir/Checkpoint.cpp - Function checkpoint/restore ---------------------===//

#include "ir/Checkpoint.h"

using namespace gis;

static bool instructionsIdentical(const Instruction &A, const Instruction &B) {
  return A.opcode() == B.opcode() && A.defs() == B.defs() &&
         A.uses() == B.uses() && A.imm() == B.imm() && A.cond() == B.cond() &&
         A.target() == B.target() && A.callee() == B.callee() &&
         A.originalOrder() == B.originalOrder();
}

bool gis::functionsIdentical(const Function &A, const Function &B) {
  if (A.name() != B.name() || A.params() != B.params())
    return false;
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    if (A.numRegs(C) != B.numRegs(C))
      return false;
  if (A.numBlocks() != B.numBlocks() || A.numInstrs() != B.numInstrs() ||
      A.layout() != B.layout())
    return false;
  for (BlockId Blk = 0; Blk != A.numBlocks(); ++Blk) {
    if (A.block(Blk).label() != B.block(Blk).label() ||
        A.block(Blk).instrs() != B.block(Blk).instrs())
      return false;
  }
  for (InstrId I = 0; I != A.numInstrs(); ++I)
    if (!instructionsIdentical(A.instr(I), B.instr(I)))
      return false;
  return true;
}

//===- ir/Checkpoint.cpp - Function checkpoint/restore ---------------------===//

#include "ir/Checkpoint.h"

#include "support/Assert.h"
#include "support/Hashing.h"

#include <iterator>

using namespace gis;

RegionSnapshot::RegionSnapshot(const Function &F, std::vector<BlockId> Bs)
    : Blocks(std::move(Bs)) {
  BlockInstrs.reserve(Blocks.size());
  for (BlockId B : Blocks) {
    BlockInstrs.push_back(F.block(B).instrs());
    for (InstrId Id : BlockInstrs.back())
      Instrs.emplace_back(Id, F.instr(Id));
  }
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    RegCounts[static_cast<unsigned>(C)] = F.numRegs(C);
}

void RegionSnapshot::restore(Function &F) const {
  for (unsigned K = 0; K != Blocks.size(); ++K)
    F.block(Blocks[K]).instrs() = BlockInstrs[K];
  for (const auto &[Id, Ins] : Instrs)
    F.instr(Id) = Ins;
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    F.setRegCount(C, RegCounts[static_cast<unsigned>(C)]);
}

void RegionSnapshot::applyTo(Function &F,
                             const std::function<Reg(Reg)> &RemapReg) const {
  for (unsigned K = 0; K != Blocks.size(); ++K)
    F.block(Blocks[K]).instrs() = BlockInstrs[K];
  for (const auto &[Id, Ins] : Instrs) {
    Instruction Copy = Ins;
    for (Reg &D : Copy.defs())
      D = RemapReg(D);
    for (Reg &U : Copy.uses())
      U = RemapReg(U);
    F.instr(Id) = std::move(Copy);
  }
}

DeltaCheckpoint::DeltaCheckpoint(const Function &F, bool Armed)
    : Src(&F), Armed(Armed) {
  if (!Armed)
    return;
  NumBlocks = F.numBlocks();
  NumInstrs = F.numInstrs();
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    RegCounts[static_cast<unsigned>(C)] = F.numRegs(C);
  BlockNoted.assign(NumBlocks, 0);
  InstrNoted.assign(NumInstrs, 0);
  Manifest = manifestOf(F);
}

void DeltaCheckpoint::noteBlock(BlockId B) {
  if (!Armed || BlockNoted[B])
    return;
  BlockNoted[B] = 1;
  SavedBlocks.emplace_back(B, Src->block(B).instrs());
}

void DeltaCheckpoint::noteInstr(InstrId I) {
  if (!Armed || InstrNoted[I])
    return;
  InstrNoted[I] = 1;
  SavedInstrs.emplace_back(I, Src->instr(I));
}

void DeltaCheckpoint::noteAllBlocks() {
  if (!Armed)
    return;
  for (BlockId B = 0; B != NumBlocks; ++B)
    noteBlock(B);
}

bool DeltaCheckpoint::dropOneRecordForTest() {
  for (auto It = SavedBlocks.rbegin(); It != SavedBlocks.rend(); ++It)
    if (It->second != Src->block(It->first).instrs()) {
      SavedBlocks.erase(std::next(It).base());
      return true; // BlockNoted stays set: the loss must not self-repair
    }
  for (auto It = SavedInstrs.rbegin(); It != SavedInstrs.rend(); ++It) {
    const Instruction &Cur = Src->instr(It->first);
    const Instruction &Saved = It->second;
    bool Same = Saved.opcode() == Cur.opcode() && Saved.defs() == Cur.defs() &&
                Saved.uses() == Cur.uses() && Saved.imm() == Cur.imm();
    if (!Same) {
      SavedInstrs.erase(std::next(It).base());
      return true;
    }
  }
  return false;
}

bool DeltaCheckpoint::restore(Function &F) const {
  GIS_ASSERT(Armed, "restore of an unarmed delta checkpoint");
  if (F.numBlocks() != NumBlocks || F.numInstrs() != NumInstrs)
    return false; // a transform grew the function: deltas cannot cover it
  for (const auto &[B, List] : SavedBlocks)
    F.block(B).instrs() = List;
  for (const auto &[Id, Ins] : SavedInstrs)
    F.instr(Id) = Ins;
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    F.setRegCount(C, RegCounts[static_cast<unsigned>(C)]);
  return manifestOf(F) == Manifest;
}

uint64_t DeltaCheckpoint::bytesSaved() const {
  uint64_t Bytes = 0;
  for (const auto &[B, List] : SavedBlocks) {
    (void)B;
    Bytes += List.size() * sizeof(InstrId) + sizeof(List);
  }
  for (const auto &[Id, Ins] : SavedInstrs) {
    (void)Id;
    Bytes += sizeof(Instruction) +
             (Ins.defs().size() + Ins.uses().size()) * sizeof(Reg) +
             Ins.callee().size();
  }
  return Bytes;
}

uint64_t DeltaCheckpoint::manifestOf(const Function &F) {
  HashBuilder H;
  H.addString(F.name());
  for (Reg P : F.params())
    H.addU32(P.key());
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    H.addU32(F.numRegs(C));
  H.addU32(F.numBlocks());
  H.addU32(F.numInstrs());
  for (BlockId B : F.layout())
    H.addU32(B);
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    H.addString(F.block(B).label());
    const std::vector<InstrId> &List = F.block(B).instrs();
    H.addU64(List.size());
    for (InstrId I : List)
      H.addU32(I);
  }
  for (InstrId I = 0; I != F.numInstrs(); ++I) {
    const Instruction &Ins = F.instr(I);
    H.addByte(static_cast<uint8_t>(Ins.opcode()));
    H.addU64(Ins.defs().size());
    for (Reg D : Ins.defs())
      H.addU32(D.key());
    H.addU64(Ins.uses().size());
    for (Reg U : Ins.uses())
      H.addU32(U.key());
    H.addU64(static_cast<uint64_t>(Ins.imm()));
    H.addByte(static_cast<uint8_t>(Ins.cond()));
    H.addU32(Ins.target());
    H.addString(Ins.callee());
    H.addU32(Ins.originalOrder());
  }
  return H.hash();
}

static bool instructionsIdentical(const Instruction &A, const Instruction &B) {
  return A.opcode() == B.opcode() && A.defs() == B.defs() &&
         A.uses() == B.uses() && A.imm() == B.imm() && A.cond() == B.cond() &&
         A.target() == B.target() && A.callee() == B.callee() &&
         A.originalOrder() == B.originalOrder();
}

bool gis::functionsIdentical(const Function &A, const Function &B) {
  if (A.name() != B.name() || A.params() != B.params())
    return false;
  for (RegClass C : {RegClass::GPR, RegClass::FPR, RegClass::CR})
    if (A.numRegs(C) != B.numRegs(C))
      return false;
  if (A.numBlocks() != B.numBlocks() || A.numInstrs() != B.numInstrs() ||
      A.layout() != B.layout())
    return false;
  for (BlockId Blk = 0; Blk != A.numBlocks(); ++Blk) {
    if (A.block(Blk).label() != B.block(Blk).label() ||
        A.block(Blk).instrs() != B.block(Blk).instrs())
      return false;
  }
  for (InstrId I = 0; I != A.numInstrs(); ++I)
    if (!instructionsIdentical(A.instr(I), B.instr(I)))
      return false;
  return true;
}

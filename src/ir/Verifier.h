//===- ir/Verifier.h - IR structural verifier -------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for functions and modules: operand
/// shapes, terminator placement, branch targets, layout consistency.
/// Every scheduler transformation is verified in tests with this.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_VERIFIER_H
#define GIS_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace gis {

/// Returns a list of human-readable problems; empty means well-formed.
std::vector<std::string> verifyFunction(const Function &F);

/// Verifies every function of \p M.
std::vector<std::string> verifyModule(const Module &M);

/// Convenience: true if \p F is well-formed.
inline bool isWellFormed(const Function &F) { return verifyFunction(F).empty(); }

} // namespace gis

#endif // GIS_IR_VERIFIER_H

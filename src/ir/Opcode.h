//===- ir/Opcode.h - RS/6000-style pseudo-instruction opcodes --*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes of the GIS pseudo-IR.  The instruction set mirrors the RS/6000
/// pseudo-code used throughout the paper: a load/store RISC with fixed-point,
/// floating-point and branch instruction families, compares that write
/// condition registers, and branches that test single condition bits.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_IR_OPCODE_H
#define GIS_IR_OPCODE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace gis {

/// Instruction opcode.  Names follow the paper's pseudo-code (L, LU, C, BF,
/// BT, B, LR, AI, ...) extended with the ALU/float operations the mini-C
/// frontend and the synthetic workloads need.
enum class Opcode : uint8_t {
  // Fixed-point ALU.
  LI,   ///< rd = imm
  LR,   ///< rd = rs (register move; the paper's LR)
  AI,   ///< rd = rs + imm
  A,    ///< rd = ra + rb
  S,    ///< rd = ra - rb
  MUL,  ///< rd = ra * rb (multi-cycle)
  DIV,  ///< rd = ra / rb (multi-cycle; traps on zero divisor)
  REM,  ///< rd = ra % rb (multi-cycle; traps on zero divisor)
  AND,  ///< rd = ra & rb
  OR,   ///< rd = ra | rb
  XOR,  ///< rd = ra ^ rb
  SL,   ///< rd = ra << (imm & 63)
  SR,   ///< rd = ra >> (imm & 63), arithmetic
  NEG,  ///< rd = -ra

  // Memory access (fixed point).
  L,    ///< rd = mem[rb + imm]
  LU,   ///< rd = mem[rb + imm]; rb = rb + imm   (load with update)
  ST,   ///< mem[rb + imm] = rs
  STU,  ///< mem[rb + imm] = rs; rb = rb + imm   (store with update)

  // Floating point.
  LF,   ///< fd = mem[rb + imm]
  STF,  ///< mem[rb + imm] = fs
  FA,   ///< fd = fa + fb
  FS,   ///< fd = fa - fb
  FM,   ///< fd = fa * fb
  FD,   ///< fd = fa / fb
  FMA,  ///< fd = fa * fb + fc (fused multiply-add)

  // Compares (write a condition register).
  C,    ///< crd = compare(ra, rb)         (fixed point)
  CI,   ///< crd = compare(ra, imm)        (fixed point immediate)
  FC,   ///< crd = compare(fa, fb)         (floating point)

  // Branches and control.
  B,    ///< unconditional branch to target
  BT,   ///< branch to target if cond bit of crs is true
  BF,   ///< branch to target if cond bit of crs is false
  CALL, ///< call a named subroutine (memory barrier; never moved)
  RET,  ///< return from the function (optionally carrying a value register)

  // Register-allocator spill code (regalloc/LinearScan).  Spill slots are
  // compiler-private storage addressed by the immediate operand; they are
  // disjoint from user memory (interp/Interpreter keeps them out of the
  // observable heap) and from each other unless the slot ids match.
  SPILL,   ///< spill-slot[imm] = rs           (fixed point)
  RELOAD,  ///< rd = spill-slot[imm]           (fixed point)
  SPILLF,  ///< spill-slot[imm] = fs           (floating point)
  RELOADF, ///< fd = spill-slot[imm]           (floating point)

  NOP,  ///< no operation
};

/// Number of opcodes, for dense tables.
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::NOP) + 1;

/// True for the allocator's spill-code opcodes (SPILL/RELOAD and their
/// floating-point twins).  Spill slots live outside user memory, so memory
/// disambiguation treats spill ops as disjoint from every ordinary
/// load/store and keys spill-vs-spill conflicts on (class, slot id).
constexpr bool isSpillOpcode(Opcode Op) {
  return Op == Opcode::SPILL || Op == Opcode::RELOAD ||
         Op == Opcode::SPILLF || Op == Opcode::RELOADF;
}

/// True for RELOAD/RELOADF (the read side of a spill slot).
constexpr bool isReloadOpcode(Opcode Op) {
  return Op == Opcode::RELOAD || Op == Opcode::RELOADF;
}

/// Condition bit tested by BT/BF, matching the paper's 0x1/lt, 0x2/gt
/// annotations plus equality.
enum class CondBit : uint8_t { LT, GT, EQ };

/// Coarse classification used by the parametric machine description to
/// assign unit types and dependence delays (paper Section 2).
enum class OpClass : uint8_t {
  FixedArith, ///< single/multi-cycle fixed-point computation
  Load,       ///< fixed-point load (delayed load)
  Store,      ///< fixed-point store
  FloatArith, ///< floating-point computation
  FloatLoad,  ///< floating-point load
  FloatStore, ///< floating-point store
  FixCompare, ///< fixed-point compare (3-cycle delay to its branch)
  FpCompare,  ///< floating-point compare (5-cycle delay to its branch)
  Branch,     ///< branch-unit instruction
  Call,       ///< subroutine call (scheduling barrier)
  Other,      ///< NOP and friends
};

/// Static properties of an opcode.
struct OpcodeInfo {
  std::string_view Name;
  OpClass Class;
  bool IsBranch;          ///< B / BT / BF (has a CFG target)
  bool IsTerminator;      ///< ends a basic block (branches and RET)
  bool TouchesMemory;     ///< loads, stores and calls
  bool IsLoad;
  bool IsStore;
  bool NeverCrossBlock;   ///< never moved beyond its block (calls, branches)
  bool NeverSpeculate;    ///< never scheduled speculatively (stores, calls)
};

/// Returns the static property record for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Returns the textual mnemonic for \p Op.
std::string_view opcodeName(Opcode Op);

/// Parses a mnemonic; returns std::nullopt for unknown names.
std::optional<Opcode> parseOpcode(std::string_view Name);

/// Returns the textual name of a condition bit ("lt", "gt", "eq").
std::string_view condBitName(CondBit Bit);

/// Parses a condition bit name.
std::optional<CondBit> parseCondBit(std::string_view Name);

} // namespace gis

#endif // GIS_IR_OPCODE_H

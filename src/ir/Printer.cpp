//===- ir/Printer.cpp - Textual IR printing -------------------------------===//

#include "ir/Printer.h"

#include "support/Format.h"

#include <ostream>
#include <sstream>

using namespace gis;

namespace {

std::string memRef(const Instruction &I) {
  Reg Base = I.memBase();
  int64_t Disp = I.imm();
  if (Disp >= 0)
    return formatString("mem[%s + %lld]", Base.str().c_str(),
                        static_cast<long long>(Disp));
  return formatString("mem[%s - %lld]", Base.str().c_str(),
                      static_cast<long long>(-Disp));
}

std::string regList(const std::vector<Reg> &Regs) {
  std::string Out;
  for (size_t I = 0, E = Regs.size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += Regs[I].str();
  }
  return Out;
}

std::string targetLabel(const Function &F, BlockId Target) {
  GIS_ASSERT(Target != InvalidId, "branch without target");
  return F.block(Target).label();
}

} // namespace

std::string gis::instructionToString(const Function &F, InstrId Id) {
  const Instruction &I = F.instr(Id);
  std::string Body;
  std::string Name(opcodeName(I.opcode()));

  switch (I.opcode()) {
  case Opcode::LI:
    Body = formatString("%s %s = %lld", Name.c_str(), I.defs()[0].str().c_str(),
                        static_cast<long long>(I.imm()));
    break;
  case Opcode::LR:
  case Opcode::NEG:
    Body = formatString("%s %s = %s", Name.c_str(), I.defs()[0].str().c_str(),
                        I.uses()[0].str().c_str());
    break;
  case Opcode::AI:
  case Opcode::SL:
  case Opcode::SR:
    Body = formatString("%s %s = %s, %lld", Name.c_str(),
                        I.defs()[0].str().c_str(), I.uses()[0].str().c_str(),
                        static_cast<long long>(I.imm()));
    break;
  case Opcode::A:
  case Opcode::S:
  case Opcode::MUL:
  case Opcode::DIV:
  case Opcode::REM:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::FA:
  case Opcode::FS:
  case Opcode::FM:
  case Opcode::FD:
  case Opcode::FMA:
  case Opcode::C:
  case Opcode::FC:
    Body = formatString("%s %s = %s", Name.c_str(), I.defs()[0].str().c_str(),
                        regList(I.uses()).c_str());
    break;
  case Opcode::CI:
    Body = formatString("%s %s = %s, %lld", Name.c_str(),
                        I.defs()[0].str().c_str(), I.uses()[0].str().c_str(),
                        static_cast<long long>(I.imm()));
    break;
  case Opcode::L:
  case Opcode::LF:
    Body = formatString("%s %s = %s", Name.c_str(), I.defs()[0].str().c_str(),
                        memRef(I).c_str());
    break;
  case Opcode::LU:
    Body = formatString("%s %s, %s = %s", Name.c_str(),
                        I.defs()[0].str().c_str(), I.defs()[1].str().c_str(),
                        memRef(I).c_str());
    break;
  case Opcode::ST:
  case Opcode::STF:
  case Opcode::STU:
    Body = formatString("%s %s = %s", Name.c_str(), memRef(I).c_str(),
                        I.uses()[0].str().c_str());
    break;
  case Opcode::B:
    Body = formatString("%s %s", Name.c_str(),
                        targetLabel(F, I.target()).c_str());
    break;
  case Opcode::BT:
  case Opcode::BF:
    Body = formatString("%s %s, %s, %s", Name.c_str(),
                        targetLabel(F, I.target()).c_str(),
                        I.uses()[0].str().c_str(),
                        std::string(condBitName(I.cond())).c_str());
    break;
  case Opcode::CALL: {
    std::string Args = regList(I.uses());
    if (I.defs().empty())
      Body = formatString("CALL %s(%s)", I.callee().c_str(), Args.c_str());
    else
      Body = formatString("CALL %s = %s(%s)", I.defs()[0].str().c_str(),
                          I.callee().c_str(), Args.c_str());
    break;
  }
  case Opcode::RET:
    Body = I.uses().empty()
               ? std::string("RET")
               : formatString("RET %s", I.uses()[0].str().c_str());
    break;
  case Opcode::SPILL:
  case Opcode::SPILLF:
    Body = formatString("%s slot[%lld] = %s", Name.c_str(),
                        static_cast<long long>(I.imm()),
                        I.uses()[0].str().c_str());
    break;
  case Opcode::RELOAD:
  case Opcode::RELOADF:
    Body = formatString("%s %s = slot[%lld]", Name.c_str(),
                        I.defs()[0].str().c_str(),
                        static_cast<long long>(I.imm()));
    break;
  case Opcode::NOP:
    Body = "NOP";
    break;
  }

  if (!I.comment().empty())
    Body = padRight(Body, 36) + "; " + I.comment();
  return Body;
}

std::string gis::functionToString(const Function &F) {
  std::ostringstream OS;
  printFunction(F, OS);
  return OS.str();
}

void gis::printFunction(const Function &F, std::ostream &OS) {
  OS << "func " << F.name();
  if (!F.params().empty())
    OS << "(" << regList(F.params()) << ")";
  OS << " {\n";
  for (BlockId B : F.layout()) {
    const BasicBlock &BB = F.block(B);
    OS << BB.label() << ":\n";
    for (InstrId I : BB.instrs())
      OS << "  " << instructionToString(F, I) << "\n";
  }
  OS << "}\n";
}

std::string gis::moduleToString(const Module &M) {
  std::ostringstream OS;
  printModule(M, OS);
  return OS.str();
}

void gis::printModule(const Module &M, std::ostream &OS) {
  for (const GlobalArray &G : M.globals())
    OS << "global " << G.Name << "[" << G.SizeWords << "]\n";
  if (!M.globals().empty())
    OS << "\n";
  bool First = true;
  for (const auto &F : M.functions()) {
    if (!First)
      OS << "\n";
    First = false;
    printFunction(*F, OS);
  }
}

//===- ir/Function.cpp - Function implementation --------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace gis;

BlockId Function::createBlock(std::string Label) {
  BlockId Id = static_cast<BlockId>(Blocks.size());
  Blocks.emplace_back(Id, std::move(Label));
  Layout.push_back(Id);
  return Id;
}

BlockId Function::createBlockAfter(BlockId After, std::string Label) {
  BlockId Id = static_cast<BlockId>(Blocks.size());
  Blocks.emplace_back(Id, std::move(Label));
  auto It = std::find(Layout.begin(), Layout.end(), After);
  GIS_ASSERT(It != Layout.end(), "anchor block not in layout");
  Layout.insert(It + 1, Id);
  return Id;
}

BlockId Function::layoutSuccessor(BlockId Id) const {
  for (size_t I = 0, E = Layout.size(); I != E; ++I)
    if (Layout[I] == Id)
      return I + 1 < E ? Layout[I + 1] : InvalidId;
  gis_unreachable("block not in layout");
}

InstrId Function::appendInstr(BlockId B, Instruction I) {
  InstrId Id = static_cast<InstrId>(Pool.size());
  for (Reg D : I.defs())
    noteReg(D);
  for (Reg U : I.uses())
    noteReg(U);
  Pool.push_back(std::move(I));
  block(B).instrs().push_back(Id);
  return Id;
}

InstrId Function::cloneInstr(InstrId Id) {
  InstrId NewId = static_cast<InstrId>(Pool.size());
  Pool.push_back(Pool[Id]);
  return NewId;
}

InstrId Function::terminatorOf(BlockId B) const {
  const BasicBlock &BB = block(B);
  if (BB.empty())
    return InvalidId;
  InstrId Last = BB.instrs().back();
  return instr(Last).isTerminator() ? Last : InvalidId;
}

void Function::recomputeCFG() {
  for (BasicBlock &BB : Blocks)
    BB.clearEdges();

  for (size_t I = 0, E = Layout.size(); I != E; ++I) {
    BlockId B = Layout[I];
    BlockId Fall = I + 1 < E ? Layout[I + 1] : InvalidId;
    InstrId Term = terminatorOf(B);

    auto AddEdge = [&](BlockId To) {
      // Tolerate invalid targets (the verifier reports them); avoid
      // duplicate edges (a conditional branch whose target equals its
      // fall-through contributes a single CFG edge).
      if (To == InvalidId || To >= Blocks.size())
        return;
      for (BlockId S : block(B).succs())
        if (S == To)
          return;
      block(B).addSucc(To);
      block(To).addPred(B);
    };

    if (Term == InvalidId) {
      // Pure fall-through block.
      if (Fall != InvalidId)
        AddEdge(Fall);
      continue;
    }

    const Instruction &T = instr(Term);
    switch (T.opcode()) {
    case Opcode::B:
      AddEdge(T.target());
      break;
    case Opcode::BT:
    case Opcode::BF:
      // Taken target first, then fall-through (successor order convention).
      AddEdge(T.target());
      if (Fall != InvalidId)
        AddEdge(Fall);
      break;
    case Opcode::RET:
      break;
    default:
      gis_unreachable("unexpected terminator opcode");
    }
  }
}

void Function::renumberOriginalOrder() {
  uint32_t N = 0;
  for (BlockId B : Layout)
    for (InstrId I : block(B).instrs())
      instr(I).setOriginalOrder(N++);
}

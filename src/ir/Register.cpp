//===- ir/Register.cpp - Register printing --------------------------------===//

#include "ir/Register.h"

#include "support/Format.h"

using namespace gis;

std::string Reg::str() const {
  if (!isValid())
    return "<invalid>";
  switch (regClass()) {
  case RegClass::GPR:
    return formatString("r%u", index());
  case RegClass::FPR:
    return formatString("f%u", index());
  case RegClass::CR:
    return formatString("cr%u", index());
  }
  gis_unreachable("invalid register class");
}

//===- ir/Parser.cpp - Textual IR parsing ---------------------------------===//

#include "ir/Parser.h"

#include "ir/Verifier.h"
#include "support/Assert.h"
#include "support/Format.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <optional>

using namespace gis;

namespace {

/// Simple cursor over one instruction line.
class LineCursor {
public:
  explicit LineCursor(std::string_view Text) : Text(Text) {}

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view Word) {
    skipSpace();
    if (Text.substr(Pos, Word.size()) == Word) {
      size_t After = Pos + Word.size();
      if (After == Text.size() ||
          !std::isalnum(static_cast<unsigned char>(Text[After]))) {
        Pos = After;
        return true;
      }
    }
    return false;
  }

  /// Identifier: [A-Za-z_.][A-Za-z0-9_.]*
  std::optional<std::string> ident() {
    skipSpace();
    size_t Start = Pos;
    auto IsIdentChar = [](char C) {
      return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
             C == '.';
    };
    while (Pos < Text.size() && IsIdentChar(Text[Pos]))
      ++Pos;
    if (Pos == Start)
      return std::nullopt;
    return std::string(Text.substr(Start, Pos - Start));
  }

  std::optional<int64_t> integer() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == DigitsStart) {
      Pos = Start;
      return std::nullopt;
    }
    return std::stoll(std::string(Text.substr(Start, Pos - Start)));
  }

  std::string rest() {
    skipSpace();
    return std::string(Text.substr(Pos));
  }

private:
  std::string_view Text;
  size_t Pos = 0;
};

std::optional<Reg> parseReg(const std::string &Name) {
  auto Num = [](std::string_view S) -> std::optional<uint32_t> {
    if (S.empty())
      return std::nullopt;
    uint32_t V = 0;
    for (char C : S) {
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return std::nullopt;
      V = V * 10 + static_cast<uint32_t>(C - '0');
    }
    return V;
  };
  std::string_view S(Name);
  if (startsWith(S, "cr")) {
    if (auto N = Num(S.substr(2)))
      return Reg::cr(*N);
    return std::nullopt;
  }
  if (S.size() >= 2 && S[0] == 'r') {
    if (auto N = Num(S.substr(1)))
      return Reg::gpr(*N);
    return std::nullopt;
  }
  if (S.size() >= 2 && S[0] == 'f') {
    if (auto N = Num(S.substr(1)))
      return Reg::fpr(*N);
    return std::nullopt;
  }
  return std::nullopt;
}

/// Parser over the whole module text.
class ModuleParser {
public:
  explicit ModuleParser(std::string_view Text) : Text(Text) {}

  ParseResult run() {
    auto M = std::make_unique<Module>();
    std::vector<std::string_view> Lines = split(Text, '\n', true);

    Function *CurFunc = nullptr;
    // Per-function label bookkeeping for forward branch references.
    std::map<std::string, BlockId> Labels;
    struct PendingBranch {
      InstrId Instr;
      std::string Label;
      int Line;
    };
    std::vector<PendingBranch> Pending;
    BlockId CurBlock = InvalidId;

    auto FinishFunction = [&]() -> bool {
      for (const PendingBranch &P : Pending) {
        auto It = Labels.find(P.Label);
        if (It == Labels.end()) {
          Err = "unknown branch target '" + P.Label + "'";
          ErrLine = P.Line;
          return false;
        }
        CurFunc->instr(P.Instr).setTarget(It->second);
      }
      Pending.clear();
      Labels.clear();
      CurFunc->recomputeCFG();
      CurFunc->renumberOriginalOrder();
      CurFunc = nullptr;
      CurBlock = InvalidId;
      return true;
    };

    for (size_t LineNo = 0; LineNo != Lines.size(); ++LineNo) {
      CurLine = static_cast<int>(LineNo) + 1;
      std::string_view Raw = Lines[LineNo];
      // Strip comment.
      std::string Comment;
      if (size_t Semi = Raw.find(';'); Semi != std::string_view::npos) {
        Comment = std::string(trim(Raw.substr(Semi + 1)));
        Raw = Raw.substr(0, Semi);
      }
      std::string_view Line = trim(Raw);
      if (Line.empty())
        continue;

      if (startsWith(Line, "global ")) {
        if (CurFunc)
          return fail("'global' inside a function");
        LineCursor C(Line.substr(7));
        auto Name = C.ident();
        if (!Name || !C.consume('['))
          return fail("malformed global declaration");
        auto Size = C.integer();
        if (!Size || !C.consume(']'))
          return fail("malformed global size");
        M->allocateGlobal(*Name, *Size);
        continue;
      }

      if (startsWith(Line, "func ")) {
        if (CurFunc)
          return fail("nested 'func'");
        LineCursor C(Line.substr(5));
        auto Name = C.ident();
        if (!Name)
          return fail("malformed function header (expected 'func NAME {')");
        CurFunc = &M->createFunction(*Name);
        // Optional parameter register list: func f(r0, r1) {
        if (C.consume('(')) {
          if (!C.consume(')')) {
            while (true) {
              auto RegName = C.ident();
              std::optional<Reg> R;
              if (RegName)
                R = parseReg(*RegName);
              if (!R)
                return fail("malformed parameter register");
              CurFunc->addParam(*R);
              if (C.consume(')'))
                break;
              if (!C.consume(','))
                return fail("expected ',' or ')' in parameter list");
            }
          }
        }
        if (!C.consume('{'))
          return fail("malformed function header (expected '{')");
        continue;
      }

      if (Line == "}") {
        if (!CurFunc)
          return fail("unmatched '}'");
        if (!FinishFunction())
          return ParseResult{nullptr, Err, ErrLine};
        continue;
      }

      if (!CurFunc)
        return fail("instruction outside a function");

      // Block label?
      if (endsWith(Line, ":")) {
        std::string Label(trim(Line.substr(0, Line.size() - 1)));
        if (Labels.count(Label))
          return fail("duplicate block label '" + Label + "'");
        CurBlock = CurFunc->createBlock(Label);
        Labels.emplace(Label, CurBlock);
        continue;
      }

      if (CurBlock == InvalidId)
        return fail("instruction before the first block label");

      std::string BranchLabel;
      InstrId Id;
      if (!parseInstr(*CurFunc, CurBlock, Line, Comment, BranchLabel, Id)) {
        if (Err.empty()) {
          // Punctuation-level failures (a missing '=' or ',') fall through
          // here without a specific message.
          Err = "malformed instruction '" + std::string(Line) + "'";
          ErrLine = CurLine;
        }
        return ParseResult{nullptr, Err, ErrLine};
      }
      if (!BranchLabel.empty())
        Pending.push_back(PendingBranch{Id, BranchLabel, CurLine});
    }

    if (CurFunc)
      return fail("missing '}' at end of input");

    return ParseResult{std::move(M), "", 0};
  }

private:
  ParseResult fail(const std::string &Msg) {
    return ParseResult{nullptr, Msg, CurLine};
  }

  bool instrError(const std::string &Msg) {
    Err = Msg;
    ErrLine = CurLine;
    return false;
  }

  bool expectReg(LineCursor &C, Reg &Out) {
    auto Name = C.ident();
    if (!Name)
      return instrError("expected register");
    auto R = parseReg(*Name);
    if (!R)
      return instrError("malformed register '" + *Name + "'");
    Out = *R;
    return true;
  }

  bool expectInt(LineCursor &C, int64_t &Out) {
    auto V = C.integer();
    if (!V)
      return instrError("expected integer");
    Out = *V;
    return true;
  }

  /// mem[rB + d] — leaves base and displacement in Out parameters.
  bool expectMemRef(LineCursor &C, Reg &Base, int64_t &Disp) {
    if (!C.consumeWord("mem") || !C.consume('['))
      return instrError("expected 'mem['");
    if (!expectReg(C, Base))
      return false;
    Disp = 0;
    if (C.consume('+')) {
      if (!expectInt(C, Disp))
        return false;
    } else if (C.consume('-')) {
      if (!expectInt(C, Disp))
        return false;
      Disp = -Disp;
    }
    if (!C.consume(']'))
      return instrError("expected ']'");
    return true;
  }

  /// slot[N] — a spill-slot reference (regalloc spill code).
  bool expectSlotRef(LineCursor &C, int64_t &Slot) {
    if (!C.consumeWord("slot") || !C.consume('['))
      return instrError("expected 'slot['");
    if (!expectInt(C, Slot))
      return false;
    if (!C.consume(']'))
      return instrError("expected ']'");
    return true;
  }

  bool parseInstr(Function &F, BlockId B, std::string_view Line,
                  std::string Comment, std::string &BranchLabel,
                  InstrId &OutId) {
    LineCursor C(Line);
    auto Mnemonic = C.ident();
    if (!Mnemonic)
      return instrError("expected instruction mnemonic");

    // Optional paper-style instruction tag: "I7: LR r30 = r12".
    if (C.consume(':')) {
      std::string Tag = *Mnemonic;
      Mnemonic = C.ident();
      if (!Mnemonic)
        return instrError("expected mnemonic after tag '" + Tag + ":'");
      if (Comment.empty())
        Comment = Tag;
    }

    auto Op = parseOpcode(*Mnemonic);
    if (!Op)
      return instrError("unknown mnemonic '" + *Mnemonic + "'");

    Instruction I(*Op);
    Reg R1, R2, R3;
    int64_t Imm = 0;

    switch (*Op) {
    case Opcode::LI:
      if (!expectReg(C, R1) || !C.consume('=') || !expectInt(C, Imm))
        return instrError("malformed LI (LI rD = imm)");
      I.defs() = {R1};
      I.setImm(Imm);
      break;
    case Opcode::LR:
    case Opcode::NEG:
      if (!expectReg(C, R1) || !C.consume('=') || !expectReg(C, R2))
        return false;
      I.defs() = {R1};
      I.uses() = {R2};
      break;
    case Opcode::AI:
    case Opcode::SL:
    case Opcode::SR:
    case Opcode::CI:
      if (!expectReg(C, R1) || !C.consume('=') || !expectReg(C, R2) ||
          !C.consume(',') || !expectInt(C, Imm))
        return false;
      I.defs() = {R1};
      I.uses() = {R2};
      I.setImm(Imm);
      break;
    case Opcode::A:
    case Opcode::S:
    case Opcode::MUL:
    case Opcode::DIV:
    case Opcode::REM:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::FA:
    case Opcode::FS:
    case Opcode::FM:
    case Opcode::FD:
    case Opcode::C:
    case Opcode::FC:
      if (!expectReg(C, R1) || !C.consume('=') || !expectReg(C, R2) ||
          !C.consume(',') || !expectReg(C, R3))
        return false;
      I.defs() = {R1};
      I.uses() = {R2, R3};
      break;
    case Opcode::FMA: {
      Reg R4;
      if (!expectReg(C, R1) || !C.consume('=') || !expectReg(C, R2) ||
          !C.consume(',') || !expectReg(C, R3) || !C.consume(',') ||
          !expectReg(C, R4))
        return false;
      I.defs() = {R1};
      I.uses() = {R2, R3, R4};
      break;
    }
    case Opcode::L:
    case Opcode::LF:
      if (!expectReg(C, R1) || !C.consume('='))
        return false;
      if (!expectMemRef(C, R2, Imm))
        return false;
      I.defs() = {R1};
      I.uses() = {R2};
      I.setImm(Imm);
      break;
    case Opcode::LU:
      if (!expectReg(C, R1) || !C.consume(',') || !expectReg(C, R2) ||
          !C.consume('='))
        return false;
      if (!expectMemRef(C, R3, Imm))
        return false;
      if (R2 != R3)
        return instrError("LU must update its base register");
      I.defs() = {R1, R2};
      I.uses() = {R3};
      I.setImm(Imm);
      break;
    case Opcode::ST:
    case Opcode::STF:
    case Opcode::STU:
      if (!expectMemRef(C, R1, Imm) || !C.consume('=') || !expectReg(C, R2))
        return false;
      I.uses() = {R2, R1};
      I.setImm(Imm);
      if (*Op == Opcode::STU)
        I.defs() = {R1};
      break;
    case Opcode::B: {
      auto Label = C.ident();
      if (!Label)
        return instrError("expected branch target label");
      BranchLabel = *Label;
      break;
    }
    case Opcode::BT:
    case Opcode::BF: {
      auto Label = C.ident();
      if (!Label || !C.consume(',') || !expectReg(C, R1) || !C.consume(','))
        return instrError("malformed branch (Bx LABEL, crS, cond)");
      auto CondName = C.ident();
      if (!CondName)
        return instrError("expected condition bit");
      auto Bit = parseCondBit(*CondName);
      if (!Bit)
        return instrError("unknown condition bit '" + *CondName + "'");
      BranchLabel = *Label;
      I.uses() = {R1};
      I.setCond(*Bit);
      break;
    }
    case Opcode::CALL: {
      // CALL name(args) | CALL rD = name(args)
      auto First = C.ident();
      if (!First)
        return instrError("malformed CALL");
      std::string Name;
      if (C.consume('=')) {
        auto Rd = parseReg(*First);
        if (!Rd)
          return instrError("malformed CALL result register");
        I.defs() = {*Rd};
        auto Callee = C.ident();
        if (!Callee)
          return instrError("expected callee name");
        Name = *Callee;
      } else {
        Name = *First;
      }
      I.setCallee(Name);
      if (!C.consume('('))
        return instrError("expected '(' after callee name");
      if (!C.consume(')')) {
        while (true) {
          Reg Arg;
          if (!expectReg(C, Arg))
            return false;
          I.uses().push_back(Arg);
          if (C.consume(')'))
            break;
          if (!C.consume(','))
            return instrError("expected ',' or ')' in CALL arguments");
        }
      }
      break;
    }
    case Opcode::RET:
      if (!C.atEnd()) {
        if (!expectReg(C, R1))
          return false;
        I.uses() = {R1};
      }
      break;
    case Opcode::SPILL:
    case Opcode::SPILLF:
      if (!expectSlotRef(C, Imm) || !C.consume('=') || !expectReg(C, R1))
        return instrError("malformed spill (SPILL slot[N] = rS)");
      I.uses() = {R1};
      I.setImm(Imm);
      break;
    case Opcode::RELOAD:
    case Opcode::RELOADF:
      if (!expectReg(C, R1) || !C.consume('=') || !expectSlotRef(C, Imm))
        return instrError("malformed reload (RELOAD rD = slot[N])");
      I.defs() = {R1};
      I.setImm(Imm);
      break;
    case Opcode::NOP:
      break;
    }

    if (!C.atEnd())
      return instrError("trailing characters: '" + C.rest() + "'");

    I.setComment(std::move(Comment));
    OutId = F.appendInstr(B, std::move(I));
    return true;
  }

  std::string_view Text;
  int CurLine = 0;
  std::string Err;
  int ErrLine = 0;
};

} // namespace

ParseResult gis::parseModule(std::string_view Text) {
  return ModuleParser(Text).run();
}

std::unique_ptr<Module> gis::parseModuleOrDie(std::string_view Text) {
  ParseResult R = parseModule(Text);
  if (!R.ok()) {
    std::fprintf(stderr, "IR parse error at line %d: %s\n", R.Line,
                 R.Error.c_str());
    std::abort();
  }
  std::vector<std::string> Problems = verifyModule(*R.M);
  if (!Problems.empty()) {
    for (const std::string &P : Problems)
      std::fprintf(stderr, "IR verify error: %s\n", P.c_str());
    std::abort();
  }
  return std::move(R.M);
}

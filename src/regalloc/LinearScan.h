//===- regalloc/LinearScan.h - Linear-scan register allocation --*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan register allocation over the scheduled IR, closing the gap
/// the paper leaves open: Section 2 schedules before allocation on
/// unbounded symbolic registers, and the shipping XL compiler then mapped
/// the result onto the finite RS/6000 register file and rescheduled.  This
/// allocator is per class (GPR/FPR/CR), Poletto-style: one coarse interval
/// per register (regalloc/LiveIntervals.h), intervals visited in start
/// order against an active list, spill-furthest-end heuristic, and
/// spill-everywhere rewriting (every def stores its slot, every use
/// reloads it) through reserved scratch registers at the top of each file.
///
/// Failure is a recoverable Status (the pipeline transaction rolls the
/// function back to symbolic registers): a condition-register interval
/// that would spill (there is no CR spill opcode; 8 CRs are ample), one
/// instruction needing more scratch registers than are reserved, or a
/// register file smaller than the scratch reservation.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_REGALLOC_LINEARSCAN_H
#define GIS_REGALLOC_LINEARSCAN_H

#include "ir/Function.h"
#include "machine/MachineDescription.h"
#include "support/Status.h"

namespace gis {

/// Scratch registers reserved per class (GPR, FPR, CR) at the top of the
/// register file, enough to reload every spilled operand of one
/// instruction: fixed-point ops read at most two registers, FMA reads
/// three floats, and condition registers never spill.
constexpr std::array<unsigned, 3> RegAllocScratch = {2, 3, 0};

/// Statistics of one allocation run.
struct RegAllocStats {
  unsigned IntervalsBuilt = 0;
  unsigned IntervalsSpilled = 0;
  unsigned SpillStores = 0;  ///< SPILL/SPILLF instructions emitted
  unsigned SpillReloads = 0; ///< RELOAD/RELOADF instructions emitted
  unsigned SpillSlots = 0;   ///< distinct spill slots used

  RegAllocStats &operator+=(const RegAllocStats &RHS) {
    IntervalsBuilt += RHS.IntervalsBuilt;
    IntervalsSpilled += RHS.IntervalsSpilled;
    SpillStores += RHS.SpillStores;
    SpillReloads += RHS.SpillReloads;
    SpillSlots += RHS.SpillSlots;
    return *this;
  }
};

/// Rewrites \p F onto the finite register files of \p MD: every symbolic
/// register becomes a physical register index below MD.numRegs(its class),
/// with spill code for intervals that did not get a register.  Parameters
/// are rewritten to their assigned homes (Function::params()); the
/// interpreter's call convention keys argument passing off params(), so
/// allocated and symbolic functions interoperate.  On failure \p F is left
/// partially rewritten -- callers run this inside a transaction and roll
/// back (sched/Pipeline.cpp stage "regalloc").
Status allocateRegisters(Function &F, const MachineDescription &MD,
                         RegAllocStats &Stats);

} // namespace gis

#endif // GIS_REGALLOC_LINEARSCAN_H

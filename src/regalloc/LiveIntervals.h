//===- regalloc/LiveIntervals.h - Live-interval construction ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live intervals over the scheduled IR, the input of the linear-scan
/// allocator (regalloc/LinearScan.h).  Instructions are numbered by layout
/// order (position 0 is the function entry, where parameters become live);
/// a register's interval is the smallest [Start, End] range covering every
/// def, every use, and -- via analysis/Liveness -- the span of every block
/// it is live into or out of.  One interval per register (Poletto-style
/// coarsening): the interval over-approximates liveness, never under-
/// approximates it, so two simultaneously-live registers always have
/// overlapping intervals (the property tests/regalloc_test.cpp checks).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_REGALLOC_LIVEINTERVALS_H
#define GIS_REGALLOC_LIVEINTERVALS_H

#include "ir/Function.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gis {

/// The live range of one symbolic register in linearized position space,
/// inclusive at both ends.
struct LiveInterval {
  Reg R;
  uint32_t Start = ~uint32_t(0);
  uint32_t End = 0;

  bool covers(uint32_t Pos) const { return Start <= Pos && Pos <= End; }
  bool overlaps(const LiveInterval &O) const {
    return Start <= O.End && O.Start <= End;
  }
};

/// Live intervals of every register referenced by a function.
class LiveIntervals {
public:
  /// Builds intervals for \p F.  The CFG must be up to date (liveness runs
  /// underneath).
  static LiveIntervals build(const Function &F);

  /// All intervals, ordered by (Start, register key) -- the scan order of
  /// the linear-scan allocator.
  const std::vector<LiveInterval> &intervals() const { return Intervals; }

  /// The interval of \p R, or null when \p R never occurs in the function.
  const LiveInterval *intervalFor(Reg R) const {
    auto It = IndexOfReg.find(R.key());
    return It == IndexOfReg.end() ? nullptr : &Intervals[It->second];
  }

  /// Linear position of instruction \p Id (1-based; 0 is the entry).
  uint32_t positionOf(InstrId Id) const { return PosOf[Id]; }

  /// [first, last] instruction positions of block \p B in layout order.
  std::pair<uint32_t, uint32_t> blockSpan(BlockId B) const {
    return BlockSpans[B];
  }

private:
  std::vector<LiveInterval> Intervals;
  std::unordered_map<uint32_t, size_t> IndexOfReg; ///< Reg::key -> index
  std::vector<uint32_t> PosOf;                     ///< per InstrId
  std::vector<std::pair<uint32_t, uint32_t>> BlockSpans; ///< per BlockId
};

} // namespace gis

#endif // GIS_REGALLOC_LIVEINTERVALS_H

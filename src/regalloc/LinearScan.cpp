//===- regalloc/LinearScan.cpp - Linear-scan register allocation ----------===//

#include "regalloc/LinearScan.h"

#include "regalloc/LiveIntervals.h"
#include "support/Format.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

using namespace gis;

namespace {

constexpr std::array<RegClass, 3> AllClasses = {RegClass::GPR, RegClass::FPR,
                                                RegClass::CR};

/// Where one symbolic register lives after allocation.
struct Assignment {
  bool Spilled = false;
  unsigned Phys = 0; ///< physical index (when !Spilled)
  unsigned Slot = 0; ///< spill slot (when Spilled)
};

using AssignmentMap = std::unordered_map<uint32_t, Assignment>;

/// The linear scan proper (Poletto & Sarkar): intervals in start order, an
/// active list sorted implicitly by scanning, lowest free register first,
/// spill-furthest-end when the file is exhausted.  CR intervals must never
/// spill -- there is no condition-register spill opcode.
Status scanClass(const LiveIntervals &LIV, RegClass C, unsigned NumRegs,
                 unsigned NumScratch, AssignmentMap &Assign,
                 unsigned &NextSlot, RegAllocStats &Stats) {
  if (NumRegs < NumScratch + (C == RegClass::CR ? 1 : 0))
    return Status::error(
        ErrorCode::RegAllocFailed,
        formatString("register file of class %u has %u registers, below the "
                     "%u-register scratch reservation",
                     static_cast<unsigned>(C), NumRegs, NumScratch));
  const unsigned K = NumRegs - NumScratch;

  struct ActiveEntry {
    LiveInterval IV;
    unsigned Phys;
  };
  std::vector<ActiveEntry> Active;
  std::vector<unsigned> Free;
  for (unsigned R = 0; R != K; ++R)
    Free.push_back(R);

  auto TakeLowestFree = [&]() {
    size_t Best = 0;
    for (size_t I = 1; I != Free.size(); ++I)
      if (Free[I] < Free[Best])
        Best = I;
    unsigned P = Free[Best];
    Free.erase(Free.begin() + Best);
    return P;
  };

  for (const LiveInterval &IV : LIV.intervals()) {
    if (IV.R.regClass() != C)
      continue;
    // Expire intervals that ended strictly before this one starts (ends
    // are inclusive: an interval ending where another starts still
    // conflicts, which keeps same-instruction def/use pairs apart).
    for (size_t A = 0; A != Active.size();) {
      if (Active[A].IV.End < IV.Start) {
        Free.push_back(Active[A].Phys);
        Active.erase(Active.begin() + A);
      } else {
        ++A;
      }
    }

    if (!Free.empty()) {
      unsigned P = TakeLowestFree();
      Assign[IV.R.key()] = Assignment{false, P, 0};
      Active.push_back(ActiveEntry{IV, P});
      continue;
    }

    if (C == RegClass::CR)
      return Status::error(ErrorCode::RegAllocFailed,
                           formatString("condition-register pressure exceeds "
                                        "the %u-register file",
                                        NumRegs));

    // Spill whichever ends furthest: the new interval, or the active one
    // whose register it then takes over.
    ActiveEntry *Furthest = nullptr;
    for (ActiveEntry &A : Active)
      if (!Furthest || A.IV.End > Furthest->IV.End ||
          (A.IV.End == Furthest->IV.End && A.IV.R.key() > Furthest->IV.R.key()))
        Furthest = &A;
    if (Furthest && Furthest->IV.End > IV.End) {
      Assign[IV.R.key()] = Assignment{false, Furthest->Phys, 0};
      Assign[Furthest->IV.R.key()] = Assignment{true, 0, NextSlot++};
      ++Stats.IntervalsSpilled;
      Furthest->IV = IV;
    } else {
      Assign[IV.R.key()] = Assignment{true, 0, NextSlot++};
      ++Stats.IntervalsSpilled;
    }
  }
  return Status::ok();
}

} // namespace

Status gis::allocateRegisters(Function &F, const MachineDescription &MD,
                              RegAllocStats &Stats) {
  F.recomputeCFG();
  LiveIntervals LIV = LiveIntervals::build(F);
  Stats.IntervalsBuilt += static_cast<unsigned>(LIV.intervals().size());

  AssignmentMap Assign;
  unsigned NextSlot = 0;
  for (unsigned C = 0; C != 3; ++C) {
    Status S = scanClass(LIV, AllClasses[C], MD.numRegs(AllClasses[C]),
                         RegAllocScratch[C], Assign, NextSlot, Stats);
    if (!S.isOk())
      return S;
  }
  Stats.SpillSlots += NextSlot;

  auto PhysReg = [](RegClass C, unsigned Index) { return Reg::make(C, Index); };
  auto ScratchReg = [&](RegClass C, unsigned N) {
    unsigned Cl = static_cast<unsigned>(C);
    return Reg::make(C, MD.numRegs(C) - RegAllocScratch[Cl] + N);
  };
  auto SpillOp = [](RegClass C) {
    return C == RegClass::FPR ? Opcode::SPILLF : Opcode::SPILL;
  };
  auto ReloadOp = [](RegClass C) {
    return C == RegClass::FPR ? Opcode::RELOADF : Opcode::RELOAD;
  };

  // Parameter homes.  Assigned parameters arrive directly in their
  // physical registers (the interpreter keys argument passing off
  // Function::params(), so no move is needed); spilled parameters arrive
  // in scratch registers and are stored to their slots at the very top of
  // the entry block.
  std::vector<Instruction> EntrySpills;
  std::array<unsigned, 3> ParamScratch = {0, 0, 0};
  for (size_t K = 0; K != F.params().size(); ++K) {
    Reg P = F.params()[K];
    const Assignment &A = Assign.at(P.key());
    unsigned Cl = static_cast<unsigned>(P.regClass());
    if (!A.Spilled) {
      F.setParam(K, PhysReg(P.regClass(), A.Phys));
      continue;
    }
    if (P.regClass() == RegClass::CR ||
        ParamScratch[Cl] >= RegAllocScratch[Cl])
      return Status::error(ErrorCode::RegAllocFailed,
                           formatString("%zu spilled parameters exceed the "
                                        "scratch reservation",
                                        K + 1));
    Reg S = ScratchReg(P.regClass(), ParamScratch[Cl]++);
    F.setParam(K, S);
    Instruction Sp(SpillOp(P.regClass()));
    Sp.uses() = {S};
    Sp.setImm(static_cast<int64_t>(A.Slot));
    EntrySpills.push_back(std::move(Sp));
    ++Stats.SpillStores;
  }

  // Rewrite every instruction: physical registers for assigned operands,
  // scratch registers plus RELOAD-before / SPILL-after for spilled ones.
  // Plan first, then touch the pool: appendInstr may reallocate it, so no
  // Instruction reference survives an append.
  for (BlockId B : F.layout()) {
    const std::vector<InstrId> Old = F.block(B).instrs();
    std::vector<InstrId> NewList;
    NewList.reserve(Old.size() + (B == F.entry() ? EntrySpills.size() : 0));
    if (B == F.entry())
      for (const Instruction &Sp : EntrySpills)
        NewList.push_back(F.appendInstr(B, Sp));

    for (InstrId Id : Old) {
      std::vector<Reg> NewUses, NewDefs;
      std::vector<Instruction> Reloads, Spills;
      {
        const Instruction &I = F.instr(Id);
        // Spilled uses reload into scratch registers in order of first
        // appearance; a register read twice reloads once.
        std::unordered_map<uint32_t, Reg> UseScratch;
        std::array<unsigned, 3> NextScratch = {0, 0, 0};
        for (Reg U : I.uses()) {
          const Assignment &A = Assign.at(U.key());
          if (!A.Spilled) {
            NewUses.push_back(PhysReg(U.regClass(), A.Phys));
            continue;
          }
          auto It = UseScratch.find(U.key());
          if (It == UseScratch.end()) {
            unsigned Cl = static_cast<unsigned>(U.regClass());
            if (NextScratch[Cl] >= RegAllocScratch[Cl])
              return Status::error(
                  ErrorCode::RegAllocFailed,
                  formatString("instruction reads more than %u spilled "
                               "registers of one class",
                               RegAllocScratch[Cl]));
            Reg S = ScratchReg(U.regClass(), NextScratch[Cl]++);
            It = UseScratch.emplace(U.key(), S).first;
            Instruction Re(ReloadOp(U.regClass()));
            Re.defs() = {S};
            Re.setImm(static_cast<int64_t>(A.Slot));
            Reloads.push_back(std::move(Re));
            ++Stats.SpillReloads;
          }
          NewUses.push_back(It->second);
        }

        for (Reg D : I.defs()) {
          const Assignment &A = Assign.at(D.key());
          if (!A.Spilled) {
            NewDefs.push_back(PhysReg(D.regClass(), A.Phys));
            continue;
          }
          unsigned Cl = static_cast<unsigned>(D.regClass());
          Reg S;
          auto It = UseScratch.find(D.key());
          if (It != UseScratch.end()) {
            // A def that is also a use keeps the use's scratch: mandatory
            // for LU/STU base updates (the verifier ties def and base
            // together) and natural for accumulators.
            S = It->second;
          } else if (NextScratch[Cl] < RegAllocScratch[Cl]) {
            S = ScratchReg(D.regClass(), NextScratch[Cl]++);
          } else {
            // All scratch registers of the class feed this instruction's
            // uses.  A single-def instruction reads every use before it
            // writes, so the def may safely overwrite the first one (LU,
            // the only multi-def opcode, has one use and never gets here).
            GIS_ASSERT(I.defs().size() == 1 && RegAllocScratch[Cl] > 0,
                       "scratch fallback needs a single-def instruction");
            S = ScratchReg(D.regClass(), 0);
          }
          NewDefs.push_back(S);
          Instruction Sp(SpillOp(D.regClass()));
          Sp.uses() = {S};
          Sp.setImm(static_cast<int64_t>(A.Slot));
          Spills.push_back(std::move(Sp));
          ++Stats.SpillStores;
        }
      }

      for (Instruction &Re : Reloads)
        NewList.push_back(F.appendInstr(B, std::move(Re)));
      {
        Instruction &I = F.instr(Id);
        I.uses() = std::move(NewUses);
        I.defs() = std::move(NewDefs);
      }
      NewList.push_back(Id);
      for (Instruction &Sp : Spills)
        NewList.push_back(F.appendInstr(B, std::move(Sp)));
    }
    F.block(B).instrs() = std::move(NewList);
  }

  // Register counters now describe the physical space: recount from the
  // rewritten operands (placed instructions and parameters only).
  for (RegClass C : AllClasses)
    F.setRegCount(C, 0);
  for (Reg P : F.params())
    F.noteReg(P);
  for (BlockId B : F.layout())
    for (InstrId Id : F.block(B).instrs()) {
      for (Reg D : F.instr(Id).defs())
        F.noteReg(D);
      for (Reg U : F.instr(Id).uses())
        F.noteReg(U);
    }

  F.recomputeCFG();
  return Status::ok();
}

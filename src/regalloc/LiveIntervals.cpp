//===- regalloc/LiveIntervals.cpp - Live-interval construction ------------===//

#include "regalloc/LiveIntervals.h"

#include "analysis/Liveness.h"

#include <algorithm>

using namespace gis;

LiveIntervals gis::LiveIntervals::build(const Function &F) {
  LiveIntervals LIV;
  LIV.PosOf.assign(F.numInstrs(), 0);
  LIV.BlockSpans.assign(F.numBlocks(), {0, 0});

  auto Extend = [&](Reg R, uint32_t Pos) {
    auto [It, Inserted] = LIV.IndexOfReg.emplace(R.key(), LIV.Intervals.size());
    if (Inserted)
      LIV.Intervals.push_back(LiveInterval{R, Pos, Pos});
    LiveInterval &I = LIV.Intervals[It->second];
    I.Start = std::min(I.Start, Pos);
    I.End = std::max(I.End, Pos);
  };

  // Parameters become live at the entry (position 0), whether or not the
  // body ever reads them: the allocator must still give each incoming
  // value a distinct home.
  for (Reg P : F.params())
    Extend(P, 0);

  // Number instructions by layout order and extend over defs and uses.
  uint32_t Pos = 0;
  for (BlockId B : F.layout()) {
    uint32_t First = Pos + 1;
    for (InstrId Id : F.block(B).instrs()) {
      ++Pos;
      LIV.PosOf[Id] = Pos;
      const Instruction &I = F.instr(Id);
      for (Reg D : I.defs())
        Extend(D, Pos);
      for (Reg U : I.uses())
        Extend(U, Pos);
    }
    // An empty block spans the gap position; conservative either way.
    LIV.BlockSpans[B] = {First, std::max(First, Pos)};
  }

  // Liveness across block boundaries: a register live into a block is live
  // from the block's first position; live out of it, to its last.
  Liveness LV = Liveness::compute(F);
  for (BlockId B : F.layout()) {
    auto [First, Last] = LIV.BlockSpans[B];
    for (Reg R : LV.liveInRegs(B))
      Extend(R, First);
    for (Reg R : LV.liveOutRegs(B))
      Extend(R, Last);
  }

  std::sort(LIV.Intervals.begin(), LIV.Intervals.end(),
            [](const LiveInterval &A, const LiveInterval &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              return A.R.key() < B.R.key();
            });
  for (size_t K = 0; K != LIV.Intervals.size(); ++K)
    LIV.IndexOfReg[LIV.Intervals[K].R.key()] = K;
  return LIV;
}

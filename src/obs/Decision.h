//===- obs/Decision.h - Scheduler decision log ------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision log behind `gisc --explain`: one record per instruction
/// the list-scheduling engine picked, carrying the candidate set it beat,
/// the Section 5.2 comparator rule that separated it from the best
/// runner-up, and the motion classification (own / useful / speculative).
///
/// Records are recorded into per-task buffers and merged along the same
/// deterministic paths as PipelineStats (region-index order within a wave,
/// input order across functions), so the rendered log is bit-identical for
/// every --jobs/--region-jobs width.  Collection is opt-in
/// (PipelineOptions::CollectDecisions); the default pipeline never
/// allocates a record.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OBS_DECISION_H
#define GIS_OBS_DECISION_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gis {
namespace obs {

struct CounterSet;

/// Motion classification of a picked instruction.
enum class MotionKind : uint8_t {
  Own,         ///< the target block's own instruction
  Useful,      ///< external pick from U(A)
  Speculative, ///< external pick gambling on >= 1 branch
};

/// Which comparator separated the winner from the best runner-up.
enum class RuleId : uint8_t {
  None, ///< uncontested pick (single live candidate)
  UsefulOverSpec,
  SpecFreq,
  DelayUseful,
  DelaySpec,
  CritPathUseful,
  CritPathSpec,
  SourceOrder,
};

/// Stable short name ("class", "freq", "D/useful", ..., "order"; "-" for
/// None), used by the rendered log.
std::string_view ruleName(RuleId Rule);

/// One pick of the list-scheduling engine.
struct Decision {
  std::string Fn;          ///< function name (filled by the pipeline)
  const char *Stage = "";  ///< "global" or "local"
  int LoopIdx = -2;        ///< region loop index (-1 top level, -2 none)
  unsigned Wave = 0;       ///< region wave (global stage only)
  unsigned TargetBlock = 0;
  uint64_t Cycle = 0;
  unsigned Instr = 0;      ///< picked instruction id
  std::string Op;          ///< picked instruction mnemonic
  MotionKind Kind = MotionKind::Own;
  unsigned FromBlock = 0;  ///< home block at pick time (external picks)
  RuleId Rule = RuleId::None;
  /// The pick and every live candidate it outranked, best-first
  /// (instruction ids; the pick itself is Candidates.front()).  A
  /// higher-priority candidate stalled on a busy unit is not listed: the
  /// pick did not beat it by rule, it merely found a free unit first.
  std::vector<unsigned> Candidates;
};

/// Renders the human-readable `--explain` log, one line per decision, in
/// record order.  The format is covered by golden tests
/// (tests/trace_test.cpp); change it only together with the goldens.
void renderDecisions(const std::vector<Decision> &Log, std::ostream &OS);

/// Borrowed observation buffers handed down to the schedulers; any member
/// may be null (that aspect is then not recorded).
struct SchedSink {
  CounterSet *Counters = nullptr;
  std::vector<Decision> *Decisions = nullptr;
};

} // namespace obs
} // namespace gis

#endif // GIS_OBS_DECISION_H

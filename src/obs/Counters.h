//===- obs/Counters.h - Scheduler counters registry -------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counters registry of the observability subsystem: a fixed set of
/// named uint64 counters covering code motions by classification, the
/// Section 5.2 comparator-rule wins, the Section 5.3 live-on-exit guard,
/// and the transactional/caching machinery.  A CounterSet is a plain
/// value: schedulers bump a private set, the pipeline merges committed
/// deltas in deterministic (region-index, then input) order, so totals are
/// exact for every --jobs/--region-jobs width -- the same discipline
/// PipelineStats already follows.
///
/// Rule-win accounting: when an instruction is picked from a ready list
/// with at least two live candidates, exactly one of the seven rule
/// counters is bumped -- the first comparator (in the configured
/// PriorityOrder) that separates the winner from the best runner-up.  The
/// paper states the rules in pairs (1/2 class, 3/4 delay, 5/6 critical
/// path, 7 source order); within a pair the winner's class picks the odd
/// (useful) or even (speculative) member.  The profile tie-break among
/// speculative candidates is this repo's extension slot between rules 2
/// and 3 and is counted separately.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OBS_COUNTERS_H
#define GIS_OBS_COUNTERS_H

#include <array>
#include <cstdint>
#include <string_view>

namespace gis {
namespace obs {

/// Every counter of the registry.  Keep counterInfo() in Counters.cpp in
/// sync with this list.
enum class CounterId : unsigned {
  // Code motions by classification.
  MotionUseful,      ///< external pick from U(A) (rules 1/2 class "useful")
  MotionSpeculative, ///< external pick gambling on >= 1 branch
  MotionDuplication, ///< instructions replicated by join duplication

  // Comparator-rule wins (Section 5.2; see the header comment).
  RuleUsefulOverSpec, ///< rules 1/2: class separated the candidates
  RuleSpecFreq,       ///< profile tie-break among speculative candidates
  RuleDelayUseful,    ///< rule 3: D decided, winner useful
  RuleDelaySpec,      ///< rule 4: D decided, winner speculative
  RuleCritPathUseful, ///< rule 5: CP decided, winner useful
  RuleCritPathSpec,   ///< rule 6: CP decided, winner speculative
  RuleSourceOrder,    ///< rule 7: original program order decided

  // Pick accounting (the rule-win denominators).
  PicksContested,   ///< scheduled with >= 2 live candidates
  PicksUncontested, ///< scheduled as the only live candidate

  // Section 5.3 live-on-exit guard.
  SpecVetoLiveOut, ///< speculative motions rejected by the guard
  SpecRenames,     ///< motions rescued by register renaming

  // Transactions and caching.
  Rollbacks,   ///< region or whole-function transactions rolled back
  CacheHits,   ///< schedule-cache hits (engine path)
  CacheMisses, ///< schedule-cache misses (engine path)

  // Register allocation (regalloc/LinearScan; PipelineOptions::
  // AllocateRegisters).
  RegAllocIntervals,        ///< live intervals built (all classes)
  RegAllocSpilledIntervals, ///< intervals assigned a spill slot
  RegAllocSpillStores,      ///< SPILL/SPILLF instructions emitted
  RegAllocSpillReloads,     ///< RELOAD/RELOADF instructions emitted
  RegAllocFailures,         ///< allocation attempts rolled back

  // Mid-end optimizer (src/opt/; gisc -O1/-O2).
  OptPassesRun,         ///< optimizer pass transactions committed
  OptPeepholeRewrites,  ///< peephole rewrites applied
  OptStrengthReduced,   ///< multiplies/divides strength-reduced
  OptValuesNumbered,    ///< redundant expressions removed by GVN
  OptDceRemoved,        ///< dead instructions removed

  // Persistent (disk-backed) schedule cache (persist/DiskCache.h).
  PersistDiskHits,      ///< entries served from the cache directory
  PersistDiskMisses,    ///< disk lookups that found no usable entry
  PersistQuarantines,   ///< corrupt/skewed entries quarantined on load
  PersistWriteFailures, ///< entry writes that failed (degradation trigger)
  PersistEvictions,     ///< disk entries evicted by the size bound

  // Compile daemon (persist/Server.h; gisc --serve).
  ServeAccepted, ///< requests admitted to the queue
  ServeShed,     ///< requests rejected because the queue was full
  ServeTimeouts, ///< requests whose deadline expired before compile

  // Cold-path fast-path accounting (DESIGN.md section 14).  Arena bytes
  // and node counts describe the graphs built; the delta/full pairs split
  // incremental updates from recompute-from-scratch fallbacks, so the
  // incremental machinery's engagement is observable.
  ColdArenaBytes,          ///< bytes reserved by DDG arenas (all regions)
  ColdDdgNodes,            ///< DDG nodes built (all regions)
  ColdLivenessDelta,       ///< blocks re-solved by incremental liveness
  ColdLivenessFull,        ///< full liveness recomputations
  ColdHeurBlockRecomputes, ///< per-block D/CP refreshes (incremental path)
  ColdFastForwards,        ///< empty ready-list cycle ranges skipped

  // Cold-path incremental machinery, round two (DESIGN.md section 15):
  // the shared disambiguation cache, delta checkpoints, and the
  // block-scoped verifier.  The hit/miss pair exposes how often the
  // reachability/facts cache answered without a fresh solve; ckpt bytes
  // are what the delta checkpoints actually saved (vs. three full
  // function copies before); the verify pair shows scoped coverage.
  ColdDisambigCacheHits,   ///< disambig cache answers served from cache
  ColdDisambigCacheMisses, ///< disambig cache fresh solves
  ColdCkptBytes,           ///< bytes recorded by delta checkpoints
  ColdVerifyBlocksScoped,  ///< blocks actually verified by scoped sweeps
  ColdVerifyBlocksTotal,   ///< blocks in functions verified by scoped sweeps

  // Superblock formation (src/trace/; gisc --superblocks).
  TraceFormed,               ///< traces formed (>= 2 blocks)
  TraceBlocksClaimed,        ///< blocks claimed by formed traces
  TraceTailDupInstrs,        ///< instructions cloned by tail duplication
  TraceTruncated,            ///< traces cut short by the clone budget
  TraceSuperblocksScheduled, ///< single-entry traces scheduled as regions

  NumCounters
};

constexpr unsigned NumCounters =
    static_cast<unsigned>(CounterId::NumCounters);

// Namespace-level aliases so instrumentation sites read obs::MotionUseful
// rather than obs::CounterId::MotionUseful.
inline constexpr CounterId MotionUseful = CounterId::MotionUseful;
inline constexpr CounterId MotionSpeculative = CounterId::MotionSpeculative;
inline constexpr CounterId MotionDuplication = CounterId::MotionDuplication;
inline constexpr CounterId RuleUsefulOverSpec = CounterId::RuleUsefulOverSpec;
inline constexpr CounterId RuleSpecFreq = CounterId::RuleSpecFreq;
inline constexpr CounterId RuleDelayUseful = CounterId::RuleDelayUseful;
inline constexpr CounterId RuleDelaySpec = CounterId::RuleDelaySpec;
inline constexpr CounterId RuleCritPathUseful = CounterId::RuleCritPathUseful;
inline constexpr CounterId RuleCritPathSpec = CounterId::RuleCritPathSpec;
inline constexpr CounterId RuleSourceOrder = CounterId::RuleSourceOrder;
inline constexpr CounterId PicksContested = CounterId::PicksContested;
inline constexpr CounterId PicksUncontested = CounterId::PicksUncontested;
inline constexpr CounterId SpecVetoLiveOut = CounterId::SpecVetoLiveOut;
inline constexpr CounterId SpecRenames = CounterId::SpecRenames;
inline constexpr CounterId Rollbacks = CounterId::Rollbacks;
inline constexpr CounterId CacheHits = CounterId::CacheHits;
inline constexpr CounterId CacheMisses = CounterId::CacheMisses;
inline constexpr CounterId RegAllocIntervals = CounterId::RegAllocIntervals;
inline constexpr CounterId RegAllocSpilledIntervals =
    CounterId::RegAllocSpilledIntervals;
inline constexpr CounterId RegAllocSpillStores =
    CounterId::RegAllocSpillStores;
inline constexpr CounterId RegAllocSpillReloads =
    CounterId::RegAllocSpillReloads;
inline constexpr CounterId RegAllocFailures = CounterId::RegAllocFailures;
inline constexpr CounterId OptPassesRun = CounterId::OptPassesRun;
inline constexpr CounterId OptPeepholeRewrites = CounterId::OptPeepholeRewrites;
inline constexpr CounterId OptStrengthReduced = CounterId::OptStrengthReduced;
inline constexpr CounterId OptValuesNumbered = CounterId::OptValuesNumbered;
inline constexpr CounterId OptDceRemoved = CounterId::OptDceRemoved;
inline constexpr CounterId PersistDiskHits = CounterId::PersistDiskHits;
inline constexpr CounterId PersistDiskMisses = CounterId::PersistDiskMisses;
inline constexpr CounterId PersistQuarantines = CounterId::PersistQuarantines;
inline constexpr CounterId PersistWriteFailures =
    CounterId::PersistWriteFailures;
inline constexpr CounterId PersistEvictions = CounterId::PersistEvictions;
inline constexpr CounterId ServeAccepted = CounterId::ServeAccepted;
inline constexpr CounterId ServeShed = CounterId::ServeShed;
inline constexpr CounterId ServeTimeouts = CounterId::ServeTimeouts;
inline constexpr CounterId ColdArenaBytes = CounterId::ColdArenaBytes;
inline constexpr CounterId ColdDdgNodes = CounterId::ColdDdgNodes;
inline constexpr CounterId ColdLivenessDelta = CounterId::ColdLivenessDelta;
inline constexpr CounterId ColdLivenessFull = CounterId::ColdLivenessFull;
inline constexpr CounterId ColdHeurBlockRecomputes =
    CounterId::ColdHeurBlockRecomputes;
inline constexpr CounterId ColdFastForwards = CounterId::ColdFastForwards;
inline constexpr CounterId ColdDisambigCacheHits =
    CounterId::ColdDisambigCacheHits;
inline constexpr CounterId ColdDisambigCacheMisses =
    CounterId::ColdDisambigCacheMisses;
inline constexpr CounterId ColdCkptBytes = CounterId::ColdCkptBytes;
inline constexpr CounterId ColdVerifyBlocksScoped =
    CounterId::ColdVerifyBlocksScoped;
inline constexpr CounterId ColdVerifyBlocksTotal =
    CounterId::ColdVerifyBlocksTotal;
inline constexpr CounterId TraceFormed = CounterId::TraceFormed;
inline constexpr CounterId TraceBlocksClaimed = CounterId::TraceBlocksClaimed;
inline constexpr CounterId TraceTailDupInstrs = CounterId::TraceTailDupInstrs;
inline constexpr CounterId TraceTruncated = CounterId::TraceTruncated;
inline constexpr CounterId TraceSuperblocksScheduled =
    CounterId::TraceSuperblocksScheduled;

/// Stable machine-readable key of a counter ("motion.useful", "rule.delay_useful", ...).
std::string_view counterKey(CounterId Id);

/// Human-readable description for --stats.
std::string_view counterLabel(CounterId Id);

/// A plain, addable set of all registry counters.
struct CounterSet {
  std::array<uint64_t, NumCounters> V{};

  void bump(CounterId Id, uint64_t N = 1) {
    V[static_cast<unsigned>(Id)] += N;
  }
  uint64_t get(CounterId Id) const { return V[static_cast<unsigned>(Id)]; }

  /// Sum of the seven Section 5.2 rule-win counters.
  uint64_t ruleWinTotal() const {
    return get(CounterId::RuleUsefulOverSpec) + get(CounterId::RuleSpecFreq) +
           get(CounterId::RuleDelayUseful) + get(CounterId::RuleDelaySpec) +
           get(CounterId::RuleCritPathUseful) +
           get(CounterId::RuleCritPathSpec) + get(CounterId::RuleSourceOrder);
  }

  CounterSet &operator+=(const CounterSet &RHS) {
    for (unsigned K = 0; K != NumCounters; ++K)
      V[K] += RHS.V[K];
    return *this;
  }
  friend bool operator==(const CounterSet &A, const CounterSet &B) {
    return A.V == B.V;
  }
};

} // namespace obs
} // namespace gis

#endif // GIS_OBS_COUNTERS_H

//===- obs/Counters.cpp - Scheduler counters registry ----------------------===//

#include "obs/Counters.h"

#include "support/Assert.h"

using namespace gis;
using namespace gis::obs;

namespace {

struct CounterInfo {
  std::string_view Key;
  std::string_view Label;
};

/// Indexed by CounterId; keep in enum order.
constexpr CounterInfo Infos[NumCounters] = {
    {"motion.useful", "useful motions"},
    {"motion.speculative", "speculative motions"},
    {"motion.duplication", "duplicated instructions"},
    {"rule.useful_over_spec", "rule 1/2 wins (useful class)"},
    {"rule.spec_freq", "profile tie-break wins (spec frequency)"},
    {"rule.delay_useful", "rule 3 wins (D, useful)"},
    {"rule.delay_spec", "rule 4 wins (D, speculative)"},
    {"rule.cp_useful", "rule 5 wins (CP, useful)"},
    {"rule.cp_spec", "rule 6 wins (CP, speculative)"},
    {"rule.source_order", "rule 7 wins (source order)"},
    {"sched.picks_contested", "picks with >= 2 candidates"},
    {"sched.picks_uncontested", "picks with 1 candidate"},
    {"spec.veto_liveout", "live-on-exit guard rejections"},
    {"spec.renames", "renaming rescues"},
    {"tx.rollbacks", "transactions rolled back"},
    {"cache.hits", "schedule-cache hits"},
    {"cache.misses", "schedule-cache misses"},
    {"regalloc.intervals", "live intervals built"},
    {"regalloc.spilled_intervals", "intervals spilled"},
    {"regalloc.spill_stores", "spill stores emitted"},
    {"regalloc.spill_reloads", "spill reloads emitted"},
    {"regalloc.failures", "allocation attempts rolled back"},
    {"opt.passes_run", "optimizer pass transactions committed"},
    {"opt.peephole_rewrites", "peephole rewrites applied"},
    {"opt.strength_reduced", "multiplies/divides strength-reduced"},
    {"opt.values_numbered", "redundant expressions removed by GVN"},
    {"opt.dce_removed", "dead instructions removed"},
    {"persist.disk_hits", "disk-cache entries served"},
    {"persist.disk_misses", "disk-cache lookups missed"},
    {"persist.quarantines", "corrupt disk entries quarantined"},
    {"persist.write_failures", "disk entry writes failed"},
    {"persist.evictions", "disk entries evicted (size bound)"},
    {"serve.accepted", "daemon requests admitted"},
    {"serve.shed", "daemon requests shed (queue full)"},
    {"serve.timeouts", "daemon requests past deadline"},
    {"coldpath.arena_bytes", "bytes reserved by DDG arenas"},
    {"coldpath.ddg_nodes", "DDG nodes built"},
    {"coldpath.liveness_delta", "blocks re-solved by incremental liveness"},
    {"coldpath.liveness_full", "full liveness recomputations"},
    {"coldpath.heur_block_recomputes", "per-block D/CP refreshes"},
    {"coldpath.ready_fastforwards", "empty ready-list ranges skipped"},
    {"coldpath.disambig_cache_hits", "disambig cache hits"},
    {"coldpath.disambig_cache_misses", "disambig cache misses"},
    {"coldpath.ckpt_bytes", "bytes recorded by delta checkpoints"},
    {"coldpath.verify_blocks_scoped", "blocks verified by scoped sweeps"},
    {"coldpath.verify_blocks_total", "blocks in scoped-verified functions"},
    {"trace.formed", "superblock traces formed"},
    {"trace.blocks", "blocks claimed by traces"},
    {"trace.tail_dup_instrs", "instructions cloned by tail duplication"},
    {"trace.truncated", "traces truncated by the clone budget"},
    {"trace.superblocks_scheduled", "superblocks scheduled as regions"},
};

} // namespace

std::string_view obs::counterKey(CounterId Id) {
  GIS_ASSERT(static_cast<unsigned>(Id) < NumCounters, "counter id range");
  return Infos[static_cast<unsigned>(Id)].Key;
}

std::string_view obs::counterLabel(CounterId Id) {
  GIS_ASSERT(static_cast<unsigned>(Id) < NumCounters, "counter id range");
  return Infos[static_cast<unsigned>(Id)].Label;
}

//===- obs/StatsJson.cpp - Machine-readable statistics ---------------------===//

#include "obs/StatsJson.h"

#include "engine/CompileEngine.h"
#include "obs/Counters.h"
#include "sched/Pipeline.h"

#include <ostream>

using namespace gis;
using namespace gis::obs;

namespace {

void writeJsonString(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        const char *Hex = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xf] << Hex[C & 0xf];
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

/// Comma-managed emission of one JSON object's fields.
class ObjectWriter {
public:
  ObjectWriter(std::ostream &OS, const char *Indent) : OS(OS), Ind(Indent) {}

  std::ostream &key(std::string_view K) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n" << Ind;
    writeJsonString(OS, K);
    OS << ": ";
    return OS;
  }
  void field(std::string_view K, uint64_t V) { key(K) << V; }
  void fieldF(std::string_view K, double V) { key(K) << V; }
  void fieldStr(std::string_view K, std::string_view V) {
    writeJsonString(key(K), V);
  }
  void fieldBool(std::string_view K, bool V) {
    key(K) << (V ? "true" : "false");
  }

private:
  std::ostream &OS;
  const char *Ind;
  bool First = true;
};

void writeCounters(std::ostream &OS, const CounterSet &C,
                   const char *Indent) {
  OS << "{";
  ObjectWriter W(OS, Indent);
  for (unsigned K = 0; K != NumCounters; ++K)
    W.field(counterKey(static_cast<CounterId>(K)),
            C.get(static_cast<CounterId>(K)));
  OS << "\n" << (Indent + 2) << "}";
}

/// The PipelineStats scalars (everything --stats prints, minus the
/// variable-length diagnostics) as one JSON object.
void writePipelineFields(std::ostream &OS, const PipelineStats &S,
                         const char *Indent) {
  OS << "{";
  ObjectWriter W(OS, Indent);
  W.field("regions_scheduled", S.Global.RegionsScheduled);
  W.field("blocks_scheduled", S.Global.BlocksScheduled);
  W.field("useful_motions", S.Global.UsefulMotions);
  W.field("speculative_motions", S.Global.SpeculativeMotions);
  W.field("renames", S.Global.Renames);
  W.field("vetoed_speculations", S.Global.VetoedSpeculations);
  W.field("local_blocks_scheduled", S.Local.BlocksScheduled);
  W.field("local_blocks_reordered", S.Local.BlocksReordered);
  W.field("local_blocks_failed", S.Local.BlocksFailed);
  W.field("opt_passes_run", S.Opt.PassesRun);
  W.field("opt_peephole_rewrites", S.Opt.PeepholeRewrites);
  W.field("opt_strength_reduced", S.Opt.StrengthReduced);
  W.field("opt_values_numbered", S.Opt.ValuesNumbered);
  W.field("opt_dce_removed", S.Opt.DeadRemoved);
  W.field("loops_unrolled", S.LoopsUnrolled);
  W.field("loops_rotated", S.LoopsRotated);
  W.field("prerenamed_defs", S.PreRenamedDefs);
  W.field("duplicated_instrs", S.DuplicatedInstrs);
  W.field("traces_formed", S.TracesFormed);
  W.field("trace_blocks", S.TraceBlocks);
  W.field("tail_dup_instrs", S.TailDupInstrs);
  W.field("tail_dup_blocks", S.TailDupBlocks);
  W.field("traces_truncated", S.TracesTruncated);
  W.field("superblocks_scheduled", S.SuperblocksScheduled);
  W.field("regions_skipped_by_size", S.RegionsSkippedBySize);
  W.field("functions_skipped_irreducible", S.FunctionsSkippedIrreducible);
  W.field("region_waves", S.RegionWaves);
  W.field("region_tasks", static_cast<uint64_t>(S.RegionTimes.size()));
  W.field("transactions_run", S.TransactionsRun);
  W.field("regions_rolled_back", S.RegionsRolledBack);
  W.field("transforms_rolled_back", S.TransformsRolledBack);
  W.field("verifier_failures", S.VerifierFailures);
  W.field("oracle_mismatches", S.OracleMismatches);
  W.field("engine_failures", S.EngineFailures);
  W.field("faults_injected", S.FaultsInjected);
  W.field("pressure_peak_gpr", S.PressurePeak[0]);
  W.field("pressure_peak_fpr", S.PressurePeak[1]);
  W.field("pressure_peak_cr", S.PressurePeak[2]);
  W.field("regalloc_intervals", S.RegAlloc.IntervalsBuilt);
  W.field("regalloc_spilled_intervals", S.RegAlloc.IntervalsSpilled);
  W.field("regalloc_spill_stores", S.RegAlloc.SpillStores);
  W.field("regalloc_spill_reloads", S.RegAlloc.SpillReloads);
  W.field("regalloc_spill_slots", S.RegAlloc.SpillSlots);
  W.field("regalloc_failures", S.RegAllocFailures);
  W.field("diagnostics", static_cast<uint64_t>(S.Diags.size()));
  W.field("decisions", static_cast<uint64_t>(S.Decisions.size()));
  OS << "\n" << (Indent + 2) << "}";
}

} // namespace

void obs::writePipelineStatsJson(std::ostream &OS, const PipelineStats &S,
                                 const ProfileData *Profile,
                                 const Function *ProfiledEntry) {
  OS << "{\n  \"schema\": \"gis-stats-v1\",\n  \"pipeline\": ";
  writePipelineFields(OS, S, "    ");
  OS << ",\n  \"counters\": ";
  writeCounters(OS, S.Counters, "    ");
  if (Profile && ProfiledEntry && Profile->hasFunction(ProfiledEntry->name())) {
    const Function &F = *ProfiledEntry;
    OS << ",\n  \"profile\": {\n    \"function\": ";
    writeJsonString(OS, F.name());
    OS << ",\n    \"blocks\": [";
    for (BlockId B = 0; B != F.numBlocks(); ++B)
      OS << (B ? ", " : "") << Profile->frequency(F, B);
    OS << "],\n    \"edges\": [";
    bool FirstEdge = true;
    for (const auto &[Key, Count] : Profile->edges(F.name())) {
      OS << (FirstEdge ? "" : ", ") << "{\"from\": " << (Key >> 32)
         << ", \"to\": " << (Key & 0xffffffffu) << ", \"count\": " << Count
         << "}";
      FirstEdge = false;
    }
    OS << "]\n  }";
  }
  OS << "\n}\n";
}

void obs::writeEngineReportJson(std::ostream &OS, const EngineReport &R) {
  OS << "{\n  \"schema\": \"gis-engine-stats-v1\",\n  \"engine\": {";
  {
    ObjectWriter W(OS, "    ");
    W.field("threads", static_cast<uint64_t>(R.Threads));
    W.field("functions_compiled", static_cast<uint64_t>(R.FunctionsCompiled));
    W.field("cache_hits", R.CacheHits);
    W.field("cache_misses", R.CacheMisses);
    W.field("disk_hits", R.DiskHits);
    W.field("disk_misses", R.DiskMisses);
    W.fieldF("wall_seconds", R.WallSeconds);
    W.fieldF("total_queue_wait_seconds", R.TotalQueueWaitSeconds);
    W.fieldF("total_compile_seconds", R.TotalCompileSeconds);
  }
  // Memory-tier view with per-shard occupancy/evictions, so hit
  // attribution between the tiers is debuggable from the JSON alone.
  OS << "\n  },\n  \"cache\": {";
  {
    ObjectWriter W(OS, "    ");
    W.field("size", R.MemCacheSize);
    W.field("capacity", R.MemCacheCapacity);
    W.field("hits", R.MemCache.Hits);
    W.field("misses", R.MemCache.Misses);
    W.field("insertions", R.MemCache.Insertions);
    W.field("evictions", R.MemCache.Evictions);
    W.key("shards") << "[";
    for (size_t K = 0; K != R.MemShards.size(); ++K)
      OS << (K ? ", " : "") << "{\"entries\": " << R.MemShards[K].Entries
         << ", \"evictions\": " << R.MemShards[K].Evictions << "}";
    OS << "]";
  }
  OS << "\n  },\n  \"persist\": {";
  {
    ObjectWriter W(OS, "    ");
    W.fieldBool("enabled", R.DiskEnabled);
    W.fieldBool("degraded", R.Disk.Degraded);
    W.field("disk_hits", R.Disk.Hits);
    W.field("disk_misses", R.Disk.Misses);
    W.field("inserts", R.Disk.Inserts);
    W.field("quarantines", R.Disk.Quarantines);
    W.field("write_failures", R.Disk.WriteFailures);
    W.field("read_failures", R.Disk.ReadFailures);
    W.field("evictions", R.Disk.Evictions);
  }
  OS << "\n  },\n  \"pipeline\": ";
  writePipelineFields(OS, R.Aggregate, "    ");
  OS << ",\n  \"counters\": ";
  writeCounters(OS, R.Aggregate.Counters, "    ");
  OS << ",\n  \"per_function\": [";
  for (size_t K = 0; K != R.PerFunction.size(); ++K) {
    const FunctionCompileResult &F = R.PerFunction[K];
    OS << (K ? ",\n    {" : "\n    {");
    ObjectWriter W(OS, "      ");
    W.fieldStr("item", F.Item);
    W.fieldStr("function", F.Function);
    W.fieldBool("cache_hit", F.CacheHit);
    W.fieldBool("disk_hit", F.DiskHit);
    W.fieldF("compile_seconds", F.CompileSeconds);
    OS << "\n    }";
  }
  OS << (R.PerFunction.empty() ? "]" : "\n  ]") << "\n}\n";
}

//===- obs/Trace.cpp - Structured event tracer -----------------------------===//

#include "obs/Trace.h"

#include <chrono>
#include <ostream>

using namespace gis;
using namespace gis::obs;

namespace {

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaping for the "detail" arg.
void writeJsonString(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        const char *Hex = "0123456789abcdef";
        OS << "\\u00" << Hex[(C >> 4) & 0xf] << Hex[C & 0xf];
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

} // namespace

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

void Tracer::enable() {
  std::lock_guard<std::mutex> Lock(Mu);
  Bufs.clear();
  EpochNs.store(steadyNowNs(), std::memory_order_relaxed);
  Gen.fetch_add(1, std::memory_order_release);
  On.store(true, std::memory_order_release);
}

void Tracer::disable() { On.store(false, std::memory_order_release); }

void Tracer::clear() {
  On.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(Mu);
  Bufs.clear();
  Gen.fetch_add(1, std::memory_order_release);
}

Tracer::ThreadBuf &Tracer::localBuf() {
  // One cached buffer pointer per thread, revalidated against the tracer
  // generation: enable()/clear() orphan all previous buffers, so a stale
  // pointer is never written again (the unique_ptrs were freed with the
  // registry; the generation check keeps us from touching them).
  struct Cache {
    uint64_t Gen = ~0ull;
    ThreadBuf *Buf = nullptr;
  };
  thread_local Cache C;
  uint64_t Current = Gen.load(std::memory_order_acquire);
  if (C.Gen != Current) {
    auto Buf = std::make_unique<ThreadBuf>();
    std::lock_guard<std::mutex> Lock(Mu);
    Buf->Tid = static_cast<unsigned>(Bufs.size());
    Bufs.push_back(std::move(Buf));
    C.Buf = Bufs.back().get();
    C.Gen = Current;
  }
  return *C.Buf;
}

void Tracer::record(char Ph, const char *Name, const char *Cat,
                    const char *A0K, int64_t A0, const char *A1K, int64_t A1,
                    std::string Detail) {
  ThreadBuf &Buf = localBuf();
  if (Buf.Events.size() >= MaxEventsPerThread) {
    ++Buf.Dropped;
    return;
  }
  TraceEvent E;
  E.Ph = Ph;
  E.Name = Name;
  E.Cat = Cat;
  E.TsNs = steadyNowNs() - EpochNs.load(std::memory_order_relaxed);
  E.Tid = Buf.Tid;
  E.Arg0Key = A0K;
  E.Arg0 = A0;
  E.Arg1Key = A1K;
  E.Arg1 = A1;
  E.Detail = std::move(Detail);
  Buf.Events.push_back(std::move(E));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> All;
  for (const auto &Buf : Bufs)
    All.insert(All.end(), Buf->Events.begin(), Buf->Events.end());
  return All;
}

uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t N = 0;
  for (const auto &Buf : Bufs)
    N += Buf->Dropped;
  return N;
}

void Tracer::exportChromeJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  OS << "{\"traceEvents\": [\n";
  bool First = true;
  uint64_t Dropped = 0;
  for (const auto &Buf : Bufs) {
    Dropped += Buf->Dropped;
    for (const TraceEvent &E : Buf->Events) {
      if (!First)
        OS << ",\n";
      First = false;
      OS << "  {\"ph\": \"" << E.Ph << "\", \"name\": ";
      writeJsonString(OS, E.Name);
      OS << ", \"cat\": ";
      writeJsonString(OS, E.Cat);
      // Chrome-trace timestamps are microseconds; keep sub-us precision.
      OS << ", \"pid\": 1, \"tid\": " << E.Tid << ", \"ts\": "
         << static_cast<double>(E.TsNs) / 1000.0;
      if (E.Ph == 'i')
        OS << ", \"s\": \"t\"";
      if (E.Arg0Key || E.Arg1Key || !E.Detail.empty()) {
        OS << ", \"args\": {";
        bool FirstArg = true;
        auto Arg = [&](const char *Key, int64_t Val) {
          if (!Key)
            return;
          if (!FirstArg)
            OS << ", ";
          FirstArg = false;
          writeJsonString(OS, Key);
          OS << ": " << Val;
        };
        Arg(E.Arg0Key, E.Arg0);
        Arg(E.Arg1Key, E.Arg1);
        if (!E.Detail.empty()) {
          if (!FirstArg)
            OS << ", ";
          OS << "\"detail\": ";
          writeJsonString(OS, E.Detail);
        }
        OS << "}";
      }
      OS << "}";
    }
  }
  // A truncated trace must not look complete: record drops as metadata.
  if (Dropped > 0) {
    if (!First)
      OS << ",\n";
    OS << "  {\"ph\": \"M\", \"name\": \"dropped_events\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"count\": "
       << Dropped << "}}";
  }
  OS << "\n]}\n";
}

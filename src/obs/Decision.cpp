//===- obs/Decision.cpp - Scheduler decision log ---------------------------===//

#include "obs/Decision.h"

#include "obs/Counters.h"
#include "support/Format.h"

#include <ostream>

using namespace gis;
using namespace gis::obs;

std::string_view obs::ruleName(RuleId Rule) {
  switch (Rule) {
  case RuleId::None:
    return "-";
  case RuleId::UsefulOverSpec:
    return "class";
  case RuleId::SpecFreq:
    return "freq";
  case RuleId::DelayUseful:
    return "D/useful";
  case RuleId::DelaySpec:
    return "D/spec";
  case RuleId::CritPathUseful:
    return "CP/useful";
  case RuleId::CritPathSpec:
    return "CP/spec";
  case RuleId::SourceOrder:
    return "order";
  }
  return "?";
}

void obs::renderDecisions(const std::vector<Decision> &Log,
                          std::ostream &OS) {
  for (const Decision &D : Log) {
    OS << D.Fn << " " << D.Stage;
    if (D.LoopIdx != -2)
      OS << " region "
         << (D.LoopIdx < 0 ? std::string("top") : std::to_string(D.LoopIdx));
    OS << " b" << D.TargetBlock << " cycle " << D.Cycle << ": pick i"
       << D.Instr << " " << D.Op;
    switch (D.Kind) {
    case MotionKind::Own:
      OS << " (own)";
      break;
    case MotionKind::Useful:
      OS << " (useful from b" << D.FromBlock << ")";
      break;
    case MotionKind::Speculative:
      OS << " (speculative from b" << D.FromBlock << ")";
      break;
    }
    OS << " rule=" << ruleName(D.Rule) << " cands=[";
    for (size_t K = 0; K != D.Candidates.size(); ++K)
      OS << (K ? " i" : "i") << D.Candidates[K];
    OS << "]\n";
  }
}

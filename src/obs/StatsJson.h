//===- obs/StatsJson.h - Machine-readable statistics ------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON emission of the pipeline / engine statistics plus the full obs
/// counter registry, behind `gisc --stats-json FILE`.  The output is a
/// single JSON object; counter entries are keyed by their stable registry
/// keys (obs/Counters.cpp), so downstream tooling never parses the
/// human-readable --stats text.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OBS_STATSJSON_H
#define GIS_OBS_STATSJSON_H

#include <iosfwd>

namespace gis {

struct PipelineStats;
struct EngineReport;
class ProfileData;
class Function;

namespace obs {

/// Writes one pipeline run's statistics ({"schema": "gis-stats-v1", ...}):
/// the PipelineStats scalars, the counter registry, and the per-region
/// times.  When \p Profile carries data for \p ProfiledEntry (gisc
/// --profile), a "profile" section surfaces its per-block execution
/// counts and per-edge branch counts.
void writePipelineStatsJson(std::ostream &OS, const PipelineStats &S,
                            const ProfileData *Profile = nullptr,
                            const Function *ProfiledEntry = nullptr);

/// Writes a batch-engine report ({"schema": "gis-engine-stats-v1", ...}):
/// engine scalars, the aggregate pipeline statistics and counter registry,
/// and one record per compiled function.
void writeEngineReportJson(std::ostream &OS, const EngineReport &R);

} // namespace obs
} // namespace gis

#endif // GIS_OBS_STATSJSON_H

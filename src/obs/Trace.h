//===- obs/Trace.h - Structured event tracer --------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-aware structured event tracer for the scheduling pipeline:
/// spans (begin/end pairs) for pipeline stages, region waves, region
/// tasks, blocks, and instant events for cycle-level list-scheduler steps,
/// exported as Chrome-trace JSON (`chrome://tracing`, Perfetto) via
/// `gisc --trace-json FILE`.
///
/// Performance contract:
///  - *Off* (the default), every record call is a single relaxed atomic
///    load and a branch -- no locks, no allocation.  Instrumentation may
///    therefore stay in hot scheduler loops unconditionally.
///  - *On*, each thread appends to its own buffer; the only lock is taken
///    once per (thread, enable-generation) to register the buffer.  Worker
///    threads of the region pools and the engine pool trace concurrently
///    without contention (scripts/check.sh runs the obs tests under TSan).
///
/// Zero-perturbation contract: the tracer only observes; enabling it never
/// changes a scheduling decision.  tests/trace_test.cpp asserts the
/// scheduled IR is bit-identical with tracing on and off.
///
/// Usage contract: enable(), disable(), clear() and the export routines
/// must be called from quiescent points (no pipeline running).  Spans are
/// closed by RAII (TraceSpan), so under that contract every 'B' event has
/// a matching 'E' on the same thread.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_OBS_TRACE_H
#define GIS_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gis {
namespace obs {

/// One recorded event.  Name and category are string literals (the
/// instrumentation points own them); Detail carries dynamic text such as
/// function names.
struct TraceEvent {
  char Ph = 'B';             ///< 'B' begin, 'E' end, 'i' instant
  const char *Name = "";
  const char *Cat = "";
  uint64_t TsNs = 0;         ///< nanoseconds since enable()
  unsigned Tid = 0;          ///< tracer-assigned thread index
  /// Up to two small integer args (INT64_MIN: absent).
  const char *Arg0Key = nullptr;
  int64_t Arg0 = 0;
  const char *Arg1Key = nullptr;
  int64_t Arg1 = 0;
  std::string Detail;        ///< optional "detail" string arg
};

/// The process-wide tracer.
class Tracer {
public:
  static Tracer &instance();

  /// Starts a fresh trace: drops previously collected events and opens a
  /// new registration generation (stale thread-local buffers from earlier
  /// generations are never written again).
  void enable();
  /// Stops recording.  Collected events stay readable until clear() or the
  /// next enable().
  void disable();
  void clear();

  bool enabled() const { return On.load(std::memory_order_relaxed); }

  void begin(const char *Name, const char *Cat,
             const char *Arg0Key = nullptr, int64_t Arg0 = 0,
             const char *Arg1Key = nullptr, int64_t Arg1 = 0,
             std::string Detail = {}) {
    if (enabled())
      record('B', Name, Cat, Arg0Key, Arg0, Arg1Key, Arg1, std::move(Detail));
  }
  void end(const char *Name, const char *Cat) {
    if (enabled())
      record('E', Name, Cat, nullptr, 0, nullptr, 0, {});
  }
  void instant(const char *Name, const char *Cat,
               const char *Arg0Key = nullptr, int64_t Arg0 = 0,
               const char *Arg1Key = nullptr, int64_t Arg1 = 0) {
    if (enabled())
      record('i', Name, Cat, Arg0Key, Arg0, Arg1Key, Arg1, {});
  }

  /// All collected events, per-thread streams concatenated in thread
  /// registration order (within a thread, program order).  Quiescent
  /// points only.
  std::vector<TraceEvent> snapshot() const;

  /// Writes the collected events as a Chrome-trace JSON object
  /// ({"traceEvents": [...]}); loads in chrome://tracing and Perfetto.
  void exportChromeJson(std::ostream &OS) const;

  /// Events dropped because a thread hit its buffer cap (reported in the
  /// export metadata as well -- a truncated trace must not look complete).
  uint64_t droppedEvents() const;

  /// Per-thread event cap (generous; a runaway cycle loop must not eat the
  /// host's memory).
  static constexpr size_t MaxEventsPerThread = 1u << 22;

private:
  Tracer() = default;

  struct ThreadBuf {
    unsigned Tid = 0;
    std::vector<TraceEvent> Events;
    uint64_t Dropped = 0;
  };

  void record(char Ph, const char *Name, const char *Cat, const char *A0K,
              int64_t A0, const char *A1K, int64_t A1, std::string Detail);
  ThreadBuf &localBuf();

  std::atomic<bool> On{false};
  std::atomic<uint64_t> Gen{0};
  std::atomic<uint64_t> EpochNs{0}; ///< steady-clock ns at enable()

  mutable std::mutex Mu; ///< guards Bufs (registration and snapshot)
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;
};

/// RAII span: emits 'B' on construction when tracing is on, and the
/// matching 'E' on destruction.  If tracing was off at construction the
/// span is inert, so spans never emit an unmatched 'E'.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat,
            const char *Arg0Key = nullptr, int64_t Arg0 = 0,
            const char *Arg1Key = nullptr, int64_t Arg1 = 0,
            std::string Detail = {})
      : Name(Name), Cat(Cat), Active(Tracer::instance().enabled()) {
    if (Active)
      Tracer::instance().begin(Name, Cat, Arg0Key, Arg0, Arg1Key, Arg1,
                               std::move(Detail));
  }
  ~TraceSpan() {
    if (Active)
      Tracer::instance().end(Name, Cat);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name;
  const char *Cat;
  bool Active;
};

} // namespace obs
} // namespace gis

#endif // GIS_OBS_TRACE_H

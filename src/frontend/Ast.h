//===- frontend/Ast.h - Mini-C abstract syntax tree -------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for mini-C.  Plain structs owned through
/// unique_ptr; a Kind discriminator selects the variant (the project
/// avoids RTTI, following the LLVM conventions).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_FRONTEND_AST_H
#define GIS_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gis {

//===----------------------------------------------------------------------===
// Expressions
//===----------------------------------------------------------------------===

/// Expression node kinds.
enum class ExprKind : uint8_t {
  Number,   ///< integer literal
  Var,      ///< scalar variable reference
  Index,    ///< array element a[e]
  Unary,    ///< -e or !e
  Binary,   ///< arithmetic / comparison / logical
  Call,     ///< f(args)
};

/// Binary operators (logical && / || short-circuit in codegen).
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  LogAnd,
  LogOr,
};

/// Unary operators.
enum class UnOp : uint8_t { Neg, Not };

/// One expression node.
struct Expr {
  ExprKind Kind;
  int Line = 0;

  int64_t Number = 0;            // Number
  std::string Name;              // Var / Index / Call
  UnOp UOp = UnOp::Neg;          // Unary
  BinOp BOp = BinOp::Add;        // Binary
  std::unique_ptr<Expr> Lhs;     // Unary operand / Binary lhs / Index expr
  std::unique_ptr<Expr> Rhs;     // Binary rhs
  std::vector<std::unique_ptr<Expr>> Args; // Call
};

//===----------------------------------------------------------------------===
// Statements
//===----------------------------------------------------------------------===

/// Statement node kinds.
enum class StmtKind : uint8_t {
  DeclScalar,  ///< int x;  or  int x = e;
  DeclArray,   ///< int a[N];
  AssignVar,   ///< x = e;
  AssignIndex, ///< a[i] = e;
  If,
  While,
  For,
  Return,
  Break,
  Continue,
  ExprStmt,    ///< e;  (e.g. a bare call)
  Block,
};

struct Stmt {
  StmtKind Kind;
  int Line = 0;

  std::string Name;                 // decls / assignments
  int64_t ArraySize = 0;            // DeclArray
  std::unique_ptr<Expr> Index;      // AssignIndex subscript
  std::unique_ptr<Expr> Value;      // initializer / rhs / condition / return
  std::unique_ptr<Stmt> Then;       // If then / While body / For body
  std::unique_ptr<Stmt> Else;       // If else
  std::unique_ptr<Stmt> ForInit;    // For
  std::unique_ptr<Stmt> ForStep;    // For
  std::vector<std::unique_ptr<Stmt>> Body; // Block
};

//===----------------------------------------------------------------------===
// Declarations
//===----------------------------------------------------------------------===

/// A function definition.
struct FuncDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::unique_ptr<Stmt> Body; // Block
  int Line = 0;
};

/// A whole translation unit.
struct Program {
  /// Global arrays: name -> size.
  std::vector<std::pair<std::string, int64_t>> GlobalArrays;
  std::vector<FuncDecl> Functions;
};

} // namespace gis

#endif // GIS_FRONTEND_AST_H

//===- frontend/CodeGen.cpp - Mini-C to IR code generation -----------------===//

#include "frontend/CodeGen.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Format.h"

#include <cstdio>
#include <optional>
#include <algorithm>
#include <map>
#include <vector>

using namespace gis;

namespace {

/// A named entity visible in some scope.
struct Symbol {
  enum class Kind { Scalar, Array } K = Kind::Scalar;
  Reg ScalarReg;       // Scalar
  int64_t ArrayBase = 0; // Array: base address in static memory
};

/// Thrown-free error channel: code generation aborts by setting Err and
/// unwinding through boolean returns.
struct CodeGenError {
  std::string Message;
  int Line = 0;
  bool Set = false;

  void set(const std::string &Msg, int Line_) {
    if (!Set) {
      Message = Msg;
      Line = Line_;
      Set = true;
    }
  }
};

/// Per-function code generator.
class FunctionCodeGen {
public:
  FunctionCodeGen(Module &M, Function &F, const FuncDecl &Decl,
                  CodeGenError &Err)
      : M(M), F(F), Decl(Decl), B(F), Err(Err) {}

  bool run() {
    BlockId Entry = F.createBlock("entry");
    B.setInsertBlock(Entry);
    pushScope();

    for (const std::string &P : Decl.Params) {
      Reg R = F.newReg(RegClass::GPR);
      F.addParam(R);
      if (!declareScalar(P, R, Decl.Line))
        return false;
    }

    if (!genStmt(*Decl.Body))
      return false;

    // Implicit "return 0" when control can reach the end.
    if (!Terminated)
      B.ret();

    popScope();
    F.recomputeCFG();
    F.renumberOriginalOrder();
    return true;
  }

private:
  //===--------------------------------------------------------------------===
  // Scopes and symbols
  //===--------------------------------------------------------------------===

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  bool declareScalar(const std::string &Name, Reg R, int Line) {
    if (Scopes.back().count(Name)) {
      Err.set("redeclaration of '" + Name + "'", Line);
      return false;
    }
    Symbol S;
    S.K = Symbol::Kind::Scalar;
    S.ScalarReg = R;
    Scopes.back().emplace(Name, S);
    return true;
  }

  bool declareArray(const std::string &Name, int64_t Base, int Line) {
    if (Scopes.back().count(Name)) {
      Err.set("redeclaration of '" + Name + "'", Line);
      return false;
    }
    Symbol S;
    S.K = Symbol::Kind::Array;
    S.ArrayBase = Base;
    Scopes.back().emplace(Name, S);
    return true;
  }

  std::optional<Symbol> lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    // Global arrays.
    for (const GlobalArray &G : M.globals())
      if (G.Name == Name) {
        Symbol S;
        S.K = Symbol::Kind::Array;
        S.ArrayBase = G.Address;
        return S;
      }
    return std::nullopt;
  }

  /// The register holding an array's base address, materialized once in
  /// the entry block (a single LI definition dominating all uses, which
  /// the memory disambiguator resolves).
  Reg arrayBaseReg(int64_t Base) {
    auto It = ArrayBaseRegs.find(Base);
    if (It != ArrayBaseRegs.end())
      return It->second;
    Reg R = F.newReg(RegClass::GPR);
    // Insert at the front of the entry block so the definition precedes
    // every use, including uses within the entry block itself.
    Instruction LI(Opcode::LI);
    LI.defs() = {R};
    LI.setImm(Base);
    LI.setComment("array base");
    InstrId Id = F.appendInstr(F.entry(), std::move(LI));
    std::vector<InstrId> &EntryInstrs = F.block(F.entry()).instrs();
    EntryInstrs.pop_back();
    EntryInstrs.insert(EntryInstrs.begin(), Id);
    ArrayBaseRegs.emplace(Base, R);
    return R;
  }

  //===--------------------------------------------------------------------===
  // Block plumbing
  //===--------------------------------------------------------------------===

  BlockId newBlock(const char *Hint) {
    return F.createBlock(formatString("%s%u", Hint, NextLabel++));
  }

  /// Starts emitting into \p NewBlock (which must be the layout successor
  /// of whatever falls into it, or only reached by explicit branches).
  void switchTo(BlockId NewBlock) {
    B.setInsertBlock(NewBlock);
    Terminated = false;
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  bool isComparison(BinOp Op) const {
    switch (Op) {
    case BinOp::Lt:
    case BinOp::Gt:
    case BinOp::Le:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne:
      return true;
    default:
      return false;
    }
  }

  /// Evaluates \p E into a register (a fresh temporary unless the value
  /// already lives in one).
  Reg genExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Number: {
      Reg R = F.newReg(RegClass::GPR);
      B.li(R, E.Number);
      return R;
    }
    case ExprKind::Var: {
      std::optional<Symbol> S = lookup(E.Name);
      if (!S || S->K != Symbol::Kind::Scalar) {
        Err.set("'" + E.Name + "' is not a scalar variable", E.Line);
        return Reg();
      }
      return S->ScalarReg;
    }
    case ExprKind::Index: {
      Reg Addr;
      int64_t Disp = 0;
      if (!genElementAddress(E, Addr, Disp))
        return Reg();
      Reg R = F.newReg(RegClass::GPR);
      B.load(R, Addr, Disp);
      return R;
    }
    case ExprKind::Unary: {
      if (E.UOp == UnOp::Neg) {
        Reg V = genExpr(*E.Lhs);
        if (!V.isValid())
          return Reg();
        Reg R = F.newReg(RegClass::GPR);
        B.neg(R, V);
        return R;
      }
      return materializeCond(E);
    }
    case ExprKind::Binary: {
      if (isComparison(E.BOp) || E.BOp == BinOp::LogAnd ||
          E.BOp == BinOp::LogOr)
        return materializeCond(E);
      Reg L = genExpr(*E.Lhs);
      if (!L.isValid())
        return Reg();
      // Constant right operand of +/-: use add-immediate.
      if ((E.BOp == BinOp::Add || E.BOp == BinOp::Sub) &&
          E.Rhs->Kind == ExprKind::Number) {
        Reg R = F.newReg(RegClass::GPR);
        int64_t Imm = E.BOp == BinOp::Add ? E.Rhs->Number : -E.Rhs->Number;
        B.ai(R, L, Imm);
        return R;
      }
      Reg RHS = genExpr(*E.Rhs);
      if (!RHS.isValid())
        return Reg();
      Reg R = F.newReg(RegClass::GPR);
      switch (E.BOp) {
      case BinOp::Add:
        B.add(R, L, RHS);
        break;
      case BinOp::Sub:
        B.sub(R, L, RHS);
        break;
      case BinOp::Mul:
        B.mul(R, L, RHS);
        break;
      case BinOp::Div:
        B.sdiv(R, L, RHS);
        break;
      case BinOp::Rem:
        B.srem(R, L, RHS);
        break;
      default:
        gis_unreachable("handled above");
      }
      return R;
    }
    case ExprKind::Call: {
      std::vector<Reg> Args;
      for (const auto &A : E.Args) {
        Reg R = genExpr(*A);
        if (!R.isValid())
          return Reg();
        Args.push_back(R);
      }
      Reg Result = F.newReg(RegClass::GPR);
      B.call(E.Name, std::move(Args), Result);
      return Result;
    }
    }
    gis_unreachable("invalid expression kind");
  }

  /// Evaluates \p E and leaves the value in \p Dest (used for variable
  /// assignment; each variable lives in one stable register, the paper's
  /// "max is kept in r30" convention).  Top-level arithmetic computes
  /// directly into the destination, so "i = i + 1" is a single AI.
  bool genExprInto(const Expr &E, Reg Dest) {
    if (E.Kind == ExprKind::Number) {
      B.li(Dest, E.Number);
      return true;
    }
    if (E.Kind == ExprKind::Unary && E.UOp == UnOp::Neg) {
      Reg V = genExpr(*E.Lhs);
      if (!V.isValid())
        return false;
      B.neg(Dest, V);
      return true;
    }
    if (E.Kind == ExprKind::Binary && !isComparison(E.BOp) &&
        E.BOp != BinOp::LogAnd && E.BOp != BinOp::LogOr) {
      Reg L = genExpr(*E.Lhs);
      if (!L.isValid())
        return false;
      if ((E.BOp == BinOp::Add || E.BOp == BinOp::Sub) &&
          E.Rhs->Kind == ExprKind::Number) {
        B.ai(Dest, L,
             E.BOp == BinOp::Add ? E.Rhs->Number : -E.Rhs->Number);
        return true;
      }
      Reg RHS = genExpr(*E.Rhs);
      if (!RHS.isValid())
        return false;
      switch (E.BOp) {
      case BinOp::Add:
        B.add(Dest, L, RHS);
        break;
      case BinOp::Sub:
        B.sub(Dest, L, RHS);
        break;
      case BinOp::Mul:
        B.mul(Dest, L, RHS);
        break;
      case BinOp::Div:
        B.sdiv(Dest, L, RHS);
        break;
      case BinOp::Rem:
        B.srem(Dest, L, RHS);
        break;
      default:
        gis_unreachable("handled above");
      }
      return true;
    }
    Reg V = genExpr(E);
    if (!V.isValid())
      return false;
    if (V != Dest)
      B.lr(Dest, V);
    return true;
  }

  /// Address of array element \p E (an Index expression): base register
  /// plus displacement.
  bool genElementAddress(const Expr &E, Reg &Base, int64_t &Disp) {
    std::optional<Symbol> S = lookup(E.Name);
    if (!S || S->K != Symbol::Kind::Array) {
      Err.set("'" + E.Name + "' is not an array", E.Line);
      return false;
    }
    Reg BaseReg = arrayBaseReg(S->ArrayBase);
    const Expr &Idx = *E.Lhs;
    if (Idx.Kind == ExprKind::Number) {
      Base = BaseReg;
      Disp = 4 * Idx.Number;
      return true;
    }
    Reg IdxReg = genExpr(Idx);
    if (!IdxReg.isValid())
      return false;
    Reg Scaled = F.newReg(RegClass::GPR);
    B.shl(Scaled, IdxReg, 2);
    Reg Addr = F.newReg(RegClass::GPR);
    B.add(Addr, BaseReg, Scaled);
    Base = Addr;
    Disp = 0;
    return true;
  }

  /// Materializes the truth value of \p E as 0/1 in a register: preload 1,
  /// branch to the join when the condition holds, overwrite with 0 on the
  /// fall-through path.
  Reg materializeCond(const Expr &E) {
    ensureOpenBlock();
    Reg R = F.newReg(RegClass::GPR);
    B.li(R, 1);
    BlockId DoneBlk = newBlock("cond.done");
    genCondBranch(E, DoneBlk, /*BranchWhenTrue=*/true);
    BlockId FalseBlk = newBlock("cond.false");
    moveBlockAfterCurrent(FalseBlk);
    switchTo(FalseBlk);
    B.li(R, 0);
    moveBlockAfterCurrent(DoneBlk);
    switchTo(DoneBlk);
    return R;
  }

  /// If the current block already ends with a branch (mid-condition code
  /// for short-circuit chains), opens a fresh fall-through block so
  /// subsequent emission is well-formed.
  void ensureOpenBlock() {
    if (F.terminatorOf(B.insertBlock()) == InvalidId)
      return;
    BlockId Cont = newBlock("cont");
    moveBlockAfterCurrent(Cont);
    switchTo(Cont);
  }

  /// Repositions \p Target in the layout right after the current insert
  /// block, making it the fall-through successor.
  void moveBlockAfterCurrent(BlockId Target) {
    std::vector<BlockId> &Layout = F.layout();
    auto It = std::find(Layout.begin(), Layout.end(), Target);
    GIS_ASSERT(It != Layout.end(), "block missing from layout");
    Layout.erase(It);
    auto Cur = std::find(Layout.begin(), Layout.end(), B.insertBlock());
    GIS_ASSERT(Cur != Layout.end(), "insert block missing from layout");
    Layout.insert(Cur + 1, Target);
  }

  /// Emits code so control branches to \p Target exactly when \p E is
  /// true (when \p BranchWhenTrue) or false (otherwise); control falls
  /// through in the opposite case.  May create intermediate blocks for
  /// short-circuit operators.
  bool genCondBranch(const Expr &E, BlockId Target, bool BranchWhenTrue) {
    ensureOpenBlock();

    // Constant conditions fold: branch unconditionally or fall through.
    if (E.Kind == ExprKind::Number) {
      if ((E.Number != 0) == BranchWhenTrue)
        B.br(Target);
      return true;
    }

    if (E.Kind == ExprKind::Unary && E.UOp == UnOp::Not)
      return genCondBranch(*E.Lhs, Target, !BranchWhenTrue);

    if (E.Kind == ExprKind::Binary && isComparison(E.BOp)) {
      Reg L = genExpr(*E.Lhs);
      if (!L.isValid())
        return false;
      Reg CRReg = F.newReg(RegClass::CR);
      if (E.Rhs->Kind == ExprKind::Number) {
        B.cmpi(CRReg, L, E.Rhs->Number);
      } else {
        Reg R = genExpr(*E.Rhs);
        if (!R.isValid())
          return false;
        B.cmp(CRReg, L, R);
      }
      emitCompareBranch(E.BOp, CRReg, Target, BranchWhenTrue);
      return true;
    }

    if (E.Kind == ExprKind::Binary &&
        (E.BOp == BinOp::LogAnd || E.BOp == BinOp::LogOr)) {
      bool IsAnd = E.BOp == BinOp::LogAnd;
      if (IsAnd != BranchWhenTrue) {
        // AND branching-when-false (or OR branching-when-true): both
        // operands branch to the same target.
        if (!genCondBranch(*E.Lhs, Target, BranchWhenTrue))
          return false;
        return genCondBranch(*E.Rhs, Target, BranchWhenTrue);
      }
      // AND branching-when-true (or OR when-false): the first operand
      // short-circuits around the second.
      BlockId Skip = newBlock(IsAnd ? "and.skip" : "or.skip");
      if (!genCondBranch(*E.Lhs, Skip, !BranchWhenTrue))
        return false;
      if (!genCondBranch(*E.Rhs, Target, BranchWhenTrue))
        return false;
      moveBlockAfterCurrent(Skip);
      switchTo(Skip);
      return true;
    }

    // General value: compare against zero.
    Reg V = genExpr(E);
    if (!V.isValid())
      return false;
    Reg CRReg = F.newReg(RegClass::CR);
    B.cmpi(CRReg, V, 0);
    // true means "not equal to zero".
    if (BranchWhenTrue)
      B.bf(CRReg, CondBit::EQ, Target);
    else
      B.bt(CRReg, CondBit::EQ, Target);
    return true;
  }

  /// Emits the BT/BF for a comparison whose CR value is in \p CRReg.
  void emitCompareBranch(BinOp Op, Reg CRReg, BlockId Target,
                         bool BranchWhenTrue) {
    // Map the comparison to (bit, polarity): the comparison is true when
    // <bit> has value <polarity>.
    CondBit Bit;
    bool Polarity;
    switch (Op) {
    case BinOp::Lt:
      Bit = CondBit::LT;
      Polarity = true;
      break;
    case BinOp::Gt:
      Bit = CondBit::GT;
      Polarity = true;
      break;
    case BinOp::Ge: // not less-than
      Bit = CondBit::LT;
      Polarity = false;
      break;
    case BinOp::Le: // not greater-than
      Bit = CondBit::GT;
      Polarity = false;
      break;
    case BinOp::Eq:
      Bit = CondBit::EQ;
      Polarity = true;
      break;
    case BinOp::Ne:
      Bit = CondBit::EQ;
      Polarity = false;
      break;
    default:
      gis_unreachable("not a comparison");
    }
    bool BranchOnSet = Polarity == BranchWhenTrue;
    if (BranchOnSet)
      B.bt(CRReg, Bit, Target);
    else
      B.bf(CRReg, Bit, Target);
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  /// True when \p S contains a 'continue' binding to the enclosing loop
  /// (nested loops capture their own).
  static bool containsContinue(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Continue:
      return true;
    case StmtKind::While:
    case StmtKind::For:
      return false; // inner loop owns its continues
    case StmtKind::Block:
      for (const auto &Child : S.Body)
        if (containsContinue(*Child))
          return true;
      return false;
    case StmtKind::If:
      return (S.Then && containsContinue(*S.Then)) ||
             (S.Else && containsContinue(*S.Else));
    default:
      return false;
    }
  }

  bool genStmt(const Stmt &S) {
    if (Err.Set)
      return false;
    switch (S.Kind) {
    case StmtKind::Block: {
      pushScope();
      for (const auto &Child : S.Body) {
        if (Terminated)
          break; // unreachable code after return/break/continue: dropped
        if (!genStmt(*Child)) {
          popScope();
          return false;
        }
      }
      popScope();
      return true;
    }
    case StmtKind::DeclScalar: {
      Reg R = F.newReg(RegClass::GPR);
      if (!declareScalar(S.Name, R, S.Line))
        return false;
      if (S.Value)
        return genExprInto(*S.Value, R);
      return true;
    }
    case StmtKind::DeclArray: {
      const GlobalArray &G = M.allocateGlobal(
          F.name() + "." + S.Name + formatString(".%u", NextLabel++),
          S.ArraySize);
      return declareArray(S.Name, G.Address, S.Line);
    }
    case StmtKind::AssignVar: {
      std::optional<Symbol> Sym = lookup(S.Name);
      if (!Sym || Sym->K != Symbol::Kind::Scalar) {
        Err.set("'" + S.Name + "' is not a scalar variable", S.Line);
        return false;
      }
      return genExprInto(*S.Value, Sym->ScalarReg);
    }
    case StmtKind::AssignIndex: {
      Expr IndexExpr;
      IndexExpr.Kind = ExprKind::Index;
      IndexExpr.Name = S.Name;
      IndexExpr.Line = S.Line;
      // Borrow the subscript without taking ownership.
      IndexExpr.Lhs = std::unique_ptr<Expr>(const_cast<Expr *>(S.Index.get()));
      Reg Base;
      int64_t Disp = 0;
      bool OK = genElementAddress(IndexExpr, Base, Disp);
      IndexExpr.Lhs.release(); // do not delete the borrowed node
      if (!OK)
        return false;
      Reg V = genExpr(*S.Value);
      if (!V.isValid())
        return false;
      B.store(V, Base, Disp);
      return true;
    }
    case StmtKind::If: {
      BlockId Join = newBlock("if.join");
      if (S.Else) {
        BlockId Else = newBlock("if.else");
        if (!genCondBranch(*S.Value, Else, /*BranchWhenTrue=*/false))
          return false;
        BlockId Then = newBlock("if.then");
        moveBlockAfterCurrent(Then);
        switchTo(Then);
        if (!genStmt(*S.Then))
          return false;
        if (!Terminated)
          B.br(Join);
        moveBlockAfterCurrent(Else);
        switchTo(Else);
        if (!genStmt(*S.Else))
          return false;
        moveBlockAfterCurrent(Join);
        if (!Terminated) {
          // fall through into Join
        }
        switchTo(Join);
        return true;
      }
      if (!genCondBranch(*S.Value, Join, /*BranchWhenTrue=*/false))
        return false;
      BlockId Then = newBlock("if.then");
      moveBlockAfterCurrent(Then);
      switchTo(Then);
      if (!genStmt(*S.Then))
        return false;
      moveBlockAfterCurrent(Join);
      switchTo(Join);
      return true;
    }
    case StmtKind::While: {
      // Loop inversion (guard + bottom test), the shape the paper's XL
      // compiler emits (Figure 2 is a bottom-test loop): the compare and
      // loop-closing branch stay in one block, where the delay heuristic
      // sees the compare->branch slots.  The condition is evaluated once
      // as an entry guard and once per iteration -- the same evaluation
      // sequence as the top-test form.
      BlockId Exit = newBlock("while.exit");
      if (!genCondBranch(*S.Value, Exit, /*BranchWhenTrue=*/false))
        return false;
      BlockId Body = newBlock("while.body");
      moveBlockAfterCurrent(Body);
      switchTo(Body);
      // 'continue' must re-test; give it a dedicated latch only when the
      // body actually uses it.
      bool HasContinue = containsContinue(*S.Then);
      BlockId Latch = HasContinue ? newBlock("while.latch") : InvalidId;
      LoopTargets.push_back({HasContinue ? Latch : InvalidId, Exit});
      bool OK = genStmt(*S.Then);
      LoopTargets.pop_back();
      if (!OK)
        return false;
      if (HasContinue) {
        moveBlockAfterCurrent(Latch);
        switchTo(Latch);
      }
      if (!Terminated &&
          !genCondBranch(*S.Value, Body, /*BranchWhenTrue=*/true))
        return false;
      moveBlockAfterCurrent(Exit);
      switchTo(Exit);
      return true;
    }
    case StmtKind::For: {
      // Same inversion as While; the step block doubles as the bottom
      // test (and as the 'continue' target), keeping increment + compare
      // + branch together like the paper's BL10.
      if (S.ForInit && !genStmt(*S.ForInit))
        return false;
      BlockId Exit = newBlock("for.exit");
      BlockId Step = newBlock("for.step");
      if (S.Value &&
          !genCondBranch(*S.Value, Exit, /*BranchWhenTrue=*/false))
        return false;
      BlockId Body = newBlock("for.body");
      moveBlockAfterCurrent(Body);
      switchTo(Body);
      LoopTargets.push_back({Step, Exit});
      bool OK = genStmt(*S.Then);
      LoopTargets.pop_back();
      if (!OK)
        return false;
      moveBlockAfterCurrent(Step);
      switchTo(Step);
      if (S.ForStep && !genStmt(*S.ForStep))
        return false;
      if (!Terminated) {
        if (S.Value) {
          if (!genCondBranch(*S.Value, Body, /*BranchWhenTrue=*/true))
            return false;
        } else {
          B.br(Body);
        }
      }
      moveBlockAfterCurrent(Exit);
      switchTo(Exit);
      return true;
    }
    case StmtKind::Return: {
      if (S.Value) {
        Reg V = genExpr(*S.Value);
        if (!V.isValid())
          return false;
        B.ret(V);
      } else {
        B.ret();
      }
      Terminated = true;
      return true;
    }
    case StmtKind::Break:
    case StmtKind::Continue: {
      if (LoopTargets.empty()) {
        Err.set(S.Kind == StmtKind::Break ? "'break' outside a loop"
                                          : "'continue' outside a loop",
                S.Line);
        return false;
      }
      BlockId Target = S.Kind == StmtKind::Break
                           ? LoopTargets.back().BreakTarget
                           : LoopTargets.back().ContinueTarget;
      GIS_ASSERT(Target != InvalidId,
                 "continue without a latch (containsContinue missed it)");
      B.br(Target);
      Terminated = true;
      return true;
    }
    case StmtKind::ExprStmt: {
      // Bare print(...) has no result; other calls and expressions
      // evaluate for side effects.
      if (S.Value->Kind == ExprKind::Call && S.Value->Name == "print") {
        std::vector<Reg> Args;
        for (const auto &A : S.Value->Args) {
          Reg R = genExpr(*A);
          if (!R.isValid())
            return false;
          Args.push_back(R);
        }
        B.call("print", std::move(Args));
        return true;
      }
      return genExpr(*S.Value).isValid();
    }
    }
    gis_unreachable("invalid statement kind");
  }

  struct LoopTarget {
    BlockId ContinueTarget;
    BlockId BreakTarget;
  };

  Module &M;
  Function &F;
  const FuncDecl &Decl;
  IRBuilder B;
  CodeGenError &Err;
  std::vector<std::map<std::string, Symbol>> Scopes;
  std::map<int64_t, Reg> ArrayBaseRegs;
  std::vector<LoopTarget> LoopTargets;
  bool Terminated = false;
  unsigned NextLabel = 0;
};

} // namespace

CompileResult gis::generateIR(const Program &Prog) {
  CompileResult Result;
  auto M = std::make_unique<Module>();
  CodeGenError Err;

  for (const auto &[Name, Size] : Prog.GlobalArrays)
    M->allocateGlobal(Name, Size);

  for (const FuncDecl &Decl : Prog.Functions) {
    Function &F = M->createFunction(Decl.Name);
    FunctionCodeGen Gen(*M, F, Decl, Err);
    if (!Gen.run()) {
      Result.Error = Err.Set ? Err.Message : "code generation failed";
      Result.Line = Err.Line;
      return Result;
    }
  }

  std::vector<std::string> Problems = verifyModule(*M);
  if (!Problems.empty()) {
    Result.Error = "internal: generated ill-formed IR: " + Problems.front();
    return Result;
  }
  Result.M = std::move(M);
  return Result;
}

CompileResult gis::compileMiniC(std::string_view Source) {
  MiniCParseResult Parsed = parseMiniC(Source);
  if (!Parsed.ok()) {
    CompileResult R;
    R.Error = Parsed.Error;
    R.Line = Parsed.Line;
    return R;
  }
  return generateIR(*Parsed.Prog);
}

std::unique_ptr<Module> gis::compileMiniCOrDie(std::string_view Source) {
  CompileResult R = compileMiniC(Source);
  if (!R.ok()) {
    std::fprintf(stderr, "mini-C compile error at line %d: %s\n", R.Line,
                 R.Error.c_str());
    std::abort();
  }
  return std::move(R.M);
}

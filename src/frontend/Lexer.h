//===- frontend/Lexer.h - Mini-C lexer --------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the mini-C language that feeds the GIS scheduler.  Mini-C is
/// the C subset the paper's examples are written in (Figure 1's minmax
/// compiles verbatim modulo declarations): int scalars and arrays, the
/// usual operators, if/else, while, for, break/continue, functions, and a
/// print builtin.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_FRONTEND_LEXER_H
#define GIS_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gis {

/// Token kinds of mini-C.
enum class TokKind : uint8_t {
  End,
  Identifier,
  Number,
  // Keywords.
  KwInt,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,     // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  Bang,
};

/// One token with its source line (1-based) for diagnostics.
struct Token {
  TokKind Kind;
  std::string Text; ///< identifier spelling
  int64_t Value = 0; ///< number value
  int Line = 0;
};

/// Result of lexing: tokens or an error.
struct LexResult {
  std::vector<Token> Tokens;
  std::string Error;
  int Line = 0;

  bool ok() const { return Error.empty(); }
};

/// Lexes \p Source.  Comments: // to end of line and /* ... */.
LexResult lexMiniC(std::string_view Source);

/// Returns a printable name of a token kind ("identifier", "'+'", ...).
std::string tokKindName(TokKind K);

} // namespace gis

#endif // GIS_FRONTEND_LEXER_H

//===- frontend/CodeGen.h - Mini-C to IR code generation --------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the mini-C AST to the RS/6000-style pseudo-IR, playing the role
/// of the XL compiler's front/middle-end in the paper's tool chain:
/// scalars live in symbolic registers (the unbounded pre-register-
/// allocation register file of Section 2), arrays in statically allocated
/// memory, conditions compile to compare + BT/BF pairs, and booleans
/// short-circuit — producing exactly the small-basic-block control flow
/// the global scheduler is designed for.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_FRONTEND_CODEGEN_H
#define GIS_FRONTEND_CODEGEN_H

#include "frontend/Ast.h"
#include "ir/Module.h"

#include <memory>
#include <string>

namespace gis {

/// Result of compiling mini-C source.
struct CompileResult {
  std::unique_ptr<Module> M;
  std::string Error;
  int Line = 0;

  bool ok() const { return M != nullptr; }
};

/// Lowers a parsed program to IR.
CompileResult generateIR(const Program &Prog);

/// One-call facade: parse + lower.
CompileResult compileMiniC(std::string_view Source);

/// Compiles source expected to be valid; aborts with diagnostics
/// otherwise.  Convenience for tests, examples and benchmarks.
std::unique_ptr<Module> compileMiniCOrDie(std::string_view Source);

} // namespace gis

#endif // GIS_FRONTEND_CODEGEN_H

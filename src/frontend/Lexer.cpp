//===- frontend/Lexer.cpp - Mini-C lexer -----------------------------------===//

#include "frontend/Lexer.h"

#include "support/Assert.h"

#include <cctype>
#include <map>

using namespace gis;

LexResult gis::lexMiniC(std::string_view Source) {
  LexResult Result;
  size_t Pos = 0;
  int Line = 1;

  static const std::map<std::string_view, TokKind> Keywords = {
      {"int", TokKind::KwInt},       {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},     {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},       {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},   {"continue", TokKind::KwContinue},
  };

  auto Fail = [&](std::string Msg) {
    Result.Error = std::move(Msg);
    Result.Line = Line;
    return Result;
  };

  auto Peek = [&](size_t Ahead = 0) -> char {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  };

  while (Pos < Source.size()) {
    char C = Source[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    // Comments.
    if (C == '/' && Peek(1) == '/') {
      while (Pos < Source.size() && Source[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && Peek(1) == '*') {
      Pos += 2;
      while (Pos < Source.size() &&
             !(Source[Pos] == '*' && Peek(1) == '/')) {
        if (Source[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      if (Pos >= Source.size())
        return Fail("unterminated block comment");
      Pos += 2;
      continue;
    }

    Token T;
    T.Line = Line;

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[Pos])) ||
              Source[Pos] == '_'))
        ++Pos;
      std::string_view Word = Source.substr(Start, Pos - Start);
      auto It = Keywords.find(Word);
      if (It != Keywords.end()) {
        T.Kind = It->second;
      } else {
        T.Kind = TokKind::Identifier;
        T.Text = std::string(Word);
      }
      Result.Tokens.push_back(std::move(T));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (Pos < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Source[Pos]))) {
        V = V * 10 + (Source[Pos] - '0');
        ++Pos;
      }
      T.Kind = TokKind::Number;
      T.Value = V;
      Result.Tokens.push_back(std::move(T));
      continue;
    }

    auto Two = [&](char Next, TokKind TwoKind, TokKind OneKind) {
      if (Peek(1) == Next) {
        T.Kind = TwoKind;
        Pos += 2;
      } else {
        T.Kind = OneKind;
        ++Pos;
      }
      Result.Tokens.push_back(T);
    };

    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case ')':
      T.Kind = TokKind::RParen;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '{':
      T.Kind = TokKind::LBrace;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '}':
      T.Kind = TokKind::RBrace;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '[':
      T.Kind = TokKind::LBracket;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case ']':
      T.Kind = TokKind::RBracket;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case ';':
      T.Kind = TokKind::Semi;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case ',':
      T.Kind = TokKind::Comma;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '+':
      T.Kind = TokKind::Plus;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '-':
      T.Kind = TokKind::Minus;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '*':
      T.Kind = TokKind::Star;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '/':
      T.Kind = TokKind::Slash;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '%':
      T.Kind = TokKind::Percent;
      ++Pos;
      Result.Tokens.push_back(T);
      break;
    case '=':
      Two('=', TokKind::EqEq, TokKind::Assign);
      break;
    case '<':
      Two('=', TokKind::Le, TokKind::Lt);
      break;
    case '>':
      Two('=', TokKind::Ge, TokKind::Gt);
      break;
    case '!':
      Two('=', TokKind::NotEq, TokKind::Bang);
      break;
    case '&':
      if (Peek(1) != '&')
        return Fail("expected '&&'");
      T.Kind = TokKind::AmpAmp;
      Pos += 2;
      Result.Tokens.push_back(T);
      break;
    case '|':
      if (Peek(1) != '|')
        return Fail("expected '||'");
      T.Kind = TokKind::PipePipe;
      Pos += 2;
      Result.Tokens.push_back(T);
      break;
    default:
      return Fail(std::string("unexpected character '") + C + "'");
    }
  }

  Token End;
  End.Kind = TokKind::End;
  End.Line = Line;
  Result.Tokens.push_back(std::move(End));
  return Result;
}

std::string gis::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::End:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  }
  gis_unreachable("invalid token kind");
}

//===- frontend/Parser.cpp - Mini-C parser ---------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Assert.h"

using namespace gis;

namespace {

/// Recursive-descent parser over the token stream.
class MiniCParser {
public:
  explicit MiniCParser(std::vector<Token> Tokens)
      : Tokens(std::move(Tokens)) {}

  MiniCParseResult run() {
    auto Prog = std::make_unique<Program>();
    while (!at(TokKind::End)) {
      if (!expect(TokKind::KwInt, "declarations start with 'int'"))
        return fail();
      if (!expect(TokKind::Identifier, "expected a name after 'int'"))
        return fail();
      Token Name = Cur;

      if (at(TokKind::LBracket)) {
        // Global array.
        advance();
        if (!expect(TokKind::Number, "expected array size"))
          return fail();
        Token Size = Cur;
        if (!expect(TokKind::RBracket, "expected ']'") ||
            !expect(TokKind::Semi, "expected ';'"))
          return fail();
        Prog->GlobalArrays.emplace_back(Name.Text, Size.Value);
        continue;
      }

      // Function.
      FuncDecl Fn;
      Fn.Name = Name.Text;
      Fn.Line = Name.Line;
      if (!expect(TokKind::LParen, "expected '(' after function name"))
        return fail();
      if (!at(TokKind::RParen)) {
        while (true) {
          if (!expect(TokKind::KwInt, "parameters are 'int NAME'"))
            return fail();
          if (!expect(TokKind::Identifier, "expected parameter name"))
            return fail();
          Token P = Cur;
          Fn.Params.push_back(P.Text);
          if (at(TokKind::Comma)) {
            advance();
            continue;
          }
          break;
        }
      }
      if (!expect(TokKind::RParen, "expected ')'"))
        return fail();
      Fn.Body = parseBlock();
      if (!Fn.Body)
        return fail();
      Prog->Functions.push_back(std::move(Fn));
    }
    MiniCParseResult R;
    R.Prog = std::move(Prog);
    return R;
  }

private:
  //===--------------------------------------------------------------------===
  // Token plumbing
  //===--------------------------------------------------------------------===

  const Token &peek(size_t Ahead = 0) const {
    size_t Idx = Pos + Ahead;
    return Idx < Tokens.size() ? Tokens[Idx] : Tokens.back();
  }

  bool at(TokKind K) const { return peek().Kind == K; }

  void advance() {
    Cur = peek();
    if (Pos < Tokens.size() - 1)
      ++Pos;
  }

  /// Consumes a token of kind \p K (leaving it in Cur); records an error
  /// otherwise.
  bool expect(TokKind K, const std::string &Msg) {
    if (!at(K)) {
      error(Msg + " (found " + tokKindName(peek().Kind) + ")");
      return false;
    }
    advance();
    return true;
  }

  void error(const std::string &Msg) {
    if (Err.empty()) {
      Err = Msg;
      ErrLine = peek().Line;
    }
  }

  MiniCParseResult fail() {
    MiniCParseResult R;
    R.Error = Err.empty() ? "parse error" : Err;
    R.Line = ErrLine;
    return R;
  }

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===

  std::unique_ptr<Stmt> parseBlock() {
    if (!expect(TokKind::LBrace, "expected '{'"))
      return nullptr;
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Block;
    S->Line = Cur.Line;
    while (!at(TokKind::RBrace)) {
      if (at(TokKind::End)) {
        error("unexpected end of input inside a block");
        return nullptr;
      }
      auto Child = parseStmt();
      if (!Child)
        return nullptr;
      S->Body.push_back(std::move(Child));
    }
    advance(); // consume '}'
    return S;
  }

  /// A "simple" statement for for-headers: declaration or assignment or
  /// expression, without the trailing semicolon.
  std::unique_ptr<Stmt> parseSimple() {
    if (at(TokKind::KwInt))
      return parseDecl(/*ConsumeSemi=*/false);
    return parseAssignOrExpr(/*ConsumeSemi=*/false);
  }

  std::unique_ptr<Stmt> parseDecl(bool ConsumeSemi) {
    advance(); // 'int'
    if (!expect(TokKind::Identifier, "expected a name after 'int'"))
      return nullptr;
    Token Name = Cur;
    auto S = std::make_unique<Stmt>();
    S->Line = Name.Line;
    S->Name = Name.Text;
    if (at(TokKind::LBracket)) {
      advance();
      if (!expect(TokKind::Number, "expected array size"))
        return nullptr;
      Token Size = Cur;
      if (!expect(TokKind::RBracket, "expected ']'"))
        return nullptr;
      S->Kind = StmtKind::DeclArray;
      S->ArraySize = Size.Value;
    } else {
      S->Kind = StmtKind::DeclScalar;
      if (at(TokKind::Assign)) {
        advance();
        S->Value = parseExpr();
        if (!S->Value)
          return nullptr;
      }
    }
    if (ConsumeSemi && !expect(TokKind::Semi, "expected ';'"))
      return nullptr;
    return S;
  }

  std::unique_ptr<Stmt> parseAssignOrExpr(bool ConsumeSemi) {
    auto S = std::make_unique<Stmt>();
    S->Line = peek().Line;

    // Lookahead for the assignment forms.
    if (at(TokKind::Identifier) && peek(1).Kind == TokKind::Assign) {
      advance();
      S->Kind = StmtKind::AssignVar;
      S->Name = Cur.Text;
      advance(); // '='
      S->Value = parseExpr();
      if (!S->Value)
        return nullptr;
    } else if (at(TokKind::Identifier) && peek(1).Kind == TokKind::LBracket &&
               isIndexAssign()) {
      advance();
      S->Kind = StmtKind::AssignIndex;
      S->Name = Cur.Text;
      advance(); // '['
      S->Index = parseExpr();
      if (!S->Index)
        return nullptr;
      if (!expect(TokKind::RBracket, "expected ']'") ||
          !expect(TokKind::Assign, "expected '=' after subscript"))
        return nullptr;
      S->Value = parseExpr();
      if (!S->Value)
        return nullptr;
    } else {
      S->Kind = StmtKind::ExprStmt;
      S->Value = parseExpr();
      if (!S->Value)
        return nullptr;
    }
    if (ConsumeSemi && !expect(TokKind::Semi, "expected ';'"))
      return nullptr;
    return S;
  }

  /// Scans ahead over a balanced bracket group to see whether "NAME [ ...
  /// ] =" follows (distinguishing "a[i] = e;" from the expression
  /// "a[i] + 1;").
  bool isIndexAssign() const {
    size_t K = Pos + 1; // at '['
    int Depth = 0;
    while (K < Tokens.size()) {
      TokKind Kind = Tokens[K].Kind;
      if (Kind == TokKind::LBracket)
        ++Depth;
      else if (Kind == TokKind::RBracket) {
        --Depth;
        if (Depth == 0)
          return K + 1 < Tokens.size() &&
                 Tokens[K + 1].Kind == TokKind::Assign;
      } else if (Kind == TokKind::Semi || Kind == TokKind::End) {
        return false;
      }
      ++K;
    }
    return false;
  }

  std::unique_ptr<Stmt> parseStmt() {
    switch (peek().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwInt:
      return parseDecl(/*ConsumeSemi=*/true);
    case TokKind::KwIf: {
      advance();
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::If;
      S->Line = Cur.Line;
      if (!expect(TokKind::LParen, "expected '(' after 'if'"))
        return nullptr;
      S->Value = parseExpr();
      if (!S->Value || !expect(TokKind::RParen, "expected ')'"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      if (at(TokKind::KwElse)) {
        advance();
        S->Else = parseStmt();
        if (!S->Else)
          return nullptr;
      }
      return S;
    }
    case TokKind::KwWhile: {
      advance();
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::While;
      S->Line = Cur.Line;
      if (!expect(TokKind::LParen, "expected '(' after 'while'"))
        return nullptr;
      S->Value = parseExpr();
      if (!S->Value || !expect(TokKind::RParen, "expected ')'"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      return S;
    }
    case TokKind::KwFor: {
      advance();
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::For;
      S->Line = Cur.Line;
      if (!expect(TokKind::LParen, "expected '(' after 'for'"))
        return nullptr;
      if (!at(TokKind::Semi)) {
        S->ForInit = parseSimple();
        if (!S->ForInit)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "expected ';' in 'for'"))
        return nullptr;
      if (!at(TokKind::Semi)) {
        S->Value = parseExpr();
        if (!S->Value)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "expected second ';' in 'for'"))
        return nullptr;
      if (!at(TokKind::RParen)) {
        S->ForStep = parseSimple();
        if (!S->ForStep)
          return nullptr;
      }
      if (!expect(TokKind::RParen, "expected ')'"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      return S;
    }
    case TokKind::KwReturn: {
      advance();
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Return;
      S->Line = Cur.Line;
      if (!at(TokKind::Semi)) {
        S->Value = parseExpr();
        if (!S->Value)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "expected ';'"))
        return nullptr;
      return S;
    }
    case TokKind::KwBreak: {
      advance();
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Break;
      S->Line = Cur.Line;
      if (!expect(TokKind::Semi, "expected ';'"))
        return nullptr;
      return S;
    }
    case TokKind::KwContinue: {
      advance();
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Continue;
      S->Line = Cur.Line;
      if (!expect(TokKind::Semi, "expected ';'"))
        return nullptr;
      return S;
    }
    default:
      return parseAssignOrExpr(/*ConsumeSemi=*/true);
    }
  }

  //===--------------------------------------------------------------------===
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===

  std::unique_ptr<Expr> parseExpr() { return parseLogOr(); }

  std::unique_ptr<Expr> makeBinary(BinOp Op, std::unique_ptr<Expr> L,
                                   std::unique_ptr<Expr> R) {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Binary;
    E->BOp = Op;
    E->Line = L->Line;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }

  std::unique_ptr<Expr> parseLogOr() {
    auto L = parseLogAnd();
    while (L && at(TokKind::PipePipe)) {
      advance();
      auto R = parseLogAnd();
      if (!R)
        return nullptr;
      L = makeBinary(BinOp::LogOr, std::move(L), std::move(R));
    }
    return L;
  }

  std::unique_ptr<Expr> parseLogAnd() {
    auto L = parseEquality();
    while (L && at(TokKind::AmpAmp)) {
      advance();
      auto R = parseEquality();
      if (!R)
        return nullptr;
      L = makeBinary(BinOp::LogAnd, std::move(L), std::move(R));
    }
    return L;
  }

  std::unique_ptr<Expr> parseEquality() {
    auto L = parseRelational();
    while (L && (at(TokKind::EqEq) || at(TokKind::NotEq))) {
      BinOp Op = at(TokKind::EqEq) ? BinOp::Eq : BinOp::Ne;
      advance();
      auto R = parseRelational();
      if (!R)
        return nullptr;
      L = makeBinary(Op, std::move(L), std::move(R));
    }
    return L;
  }

  std::unique_ptr<Expr> parseRelational() {
    auto L = parseAdditive();
    while (L && (at(TokKind::Lt) || at(TokKind::Gt) || at(TokKind::Le) ||
                 at(TokKind::Ge))) {
      BinOp Op = at(TokKind::Lt)   ? BinOp::Lt
                 : at(TokKind::Gt) ? BinOp::Gt
                 : at(TokKind::Le) ? BinOp::Le
                                   : BinOp::Ge;
      advance();
      auto R = parseAdditive();
      if (!R)
        return nullptr;
      L = makeBinary(Op, std::move(L), std::move(R));
    }
    return L;
  }

  std::unique_ptr<Expr> parseAdditive() {
    auto L = parseMultiplicative();
    while (L && (at(TokKind::Plus) || at(TokKind::Minus))) {
      BinOp Op = at(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
      advance();
      auto R = parseMultiplicative();
      if (!R)
        return nullptr;
      L = makeBinary(Op, std::move(L), std::move(R));
    }
    return L;
  }

  std::unique_ptr<Expr> parseMultiplicative() {
    auto L = parseUnary();
    while (L && (at(TokKind::Star) || at(TokKind::Slash) ||
                 at(TokKind::Percent))) {
      BinOp Op = at(TokKind::Star)    ? BinOp::Mul
                 : at(TokKind::Slash) ? BinOp::Div
                                      : BinOp::Rem;
      advance();
      auto R = parseUnary();
      if (!R)
        return nullptr;
      L = makeBinary(Op, std::move(L), std::move(R));
    }
    return L;
  }

  std::unique_ptr<Expr> parseUnary() {
    if (at(TokKind::Minus) || at(TokKind::Bang)) {
      UnOp Op = at(TokKind::Minus) ? UnOp::Neg : UnOp::Not;
      advance();
      int Line = Cur.Line;
      auto Operand = parseUnary();
      if (!Operand)
        return nullptr;
      auto E = std::make_unique<Expr>();
      E->Kind = ExprKind::Unary;
      E->UOp = Op;
      E->Line = Line;
      E->Lhs = std::move(Operand);
      return E;
    }
    return parsePrimary();
  }

  std::unique_ptr<Expr> parsePrimary() {
    if (at(TokKind::Number)) {
      advance();
      auto E = std::make_unique<Expr>();
      E->Kind = ExprKind::Number;
      E->Number = Cur.Value;
      E->Line = Cur.Line;
      return E;
    }
    if (at(TokKind::LParen)) {
      advance();
      auto E = parseExpr();
      if (!E || !expect(TokKind::RParen, "expected ')'"))
        return nullptr;
      return E;
    }
    if (at(TokKind::Identifier)) {
      advance();
      Token Name = Cur;
      if (at(TokKind::LParen)) {
        advance();
        auto E = std::make_unique<Expr>();
        E->Kind = ExprKind::Call;
        E->Name = Name.Text;
        E->Line = Name.Line;
        if (!at(TokKind::RParen)) {
          while (true) {
            auto Arg = parseExpr();
            if (!Arg)
              return nullptr;
            E->Args.push_back(std::move(Arg));
            if (at(TokKind::Comma)) {
              advance();
              continue;
            }
            break;
          }
        }
        if (!expect(TokKind::RParen, "expected ')' after arguments"))
          return nullptr;
        return E;
      }
      if (at(TokKind::LBracket)) {
        advance();
        auto E = std::make_unique<Expr>();
        E->Kind = ExprKind::Index;
        E->Name = Name.Text;
        E->Line = Name.Line;
        E->Lhs = parseExpr();
        if (!E->Lhs || !expect(TokKind::RBracket, "expected ']'"))
          return nullptr;
        return E;
      }
      auto E = std::make_unique<Expr>();
      E->Kind = ExprKind::Var;
      E->Name = Name.Text;
      E->Line = Name.Line;
      return E;
    }
    error("expected an expression (found " + tokKindName(peek().Kind) + ")");
    return nullptr;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  Token Cur;
  std::string Err;
  int ErrLine = 0;
};

} // namespace

MiniCParseResult gis::parseMiniC(std::string_view Source) {
  LexResult Lexed = lexMiniC(Source);
  if (!Lexed.ok()) {
    MiniCParseResult R;
    R.Error = Lexed.Error;
    R.Line = Lexed.Line;
    return R;
  }
  return MiniCParser(std::move(Lexed.Tokens)).run();
}

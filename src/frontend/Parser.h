//===- frontend/Parser.h - Mini-C parser ------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for mini-C.
///
/// Grammar sketch:
/// \code
///   program  := (globalArray | function)*
///   global   := "int" NAME "[" NUM "]" ";"
///   function := "int" NAME "(" ("int" NAME ("," "int" NAME)*)? ")" block
///   stmt     := "int" NAME ("=" expr)? ";" | "int" NAME "[" NUM "]" ";"
///             | NAME "=" expr ";" | NAME "[" expr "]" "=" expr ";"
///             | "if" "(" expr ")" stmt ("else" stmt)?
///             | "while" "(" expr ")" stmt
///             | "for" "(" simple? ";" expr? ";" simple? ")" stmt
///             | "return" expr? ";" | "break" ";" | "continue" ";"
///             | expr ";" | block
///   expr     := logical-or with C precedence over
///               || && == != < > <= >= + - * / % and unary - !
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GIS_FRONTEND_PARSER_H
#define GIS_FRONTEND_PARSER_H

#include "frontend/Ast.h"

#include <memory>
#include <string>
#include <string_view>

namespace gis {

/// Result of parsing mini-C source.
struct MiniCParseResult {
  std::unique_ptr<Program> Prog;
  std::string Error;
  int Line = 0;

  bool ok() const { return Prog != nullptr; }
};

/// Parses mini-C source into an AST.
MiniCParseResult parseMiniC(std::string_view Source);

} // namespace gis

#endif // GIS_FRONTEND_PARSER_H

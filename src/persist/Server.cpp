//===- persist/Server.cpp - Fault-tolerant compile daemon ------------------===//

#include "persist/Server.h"

#include "frontend/CodeGen.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "obs/Counters.h"
#include "persist/Protocol.h"
#include "support/Format.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gis;
using namespace gis::persist;

namespace {

using Clock = std::chrono::steady_clock;

/// Caps how long a worker blocks on one peer's socket I/O, so a stalled
/// or dead client cannot pin a worker forever.
void setSocketTimeouts(int Fd) {
  timeval Tv{};
  Tv.tv_sec = 5;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

} // namespace

CompileServer::CompileServer(const MachineDescription &MD,
                             const PipelineOptions &Opts,
                             const ServerOptions &SOpts)
    : MD(MD), Opts(Opts), SOpts(SOpts),
      MemCache(this->SOpts.CacheCapacity) {
  if (this->SOpts.Workers == 0)
    this->SOpts.Workers = 1;
  if (this->SOpts.QueueDepth == 0)
    this->SOpts.QueueDepth = 1;
}

CompileServer::~CompileServer() { drainAndJoin(); }

Status CompileServer::start() {
  if (SOpts.SocketPath.empty())
    return Status::error(ErrorCode::ServeRejected, "no socket path");
  if (SOpts.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return Status::error(ErrorCode::ServeRejected,
                         "socket path too long: " + SOpts.SocketPath);

  if (!SOpts.CacheDir.empty()) {
    Disk = std::make_unique<DiskScheduleCache>(SOpts.CacheDir,
                                               SOpts.CacheDirMaxBytes);
    // The daemon fails fast on an unusable cache directory: unlike a
    // one-shot gisc run, a long-lived server silently degraded from its
    // first second is a misconfiguration nobody would notice.
    if (Status S = Disk->open(); !S.isOk())
      return S;
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::error(ErrorCode::ServeRejected,
                         formatString("socket: %s", std::strerror(errno)));
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SOpts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(SOpts.SocketPath.c_str()); // stale socket from a previous run
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Status S = Status::error(
        ErrorCode::ServeRejected,
        formatString("bind %s: %s", SOpts.SocketPath.c_str(),
                     std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    return S;
  }
  if (::listen(ListenFd, static_cast<int>(SOpts.QueueDepth) + 8) < 0) {
    Status S = Status::error(
        ErrorCode::ServeRejected,
        formatString("listen: %s", std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    return S;
  }

  Running.store(true, std::memory_order_release);
  Acceptor = std::thread([this] { acceptLoop(); });
  WorkerThreads.reserve(SOpts.Workers);
  for (unsigned K = 0; K != SOpts.Workers; ++K)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  return Status::ok();
}

void CompileServer::requestStop() {
  Stopping.store(true, std::memory_order_release);
}

void CompileServer::drainAndJoin() {
  if (Joined)
    return;
  Joined = true;
  requestStop();
  if (Acceptor.joinable())
    Acceptor.join();
  // Admissions are closed; wake the workers so they drain the queue and
  // observe Stopping once it is empty.
  QueueCv.notify_all();
  for (std::thread &T : WorkerThreads)
    if (T.joinable())
      T.join();
  WorkerThreads.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!SOpts.SocketPath.empty())
    ::unlink(SOpts.SocketPath.c_str());
  Running.store(false, std::memory_order_release);
}

ServerStats CompileServer::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Counts;
}

obs::CounterSet CompileServer::counters() const {
  std::lock_guard<std::mutex> L(Mu);
  return Aggregated;
}

std::string CompileServer::statsJson() const {
  ServerStats S;
  obs::CounterSet C;
  size_t Depth;
  {
    std::lock_guard<std::mutex> L(Mu);
    S = Counts;
    C = Aggregated;
    Depth = Queue.size();
  }
  std::ostringstream OS;
  OS << "{\n  \"schema\": \"gis-serve-stats-v1\",\n  \"serve\": {"
     << "\n    \"accepted\": " << S.Accepted
     << ",\n    \"completed\": " << S.Completed
     << ",\n    \"shed\": " << S.Shed
     << ",\n    \"timeouts\": " << S.TimedOut
     << ",\n    \"errors\": " << S.Errors
     << ",\n    \"queue_depth\": " << Depth
     << ",\n    \"workers\": " << SOpts.Workers << "\n  },";
  if (Disk) {
    DiskCacheStats D = Disk->stats();
    OS << "\n  \"persist\": {\"degraded\": "
       << (D.Degraded ? "true" : "false") << ", \"disk_hits\": " << D.Hits
       << ", \"disk_misses\": " << D.Misses
       << ", \"inserts\": " << D.Inserts
       << ", \"quarantines\": " << D.Quarantines
       << ", \"write_failures\": " << D.WriteFailures
       << ", \"evictions\": " << D.Evictions << "},";
  }
  OS << "\n  \"counters\": {";
  for (unsigned K = 0; K != obs::NumCounters; ++K) {
    auto Id = static_cast<obs::CounterId>(K);
    OS << (K ? ",\n    \"" : "\n    \"") << obs::counterKey(Id)
       << "\": " << C.get(Id);
  }
  OS << "\n  }\n}\n";
  return OS.str();
}

void CompileServer::acceptLoop() {
  while (true) {
    if (Stopping.load(std::memory_order_acquire))
      return;
    pollfd P{};
    P.fd = ListenFd;
    P.events = POLLIN;
    int N = ::poll(&P, 1, 100); // 100ms tick bounds the stop latency
    if (N <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    setSocketTimeouts(Fd);
    bool Admit;
    {
      std::lock_guard<std::mutex> L(Mu);
      Admit = Queue.size() < SOpts.QueueDepth &&
              !Stopping.load(std::memory_order_acquire);
      if (Admit) {
        Queue.push_back(Pending{Fd, Clock::now()});
        ++Counts.Accepted;
        Aggregated.bump(obs::ServeAccepted);
      } else {
        ++Counts.Shed;
        Aggregated.bump(obs::ServeShed);
      }
    }
    if (Admit) {
      QueueCv.notify_one();
    } else {
      // Load shedding: answer immediately so the client backs off instead
      // of hanging; the small frame fits any socket buffer.
      writeAll(Fd, formatShedResponse(SOpts.ShedRetryMs));
      ::close(Fd);
    }
  }
}

void CompileServer::workerLoop() {
  // One engine per worker over the shared tiers: the fingerprints are
  // computed once, and every worker's results land in the same caches.
  EngineOptions EOpts;
  EOpts.Jobs = 1;
  EOpts.SharedCache = &MemCache;
  EOpts.SharedDisk = Disk.get();
  CompileEngine Engine(MD, Opts, EOpts);

  while (true) {
    Pending Job;
    {
      std::unique_lock<std::mutex> L(Mu);
      QueueCv.wait(L, [this] {
        return !Queue.empty() || Stopping.load(std::memory_order_acquire);
      });
      if (Queue.empty())
        return; // stopping and fully drained
      Job = Queue.front();
      Queue.pop_front();
    }
    serveConnection(Job.Fd, Job.Admitted, Engine);
  }
}

void CompileServer::serveConnection(int Fd, Clock::time_point Admitted,
                                    CompileEngine &Engine) {
  std::string Header;
  if (!readLine(Fd, Header)) {
    std::lock_guard<std::mutex> L(Mu);
    ++Counts.Errors;
    ::close(Fd);
    return;
  }

  // Counters are updated BEFORE the response is written: a client that
  // has seen the reply must be able to observe the matching stats().
  if (Header == "PING") {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.Completed;
    }
    writeAll(Fd, "PONG\n");
    ::close(Fd);
    return;
  }
  if (Header == "STATS") {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.Completed;
    }
    writeAll(Fd, formatOkResponse(0, 0, 0, statsJson()));
    ::close(Fd);
    return;
  }
  if (Header.rfind("COMPILE ", 0) != 0) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.Errors;
    }
    writeAll(Fd, formatErrResponse("bad-request",
                                   "unknown request: " + Header));
    ::close(Fd);
    return;
  }

  CompileRequest Req;
  if (Status S = parseCompileRequest(Fd, Header.substr(8), Req);
      !S.isOk()) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.Errors;
    }
    writeAll(Fd, formatErrResponse(errorCodeName(S.code()), S.message()));
    ::close(Fd);
    return;
  }

  // The deadline bounds admission-to-start, measured from accept time: a
  // request that waited out its budget in the queue gets TIMEOUT, not a
  // late answer the client already gave up on.
  unsigned DeadlineMs =
      Req.DeadlineMs ? Req.DeadlineMs : SOpts.DefaultDeadlineMs;
  auto WaitedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - Admitted)
                      .count();
  if (static_cast<uint64_t>(WaitedMs) > DeadlineMs) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.TimedOut;
      Aggregated.bump(obs::ServeTimeouts);
    }
    writeAll(Fd, formatTimeoutResponse());
    ::close(Fd);
    return;
  }

  if (SOpts.TestHoldMs)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(SOpts.TestHoldMs));

  // Front-end the source.
  std::unique_ptr<Module> M;
  std::string FrontendError;
  if (Req.IsAsm) {
    ParseResult R = parseModule(Req.Source);
    if (!R.ok()) {
      FrontendError = formatString("line %u: %s", R.Line, R.Error.c_str());
    } else {
      std::vector<std::string> Problems = verifyModule(*R.M);
      if (!Problems.empty())
        FrontendError = "verify: " + Problems.front();
      else
        M = std::move(R.M);
    }
  } else {
    CompileResult R = compileMiniC(Req.Source);
    if (!R.ok())
      FrontendError = formatString("line %u: %s", R.Line, R.Error.c_str());
    else
      M = std::move(R.M);
  }
  if (!M) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.Errors;
    }
    writeAll(Fd, formatErrResponse("frontend", FrontendError));
    ::close(Fd);
    return;
  }

  EngineReport Report =
      Engine.compileBatch({BatchItem{M.get(), Req.Name}});

  std::ostringstream Body;
  printModule(*M, Body);
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Counts.Completed;
    Aggregated += Report.Aggregate.Counters;
  }
  writeAll(Fd, formatOkResponse(Report.CacheHits - Report.DiskHits,
                                Report.DiskHits, Report.CacheMisses,
                                Body.str()));
  ::close(Fd);
}

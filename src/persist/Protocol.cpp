//===- persist/Protocol.cpp - Compile-daemon wire protocol -----------------===//

#include "persist/Protocol.h"

#include "support/Format.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

using namespace gis;
using namespace gis::persist;

bool persist::writeAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    // MSG_NOSIGNAL: a peer that gave up (shed-and-closed, dead client)
    // must surface as EPIPE here, not kill the process with SIGPIPE.
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool persist::readLine(int Fd, std::string &Line) {
  Line.clear();
  char C;
  while (Line.size() < 4096) {
    ssize_t N = ::read(Fd, &C, 1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // EOF before newline
    if (C == '\n')
      return true;
    Line.push_back(C);
  }
  return false; // header line absurdly long
}

bool persist::readExact(int Fd, size_t N, std::string &Out) {
  Out.clear();
  if (N > MaxBodyBytes)
    return false;
  Out.resize(N);
  size_t Off = 0;
  while (Off < N) {
    ssize_t Got = ::read(Fd, &Out[Off], N - Off);
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (Got == 0)
      return false;
    Off += static_cast<size_t>(Got);
  }
  return true;
}

std::string persist::formatCompileRequest(const CompileRequest &Req) {
  std::string Frame = formatString(
      "COMPILE %s %u %s %zu\n", Req.IsAsm ? "asm" : "c", Req.DeadlineMs,
      Req.Name.empty() ? "<anon>" : Req.Name.c_str(), Req.Source.size());
  Frame += Req.Source;
  return Frame;
}

Status persist::parseCompileRequest(int Fd, const std::string &HeaderLine,
                                    CompileRequest &Req) {
  std::istringstream SS(HeaderLine);
  std::string Fmt;
  unsigned long long Deadline = 0, Bytes = 0;
  if (!(SS >> Fmt >> Deadline >> Req.Name >> Bytes))
    return Status::error(ErrorCode::ServeRejected,
                         "malformed COMPILE header: " + HeaderLine);
  if (Fmt != "c" && Fmt != "asm")
    return Status::error(ErrorCode::ServeRejected,
                         "unknown input format '" + Fmt + "'");
  if (Bytes > MaxBodyBytes)
    return Status::error(ErrorCode::ServeRejected,
                         formatString("request body of %llu bytes exceeds "
                                      "the %zu-byte bound",
                                      Bytes, MaxBodyBytes));
  Req.IsAsm = Fmt == "asm";
  Req.DeadlineMs = static_cast<unsigned>(Deadline);
  if (!readExact(Fd, static_cast<size_t>(Bytes), Req.Source))
    return Status::error(ErrorCode::ServeRejected,
                         "connection closed mid-body");
  return Status::ok();
}

std::string persist::formatOkResponse(uint64_t MemHits, uint64_t DiskHits,
                                      uint64_t Misses,
                                      const std::string &Body) {
  std::string Frame = formatString(
      "OK %llu %llu %llu %zu\n", static_cast<unsigned long long>(MemHits),
      static_cast<unsigned long long>(DiskHits),
      static_cast<unsigned long long>(Misses), Body.size());
  Frame += Body;
  return Frame;
}

std::string persist::formatShedResponse(unsigned RetryAfterMs) {
  return formatString("SHED %u\n", RetryAfterMs);
}

std::string persist::formatTimeoutResponse() { return "TIMEOUT\n"; }

std::string persist::formatErrResponse(const std::string &Code,
                                       const std::string &Message) {
  std::string Frame =
      formatString("ERR %s %zu\n", Code.c_str(), Message.size());
  Frame += Message;
  return Frame;
}

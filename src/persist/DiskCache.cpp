//===- persist/DiskCache.cpp - Crash-safe persistent schedule cache --------===//

#include "persist/DiskCache.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "persist/PersistIO.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

using namespace gis;
using namespace gis::persist;

namespace {

constexpr char Magic[] = "GIS-SCHED-CACHE";

std::string hexKey(const Key128 &K) {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(K.Hi),
                static_cast<unsigned long long>(K.Lo));
  return Buf;
}

/// The persisted subset of PipelineStats: every scalar --stats/--stats-json
/// reports, plus the counter registry.  Deliberately not persisted --
/// diagnostics, decision logs and per-region wall-clock timings -- are
/// payloads a disk hit cannot replay faithfully; entries carrying them are
/// never written (see DiskScheduleCache::insert).
std::string serializeStats(const PipelineStats &S) {
  std::ostringstream OS;
  auto Put = [&OS](const char *K, uint64_t V) {
    if (V) // sparse: most fields are zero for most functions
      OS << K << "=" << V << "\n";
  };
  Put("global.regions_scheduled", S.Global.RegionsScheduled);
  Put("global.blocks_scheduled", S.Global.BlocksScheduled);
  Put("global.useful_motions", S.Global.UsefulMotions);
  Put("global.speculative_motions", S.Global.SpeculativeMotions);
  Put("global.renames", S.Global.Renames);
  Put("global.vetoed_speculations", S.Global.VetoedSpeculations);
  Put("local.blocks_scheduled", S.Local.BlocksScheduled);
  Put("local.blocks_reordered", S.Local.BlocksReordered);
  Put("local.blocks_failed", S.Local.BlocksFailed);
  Put("loops_unrolled", S.LoopsUnrolled);
  Put("loops_rotated", S.LoopsRotated);
  Put("prerenamed_defs", S.PreRenamedDefs);
  Put("duplicated_instrs", S.DuplicatedInstrs);
  Put("regions_skipped_by_size", S.RegionsSkippedBySize);
  Put("functions_skipped_irreducible", S.FunctionsSkippedIrreducible);
  Put("pressure_peak_gpr", S.PressurePeak[0]);
  Put("pressure_peak_fpr", S.PressurePeak[1]);
  Put("pressure_peak_cr", S.PressurePeak[2]);
  Put("regalloc.intervals", S.RegAlloc.IntervalsBuilt);
  Put("regalloc.spilled_intervals", S.RegAlloc.IntervalsSpilled);
  Put("regalloc.spill_stores", S.RegAlloc.SpillStores);
  Put("regalloc.spill_reloads", S.RegAlloc.SpillReloads);
  Put("regalloc.spill_slots", S.RegAlloc.SpillSlots);
  Put("regalloc.failures", S.RegAllocFailures);
  Put("region_waves", S.RegionWaves);
  Put("opt.passes_run", S.Opt.PassesRun);
  Put("opt.peephole_rewrites", S.Opt.PeepholeRewrites);
  Put("opt.strength_reduced", S.Opt.StrengthReduced);
  Put("opt.values_numbered", S.Opt.ValuesNumbered);
  Put("opt.dce_removed", S.Opt.DeadRemoved);
  Put("transactions_run", S.TransactionsRun);
  Put("regions_rolled_back", S.RegionsRolledBack);
  Put("transforms_rolled_back", S.TransformsRolledBack);
  Put("verifier_failures", S.VerifierFailures);
  Put("oracle_mismatches", S.OracleMismatches);
  Put("engine_failures", S.EngineFailures);
  Put("faults_injected", S.FaultsInjected);
  for (unsigned K = 0; K != obs::NumCounters; ++K) {
    auto Id = static_cast<obs::CounterId>(K);
    if (uint64_t V = S.Counters.get(Id))
      OS << "counter." << obs::counterKey(Id) << "=" << V << "\n";
  }
  return OS.str();
}

bool parseStats(const std::string &Text, PipelineStats &S) {
  std::unordered_map<std::string, uint64_t> KV;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return false;
    errno = 0;
    char *End = nullptr;
    unsigned long long V = std::strtoull(Line.c_str() + Eq + 1, &End, 10);
    if (errno != 0 || End == Line.c_str() + Eq + 1 || *End != '\0')
      return false;
    KV.emplace(Line.substr(0, Eq), V);
  }
  auto Get = [&KV](const char *K) -> uint64_t {
    auto It = KV.find(K);
    return It == KV.end() ? 0 : It->second;
  };
  auto GetU = [&Get](const char *K) {
    return static_cast<unsigned>(Get(K));
  };
  S.Global.RegionsScheduled = GetU("global.regions_scheduled");
  S.Global.BlocksScheduled = GetU("global.blocks_scheduled");
  S.Global.UsefulMotions = GetU("global.useful_motions");
  S.Global.SpeculativeMotions = GetU("global.speculative_motions");
  S.Global.Renames = GetU("global.renames");
  S.Global.VetoedSpeculations = GetU("global.vetoed_speculations");
  S.Local.BlocksScheduled = GetU("local.blocks_scheduled");
  S.Local.BlocksReordered = GetU("local.blocks_reordered");
  S.Local.BlocksFailed = GetU("local.blocks_failed");
  S.LoopsUnrolled = GetU("loops_unrolled");
  S.LoopsRotated = GetU("loops_rotated");
  S.PreRenamedDefs = GetU("prerenamed_defs");
  S.DuplicatedInstrs = GetU("duplicated_instrs");
  S.RegionsSkippedBySize = GetU("regions_skipped_by_size");
  S.FunctionsSkippedIrreducible = GetU("functions_skipped_irreducible");
  S.PressurePeak[0] = GetU("pressure_peak_gpr");
  S.PressurePeak[1] = GetU("pressure_peak_fpr");
  S.PressurePeak[2] = GetU("pressure_peak_cr");
  S.RegAlloc.IntervalsBuilt = GetU("regalloc.intervals");
  S.RegAlloc.IntervalsSpilled = GetU("regalloc.spilled_intervals");
  S.RegAlloc.SpillStores = GetU("regalloc.spill_stores");
  S.RegAlloc.SpillReloads = GetU("regalloc.spill_reloads");
  S.RegAlloc.SpillSlots = GetU("regalloc.spill_slots");
  S.RegAllocFailures = GetU("regalloc.failures");
  S.RegionWaves = GetU("region_waves");
  S.Opt.PassesRun = GetU("opt.passes_run");
  S.Opt.PeepholeRewrites = GetU("opt.peephole_rewrites");
  S.Opt.StrengthReduced = GetU("opt.strength_reduced");
  S.Opt.ValuesNumbered = GetU("opt.values_numbered");
  S.Opt.DeadRemoved = GetU("opt.dce_removed");
  S.TransactionsRun = GetU("transactions_run");
  S.RegionsRolledBack = GetU("regions_rolled_back");
  S.TransformsRolledBack = GetU("transforms_rolled_back");
  S.VerifierFailures = GetU("verifier_failures");
  S.OracleMismatches = GetU("oracle_mismatches");
  S.EngineFailures = GetU("engine_failures");
  S.FaultsInjected = GetU("faults_injected");
  for (unsigned K = 0; K != obs::NumCounters; ++K) {
    auto Id = static_cast<obs::CounterId>(K);
    std::string CK = "counter." + std::string(obs::counterKey(Id));
    if (uint64_t V = Get(CK.c_str()))
      S.Counters.bump(Id, V);
  }
  return true;
}

Status corrupt(const std::string &Reason, const std::string &Detail) {
  return Status::error(ErrorCode::CacheEntryCorrupt, Reason + ": " + Detail);
}

/// Reads one "\n"-terminated header line from \p Bytes at \p Pos.
bool nextLine(const std::string &Bytes, size_t &Pos, std::string &Line) {
  size_t NL = Bytes.find('\n', Pos);
  if (NL == std::string::npos)
    return false;
  Line = Bytes.substr(Pos, NL - Pos);
  Pos = NL + 1;
  return true;
}

} // namespace

std::string DiskScheduleCache::entryFileName(const Key128 &Key) {
  return hexKey(Key) + ".gse";
}

std::string DiskScheduleCache::serializeEntry(const Key128 &Key,
                                              const Function &F,
                                              const PipelineStats &Stats,
                                              unsigned Version) {
  std::string Ir = functionToString(F);
  std::string St = serializeStats(Stats);
  Key128 Sum = hashKey128(Ir + St);
  std::ostringstream OS;
  OS << Magic << " " << Version << "\n"
     << "key " << hexKey(Key) << "\n"
     << "ir " << Ir.size() << "\n"
     << "stats " << St.size() << "\n"
     << "sum " << hexKey(Sum) << "\n\n"
     << Ir << St;
  return OS.str();
}

Status DiskScheduleCache::deserializeEntry(const std::string &Bytes,
                                           const Key128 &Key, Function &F,
                                           PipelineStats &Stats) {
  size_t Pos = 0;
  std::string Line;

  // Header line 1: magic + version.
  if (!nextLine(Bytes, Pos, Line))
    return corrupt("short", "no header");
  {
    std::istringstream H(Line);
    std::string M;
    unsigned V = 0;
    if (!(H >> M >> V) || M != Magic)
      return corrupt("magic", "bad magic line '" + Line + "'");
    if (V != DiskCacheFormatVersion)
      return corrupt("version", "entry version " + std::to_string(V) +
                                    ", expected " +
                                    std::to_string(DiskCacheFormatVersion));
  }

  // Header lines 2-5: key, ir length, stats length, checksum.
  std::string KeyHex, SumHex;
  size_t IrLen = 0, StLen = 0;
  for (const char *Want : {"key", "ir", "stats", "sum"}) {
    if (!nextLine(Bytes, Pos, Line))
      return corrupt("short", "truncated header");
    std::istringstream H(Line);
    std::string Tag;
    H >> Tag;
    if (Tag != Want)
      return corrupt("header", "expected '" + std::string(Want) +
                                   "', got '" + Line + "'");
    if (Tag == "key")
      H >> KeyHex;
    else if (Tag == "ir")
      H >> IrLen;
    else if (Tag == "stats")
      H >> StLen;
    else
      H >> SumHex;
    if (!H)
      return corrupt("header", "malformed '" + Line + "'");
  }
  if (!nextLine(Bytes, Pos, Line) || !Line.empty())
    return corrupt("header", "missing blank separator");

  if (KeyHex != hexKey(Key))
    return corrupt("key-mismatch", "entry for key " + KeyHex);
  if (Bytes.size() - Pos != IrLen + StLen)
    return corrupt("short", "payload " +
                                std::to_string(Bytes.size() - Pos) +
                                " bytes, declared " +
                                std::to_string(IrLen + StLen));

  std::string Payload = Bytes.substr(Pos);
  if (hexKey(hashKey128(Payload)) != SumHex)
    return corrupt("checksum", "payload checksum mismatch");

  std::string Ir = Payload.substr(0, IrLen);
  ParseResult R = parseModule(Ir);
  if (!R.ok())
    return corrupt("parse", "line " + std::to_string(R.Line) + ": " +
                                R.Error);
  if (R.M->functions().size() != 1)
    return corrupt("parse", "entry holds " +
                                std::to_string(R.M->functions().size()) +
                                " functions, expected 1");

  PipelineStats Parsed;
  if (!parseStats(Payload.substr(IrLen), Parsed))
    return corrupt("parse", "malformed stats block");

  F = *R.M->functions().front();
  Stats += Parsed;
  return Status::ok();
}

DiskScheduleCache::DiskScheduleCache(std::string Dir, uint64_t MaxBytes)
    : Dir(std::move(Dir)), MaxBytes(MaxBytes) {}

Status DiskScheduleCache::open() {
  Status S = ensureDir(Dir);
  if (S.isOk())
    S = probeWritable(Dir);
  std::lock_guard<std::mutex> L(Mu);
  Opened = true;
  Degraded = !S.isOk();
  Counts.Degraded = Degraded;
  if (!S.isOk())
    reportDiagnostic(Diags, S, "<cache>", "persist-open", -1);
  return S;
}

bool DiskScheduleCache::usable() const {
  std::lock_guard<std::mutex> L(Mu);
  return Opened && !Degraded;
}

void DiskScheduleCache::degrade(const Status &Why, const char *Op) {
  std::lock_guard<std::mutex> L(Mu);
  if (!Degraded) {
    Degraded = true;
    Counts.Degraded = true;
    reportDiagnostic(Diags, Why, "<cache>", Op, -1);
  }
}

void DiskScheduleCache::quarantine(const std::string &FileName,
                                   const std::string &Reason,
                                   const std::string &Detail) {
  quarantineFile(Dir, FileName, Reason);
  std::lock_guard<std::mutex> L(Mu);
  ++Counts.Quarantines;
  reportDiagnostic(Diags, corrupt(Reason, Detail), "<cache>",
                   "persist-quarantine", -1);
}

bool DiskScheduleCache::lookup(const Key128 &Key, Function &F,
                               PipelineStats &Stats) {
  if (!usable())
    return false;
  std::string FileName = entryFileName(Key);
  std::string Bytes;
  bool Exists = false;
  Status S = readFile(Dir + "/" + FileName, Bytes, Exists);
  if (!S.isOk()) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.ReadFailures;
      ++Counts.Misses;
    }
    degrade(S, "persist-read");
    return false;
  }
  if (!Exists) {
    std::lock_guard<std::mutex> L(Mu);
    ++Counts.Misses;
    return false;
  }
  S = deserializeEntry(Bytes, Key, F, Stats);
  if (!S.isOk()) {
    // Reason tag = text before the first ':' of the message.
    std::string Msg = S.message();
    size_t Colon = Msg.find(':');
    quarantine(FileName,
               Colon == std::string::npos ? "corrupt" : Msg.substr(0, Colon),
               Msg);
    std::lock_guard<std::mutex> L(Mu);
    ++Counts.Misses;
    return false;
  }
  std::lock_guard<std::mutex> L(Mu);
  ++Counts.Hits;
  return true;
}

void DiskScheduleCache::insert(const Key128 &Key, const Function &F,
                               const PipelineStats &Stats) {
  if (!usable())
    return;
  // Results carrying diagnostics or decision logs are not persisted: the
  // stats block cannot replay them, and a cache hit that silently drops a
  // diagnostic would violate the engine's faithful-replay contract.
  if (!Stats.Diags.empty() || !Stats.Decisions.empty())
    return;
  std::string Bytes = serializeEntry(Key, F, Stats);
  Status S = atomicWriteFile(Dir, entryFileName(Key), Bytes);
  if (!S.isOk()) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Counts.WriteFailures;
    }
    degrade(S, "persist-write");
    return;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Counts.Inserts;
  }
  if (MaxBytes)
    enforceSizeBound(entryFileName(Key));
}

void DiskScheduleCache::enforceSizeBound(const std::string &JustPublished) {
  std::vector<DirEntryInfo> Entries = listFilesWithSuffix(Dir, ".gse");
  uint64_t Total = 0;
  for (const DirEntryInfo &E : Entries)
    Total += E.SizeBytes;
  if (Total <= MaxBytes)
    return;
  // Oldest first; name as the tie-break so the victim order is
  // deterministic when mtimes collide (coarse filesystem clocks).
  std::sort(Entries.begin(), Entries.end(),
            [](const DirEntryInfo &A, const DirEntryInfo &B) {
              if (A.MTimeSec != B.MTimeSec)
                return A.MTimeSec < B.MTimeSec;
              if (A.MTimeNsec != B.MTimeNsec)
                return A.MTimeNsec < B.MTimeNsec;
              return A.Name < B.Name;
            });
  uint64_t Evicted = 0;
  for (const DirEntryInfo &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (E.Name == JustPublished)
      continue; // the bound never evicts the entry that triggered it
    // Count only removals this process performed: a concurrent evictor may
    // have won the race, and the entry is gone either way.
    if (removeFile(Dir + "/" + E.Name))
      ++Evicted;
    Total -= E.SizeBytes;
  }
  if (Evicted) {
    std::lock_guard<std::mutex> L(Mu);
    Counts.Evictions += Evicted;
  }
}

DiskCacheStats DiskScheduleCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Counts;
}

std::vector<Diagnostic> DiskScheduleCache::diagnostics() const {
  std::lock_guard<std::mutex> L(Mu);
  return Diags;
}

//===- persist/PersistIO.cpp - Fault-injectable file I/O -------------------===//

#include "persist/PersistIO.h"

#include "support/FaultInjection.h"
#include "support/Format.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace gis;
using namespace gis::persist;

namespace {

Status ioError(const std::string &What, const std::string &Path, int Err) {
  return Status::error(ErrorCode::PersistIOFailed,
                       What + " " + Path + ": " + std::strerror(Err));
}

/// Process-unique temp-name counter; combined with the pid so two engine
/// processes sharing one cache directory never collide on temp names.
std::atomic<uint64_t> TempCounter{0};

/// Writes all of \p Bytes to \p Fd, honouring the persist-write and
/// persist-truncate fault stages.  A truncate fault writes half the bytes
/// and reports success: the caller then fsyncs and renames a torn file,
/// simulating a crash after publish but before data durability.
Status writeAllFaulty(int Fd, const std::string &Path,
                      const std::string &Bytes) {
  if (FaultInjector::instance().shouldFire("persist-write"))
    return ioError("write", Path, ENOSPC);
  size_t Len = Bytes.size();
  if (FaultInjector::instance().shouldFire("persist-truncate"))
    Len /= 2;
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioError("write", Path, errno);
    }
    Off += static_cast<size_t>(N);
  }
  return Status::ok();
}

} // namespace

Status persist::ensureDir(const std::string &Dir) {
  if (::mkdir(Dir.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat St;
    if (::stat(Dir.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
      return Status::ok();
    return ioError("not a directory:", Dir, ENOTDIR);
  }
  return ioError("mkdir", Dir, errno);
}

Status persist::probeWritable(const std::string &Dir) {
  std::string Probe = Dir + "/.probe-" + std::to_string(::getpid()) + "-" +
                      std::to_string(TempCounter.fetch_add(1));
  int Fd = ::open(Probe.c_str(), O_CREAT | O_WRONLY | O_EXCL, 0644);
  if (Fd < 0)
    return ioError("create probe in", Dir, errno);
  ::close(Fd);
  ::unlink(Probe.c_str());
  return Status::ok();
}

Status persist::atomicWriteFile(const std::string &Dir,
                                const std::string &FileName,
                                const std::string &Bytes) {
  std::string Temp = Dir + "/.tmp-" + std::to_string(::getpid()) + "-" +
                     std::to_string(TempCounter.fetch_add(1));
  std::string Final = Dir + "/" + FileName;

  int Fd = ::open(Temp.c_str(), O_CREAT | O_WRONLY | O_EXCL, 0644);
  if (Fd < 0)
    return ioError("create", Temp, errno);

  Status S = writeAllFaulty(Fd, Temp, Bytes);
  if (S.isOk() && ::fsync(Fd) != 0)
    S = ioError("fsync", Temp, errno);
  if (::close(Fd) != 0 && S.isOk())
    S = ioError("close", Temp, errno);
  if (S.isOk() && FaultInjector::instance().shouldFire("persist-rename"))
    S = ioError("rename", Final, EIO);
  if (S.isOk() && ::rename(Temp.c_str(), Final.c_str()) != 0)
    S = ioError("rename", Final, errno);
  if (!S.isOk())
    ::unlink(Temp.c_str()); // best effort; never leave the temp on failure
  return S;
}

Status persist::readFile(const std::string &Path, std::string &Out,
                         bool &Exists) {
  Out.clear();
  Exists = false;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    if (errno == ENOENT)
      return Status::ok();
    return ioError("open", Path, errno);
  }
  Exists = true;
  if (FaultInjector::instance().shouldFire("persist-read")) {
    ::close(Fd);
    return ioError("read", Path, EIO);
  }
  char Buf[1 << 16];
  while (true) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int Err = errno;
      ::close(Fd);
      return ioError("read", Path, Err);
    }
    if (N == 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Status::ok();
}

Status persist::quarantineFile(const std::string &Dir,
                               const std::string &FileName,
                               const std::string &Reason) {
  std::string From = Dir + "/" + FileName;
  std::string QDir = Dir + "/quarantine";
  Status S = ensureDir(QDir);
  if (S.isOk()) {
    // Tag with pid+counter: two processes quarantining the same entry (or
    // one entry corrupted twice across restarts) must not collide.
    std::string To = QDir + "/" + FileName + "." + Reason + "." +
                     std::to_string(::getpid()) + "-" +
                     std::to_string(TempCounter.fetch_add(1));
    if (::rename(From.c_str(), To.c_str()) == 0)
      return Status::ok();
    S = ioError("quarantine rename", From, errno);
  }
  // The move failed; removing the entry still guarantees the next lookup
  // will not trip over the same corruption.
  ::unlink(From.c_str());
  return S;
}

bool persist::removeFile(const std::string &Path) {
  return ::unlink(Path.c_str()) == 0;
}

std::vector<DirEntryInfo>
persist::listFilesWithSuffix(const std::string &Dir,
                             const std::string &Suffix) {
  std::vector<DirEntryInfo> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() < Suffix.size() ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    struct stat St;
    std::string Path = Dir + "/" + Name;
    if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    DirEntryInfo Info;
    Info.Name = std::move(Name);
    Info.SizeBytes = static_cast<uint64_t>(St.st_size);
    Info.MTimeSec = static_cast<int64_t>(St.st_mtim.tv_sec);
    Info.MTimeNsec = static_cast<int64_t>(St.st_mtim.tv_nsec);
    Out.push_back(std::move(Info));
  }
  ::closedir(D);
  return Out;
}

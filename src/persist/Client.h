//===- persist/Client.h - Retrying compile-daemon client --------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `gisc --client` side of the compile daemon (persist/Server.h): one
/// connection per request with retry on the *transient* failure modes --
/// connect refusal (daemon restarting) and `SHED` (queue full) -- using
/// exponential backoff with jitter, so a thundering herd of shed clients
/// decorrelates instead of re-arriving in lockstep.  `TIMEOUT` and `ERR`
/// are not retried: the former means the deadline budget is already
/// spent, the latter is deterministic (same source, same error).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_PERSIST_CLIENT_H
#define GIS_PERSIST_CLIENT_H

#include "persist/Protocol.h"

#include <cstdint>
#include <string>

namespace gis {
namespace persist {

struct ClientOptions {
  std::string SocketPath;
  /// Reconnect/re-send attempts after the first try (connect failure and
  /// SHED only).
  unsigned Retries = 4;
  /// Backoff before retry K is BackoffBaseMs * 2^K plus jitter of up to
  /// one base unit, capped at BackoffMaxMs.  A SHED response's retry hint
  /// raises the floor.
  unsigned BackoffBaseMs = 25;
  unsigned BackoffMaxMs = 2000;
};

/// What the daemon (or the transport) answered.
enum class ResponseKind {
  Ok,            ///< compiled; Text holds the scheduled module
  Shed,          ///< queue full on every attempt
  Timeout,       ///< deadline expired while queued
  Error,         ///< daemon-reported error; Text holds the message
  ConnectFailed, ///< could not reach the socket on any attempt
  ProtocolError, ///< malformed/truncated response frame
};

struct CompileResponse {
  ResponseKind Kind = ResponseKind::ConnectFailed;
  std::string Text;
  uint64_t MemHits = 0;
  uint64_t DiskHits = 0;
  uint64_t Misses = 0;
  unsigned Attempts = 0; ///< connections tried (>= 1 once the socket exists)
};

/// Sends one COMPILE request, retrying per \p Opts.
CompileResponse compileOverSocket(const ClientOptions &Opts,
                                  const CompileRequest &Req);

/// Sends PING (no retry).  Ok iff the daemon answered PONG.
Status pingServer(const std::string &SocketPath);

/// Sends STATS (no retry); \p Json receives the daemon's stats blob.
Status fetchServerStats(const std::string &SocketPath, std::string &Json);

} // namespace persist
} // namespace gis

#endif // GIS_PERSIST_CLIENT_H

//===- persist/DiskCache.h - Crash-safe persistent schedule cache -*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disk tier of the content-addressed schedule cache: one file per
/// entry under a cache directory, keyed by the same 128-bit
/// IR+machine+options fingerprint as the in-memory ScheduleCache, so warm
/// state survives process restarts and is shared between concurrent engine
/// processes.
///
/// The trust model is asymmetric.  A *missing* entry costs one reschedule;
/// a *wrong* entry silently miscompiles.  So every load is validated --
/// magic, format version, declared lengths, 128-bit payload checksum, and
/// that the entry's embedded key matches the file it was found under --
/// and any entry failing any check is quarantined (moved aside) and
/// reported as a miss.  Version skew is corruption by definition: a newer
/// or older writer's entries never parse as current ones.
///
/// Failure ladder (never an abort):
///   disk        -- normal operation
///   memory-only -- any I/O failure (ENOSPC, EACCES, vanished directory)
///                  flips the cache to degraded: lookups and inserts become
///                  no-ops, one Diagnostic records why
///   cold        -- the caller did not configure a directory at all
///
/// Atomicity: entries are published with temp-file + rename
/// (persist/PersistIO.h), so concurrent writers are last-writer-wins on
/// byte-identical content and readers never observe a partial write from a
/// *live* writer.  Torn files only exist after a crash mid-durability, and
/// the checksum turns those into quarantines, not wrong hits.
///
/// Thread safety: all public members are safe to call concurrently; the
/// mutable state (stats, degraded flag, diagnostics) is internally
/// synchronized and file operations are atomic at the filesystem level.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_PERSIST_DISKCACHE_H
#define GIS_PERSIST_DISKCACHE_H

#include "ir/Function.h"
#include "sched/Pipeline.h"
#include "support/Hashing.h"

#include <mutex>
#include <string>
#include <vector>

namespace gis {
namespace persist {

/// On-disk entry format version.  Bump on any layout or payload change;
/// old entries are then quarantined on first touch, never misread.
constexpr unsigned DiskCacheFormatVersion = 1;

/// Running counters of one disk-cache instance.
struct DiskCacheStats {
  uint64_t Hits = 0;          ///< entries served from disk
  uint64_t Misses = 0;        ///< lookups that found no usable entry
  uint64_t Inserts = 0;       ///< entries published
  uint64_t Quarantines = 0;   ///< corrupt/skewed entries moved aside
  uint64_t WriteFailures = 0; ///< failed publishes (degradation trigger)
  uint64_t ReadFailures = 0;  ///< failed reads (degradation trigger)
  uint64_t Evictions = 0;     ///< entries evicted by the size bound
  bool Degraded = false;      ///< memory-only fallback active
};

/// The disk tier.  Construct, then open(); a failed open leaves the cache
/// permanently degraded (all operations become no-ops) rather than broken.
class DiskScheduleCache {
public:
  /// \p MaxBytes bounds the total size of the entry files in the cache
  /// directory (0: unbounded, the historical behaviour).  Enforced at
  /// publish time: after a successful insert the oldest entries (by
  /// mtime) are evicted until the directory fits the bound again; the
  /// just-published entry itself is never the victim.  Quarantined files
  /// live in a subdirectory and are outside the bound.
  explicit DiskScheduleCache(std::string Dir, uint64_t MaxBytes = 0);

  uint64_t maxBytes() const { return MaxBytes; }

  /// Creates the directory if missing and probes writability.  On failure
  /// the cache degrades and the status says why; the caller chooses
  /// whether that is fatal (gisc --cache-dir at startup: yes, exit 3) or
  /// survivable (mid-run: keep compiling memory-only).
  Status open();

  /// True when open() succeeded and no later I/O failure degraded us.
  bool usable() const;

  const std::string &directory() const { return Dir; }

  /// Loads the entry for \p Key into \p F / \p Stats.  Returns true on a
  /// validated hit.  Corrupt entries are quarantined and count as misses;
  /// I/O failures degrade the cache and count as misses.
  bool lookup(const Key128 &Key, Function &F, PipelineStats &Stats);

  /// Publishes the result of scheduling under \p Key.  Entries whose stats
  /// carry non-persistable payloads (diagnostics, decision logs) are
  /// skipped: a disk hit must replay stats faithfully or not at all.
  void insert(const Key128 &Key, const Function &F,
              const PipelineStats &Stats);

  DiskCacheStats stats() const;

  /// Diagnostics accumulated by degradations and quarantines, in
  /// occurrence order (bounded: one per degradation cause plus one per
  /// quarantined file).
  std::vector<Diagnostic> diagnostics() const;

  /// The entry file name of \p Key: 32 lowercase hex digits + ".gse".
  static std::string entryFileName(const Key128 &Key);

  /// Serializes one entry (header + IR text + stats block + checksum).
  /// Exposed for tests that need to craft skewed/corrupt entries.
  static std::string serializeEntry(const Key128 &Key, const Function &F,
                                    const PipelineStats &Stats,
                                    unsigned Version = DiskCacheFormatVersion);

  /// Validates and deserializes \p Bytes into \p F / \p Stats.  On failure
  /// returns CacheEntryCorrupt with a reason usable as a quarantine tag.
  static Status deserializeEntry(const std::string &Bytes, const Key128 &Key,
                                 Function &F, PipelineStats &Stats);

private:
  void degrade(const Status &Why, const char *Op);
  void quarantine(const std::string &FileName, const std::string &Reason,
                  const std::string &Detail);
  void enforceSizeBound(const std::string &JustPublished);

  std::string Dir;
  uint64_t MaxBytes = 0;

  mutable std::mutex Mu;
  bool Opened = false;
  bool Degraded = true; ///< until open() succeeds
  DiskCacheStats Counts;
  std::vector<Diagnostic> Diags;
};

} // namespace persist
} // namespace gis

#endif // GIS_PERSIST_DISKCACHE_H

//===- persist/Server.h - Fault-tolerant compile daemon ---------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `gisc --serve` compile daemon: a Unix-socket server that schedules
/// compile requests (persist/Protocol.h) against one shared memory cache
/// and one shared disk tier, built to stay predictable under overload:
///
///   - Bounded admission: the accept loop holds at most QueueDepth pending
///     connections.  When the queue is full, the next connection gets an
///     immediate `SHED <retry_ms>` (never silent backlog growth) and the
///     serve.shed counter bumps -- the client backs off and retries
///     (persist/Client.h).
///
///   - Per-request deadlines: a COMPILE request carries its deadline in
///     milliseconds, measured from admission.  A worker that dequeues a
///     request past its deadline answers `TIMEOUT` without compiling; a
///     compile that has started runs to completion (one function's
///     schedule is short relative to any sane deadline).
///
///   - Graceful drain: requestStop() (safe to call from a SIGTERM handler
///     context via a polled flag) stops admissions; drainAndJoin() lets
///     the workers finish every admitted request, answers them all, joins
///     the threads and unlinks the socket.  No admitted request is ever
///     dropped without a response.
///
/// Workers serve requests with per-worker CompileEngines over the shared
/// caches, so a schedule computed for one client is a memory hit for the
/// next, and -- with a cache directory configured -- survives daemon
/// restarts via the disk tier.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_PERSIST_SERVER_H
#define GIS_PERSIST_SERVER_H

#include "engine/CompileEngine.h"
#include "machine/MachineDescription.h"
#include "obs/Counters.h"
#include "persist/DiskCache.h"
#include "sched/Pipeline.h"
#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gis {
namespace persist {

struct ServerOptions {
  std::string SocketPath;
  /// Compile worker threads (each owns an engine over the shared caches).
  unsigned Workers = 2;
  /// Admission-queue bound; connection QueueDepth+1 is shed.
  unsigned QueueDepth = 16;
  /// Deadline applied to requests that pass 0.
  unsigned DefaultDeadlineMs = 30000;
  /// Retry hint carried in SHED responses.
  unsigned ShedRetryMs = 50;
  /// Directory of the shared disk tier; empty serves memory-only.
  std::string CacheDir;
  /// Size bound of the disk tier in bytes (0: unbounded); see
  /// DiskScheduleCache.  Evictions are reported by the STATS verb.
  uint64_t CacheDirMaxBytes = 0;
  size_t CacheCapacity = 4096;
  /// Test hook: stall this many milliseconds before each compile, so tests
  /// can fill the queue / expire deadlines deterministically.
  unsigned TestHoldMs = 0;
};

/// Monotonic totals over the server's lifetime.
struct ServerStats {
  uint64_t Accepted = 0;  ///< admitted to the queue
  uint64_t Completed = 0; ///< answered with OK/ERR/PONG/stats
  uint64_t Shed = 0;      ///< rejected at admission (queue full)
  uint64_t TimedOut = 0;  ///< deadline expired while queued
  uint64_t Errors = 0;    ///< malformed requests / compile failures
};

class CompileServer {
public:
  CompileServer(const MachineDescription &MD, const PipelineOptions &Opts,
                const ServerOptions &SOpts);
  ~CompileServer();

  /// Binds the socket, starts the accept loop and the workers.  Fails
  /// (ServeRejected / PersistIOFailed) when the socket cannot be bound or
  /// a configured cache directory is unusable.
  Status start();

  /// Stops admitting new connections.  Only sets an atomic flag, so a
  /// signal handler may set its own flag and the owner call this from the
  /// main loop (gisc does exactly that for SIGTERM).
  void requestStop();

  /// Drains: stops admissions, serves every queued request, joins all
  /// threads, unlinks the socket.  Idempotent.
  void drainAndJoin();

  bool running() const { return Running.load(std::memory_order_acquire); }
  const std::string &socketPath() const { return SOpts.SocketPath; }

  ServerStats stats() const;
  /// Aggregated obs counters of every request served (includes the
  /// serve.* and persist.* registry entries).
  obs::CounterSet counters() const;
  /// The STATS-response JSON (also what the stats() totals render to).
  std::string statsJson() const;

private:
  struct Pending {
    int Fd = -1;
    std::chrono::steady_clock::time_point Admitted;
  };

  void acceptLoop();
  void workerLoop();
  /// Reads one request from \p Fd, serves it, answers, closes.
  void serveConnection(int Fd,
                       std::chrono::steady_clock::time_point Admitted,
                       CompileEngine &Engine);

  MachineDescription MD;
  PipelineOptions Opts;
  ServerOptions SOpts;

  ScheduleCache MemCache;
  std::unique_ptr<DiskScheduleCache> Disk; ///< null when no CacheDir

  int ListenFd = -1;
  std::thread Acceptor;
  std::vector<std::thread> WorkerThreads;

  mutable std::mutex Mu;
  std::condition_variable QueueCv;
  std::deque<Pending> Queue;
  ServerStats Counts;
  obs::CounterSet Aggregated;

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Running{false};
  bool Joined = false;
};

} // namespace persist
} // namespace gis

#endif // GIS_PERSIST_SERVER_H

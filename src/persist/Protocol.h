//===- persist/Protocol.h - Compile-daemon wire protocol --------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between `gisc --serve` (persist/Server.h) and
/// `gisc --client` (persist/Client.h): one request per connection over a
/// Unix stream socket, text header + length-prefixed body, so framing
/// survives any payload bytes.
///
/// Requests:
///   COMPILE <fmt> <deadline_ms> <name> <nbytes>\n<nbytes of source>
///       fmt is "c" (mini-C) or "asm" (GIS assembly); name is a
///       space-free display name; deadline_ms bounds queue wait.
///   PING\n
///   STATS\n
///
/// Responses:
///   OK <mem_hits> <disk_hits> <misses> <nbytes>\n<scheduled module text>
///   SHED <retry_after_ms>\n        admission queue full -- try later
///   TIMEOUT\n                      deadline expired before compile began
///   ERR <code> <nbytes>\n<message> malformed request or compile failure
///   PONG\n                         (PING)
///   OK 0 0 0 <nbytes>\n<json>      (STATS)
///
/// The deadline is an admission bound, not a preemption bound: a request
/// whose deadline passes while queued gets TIMEOUT; once a worker starts
/// compiling, the compile runs to completion (scheduling one function is
/// short relative to any sane deadline).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_PERSIST_PROTOCOL_H
#define GIS_PERSIST_PROTOCOL_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace gis {
namespace persist {

/// Upper bound on request/response bodies (64 MiB): a framing error must
/// not make a peer try to allocate an absurd buffer.
constexpr size_t MaxBodyBytes = 64ull << 20;

/// One parsed COMPILE request.
struct CompileRequest {
  bool IsAsm = false;
  unsigned DeadlineMs = 0;
  std::string Name;
  std::string Source;
};

//===----------------------------------------------------------------------===
// Blocking socket I/O helpers (shared by server and client).  All return
// false on EOF/error; short reads never surface as truncated payloads.
//===----------------------------------------------------------------------===

/// Writes all of \p Bytes to \p Fd.
bool writeAll(int Fd, const std::string &Bytes);

/// Reads up to and including one '\n' into \p Line (newline stripped).
/// Bounded at 4096 bytes: header lines are short by construction.
bool readLine(int Fd, std::string &Line);

/// Reads exactly \p N bytes into \p Out.
bool readExact(int Fd, size_t N, std::string &Out);

//===----------------------------------------------------------------------===
// Framing
//===----------------------------------------------------------------------===

/// Renders the COMPILE request frame (header + body).
std::string formatCompileRequest(const CompileRequest &Req);

/// Parses a COMPILE header line (without "COMPILE " consumed) and reads
/// the body from \p Fd.  Returns ServeRejected on malformed input.
Status parseCompileRequest(int Fd, const std::string &HeaderLine,
                           CompileRequest &Req);

std::string formatOkResponse(uint64_t MemHits, uint64_t DiskHits,
                             uint64_t Misses, const std::string &Body);
std::string formatShedResponse(unsigned RetryAfterMs);
std::string formatTimeoutResponse();
std::string formatErrResponse(const std::string &Code,
                              const std::string &Message);

} // namespace persist
} // namespace gis

#endif // GIS_PERSIST_PROTOCOL_H

//===- persist/Client.cpp - Retrying compile-daemon client -----------------===//

#include "persist/Client.h"

#include "support/Format.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace gis;
using namespace gis::persist;

namespace {

int connectTo(const std::string &SocketPath) {
  if (SocketPath.size() >= sizeof(sockaddr_un{}.sun_path))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One attempt: connect, send, read the full response.  Returns false only
/// on connect failure (the retryable transport case); response-level
/// failures are encoded in \p R.
bool attemptOnce(const ClientOptions &Opts, const CompileRequest &Req,
                 CompileResponse &R) {
  int Fd = connectTo(Opts.SocketPath);
  if (Fd < 0)
    return false;
  ++R.Attempts;

  // A failed send does NOT short-circuit the read: a shedding server
  // answers and closes without reading the request, so the client may hit
  // EPIPE mid-write while the SHED frame already sits in its receive
  // buffer.  The response, if any, is authoritative.
  (void)writeAll(Fd, formatCompileRequest(Req));
  std::string Line;
  if (!readLine(Fd, Line)) {
    ::close(Fd);
    R.Kind = ResponseKind::ProtocolError;
    R.Text = "connection closed before a response arrived";
    return true;
  }

  std::istringstream SS(Line);
  std::string Tag;
  SS >> Tag;
  if (Tag == "OK") {
    unsigned long long Mem = 0, DiskN = 0, Miss = 0, Bytes = 0;
    if (!(SS >> Mem >> DiskN >> Miss >> Bytes) ||
        !readExact(Fd, static_cast<size_t>(Bytes), R.Text)) {
      R.Kind = ResponseKind::ProtocolError;
      R.Text = "truncated OK response";
    } else {
      R.Kind = ResponseKind::Ok;
      R.MemHits = Mem;
      R.DiskHits = DiskN;
      R.Misses = Miss;
    }
  } else if (Tag == "SHED") {
    unsigned RetryMs = 0;
    SS >> RetryMs;
    R.Kind = ResponseKind::Shed;
    R.Text = formatString("%u", RetryMs); // floor for the caller's backoff
  } else if (Tag == "TIMEOUT") {
    R.Kind = ResponseKind::Timeout;
    R.Text = "deadline expired before the compile began";
  } else if (Tag == "ERR") {
    std::string Code;
    unsigned long long Bytes = 0;
    SS >> Code >> Bytes;
    std::string Msg;
    readExact(Fd, static_cast<size_t>(Bytes), Msg);
    R.Kind = ResponseKind::Error;
    R.Text = Code + ": " + Msg;
  } else {
    R.Kind = ResponseKind::ProtocolError;
    R.Text = "unrecognised response: " + Line;
  }
  ::close(Fd);
  return true;
}

} // namespace

CompileResponse persist::compileOverSocket(const ClientOptions &Opts,
                                           const CompileRequest &Req) {
  // Jitter decorrelates retries across client processes; the seed mixes
  // the pid so two clients shed at the same instant back off differently.
  std::mt19937 Rng(static_cast<unsigned>(::getpid()) * 2654435761u ^
                   static_cast<unsigned>(
                       std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count()));

  CompileResponse R;
  for (unsigned Attempt = 0;; ++Attempt) {
    bool Connected = attemptOnce(Opts, Req, R);
    bool Retryable =
        !Connected || (Connected && R.Kind == ResponseKind::Shed);
    if (!Retryable || Attempt >= Opts.Retries) {
      if (!Connected)
        R.Kind = ResponseKind::ConnectFailed;
      return R;
    }
    uint64_t Backoff = static_cast<uint64_t>(Opts.BackoffBaseMs)
                       << std::min(Attempt, 16u);
    if (Connected && R.Kind == ResponseKind::Shed) {
      // SHED carries the server's retry hint; treat it as a floor.
      unsigned Hint = static_cast<unsigned>(
          std::strtoul(R.Text.c_str(), nullptr, 10));
      Backoff = std::max<uint64_t>(Backoff, Hint);
    }
    Backoff = std::min<uint64_t>(Backoff, Opts.BackoffMaxMs);
    std::uniform_int_distribution<uint64_t> Jitter(
        0, Opts.BackoffBaseMs ? Opts.BackoffBaseMs : 1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Backoff + Jitter(Rng)));
  }
}

Status persist::pingServer(const std::string &SocketPath) {
  int Fd = connectTo(SocketPath);
  if (Fd < 0)
    return Status::error(ErrorCode::ServeRejected,
                         formatString("connect %s: %s", SocketPath.c_str(),
                                      std::strerror(errno)));
  std::string Line;
  bool Ok = writeAll(Fd, "PING\n") && readLine(Fd, Line) && Line == "PONG";
  ::close(Fd);
  return Ok ? Status::ok()
            : Status::error(ErrorCode::ServeRejected,
                            "daemon did not answer PONG");
}

Status persist::fetchServerStats(const std::string &SocketPath,
                                 std::string &Json) {
  int Fd = connectTo(SocketPath);
  if (Fd < 0)
    return Status::error(ErrorCode::ServeRejected,
                         formatString("connect %s: %s", SocketPath.c_str(),
                                      std::strerror(errno)));
  std::string Line;
  bool Ok = writeAll(Fd, "STATS\n") && readLine(Fd, Line);
  if (Ok) {
    std::istringstream SS(Line);
    std::string Tag;
    unsigned long long A, B, C, Bytes = 0;
    Ok = (SS >> Tag >> A >> B >> C >> Bytes) && Tag == "OK" &&
         readExact(Fd, static_cast<size_t>(Bytes), Json);
  }
  ::close(Fd);
  return Ok ? Status::ok()
            : Status::error(ErrorCode::ServeRejected,
                            "malformed STATS response");
}

//===- persist/PersistIO.h - Fault-injectable file I/O ----------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The filesystem primitives of the persistent schedule cache, factored
/// out so every operation the cache performs is (a) atomic where the
/// format needs it and (b) reachable by the GIS_FAULT_INJECT machinery.
///
/// Atomicity: atomicWriteFile writes to a process-unique temp name in the
/// destination directory, fsyncs, and publishes with rename(2).  Readers
/// therefore see either no file or a complete file -- never a prefix --
/// unless the host crashed between write and fsync completion, which is
/// exactly the torn-write case the "persist-truncate" fault stage
/// simulates and the cache's checksum catches.
///
/// Fault stages (support/FaultInjection.h, GIS_FAULT_INJECT="<stage>[:<n>]"):
///   persist-write     Nth entry write fails as if the disk were full
///   persist-rename    Nth publish rename fails (temp file left behind)
///   persist-read      Nth entry read fails mid-I/O
///   persist-truncate  Nth write persists only half its bytes and then
///                     "succeeds" -- a simulated crash between write and
///                     durability, i.e. a torn entry on the next boot
///
//===----------------------------------------------------------------------===//

#ifndef GIS_PERSIST_PERSISTIO_H
#define GIS_PERSIST_PERSISTIO_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gis {
namespace persist {

/// Creates \p Dir (one level; parents must exist) if missing.
Status ensureDir(const std::string &Dir);

/// Verifies \p Dir accepts new files by creating and removing a probe
/// file.  The cheap, honest writability test: faccessat(2) lies under
/// fancy mount/ACL configurations, creat(2) does not.
Status probeWritable(const std::string &Dir);

/// Writes \p Bytes to \p Dir/\p FileName atomically: temp file + fsync +
/// rename.  On any failure the temp file is removed (best effort) and the
/// destination is untouched.  Subject to the persist-write,
/// persist-truncate and persist-rename fault stages.
Status atomicWriteFile(const std::string &Dir, const std::string &FileName,
                       const std::string &Bytes);

/// Reads all of \p Path into \p Out.  A missing file is not an error:
/// returns Ok with \p Exists = false.  Subject to the persist-read fault
/// stage.
Status readFile(const std::string &Path, std::string &Out, bool &Exists);

/// Moves \p Path into the "quarantine" subdirectory of \p Dir (created on
/// demand), tagging the name with \p Reason.  Falls back to removing the
/// file when the move fails (e.g. a concurrent process quarantined it
/// first); the one unacceptable outcome is leaving a corrupt entry where
/// the next lookup would re-read it.
Status quarantineFile(const std::string &Dir, const std::string &FileName,
                      const std::string &Reason);

/// Removes \p Path; returns true when this call actually unlinked the
/// file (false when it was already gone or could not be removed).
bool removeFile(const std::string &Path);

/// One regular file of a directory listing, with the fields the cache's
/// size-bound eviction needs: size to account, mtime to order.
struct DirEntryInfo {
  std::string Name; ///< file name (no directory component)
  uint64_t SizeBytes = 0;
  int64_t MTimeSec = 0;  ///< last-modification time, seconds
  int64_t MTimeNsec = 0; ///< ... plus nanoseconds
};

/// Lists the regular files of \p Dir whose names end in \p Suffix
/// (non-recursive; subdirectories like quarantine/ are skipped).  Returns
/// an empty list on any error -- eviction is best-effort by design.
std::vector<DirEntryInfo> listFilesWithSuffix(const std::string &Dir,
                                              const std::string &Suffix);

} // namespace persist
} // namespace gis

#endif // GIS_PERSIST_PERSISTIO_H

//===- trace/TailDuplication.cpp - Superblock tail duplication -------------===//

#include "trace/TailDuplication.h"

#include "support/Assert.h"
#include "support/FaultInjection.h"
#include "trace/TraceFormation.h"

#include <algorithm>

using namespace gis;

namespace {

/// The block \p B falls through into, or InvalidId when its terminator
/// never falls through (unconditional branch, return).
BlockId fallthroughOf(const Function &F, BlockId B) {
  InstrId T = F.terminatorOf(B);
  if (T != InvalidId) {
    Opcode Op = F.instr(T).opcode();
    if (Op != Opcode::BT && Op != Opcode::BF)
      return InvalidId;
  }
  return F.layoutSuccessor(B);
}

} // namespace

TailDuplicationStats gis::duplicateTails(Function &F, SuperblockTrace &Trace,
                                         unsigned &BudgetLeft) {
  TailDuplicationStats Stats;
  F.recomputeCFG();
  int IPos = findFirstSideEntrance(F, Trace.Blocks);
  if (IPos < 0) {
    Trace.SideEntrances.clear();
    return Stats;
  }
  const unsigned I = static_cast<unsigned>(IPos);
  const unsigned N = static_cast<unsigned>(Trace.Blocks.size());

  // The whole tail from the first entrance is cloned at once: that clears
  // every entrance at or after position I in one pass (positions before I
  // have none, I being the first), so the budget decision is one number.
  uint64_t Cost = 0;
  for (unsigned J = I; J < N; ++J)
    Cost += F.block(Trace.Blocks[J]).size();
  if (Cost > BudgetLeft) {
    Trace.Blocks.resize(I);
    Trace.SideEntrances.clear();
    Stats.TracesTruncated = 1;
    return Stats;
  }

  auto ChainPos = [&](BlockId B) -> int {
    for (unsigned K = 0; K != N; ++K)
      if (Trace.Blocks[K] == B)
        return static_cast<int>(K);
    return -1;
  };

  // Capture side predecessors and fall-through targets before any layout
  // mutation (clone and trampoline creation edit the layout in place).
  std::vector<std::vector<BlockId>> SidePreds(N);
  for (unsigned J = I; J < N; ++J) {
    std::vector<BlockId> Ps;
    for (BlockId P : F.block(Trace.Blocks[J]).preds())
      if (P != Trace.Blocks[J - 1])
        Ps.push_back(P);
    std::sort(Ps.begin(), Ps.end());
    Ps.erase(std::unique(Ps.begin(), Ps.end()), Ps.end());
    SidePreds[J] = std::move(Ps);
  }
  std::vector<BlockId> FallOf(N, InvalidId);
  for (unsigned J = I; J < N; ++J)
    FallOf[J] = fallthroughOf(F, Trace.Blocks[J]);

  // Clone the tail blocks contiguously at the end of the layout, so the
  // chain's consecutive fall-throughs are preserved clone-to-clone.
  std::vector<BlockId> Clone(N, InvalidId);
  for (unsigned J = I; J < N; ++J) {
    BlockId C = F.createBlock(F.block(Trace.Blocks[J]).label() + ".dup");
    Clone[J] = C;
    for (InstrId Id : F.block(Trace.Blocks[J]).instrs()) {
      F.block(C).instrs().push_back(F.cloneInstr(Id));
      ++Stats.ClonedInstrs;
    }
    ++Stats.ClonedBlocks;
  }
  Stats.Changed = true;
  BudgetLeft -= static_cast<unsigned>(Cost);

  // Fault stage "tail-dup": lose one duplicate.  The function stays
  // structurally well-formed (or trips the verifier), but a path through
  // the clones now skips an instruction -- the lost-duplicate bug class
  // the transaction's oracle must catch (tests/superblock_test.cpp).
  if (Stats.ClonedInstrs &&
      FaultInjector::instance().shouldFire("tail-dup")) {
    for (unsigned J = I; J < N; ++J) {
      std::vector<InstrId> &L = F.block(Clone[J]).instrs();
      if (!L.empty()) {
        L.erase(L.begin());
        Stats.FaultInjected = true;
        break;
      }
    }
  }

  // Intra-chain taken edges of the clones follow the clone chain; the
  // loop-back to the trace head (position 0) keeps targeting the original
  // head, like a rotated loop's back edge.  Targets strictly between the
  // head and the clone's own position are impossible: such an edge would
  // have been a side entrance before position I.
  for (unsigned J = I; J < N; ++J) {
    InstrId T = F.terminatorOf(Clone[J]);
    if (T == InvalidId || !F.instr(T).isBranch())
      continue;
    int M = ChainPos(F.instr(T).target());
    GIS_ASSERT(M <= 0 || M > static_cast<int>(J),
               "backward intra-trace edge survived formation");
    if (M > static_cast<int>(J))
      F.instr(T).setTarget(Clone[M]);
  }

  // Fall-through fixups: a clone whose original falls through must reach
  // the corresponding clone (or the original off-chain/head target).  The
  // contiguous clone layout already realizes the consecutive case; the
  // rest get an explicit branch -- appended when the clone has no
  // terminator, else via a fresh block right after it (a block holds at
  // most one terminator, and it must be last: ir/Verifier.cpp).
  for (unsigned J = I; J < N; ++J) {
    BlockId X = FallOf[J];
    if (X == InvalidId)
      continue;
    int M = ChainPos(X);
    GIS_ASSERT(M <= 0 || M > static_cast<int>(J),
               "backward intra-trace fall-through survived formation");
    BlockId Desired = M > static_cast<int>(J) ? Clone[M] : X;
    BlockId ActualNext = J + 1 < N ? Clone[J + 1] : InvalidId;
    if (Desired == ActualNext)
      continue;
    Instruction Br(Opcode::B);
    Br.setTarget(Desired);
    if (F.terminatorOf(Clone[J]) == InvalidId) {
      F.appendInstr(Clone[J], Br);
    } else {
      BlockId Fix =
          F.createBlockAfter(Clone[J], F.block(Clone[J]).label() + ".ft");
      F.appendInstr(Fix, Br);
      ++Stats.TrampolineBlocks;
    }
  }

  // Redirect every side predecessor into the clone chain.  Taken edges
  // retarget in place; fall-through edges cannot (no second terminator),
  // so a trampoline block with an unconditional branch is spliced into the
  // layout right after the predecessor.
  for (unsigned J = I; J < N; ++J) {
    for (BlockId P : SidePreds[J]) {
      InstrId T = F.terminatorOf(P);
      if (T != InvalidId && F.instr(T).isBranch() &&
          F.instr(T).target() == Trace.Blocks[J])
        F.instr(T).setTarget(Clone[J]);
      bool CanFall = T == InvalidId || F.instr(T).opcode() == Opcode::BT ||
                     F.instr(T).opcode() == Opcode::BF;
      if (CanFall && F.layoutSuccessor(P) == Trace.Blocks[J]) {
        BlockId Tr = F.createBlockAfter(P, F.block(P).label() + ".tramp");
        Instruction Br(Opcode::B);
        Br.setTarget(Clone[J]);
        F.appendInstr(Tr, Br);
        ++Stats.TrampolineBlocks;
      }
    }
  }

  F.recomputeCFG();
  F.renumberOriginalOrder();
  Trace.SideEntrances.clear();
  return Stats;
}

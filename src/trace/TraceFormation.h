//===- trace/TraceFormation.h - Superblock trace picking --------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Profile-guided trace picking (DESIGN.md section 16).  Traces are grown
/// forward from seed blocks by the classic mutual-most-likely criterion:
/// the chain extends from B to successor N only when the edge B->N carries
/// the largest share of B's outgoing profile flow *and* the largest share
/// of N's incoming flow -- so neither endpoint would rather belong to a
/// different trace.  Without per-edge profile counts
/// (ProfileData::recordEdges) a static branch-not-taken heuristic stands
/// in: chains follow sole successors and conditional fall-throughs, the
/// shape the paper's RS/6000 codegen lays out for the expected path.
///
/// Formation is pure analysis -- it never mutates the function.  The
/// chains it returns may still have side entrances; tail duplication
/// (trace/TailDuplication.h) removes them (or truncates the trace) before
/// the chain becomes a schedulable superblock region.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_TRACE_TRACEFORMATION_H
#define GIS_TRACE_TRACEFORMATION_H

#include "analysis/LoopInfo.h"
#include "sched/Profile.h"
#include "trace/Trace.h"

#include <vector>

namespace gis {

struct TraceFormationOptions {
  /// Maximum chain length in blocks (the pipeline additionally caps this
  /// to its region block limit).
  unsigned MaxBlocks = 8;
  /// Optional execution profile (borrowed; may be null).  Mutual-most-
  /// likely selection needs the per-edge counts; with none recorded for
  /// the function the static heuristic is used.
  const ProfileData *Profile = nullptr;
};

/// Forms pairwise block-disjoint traces over \p F.  Chains never cross a
/// loop boundary (every block shares the seed's innermost loop), never
/// re-enter a loop header mid-chain (a header's back-edge predecessors
/// cannot be tail-duplicated away), and only chains of two or more blocks
/// are returned.  Deterministic: seeds are visited hottest-first (layout
/// order under the static heuristic; ties toward layout order), so the
/// result depends only on the function and the profile.
std::vector<SuperblockTrace> formTraces(const Function &F, const LoopInfo &LI,
                                        const TraceFormationOptions &Opts);

/// First chain position (>= 1) of \p Blocks whose block has a CFG
/// predecessor other than the preceding chain block, or -1 when the chain
/// is single-entry.  Requires \p F's CFG edge lists to be current.
int findFirstSideEntrance(const Function &F,
                          const std::vector<BlockId> &Blocks);

} // namespace gis

#endif // GIS_TRACE_TRACEFORMATION_H

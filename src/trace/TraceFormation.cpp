//===- trace/TraceFormation.cpp - Superblock trace picking -----------------===//

#include "trace/TraceFormation.h"

#include <algorithm>

using namespace gis;

int gis::findFirstSideEntrance(const Function &F,
                               const std::vector<BlockId> &Blocks) {
  for (unsigned K = 1; K < Blocks.size(); ++K)
    for (BlockId P : F.block(Blocks[K]).preds())
      if (P != Blocks[K - 1])
        return static_cast<int>(K);
  return -1;
}

namespace {

/// The block \p B falls through into, or InvalidId when its terminator
/// never falls through (unconditional branch, return).
BlockId fallthroughOf(const Function &F, BlockId B) {
  InstrId T = F.terminatorOf(B);
  if (T != InvalidId) {
    Opcode Op = F.instr(T).opcode();
    if (Op != Opcode::BT && Op != Opcode::BF)
      return InvalidId; // B or RET: never falls through
  }
  return F.layoutSuccessor(B);
}

} // namespace

std::vector<SuperblockTrace>
gis::formTraces(const Function &F, const LoopInfo &LI,
                const TraceFormationOptions &Opts) {
  std::vector<SuperblockTrace> Traces;
  if (Opts.MaxBlocks < 2)
    return Traces;

  const bool HaveEdges = Opts.Profile && Opts.Profile->hasEdges(F.name());
  auto EdgeFreq = [&](BlockId From, BlockId To) -> uint64_t {
    return Opts.Profile->edgeFrequency(F, From, To);
  };

  // Loop headers may head a trace (the hot-loop superblock) but never sit
  // mid-chain: their back-edge predecessors cannot be redirected to a
  // duplicate without rewriting the loop itself.
  std::vector<bool> IsHeader(F.numBlocks(), false);
  for (unsigned L = 0; L != LI.numLoops(); ++L)
    IsHeader[LI.loop(L).Header] = true;

  // Seeds, hottest block first so the hottest path claims its blocks (and
  // later, its duplication budget) before lukewarm ones; stable on layout
  // order so the result is deterministic with or without a profile.
  std::vector<BlockId> Seeds(F.layout());
  if (HaveEdges)
    std::stable_sort(Seeds.begin(), Seeds.end(), [&](BlockId A, BlockId B) {
      return Opts.Profile->frequency(F, A) > Opts.Profile->frequency(F, B);
    });

  std::vector<bool> InTrace(F.numBlocks(), false);

  for (BlockId Seed : Seeds) {
    if (InTrace[Seed])
      continue;

    SuperblockTrace T;
    T.Blocks.push_back(Seed);
    T.HeadFreq = HaveEdges ? Opts.Profile->frequency(F, Seed) : 0;
    const int SeedLoop = LI.innermostLoopOf(Seed);

    BlockId Cur = Seed;
    while (T.Blocks.size() < Opts.MaxBlocks) {
      // A successor is extendable when it keeps the chain a candidate
      // superblock: unclaimed, same innermost loop, not the function
      // entry, not a loop header, not already in this chain.
      auto Extendable = [&](BlockId N) {
        if (N >= F.numBlocks() || InTrace[N] || IsHeader[N] ||
            N == F.entry() || LI.innermostLoopOf(N) != SeedLoop)
          return false;
        return std::find(T.Blocks.begin(), T.Blocks.end(), N) ==
               T.Blocks.end();
      };

      BlockId Next = InvalidId;
      if (HaveEdges) {
        // Mutual most likely: B's hottest outgoing edge, provided no other
        // predecessor of the target feeds it more flow.  Ties break toward
        // the fall-through, then the smaller block id -- deterministic.
        const BlockId Fall = fallthroughOf(F, Cur);
        uint64_t BestW = 0;
        BlockId Best = InvalidId;
        for (BlockId S : F.block(Cur).succs()) {
          uint64_t W = EdgeFreq(Cur, S);
          if (W == 0)
            continue;
          bool TieWin = Best != Fall && (S == Fall || S < Best);
          if (Best == InvalidId || W > BestW || (W == BestW && TieWin)) {
            BestW = W;
            Best = S;
          }
        }
        if (Best != InvalidId && Extendable(Best)) {
          bool Mutual = true;
          for (BlockId P : F.block(Best).preds())
            if (P != Cur && EdgeFreq(P, Best) > BestW)
              Mutual = false;
          if (Mutual)
            Next = Best;
        }
      } else {
        // Static branch-not-taken heuristic: follow a sole successor or a
        // conditional's fall-through; require the target to either have us
        // as its only predecessor or be entered by our fall-through (the
        // layout hot path), so chains track the laid-out expected path.
        const std::vector<BlockId> &Succs = F.block(Cur).succs();
        BlockId Cand = InvalidId;
        if (Succs.size() == 1)
          Cand = Succs.front();
        else if (Succs.size() > 1)
          Cand = fallthroughOf(F, Cur);
        if (Cand != InvalidId && Extendable(Cand)) {
          const std::vector<BlockId> &Preds = F.block(Cand).preds();
          bool SolePred = true;
          for (BlockId P : Preds)
            SolePred &= P == Cur;
          if (SolePred || fallthroughOf(F, Cur) == Cand)
            Next = Cand;
        }
      }

      if (Next == InvalidId)
        break;
      T.Blocks.push_back(Next);
      Cur = Next;
    }

    if (T.Blocks.size() < 2)
      continue;
    for (unsigned K = 1; K != T.Blocks.size(); ++K)
      for (BlockId P : F.block(T.Blocks[K]).preds())
        if (P != T.Blocks[K - 1]) {
          T.SideEntrances.push_back(K);
          break;
        }
    for (BlockId B : T.Blocks)
      InTrace[B] = true;
    Traces.push_back(std::move(T));
  }

  return Traces;
}

//===- trace/TailDuplication.h - Superblock tail duplication ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tail duplication (DESIGN.md section 16): the generalization of the
/// restricted join-replication pass (sched/Duplication.h) from single
/// instructions hoisted above a join to whole trace tails.  For the first
/// side entrance at chain position i, the tail blocks[i..n] is cloned and
/// every off-chain predecessor is redirected into the clone chain, so each
/// remaining trace block's sole predecessor is its chain predecessor --
/// the head then dominates the whole chain and the paper's Definition 6
/// duplication motions along it become plain useful/speculative motions
/// for the existing global scheduler.
///
/// Code growth is bounded by a per-function budget of cloned
/// instructions; an unaffordable tail truncates the trace at the side
/// entrance instead (the shorter chain is still single-entry).  The
/// transform registers the "tail-dup" fault-injection stage: the injected
/// fault drops one cloned instruction -- a structurally well-formed but
/// semantically wrong function, exactly the lost-duplicate bug class --
/// which the transaction's differential oracle must catch and roll back
/// (see support/FaultInjection.h).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_TRACE_TAILDUPLICATION_H
#define GIS_TRACE_TAILDUPLICATION_H

#include "trace/Trace.h"

namespace gis {

struct TailDuplicationStats {
  unsigned ClonedInstrs = 0;     ///< instructions copied into clone blocks
  unsigned ClonedBlocks = 0;     ///< clone blocks created
  unsigned TrampolineBlocks = 0; ///< fall-through redirect blocks created
  unsigned TracesTruncated = 0;  ///< 1 when the budget forced a truncation
  bool Changed = false;          ///< any mutation of the function
  bool FaultInjected = false;    ///< the "tail-dup" fault fired in here
};

/// Makes \p Trace single-entry: clones the tail from the first side
/// entrance onward and redirects every side predecessor into the clones,
/// or -- when the tail's instruction count exceeds \p BudgetLeft --
/// truncates \p Trace at the entrance instead.  \p BudgetLeft is
/// decremented by the instructions actually cloned.  Recomputes the
/// function's CFG before deciding and after mutating, so stale
/// SuperblockTrace::SideEntrances data (e.g. entrances added by an earlier
/// trace's duplication) is handled; a no-op on already single-entry
/// traces.
TailDuplicationStats duplicateTails(Function &F, SuperblockTrace &Trace,
                                    unsigned &BudgetLeft);

} // namespace gis

#endif // GIS_TRACE_TAILDUPLICATION_H

//===- trace/Trace.h - Superblock traces ------------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared types of the trace-scheduling subsystem (DESIGN.md section 16).
/// A superblock trace is a chain of basic blocks expected to execute in
/// sequence: single entry at the head, side exits allowed anywhere.  The
/// paper's third motion type -- scheduling with duplication, Definition 6,
/// deferred in its prototype ("no duplication of code is allowed") -- pays
/// off exactly along such chains: once tail duplication removes the side
/// *entrances*, every block of the chain is dominated by the head, the
/// duplication-class motions (A does not dominate B) degenerate into plain
/// useful/speculative ones, and the existing global scheduler handles the
/// chain as one region (analysis/Region.h: SchedRegion::buildTrace).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_TRACE_TRACE_H
#define GIS_TRACE_TRACE_H

#include "ir/Function.h"

#include <vector>

namespace gis {

/// One formed trace: a candidate superblock.
struct SuperblockTrace {
  /// The chain, head first, in intended execution order.  Consecutive
  /// blocks are connected by a CFG edge (branch or fall-through).
  std::vector<BlockId> Blocks;

  /// Chain positions (>= 1) whose block has a CFG predecessor other than
  /// the preceding chain block -- the side entrances tail duplication must
  /// remove (or the trace be truncated at) before the chain is a
  /// schedulable superblock.  Ascending.
  std::vector<unsigned> SideEntrances;

  /// Profile frequency of the head block (0 under the static heuristic);
  /// hotter traces are formed -- and spend duplication budget -- first.
  uint64_t HeadFreq = 0;

  bool singleEntry() const { return SideEntrances.empty(); }
};

} // namespace gis

#endif // GIS_TRACE_TRACE_H

//===- support/RNG.h - Deterministic random number generator ---*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, explicitly-seeded SplitMix64 generator.  All randomized pieces
/// of GIS (workload generators, property tests) draw from this so results
/// are reproducible across platforms and standard-library versions.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_RNG_H
#define GIS_SUPPORT_RNG_H

#include "support/Assert.h"

#include <cstdint>

namespace gis {

/// SplitMix64 pseudo-random generator with convenience range helpers.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound).  \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    GIS_ASSERT(Bound != 0, "nextBelow(0) is meaningless");
    return next() % Bound;
  }

  /// Uniform value in the inclusive range [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    GIS_ASSERT(Lo <= Hi, "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return nextBelow(100) < Percent; }

private:
  uint64_t State;
};

} // namespace gis

#endif // GIS_SUPPORT_RNG_H

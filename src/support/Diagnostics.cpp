//===- support/Diagnostics.cpp - Structured pass diagnostics ---------------===//

#include "support/Diagnostics.h"

#include "support/Format.h"

using namespace gis;

std::string Diagnostic::str() const {
  return formatString("%s/%s(loop %d): %s: %s", Function.c_str(),
                      Stage.c_str(), LoopIndex, errorCodeName(Code),
                      Message.c_str());
}

void gis::reportDiagnostic(std::vector<Diagnostic> &Sink, const Status &S,
                           const std::string &Function,
                           const std::string &Stage, int LoopIndex) {
  Diagnostic D;
  D.Code = S.code();
  D.Function = Function;
  D.Stage = Stage;
  D.LoopIndex = LoopIndex;
  D.Message = S.message();
  Sink.push_back(std::move(D));
}

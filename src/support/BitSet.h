//===- support/BitSet.h - Dense dynamically-sized bit set ------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense bit set over a fixed universe [0, size).  Used for reachability,
/// liveness and dependence transitive-closure computations where the
/// universe (blocks or instructions of one region) is small and known
/// up front.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_BITSET_H
#define GIS_SUPPORT_BITSET_H

#include "support/Assert.h"

#include <cstdint>
#include <vector>

namespace gis {

/// Dense bit set with the usual set-algebra operations.  All binary
/// operations require both operands to have the same universe size.
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(unsigned Size)
      : NumBits(Size), Words((Size + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  bool test(unsigned I) const {
    GIS_ASSERT(I < NumBits, "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(unsigned I) {
    GIS_ASSERT(I < NumBits, "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(unsigned I) {
    GIS_ASSERT(I < NumBits, "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Sets this to the union with \p RHS; returns true if this changed.
  bool unionWith(const BitSet &RHS) {
    GIS_ASSERT(NumBits == RHS.NumBits, "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Sets this to the intersection with \p RHS; returns true if changed.
  bool intersectWith(const BitSet &RHS) {
    GIS_ASSERT(NumBits == RHS.NumBits, "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Removes every bit that is set in \p RHS; returns true if changed.
  bool subtract(const BitSet &RHS) {
    GIS_ASSERT(NumBits == RHS.NumBits, "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  bool anyCommon(const BitSet &RHS) const {
    GIS_ASSERT(NumBits == RHS.NumBits, "universe size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & RHS.Words[I])
        return true;
    return false;
  }

  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const BitSet &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  /// Calls \p Fn for every set bit in ascending order.
  template <typename CallableT> void forEach(CallableT Fn) const {
    for (size_t WI = 0, E = Words.size(); WI != E; ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(static_cast<unsigned>(WI * 64 + Bit));
        W &= W - 1;
      }
    }
  }

private:
  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace gis

#endif // GIS_SUPPORT_BITSET_H

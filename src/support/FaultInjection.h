//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the transactional pipeline.  The
/// rollback paths are only trustworthy if they are exercised; this hook
/// corrupts the output of a chosen transform on its Nth occurrence so the
/// verifier/rollback machinery can be tested end to end.
///
/// Armed either programmatically (tests) or with the GIS_FAULT_INJECT
/// environment variable, whose value is "<stage>" or "<stage>:<n>": the
/// stage is one of the pipeline stage names ("prerename", "unroll",
/// "rotate", "region", "duplicate", "local") and n is the 1-based
/// occurrence of that stage to corrupt (default 1).  The fault fires once
/// per arming.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_FAULTINJECTION_H
#define GIS_SUPPORT_FAULTINJECTION_H

#include <string>

namespace gis {

class Function;

/// Process-wide fault-injection state (the project is single-threaded).
class FaultInjector {
public:
  /// The singleton; on first use it arms itself from GIS_FAULT_INJECT if
  /// the variable is set.
  static FaultInjector &instance();

  /// Arms the injector from a "<stage>[:<n>]" spec; empty disarms.
  /// Re-arming resets the occurrence and fire counters.
  void arm(const std::string &Spec);
  void disarm() { arm(""); }

  bool armed() const { return !Stage.empty(); }
  const std::string &stage() const { return Stage; }
  unsigned trigger() const { return Trigger; }

  /// Call once per occurrence of \p StageName; returns true exactly when
  /// the armed stage's Nth occurrence is reached (one-shot: subsequent
  /// occurrences return false until re-armed).
  bool shouldFire(const char *StageName);

  /// Number of times this arming has fired (0 or 1).
  unsigned firedCount() const { return Fired; }

private:
  FaultInjector();

  std::string Stage;
  unsigned Trigger = 1;
  unsigned Seen = 0;
  unsigned Fired = 0;
};

/// Deterministically corrupts \p F the way a buggy transform would:
/// reverses the instruction list of the first block that ends in a
/// terminator and has at least two instructions (the terminator lands
/// first -- structurally ill-formed), or, failing that, appends a
/// duplicate of the first instruction of the first nonempty block (one
/// instruction in two positions).  Returns false when the function has no
/// corruptible block.
bool corruptFunctionForTest(Function &F);

} // namespace gis

#endif // GIS_SUPPORT_FAULTINJECTION_H

//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the transactional pipeline.  The
/// rollback paths are only trustworthy if they are exercised; this hook
/// corrupts the output of a chosen transform on its Nth occurrence so the
/// verifier/rollback machinery can be tested end to end.
///
/// Armed either programmatically (tests) or with the GIS_FAULT_INJECT
/// environment variable, whose value is "<stage>" or "<stage>:<n>": the
/// stage is one of the pipeline stage names ("prerename", "unroll",
/// "rotate", "region", "duplicate", "local") and n is the 1-based
/// occurrence of that stage to corrupt (default 1).  The fault fires once
/// per arming.
///
/// The persistent-cache I/O layer (persist/PersistIO.h) registers four
/// more stages -- "persist-write", "persist-rename", "persist-read" and
/// "persist-truncate" -- whose fault is an I/O failure (or a torn write)
/// instead of IR corruption, so crash recovery of the disk cache is tested
/// with the same deterministic fail-at-Nth machinery.
///
/// The global scheduler's incremental fast path (DESIGN.md section 14)
/// registers two more: "liveness-delta" empties the target block's
/// live-on-exit set right after a freshen (stale-delta simulation; illegal
/// speculation may slip past the Section 5.3 guard, and the verifier or
/// rollback must catch it), and "heur-delta" zeroes the D/CP arrays after
/// a refresh (priority-only corruption; the schedule may differ but stays
/// legal).  Both set a force-full flag so the next update self-heals.
///
/// The round-two incremental machinery (DESIGN.md section 15) registers
/// two more: "disambig-cache" flips one provablyDisjoint answer of the
/// memory disambiguator (a poisoned cached alias fact; the fabricated
/// independence edge can admit an illegal motion, which the verifier or
/// the interpreter oracle must catch before commit), and "ckpt-delta"
/// drops one record from a delta checkpoint right before rollback (a
/// lost-delta simulation; the restore's manifest check must detect the
/// incomplete rollback and abort rather than continue from a silently
/// half-restored function).
///
/// The superblock phase (DESIGN.md section 16) registers two more:
/// "trace-form" corrupts the function after the (pure-analysis) trace
/// formation transaction via the generic corruption below, proving the
/// phase's rollback discards every formed trace along with the function
/// state; and "tail-dup" is fired *inside* the tail-duplication transform
/// (trace/TailDuplication.cpp), dropping one cloned instruction -- a
/// structurally well-formed but semantically wrong function, the
/// lost-duplicate bug class that only the differential oracle can catch.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_FAULTINJECTION_H
#define GIS_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gis {

class Function;
using BlockId = uint32_t;

/// Process-wide fault-injection state.
///
/// Reentrancy contract: the injector is shared global state, the one
/// deliberate exception to the pipeline's "no shared mutable state" rule
/// (see sched/Pipeline.h).  shouldFire/arm/disarm are internally
/// synchronized, so concurrent pipeline runs (CompileEngine workers) are
/// data-race free and the fault still fires exactly once per arming --
/// but *which* concurrent run observes it is scheduling-dependent.  Tests
/// that assert on the faulted function must arm and fire on one thread.
class FaultInjector {
public:
  /// The singleton; on first use it arms itself from GIS_FAULT_INJECT if
  /// the variable is set.
  static FaultInjector &instance();

  /// Arms the injector from a "<stage>[:<n>]" spec; empty disarms.
  /// Re-arming resets the occurrence and fire counters.
  void arm(const std::string &Spec);
  void disarm() { arm(""); }

  bool armed() const {
    std::lock_guard<std::mutex> L(Mu);
    return !Stage.empty();
  }
  std::string stage() const {
    std::lock_guard<std::mutex> L(Mu);
    return Stage;
  }
  unsigned trigger() const {
    std::lock_guard<std::mutex> L(Mu);
    return Trigger;
  }

  /// Call once per occurrence of \p StageName; returns true exactly when
  /// the armed stage's Nth occurrence is reached (one-shot: subsequent
  /// occurrences return false until re-armed).  Occurrences observed from
  /// concurrent threads count in arrival order.
  bool shouldFire(const char *StageName);

  /// Number of times this arming has fired (0 or 1).
  unsigned firedCount() const {
    std::lock_guard<std::mutex> L(Mu);
    return Fired;
  }

private:
  FaultInjector();

  mutable std::mutex Mu;
  std::string Stage;
  unsigned Trigger = 1;
  unsigned Seen = 0;
  unsigned Fired = 0;
};

/// Deterministically corrupts \p F the way a buggy transform would:
/// reverses the instruction list of the first block that ends in a
/// terminator and has at least two instructions (the terminator lands
/// first -- structurally ill-formed), or, failing that, appends a
/// duplicate of the first instruction of the first nonempty block (one
/// instruction in two positions).  Returns false when the function has no
/// corruptible block.
bool corruptFunctionForTest(Function &F);

/// Same corruption strategies, restricted to \p Blocks (one scheduling
/// region's blocks): a "region" fault then damages exactly the region that
/// owns the transaction, so tests can assert sibling regions survive the
/// rollback untouched.  Returns false when no listed block is corruptible.
bool corruptRegionForTest(Function &F, const std::vector<BlockId> &Blocks);

} // namespace gis

#endif // GIS_SUPPORT_FAULTINJECTION_H

//===- support/FaultInjection.cpp - Deterministic fault injection ----------===//

#include "support/FaultInjection.h"

#include "ir/Function.h"

#include <algorithm>
#include <cstdlib>

using namespace gis;

FaultInjector &FaultInjector::instance() {
  static FaultInjector Singleton;
  return Singleton;
}

FaultInjector::FaultInjector() {
  if (const char *Spec = std::getenv("GIS_FAULT_INJECT"))
    arm(Spec);
}

void FaultInjector::arm(const std::string &Spec) {
  std::lock_guard<std::mutex> L(Mu);
  Stage.clear();
  Trigger = 1;
  Seen = 0;
  Fired = 0;
  if (Spec.empty())
    return;
  size_t Colon = Spec.find(':');
  Stage = Spec.substr(0, Colon);
  if (Colon != std::string::npos) {
    unsigned long N = std::strtoul(Spec.c_str() + Colon + 1, nullptr, 10);
    Trigger = N > 0 ? static_cast<unsigned>(N) : 1;
  }
}

bool FaultInjector::shouldFire(const char *StageName) {
  std::lock_guard<std::mutex> L(Mu);
  if (Stage.empty() || Fired > 0 || Stage != StageName)
    return false;
  if (++Seen != Trigger)
    return false;
  ++Fired;
  return true;
}

bool gis::corruptFunctionForTest(Function &F) {
  return corruptRegionForTest(F, F.layout());
}

bool gis::corruptRegionForTest(Function &F,
                               const std::vector<BlockId> &Blocks) {
  // Prefer a reordering corruption that the structural verifier is
  // guaranteed to catch: a reversed block puts its terminator first.
  for (BlockId B : Blocks) {
    std::vector<InstrId> &Instrs = F.block(B).instrs();
    if (Instrs.size() >= 2 && F.terminatorOf(B) != InvalidId) {
      std::reverse(Instrs.begin(), Instrs.end());
      return true;
    }
  }
  // Fallback: one instruction in two positions.
  for (BlockId B : Blocks) {
    std::vector<InstrId> &Instrs = F.block(B).instrs();
    if (!Instrs.empty()) {
      Instrs.push_back(Instrs.front());
      return true;
    }
  }
  return false;
}

//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for the batch-compilation engine.  Each
/// worker owns a deque: it pushes and pops work at the back (LIFO, cache
/// warm) and victims are stolen from at the front (FIFO, oldest first), the
/// classic work-stealing discipline.  External submissions are distributed
/// round-robin across the worker deques.
///
/// Reentrancy contract: submit() may be called from any thread, including
/// from inside a running task (a task's own submissions land on the calling
/// worker's deque).  waitIdle() blocks until every submitted task -- and
/// every task those tasks submitted -- has finished; it must not be called
/// from inside a task.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_THREADPOOL_H
#define GIS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gis {

class ThreadPool {
public:
  /// Starts \p NumThreads workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one task.  Tasks must not throw (the pool does not transport
  /// exceptions; carry failures through captured state instead).
  void submit(std::function<void()> Task);

  /// Blocks until all submitted tasks have completed.
  void waitIdle();

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareThreads();

private:
  struct WorkerQueue {
    std::mutex Mu;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Index);
  bool popTask(unsigned Self, std::function<void()> &Task);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  // Sleep/wake and lifecycle.  Pending counts submitted-but-unfinished
  // tasks (waitIdle's condition); Queued counts tasks sitting in deques
  // (the workers' sleep condition -- excluding running tasks, so an idle
  // worker sleeps instead of spinning while a long task runs elsewhere).
  std::mutex Mu;
  std::condition_variable WorkAvailable;
  std::condition_variable Idle;
  unsigned Pending = 0;
  unsigned Queued = 0;
  unsigned NextQueue = 0; ///< round-robin cursor for external submissions
  bool ShuttingDown = false;
};

} // namespace gis

#endif // GIS_SUPPORT_THREADPOOL_H

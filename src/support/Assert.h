//===- support/Assert.h - Assertions and fatal errors ----------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers shared by all GIS libraries.  GIS_ASSERT is an assert
/// that is kept in all build types (the library is a research artefact where
/// internal-consistency failures must never be silently ignored), and
/// gis_unreachable marks control flow that must not be reached.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_ASSERT_H
#define GIS_SUPPORT_ASSERT_H

#include <cstdio>
#include <cstdlib>

namespace gis {

/// Prints a fatal-error diagnostic and aborts.  Used for broken invariants;
/// recoverable conditions go through error returns instead.
[[noreturn]] inline void fatalError(const char *File, int Line,
                                    const char *Msg) {
  std::fprintf(stderr, "%s:%d: fatal error: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace gis

/// Always-on assertion with a mandatory message.
#define GIS_ASSERT(Cond, Msg)                                                  \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::gis::fatalError(__FILE__, __LINE__, "assertion failed: " #Cond         \
                                            " -- " Msg);                       \
  } while (false)

/// Marks a point in the code that must never execute.
#define gis_unreachable(Msg) ::gis::fatalError(__FILE__, __LINE__, Msg)

#endif // GIS_SUPPORT_ASSERT_H

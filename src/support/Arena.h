//===- support/Arena.h - Flat span arenas for analysis data -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny struct-of-arrays building block: SpanArena<T> packs many small
/// per-node sequences (register def/use lists, adjacency rows) into one
/// contiguous buffer addressed by (offset, length) spans.  Compared to a
/// vector-of-vectors it removes one pointer indirection and one heap
/// allocation per node, so the O(n^2) pairwise walks of the dependence
/// builder and the per-pick fact lookups of the scheduler touch memory
/// sequentially.  The arena only grows; spans stay valid across appends
/// because they are indices, not pointers.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_ARENA_H
#define GIS_SUPPORT_ARENA_H

#include "support/Assert.h"

#include <cstdint>
#include <vector>

namespace gis {

/// A half-open index range into a SpanArena's buffer.
struct ArenaSpan {
  uint32_t Offset = 0;
  uint32_t Length = 0;
};

/// Append-only flat storage for many small T-sequences.
template <typename T> class SpanArena {
public:
  /// Copies [First, Last) into the arena and returns its span.
  template <typename IterT> ArenaSpan append(IterT First, IterT Last) {
    ArenaSpan S;
    S.Offset = static_cast<uint32_t>(Data.size());
    Data.insert(Data.end(), First, Last);
    GIS_ASSERT(Data.size() <= UINT32_MAX, "span arena overflow");
    S.Length = static_cast<uint32_t>(Data.size()) - S.Offset;
    return S;
  }

  template <typename RangeT> ArenaSpan append(const RangeT &R) {
    return append(R.begin(), R.end());
  }

  const T *begin(ArenaSpan S) const { return Data.data() + S.Offset; }
  const T *end(ArenaSpan S) const { return Data.data() + S.Offset + S.Length; }

  size_t size() const { return Data.size(); }

  /// Bytes the arena's buffer has reserved (capacity, not size): the number
  /// the obs coldpath.arena_bytes counter reports.
  uint64_t bytesReserved() const {
    return static_cast<uint64_t>(Data.capacity()) * sizeof(T);
  }

  void reserve(size_t N) { Data.reserve(N); }

private:
  std::vector<T> Data;
};

/// A borrowed view of one span, usable in range-for.
template <typename T> class SpanRange {
public:
  SpanRange(const SpanArena<T> &A, ArenaSpan S)
      : First(A.begin(S)), Last(A.end(S)) {}
  const T *begin() const { return First; }
  const T *end() const { return Last; }
  bool empty() const { return First == Last; }
  size_t size() const { return static_cast<size_t>(Last - First); }

private:
  const T *First;
  const T *Last;
};

} // namespace gis

#endif // GIS_SUPPORT_ARENA_H

//===- support/ThreadPool.cpp - Work-stealing thread pool ------------------===//

#include "support/ThreadPool.h"

#include "support/Assert.h"

using namespace gis;

namespace {

/// Identity of the worker running on this thread, if any: task-internal
/// submissions go straight to the calling worker's own deque.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorker = 0;

} // namespace

unsigned ThreadPool::hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = hardwareThreads();
  Queues.reserve(NumThreads);
  for (unsigned K = 0; K != NumThreads; ++K)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(NumThreads);
  for (unsigned K = 0; K != NumThreads; ++K)
    Workers.emplace_back([this, K] { workerLoop(K); });
}

ThreadPool::~ThreadPool() {
  waitIdle();
  {
    std::lock_guard<std::mutex> L(Mu);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  GIS_ASSERT(Task, "null task submitted");
  unsigned Target;
  {
    std::lock_guard<std::mutex> L(Mu);
    GIS_ASSERT(!ShuttingDown, "submit after shutdown");
    ++Pending;
    ++Queued;
    // A worker submitting from inside a task keeps the work local;
    // external submissions spread round-robin.
    Target = CurrentPool == this
                 ? CurrentWorker
                 : (NextQueue++ % static_cast<unsigned>(Queues.size()));
  }
  {
    std::lock_guard<std::mutex> QL(Queues[Target]->Mu);
    Queues[Target]->Tasks.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::popTask(unsigned Self, std::function<void()> &Task) {
  // Own deque: back (most recently pushed; cache-warm LIFO).
  {
    WorkerQueue &Q = *Queues[Self];
    std::lock_guard<std::mutex> L(Q.Mu);
    if (!Q.Tasks.empty()) {
      Task = std::move(Q.Tasks.back());
      Q.Tasks.pop_back();
      return true;
    }
  }
  // Steal: front of a victim's deque (oldest first).
  for (unsigned Off = 1; Off != Queues.size(); ++Off) {
    WorkerQueue &Q =
        *Queues[(Self + Off) % static_cast<unsigned>(Queues.size())];
    std::lock_guard<std::mutex> L(Q.Mu);
    if (!Q.Tasks.empty()) {
      Task = std::move(Q.Tasks.front());
      Q.Tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentWorker = Index;
  std::function<void()> Task;
  while (true) {
    if (popTask(Index, Task)) {
      {
        std::lock_guard<std::mutex> L(Mu);
        --Queued;
      }
      Task();
      Task = nullptr;
      std::lock_guard<std::mutex> L(Mu);
      if (--Pending == 0)
        Idle.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> L(Mu);
    if (ShuttingDown)
      return;
    if (Queued > 0)
      continue; // a task was pushed between our scan and this lock; rescan
    WorkAvailable.wait(L, [&] { return ShuttingDown || Queued > 0; });
    if (ShuttingDown)
      return;
  }
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> L(Mu);
  Idle.wait(L, [&] { return Pending == 0; });
}

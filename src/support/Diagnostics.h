//===- support/Diagnostics.h - Structured pass diagnostics ------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured diagnostics for the transactional scheduling pipeline.  Each
/// rolled-back or degraded transform produces one Diagnostic record (which
/// pass, which region, what went wrong); the records are collected into
/// PipelineStats so a batch compile can report every skipped region without
/// ever aborting.
///
/// Reentrancy contract: there is no global diagnostic sink.  Every sink is
/// a caller-owned vector (one per pipeline run), so concurrent compiles
/// (engine/CompileEngine.h) never share one; the engine merges the
/// per-run vectors in input order after all workers finish.  A sink must
/// not be passed to two concurrent pipeline runs.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_DIAGNOSTICS_H
#define GIS_SUPPORT_DIAGNOSTICS_H

#include "support/Status.h"

#include <string>
#include <vector>

namespace gis {

/// One recoverable failure observed by the pipeline.
struct Diagnostic {
  ErrorCode Code = ErrorCode::Ok;
  std::string Function; ///< function being transformed
  std::string Stage;    ///< pipeline stage ("unroll", "region", "local", ...)
  int LoopIndex = -1;   ///< region loop index (-1: top level / whole function)
  std::string Message;  ///< human-readable detail

  /// Renders "function/stage(loop): code: message".
  std::string str() const;
};

/// Appends a diagnostic built from \p S to \p Sink.
void reportDiagnostic(std::vector<Diagnostic> &Sink, const Status &S,
                      const std::string &Function, const std::string &Stage,
                      int LoopIndex);

} // namespace gis

#endif // GIS_SUPPORT_DIAGNOSTICS_H

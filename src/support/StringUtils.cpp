//===- support/StringUtils.cpp - Small string helpers --------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace gis;

std::string_view gis::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> gis::split(std::string_view S, char Sep,
                                         bool KeepEmpty) {
  std::vector<std::string_view> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      std::string_view Piece = S.substr(Start, I - Start);
      if (KeepEmpty || !Piece.empty())
        Pieces.push_back(Piece);
      Start = I + 1;
    }
  }
  return Pieces;
}

bool gis::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool gis::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

//===- support/Hashing.h - Stable content hashing ---------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable (cross-run, cross-platform) content hashing for the engine's
/// content-addressed schedule cache.  FNV-1a over explicitly serialized
/// bytes: the hash of a value is a pure function of its content, never of
/// addresses or iteration order, so cache keys are reproducible.
///
/// Keys are 128 bits (two independently-seeded 64-bit streams).  A 64-bit
/// key would make a silent collision -- and thus silently wrong code served
/// from the cache -- merely improbable; 128 bits makes it negligible for
/// any realistic cache population.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_HASHING_H
#define GIS_SUPPORT_HASHING_H

#include <cstdint>
#include <functional>
#include <string_view>

namespace gis {

/// A 128-bit content key.
struct Key128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  friend bool operator==(const Key128 &A, const Key128 &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Key128 &A, const Key128 &B) {
    return !(A == B);
  }
};

/// std::hash-compatible functor for Key128 (the key is already uniform).
struct Key128Hash {
  size_t operator()(const Key128 &K) const {
    return static_cast<size_t>(K.Lo ^ (K.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental FNV-1a (64-bit) over a serialized byte stream.
class HashBuilder {
public:
  explicit HashBuilder(uint64_t Seed = 0xcbf29ce484222325ULL)
      : State(Seed) {}

  HashBuilder &addByte(uint8_t B) {
    State = (State ^ B) * 0x100000001b3ULL;
    return *this;
  }

  HashBuilder &addBytes(const void *Data, size_t Size) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t K = 0; K != Size; ++K)
      addByte(P[K]);
    return *this;
  }

  /// Length-prefixed, so adjacent strings cannot alias each other.
  HashBuilder &addString(std::string_view S) {
    addU64(S.size());
    return addBytes(S.data(), S.size());
  }

  /// Fixed-width little-endian serialization (not memcpy of host bytes, so
  /// the stream is endian-independent).
  HashBuilder &addU64(uint64_t V) {
    for (unsigned K = 0; K != 8; ++K)
      addByte(static_cast<uint8_t>(V >> (8 * K)));
    return *this;
  }

  HashBuilder &addU32(uint32_t V) { return addU64(V); }
  HashBuilder &addBool(bool V) { return addByte(V ? 1 : 0); }

  uint64_t hash() const { return State; }

private:
  uint64_t State;
};

/// Hashes one byte stream under two seeds into a 128-bit key.  Callers
/// serialize into a string (or feed two builders) and call this once.
inline Key128 hashKey128(std::string_view Bytes) {
  HashBuilder Lo(0xcbf29ce484222325ULL);
  HashBuilder Hi(0x9ae16a3b2f90404fULL);
  Lo.addBytes(Bytes.data(), Bytes.size());
  Hi.addBytes(Bytes.data(), Bytes.size());
  return Key128{Lo.hash(), Hi.hash()};
}

} // namespace gis

#endif // GIS_SUPPORT_HASHING_H

//===- support/Format.h - printf-style string formatting -------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-formatting helpers.  The toolchain used for this project has
/// no std::format, so formatString wraps vsnprintf with std::string output.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_FORMAT_H
#define GIS_SUPPORT_FORMAT_H

#include <string>

namespace gis {

/// Returns the printf-style formatting of the arguments as a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Pads \p S with spaces on the right up to \p Width columns.
std::string padRight(const std::string &S, unsigned Width);

/// Pads \p S with spaces on the left up to \p Width columns.
std::string padLeft(const std::string &S, unsigned Width);

} // namespace gis

#endif // GIS_SUPPORT_FORMAT_H

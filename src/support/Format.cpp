//===- support/Format.cpp - printf-style string formatting ---------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace gis;

std::string gis::formatString(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string gis::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string gis::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

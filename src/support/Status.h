//===- support/Status.h - Recoverable-error channel -------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured error channel for recoverable conditions.  The paper's
/// contract is that every transformation preserves program semantics; when
/// an internal invariant of a *transformation* breaks, the right response
/// for a production compiler is to report the condition, roll the function
/// back, and keep going -- not to abort the process.  GIS_ASSERT remains
/// for genuine memory-safety invariants (pool/index bounds); everything a
/// caller can recover from travels through Status instead.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_STATUS_H
#define GIS_SUPPORT_STATUS_H

#include <string>
#include <utility>

namespace gis {

/// Machine-readable classification of a recoverable failure.
enum class ErrorCode : uint8_t {
  Ok = 0,
  /// The list-scheduling engine hit its cycle cap without placing every
  /// own instruction of the target block.
  SchedulerDivergence,
  /// An internal consistency invariant of a scheduling pass failed (e.g. a
  /// moved instruction was not found at its home block).
  SchedulerInconsistency,
  /// The structural IR verifier found problems after a transformation.
  VerifierStructural,
  /// The semantic schedule verifier rejected an inter-block motion
  /// (dependence order or live-on-exit rule violated).
  VerifierSemantic,
  /// The differential interpreter oracle observed a behaviour mismatch
  /// between the original and the transformed function.
  OracleMismatch,
  /// A loop transformation (unroll / rotate) failed mid-flight.
  LoopTransformFailed,
  /// A deliberately injected fault (GIS_FAULT_INJECT) corrupted the
  /// transform output; recorded when the corruption itself is reported.
  FaultInjected,
  /// The register allocator could not map the function onto the machine's
  /// register files (e.g. a condition-register interval would spill, or
  /// one instruction needs more scratch registers than are reserved); the
  /// function keeps its symbolic registers.
  RegAllocFailed,
  /// A filesystem operation of the persistent schedule cache failed
  /// (ENOSPC, EACCES, missing directory, ...).  Always recoverable: the
  /// cache degrades to memory-only (persist/DiskCache.h).
  PersistIOFailed,
  /// A persistent cache entry failed validation (short file, bad magic,
  /// version skew, checksum or key mismatch, unparsable payload).  The
  /// entry is quarantined and the lookup treated as a miss.
  CacheEntryCorrupt,
  /// The compile daemon rejected or failed a request (queue full, deadline
  /// expired, malformed request); carried in serve-layer diagnostics.
  ServeRejected,
};

/// Returns a short stable name for \p C ("ok", "scheduler-divergence", ...).
const char *errorCodeName(ErrorCode C);

/// A success-or-error value.  Default-constructed Status is success; errors
/// carry a code and a human-readable message.
class Status {
public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(ErrorCode C, std::string Msg) {
    Status S;
    S.Code = C;
    S.Message = std::move(Msg);
    return S;
  }

  bool isOk() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return isOk(); }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// Renders "code: message" for diagnostics.
  std::string str() const;

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Message;
};

} // namespace gis

#endif // GIS_SUPPORT_STATUS_H

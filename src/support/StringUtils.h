//===- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers used by the IR printer/parser and the mini-C frontend.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_SUPPORT_STRINGUTILS_H
#define GIS_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace gis {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, dropping empty pieces when \p KeepEmpty is false.
std::vector<std::string_view> split(std::string_view S, char Sep,
                                    bool KeepEmpty = false);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// True if \p S ends with \p Suffix.
bool endsWith(std::string_view S, std::string_view Suffix);

} // namespace gis

#endif // GIS_SUPPORT_STRINGUTILS_H

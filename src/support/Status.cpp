//===- support/Status.cpp - Recoverable-error channel ----------------------===//

#include "support/Status.h"

using namespace gis;

const char *gis::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::SchedulerDivergence:
    return "scheduler-divergence";
  case ErrorCode::SchedulerInconsistency:
    return "scheduler-inconsistency";
  case ErrorCode::VerifierStructural:
    return "verifier-structural";
  case ErrorCode::VerifierSemantic:
    return "verifier-semantic";
  case ErrorCode::OracleMismatch:
    return "oracle-mismatch";
  case ErrorCode::LoopTransformFailed:
    return "loop-transform-failed";
  case ErrorCode::FaultInjected:
    return "fault-injected";
  case ErrorCode::RegAllocFailed:
    return "regalloc-failed";
  case ErrorCode::PersistIOFailed:
    return "persist-io-failed";
  case ErrorCode::CacheEntryCorrupt:
    return "cache-entry-corrupt";
  case ErrorCode::ServeRejected:
    return "serve-rejected";
  }
  return "unknown";
}

std::string Status::str() const {
  if (isOk())
    return "ok";
  return std::string(errorCodeName(Code)) + ": " + Message;
}

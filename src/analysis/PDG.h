//===- analysis/PDG.h - Program Dependence Graph bundle ---------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Program Dependence Graph of one scheduling region: the control
/// subgraph (CSPDG) plus the instruction-level data dependence graph,
/// with the paper's code-motion classification on top:
///
///  - Definition 4: moving from B to A is *useful* iff A and B are
///    equivalent (A dominates B, B postdominates A);
///  - Definition 5: the motion is *speculative* iff B does not
///    postdominate A;
///  - Definition 6: the motion requires *duplication* iff A does not
///    dominate B;
///  - Definition 7: the motion is n-branch speculative where n is the
///    CSPDG path length from A to B.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_PDG_H
#define GIS_ANALYSIS_PDG_H

#include "analysis/ControlDeps.h"
#include "analysis/DataDeps.h"
#include "analysis/Region.h"
#include "machine/MachineDescription.h"

#include <iosfwd>

namespace gis {

/// How a candidate code motion is classified (paper Definitions 4-6).
enum class MotionKind : uint8_t {
  Identity,     ///< same block
  Useful,       ///< blocks are equivalent
  Speculative,  ///< target does not wait for the source's branch outcome
  Duplication,  ///< source executes on paths that bypass the target
  SpecAndDup,   ///< both speculative and duplicating
};

/// Returns a short name for \p K ("useful", "speculative", ...).
const char *motionKindName(MotionKind K);

/// Classification result for a motion from block B up to block A.
struct MotionClass {
  MotionKind Kind;
  /// Number of branches gambled on (Definition 7); 0 for useful motion,
  /// meaningful for speculative motions.
  unsigned SpeculationDegree;
};

/// The PDG of one region.
class PDG {
public:
  /// Builds the full PDG for region \p R of \p F under machine \p MD.
  /// \p Cache (optional) memoizes the dependence builder's reachability
  /// and disambiguation inputs across regions and passes.
  static PDG build(const Function &F, const SchedRegion &R,
                   const MachineDescription &MD,
                   DisambigCache *Cache = nullptr);

  const SchedRegion &region() const { return *Region; }
  const ControlDeps &controlDeps() const { return *CDeps; }
  const DataDeps &dataDeps() const { return *DDeps; }

  /// Classifies moving an instruction from region node \p From up to
  /// region node \p To (motion is always upward, against control flow).
  MotionClass classifyMotion(unsigned From, unsigned To) const;

  /// The paper's EQUIV(A): region nodes equivalent to \p A and dominated
  /// by \p A, in dominance order.
  std::vector<unsigned> equivSet(unsigned A) const;

  /// Candidate blocks C(A) for 1-branch speculative scheduling (paper
  /// Section 5.1): EQUIV(A), plus the immediate CSPDG successors of A and
  /// of every member of EQUIV(A).  With \p MaxSpecDepth > 1 the CSPDG
  /// successor expansion is iterated (the paper's future-work extension).
  std::vector<unsigned> candidateBlocks(unsigned A,
                                        unsigned MaxSpecDepth) const;

  /// Renders a human-readable dump (CSPDG edges, equivalence classes and
  /// data dependence edges) for debugging and the paper-figure examples.
  void print(const Function &F, std::ostream &OS) const;

private:
  std::shared_ptr<SchedRegion> Region;
  std::shared_ptr<ControlDeps> CDeps;
  std::shared_ptr<DataDeps> DDeps;
};

} // namespace gis

#endif // GIS_ANALYSIS_PDG_H

//===- analysis/DisambigCache.h - Memoized disambiguation state -*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-pipeline-run cache for the two expensive inputs of
/// data-dependence construction (DESIGN.md section 15):
///
///  - the all-pairs reachability closure of a region's forward graph,
///    keyed by a 128-bit content hash of the graph's edges.  Scheduling
///    never changes region shape, so the local pass, the global pass and
///    every `--region-jobs` slice of one function hit the same entry;
///    the content key makes entries self-validating (no invalidation
///    protocol, stale content simply never matches);
///
///  - the function-wide facts MemDisambiguator derives (owning block and
///    position of every instruction, single static definitions, the
///    function dominator tree), shared under an explicit epoch.  Every
///    phase that consumes the facts bumps the epoch on entry
///    (noteFunctionChanged) because earlier phases moved code; within a
///    phase the facts stay valid, except that the local scheduler's
///    intra-block reorders patch positions in place (notePosChanged) --
///    such reorders change only PosOf, never BlockOf, SingleDef or
///    dominance.
///
/// The cache is mutex-guarded: `--region-jobs` worker tasks share it
/// while scheduling private forks of the same base function, so whichever
/// task builds an entry first, the content is identical.
///
/// Under -DGIS_SLOWPATH_CHECK=ON every hit is cross-checked against a
/// fresh solve and any divergence is a fatal error.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_DISAMBIGCACHE_H
#define GIS_ANALYSIS_DISAMBIGCACHE_H

#include "analysis/Dominators.h"
#include "analysis/Graph.h"
#include "ir/Function.h"
#include "support/Hashing.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace gis {

/// Function-wide facts behind MemDisambiguator's address resolution.
/// Content-determined by the function body, so one instance serves every
/// region of the function until code moves.
struct DisambigFacts {
  /// Owning block of every instruction (InvalidId for orphans).
  std::vector<BlockId> BlockOf;
  /// Position of every instruction inside its block's list.
  std::vector<unsigned> PosOf;
  /// Single static definition of each register, or InvalidId when the
  /// register has zero or multiple definitions.
  std::unordered_map<uint32_t, InstrId> SingleDef;
  /// Function dominator tree (eager here; the stand-alone path builds it
  /// lazily instead).
  std::unique_ptr<DomTree> Dom;

  /// Derives the facts from \p F.  \p BuildDom also builds the dominator
  /// tree eagerly.
  static std::shared_ptr<DisambigFacts> build(const Function &F,
                                              bool BuildDom);
};

/// Shared memo for reachability closures and disambiguation facts.  One
/// instance lives for a pipeline run; pass it to DataDeps::compute /
/// PDG::build / scheduleLocal through their cache parameters.
class DisambigCache {
public:
  DisambigCache() = default;
  DisambigCache(const DisambigCache &) = delete;
  DisambigCache &operator=(const DisambigCache &) = delete;

  /// Invalidates the shared facts.  Call on entry to any phase that runs
  /// after code moved (each region wave, the local pass, post-allocation
  /// rescheduling).  Reachability entries are content-keyed and never
  /// need invalidation.
  void noteFunctionChanged();

  /// Patches PosOf for the (reordered) list of block \p B of \p F.
  /// Intra-block reordering changes only positions: BlockOf, SingleDef
  /// and dominance are untouched, so the facts stay exact.  Must not
  /// race facts() readers; the pipeline calls it only from the serial
  /// local pass.
  void notePosChanged(const Function &F, BlockId B);

  /// The facts for \p F at the current epoch, building them on a miss.
  std::shared_ptr<const DisambigFacts> facts(const Function &F);

  /// The all-pairs reachability closure of \p G, keyed by the content of
  /// its edges.
  std::shared_ptr<const std::vector<BitSet>> reachability(const DiGraph &G);

  uint64_t hits() const;
  uint64_t misses() const;

private:
  mutable std::mutex Mu;
  uint64_t Epoch = 0;
  uint64_t FactsEpoch = 0;
  std::shared_ptr<DisambigFacts> Facts;
  std::unordered_map<Key128, std::shared_ptr<const std::vector<BitSet>>,
                     Key128Hash>
      Reach;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace gis

#endif // GIS_ANALYSIS_DISAMBIGCACHE_H

//===- analysis/GraphViz.h - DOT rendering of CFG / PDG ---------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) renderers for the structures the paper draws: the
/// control flow graph (Figure 3), the control subgraph of the PDG with its
/// equivalence classes (Figure 4, including the dashed equivalence edges),
/// and the data dependence graph.  Feed the output to `dot -Tsvg`.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_GRAPHVIZ_H
#define GIS_ANALYSIS_GRAPHVIZ_H

#include "analysis/PDG.h"
#include "ir/Function.h"

#include <string>

namespace gis {

/// The CFG of \p F as a DOT digraph (one node per block, conditional
/// edges labelled taken/fall).
std::string cfgToDot(const Function &F);

/// The CSPDG of one region as a DOT digraph: solid edges are control
/// dependences (labelled with the branch edge gambled on), dashed edges
/// connect equivalent nodes in dominance order — the paper's Figure 4.
std::string cspdgToDot(const Function &F, const PDG &P);

/// The data dependence graph of one region as a DOT digraph, one node per
/// instruction (clustered by block), edges labelled kind/delay.
std::string ddgToDot(const Function &F, const PDG &P);

} // namespace gis

#endif // GIS_ANALYSIS_GRAPHVIZ_H

//===- analysis/RegPressure.cpp - Register pressure analysis ---------------===//

#include "analysis/RegPressure.h"

#include "analysis/Liveness.h"

#include <set>

using namespace gis;

RegPressure gis::computeRegPressure(const Function &F) {
  RegPressure P;
  Liveness LV = Liveness::compute(F);

  for (BlockId B : F.layout()) {
    // Live set at the block bottom, then sweep instructions backward.
    std::set<Reg> Live;
    for (Reg R : LV.liveOutRegs(B))
      Live.insert(R);

    auto Record = [&]() {
      std::array<unsigned, 3> Count = {0, 0, 0};
      for (Reg R : Live)
        ++Count[static_cast<unsigned>(R.regClass())];
      for (unsigned C = 0; C != 3; ++C) {
        if (Count[C] > P.MaxLive[C]) {
          P.MaxLive[C] = Count[C];
          if (C == 0)
            P.PeakBlock = B;
        }
      }
    };

    Record();
    const std::vector<InstrId> &Instrs = F.block(B).instrs();
    for (size_t K = Instrs.size(); K-- > 0;) {
      const Instruction &I = F.instr(Instrs[K]);
      for (Reg D : I.defs())
        Live.erase(D);
      for (Reg U : I.uses())
        Live.insert(U);
      Record();
    }
  }
  return P;
}

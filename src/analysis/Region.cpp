//===- analysis/Region.cpp - Scheduling regions ----------------------------===//

#include "analysis/Region.h"

#include <algorithm>
#include <map>

using namespace gis;

SchedRegion SchedRegion::buildSingleBlock(const Function &F, BlockId B) {
  SchedRegion R;
  R.LoopIdx = -1;
  R.BlockToNode.assign(F.numBlocks(), -1);
  R.BlockToNode[B] = 0;
  RegionNode N;
  N.Block = B;
  R.Nodes.push_back(N);
  R.RealBlocks = 1;
  R.NumInstrs = static_cast<unsigned>(F.block(B).size());
  R.Forward = DiGraph(1, 0);
  R.Entry = 0;
  R.Topo = {0};
  return R;
}

SchedRegion SchedRegion::buildTrace(const Function &F,
                                    const std::vector<BlockId> &Chain,
                                    int TraceIndex) {
  GIS_ASSERT(!Chain.empty(), "superblock trace must be nonempty");
  GIS_ASSERT(TraceIndex >= 0, "trace index must be nonnegative");
  SchedRegion R;
  R.LoopIdx = -2 - TraceIndex;
  R.BlockToNode.assign(F.numBlocks(), -1);
  for (BlockId B : Chain) {
    GIS_ASSERT(R.BlockToNode[B] < 0, "block repeated in superblock trace");
    R.BlockToNode[B] = static_cast<int>(R.Nodes.size());
    RegionNode N;
    N.Block = B;
    R.Nodes.push_back(N);
    ++R.RealBlocks;
    R.NumInstrs += static_cast<unsigned>(F.block(B).size());
  }
  R.Entry = 0;

  // Forward edges: in-chain CFG edges (necessarily to the next chain
  // position, by the single-entry property), minus a loop-back edge to
  // the head.  Any off-chain successor is a side exit of the superblock.
  R.Forward = DiGraph(R.numNodes(), R.Entry);
  BitSet IsExit(R.numNodes());
  for (unsigned N = 0; N != R.numNodes(); ++N) {
    for (BlockId S : F.block(Chain[N]).succs()) {
      int To = R.BlockToNode[S];
      if (To < 0) {
        IsExit.set(N);
        continue;
      }
      if (static_cast<unsigned>(To) == R.Entry)
        continue; // loop-back to the trace head, like a loop back edge
      GIS_ASSERT(static_cast<unsigned>(To) == N + 1,
                 "superblock edge must go to the next trace block");
      R.Forward.addEdge(N, static_cast<unsigned>(To));
    }
  }
  IsExit.forEach([&](unsigned N) { R.Exits.push_back(N); });

  GIS_ASSERT(isAcyclic(R.Forward), "superblock forward graph must be acyclic");
  R.Topo = topologicalOrder(R.Forward);
  return R;
}

SchedRegion SchedRegion::build(const Function &F, const LoopInfo &LI,
                               int LoopIndex) {
  SchedRegion R;
  R.LoopIdx = LoopIndex;
  unsigned NumBlocks = F.numBlocks();
  R.BlockToNode.assign(NumBlocks, -1);

  // Universe of blocks: the loop's blocks, or all blocks for the top level.
  auto InUniverse = [&](BlockId B) {
    return LoopIndex < 0 || LI.loop(LoopIndex).Blocks.test(B);
  };

  // For a block inside a nested loop, the child loop of this region that
  // owns it (the ancestor at depth == region depth + 1).
  auto OwnerLoop = [&](BlockId B) -> int {
    int L = LI.innermostLoopOf(B);
    while (L >= 0 && LI.loop(L).Parent != LoopIndex)
      L = LI.loop(L).Parent;
    return L;
  };

  // Create nodes: direct blocks in layout order, then one summary per
  // immediate child loop (in first-encounter layout order).
  std::map<int, unsigned> SummaryNode;
  for (BlockId B : F.layout()) {
    if (!InUniverse(B))
      continue;
    int Inner = LI.innermostLoopOf(B);
    if (Inner == LoopIndex) {
      // Direct member.
      R.BlockToNode[B] = static_cast<int>(R.Nodes.size());
      RegionNode N;
      N.Block = B;
      R.Nodes.push_back(N);
      ++R.RealBlocks;
      R.NumInstrs += static_cast<unsigned>(F.block(B).size());
    } else {
      int Child = OwnerLoop(B);
      GIS_ASSERT(Child >= 0, "block in universe with no owning child loop");
      if (!SummaryNode.count(Child)) {
        SummaryNode[Child] = static_cast<unsigned>(R.Nodes.size());
        RegionNode N;
        N.LoopIndex = Child;
        // Aggregate the loop's register traffic into the barrier payload.
        LI.loop(Child).Blocks.forEach([&](unsigned LB) {
          for (InstrId I : F.block(LB).instrs()) {
            const Instruction &Ins = F.instr(I);
            N.SummaryDefs.insert(N.SummaryDefs.end(), Ins.defs().begin(),
                                 Ins.defs().end());
            N.SummaryUses.insert(N.SummaryUses.end(), Ins.uses().begin(),
                                 Ins.uses().end());
          }
        });
        std::sort(N.SummaryDefs.begin(), N.SummaryDefs.end());
        N.SummaryDefs.erase(
            std::unique(N.SummaryDefs.begin(), N.SummaryDefs.end()),
            N.SummaryDefs.end());
        std::sort(N.SummaryUses.begin(), N.SummaryUses.end());
        N.SummaryUses.erase(
            std::unique(N.SummaryUses.begin(), N.SummaryUses.end()),
            N.SummaryUses.end());
        R.Nodes.push_back(std::move(N));
      }
    }
  }

  // Node of any block in the universe (through summaries).
  auto NodeOf = [&](BlockId B) -> int {
    if (R.BlockToNode[B] >= 0)
      return R.BlockToNode[B];
    int Child = OwnerLoop(B);
    auto It = SummaryNode.find(Child);
    return It == SummaryNode.end() ? -1 : static_cast<int>(It->second);
  };

  // Entry: the loop header (or function entry), possibly a summary node.
  BlockId EntryBlock = LoopIndex < 0 ? F.entry() : LI.loop(LoopIndex).Header;
  int EntryNode = NodeOf(EntryBlock);
  GIS_ASSERT(EntryNode >= 0, "region entry not found");
  R.Entry = static_cast<unsigned>(EntryNode);

  // Forward edges: all in-universe CFG edges, minus self edges (internal
  // to one summary) and minus back edges to the region entry.
  R.Forward = DiGraph(R.numNodes(), R.Entry);
  BitSet IsExit(R.numNodes());
  for (BlockId B = 0; B != NumBlocks; ++B) {
    if (!InUniverse(B))
      continue;
    int From = NodeOf(B);
    if (From < 0)
      continue;
    for (BlockId S : F.block(B).succs()) {
      if (!InUniverse(S)) {
        IsExit.set(static_cast<unsigned>(From));
        continue;
      }
      int To = NodeOf(S);
      if (To < 0 || To == From)
        continue;
      if (static_cast<unsigned>(To) == R.Entry)
        continue; // back edge
      R.Forward.addEdge(static_cast<unsigned>(From),
                        static_cast<unsigned>(To));
    }
  }
  IsExit.forEach([&](unsigned N) { R.Exits.push_back(N); });

  GIS_ASSERT(isAcyclic(R.Forward),
             "region forward graph must be acyclic (irreducible CFG?)");
  R.Topo = topologicalOrder(R.Forward);
  return R;
}

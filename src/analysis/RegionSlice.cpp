//===- analysis/RegionSlice.cpp - Region-local analysis slice -------------===//

#include "analysis/RegionSlice.h"

#include <algorithm>

using namespace gis;

LivenessSlice LivenessSlice::build(const Function &F, const SchedRegion &R,
                                   const Liveness &WholeLV) {
  LivenessSlice LS;
  for (const RegionNode &N : R.nodes())
    if (N.isBlock())
      LS.Blocks.push_back(N.Block);

  LS.SlotOf.assign(F.numBlocks(), -1);
  for (unsigned S = 0; S != LS.Blocks.size(); ++S)
    LS.SlotOf[LS.Blocks[S]] = static_cast<int>(S);

  LS.InSuccs.resize(LS.Blocks.size());
  LS.Boundary.resize(LS.Blocks.size());
  for (unsigned S = 0; S != LS.Blocks.size(); ++S) {
    for (BlockId Succ : F.block(LS.Blocks[S]).succs()) {
      if (LS.ownsBlock(Succ)) {
        // In-region successor -- includes the back edge to the region
        // entry, so liveness that re-enters the loop is solved, not frozen.
        LS.InSuccs[S].push_back(LS.slotOf(Succ));
      } else {
        // Out-of-region successor (loop exit or collapsed child-loop
        // entry): freeze its live-in set as a boundary constant.
        for (Reg Rg : WholeLV.liveInRegs(Succ))
          LS.Boundary[S].push_back(Rg);
      }
    }
    std::sort(LS.Boundary[S].begin(), LS.Boundary[S].end());
    LS.Boundary[S].erase(
        std::unique(LS.Boundary[S].begin(), LS.Boundary[S].end()),
        LS.Boundary[S].end());
  }

  LS.recompute(F);
  return LS;
}

void LivenessSlice::recompute(const Function &F) {
  // Dense universe from the function's *current* counters so registers
  // created by renaming since build() are representable.
  ClassBase[0] = 0;
  ClassBase[1] = F.numRegs(RegClass::GPR);
  ClassBase[2] = ClassBase[1] + F.numRegs(RegClass::FPR);
  Universe = ClassBase[2] + F.numRegs(RegClass::CR);

  unsigned U = Universe;
  unsigned N = static_cast<unsigned>(Blocks.size());

  std::vector<BitSet> UEVar(N, BitSet(U)), Kill(N, BitSet(U));
  std::vector<BitSet> BoundaryBits(N, BitSet(U));
  for (unsigned S = 0; S != N; ++S) {
    for (InstrId Id : F.block(Blocks[S]).instrs()) {
      const Instruction &I = F.instr(Id);
      for (Reg Rg : I.uses()) {
        unsigned Idx = denseIndex(Rg);
        if (!Kill[S].test(Idx))
          UEVar[S].set(Idx);
      }
      for (Reg Rg : I.defs())
        Kill[S].set(denseIndex(Rg));
    }
    for (Reg Rg : Boundary[S])
      BoundaryBits[S].set(denseIndex(Rg));
  }

  LiveIns = UEVar;
  LiveOuts.assign(N, BitSet(U));

  // Backward fixed point over the region blocks only; the frozen boundary
  // plays the role of the out-of-region successors' live-in sets.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned K = N; K-- > 0;) {
      BitSet Out = BoundaryBits[K];
      for (unsigned T : InSuccs[K])
        Out.unionWith(LiveIns[T]);
      if (Out == LiveOuts[K])
        continue; // LiveIn is a function of LiveOut: nothing to redo
      BitSet In = Out;
      In.subtract(Kill[K]);
      In.unionWith(UEVar[K]);
      LiveOuts[K] = std::move(Out);
      if (!(In == LiveIns[K])) {
        LiveIns[K] = std::move(In);
        Changed = true;
      }
    }
  }
}

bool LivenessSlice::isLiveOut(BlockId B, Reg R) const {
  return LiveOuts[slotOf(B)].test(denseIndex(R));
}

bool LivenessSlice::isLiveIn(BlockId B, Reg R) const {
  return LiveIns[slotOf(B)].test(denseIndex(R));
}

RegionSlice RegionSlice::build(const Function &F, SchedRegion R) {
  return build(F, std::move(R), Liveness::compute(F));
}

RegionSlice RegionSlice::build(const Function &F, SchedRegion R,
                               const Liveness &WholeLV) {
  RegionSlice S;
  S.LV = LivenessSlice::build(F, R, WholeLV);
  S.CD = ControlDeps::compute(R);
  for (const RegionNode &N : R.nodes())
    if (N.isBlock()) {
      S.Blocks.push_back(N.Block);
      for (InstrId Id : F.block(N.Block).instrs())
        S.Instrs.push_back(Id);
    }
  S.R = std::move(R);
  return S;
}

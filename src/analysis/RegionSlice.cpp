//===- analysis/RegionSlice.cpp - Region-local analysis slice -------------===//

#include "analysis/RegionSlice.h"

#include <algorithm>

using namespace gis;

LivenessSlice LivenessSlice::build(const Function &F, const SchedRegion &R,
                                   const Liveness &WholeLV) {
  LivenessSlice LS;
  for (const RegionNode &N : R.nodes())
    if (N.isBlock())
      LS.Blocks.push_back(N.Block);

  LS.SlotOf.assign(F.numBlocks(), -1);
  for (unsigned S = 0; S != LS.Blocks.size(); ++S)
    LS.SlotOf[LS.Blocks[S]] = static_cast<int>(S);

  LS.InSuccs.resize(LS.Blocks.size());
  LS.InPreds.resize(LS.Blocks.size());
  LS.Boundary.resize(LS.Blocks.size());
  for (unsigned S = 0; S != LS.Blocks.size(); ++S) {
    for (BlockId Succ : F.block(LS.Blocks[S]).succs()) {
      if (LS.ownsBlock(Succ)) {
        // In-region successor -- includes the back edge to the region
        // entry, so liveness that re-enters the loop is solved, not frozen.
        LS.InSuccs[S].push_back(LS.slotOf(Succ));
        LS.InPreds[LS.slotOf(Succ)].push_back(S);
      } else {
        // Out-of-region successor (loop exit or collapsed child-loop
        // entry): freeze its live-in set as a boundary constant.
        for (Reg Rg : WholeLV.liveInRegs(Succ))
          LS.Boundary[S].push_back(Rg);
      }
    }
    std::sort(LS.Boundary[S].begin(), LS.Boundary[S].end());
    LS.Boundary[S].erase(
        std::unique(LS.Boundary[S].begin(), LS.Boundary[S].end()),
        LS.Boundary[S].end());
  }

  LS.recompute(F);
  return LS;
}

bool LivenessSlice::rebuildSlotSets(const Function &F, unsigned S) {
  BitSet NewUEVar(Universe), NewKill(Universe);
  for (InstrId Id : F.block(Blocks[S]).instrs()) {
    const Instruction &I = F.instr(Id);
    for (Reg Rg : I.uses()) {
      unsigned Idx = denseIndex(Rg);
      if (!NewKill.test(Idx))
        NewUEVar.set(Idx);
    }
    for (Reg Rg : I.defs())
      NewKill.set(denseIndex(Rg));
  }
  bool Changed = !(NewUEVar == UEVars[S]) || !(NewKill == Kills[S]);
  UEVars[S] = std::move(NewUEVar);
  Kills[S] = std::move(NewKill);
  return Changed;
}

void LivenessSlice::recompute(const Function &F) {
  // Dense universe from the function's *current* counters so registers
  // created by renaming since build() are representable.
  ClassBase[0] = 0;
  ClassBase[1] = F.numRegs(RegClass::GPR);
  ClassBase[2] = ClassBase[1] + F.numRegs(RegClass::FPR);
  Universe = ClassBase[2] + F.numRegs(RegClass::CR);

  unsigned U = Universe;
  unsigned N = static_cast<unsigned>(Blocks.size());

  UEVars.assign(N, BitSet(U));
  Kills.assign(N, BitSet(U));
  BoundaryBits.assign(N, BitSet(U));
  for (unsigned S = 0; S != N; ++S) {
    rebuildSlotSets(F, S);
    for (Reg Rg : Boundary[S])
      BoundaryBits[S].set(denseIndex(Rg));
  }

  LiveIns = UEVars;
  LiveOuts.assign(N, BitSet(U));

  // Backward fixed point over the region blocks only; the frozen boundary
  // plays the role of the out-of-region successors' live-in sets.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned K = N; K-- > 0;) {
      BitSet Out = BoundaryBits[K];
      for (unsigned T : InSuccs[K])
        Out.unionWith(LiveIns[T]);
      if (Out == LiveOuts[K])
        continue; // LiveIn is a function of LiveOut: nothing to redo
      BitSet In = Out;
      In.subtract(Kills[K]);
      In.unionWith(UEVars[K]);
      LiveOuts[K] = std::move(Out);
      if (!(In == LiveIns[K])) {
        LiveIns[K] = std::move(In);
        Changed = true;
      }
    }
  }
}

Liveness::UpdateResult
LivenessSlice::recomputeBlocks(const Function &F,
                               const std::vector<BlockId> &Changed) {
  Liveness::UpdateResult R;

  // Universe growth (renaming since the last solve) shifts the dense
  // per-class indexing; every cached bit set is then stale.  Full solve.
  unsigned NewGPR = F.numRegs(RegClass::GPR);
  unsigned NewFPR = F.numRegs(RegClass::FPR);
  unsigned NewCR = F.numRegs(RegClass::CR);
  unsigned N = static_cast<unsigned>(Blocks.size());
  if (ClassBase[1] != NewGPR || ClassBase[2] != NewGPR + NewFPR ||
      Universe != NewGPR + NewFPR + NewCR || UEVars.size() != N) {
    recompute(F);
    R.Full = true;
    R.BlocksResolved = N;
    return R;
  }

  // Re-derive the edited blocks' summaries; unchanged summaries leave the
  // old solution a valid (least) fixpoint.
  std::vector<unsigned> DirtySlots;
  std::vector<uint8_t> Seen(N, 0);
  for (BlockId B : Changed) {
    GIS_ASSERT(ownsBlock(B), "liveness slice delta for a non-region block");
    unsigned S = slotOf(B);
    if (Seen[S])
      continue;
    Seen[S] = 1;
    if (rebuildSlotSets(F, S))
      DirtySlots.push_back(S);
  }
  if (DirtySlots.empty())
    return R;

  // Affected slots: everything that reaches a dirty slot inside the
  // region (backward walk over in-region predecessor edges; the frozen
  // boundary never changes, so out-of-region paths contribute nothing).
  std::vector<uint8_t> Affected(N, 0);
  std::vector<unsigned> Work = DirtySlots;
  for (unsigned S : Work)
    Affected[S] = 1;
  while (!Work.empty()) {
    unsigned S = Work.back();
    Work.pop_back();
    for (unsigned P : InPreds[S])
      if (!Affected[P]) {
        Affected[P] = 1;
        Work.push_back(P);
      }
  }

  // Reset affected slots to bottom and re-solve the restricted system
  // with unaffected live-in sets frozen (exact: every in-region successor
  // of an unaffected slot is unaffected).
  for (unsigned S = 0; S != N; ++S) {
    if (!Affected[S])
      continue;
    ++R.BlocksResolved;
    LiveIns[S] = UEVars[S];
    LiveOuts[S].clear();
  }
  bool IterChanged = true;
  while (IterChanged) {
    IterChanged = false;
    for (unsigned K = N; K-- > 0;) {
      if (!Affected[K])
        continue;
      BitSet Out = BoundaryBits[K];
      for (unsigned T : InSuccs[K])
        Out.unionWith(LiveIns[T]);
      if (Out == LiveOuts[K])
        continue;
      BitSet In = Out;
      In.subtract(Kills[K]);
      In.unionWith(UEVars[K]);
      LiveOuts[K] = std::move(Out);
      if (!(In == LiveIns[K])) {
        LiveIns[K] = std::move(In);
        IterChanged = true;
      }
    }
  }
  return R;
}

bool LivenessSlice::isLiveOut(BlockId B, Reg R) const {
  return LiveOuts[slotOf(B)].test(denseIndex(R));
}

bool LivenessSlice::isLiveIn(BlockId B, Reg R) const {
  return LiveIns[slotOf(B)].test(denseIndex(R));
}

RegionSlice RegionSlice::build(const Function &F, SchedRegion R) {
  return build(F, std::move(R), Liveness::compute(F));
}

RegionSlice RegionSlice::build(const Function &F, SchedRegion R,
                               const Liveness &WholeLV) {
  RegionSlice S;
  S.LV = LivenessSlice::build(F, R, WholeLV);
  S.CD = ControlDeps::compute(R);
  for (const RegionNode &N : R.nodes())
    if (N.isBlock()) {
      S.Blocks.push_back(N.Block);
      for (InstrId Id : F.block(N.Block).instrs())
        S.Instrs.push_back(Id);
    }
  S.R = std::move(R);
  return S;
}

//===- analysis/Graph.h - Generic directed graph utilities -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense directed-graph representation shared by the CFG-level
/// analyses (dominators, postdominators, control dependences, region
/// graphs).  Nodes are dense unsigned indices; callers keep the mapping to
/// blocks/instructions.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_GRAPH_H
#define GIS_ANALYSIS_GRAPH_H

#include "support/Assert.h"
#include "support/BitSet.h"

#include <vector>

namespace gis {

/// Dense directed graph with a designated entry node.
struct DiGraph {
  unsigned NumNodes = 0;
  unsigned Entry = 0;
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;

  DiGraph() = default;
  explicit DiGraph(unsigned N, unsigned Entry = 0)
      : NumNodes(N), Entry(Entry), Succs(N), Preds(N) {}

  void addEdge(unsigned From, unsigned To) {
    GIS_ASSERT(From < NumNodes && To < NumNodes, "edge endpoint out of range");
    // Keep edges unique; CFGs occasionally produce duplicates (conditional
    // branch to the fall-through block).
    for (unsigned S : Succs[From])
      if (S == To)
        return;
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  }

  bool hasEdge(unsigned From, unsigned To) const {
    for (unsigned S : Succs[From])
      if (S == To)
        return true;
    return false;
  }

  /// Graph with every edge reversed; \p NewEntry becomes the entry.
  DiGraph reversed(unsigned NewEntry) const {
    DiGraph R(NumNodes, NewEntry);
    for (unsigned N = 0; N != NumNodes; ++N)
      for (unsigned S : Succs[N])
        R.addEdge(S, N);
    return R;
  }
};

/// Reverse postorder of the nodes reachable from the entry.
std::vector<unsigned> reversePostOrder(const DiGraph &G);

/// Postorder of the nodes reachable from the entry.
std::vector<unsigned> postOrder(const DiGraph &G);

/// Bit set of nodes reachable from \p From.
BitSet reachableFrom(const DiGraph &G, unsigned From);

/// All-pairs reachability: Result[N] = set of nodes reachable from N
/// (excluding N itself unless N lies on a cycle through N).
std::vector<BitSet> allPairsReachability(const DiGraph &G);

/// A topological order of an acyclic graph (asserts on cycles).
std::vector<unsigned> topologicalOrder(const DiGraph &G);

/// True if the graph (restricted to nodes reachable from the entry) is
/// acyclic.
bool isAcyclic(const DiGraph &G);

} // namespace gis

#endif // GIS_ANALYSIS_GRAPH_H

//===- analysis/PDG.cpp - Program Dependence Graph bundle ------------------===//

#include "analysis/PDG.h"

#include "ir/Printer.h"
#include "support/Format.h"

#include <algorithm>
#include <ostream>

using namespace gis;

const char *gis::motionKindName(MotionKind K) {
  switch (K) {
  case MotionKind::Identity:
    return "identity";
  case MotionKind::Useful:
    return "useful";
  case MotionKind::Speculative:
    return "speculative";
  case MotionKind::Duplication:
    return "duplication";
  case MotionKind::SpecAndDup:
    return "speculative+duplication";
  }
  gis_unreachable("invalid motion kind");
}

PDG PDG::build(const Function &F, const SchedRegion &R,
               const MachineDescription &MD, DisambigCache *Cache) {
  PDG P;
  P.Region = std::make_shared<SchedRegion>(R);
  P.CDeps = std::make_shared<ControlDeps>(ControlDeps::compute(*P.Region));
  P.DDeps = std::make_shared<DataDeps>(
      DataDeps::compute(F, *P.Region, MD, Cache));
  return P;
}

MotionClass PDG::classifyMotion(unsigned From, unsigned To) const {
  if (From == To)
    return MotionClass{MotionKind::Identity, 0};

  const DomTree &Dom = CDeps->dom();
  const PostDomTree &PDom = CDeps->postDom();
  bool Dominates = Dom.dominates(To, From);
  bool PostDominates = PDom.postDominates(From, To);

  MotionKind Kind;
  if (Dominates && PostDominates)
    Kind = MotionKind::Useful;
  else if (!PostDominates && Dominates)
    Kind = MotionKind::Speculative;
  else if (PostDominates)
    Kind = MotionKind::Duplication;
  else
    Kind = MotionKind::SpecAndDup;

  unsigned Degree = 0;
  if (!PostDominates) {
    auto D = CDeps->specDegree(To, From);
    Degree = D ? *D : ~0u;
  }
  return MotionClass{Kind, Degree};
}

std::vector<unsigned> PDG::equivSet(unsigned A) const {
  std::vector<unsigned> Out;
  const DomTree &Dom = CDeps->dom();
  const PostDomTree &PDom = CDeps->postDom();
  unsigned Class = CDeps->equivClass(A);
  for (unsigned B : CDeps->equivClasses()[Class]) {
    if (B == A)
      continue;
    // Identically-control-dependent is the practical test; confirm the
    // definitional property (Definition 3) for safety.
    if (Dom.strictlyDominates(A, B) && PDom.postDominates(B, A))
      Out.push_back(B);
  }
  return Out;
}

std::vector<unsigned> PDG::candidateBlocks(unsigned A,
                                           unsigned MaxSpecDepth) const {
  // Flat worklist expansion over a membership marker instead of std::set:
  // called once per target block on the cold path, where the per-node
  // red-black tree allocations used to show up.  The returned vector is
  // sorted ascending (and duplicate-free), exactly the order the std::set
  // produced -- the global scheduler's candidate construction iterates it
  // in order and the engine's drop propagation depends on that.
  std::vector<unsigned> Result = equivSet(A);

  if (MaxSpecDepth > 0) {
    // Frontier: A plus its equivalents; expand CSPDG successors
    // MaxSpecDepth times (the paper implements depth 1).  A CSPDG
    // successor that A does not dominate is excluded: moving code up from
    // it would require duplication (Definition 6), which the prototype
    // forbids ("no duplication of code is allowed", Section 5.1).
    const DomTree &Dom = CDeps->dom();
    std::vector<uint8_t> InResult(Region->numNodes(), 0);
    for (unsigned N : Result)
      InResult[N] = 1;
    std::vector<unsigned> Frontier = Result;
    Frontier.push_back(A);
    std::vector<unsigned> Next;
    for (unsigned Depth = 0; Depth != MaxSpecDepth; ++Depth) {
      Next.clear();
      for (unsigned N : Frontier)
        for (unsigned S : CDeps->cspdgSuccs(N))
          if (S != A && !InResult[S] && Dom.strictlyDominates(A, S)) {
            InResult[S] = 1;
            Next.push_back(S);
          }
      Result.insert(Result.end(), Next.begin(), Next.end());
      std::swap(Frontier, Next);
      if (Frontier.empty())
        break;
    }
  }

  std::sort(Result.begin(), Result.end());
  return Result;
}

void PDG::print(const Function &F, std::ostream &OS) const {
  auto NodeName = [&](unsigned N) -> std::string {
    const RegionNode &RN = Region->node(N);
    if (RN.isBlock())
      return F.block(RN.Block).label();
    return formatString("loop#%d", RN.LoopIndex);
  };

  OS << "CSPDG (control dependences):\n";
  for (unsigned N = 0; N != Region->numNodes(); ++N) {
    const std::vector<CDep> &Deps = CDeps->deps(N);
    if (Deps.empty())
      continue;
    OS << "  " << NodeName(N) << " <- ";
    for (size_t K = 0; K != Deps.size(); ++K) {
      if (K)
        OS << ", ";
      OS << NodeName(Deps[K].Controller) << "/edge" << Deps[K].EdgeLabel;
    }
    OS << "\n";
  }

  OS << "equivalence classes:\n";
  for (const std::vector<unsigned> &Class : CDeps->equivClasses()) {
    if (Class.size() < 2)
      continue;
    OS << "  {";
    for (size_t K = 0; K != Class.size(); ++K) {
      if (K)
        OS << ", ";
      OS << NodeName(Class[K]);
    }
    OS << "}\n";
  }

  OS << "data dependences:\n";
  for (const DepEdge &E : DDeps->edges()) {
    const DataDeps::Node &From = DDeps->ddgNode(E.From);
    const DataDeps::Node &To = DDeps->ddgNode(E.To);
    auto Desc = [&](const DataDeps::Node &N) -> std::string {
      if (N.isBarrier())
        return NodeName(N.RegionNode);
      return instructionToString(F, N.Instr);
    };
    OS << "  [" << depKindName(E.Kind) << " d=" << E.Delay << "] "
       << Desc(From) << "  ->  " << Desc(To) << "\n";
  }
}

//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and the loop nesting forest.  The paper schedules
/// "regions": loop bodies (strongly connected components with back edges)
/// and the residual function body; innermost regions first (Section 5.1).
/// Loops are found as natural loops of back edges (the paper assumes
/// reducible control flow, Section 4.1); LoopInfo also reports
/// reducibility so irreducible functions can be skipped.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_LOOPINFO_H
#define GIS_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

namespace gis {

/// One natural loop.
struct Loop {
  BlockId Header = InvalidId;
  std::vector<BlockId> Latches; ///< sources of back edges to the header
  BitSet Blocks;                ///< members, over BlockIds
  int Parent = -1;              ///< index of the enclosing loop, -1 if top
  std::vector<int> Children;    ///< indices of directly nested loops
  unsigned Depth = 1;           ///< 1 for outermost loops

  bool contains(BlockId B) const { return Blocks.test(B); }
  unsigned numBlocks() const { return Blocks.count(); }
};

/// Loop nesting forest of one function.
class LoopInfo {
public:
  /// Computes loops of \p F (CFG edges must be up to date).
  static LoopInfo compute(const Function &F);

  const std::vector<Loop> &loops() const { return Loops; }
  unsigned numLoops() const { return static_cast<unsigned>(Loops.size()); }
  const Loop &loop(unsigned Index) const { return Loops[Index]; }

  /// Index of the innermost loop containing \p B, or -1.
  int innermostLoopOf(BlockId B) const { return InnermostLoop[B]; }

  /// True if every retreating edge is a back edge (target dominates
  /// source), i.e. the CFG is reducible.
  bool isReducible() const { return Reducible; }

  /// Loop indices ordered innermost-first (children before parents), the
  /// scheduling order of paper Section 5.1.
  std::vector<unsigned> innermostFirstOrder() const;

private:
  std::vector<Loop> Loops;
  std::vector<int> InnermostLoop;
  bool Reducible = true;
};

} // namespace gis

#endif // GIS_ANALYSIS_LOOPINFO_H

//===- analysis/RegPressure.h - Register pressure analysis -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register pressure measurement.  The paper schedules before register
/// allocation over unbounded symbolic registers (Section 2) and points to
/// [BEH89] for the scheduling/allocation interplay; this analysis measures
/// the consequence: the maximum number of simultaneously live registers,
/// per class, anywhere in a function.  The scheduler's report machinery
/// uses it so code motion's pressure cost is observable (speculation and
/// renaming both lengthen live ranges).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_REGPRESSURE_H
#define GIS_ANALYSIS_REGPRESSURE_H

#include "ir/Function.h"

#include <array>

namespace gis {

/// Peak register pressure of one function.
struct RegPressure {
  /// Maximum simultaneously live registers per class (GPR, FPR, CR).
  std::array<unsigned, 3> MaxLive = {0, 0, 0};
  /// Block where the GPR peak occurs (for diagnostics).
  BlockId PeakBlock = InvalidId;

  unsigned maxLive(RegClass Class) const {
    return MaxLive[static_cast<unsigned>(Class)];
  }
};

/// Computes peak pressure by walking every block backward from its
/// live-out set (the standard linear-scan style sweep).
RegPressure computeRegPressure(const Function &F);

} // namespace gis

#endif // GIS_ANALYSIS_REGPRESSURE_H

//===- analysis/DataDeps.cpp - Instruction data dependences ----------------===//

#include "analysis/DataDeps.h"

#include "analysis/DisambigCache.h"
#include "analysis/MemDisambig.h"
#include "support/Assert.h"

#include <algorithm>
#include <optional>

using namespace gis;

const char *gis::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Memory:
    return "memory";
  }
  gis_unreachable("invalid dep kind");
}

namespace {

bool intersects(SpanRange<Reg> A, SpanRange<Reg> B) {
  for (Reg X : A)
    for (Reg Y : B)
      if (X == Y)
        return true;
  return false;
}

} // namespace

DataDeps DataDeps::compute(const Function &F, const SchedRegion &R,
                           const MachineDescription &MD,
                           DisambigCache *Cache) {
  DataDeps DD;
  DD.InstrToNode.assign(F.numInstrs(), -1);

  // Memory/call summary bits, only needed during construction.
  std::vector<uint8_t> TouchesMemory, IsCallOrBarrier;

  // Reserve the flat buffers up front: the node count is exact (one per
  // region instruction plus one per barrier), the fact arena and edge
  // list get proportional guesses, killing most of the growth
  // reallocations the E13 profile charged to this builder.
  unsigned ApproxNodes = 0;
  for (unsigned RN : R.topoOrder()) {
    const RegionNode &Node = R.node(RN);
    ApproxNodes += Node.isBlock()
                       ? static_cast<unsigned>(F.block(Node.Block).instrs().size())
                       : 1;
  }
  DD.Nodes.reserve(ApproxNodes);
  DD.DefSpan.reserve(ApproxNodes);
  DD.UseSpan.reserve(ApproxNodes);
  DD.FactRegs.reserve(ApproxNodes * 3);
  DD.Edges.reserve(ApproxNodes * 4);
  TouchesMemory.reserve(ApproxNodes);
  IsCallOrBarrier.reserve(ApproxNodes);

  // Node list, in region topological order; program order within blocks.
  // Register facts go straight into the flat arena: a real instruction's
  // def/use lists, a barrier's aggregate payload (computed by
  // SchedRegion::build), addressed uniformly through DefSpan/UseSpan.
  for (unsigned RN : R.topoOrder()) {
    const RegionNode &Node = R.node(RN);
    if (Node.isBlock()) {
      for (InstrId I : F.block(Node.Block).instrs()) {
        DD.InstrToNode[I] = static_cast<int>(DD.Nodes.size());
        const Instruction &Ins = F.instr(I);
        DD.Nodes.push_back(DataDeps::Node{I, RN});
        DD.DefSpan.push_back(DD.FactRegs.append(Ins.defs()));
        DD.UseSpan.push_back(DD.FactRegs.append(Ins.uses()));
        TouchesMemory.push_back(Ins.touchesMemory());
        IsCallOrBarrier.push_back(Ins.isCall());
      }
      continue;
    }
    // Inner-loop barrier.
    DD.Nodes.push_back(DataDeps::Node{InvalidId, RN});
    DD.DefSpan.push_back(DD.FactRegs.append(Node.SummaryDefs));
    DD.UseSpan.push_back(DD.FactRegs.append(Node.SummaryUses));
    TouchesMemory.push_back(1);
    IsCallOrBarrier.push_back(1);
  }

  unsigned M = DD.numNodes();
  DD.Ancestors.assign(M, BitSet(M));

  // Block-level reachability in the region's forward graph (region-node
  // indices), from the shared memo when one is supplied: scheduling never
  // changes region shape, so the local pass, the global pass and every
  // region-jobs slice of a function share one closure.
  std::shared_ptr<const std::vector<BitSet>> ReachShared;
  std::vector<BitSet> ReachLocal;
  const std::vector<BitSet> *Reach;
  if (Cache) {
    ReachShared = Cache->reachability(R.forwardGraph());
    Reach = ReachShared.get();
  } else {
    ReachLocal = allPairsReachability(R.forwardGraph());
    Reach = &ReachLocal;
  }

  MemDisambiguator Disambig(F, R, Cache);

  auto MemConflict = [&](unsigned A, unsigned B) {
    if (!TouchesMemory[A] || !TouchesMemory[B])
      return false;
    if (IsCallOrBarrier[A] || IsCallOrBarrier[B])
      return true;
    const Instruction &IA = F.instr(DD.Nodes[A].Instr);
    const Instruction &IB = F.instr(DD.Nodes[B].Instr);
    if (IA.isLoad() && IB.isLoad())
      return false; // loads never conflict with loads
    return !Disambig.provablyDisjoint(DD.Nodes[A].Instr, DD.Nodes[B].Instr);
  };

  // Dependence classification; Flow wins (it carries the delay).
  auto Classify = [&](unsigned A, unsigned B) -> std::optional<DepKind> {
    if (intersects(DD.defs(A), DD.uses(B)))
      return DepKind::Flow;
    if (intersects(DD.uses(A), DD.defs(B)))
      return DepKind::Anti;
    if (intersects(DD.defs(A), DD.defs(B)))
      return DepKind::Output;
    if (MemConflict(A, B))
      return DepKind::Memory;
    return std::nullopt;
  };

  auto FlowDelay = [&](unsigned A, unsigned B) -> unsigned {
    if (DD.Nodes[A].isBarrier() || DD.Nodes[B].isBarrier())
      return 0;
    return MD.flowDelay(F.instr(DD.Nodes[A].Instr).opcode(),
                        F.instr(DD.Nodes[B].Instr).opcode());
  };

  // Pairwise construction with the paper's transitive reduction: walk
  // sources in descending order; skip a pair already ordered by recorded
  // edges.  Only the edge list and the ancestor closure are maintained
  // here; the CSR adjacency is derived in one pass afterwards.
  for (unsigned B = 0; B != M; ++B) {
    unsigned BR = DD.Nodes[B].RegionNode;
    for (unsigned A = B; A-- > 0;) {
      unsigned AR = DD.Nodes[A].RegionNode;
      // Only pairs in the same block or with B's block reachable from A's.
      if (AR != BR && !(*Reach)[AR].test(BR))
        continue;
      if (DD.Ancestors[B].test(A))
        continue; // transitive: already ordered
      std::optional<DepKind> Kind = Classify(A, B);
      if (!Kind)
        continue;
      unsigned Delay = *Kind == DepKind::Flow ? FlowDelay(A, B) : 0;
      DD.Edges.push_back(DepEdge{A, B, *Kind, Delay});
      DD.Ancestors[B].set(A);
      DD.Ancestors[B].unionWith(DD.Ancestors[A]);
    }
  }

  // CSR adjacency: counting sort of edge indices by endpoint.  Filling in
  // edge-index order keeps each row in edge-creation order, matching the
  // append order the per-node vectors historically had.
  unsigned E = static_cast<unsigned>(DD.Edges.size());
  std::vector<unsigned> SuccOff(M + 1, 0), PredOff(M + 1, 0);
  for (const DepEdge &Ed : DD.Edges) {
    ++SuccOff[Ed.From + 1];
    ++PredOff[Ed.To + 1];
  }
  for (unsigned N = 0; N != M; ++N) {
    SuccOff[N + 1] += SuccOff[N];
    PredOff[N + 1] += PredOff[N];
  }
  std::vector<unsigned> SuccFlat(E), PredFlat(E);
  {
    std::vector<unsigned> SuccFill = SuccOff, PredFill = PredOff;
    for (unsigned EIdx = 0; EIdx != E; ++EIdx) {
      SuccFlat[SuccFill[DD.Edges[EIdx].From]++] = EIdx;
      PredFlat[PredFill[DD.Edges[EIdx].To]++] = EIdx;
    }
  }
  DD.SuccIdx.reserve(E);
  DD.PredIdx.reserve(E);
  DD.SuccIdx.append(SuccFlat);
  DD.PredIdx.append(PredFlat);
  DD.SuccSpan.resize(M);
  DD.PredSpan.resize(M);
  for (unsigned N = 0; N != M; ++N) {
    DD.SuccSpan[N] = ArenaSpan{SuccOff[N], SuccOff[N + 1] - SuccOff[N]};
    DD.PredSpan[N] = ArenaSpan{PredOff[N], PredOff[N + 1] - PredOff[N]};
  }

  return DD;
}

DataDeps::Stats DataDeps::stats() const {
  Stats S;
  S.Nodes = numNodes();
  S.Edges = static_cast<unsigned>(Edges.size());
  S.ArenaBytes = FactRegs.bytesReserved() + SuccIdx.bytesReserved() +
                 PredIdx.bytesReserved() +
                 static_cast<uint64_t>(Edges.capacity()) * sizeof(DepEdge) +
                 static_cast<uint64_t>(Nodes.capacity()) * sizeof(Node) +
                 static_cast<uint64_t>(DefSpan.capacity() +
                                       UseSpan.capacity() +
                                       SuccSpan.capacity() +
                                       PredSpan.capacity()) *
                     sizeof(ArenaSpan) +
                 static_cast<uint64_t>(numNodes()) *
                     ((numNodes() + 63) / 64) * sizeof(uint64_t);
  return S;
}

//===- analysis/DataDeps.cpp - Instruction data dependences ----------------===//

#include "analysis/DataDeps.h"

#include "analysis/MemDisambig.h"
#include "support/Assert.h"

#include <algorithm>
#include <optional>

using namespace gis;

const char *gis::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Memory:
    return "memory";
  }
  gis_unreachable("invalid dep kind");
}

namespace {

/// Register def/use/memory summary of one DDG node, precomputed for fast
/// pairwise dependence tests.
struct NodeFacts {
  std::vector<Reg> Defs;
  std::vector<Reg> Uses;
  bool TouchesMemory = false;
  bool IsCallOrBarrier = false;
};

bool intersects(const std::vector<Reg> &A, const std::vector<Reg> &B) {
  for (Reg X : A)
    for (Reg Y : B)
      if (X == Y)
        return true;
  return false;
}

} // namespace

DataDeps DataDeps::compute(const Function &F, const SchedRegion &R,
                           const MachineDescription &MD) {
  DataDeps DD;
  DD.InstrToNode.assign(F.numInstrs(), -1);

  // Node list, in region topological order; program order within blocks.
  for (unsigned RN : R.topoOrder()) {
    const RegionNode &Node = R.node(RN);
    if (Node.isBlock()) {
      for (InstrId I : F.block(Node.Block).instrs()) {
        DD.InstrToNode[I] = static_cast<int>(DD.Nodes.size());
        DataDeps::Node N;
        N.Instr = I;
        N.RegionNode = RN;
        DD.Nodes.push_back(std::move(N));
      }
      continue;
    }
    // Inner-loop barrier: the aggregate register payload was computed by
    // SchedRegion::build.
    DataDeps::Node N;
    N.RegionNode = RN;
    N.BarrierDefs = Node.SummaryDefs;
    N.BarrierUses = Node.SummaryUses;
    DD.Nodes.push_back(std::move(N));
  }

  unsigned M = DD.numNodes();
  DD.Succ.assign(M, {});
  DD.Pred.assign(M, {});
  DD.Ancestors.assign(M, BitSet(M));

  // Per-node facts.
  std::vector<NodeFacts> Facts(M);
  for (unsigned N = 0; N != M; ++N) {
    const DataDeps::Node &Node = DD.Nodes[N];
    NodeFacts &NF = Facts[N];
    if (Node.isBarrier()) {
      NF.Defs = Node.BarrierDefs;
      NF.Uses = Node.BarrierUses;
      NF.TouchesMemory = true;
      NF.IsCallOrBarrier = true;
      continue;
    }
    const Instruction &I = F.instr(Node.Instr);
    NF.Defs = I.defs();
    NF.Uses = I.uses();
    NF.TouchesMemory = I.touchesMemory();
    NF.IsCallOrBarrier = I.isCall();
  }

  // Block-level reachability in the region's forward graph (region-node
  // indices).
  std::vector<BitSet> Reach = allPairsReachability(R.forwardGraph());

  MemDisambiguator Disambig(F, R);

  auto MemConflict = [&](unsigned A, unsigned B) {
    if (!Facts[A].TouchesMemory || !Facts[B].TouchesMemory)
      return false;
    if (Facts[A].IsCallOrBarrier || Facts[B].IsCallOrBarrier)
      return true;
    const Instruction &IA = F.instr(DD.Nodes[A].Instr);
    const Instruction &IB = F.instr(DD.Nodes[B].Instr);
    if (IA.isLoad() && IB.isLoad())
      return false; // loads never conflict with loads
    return !Disambig.provablyDisjoint(DD.Nodes[A].Instr, DD.Nodes[B].Instr);
  };

  // Dependence classification; Flow wins (it carries the delay).
  auto Classify = [&](unsigned A, unsigned B) -> std::optional<DepKind> {
    if (intersects(Facts[A].Defs, Facts[B].Uses))
      return DepKind::Flow;
    if (intersects(Facts[A].Uses, Facts[B].Defs))
      return DepKind::Anti;
    if (intersects(Facts[A].Defs, Facts[B].Defs))
      return DepKind::Output;
    if (MemConflict(A, B))
      return DepKind::Memory;
    return std::nullopt;
  };

  auto FlowDelay = [&](unsigned A, unsigned B) -> unsigned {
    if (DD.Nodes[A].isBarrier() || DD.Nodes[B].isBarrier())
      return 0;
    return MD.flowDelay(F.instr(DD.Nodes[A].Instr).opcode(),
                        F.instr(DD.Nodes[B].Instr).opcode());
  };

  // Pairwise construction with the paper's transitive reduction: walk
  // sources in descending order; skip a pair already ordered by recorded
  // edges.
  for (unsigned B = 0; B != M; ++B) {
    unsigned BR = DD.Nodes[B].RegionNode;
    for (unsigned A = B; A-- > 0;) {
      unsigned AR = DD.Nodes[A].RegionNode;
      // Only pairs in the same block or with B's block reachable from A's.
      if (AR != BR && !Reach[AR].test(BR))
        continue;
      if (DD.Ancestors[B].test(A))
        continue; // transitive: already ordered
      std::optional<DepKind> Kind = Classify(A, B);
      if (!Kind)
        continue;
      unsigned Delay = *Kind == DepKind::Flow ? FlowDelay(A, B) : 0;
      unsigned EdgeIdx = static_cast<unsigned>(DD.Edges.size());
      DD.Edges.push_back(DepEdge{A, B, *Kind, Delay});
      DD.Succ[A].push_back(EdgeIdx);
      DD.Pred[B].push_back(EdgeIdx);
      DD.Ancestors[B].set(A);
      DD.Ancestors[B].unionWith(DD.Ancestors[A]);
    }
  }

  return DD;
}

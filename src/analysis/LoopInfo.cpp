//===- analysis/LoopInfo.cpp - Natural loop detection ----------------------===//

#include "analysis/LoopInfo.h"

#include "analysis/CFG.h"

#include <algorithm>
#include <map>

using namespace gis;

LoopInfo LoopInfo::compute(const Function &F) {
  LoopInfo LI;
  unsigned N = F.numBlocks();
  LI.InnermostLoop.assign(N, -1);
  if (N == 0)
    return LI;

  DiGraph G = buildCFG(F);
  DomTree Dom(G);

  // Find back edges, grouped by header.
  std::map<BlockId, std::vector<BlockId>> BackEdges;
  for (unsigned A = 0; A != N; ++A) {
    if (!Dom.isReachable(A))
      continue;
    for (unsigned H : G.Succs[A])
      if (Dom.dominates(H, A))
        BackEdges[H].push_back(A);
  }

  // Reducibility: removing back edges must leave an acyclic graph.
  DiGraph Forward(N, G.Entry);
  for (unsigned A = 0; A != N; ++A)
    for (unsigned S : G.Succs[A])
      if (!Dom.dominates(S, A))
        Forward.addEdge(A, S);
  LI.Reducible = isAcyclic(Forward);

  // Natural loop of each header: backward walk from the latches, stopping
  // at the header.
  for (auto &[Header, Latches] : BackEdges) {
    Loop L;
    L.Header = Header;
    L.Latches = Latches;
    L.Blocks = BitSet(N);
    L.Blocks.set(Header);
    std::vector<BlockId> Work;
    for (BlockId Latch : Latches)
      if (!L.Blocks.test(Latch)) {
        L.Blocks.set(Latch);
        Work.push_back(Latch);
      }
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (unsigned P : G.Preds[B])
        if (Dom.isReachable(P) && !L.Blocks.test(P)) {
          L.Blocks.set(P);
          Work.push_back(P);
        }
    }
    LI.Loops.push_back(std::move(L));
  }

  // Nesting: parent of L is the smallest loop strictly containing L's
  // header among loops with a different header.
  auto Contains = [&](const Loop &Outer, const Loop &Inner) {
    if (Outer.Header == Inner.Header)
      return false;
    if (!Outer.Blocks.test(Inner.Header))
      return false;
    // With reducible control flow, containing the header implies
    // containing the whole loop; double-check for safety.
    bool All = true;
    Inner.Blocks.forEach([&](unsigned B) { All &= Outer.Blocks.test(B); });
    return All;
  };

  for (size_t I = 0; I != LI.Loops.size(); ++I) {
    int Best = -1;
    for (size_t J = 0; J != LI.Loops.size(); ++J) {
      if (I == J || !Contains(LI.Loops[J], LI.Loops[I]))
        continue;
      if (Best == -1 ||
          LI.Loops[J].numBlocks() < LI.Loops[Best].numBlocks())
        Best = static_cast<int>(J);
    }
    LI.Loops[I].Parent = Best;
  }
  for (size_t I = 0; I != LI.Loops.size(); ++I)
    if (LI.Loops[I].Parent >= 0)
      LI.Loops[LI.Loops[I].Parent].Children.push_back(static_cast<int>(I));

  // Depths (parents have smaller depth).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Loop &L : LI.Loops) {
      unsigned D = L.Parent < 0 ? 1 : LI.Loops[L.Parent].Depth + 1;
      if (L.Depth != D) {
        L.Depth = D;
        Changed = true;
      }
    }
  }

  // Innermost loop per block = deepest loop containing it.
  for (unsigned B = 0; B != N; ++B) {
    int Best = -1;
    for (size_t I = 0; I != LI.Loops.size(); ++I)
      if (LI.Loops[I].Blocks.test(B) &&
          (Best == -1 || LI.Loops[I].Depth > LI.Loops[Best].Depth))
        Best = static_cast<int>(I);
    LI.InnermostLoop[B] = Best;
  }

  return LI;
}

std::vector<unsigned> LoopInfo::innermostFirstOrder() const {
  std::vector<unsigned> Order(Loops.size());
  for (unsigned I = 0; I != Loops.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [this](unsigned A, unsigned B) {
    if (Loops[A].Depth != Loops[B].Depth)
      return Loops[A].Depth > Loops[B].Depth; // deeper first
    return A < B;
  });
  return Order;
}

//===- analysis/DataDeps.h - Instruction data dependences -------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data subgraph of the PDG for one scheduling region (paper Section
/// 4.2).  Edges are flow (def -> use, carrying the machine delay),
/// anti (use -> def), output (def -> def) and memory dependences, computed
/// both intra-block and inter-block (for block pairs connected in the
/// region's forward CFG), with the paper's transitive reduction: an edge is
/// skipped when it is implied by already-recorded edges.
///
/// Collapsed inner loops appear as single "barrier" nodes that aggregate
/// the loop's register defs/uses and act as memory-touching, immovable
/// pseudo-instructions, so no instruction can be moved across an inner
/// loop it depends on.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_DATADEPS_H
#define GIS_ANALYSIS_DATADEPS_H

#include "analysis/Region.h"
#include "machine/MachineDescription.h"

#include <vector>

namespace gis {

/// Kind of a data dependence edge (paper Section 4.2).
enum class DepKind : uint8_t {
  Flow,   ///< register defined in From, used in To (carries a delay)
  Anti,   ///< register used in From, defined in To
  Output, ///< register defined in both
  Memory, ///< unresolved memory conflict
};

/// Returns a short name for \p K ("flow", "anti", ...).
const char *depKindName(DepKind K);

/// One dependence edge between DDG node indices.
struct DepEdge {
  unsigned From;
  unsigned To;
  DepKind Kind;
  unsigned Delay; ///< nonzero only on flow edges (paper Section 4.2)
};

/// The data dependence graph of one region.
class DataDeps {
public:
  /// One DDG node: a real instruction or an inner-loop barrier.
  struct Node {
    InstrId Instr = InvalidId; ///< valid for real instructions
    unsigned RegionNode = 0;   ///< owning node in the SchedRegion
    // Barrier payload (summaries only):
    std::vector<Reg> BarrierDefs;
    std::vector<Reg> BarrierUses;

    bool isBarrier() const { return Instr == InvalidId; }
  };

  /// Builds the DDG for region \p R of function \p F, with flow-edge
  /// delays taken from \p MD.
  static DataDeps compute(const Function &F, const SchedRegion &R,
                          const MachineDescription &MD);

  const std::vector<Node> &ddgNodes() const { return Nodes; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const Node &ddgNode(unsigned N) const { return Nodes[N]; }

  /// DDG node index of \p Instr, or -1 when the instruction is not in the
  /// region's real blocks.
  int nodeOfInstr(InstrId Instr) const {
    return Instr < InstrToNode.size() ? InstrToNode[Instr] : -1;
  }

  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Indices into edges() of the edges leaving / entering \p Node.
  const std::vector<unsigned> &succEdges(unsigned Node) const {
    return Succ[Node];
  }
  const std::vector<unsigned> &predEdges(unsigned Node) const {
    return Pred[Node];
  }

  /// True if there is a direct edge From -> To.
  bool hasEdge(unsigned From, unsigned To) const {
    for (unsigned E : Succ[From])
      if (Edges[E].To == To)
        return true;
    return false;
  }

  /// True if \p From reaches \p To through dependence edges (transitive).
  bool depends(unsigned From, unsigned To) const {
    return Ancestors[To].test(From);
  }

private:
  std::vector<Node> Nodes;
  std::vector<int> InstrToNode;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<unsigned>> Succ;
  std::vector<std::vector<unsigned>> Pred;
  /// Ancestors[N] = DDG nodes with a dependence path into N.
  std::vector<BitSet> Ancestors;
};

} // namespace gis

#endif // GIS_ANALYSIS_DATADEPS_H

//===- analysis/DataDeps.h - Instruction data dependences -------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data subgraph of the PDG for one scheduling region (paper Section
/// 4.2).  Edges are flow (def -> use, carrying the machine delay),
/// anti (use -> def), output (def -> def) and memory dependences, computed
/// both intra-block and inter-block (for block pairs connected in the
/// region's forward CFG), with the paper's transitive reduction: an edge is
/// skipped when it is implied by already-recorded edges.
///
/// Collapsed inner loops appear as single "barrier" nodes that aggregate
/// the loop's register defs/uses and act as memory-touching, immovable
/// pseudo-instructions, so no instruction can be moved across an inner
/// loop it depends on.
///
/// Layout (DESIGN.md section 14): the graph is struct-of-arrays.  Nodes
/// are two words; register def/use facts (including barrier payloads) live
/// in one flat SpanArena; the adjacency is compressed-sparse-row (one
/// offsets array plus one edge-index array per direction), so the
/// scheduler's per-pick successor walks and the builder's O(n^2) pairwise
/// classification are sequential index scans, not pointer chases.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_DATADEPS_H
#define GIS_ANALYSIS_DATADEPS_H

#include "analysis/Region.h"
#include "machine/MachineDescription.h"
#include "support/Arena.h"

#include <vector>

namespace gis {

class DisambigCache;

/// Kind of a data dependence edge (paper Section 4.2).
enum class DepKind : uint8_t {
  Flow,   ///< register defined in From, used in To (carries a delay)
  Anti,   ///< register used in From, defined in To
  Output, ///< register defined in both
  Memory, ///< unresolved memory conflict
};

/// Returns a short name for \p K ("flow", "anti", ...).
const char *depKindName(DepKind K);

/// One dependence edge between DDG node indices.
struct DepEdge {
  unsigned From;
  unsigned To;
  DepKind Kind;
  unsigned Delay; ///< nonzero only on flow edges (paper Section 4.2)
};

/// The data dependence graph of one region.
class DataDeps {
public:
  /// One DDG node: a real instruction or an inner-loop barrier.  Register
  /// facts (and a barrier's aggregate payload) live in the shared arena,
  /// reachable through defs()/uses() below.
  struct Node {
    InstrId Instr = InvalidId; ///< valid for real instructions
    unsigned RegionNode = 0;   ///< owning node in the SchedRegion

    bool isBarrier() const { return Instr == InvalidId; }
  };

  /// Coarse size/footprint numbers of one graph, surfaced through the obs
  /// coldpath counters (bytes are capacity of the flat buffers, i.e. what
  /// the arena reserved, not a malloc-accurate footprint).
  struct Stats {
    unsigned Nodes = 0;
    unsigned Edges = 0;
    uint64_t ArenaBytes = 0;
  };

  /// Builds the DDG for region \p R of function \p F, with flow-edge
  /// delays taken from \p MD.  With \p Cache the all-pairs reachability
  /// closure and the disambiguator's function-wide facts come from the
  /// shared memo (DESIGN.md section 15) instead of being re-solved.
  static DataDeps compute(const Function &F, const SchedRegion &R,
                          const MachineDescription &MD,
                          DisambigCache *Cache = nullptr);

  const std::vector<Node> &ddgNodes() const { return Nodes; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const Node &ddgNode(unsigned N) const { return Nodes[N]; }

  /// Registers defined / used by node \p N (a barrier's aggregate payload
  /// for summary nodes).
  SpanRange<Reg> defs(unsigned N) const { return {FactRegs, DefSpan[N]}; }
  SpanRange<Reg> uses(unsigned N) const { return {FactRegs, UseSpan[N]}; }

  /// DDG node index of \p Instr, or -1 when the instruction is not in the
  /// region's real blocks.
  int nodeOfInstr(InstrId Instr) const {
    return Instr < InstrToNode.size() ? InstrToNode[Instr] : -1;
  }

  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Indices into edges() of the edges leaving / entering \p Node: CSR
  /// rows, iterable ranges over the flat index arrays.
  SpanRange<unsigned> succEdges(unsigned Node) const {
    return {SuccIdx, SuccSpan[Node]};
  }
  SpanRange<unsigned> predEdges(unsigned Node) const {
    return {PredIdx, PredSpan[Node]};
  }

  /// True if there is a direct edge From -> To.
  bool hasEdge(unsigned From, unsigned To) const {
    for (unsigned E : succEdges(From))
      if (Edges[E].To == To)
        return true;
    return false;
  }

  /// True if \p From reaches \p To through dependence edges (transitive).
  bool depends(unsigned From, unsigned To) const {
    return Ancestors[To].test(From);
  }

  /// Size and reserved-bytes numbers for the obs coldpath counters.
  Stats stats() const;

private:
  std::vector<Node> Nodes;
  std::vector<int> InstrToNode;
  std::vector<DepEdge> Edges;
  /// Per-node register facts, flattened: one arena, two spans per node.
  SpanArena<Reg> FactRegs;
  std::vector<ArenaSpan> DefSpan;
  std::vector<ArenaSpan> UseSpan;
  /// CSR adjacency: per-node spans into flat edge-index arrays, built in
  /// one pass after edge discovery.
  SpanArena<unsigned> SuccIdx;
  SpanArena<unsigned> PredIdx;
  std::vector<ArenaSpan> SuccSpan;
  std::vector<ArenaSpan> PredSpan;
  /// Ancestors[N] = DDG nodes with a dependence path into N.
  std::vector<BitSet> Ancestors;
};

} // namespace gis

#endif // GIS_ANALYSIS_DATADEPS_H

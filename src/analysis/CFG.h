//===- analysis/CFG.h - Function CFG adapter --------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the DiGraph view of a Function's control flow graph.  Node
/// indices equal BlockIds.  Callers must have run Function::recomputeCFG.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_CFG_H
#define GIS_ANALYSIS_CFG_H

#include "analysis/Graph.h"
#include "ir/Function.h"

namespace gis {

/// The CFG of \p F as a DiGraph (node index == BlockId).
inline DiGraph buildCFG(const Function &F) {
  DiGraph G(F.numBlocks(), F.entry());
  for (BlockId B = 0; B != F.numBlocks(); ++B)
    for (BlockId S : F.block(B).succs())
      G.addEdge(B, S);
  return G;
}

} // namespace gis

#endif // GIS_ANALYSIS_CFG_H

//===- analysis/Dominators.cpp - Dominator / postdominator trees ----------===//

#include "analysis/Dominators.h"

using namespace gis;

DomTree::DomTree(const DiGraph &G) : Root(G.Entry) {
  unsigned N = G.NumNodes;
  IDom.assign(N, NoDominator);
  Depth.assign(N, 0);
  Children.assign(N, {});
  if (N == 0)
    return;

  // Cooper-Harvey-Kennedy: iterate intersection over reverse postorder.
  std::vector<unsigned> RPO = reversePostOrder(G);
  std::vector<unsigned> RPOIndex(N, ~0u);
  for (unsigned I = 0; I != RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };

  IDom[Root] = Root; // temporary self-loop to seed the intersection
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : RPO) {
      if (Node == Root)
        continue;
      unsigned NewIDom = NoDominator;
      for (unsigned P : G.Preds[Node]) {
        if (IDom[P] == NoDominator || RPOIndex[P] == ~0u)
          continue; // predecessor not processed / unreachable
        NewIDom = NewIDom == NoDominator ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != NoDominator && IDom[Node] != NewIDom) {
        IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[Root] = NoDominator;

  // Depths and children, walking nodes in RPO (parents first).
  for (unsigned Node : RPO) {
    if (Node == Root || IDom[Node] == NoDominator)
      continue;
    Depth[Node] = Depth[IDom[Node]] + 1;
    Children[IDom[Node]].push_back(Node);
  }
}

bool DomTree::dominates(unsigned A, unsigned B) const {
  if (!isReachable(A) || !isReachable(B))
    return false;
  // Walk B up the tree until reaching A's depth.
  unsigned Cur = B;
  while (Depth[Cur] > Depth[A]) {
    Cur = IDom[Cur];
    GIS_ASSERT(Cur != NoDominator, "broken dominator tree");
  }
  return Cur == A;
}

DiGraph PostDomTree::buildReversed(const DiGraph &G,
                                   const std::vector<unsigned> &ExtraExits) {
  unsigned ExitNode = G.NumNodes;
  DiGraph Ext(G.NumNodes + 1, G.Entry);
  for (unsigned N = 0; N != G.NumNodes; ++N)
    for (unsigned S : G.Succs[N])
      Ext.addEdge(N, S);
  for (unsigned N = 0; N != G.NumNodes; ++N)
    if (G.Succs[N].empty())
      Ext.addEdge(N, ExitNode);
  for (unsigned N : ExtraExits)
    Ext.addEdge(N, ExitNode);
  return Ext.reversed(ExitNode);
}

PostDomTree::PostDomTree(const DiGraph &G,
                         const std::vector<unsigned> &ExtraExits)
    : ExitNode(G.NumNodes), Tree(buildReversed(G, ExtraExits)) {}

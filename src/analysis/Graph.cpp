//===- analysis/Graph.cpp - Generic directed graph utilities --------------===//

#include "analysis/Graph.h"

#include <algorithm>

using namespace gis;

std::vector<unsigned> gis::postOrder(const DiGraph &G) {
  std::vector<unsigned> Order;
  if (G.NumNodes == 0)
    return Order;
  std::vector<uint8_t> State(G.NumNodes, 0); // 0 new, 1 open, 2 done
  // Iterative DFS with an explicit stack of (node, next-successor-index).
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.emplace_back(G.Entry, 0);
  State[G.Entry] = 1;
  while (!Stack.empty()) {
    auto &[N, NextIdx] = Stack.back();
    if (NextIdx < G.Succs[N].size()) {
      unsigned S = G.Succs[N][NextIdx++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
    } else {
      State[N] = 2;
      Order.push_back(N);
      Stack.pop_back();
    }
  }
  return Order;
}

std::vector<unsigned> gis::reversePostOrder(const DiGraph &G) {
  std::vector<unsigned> Order = postOrder(G);
  std::reverse(Order.begin(), Order.end());
  return Order;
}

BitSet gis::reachableFrom(const DiGraph &G, unsigned From) {
  BitSet Reached(G.NumNodes);
  std::vector<unsigned> Work = {From};
  Reached.set(From);
  while (!Work.empty()) {
    unsigned N = Work.back();
    Work.pop_back();
    for (unsigned S : G.Succs[N])
      if (!Reached.test(S)) {
        Reached.set(S);
        Work.push_back(S);
      }
  }
  return Reached;
}

std::vector<BitSet> gis::allPairsReachability(const DiGraph &G) {
  // For the acyclic case a reverse-topological sweep would do; this version
  // handles cycles too by iterating to a fixed point (regions are small:
  // the paper caps them at 64 blocks).
  std::vector<BitSet> Reach(G.NumNodes, BitSet(G.NumNodes));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned N = 0; N != G.NumNodes; ++N)
      for (unsigned S : G.Succs[N]) {
        if (!Reach[N].test(S)) {
          Reach[N].set(S);
          Changed = true;
        }
        Changed |= Reach[N].unionWith(Reach[S]);
      }
  }
  return Reach;
}

std::vector<unsigned> gis::topologicalOrder(const DiGraph &G) {
  // Kahn's algorithm over the nodes reachable from the entry.
  BitSet Reachable = reachableFrom(G, G.Entry);
  std::vector<unsigned> InDegree(G.NumNodes, 0);
  for (unsigned N = 0; N != G.NumNodes; ++N) {
    if (!Reachable.test(N))
      continue;
    for (unsigned S : G.Succs[N])
      if (Reachable.test(S))
        ++InDegree[S];
  }
  std::vector<unsigned> Ready;
  // Keep node-index order within ties for determinism; process smallest
  // index first via a sorted insertion into a worklist.
  for (unsigned N = 0; N != G.NumNodes; ++N)
    if (Reachable.test(N) && InDegree[N] == 0)
      Ready.push_back(N);
  std::vector<unsigned> Order;
  for (size_t K = 0; K != Ready.size(); ++K) {
    unsigned N = Ready[K];
    Order.push_back(N);
    for (unsigned S : G.Succs[N])
      if (Reachable.test(S) && --InDegree[S] == 0)
        Ready.push_back(S);
  }
  GIS_ASSERT(Order.size() == Reachable.count(),
             "topologicalOrder called on a cyclic graph");
  return Order;
}

bool gis::isAcyclic(const DiGraph &G) {
  BitSet Reachable = reachableFrom(G, G.Entry);
  std::vector<unsigned> InDegree(G.NumNodes, 0);
  unsigned NumReachable = 0;
  for (unsigned N = 0; N != G.NumNodes; ++N) {
    if (!Reachable.test(N))
      continue;
    ++NumReachable;
    for (unsigned S : G.Succs[N])
      if (Reachable.test(S))
        ++InDegree[S];
  }
  std::vector<unsigned> Ready;
  for (unsigned N = 0; N != G.NumNodes; ++N)
    if (Reachable.test(N) && InDegree[N] == 0)
      Ready.push_back(N);
  size_t Done = 0;
  for (size_t K = 0; K != Ready.size(); ++K) {
    ++Done;
    for (unsigned S : G.Succs[Ready[K]])
      if (Reachable.test(S) && --InDegree[S] == 0)
        Ready.push_back(S);
  }
  return Done == NumReachable;
}

//===- analysis/ControlDeps.h - Forward control dependences ----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control subgraph of the Program Dependence Graph (CSPDG) for one
/// scheduling region, per Ferrante-Ottenstein-Warren computed on the
/// acyclic forward CFG (paper Section 4.1, following [CHH89]: control
/// dependences through back edges are not computed).
///
/// Provides what the scheduler needs:
///  - per-node control dependence sets (controller, condition label),
///  - "identically control dependent" equivalence classes, whose members
///    ordered by dominance give the paper's EQUIV sets (Definitions 3-4),
///  - CSPDG successor lists and path lengths (the "degree of
///    speculativeness", Definition 7).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_CONTROLDEPS_H
#define GIS_ANALYSIS_CONTROLDEPS_H

#include "analysis/Dominators.h"
#include "analysis/Region.h"

#include <memory>
#include <optional>

namespace gis {

/// One control dependence: this node executes iff control leaves
/// \c Controller along its successor edge number \c EdgeLabel.
struct CDep {
  unsigned Controller;
  unsigned EdgeLabel;

  bool operator==(const CDep &RHS) const {
    return Controller == RHS.Controller && EdgeLabel == RHS.EdgeLabel;
  }
  bool operator<(const CDep &RHS) const {
    if (Controller != RHS.Controller)
      return Controller < RHS.Controller;
    return EdgeLabel < RHS.EdgeLabel;
  }
};

/// CSPDG of one region.
class ControlDeps {
public:
  /// Computes control dependences for region \p R.
  static ControlDeps compute(const SchedRegion &R);

  /// Control dependences of \p Node, sorted.
  const std::vector<CDep> &deps(unsigned Node) const { return Deps[Node]; }

  /// Nodes that are control dependent on \p Node (CSPDG successors),
  /// deduplicated, in ascending node order.
  const std::vector<unsigned> &cspdgSuccs(unsigned Node) const {
    return Succs[Node];
  }

  /// True if \p A and \p B have identical control-dependence sets
  /// ("identically control dependent", the paper's practical test for
  /// equivalence).
  bool identicallyControlDependent(unsigned A, unsigned B) const {
    return ClassOf[A] == ClassOf[B];
  }

  /// Equivalence class id of \p Node.
  unsigned equivClass(unsigned Node) const { return ClassOf[Node]; }

  /// Members of each equivalence class, ordered by dominance (dominators
  /// first), matching the paper's dashed-edge ordering in Figure 4.
  const std::vector<std::vector<unsigned>> &equivClasses() const {
    return Classes;
  }

  /// Length of the shortest CSPDG path from \p A to \p B: the number of
  /// branches an instruction motion from B to A gambles on (Definition 7).
  /// std::nullopt if B is not reachable from A in the CSPDG.
  std::optional<unsigned> specDegree(unsigned A, unsigned B) const;

  /// Dominators / postdominators of the region's forward graph.
  const DomTree &dom() const { return *Dom; }
  const PostDomTree &postDom() const { return *PDom; }

private:
  std::vector<std::vector<CDep>> Deps;
  std::vector<std::vector<unsigned>> Succs;
  std::vector<unsigned> ClassOf;
  std::vector<std::vector<unsigned>> Classes;
  std::shared_ptr<DomTree> Dom;
  std::shared_ptr<PostDomTree> PDom;
};

} // namespace gis

#endif // GIS_ANALYSIS_CONTROLDEPS_H

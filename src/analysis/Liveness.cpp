//===- analysis/Liveness.cpp - Live-register dataflow ---------------------===//

#include "analysis/Liveness.h"

#include <utility>

using namespace gis;

bool Liveness::rebuildLocalSets(const Function &F, BlockId B) {
  BitSet NewUEVar(Universe), NewKill(Universe);
  for (InstrId Id : F.block(B).instrs()) {
    const Instruction &I = F.instr(Id);
    for (Reg R : I.uses()) {
      unsigned Idx = denseIndex(R);
      if (!NewKill.test(Idx))
        NewUEVar.set(Idx);
    }
    for (Reg R : I.defs())
      NewKill.set(denseIndex(R));
  }
  bool Changed = !(NewUEVar == UEVar[B]) || !(NewKill == Kill[B]);
  UEVar[B] = std::move(NewUEVar);
  Kill[B] = std::move(NewKill);
  return Changed;
}

Liveness Liveness::compute(const Function &F) {
  Liveness LV;
  // Dense universe: per-class index ranges from the function's register
  // counters (slot = class base + register index).
  LV.ClassBase[0] = 0;
  LV.ClassBase[1] = F.numRegs(RegClass::GPR);
  LV.ClassBase[2] = LV.ClassBase[1] + F.numRegs(RegClass::FPR);
  LV.Universe = LV.ClassBase[2] + F.numRegs(RegClass::CR);

  unsigned U = LV.Universe;
  unsigned N = F.numBlocks();

  // Per block: upward-exposed uses and kills.  Cached on the object so
  // recomputeBlocks() can compare a block's new summary against the old.
  LV.UEVar.assign(N, BitSet(U));
  LV.Kill.assign(N, BitSet(U));
  for (BlockId B = 0; B != N; ++B)
    LV.rebuildLocalSets(F, B);

  // Seed LiveIn with the upward-exposed uses so the "LiveIn is a function
  // of LiveOut" early-out below is valid from the first sweep.
  LV.LiveIn = LV.UEVar;
  LV.LiveOut.assign(N, BitSet(U));

  // Backward fixed point: LiveOut(B) = union of LiveIn(S);
  // LiveIn(B) = UEVar(B) | (LiveOut(B) - Kill(B)).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned K = N; K-- > 0;) {
      BlockId B = K;
      BitSet Out(U);
      for (BlockId S : F.block(B).succs())
        Out.unionWith(LV.LiveIn[S]);
      if (Out == LV.LiveOut[B])
        continue; // LiveIn is a function of LiveOut: nothing to redo
      BitSet In = Out;
      In.subtract(LV.Kill[B]);
      In.unionWith(LV.UEVar[B]);
      LV.LiveOut[B] = std::move(Out);
      if (!(In == LV.LiveIn[B])) {
        LV.LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
  return LV;
}

Liveness::UpdateResult
Liveness::recomputeBlocks(const Function &F,
                          const std::vector<BlockId> &Changed) {
  UpdateResult R;

  // Renaming may have created fresh registers since the last solve; the
  // dense per-class indexing then shifts and every cached bit set is in
  // the wrong coordinate system.  Fall back to a full solve.
  unsigned NewGPR = F.numRegs(RegClass::GPR);
  unsigned NewFPR = F.numRegs(RegClass::FPR);
  unsigned NewCR = F.numRegs(RegClass::CR);
  if (ClassBase[1] != NewGPR || ClassBase[2] != NewGPR + NewFPR ||
      Universe != NewGPR + NewFPR + NewCR ||
      LiveIn.size() != F.numBlocks()) {
    *this = compute(F);
    R.Full = true;
    R.BlocksResolved = F.numBlocks();
    return R;
  }

  unsigned N = F.numBlocks();

  // Re-derive the edited blocks' UEVar/Kill summaries.  Unchanged
  // summaries leave every dataflow equation satisfied: done.
  std::vector<BlockId> Dirty;
  std::vector<uint8_t> Seen(N, 0);
  for (BlockId B : Changed) {
    if (Seen[B])
      continue;
    Seen[B] = 1;
    if (rebuildLocalSets(F, B))
      Dirty.push_back(B);
  }
  if (Dirty.empty())
    return R;

  // Affected set: blocks whose solution can depend on a dirty block's
  // summary are exactly the blocks that reach a dirty block in the CFG
  // (liveness flows backward along edges) -- collected by a BFS over
  // predecessor lists.  Every successor of an unaffected block is itself
  // unaffected, so freezing unaffected live-in sets below is exact.
  std::vector<uint8_t> Affected(N, 0);
  std::vector<BlockId> Work = Dirty;
  for (BlockId B : Work)
    Affected[B] = 1;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId P : F.block(B).preds())
      if (!Affected[P]) {
        Affected[P] = 1;
        Work.push_back(P);
      }
  }

  // Reset the affected blocks to bottom and re-solve the restricted
  // system; both full and restricted solves converge to the unique least
  // fixpoint, so the result is bit-identical to a fresh compute().
  unsigned U = Universe;
  for (BlockId B = 0; B != N; ++B) {
    if (!Affected[B])
      continue;
    ++R.BlocksResolved;
    LiveIn[B] = UEVar[B];
    LiveOut[B].clear();
  }
  bool IterChanged = true;
  while (IterChanged) {
    IterChanged = false;
    for (unsigned K = N; K-- > 0;) {
      BlockId B = K;
      if (!Affected[B])
        continue;
      BitSet Out(U);
      for (BlockId S : F.block(B).succs())
        Out.unionWith(LiveIn[S]);
      if (Out == LiveOut[B])
        continue;
      BitSet In = Out;
      In.subtract(Kill[B]);
      In.unionWith(UEVar[B]);
      LiveOut[B] = std::move(Out);
      if (!(In == LiveIn[B])) {
        LiveIn[B] = std::move(In);
        IterChanged = true;
      }
    }
  }
  return R;
}

Reg Liveness::regForIndex(unsigned Index) const {
  if (Index >= ClassBase[2])
    return Reg::cr(Index - ClassBase[2]);
  if (Index >= ClassBase[1])
    return Reg::fpr(Index - ClassBase[1]);
  return Reg::gpr(Index);
}

std::vector<Reg> Liveness::liveOutRegs(BlockId B) const {
  std::vector<Reg> Out;
  LiveOut[B].forEach([&](unsigned I) { Out.push_back(regForIndex(I)); });
  return Out;
}

std::vector<Reg> Liveness::liveInRegs(BlockId B) const {
  std::vector<Reg> In;
  LiveIn[B].forEach([&](unsigned I) { In.push_back(regForIndex(I)); });
  return In;
}

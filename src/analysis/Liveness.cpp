//===- analysis/Liveness.cpp - Live-register dataflow ---------------------===//

#include "analysis/Liveness.h"

using namespace gis;

Liveness Liveness::compute(const Function &F) {
  Liveness LV;
  // Dense universe: per-class index ranges from the function's register
  // counters (slot = class base + register index).
  LV.ClassBase[0] = 0;
  LV.ClassBase[1] = F.numRegs(RegClass::GPR);
  LV.ClassBase[2] = LV.ClassBase[1] + F.numRegs(RegClass::FPR);
  LV.Universe = LV.ClassBase[2] + F.numRegs(RegClass::CR);

  unsigned U = LV.Universe;
  unsigned N = F.numBlocks();

  // Per block: upward-exposed uses and kills.
  std::vector<BitSet> UEVar(N, BitSet(U)), Kill(N, BitSet(U));
  for (BlockId B = 0; B != N; ++B) {
    for (InstrId Id : F.block(B).instrs()) {
      const Instruction &I = F.instr(Id);
      for (Reg R : I.uses()) {
        unsigned Idx = LV.denseIndex(R);
        if (!Kill[B].test(Idx))
          UEVar[B].set(Idx);
      }
      for (Reg R : I.defs())
        Kill[B].set(LV.denseIndex(R));
    }
  }

  // Seed LiveIn with the upward-exposed uses so the "LiveIn is a function
  // of LiveOut" early-out below is valid from the first sweep.
  LV.LiveIn = UEVar;
  LV.LiveOut.assign(N, BitSet(U));

  // Backward fixed point: LiveOut(B) = union of LiveIn(S);
  // LiveIn(B) = UEVar(B) | (LiveOut(B) - Kill(B)).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned K = N; K-- > 0;) {
      BlockId B = K;
      BitSet Out(U);
      for (BlockId S : F.block(B).succs())
        Out.unionWith(LV.LiveIn[S]);
      if (Out == LV.LiveOut[B])
        continue; // LiveIn is a function of LiveOut: nothing to redo
      BitSet In = Out;
      In.subtract(Kill[B]);
      In.unionWith(UEVar[B]);
      LV.LiveOut[B] = std::move(Out);
      if (!(In == LV.LiveIn[B])) {
        LV.LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
  return LV;
}

Reg Liveness::regForIndex(unsigned Index) const {
  if (Index >= ClassBase[2])
    return Reg::cr(Index - ClassBase[2]);
  if (Index >= ClassBase[1])
    return Reg::fpr(Index - ClassBase[1]);
  return Reg::gpr(Index);
}

std::vector<Reg> Liveness::liveOutRegs(BlockId B) const {
  std::vector<Reg> Out;
  LiveOut[B].forEach([&](unsigned I) { Out.push_back(regForIndex(I)); });
  return Out;
}

std::vector<Reg> Liveness::liveInRegs(BlockId B) const {
  std::vector<Reg> In;
  LiveIn[B].forEach([&](unsigned I) { In.push_back(regForIndex(I)); });
  return In;
}

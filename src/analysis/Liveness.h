//===- analysis/Liveness.h - Live-register dataflow -------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward liveness over symbolic registers.  The scheduler uses
/// live-on-exit sets to guard speculative motion (paper Section 5.3: an
/// instruction must not be moved speculatively into a block if it writes a
/// register that is live on exit from that block), recomputing them after
/// each speculative motion -- so this analysis is on the compile-time hot
/// path and uses dense per-class register indexing throughout.
///
/// Incremental maintenance (DESIGN.md section 14): the solver caches each
/// block's UEVar/Kill summary, so after a code motion -- which edits at
/// most two blocks -- recomputeBlocks() re-derives only those summaries.
/// If they are unchanged the old solution still satisfies every dataflow
/// equation and nothing is done.  Otherwise the blocks whose sets can
/// depend on a changed summary are exactly the blocks that *reach* a
/// changed block in the CFG (liveness flows backward); those are reset to
/// bottom and re-solved with the live-in sets of all unreachable-from
/// blocks frozen.  The restricted system's least fixpoint coincides with
/// the full system's because every successor of an unaffected block is
/// itself unaffected.  Renaming can grow the register universe, shifting
/// the dense indexing; that (rare) case falls back to a full recompute.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_LIVENESS_H
#define GIS_ANALYSIS_LIVENESS_H

#include "ir/Function.h"
#include "support/BitSet.h"

#include <array>
#include <vector>

namespace gis {

/// Per-block live-in / live-out register sets of one function.
class Liveness {
public:
  /// Computes liveness for \p F (CFG must be up to date).
  static Liveness compute(const Function &F);

  /// What recomputeBlocks() ended up doing, for the obs coldpath counters.
  struct UpdateResult {
    bool Full = false;           ///< fell back to a whole-function solve
    unsigned BlocksResolved = 0; ///< blocks re-solved by the delta path
  };

  /// Exact delta update after instruction motions or renames confined to
  /// the \p Changed blocks (the CFG must be unchanged since compute()).
  /// The result is bit-identical to a fresh compute(\p F).
  UpdateResult recomputeBlocks(const Function &F,
                               const std::vector<BlockId> &Changed);

  /// True if \p R is live on exit from block \p B.
  bool isLiveOut(BlockId B, Reg R) const {
    return LiveOut[B].test(denseIndex(R));
  }

  /// True if \p R is live on entry to block \p B.
  bool isLiveIn(BlockId B, Reg R) const {
    return LiveIn[B].test(denseIndex(R));
  }

  /// Number of distinct register slots in the universe.
  unsigned universeSize() const { return Universe; }

  /// Registers live on exit from \p B, materialized as Reg values.
  std::vector<Reg> liveOutRegs(BlockId B) const;

  /// Registers live on entry to \p B, materialized as Reg values (used by
  /// LivenessSlice to freeze a region's out-of-region boundary).
  std::vector<Reg> liveInRegs(BlockId B) const;

  /// True when both analyses hold identical solutions (same universe and
  /// identical per-block sets) -- the GIS_SLOWPATH_CHECK cross-check and
  /// the equivalence tests compare a delta-updated solver against a fresh
  /// compute() with this.
  bool sameSetsAs(const Liveness &RHS) const {
    return ClassBase == RHS.ClassBase && Universe == RHS.Universe &&
           LiveIn == RHS.LiveIn && LiveOut == RHS.LiveOut;
  }

  /// Deliberately corrupts the cached live-out set of \p B (fault stage
  /// "liveness-delta"): the Section 5.3 guard then believes nothing is
  /// live on exit, so an illegal speculative motion can slip through --
  /// which the semantic verifier / transaction rollback must catch.
  void corruptLiveOutForTest(BlockId B) { LiveOut[B].clear(); }

private:
  unsigned denseIndex(Reg R) const {
    GIS_ASSERT(R.isValid(), "liveness query on invalid register");
    return ClassBase[static_cast<unsigned>(R.regClass())] + R.index();
  }

  Reg regForIndex(unsigned Index) const;

  /// Rebuilds the cached UEVar/Kill summary of \p B from the function's
  /// current contents; returns true when either set changed.
  bool rebuildLocalSets(const Function &F, BlockId B);

  std::array<unsigned, 3> ClassBase = {0, 0, 0};
  unsigned Universe = 0;
  std::vector<BitSet> LiveIn;  ///< per block
  std::vector<BitSet> LiveOut; ///< per block
  std::vector<BitSet> UEVar;   ///< per block, cached for delta updates
  std::vector<BitSet> Kill;    ///< per block, cached for delta updates
};

} // namespace gis

#endif // GIS_ANALYSIS_LIVENESS_H

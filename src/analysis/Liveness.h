//===- analysis/Liveness.h - Live-register dataflow -------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward liveness over symbolic registers.  The scheduler uses
/// live-on-exit sets to guard speculative motion (paper Section 5.3: an
/// instruction must not be moved speculatively into a block if it writes a
/// register that is live on exit from that block), recomputing them after
/// each speculative motion -- so this analysis is on the compile-time hot
/// path and uses dense per-class register indexing throughout.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_LIVENESS_H
#define GIS_ANALYSIS_LIVENESS_H

#include "ir/Function.h"
#include "support/BitSet.h"

#include <array>
#include <vector>

namespace gis {

/// Per-block live-in / live-out register sets of one function.
class Liveness {
public:
  /// Computes liveness for \p F (CFG must be up to date).
  static Liveness compute(const Function &F);

  /// True if \p R is live on exit from block \p B.
  bool isLiveOut(BlockId B, Reg R) const {
    return LiveOut[B].test(denseIndex(R));
  }

  /// True if \p R is live on entry to block \p B.
  bool isLiveIn(BlockId B, Reg R) const {
    return LiveIn[B].test(denseIndex(R));
  }

  /// Number of distinct register slots in the universe.
  unsigned universeSize() const { return Universe; }

  /// Registers live on exit from \p B, materialized as Reg values.
  std::vector<Reg> liveOutRegs(BlockId B) const;

  /// Registers live on entry to \p B, materialized as Reg values (used by
  /// LivenessSlice to freeze a region's out-of-region boundary).
  std::vector<Reg> liveInRegs(BlockId B) const;

private:
  unsigned denseIndex(Reg R) const {
    GIS_ASSERT(R.isValid(), "liveness query on invalid register");
    return ClassBase[static_cast<unsigned>(R.regClass())] + R.index();
  }

  Reg regForIndex(unsigned Index) const;

  std::array<unsigned, 3> ClassBase = {0, 0, 0};
  unsigned Universe = 0;
  std::vector<BitSet> LiveIn;  ///< per block
  std::vector<BitSet> LiveOut; ///< per block
};

} // namespace gis

#endif // GIS_ANALYSIS_LIVENESS_H

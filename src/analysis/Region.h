//===- analysis/Region.h - Scheduling regions -------------------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's scheduling regions (Section 5.1): a region is either the
/// body of a loop or the body of the function without enclosed loops.
/// Inner loops are collapsed to opaque "summary" nodes: instructions never
/// move out of or into a region, and the back edges to the region's header
/// are removed, so the region graph is acyclic (the forward CFG on which
/// the forward control dependence graph is built).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_REGION_H
#define GIS_ANALYSIS_REGION_H

#include "analysis/Graph.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"

namespace gis {

/// A node of a region graph: a real basic block or a collapsed inner loop.
struct RegionNode {
  BlockId Block = InvalidId; ///< valid when this is a real block
  int LoopIndex = -1;        ///< valid when this is a loop summary
  /// For summaries: the collapsed loop's aggregate register defs/uses
  /// (sorted, unique), used by DataDeps to treat the loop as one opaque
  /// barrier instruction.
  std::vector<Reg> SummaryDefs;
  std::vector<Reg> SummaryUses;

  bool isBlock() const { return Block != InvalidId; }
  bool isLoopSummary() const { return LoopIndex >= 0; }
};

/// One scheduling region.
class SchedRegion {
public:
  /// Builds the region for loop \p LoopIndex of \p LI, or, when
  /// \p LoopIndex is -1, the top-level region (the function body with all
  /// outermost loops collapsed).
  static SchedRegion build(const Function &F, const LoopInfo &LI,
                           int LoopIndex);

  /// A degenerate region holding a single basic block, used by the local
  /// scheduler on functions whose control flow is irreducible (regions
  /// proper require reducibility).
  static SchedRegion buildSingleBlock(const Function &F, BlockId B);

  /// Builds a superblock region over \p Chain: a linear single-entry
  /// trace (trace/TraceFormation.h) whose blocks appear in trace order.
  /// The caller guarantees the single-entry property -- every block but
  /// the head has the preceding chain block as its only CFG predecessor
  /// (tail duplication restores this when formation crossed a join) --
  /// so the head dominates every trace block and region dominance over
  /// the chain is exact, the same soundness argument RegionSlice makes
  /// for loop regions.  Off-chain successors become region exits; a
  /// loop-back edge to the head is dropped like a loop region's back
  /// edge.  \p TraceIndex tags the region for diagnostics (encoded in
  /// loopIndex() as -2 - TraceIndex; see isTrace()/traceIndex()).
  static SchedRegion buildTrace(const Function &F,
                                const std::vector<BlockId> &Chain,
                                int TraceIndex);

  /// The loop this region represents (-1 for the top-level region;
  /// values <= -2 encode superblock traces, see buildTrace).
  int loopIndex() const { return LoopIdx; }

  /// True when this region is a superblock trace (built by buildTrace).
  bool isTrace() const { return LoopIdx <= -2; }

  /// The trace index this superblock region was built from, or -1.
  int traceIndex() const { return isTrace() ? -2 - LoopIdx : -1; }

  const std::vector<RegionNode> &nodes() const { return Nodes; }
  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const RegionNode &node(unsigned N) const { return Nodes[N]; }

  /// The acyclic forward graph over region nodes (back edges to the entry
  /// removed, inner loops collapsed).
  const DiGraph &forwardGraph() const { return Forward; }

  unsigned entryNode() const { return Entry; }

  /// Region node owning \p B directly (not through a summary), or -1.
  int nodeOfBlock(BlockId B) const {
    return B < BlockToNode.size() ? BlockToNode[B] : -1;
  }

  /// Nodes with CFG edges that leave the region (loop exits); these are
  /// attached to the virtual exit when computing postdominators.
  const std::vector<unsigned> &exitNodes() const { return Exits; }

  /// Topological order of the forward graph (entry first).
  const std::vector<unsigned> &topoOrder() const { return Topo; }

  /// Number of real basic blocks in the region (the paper's 64-block cap).
  unsigned numRealBlocks() const { return RealBlocks; }

  /// Number of instructions in the region's real blocks (the paper's
  /// 256-instruction cap).
  unsigned numInstrs() const { return NumInstrs; }

private:
  int LoopIdx = -1;
  std::vector<RegionNode> Nodes;
  DiGraph Forward;
  unsigned Entry = 0;
  std::vector<int> BlockToNode;
  std::vector<unsigned> Exits;
  std::vector<unsigned> Topo;
  unsigned RealBlocks = 0;
  unsigned NumInstrs = 0;
};

} // namespace gis

#endif // GIS_ANALYSIS_REGION_H

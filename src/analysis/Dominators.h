//===- analysis/Dominators.h - Dominator / postdominator trees -*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator trees over DiGraphs (Cooper-Harvey-Kennedy iterative
/// algorithm).  Postdominators are dominators of the reversed graph with a
/// virtual exit node.  These implement the paper's Definitions 1-3
/// (dominates, postdominates, equivalent).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_DOMINATORS_H
#define GIS_ANALYSIS_DOMINATORS_H

#include "analysis/Graph.h"

namespace gis {

/// Constant marking "no immediate dominator" (the root) or an unreachable
/// node.
constexpr unsigned NoDominator = ~0u;

/// Dominator tree of a DiGraph.
class DomTree {
public:
  /// Builds the dominator tree of \p G rooted at its entry.
  explicit DomTree(const DiGraph &G);

  /// Immediate dominator of \p N; NoDominator for the root and for
  /// unreachable nodes.
  unsigned idom(unsigned N) const { return IDom[N]; }

  /// True if \p N is reachable from the root.
  bool isReachable(unsigned N) const {
    return N == Root || IDom[N] != NoDominator;
  }

  /// True if \p A dominates \p B (reflexive: a node dominates itself).
  bool dominates(unsigned A, unsigned B) const;

  /// True if \p A strictly dominates \p B.
  bool strictlyDominates(unsigned A, unsigned B) const {
    return A != B && dominates(A, B);
  }

  /// Depth of \p N in the tree (root has depth 0); 0 for unreachable nodes.
  unsigned depth(unsigned N) const { return Depth[N]; }

  unsigned root() const { return Root; }

  /// Children of \p N in the dominator tree.
  const std::vector<unsigned> &children(unsigned N) const {
    return Children[N];
  }

private:
  unsigned Root;
  std::vector<unsigned> IDom;
  std::vector<unsigned> Depth;
  std::vector<std::vector<unsigned>> Children;
};

/// A postdominator tree: the dominator tree of the reversed graph with a
/// virtual exit appended.  Node indices 0..N-1 are the original nodes; the
/// virtual exit is node N.
class PostDomTree {
public:
  /// Builds postdominators for \p G.  Every node without successors gets an
  /// edge to the virtual exit.  When \p ExtraExits is non-empty, those
  /// nodes are also connected to the virtual exit (used for region graphs
  /// whose exits leave the region rather than ending the function).
  explicit PostDomTree(const DiGraph &G,
                       const std::vector<unsigned> &ExtraExits = {});

  unsigned virtualExit() const { return ExitNode; }

  /// Immediate postdominator of \p N (possibly the virtual exit).
  unsigned ipdom(unsigned N) const { return Tree.idom(N); }

  /// True if \p B postdominates \p A (reflexive).
  bool postDominates(unsigned B, unsigned A) const {
    return Tree.dominates(B, A);
  }

  bool isReachable(unsigned N) const { return Tree.isReachable(N); }

  const DomTree &tree() const { return Tree; }

private:
  static DiGraph buildReversed(const DiGraph &G,
                               const std::vector<unsigned> &ExtraExits);

  unsigned ExitNode;
  DomTree Tree;
};

/// The paper's Definition 3: A and B are equivalent iff A dominates B and
/// B postdominates A (checked on one graph's dom and postdom trees).
inline bool areEquivalent(const DomTree &Dom, const PostDomTree &PDom,
                          unsigned A, unsigned B) {
  return Dom.dominates(A, B) && PDom.postDominates(B, A);
}

} // namespace gis

#endif // GIS_ANALYSIS_DOMINATORS_H

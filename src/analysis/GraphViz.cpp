//===- analysis/GraphViz.cpp - DOT rendering of CFG / PDG ------------------===//

#include "analysis/GraphViz.h"

#include "ir/Printer.h"
#include "support/Format.h"

using namespace gis;

namespace {

/// Escapes a string for a double-quoted DOT label.
std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string nodeName(const Function &F, const SchedRegion &R, unsigned N) {
  const RegionNode &RN = R.node(N);
  if (RN.isBlock())
    return F.block(RN.Block).label();
  return formatString("loop#%d", RN.LoopIndex);
}

} // namespace

std::string gis::cfgToDot(const Function &F) {
  std::string Out = "digraph cfg {\n  node [shape=box, fontname=monospace];\n";
  for (BlockId B : F.layout()) {
    const BasicBlock &BB = F.block(B);
    Out += formatString("  %u [label=\"%s\\n(%zu instrs)\"];\n", B,
                        escape(BB.label()).c_str(), BB.size());
  }
  for (BlockId B : F.layout()) {
    const BasicBlock &BB = F.block(B);
    InstrId Term = F.terminatorOf(B);
    bool Conditional =
        Term != InvalidId && (F.instr(Term).opcode() == Opcode::BT ||
                              F.instr(Term).opcode() == Opcode::BF);
    for (size_t K = 0; K != BB.succs().size(); ++K) {
      const char *Label = "";
      if (Conditional)
        Label = K == 0 ? "taken" : "fall";
      Out += formatString("  %u -> %u [label=\"%s\"];\n", B, BB.succs()[K],
                          Label);
    }
  }
  Out += "}\n";
  return Out;
}

std::string gis::cspdgToDot(const Function &F, const PDG &P) {
  const SchedRegion &R = P.region();
  const ControlDeps &CD = P.controlDeps();

  std::string Out =
      "digraph cspdg {\n  node [shape=ellipse, fontname=monospace];\n";
  for (unsigned N = 0; N != R.numNodes(); ++N)
    Out += formatString("  %u [label=\"%s\"];\n", N,
                        escape(nodeName(F, R, N)).c_str());

  // Solid control dependence edges, controller -> dependent.
  for (unsigned N = 0; N != R.numNodes(); ++N)
    for (const CDep &D : CD.deps(N))
      Out += formatString("  %u -> %u [label=\"e%u\"];\n", D.Controller, N,
                          D.EdgeLabel);

  // Dashed equivalence edges in dominance order (the paper's Figure 4).
  for (const std::vector<unsigned> &Class : CD.equivClasses())
    for (size_t K = 0; K + 1 < Class.size(); ++K)
      Out += formatString(
          "  %u -> %u [style=dashed, dir=none, constraint=false];\n",
          Class[K], Class[K + 1]);

  Out += "}\n";
  return Out;
}

std::string gis::ddgToDot(const Function &F, const PDG &P) {
  const SchedRegion &R = P.region();
  const DataDeps &DD = P.dataDeps();

  std::string Out =
      "digraph ddg {\n  node [shape=box, fontname=monospace];\n";

  // Cluster instructions by owning region node.
  for (unsigned RN = 0; RN != R.numNodes(); ++RN) {
    Out += formatString("  subgraph cluster_%u {\n    label=\"%s\";\n", RN,
                        escape(nodeName(F, R, RN)).c_str());
    for (unsigned N = 0; N != DD.numNodes(); ++N) {
      const DataDeps::Node &Node = DD.ddgNode(N);
      if (Node.RegionNode != RN)
        continue;
      std::string Label = Node.isBarrier()
                              ? std::string("(inner loop barrier)")
                              : instructionToString(F, Node.Instr);
      Out += formatString("    n%u [label=\"%s\"];\n", N,
                          escape(Label).c_str());
    }
    Out += "  }\n";
  }

  for (const DepEdge &E : DD.edges()) {
    const char *Style = E.Kind == DepKind::Flow ? "solid" : "dashed";
    std::string Label(depKindName(E.Kind));
    if (E.Delay)
      Label += formatString("/%u", E.Delay);
    Out += formatString("  n%u -> n%u [label=\"%s\", style=%s];\n", E.From,
                        E.To, Label.c_str(), Style);
  }
  Out += "}\n";
  return Out;
}

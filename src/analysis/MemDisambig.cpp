//===- analysis/MemDisambig.cpp - Memory disambiguation --------------------===//

#include "analysis/MemDisambig.h"

#include "analysis/CFG.h"
#include "support/FaultInjection.h"

using namespace gis;

MemDisambiguator::MemDisambiguator(const Function &F, const SchedRegion &R,
                                   DisambigCache *Cache)
    : F(F), R(R) {
  if (Cache) {
    SharedFacts = Cache->facts(F);
    Facts = SharedFacts.get();
  } else {
    OwnFacts = DisambigFacts::build(F, /*BuildDom=*/false);
    Facts = OwnFacts.get();
  }

  // Definition counts inside the region's real blocks (region-dependent,
  // so never shared).
  for (const RegionNode &N : R.nodes()) {
    if (!N.isBlock())
      continue;
    for (InstrId I : F.block(N.Block).instrs())
      for (Reg D : F.instr(I).defs())
        ++RegionDefs[D.key()];
  }

  AddrState.assign(F.numInstrs(), 0);
  AddrMemo.resize(F.numInstrs());
  CheckFault = FaultInjector::instance().armed();
}

const DomTree &MemDisambiguator::funcDom() const {
  if (Facts->Dom)
    return *Facts->Dom;
  if (!LazyDom)
    LazyDom = std::make_unique<DomTree>(buildCFG(F));
  return *LazyDom;
}

bool MemDisambiguator::defDominatesUse(InstrId Def, InstrId User) const {
  BlockId DB = Facts->BlockOf[Def], UB = Facts->BlockOf[User];
  if (DB == InvalidId || UB == InvalidId)
    return false;
  if (DB == UB)
    return Facts->PosOf[Def] < Facts->PosOf[User];
  return funcDom().dominates(DB, UB);
}

std::optional<MemDisambiguator::Address>
MemDisambiguator::resolveReg(Reg Base, InstrId User, unsigned Depth) const {
  if (Depth > 16)
    return std::nullopt; // defensive cap on chain length

  auto It = Facts->SingleDef.find(Base.key());
  if (It == Facts->SingleDef.end()) {
    // Never defined in the function (an incoming parameter register): a
    // stable symbolic root.
    Address A;
    A.RootReg = Base;
    return A;
  }
  InstrId DefId = It->second;
  if (DefId == InvalidId)
    return std::nullopt; // multiple definitions: not a stable value
  if (!defDominatesUse(DefId, User))
    return std::nullopt;

  const Instruction &Def = F.instr(DefId);
  switch (Def.opcode()) {
  case Opcode::LI: {
    Address A;
    A.IsConst = true;
    A.Offset = Def.imm();
    return A;
  }
  case Opcode::AI: {
    auto Inner = resolveReg(Def.uses()[0], DefId, Depth + 1);
    if (!Inner)
      return std::nullopt;
    Inner->Offset += Def.imm();
    return Inner;
  }
  case Opcode::LR:
    return resolveReg(Def.uses()[0], DefId, Depth + 1);
  default: {
    // Defined once by an opaque instruction: stable symbolic root.
    Address A;
    A.RootReg = Base;
    return A;
  }
  }
}

std::optional<MemDisambiguator::Address>
MemDisambiguator::resolveAddressUncached(InstrId Access) const {
  const Instruction &I = F.instr(Access);
  if (!I.touchesMemory() || I.isCall() || I.isSpillCode())
    return std::nullopt;
  auto A = resolveReg(I.memBase(), Access, 0);
  if (!A)
    return std::nullopt;
  A->Offset += I.imm();
  return A;
}

std::optional<MemDisambiguator::Address>
MemDisambiguator::resolveAddress(InstrId Access) const {
  if (AddrState[Access] == 0) {
    auto A = resolveAddressUncached(Access);
    if (A) {
      AddrState[Access] = 1;
      AddrMemo[Access] = *A;
    } else {
      AddrState[Access] = 2;
    }
  }
  if (AddrState[Access] == 2)
    return std::nullopt;
  return AddrMemo[Access];
}

bool MemDisambiguator::provablyDisjoint(InstrId A, InstrId B) const {
  bool Result = provablyDisjointImpl(A, B);
  // "disambig-cache" fault: hand the dependence builder a poisoned alias
  // answer, as a corrupted cache entry would.  Checked only when the
  // injector is armed so unarmed runs pay nothing per pair; fired *after*
  // any slow-path cross-check so CHECK builds validate the real answer.
  if (CheckFault && FaultInjector::instance().shouldFire("disambig-cache"))
    return !Result;
  return Result;
}

bool MemDisambiguator::provablyDisjointImpl(InstrId A, InstrId B) const {
  const Instruction &IA = F.instr(A);
  const Instruction &IB = F.instr(B);
  if (IA.isCall() || IB.isCall())
    return false;
  if (!IA.touchesMemory() || !IB.touchesMemory())
    return true; // nothing to conflict on

  // Spill slots (regalloc spill code) live outside user memory: a spill op
  // is disjoint from every ordinary load/store, and two spill ops conflict
  // only when they address the same slot of the same class.
  if (IA.isSpillCode() || IB.isSpillCode()) {
    if (!IA.isSpillCode() || !IB.isSpillCode())
      return true;
    bool FloatA = IA.opClass() == OpClass::FloatLoad ||
                  IA.opClass() == OpClass::FloatStore;
    bool FloatB = IB.opClass() == OpClass::FloatLoad ||
                  IB.opClass() == OpClass::FloatStore;
    return FloatA != FloatB || IA.imm() != IB.imm();
  }

  // Rule 1: fully resolved addresses with a common root.
  auto AddrA = resolveAddress(A);
  auto AddrB = resolveAddress(B);
  if (AddrA && AddrB) {
    bool SameRoot = AddrA->IsConst == AddrB->IsConst &&
                    (AddrA->IsConst || AddrA->RootReg == AddrB->RootReg);
    if (SameRoot && AddrA->Offset != AddrB->Offset)
      return true;
  }

  // Rule 2: same base register with provably unchanged value.
  Reg BaseA = IA.memBase(), BaseB = IB.memBase();
  if (BaseA != BaseB || IA.imm() == IB.imm())
    return false;

  auto It = RegionDefs.find(BaseA.key());
  unsigned DefsInRegion = It == RegionDefs.end() ? 0 : It->second;
  if (DefsInRegion == 0)
    return true; // base is region-invariant

  // Same block, no intervening redefinition of the base (positional scan).
  BlockId BA = Facts->BlockOf[A], BB = Facts->BlockOf[B];
  if (BA == InvalidId || BA != BB)
    return false;
  unsigned Lo = std::min(Facts->PosOf[A], Facts->PosOf[B]);
  unsigned Hi = std::max(Facts->PosOf[A], Facts->PosOf[B]);
  const std::vector<InstrId> &Instrs = F.block(BA).instrs();
  for (unsigned Pos = Lo; Pos != Hi; ++Pos)
    if (F.instr(Instrs[Pos]).definesReg(BaseA))
      return false;
  return true;
}

//===- analysis/DisambigCache.cpp - Memoized disambiguation state ----------===//

#include "analysis/DisambigCache.h"

#include "analysis/CFG.h"
#include "support/Assert.h"

using namespace gis;

std::shared_ptr<DisambigFacts> DisambigFacts::build(const Function &F,
                                                    bool BuildDom) {
  auto Facts = std::make_shared<DisambigFacts>();
  Facts->BlockOf.assign(F.numInstrs(), InvalidId);
  Facts->PosOf.assign(F.numInstrs(), 0);
  for (BlockId B = 0; B != F.numBlocks(); ++B) {
    const std::vector<InstrId> &Instrs = F.block(B).instrs();
    for (unsigned Pos = 0; Pos != Instrs.size(); ++Pos) {
      Facts->BlockOf[Instrs[Pos]] = B;
      Facts->PosOf[Instrs[Pos]] = Pos;
    }
  }

  // Single static definitions over the whole function.
  Facts->SingleDef.reserve(F.numInstrs());
  for (InstrId I = 0; I != F.numInstrs(); ++I) {
    if (Facts->BlockOf[I] == InvalidId)
      continue; // orphaned instruction (cloned, not yet placed)
    for (Reg D : F.instr(I).defs()) {
      auto [It, Inserted] = Facts->SingleDef.emplace(D.key(), I);
      if (!Inserted)
        It->second = InvalidId; // multiple definitions
    }
  }

  if (BuildDom)
    Facts->Dom = std::make_unique<DomTree>(buildCFG(F));
  return Facts;
}

namespace {

/// Content hash of a graph's node count, entry and edge lists.
Key128 graphKey(const DiGraph &G) {
  HashBuilder Lo(0xcbf29ce484222325ULL);
  HashBuilder Hi(0x9ae16a3b2f90404fULL);
  auto Feed = [&](uint64_t V) {
    Lo.addU64(V);
    Hi.addU64(V);
  };
  Feed(G.NumNodes);
  Feed(G.Entry);
  for (unsigned N = 0; N != G.NumNodes; ++N) {
    Feed(G.Succs[N].size());
    for (unsigned S : G.Succs[N])
      Feed(S);
  }
  return Key128{Lo.hash(), Hi.hash()};
}

} // namespace

void DisambigCache::noteFunctionChanged() {
  std::lock_guard<std::mutex> L(Mu);
  ++Epoch;
}

void DisambigCache::notePosChanged(const Function &F, BlockId B) {
  std::lock_guard<std::mutex> L(Mu);
  if (!Facts || FactsEpoch != Epoch)
    return; // nothing cached for this epoch; next facts() rebuilds
  const std::vector<InstrId> &Instrs = F.block(B).instrs();
  for (unsigned Pos = 0; Pos != Instrs.size(); ++Pos) {
    GIS_ASSERT(Instrs[Pos] < Facts->PosOf.size(),
               "notePosChanged on a function with new instructions");
    Facts->PosOf[Instrs[Pos]] = Pos;
  }
}

std::shared_ptr<const DisambigFacts> DisambigCache::facts(const Function &F) {
  std::lock_guard<std::mutex> L(Mu);
  if (Facts && FactsEpoch == Epoch && Facts->BlockOf.size() == F.numInstrs()) {
    ++Hits;
#ifdef GIS_SLOWPATH_CHECK
    auto Fresh = DisambigFacts::build(F, /*BuildDom=*/false);
    if (Fresh->BlockOf != Facts->BlockOf || Fresh->PosOf != Facts->PosOf ||
        Fresh->SingleDef != Facts->SingleDef)
      fatalError(__FILE__, __LINE__,
                 "slow-path check: cached disambiguation facts diverge from "
                 "a fresh derivation");
#endif
    return Facts;
  }
  ++Misses;
  Facts = DisambigFacts::build(F, /*BuildDom=*/true);
  FactsEpoch = Epoch;
  return Facts;
}

std::shared_ptr<const std::vector<BitSet>>
DisambigCache::reachability(const DiGraph &G) {
  Key128 Key = graphKey(G);
  std::lock_guard<std::mutex> L(Mu);
  auto It = Reach.find(Key);
  if (It != Reach.end()) {
    ++Hits;
#ifdef GIS_SLOWPATH_CHECK
    if (*It->second != allPairsReachability(G))
      fatalError(__FILE__, __LINE__,
                 "slow-path check: cached reachability closure diverges from "
                 "a fresh solve");
#endif
    return It->second;
  }
  ++Misses;
  auto Closure =
      std::make_shared<const std::vector<BitSet>>(allPairsReachability(G));
  Reach.emplace(Key, Closure);
  return Closure;
}

uint64_t DisambigCache::hits() const {
  std::lock_guard<std::mutex> L(Mu);
  return Hits;
}

uint64_t DisambigCache::misses() const {
  std::lock_guard<std::mutex> L(Mu);
  return Misses;
}

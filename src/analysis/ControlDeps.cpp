//===- analysis/ControlDeps.cpp - Forward control dependences -------------===//

#include "analysis/ControlDeps.h"

#include <algorithm>
#include <map>
#include <queue>

using namespace gis;

ControlDeps ControlDeps::compute(const SchedRegion &R) {
  ControlDeps CD;
  const DiGraph &G = R.forwardGraph();
  unsigned N = G.NumNodes;
  CD.Deps.assign(N, {});
  CD.Succs.assign(N, {});

  CD.Dom = std::make_shared<DomTree>(G);
  CD.PDom = std::make_shared<PostDomTree>(G, R.exitNodes());
  const PostDomTree &PDT = *CD.PDom;

  // Ferrante-Ottenstein-Warren: for every edge (A -> B) where B does not
  // postdominate A, every node on the postdominator-tree path from B up to
  // (exclusive) ipdom(A) is control dependent on (A, label of the edge).
  for (unsigned A = 0; A != N; ++A) {
    for (unsigned Label = 0; Label != G.Succs[A].size(); ++Label) {
      unsigned B = G.Succs[A][Label];
      if (PDT.postDominates(B, A))
        continue;
      unsigned Stop = PDT.ipdom(A);
      for (unsigned X = B; X != Stop; X = PDT.ipdom(X)) {
        GIS_ASSERT(X != PDT.virtualExit(),
                   "walked past the virtual exit computing control deps");
        CD.Deps[X].push_back(CDep{A, Label});
      }
    }
  }

  for (unsigned X = 0; X != N; ++X) {
    std::sort(CD.Deps[X].begin(), CD.Deps[X].end());
    CD.Deps[X].erase(std::unique(CD.Deps[X].begin(), CD.Deps[X].end()),
                     CD.Deps[X].end());
    for (const CDep &D : CD.Deps[X])
      CD.Succs[D.Controller].push_back(X);
  }
  for (unsigned A = 0; A != N; ++A) {
    std::sort(CD.Succs[A].begin(), CD.Succs[A].end());
    CD.Succs[A].erase(std::unique(CD.Succs[A].begin(), CD.Succs[A].end()),
                      CD.Succs[A].end());
  }

  // Equivalence classes: identical control-dependence sets.
  std::map<std::vector<CDep>, unsigned> ClassIds;
  CD.ClassOf.assign(N, 0);
  for (unsigned X = 0; X != N; ++X) {
    auto [It, Inserted] =
        ClassIds.emplace(CD.Deps[X], static_cast<unsigned>(ClassIds.size()));
    CD.ClassOf[X] = It->second;
    if (Inserted)
      CD.Classes.emplace_back();
    CD.Classes[It->second].push_back(X);
  }
  // Order class members by dominance: dominators first.  Within one class
  // the members are totally ordered by dominance (they lie on one
  // dominator-tree path), so sorting by dominator-tree depth suffices.
  for (std::vector<unsigned> &Members : CD.Classes)
    std::sort(Members.begin(), Members.end(),
              [&](unsigned A, unsigned B) {
                if (CD.Dom->depth(A) != CD.Dom->depth(B))
                  return CD.Dom->depth(A) < CD.Dom->depth(B);
                return A < B;
              });
  return CD;
}

std::optional<unsigned> ControlDeps::specDegree(unsigned A,
                                                unsigned B) const {
  if (A == B)
    return 0;
  // BFS over CSPDG successor edges.
  std::vector<unsigned> Dist(Succs.size(), ~0u);
  std::queue<unsigned> Work;
  Dist[A] = 0;
  Work.push(A);
  while (!Work.empty()) {
    unsigned X = Work.front();
    Work.pop();
    for (unsigned S : Succs[X]) {
      if (Dist[S] != ~0u)
        continue;
      Dist[S] = Dist[X] + 1;
      if (S == B)
        return Dist[S];
      Work.push(S);
    }
  }
  return std::nullopt;
}

//===- analysis/RegionSlice.h - Region-local analysis slice -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained analysis slice of one scheduling region: the blocks and
/// instructions the region owns, plus region-local dominator, CSPDG and
/// liveness views.  The slice is the unit of region-parallel scheduling
/// (sched/Pipeline.cpp): every analysis a region task consults is either
/// region-local or frozen at slice-build time, so independent regions of
/// one function can be scheduled concurrently without reading each other's
/// in-flight state.
///
/// Why the restricted views are exact (not approximations):
///  - Dominators: for two blocks of the same region, dominance on the
///    region's acyclic forward graph coincides with dominance on the full
///    CFG -- a reducible loop is entered only through its header, so any
///    CFG path between two region blocks that leaves the region re-enters
///    at the entry, which the forward graph models by construction.
///  - Liveness: the region's live sets satisfy the whole-function dataflow
///    equations with the live-in sets of out-of-region successor blocks
///    substituted as constants (the "frozen boundary").  The boundary
///    stays exact while only this region is edited under the scheduler's
///    legality rules: upward motion cannot cross a reaching definition
///    (flow dependence), so no frozen live-in set changes.
///  - CSPDG: control dependences are already region-local by definition
///    (computed on the region forward graph, paper Section 4.1).
///
/// `tests/region_parallel_test.cpp` property-checks all three equivalences
/// against whole-function analyses over the random-program corpus.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_REGIONSLICE_H
#define GIS_ANALYSIS_REGIONSLICE_H

#include "analysis/ControlDeps.h"
#include "analysis/Liveness.h"
#include "analysis/Region.h"

#include <array>
#include <vector>

namespace gis {

/// Region-restricted backward liveness with a frozen boundary.
///
/// The solved system is the whole-function one restricted to the region's
/// real blocks: live-out of a region block unions the live-in sets of its
/// in-region CFG successors (including the back edge to the region entry)
/// with the live-in sets of its out-of-region successors, the latter
/// captured once at build time from a whole-function Liveness.  recompute()
/// re-solves the region equations against the function's current contents,
/// which is what the scheduler needs after each motion or rename -- and it
/// touches only the region's blocks, unlike Liveness::compute.
class LivenessSlice {
public:
  LivenessSlice() = default;

  /// Captures the boundary from \p WholeLV (must be up to date for \p F)
  /// and solves the region equations.
  static LivenessSlice build(const Function &F, const SchedRegion &R,
                             const Liveness &WholeLV);

  /// Re-solves the region equations against the current contents of \p F's
  /// region blocks.  The frozen boundary is reused; the dense register
  /// universe is re-derived from the function's current counters, so
  /// registers created since build() are covered.
  void recompute(const Function &F);

  /// Exact delta update after motions/renames confined to the \p Changed
  /// region blocks -- the region-restricted mirror of
  /// Liveness::recomputeBlocks (same invariants; see analysis/Liveness.h):
  /// re-derive the edited blocks' UEVar/Kill summaries, and when one
  /// changed, re-solve only the region blocks that reach it, freezing the
  /// rest.  A grown register universe (renaming) falls back to a full
  /// recompute().  The result is bit-identical to recompute(\p F).
  Liveness::UpdateResult
  recomputeBlocks(const Function &F, const std::vector<BlockId> &Changed);

  /// True if \p B is one of the region's real blocks (the only blocks this
  /// slice can answer queries for).
  bool ownsBlock(BlockId B) const {
    return B < SlotOf.size() && SlotOf[B] >= 0;
  }

  /// True if \p R is live on exit from region block \p B.
  bool isLiveOut(BlockId B, Reg R) const;

  /// True if \p R is live on entry to region block \p B.
  bool isLiveIn(BlockId B, Reg R) const;

  /// True when both slices hold identical solutions, for the
  /// GIS_SLOWPATH_CHECK cross-check and the equivalence tests.
  bool sameSetsAs(const LivenessSlice &RHS) const {
    return ClassBase == RHS.ClassBase && Universe == RHS.Universe &&
           LiveIns == RHS.LiveIns && LiveOuts == RHS.LiveOuts;
  }

  /// Deliberately corrupts the cached live-out set of region block \p B
  /// (fault stage "liveness-delta"; see Liveness::corruptLiveOutForTest).
  void corruptLiveOutForTest(BlockId B) { LiveOuts[slotOf(B)].clear(); }

private:
  /// Rebuilds slot \p S's UEVar/Kill summary from the function's current
  /// contents; returns true when either set changed.
  bool rebuildSlotSets(const Function &F, unsigned S);

  unsigned denseIndex(Reg R) const {
    GIS_ASSERT(R.isValid(), "liveness query on invalid register");
    return ClassBase[static_cast<unsigned>(R.regClass())] + R.index();
  }
  unsigned slotOf(BlockId B) const {
    GIS_ASSERT(ownsBlock(B), "liveness slice query outside the region");
    return static_cast<unsigned>(SlotOf[B]);
  }

  std::vector<BlockId> Blocks; ///< region real blocks, layout order
  std::vector<int> SlotOf;     ///< BlockId -> slot, -1 outside
  /// Per slot: slots of in-region CFG successors (back edges included).
  std::vector<std::vector<unsigned>> InSuccs;
  /// Per slot: slots of in-region CFG predecessors (the inverse of
  /// InSuccs), for the delta path's backward affected-set walk.
  std::vector<std::vector<unsigned>> InPreds;
  /// Per slot: union of the frozen live-in sets of out-of-region CFG
  /// successors (loop exits and collapsed child-loop entries), sorted.
  /// Stored as Reg values so the set survives universe growth.
  std::vector<std::vector<Reg>> Boundary;

  std::array<unsigned, 3> ClassBase = {0, 0, 0};
  unsigned Universe = 0;
  std::vector<BitSet> LiveIns;  ///< per slot
  std::vector<BitSet> LiveOuts; ///< per slot
  std::vector<BitSet> UEVars;   ///< per slot, cached for delta updates
  std::vector<BitSet> Kills;    ///< per slot, cached for delta updates
  /// Per slot: BoundaryBits = Boundary in the current dense indexing.
  std::vector<BitSet> BoundaryBits;
};

/// One region's schedulable slice: an owning snapshot of the region shape
/// (SchedRegion), the blocks/instructions it owns, and the region-local
/// dominator, CSPDG and liveness views.
class RegionSlice {
public:
  RegionSlice() = default;

  /// Builds the slice for \p R (which must have been built on \p F in its
  /// current state).  The overload without \p WholeLV computes the
  /// whole-function liveness itself; pass it in when building slices for
  /// several regions of one function.
  static RegionSlice build(const Function &F, SchedRegion R);
  static RegionSlice build(const Function &F, SchedRegion R,
                           const Liveness &WholeLV);

  /// The region shape this slice was built from (owned copy; stays valid
  /// independently of the caller's SchedRegion).
  const SchedRegion &region() const { return R; }

  /// The region's real blocks, in layout order.
  const std::vector<BlockId> &blocks() const { return Blocks; }

  /// Ids of the instructions the region owned at build time.
  const std::vector<InstrId> &instrs() const { return Instrs; }

  bool ownsBlock(BlockId B) const { return LV.ownsBlock(B); }

  /// Region-local control dependences (the CSPDG).
  const ControlDeps &cspdg() const { return CD; }

  /// Dominators / postdominators of the region forward graph.
  const DomTree &dom() const { return CD.dom(); }
  const PostDomTree &postDom() const { return CD.postDom(); }

  /// Region-restricted liveness (frozen boundary; see LivenessSlice).
  const LivenessSlice &liveness() const { return LV; }

private:
  SchedRegion R;
  std::vector<BlockId> Blocks;
  std::vector<InstrId> Instrs;
  ControlDeps CD;
  LivenessSlice LV;
};

} // namespace gis

#endif // GIS_ANALYSIS_REGIONSLICE_H

//===- analysis/MemDisambig.h - Memory disambiguation -----------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory disambiguation for data-dependence construction (paper Section
/// 4.2: two memory-touching instructions depend on each other unless "it is
/// proven that they address different locations").  The prover is
/// deliberately simple and sound:
///
///  - addresses are resolved to (root, offset) descriptors by following
///    chains of single-definition LI / AI / LR instructions whose
///    definitions dominate both accesses;
///  - two accesses with the same root and different offsets are disjoint;
///  - two accesses off the *same base register* are disjoint when their
///    displacements differ and the base provably holds the same value at
///    both accesses (no definition of the base in the region, or both
///    accesses in one block with no intervening redefinition).
///
/// Anything unresolved is treated as aliasing.
///
/// The function-wide inputs (block/position maps, single static
/// definitions, the dominator tree) can be shared across regions and
/// passes through a DisambigCache; without one the disambiguator derives
/// them stand-alone, exactly as before.  Resolved addresses are memoized
/// per instance: the pairwise conflict loop asks for each access O(n)
/// times.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_ANALYSIS_MEMDISAMBIG_H
#define GIS_ANALYSIS_MEMDISAMBIG_H

#include "analysis/DisambigCache.h"
#include "analysis/Dominators.h"
#include "analysis/Region.h"
#include "ir/Function.h"

#include <memory>
#include <optional>
#include <unordered_map>

namespace gis {

/// Proves non-aliasing between memory instructions of one region.
class MemDisambiguator {
public:
  /// \p F must have up-to-date CFG edges.  The region scopes the
  /// "no definition of the base register" reasoning.  With \p Cache the
  /// function-wide facts come from (and are installed into) the shared
  /// memo instead of being rebuilt per region.
  MemDisambiguator(const Function &F, const SchedRegion &R,
                   DisambigCache *Cache = nullptr);

  /// True if memory instructions \p A and \p B provably access different
  /// locations.  Either instruction may be a load or store; calls are
  /// never disjoint from anything.
  bool provablyDisjoint(InstrId A, InstrId B) const;

private:
  /// A resolved address: offset relative to a root.  Root is either a
  /// constant (IsConst) or the stable value of a register (RootReg).
  struct Address {
    bool IsConst = false;
    Reg RootReg;
    int64_t Offset = 0;
  };

  bool provablyDisjointImpl(InstrId A, InstrId B) const;
  std::optional<Address> resolveAddress(InstrId Access) const;
  std::optional<Address> resolveAddressUncached(InstrId Access) const;
  std::optional<Address> resolveReg(Reg R, InstrId User, unsigned Depth) const;

  /// True if \p Def (the single definition of some register) dominates the
  /// use site \p User.
  bool defDominatesUse(InstrId Def, InstrId User) const;

  /// The function-wide dominator tree: the shared one when cached, else
  /// built on the first cross-block query (same-block queries, the common
  /// case, use positions only).
  const DomTree &funcDom() const;

  const Function &F;
  const SchedRegion &R;
  /// Shared (cached) or owned facts; Facts points at whichever is live.
  std::shared_ptr<const DisambigFacts> SharedFacts;
  std::shared_ptr<DisambigFacts> OwnFacts;
  const DisambigFacts *Facts = nullptr;
  mutable std::unique_ptr<DomTree> LazyDom;
  /// Number of definitions of each register inside the region's real
  /// blocks.
  std::unordered_map<uint32_t, unsigned> RegionDefs;
  /// resolveAddress memo, indexed by InstrId: 0 unresolved yet,
  /// 1 resolved (AddrMemo holds it), 2 resolves to nothing.
  mutable std::vector<uint8_t> AddrState;
  mutable std::vector<Address> AddrMemo;
  /// Snapshot of FaultInjector::armed() at construction: keeps the
  /// fault-injection probe off the per-pair hot path in normal runs.
  bool CheckFault = false;
};

} // namespace gis

#endif // GIS_ANALYSIS_MEMDISAMBIG_H

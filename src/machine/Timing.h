//===- machine/Timing.h - Trace-driven cycle timing simulator --*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven timing simulator realizing the paper's abstract machine:
/// in-order multi-issue over the parametric unit description, with hardware
/// interlocks enforcing the flow-dependence delays at run time (Section 2:
/// "the machine implements hardware interlocks to guarantee the delays").
///
/// The simulator substitutes for the paper's RS/6000 hardware when
/// measuring run-time improvements (experiment E3) and reproduces the
/// paper's hand cycle counts for Figures 2/5/6: the minmax loop simulates
/// to ~20-22 cycles per iteration unscheduled, ~12-13 after useful
/// scheduling and ~11-12 after speculative scheduling (experiment E1).
///
/// Issue model: instructions issue in trace (program) order; several may
/// issue in the same cycle on different (free) units; an instruction waits
/// for (a) its operands' producers to complete plus the producer/consumer
/// delay, (b) a free unit of its type, and (c) all earlier instructions to
/// have issued (in-order issue).
///
//===----------------------------------------------------------------------===//

#ifndef GIS_MACHINE_TIMING_H
#define GIS_MACHINE_TIMING_H

#include "interp/Interpreter.h"
#include "ir/Function.h"
#include "machine/BranchPredictor.h"
#include "machine/MachineDescription.h"

#include <vector>

namespace gis {

/// Result of one timing simulation.
struct TimingResult {
  uint64_t Cycles = 0;        ///< completion time of the whole trace
  uint64_t Instructions = 0;  ///< trace length
  /// Issue cycle of each trace element; filled only when requested.
  std::vector<uint64_t> IssueTimes;
  /// Per-unit-type busy cycles (sums exec times of issued instructions).
  std::vector<uint64_t> UnitBusyCycles;

  // Branch statistics; all zero unless a predictor is configured
  // (TimingSimulator::setPredictor with a kind other than None).
  uint64_t Branches = 0;          ///< conditional branches in the trace
  uint64_t Mispredicts = 0;       ///< mispredicted among them
  uint64_t BranchStallCycles = 0; ///< refetch penalty cycles charged

  /// Instructions per cycle.
  double ipc() const {
    return Cycles == 0 ? 0.0
                       : static_cast<double>(Instructions) /
                             static_cast<double>(Cycles);
  }
};

/// Trace-driven timing simulator for one machine description.
class TimingSimulator {
public:
  /// The description is copied so the simulator may outlive it.
  explicit TimingSimulator(MachineDescription MD) : MD(std::move(MD)) {}

  /// When on, TimingResult::IssueTimes records the issue cycle of every
  /// trace element (used by tests to measure steady-state loop periods).
  void recordIssueTimes(bool On) { RecordIssue = On; }

  /// Configures branch prediction.  The default (PredictorKind::None)
  /// models no branch cost at all: cycle counts stay bit-identical to the
  /// interlock-only machine.  With any other kind, a mispredicted
  /// conditional branch stalls the in-order front end until the branch
  /// resolves plus the refetch penalty.
  void setPredictor(const BranchPredictorOptions &O) { PredOpts = O; }

  /// Simulates a dynamic instruction trace (possibly spanning several
  /// functions, as recorded by the interpreter).
  TimingResult simulate(const std::vector<TraceEntry> &Trace) const;

  /// Convenience overload for single-function traces.
  TimingResult simulate(const Function &F,
                        const std::vector<InstrId> &Trace) const {
    std::vector<TraceEntry> Entries;
    Entries.reserve(Trace.size());
    for (InstrId I : Trace)
      Entries.push_back(TraceEntry{&F, I});
    return simulate(Entries);
  }

private:
  MachineDescription MD;
  bool RecordIssue = false;
  BranchPredictorOptions PredOpts;
};

/// Convenience: steady-state cycles per iteration of a loop, measured from
/// issue times \p IssueTimes of a trace in which \p MarkerPositions are the
/// trace indices of one fixed instruction per iteration (e.g. the loop-back
/// branch).  Returns the mean distance between consecutive markers over the
/// second half of the run (to skip warm-up).
double steadyStatePeriod(const std::vector<uint64_t> &IssueTimes,
                         const std::vector<size_t> &MarkerPositions);

} // namespace gis

#endif // GIS_MACHINE_TIMING_H

//===- machine/MachineDescription.cpp - Parametric machine model ----------===//

#include "machine/MachineDescription.h"

#include "support/Assert.h"
#include "support/Format.h"

using namespace gis;

MachineDescription MachineDescription::superscalar(unsigned FixedUnits,
                                                   unsigned FloatUnits,
                                                   unsigned BranchUnits) {
  GIS_ASSERT(FixedUnits >= 1 && FloatUnits >= 1 && BranchUnits >= 1,
             "a machine needs at least one unit of each type");
  MachineDescription MD;
  MD.Name = formatString("superscalar(fx=%u, fp=%u, br=%u)", FixedUnits,
                         FloatUnits, BranchUnits);
  MD.Units = {UnitType{"fixed", FixedUnits}, UnitType{"float", FloatUnits},
              UnitType{"branch", BranchUnits}};

  constexpr unsigned Fixed = 0, Float = 1, Branch = 2;
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    unsigned Unit;
    switch (opcodeInfo(Op).Class) {
    case OpClass::FloatArith:
    case OpClass::FpCompare:
      Unit = Float;
      break;
    case OpClass::Branch:
      Unit = Branch;
      break;
    case OpClass::FloatLoad:
    case OpClass::FloatStore:
      // On the RS/6000 float loads/stores go through the fixed-point unit
      // (it performs the address arithmetic).
      Unit = Fixed;
      break;
    default:
      Unit = Fixed;
      break;
    }
    MD.UnitOfOpcode[I] = Unit;
    MD.ExecTimeOfOpcode[I] = 1;
  }

  // Multi-cycle instructions (paper Section 2.1: "there are also
  // multi-cycle instructions, like multiplication, division, etc.").
  MD.setExecTime(Opcode::MUL, 5);
  MD.setExecTime(Opcode::DIV, 19);
  MD.setExecTime(Opcode::REM, 19);
  MD.setExecTime(Opcode::FD, 19);

  // The four delay types of Section 2.1.
  // 1. Delayed load: one cycle between a load and any user of its result.
  MD.addDelayRule(DelayRule{OpClass::Load, OpClass::Other,
                            /*AnyConsumer=*/true, 1});
  MD.addDelayRule(DelayRule{OpClass::FloatLoad, OpClass::Other,
                            /*AnyConsumer=*/true, 1});
  // 2. Three cycles between a fixed-point compare and its branch.
  MD.addDelayRule(DelayRule{OpClass::FixCompare, OpClass::Branch,
                            /*AnyConsumer=*/false, 3});
  // 3. One cycle between a floating-point instruction and its user.
  MD.addDelayRule(DelayRule{OpClass::FloatArith, OpClass::Other,
                            /*AnyConsumer=*/true, 1});
  // 4. Five cycles between a floating-point compare and its branch.
  MD.addDelayRule(DelayRule{OpClass::FpCompare, OpClass::Branch,
                            /*AnyConsumer=*/false, 5});
  return MD;
}

MachineDescription MachineDescription::rs6k() {
  MachineDescription MD = superscalar(1, 1, 1);
  MD.Name = "rs6k";
  return MD;
}

unsigned MachineDescription::flowDelay(Opcode Producer,
                                       Opcode Consumer) const {
  OpClass PC = opcodeInfo(Producer).Class;
  OpClass CC = opcodeInfo(Consumer).Class;
  for (const DelayRule &R : DelayRules) {
    if (R.Producer != PC)
      continue;
    if (R.AnyConsumer || R.Consumer == CC)
      return R.Cycles;
  }
  return 0;
}

//===- machine/BranchPredictor.h - Branch predictor models ------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch predictor models for the timing simulator (DESIGN.md section 16).
/// The paper's machine model charges nothing for control flow, which makes
/// speculation look free and superblock formation look pointless; real
/// superscalar front ends refetch after a mispredicted conditional branch,
/// and that refetch penalty is exactly what superblocks buy back (the hot
/// path becomes one fall-through run of code with fewer taken branches and
/// better-predicted exits).  Three models bracket the design space:
///
///  - AlwaysTaken: the weakest static predictor; a lower bound.
///  - Bimodal2Bit: the classic per-branch two-bit saturating counter table
///    (Smith, ISCA 1981) -- the realistic middle ground.
///  - ProfileOracle: the best *static* per-branch prediction, majority
///    direction from recorded edge profiles -- the upper bound any
///    profile-guided hinting could reach.
///
/// PredictorKind::None disables branch modeling entirely; the simulator's
/// cycle counts are then bit-identical to the pre-predictor model.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_MACHINE_BRANCHPREDICTOR_H
#define GIS_MACHINE_BRANCHPREDICTOR_H

#include "ir/Function.h"
#include "sched/Profile.h"

#include <cstdint>
#include <vector>

namespace gis {

enum class PredictorKind {
  None,          ///< no branch modeling (cycle counts unchanged)
  AlwaysTaken,   ///< static: every conditional branch predicted taken
  Bimodal2Bit,   ///< dynamic: per-branch 2-bit saturating counters
  ProfileOracle, ///< static: per-branch majority from the edge profile
};

struct BranchPredictorOptions {
  PredictorKind Kind = PredictorKind::None;
  /// Refetch penalty in cycles charged after a mispredicted conditional
  /// branch resolves (the next instruction cannot issue earlier).
  unsigned MispredictPenalty = 3;
  /// Bimodal table entries; must be a power of two.
  unsigned BimodalTableSize = 256;
  /// Edge profile for ProfileOracle (borrowed; may be null, in which case
  /// the oracle degrades to AlwaysTaken for unprofiled branches).
  const ProfileData *Profile = nullptr;
};

struct BranchPredictorStats {
  uint64_t Branches = 0;    ///< conditional branches observed
  uint64_t Mispredicts = 0; ///< wrong predictions among them
};

/// One predictor instance; carries the bimodal table state across a trace.
class BranchPredictor {
public:
  explicit BranchPredictor(const BranchPredictorOptions &Opts);

  bool enabled() const { return Opts.Kind != PredictorKind::None; }

  /// Predicts the conditional branch \p Instr (executed in block \p B of
  /// \p F), compares against the actual direction \p Taken, updates the
  /// predictor state, and returns true on a mispredict.
  bool observe(const Function &F, BlockId B, InstrId Instr, bool Taken);

  const BranchPredictorStats &stats() const { return Stats; }

private:
  BranchPredictorOptions Opts;
  BranchPredictorStats Stats;
  /// 2-bit saturating counters, 0..3; >= 2 predicts taken.  Initialized
  /// weakly taken (2), the conventional cold state.
  std::vector<uint8_t> Table;
};

} // namespace gis

#endif // GIS_MACHINE_BRANCHPREDICTOR_H

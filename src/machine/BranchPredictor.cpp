//===- machine/BranchPredictor.cpp - Branch predictor models ---------------===//

#include "machine/BranchPredictor.h"

#include "support/Assert.h"

#include <algorithm>

using namespace gis;

BranchPredictor::BranchPredictor(const BranchPredictorOptions &O) : Opts(O) {
  if (Opts.Kind == PredictorKind::Bimodal2Bit) {
    GIS_ASSERT(Opts.BimodalTableSize != 0 &&
                   (Opts.BimodalTableSize & (Opts.BimodalTableSize - 1)) == 0,
               "bimodal table size must be a power of two");
    Table.assign(Opts.BimodalTableSize, 2);
  }
}

namespace {

/// Deterministic branch identity hash (FNV-1a over the function name and
/// instruction id).  Pointer or std::hash based keys would vary run to run
/// and break the simulator's reproducibility.
uint32_t branchHash(const Function &F, InstrId Instr) {
  uint32_t H = 2166136261u;
  for (char C : F.name()) {
    H ^= static_cast<uint8_t>(C);
    H *= 16777619u;
  }
  for (unsigned Shift = 0; Shift != 32; Shift += 8) {
    H ^= static_cast<uint8_t>(Instr >> Shift);
    H *= 16777619u;
  }
  return H;
}

/// The block \p B falls through into, or InvalidId when its terminator
/// never falls through (unconditional branch, return).
BlockId fallthroughOf(const Function &F, BlockId B) {
  InstrId T = F.terminatorOf(B);
  if (T != InvalidId) {
    Opcode Op = F.instr(T).opcode();
    if (Op != Opcode::BT && Op != Opcode::BF)
      return InvalidId;
  }
  return F.layoutSuccessor(B);
}

} // namespace

bool BranchPredictor::observe(const Function &F, BlockId B, InstrId Instr,
                              bool Taken) {
  ++Stats.Branches;
  bool Predicted = true; // AlwaysTaken; also every fallback below
  switch (Opts.Kind) {
  case PredictorKind::None:
  case PredictorKind::AlwaysTaken:
    break;
  case PredictorKind::Bimodal2Bit: {
    uint32_t Idx = branchHash(F, Instr) & (Opts.BimodalTableSize - 1);
    Predicted = Table[Idx] >= 2;
    if (Taken)
      Table[Idx] = static_cast<uint8_t>(std::min<unsigned>(3, Table[Idx] + 1));
    else
      Table[Idx] = static_cast<uint8_t>(Table[Idx] == 0 ? 0 : Table[Idx] - 1);
    break;
  }
  case PredictorKind::ProfileOracle: {
    // Best static prediction: the branch's majority direction over the
    // recorded edge profile.  Unknown block (hand-built trace) or no
    // profile data degrades to always-taken.
    if (Opts.Profile && B != InvalidId && B < F.numBlocks()) {
      const Instruction &I = F.instr(Instr);
      uint64_t TakenW = Opts.Profile->edgeFrequency(F, B, I.target());
      BlockId Fall = fallthroughOf(F, B);
      uint64_t FallW =
          Fall == InvalidId ? 0 : Opts.Profile->edgeFrequency(F, B, Fall);
      if (TakenW || FallW)
        Predicted = TakenW >= FallW;
    }
    break;
  }
  }
  if (Predicted != Taken) {
    ++Stats.Mispredicts;
    return true;
  }
  return false;
}

//===- machine/Timing.cpp - Trace-driven cycle timing simulator -----------===//

#include "machine/Timing.h"

#include "support/Assert.h"

#include <algorithm>
#include <unordered_map>

using namespace gis;

TimingResult
TimingSimulator::simulate(const std::vector<TraceEntry> &Trace) const {
  TimingResult Result;
  Result.Instructions = Trace.size();
  Result.UnitBusyCycles.assign(MD.numUnitTypes(), 0);
  if (RecordIssue)
    Result.IssueTimes.reserve(Trace.size());

  // Next-free cycle per unit instance, grouped by unit type.
  std::vector<std::vector<uint64_t>> UnitFree(MD.numUnitTypes());
  for (unsigned T = 0; T != MD.numUnitTypes(); ++T)
    UnitFree[T].assign(MD.unitType(T).Count, 0);

  // Producer bookkeeping per register: the opcode that produced the current
  // value and the cycle the raw result completes (delays are added per
  // consumer, because they depend on the consumer's class).  Registers are
  // per-function symbolic, so the key includes the function.
  struct Producer {
    Opcode Op;
    uint64_t CompleteAt;
  };
  struct KeyHash {
    size_t operator()(const std::pair<const Function *, uint32_t> &K) const {
      return std::hash<const void *>()(K.first) * 31 +
             std::hash<uint32_t>()(K.second);
    }
  };
  std::unordered_map<std::pair<const Function *, uint32_t>, Producer, KeyHash>
      RegProducer;

  uint64_t PrevIssue = 0;
  uint64_t Completion = 0;
  BranchPredictor Pred(PredOpts);

  for (const TraceEntry &E : Trace) {
    const Function &F = *E.Fn;
    const Instruction &I = F.instr(E.Instr);
    unsigned Type = MD.unitTypeForOp(I.opcode());
    unsigned Exec = MD.execTime(I.opcode());

    // Spill slots behave like registers for flow timing: a RELOAD's value
    // is ready only when its SPILL completed.  Slot keys live above the
    // Reg::key() encoding space (class bits <= 2 keep real keys below
    // 0x30000000), with the low bit separating int from float slots.
    auto SlotKey = [](const Instruction &SI) -> uint32_t {
      bool Float = SI.opcode() == Opcode::SPILLF ||
                   SI.opcode() == Opcode::RELOADF;
      return 0x40000000u |
             (static_cast<uint32_t>(SI.imm()) << 1) | (Float ? 1u : 0u);
    };

    // (a) operands ready, with producer/consumer interlock delays.
    uint64_t Ready = 0;
    for (Reg U : I.uses()) {
      auto It = RegProducer.find({&F, U.key()});
      if (It == RegProducer.end())
        continue;
      uint64_t Avail =
          It->second.CompleteAt + MD.flowDelay(It->second.Op, I.opcode());
      Ready = std::max(Ready, Avail);
    }
    if (isReloadOpcode(I.opcode())) {
      auto It = RegProducer.find({&F, SlotKey(I)});
      if (It != RegProducer.end())
        Ready = std::max(Ready, It->second.CompleteAt);
    }

    // (c) in-order issue: not before any earlier instruction.
    uint64_t T = std::max(Ready, PrevIssue);

    // (b) a free unit of the right type (pick the earliest-free instance).
    std::vector<uint64_t> &Free = UnitFree[Type];
    size_t Best = 0;
    for (size_t K = 1; K != Free.size(); ++K)
      if (Free[K] < Free[Best])
        Best = K;
    T = std::max(T, Free[Best]);

    Free[Best] = T + Exec;
    PrevIssue = T;
    Completion = std::max(Completion, T + Exec);
    Result.UnitBusyCycles[Type] += Exec;

    for (Reg D : I.defs())
      RegProducer[{&F, D.key()}] = Producer{I.opcode(), T + Exec};
    if (I.opcode() == Opcode::SPILL || I.opcode() == Opcode::SPILLF)
      RegProducer[{&F, SlotKey(I)}] = Producer{I.opcode(), T + Exec};

    // A mispredicted conditional branch stalls the in-order front end:
    // nothing later issues before the branch resolves (T + Exec) plus the
    // refetch penalty.  Correct predictions are free -- the speculative
    // fetch down the predicted path continues uninterrupted.
    if (Pred.enabled() &&
        (I.opcode() == Opcode::BT || I.opcode() == Opcode::BF) &&
        Pred.observe(F, E.Block, E.Instr, E.BranchTaken)) {
      uint64_t Resume = T + Exec + PredOpts.MispredictPenalty;
      if (Resume > PrevIssue) {
        Result.BranchStallCycles += Resume - PrevIssue;
        PrevIssue = Resume;
      }
    }

    if (RecordIssue)
      Result.IssueTimes.push_back(T);
  }

  Result.Branches = Pred.stats().Branches;
  Result.Mispredicts = Pred.stats().Mispredicts;
  Result.Cycles = std::max(Completion, PrevIssue);
  return Result;
}

double gis::steadyStatePeriod(const std::vector<uint64_t> &IssueTimes,
                              const std::vector<size_t> &MarkerPositions) {
  GIS_ASSERT(MarkerPositions.size() >= 3,
             "need at least three iterations to measure a period");
  size_t First = MarkerPositions.size() / 2;
  size_t Last = MarkerPositions.size() - 1;
  uint64_t Start = IssueTimes.at(MarkerPositions[First]);
  uint64_t End = IssueTimes.at(MarkerPositions[Last]);
  return static_cast<double>(End - Start) / static_cast<double>(Last - First);
}

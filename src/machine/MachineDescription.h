//===- machine/MachineDescription.h - Parametric machine model -*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's parametric machine description (Section 2): a superscalar
/// machine is a collection of functional units of m types with n_1 ... n_m
/// units of each type; every instruction executes on one unit of a fixed
/// type for an integral number of cycles; pipeline constraints are integer
/// delays attached to flow-dependence edges.
///
/// The RS/6000 configuration (Section 2.1) and a family of wider
/// superscalar configurations (used by the machine-width experiment, E4 in
/// DESIGN.md) are provided as factories.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_MACHINE_MACHINEDESCRIPTION_H
#define GIS_MACHINE_MACHINEDESCRIPTION_H

#include "ir/Instruction.h"
#include "ir/Register.h"

#include <array>
#include <string>
#include <vector>

namespace gis {

/// One functional-unit type (e.g. "fixed", "float", "branch").
struct UnitType {
  std::string Name;
  unsigned Count; ///< number of identical units of this type
};

/// A delay rule: flow dependences from a producer of class \c Producer to a
/// consumer of class \c Consumer carry \c Cycles extra delay.  A rule with
/// \c AnyConsumer applies regardless of the consumer class.  First matching
/// rule wins.
struct DelayRule {
  OpClass Producer;
  OpClass Consumer; ///< ignored when AnyConsumer
  bool AnyConsumer;
  unsigned Cycles;
};

/// Parametric description of a superscalar machine.
class MachineDescription {
public:
  /// The RS/6000 model of paper Section 2.1: one fixed-point, one
  /// floating-point and one branch unit; delayed loads (1 cycle),
  /// fixed compare -> branch 3 cycles, float ops 1 cycle,
  /// float compare -> branch 5 cycles.
  static MachineDescription rs6k();

  /// An RS/6000-like machine widened to \p FixedUnits fixed-point units,
  /// \p FloatUnits floating-point units and \p BranchUnits branch units.
  /// Used for the "bigger payoffs on wider machines" experiment.
  static MachineDescription superscalar(unsigned FixedUnits,
                                        unsigned FloatUnits,
                                        unsigned BranchUnits);

  const std::string &name() const { return Name; }

  unsigned numUnitTypes() const {
    return static_cast<unsigned>(Units.size());
  }
  const UnitType &unitType(unsigned Index) const { return Units[Index]; }

  /// The unit type executing \p Op.
  unsigned unitTypeForOp(Opcode Op) const {
    return UnitOfOpcode[static_cast<unsigned>(Op)];
  }

  /// Execution time of \p Op in cycles (>= 1).
  unsigned execTime(Opcode Op) const {
    return ExecTimeOfOpcode[static_cast<unsigned>(Op)];
  }

  /// Extra delay on a flow dependence from \p Producer to \p Consumer
  /// (paper Section 2).  Zero when no rule matches.
  unsigned flowDelay(Opcode Producer, Opcode Consumer) const;

  /// Number of architectural registers of class \p C (the finite register
  /// file the allocator targets).  RS/6000: 32 GPR, 32 FPR, 8 CR.
  unsigned numRegs(RegClass C) const {
    return RegFile[static_cast<unsigned>(C)];
  }

  /// Mutators for building custom configurations (ablation experiments).
  void setName(std::string N) { Name = std::move(N); }
  void setNumRegs(RegClass C, unsigned N) {
    RegFile[static_cast<unsigned>(C)] = N;
  }
  void setExecTime(Opcode Op, unsigned Cycles) {
    ExecTimeOfOpcode[static_cast<unsigned>(Op)] = Cycles;
  }
  void setUnitCount(unsigned TypeIndex, unsigned Count) {
    Units[TypeIndex].Count = Count;
  }
  void addDelayRule(DelayRule Rule) { DelayRules.push_back(Rule); }
  void clearDelayRules() { DelayRules.clear(); }

  /// Total issue capacity (sum of unit counts); an upper bound on
  /// instructions started per cycle.
  unsigned totalUnits() const {
    unsigned N = 0;
    for (const UnitType &U : Units)
      N += U.Count;
    return N;
  }

private:
  MachineDescription() = default;

  std::string Name;
  std::vector<UnitType> Units;
  std::array<unsigned, NumOpcodes> UnitOfOpcode = {};
  std::array<unsigned, NumOpcodes> ExecTimeOfOpcode = {};
  std::vector<DelayRule> DelayRules;
  /// Architectural register-file sizes, indexed by RegClass (GPR/FPR/CR).
  std::array<unsigned, 3> RegFile = {32, 32, 8};
};

} // namespace gis

#endif // GIS_MACHINE_MACHINEDESCRIPTION_H

//===- interp/Interpreter.cpp - Executable IR semantics -------------------===//

#include "interp/Interpreter.h"

#include "support/Assert.h"
#include "support/Format.h"

using namespace gis;

ExecResult Interpreter::run(const Function &F, uint64_t MaxSteps) {
  ExecResult Result;
  Trace.clear();
  BlockCounts.assign(F.numBlocks(), 0);
  EdgeCounts.clear();
  EntryFn = &F;
  execFrame(F, EntryIntRegs, EntryFpRegs, MaxSteps, 0, Result);
  return Result;
}

void Interpreter::execFrame(const Function &F, IntFrame &IntRegs,
                            FpFrame &FpRegs, uint64_t MaxSteps,
                            unsigned Depth, ExecResult &Result) {
  auto Trap = [&](std::string Reason) {
    Result.Trapped = true;
    Result.TrapReason = std::move(Reason);
  };

  if (Depth >= MaxCallDepth) {
    Trap("call depth limit exceeded");
    return;
  }

  auto SetReg = [&](Reg R, int64_t V) { IntRegs[R.key()] = V; };
  auto GetReg = [&](Reg R) -> int64_t {
    auto It = IntRegs.find(R.key());
    return It == IntRegs.end() ? 0 : It->second;
  };
  auto SetF = [&](Reg R, double V) { FpRegs[R.key()] = V; };
  auto GetF = [&](Reg R) -> double {
    auto It = FpRegs.find(R.key());
    return It == FpRegs.end() ? 0.0 : It->second;
  };

  // Spill slots (regalloc spill code) are compiler-private, per-activation
  // storage: they never alias user memory, so the differential oracle's
  // final-heap comparison is unaffected by allocation, and they hold
  // doubles bit-exactly where STF would truncate through int64_t.
  std::unordered_map<int64_t, int64_t> IntSlots;
  std::unordered_map<int64_t, double> FpSlots;

  BlockId Cur = F.entry();
  size_t Pos = 0;
  if (&F == EntryFn)
    ++BlockCounts[Cur];

  while (true) {
    const BasicBlock &BB = F.block(Cur);

    auto EnterBlock = [&](BlockId Next) {
      if (&F == EntryFn) {
        ++BlockCounts[Next];
        ++EdgeCounts[edgeKey(Cur, Next)];
      }
      Cur = Next;
      Pos = 0;
    };

    if (Pos >= BB.instrs().size()) {
      BlockId Next = F.layoutSuccessor(Cur);
      if (Next == InvalidId) {
        Trap("control fell off the end of the function");
        return;
      }
      EnterBlock(Next);
      continue;
    }

    if (Result.InstrCount >= MaxSteps) {
      Trap("step budget exhausted");
      return;
    }

    InstrId Id = BB.instrs()[Pos];
    const Instruction &I = F.instr(Id);
    ++Result.InstrCount;
    if (TraceEnabled)
      Trace.push_back(TraceEntry{&F, Id, false, Cur});
    ++Pos;

    switch (I.opcode()) {
    case Opcode::LI:
      SetReg(I.defs()[0], I.imm());
      break;
    case Opcode::LR:
      SetReg(I.defs()[0], GetReg(I.uses()[0]));
      break;
    case Opcode::AI:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) + I.imm());
      break;
    case Opcode::A:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) + GetReg(I.uses()[1]));
      break;
    case Opcode::S:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) - GetReg(I.uses()[1]));
      break;
    case Opcode::MUL:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) * GetReg(I.uses()[1]));
      break;
    case Opcode::DIV: {
      int64_t D = GetReg(I.uses()[1]);
      if (D == 0) {
        Trap("division by zero");
        return;
      }
      SetReg(I.defs()[0], GetReg(I.uses()[0]) / D);
      break;
    }
    case Opcode::REM: {
      int64_t D = GetReg(I.uses()[1]);
      if (D == 0) {
        Trap("remainder by zero");
        return;
      }
      SetReg(I.defs()[0], GetReg(I.uses()[0]) % D);
      break;
    }
    case Opcode::AND:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) & GetReg(I.uses()[1]));
      break;
    case Opcode::OR:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) | GetReg(I.uses()[1]));
      break;
    case Opcode::XOR:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) ^ GetReg(I.uses()[1]));
      break;
    case Opcode::SL:
      SetReg(I.defs()[0],
             static_cast<int64_t>(static_cast<uint64_t>(GetReg(I.uses()[0]))
                                  << (I.imm() & 63)));
      break;
    case Opcode::SR:
      SetReg(I.defs()[0], GetReg(I.uses()[0]) >> (I.imm() & 63));
      break;
    case Opcode::NEG:
      SetReg(I.defs()[0], -GetReg(I.uses()[0]));
      break;
    case Opcode::L:
      SetReg(I.defs()[0], loadWord(GetReg(I.memBase()) + I.imm()));
      break;
    case Opcode::LU: {
      Reg Base = I.memBase();
      int64_t Addr = GetReg(Base) + I.imm();
      SetReg(I.defs()[0], loadWord(Addr));
      SetReg(Base, GetReg(Base) + I.imm());
      break;
    }
    case Opcode::ST:
      storeWord(GetReg(I.memBase()) + I.imm(), GetReg(I.uses()[0]));
      break;
    case Opcode::STU: {
      Reg Base = I.memBase();
      storeWord(GetReg(Base) + I.imm(), GetReg(I.uses()[0]));
      SetReg(Base, GetReg(Base) + I.imm());
      break;
    }
    case Opcode::LF:
      SetF(I.defs()[0],
           static_cast<double>(loadWord(GetReg(I.memBase()) + I.imm())));
      break;
    case Opcode::STF:
      storeWord(GetReg(I.memBase()) + I.imm(),
                static_cast<int64_t>(GetF(I.uses()[0])));
      break;
    case Opcode::FA:
      SetF(I.defs()[0], GetF(I.uses()[0]) + GetF(I.uses()[1]));
      break;
    case Opcode::FS:
      SetF(I.defs()[0], GetF(I.uses()[0]) - GetF(I.uses()[1]));
      break;
    case Opcode::FM:
      SetF(I.defs()[0], GetF(I.uses()[0]) * GetF(I.uses()[1]));
      break;
    case Opcode::FD:
      SetF(I.defs()[0], GetF(I.uses()[0]) / GetF(I.uses()[1]));
      break;
    case Opcode::FMA:
      SetF(I.defs()[0],
           GetF(I.uses()[0]) * GetF(I.uses()[1]) + GetF(I.uses()[2]));
      break;
    case Opcode::C:
      SetReg(I.defs()[0], crCompare(GetReg(I.uses()[0]), GetReg(I.uses()[1])));
      break;
    case Opcode::CI:
      SetReg(I.defs()[0], crCompare(GetReg(I.uses()[0]), I.imm()));
      break;
    case Opcode::FC: {
      double A = GetF(I.uses()[0]), B = GetF(I.uses()[1]);
      SetReg(I.defs()[0], A < B ? CRLt : (A > B ? CRGt : CREq));
      break;
    }
    case Opcode::B:
      EnterBlock(I.target());
      break;
    case Opcode::BT:
    case Opcode::BF: {
      int64_t CR = GetReg(I.uses()[0]);
      int64_t Mask = I.cond() == CondBit::LT
                         ? CRLt
                         : (I.cond() == CondBit::GT ? CRGt : CREq);
      bool BitSet = (CR & Mask) != 0;
      bool Taken = I.opcode() == Opcode::BT ? BitSet : !BitSet;
      if (TraceEnabled)
        Trace.back().BranchTaken = Taken;
      if (Taken) {
        EnterBlock(I.target());
      } else {
        BlockId Next = F.layoutSuccessor(Cur);
        if (Next == InvalidId) {
          Trap("conditional branch fell off the end of the function");
          return;
        }
        EnterBlock(Next);
      }
      break;
    }
    case Opcode::CALL: {
      std::vector<int64_t> Args;
      Args.reserve(I.uses().size());
      for (Reg Arg : I.uses())
        Args.push_back(GetReg(Arg));

      // Module functions first, then builtins, then "print".
      if (const Function *Callee =
              const_cast<Module &>(M).findFunction(I.callee())) {
        if (Callee->params().size() != Args.size()) {
          Trap(formatString("call to '%s' with %zu args, expected %zu",
                            I.callee().c_str(), Args.size(),
                            Callee->params().size()));
          return;
        }
        IntFrame CalleeInt;
        FpFrame CalleeFp;
        for (size_t K = 0; K != Args.size(); ++K)
          CalleeInt[Callee->params()[K].key()] = Args[K];
        ExecResult Inner;
        Inner.InstrCount = Result.InstrCount;
        Inner.Printed = std::move(Result.Printed);
        execFrame(*Callee, CalleeInt, CalleeFp, MaxSteps, Depth + 1, Inner);
        Result.InstrCount = Inner.InstrCount;
        Result.Printed = std::move(Inner.Printed);
        if (Inner.Trapped) {
          Result.Trapped = true;
          Result.TrapReason = std::move(Inner.TrapReason);
          return;
        }
        if (!I.defs().empty())
          SetReg(I.defs()[0], Inner.HasReturnValue ? Inner.ReturnValue : 0);
        break;
      }
      if (I.callee() == "print") {
        for (int64_t V : Args)
          Result.Printed.push_back(V);
        if (!I.defs().empty())
          SetReg(I.defs()[0], 0);
        break;
      }
      auto It = Builtins.find(I.callee());
      if (It == Builtins.end()) {
        Trap(formatString("call to unknown function '%s'",
                          I.callee().c_str()));
        return;
      }
      int64_t RV = It->second(Args);
      if (!I.defs().empty())
        SetReg(I.defs()[0], RV);
      break;
    }
    case Opcode::RET:
      if (!I.uses().empty()) {
        Result.HasReturnValue = true;
        Result.ReturnValue = GetReg(I.uses()[0]);
      }
      return;
    case Opcode::SPILL:
      IntSlots[I.imm()] = GetReg(I.uses()[0]);
      break;
    case Opcode::RELOAD: {
      auto It = IntSlots.find(I.imm());
      SetReg(I.defs()[0], It == IntSlots.end() ? 0 : It->second);
      break;
    }
    case Opcode::SPILLF:
      FpSlots[I.imm()] = GetF(I.uses()[0]);
      break;
    case Opcode::RELOADF: {
      auto It = FpSlots.find(I.imm());
      SetF(I.defs()[0], It == FpSlots.end() ? 0.0 : It->second);
      break;
    }
    case Opcode::NOP:
      break;
    }
  }
}

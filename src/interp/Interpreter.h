//===- interp/Interpreter.h - Executable IR semantics -----------*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the pseudo-IR.  It serves two purposes:
///
///  1. Correctness oracle: scheduling transformations must preserve the
///     observable behaviour (printed values, return value, final memory) of
///     every program; property tests execute original and scheduled programs
///     and compare.
///
///  2. Trace source: the interpreter records the dynamic instruction trace
///     that the machine timing simulator (machine/Timing.h) consumes to
///     produce cycle counts, substituting for the paper's RS/6000 hardware.
///
/// Calls between module functions are supported with per-invocation
/// register frames (arguments arrive in the callee's declared parameter
/// registers); host builtins can be registered by name, and the "print"
/// builtin is always available.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_INTERP_INTERPRETER_H
#define GIS_INTERP_INTERPRETER_H

#include "ir/Module.h"

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace gis {

/// One dynamically executed instruction (function + instruction id); the
/// function pointer disambiguates per-function instruction ids in
/// cross-function traces.
struct TraceEntry {
  const Function *Fn;
  InstrId Instr;
  /// For conditional branches: whether this execution took the branch
  /// (replayed by the timing simulator's branch predictor).
  bool BranchTaken = false;
  /// Block the instruction executed in (InvalidId for hand-built traces
  /// that never consult a predictor).
  BlockId Block = InvalidId;
};

/// Outcome of one interpreter run.
struct ExecResult {
  bool Trapped = false;       ///< division by zero, step overflow, ...
  std::string TrapReason;
  uint64_t InstrCount = 0;    ///< dynamically executed instructions
  bool HasReturnValue = false;
  int64_t ReturnValue = 0;
  std::vector<int64_t> Printed; ///< values passed to the print builtin
};

/// Reference interpreter over one Module.
class Interpreter {
public:
  using Builtin = std::function<int64_t(const std::vector<int64_t> &Args)>;

  explicit Interpreter(const Module &M) : M(M) {}

  /// Registers a host function callable via CALL.  The "print" builtin is
  /// always available and records its argument in ExecResult::Printed.
  /// Module functions take precedence over builtins of the same name.
  void registerBuiltin(const std::string &Name, Builtin Fn) {
    Builtins[Name] = std::move(Fn);
  }

  /// Pre-seeds (or inspects) the *entry frame* register state.
  void setReg(Reg R, int64_t V) { EntryIntRegs[R.key()] = V; }
  int64_t reg(Reg R) const {
    auto It = EntryIntRegs.find(R.key());
    return It == EntryIntRegs.end() ? 0 : It->second;
  }

  void setFReg(Reg R, double V) { EntryFpRegs[R.key()] = V; }
  double freg(Reg R) const {
    auto It = EntryFpRegs.find(R.key());
    return It == EntryFpRegs.end() ? 0.0 : It->second;
  }

  void storeWord(int64_t Addr, int64_t V) { Memory[Addr] = V; }
  int64_t loadWord(int64_t Addr) const {
    auto It = Memory.find(Addr);
    return It == Memory.end() ? 0 : It->second;
  }

  const std::unordered_map<int64_t, int64_t> &memory() const { return Memory; }

  /// Turns on dynamic trace recording.
  void enableTrace(bool On) { TraceEnabled = On; }
  const std::vector<TraceEntry> &trace() const { return Trace; }

  /// Per-block dynamic execution counts of the entry function, last run.
  const std::vector<uint64_t> &blockCounts() const { return BlockCounts; }

  /// Per-edge dynamic transition counts of the entry function, last run:
  /// key is (From << 32) | To, value the number of times control passed
  /// directly from block From to block To (taken branches, fall-throughs
  /// and explicit jumps all count; edges never taken are absent).  An
  /// ordered map so iteration -- and any JSON emitted from it -- is
  /// deterministic.
  const std::map<uint64_t, uint64_t> &edgeCounts() const { return EdgeCounts; }

  /// Packs/unpacks the edge-count key.
  static uint64_t edgeKey(BlockId From, BlockId To) {
    return (static_cast<uint64_t>(From) << 32) | To;
  }

  /// Executes \p F from its entry block.  Memory and the entry frame
  /// persist across runs (so callers can pre-seed state); the trace and
  /// block counts are reset per run.
  ExecResult run(const Function &F, uint64_t MaxSteps = 10'000'000);

private:
  using IntFrame = std::unordered_map<uint32_t, int64_t>;
  using FpFrame = std::unordered_map<uint32_t, double>;

  /// Executes one function in the given frame; returns through Result.
  /// Returns the function's return value when it has one.
  void execFrame(const Function &F, IntFrame &IntRegs, FpFrame &FpRegs,
                 uint64_t MaxSteps, unsigned Depth, ExecResult &Result);

  const Module &M;
  IntFrame EntryIntRegs; ///< GPR and CR of the entry frame, by Reg::key
  FpFrame EntryFpRegs;
  std::unordered_map<int64_t, int64_t> Memory;
  std::unordered_map<std::string, Builtin> Builtins;
  bool TraceEnabled = false;
  std::vector<TraceEntry> Trace;
  std::vector<uint64_t> BlockCounts;
  std::map<uint64_t, uint64_t> EdgeCounts;
  const Function *EntryFn = nullptr;

  static constexpr unsigned MaxCallDepth = 64;
};

/// Condition-register encoding shared by the interpreter and tests.
enum CRBits : int64_t {
  CRLt = 1,
  CRGt = 2,
  CREq = 4,
};

/// Compare encoding: returns the CR bits for a <=> b.
inline int64_t crCompare(int64_t A, int64_t B) {
  if (A < B)
    return CRLt;
  if (A > B)
    return CRGt;
  return CREq;
}

} // namespace gis

#endif // GIS_INTERP_INTERPRETER_H

//===- interp/DifferentialOracle.h - Execution-based oracle -----*- C++ -*-===//
//
// Part of the GIS project: a reproduction of Bernstein & Rodeh,
// "Global Instruction Scheduling for Superscalar Machines", PLDI 1991.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interpreter-based differential oracle for the transactional pipeline:
/// it executes the original and the transformed version of a function on a
/// small fixed family of deterministic inputs (parameter values plus a
/// seeded pattern over the module's global arrays) and compares every
/// observable -- traps, printed values, return value, and final nonzero
/// memory.  Any divergence means the transform changed program behaviour
/// and must be rolled back.
///
/// The oracle runs the *transformed* function against the live module, so
/// calls it makes resolve to the module's (possibly also transformed)
/// callees; mini-C call graphs are acyclic and every callee is itself
/// oracle-checked when it is transformed, so a divergence is always pinned
/// to the function under test.
///
//===----------------------------------------------------------------------===//

#ifndef GIS_INTERP_DIFFERENTIALORACLE_H
#define GIS_INTERP_DIFFERENTIALORACLE_H

#include "ir/Module.h"

#include <string>

namespace gis {

/// Outcome of one differential comparison.
enum class OracleVerdict : uint8_t {
  Match,        ///< all observables identical on every input set
  Mismatch,     ///< some observable diverged -- the transform is wrong
  Inconclusive, ///< a run hit the step budget; no verdict either way
};

/// Returns a short name for \p V ("match", "mismatch", "inconclusive").
const char *oracleVerdictName(OracleVerdict V);

struct OracleOptions {
  /// Interpreter step budget per run.  Transform-mangled control flow can
  /// loop forever; the budget turns that into an Inconclusive verdict
  /// rather than a hang.
  uint64_t MaxSteps = 500'000;
  /// Number of distinct deterministic input sets to execute.
  unsigned NumInputSets = 2;
};

struct OracleReport {
  OracleVerdict Verdict = OracleVerdict::Match;
  /// Human-readable description of the first divergence (empty on Match).
  std::string Detail;
};

/// Runs \p Original and \p Transformed on OracleOptions::NumInputSets
/// deterministic inputs and compares observables.  \p M supplies global
/// arrays and call targets; both runs share its shape but each gets a
/// fresh interpreter (no state leaks between sides or input sets).
OracleReport runDifferentialOracle(const Module &M, const Function &Original,
                                   const Function &Transformed,
                                   const OracleOptions &Opts = {});

} // namespace gis

#endif // GIS_INTERP_DIFFERENTIALORACLE_H

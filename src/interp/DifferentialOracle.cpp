//===- interp/DifferentialOracle.cpp - Execution-based oracle --------------===//

#include "interp/DifferentialOracle.h"

#include "interp/Interpreter.h"
#include "support/Format.h"

#include <map>

using namespace gis;

const char *gis::oracleVerdictName(OracleVerdict V) {
  switch (V) {
  case OracleVerdict::Match:
    return "match";
  case OracleVerdict::Mismatch:
    return "mismatch";
  case OracleVerdict::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

namespace {

/// Deterministic parameter value for parameter \p Idx of input set \p Set:
/// small, mixed-sign, distinct across sets.
int64_t paramValue(unsigned Set, unsigned Idx) {
  int64_t V = static_cast<int64_t>(Set) * 37 + static_cast<int64_t>(Idx) * 11;
  return (V % 23) - 7;
}

/// Seeds one interpreter with the input set: parameter registers plus a
/// deterministic pattern over every global array.
void seedInputs(Interpreter &I, const Module &M, const Function &F,
                unsigned Set) {
  for (unsigned Idx = 0; Idx != F.params().size(); ++Idx) {
    Reg P = F.params()[Idx];
    if (P.regClass() == RegClass::FPR)
      I.setFReg(P, static_cast<double>(paramValue(Set, Idx)) * 0.5);
    else
      I.setReg(P, paramValue(Set, Idx));
  }
  for (const GlobalArray &G : M.globals())
    for (int64_t K = 0; K != G.SizeWords; ++K)
      I.storeWord(G.Address + K * 4,
                  (G.Address + K * 7 + static_cast<int64_t>(Set) * 13) % 29 -
                      9);
}

/// The final memory with default-zero slots dropped, in address order, so
/// maps that differ only in explicitly stored zeros compare equal.
std::map<int64_t, int64_t> nonzeroMemory(const Interpreter &I) {
  std::map<int64_t, int64_t> Mem;
  for (auto [Addr, V] : I.memory())
    if (V != 0)
      Mem[Addr] = V;
  return Mem;
}

} // namespace

OracleReport gis::runDifferentialOracle(const Module &M,
                                        const Function &Original,
                                        const Function &Transformed,
                                        const OracleOptions &Opts) {
  for (unsigned Set = 0; Set != Opts.NumInputSets; ++Set) {
    Interpreter IOrig(M), ITrans(M);
    seedInputs(IOrig, M, Original, Set);
    seedInputs(ITrans, M, Transformed, Set);
    ExecResult ROrig = IOrig.run(Original, Opts.MaxSteps);
    ExecResult RTrans = ITrans.run(Transformed, Opts.MaxSteps);

    // A blown step budget (either side) says nothing about equivalence:
    // the program may simply be long-running on this input.
    if ((ROrig.Trapped && ROrig.TrapReason == "step budget exhausted") ||
        (RTrans.Trapped && RTrans.TrapReason == "step budget exhausted"))
      return {OracleVerdict::Inconclusive,
              formatString("input set %u: step budget exhausted", Set)};

    if (ROrig.Trapped != RTrans.Trapped)
      return {OracleVerdict::Mismatch,
              formatString("input set %u: original %s, transformed %s", Set,
                           ROrig.Trapped ? ROrig.TrapReason.c_str()
                                         : "ran to completion",
                           RTrans.Trapped ? RTrans.TrapReason.c_str()
                                          : "ran to completion")};
    if (ROrig.Printed != RTrans.Printed)
      return {OracleVerdict::Mismatch,
              formatString("input set %u: printed sequences diverge "
                           "(%zu values vs %zu)",
                           Set, ROrig.Printed.size(), RTrans.Printed.size())};
    if (ROrig.Trapped)
      continue; // same trap, same prints: comparable up to the fault

    if (ROrig.HasReturnValue != RTrans.HasReturnValue ||
        (ROrig.HasReturnValue && ROrig.ReturnValue != RTrans.ReturnValue))
      return {OracleVerdict::Mismatch,
              formatString("input set %u: return values diverge", Set)};
    if (nonzeroMemory(IOrig) != nonzeroMemory(ITrans))
      return {OracleVerdict::Mismatch,
              formatString("input set %u: final memory diverges", Set)};
  }
  return {OracleVerdict::Match, ""};
}

//===- examples/speculation_demo.cpp - Section 5.3 walk-through ------------===//
//
// Interactive reproduction of the paper's Section 5.3 discussion: why
// speculative motion needs more than data dependences.
//
// The example:
//
//     if (cond) x = 5; else x = 3;
//     print(x);
//
// Both assignments can be hoisted above the branch individually, but not
// both: the second would clobber the value the first made live.  The
// demo schedules the example with the live-on-exit guard on and with
// renaming enabled, and shows the Figure 6 rename rescue on the minmax
// compares (cr6 conflict).
//
//   $ ./example_speculation_demo
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/Region.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "sched/GlobalScheduler.h"
#include "workloads/Workloads.h"

#include <iostream>

using namespace gis;

namespace {

const char *Section53 = R"(
func f(r8, r9) {
B1:
  C cr0 = r8, r9
  BF B3, cr0, gt
B2:
  LI r1 = 5          ; x = 5
  B B4
B3:
  LI r1 = 3          ; x = 3
B4:
  CALL print(r1)     ; print(x)
  RET
}
)";

void scheduleAndShow(const char *Title, const char *Text,
                     GlobalSchedOptions Opts) {
  std::cout << "=== " << Title << " ===\n";
  auto M = parseModuleOrDie(Text);
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, -1);
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GlobalSchedStats Stats = GS.scheduleRegion(F, R);
  printFunction(F, std::cout);
  std::cout << "speculative motions: " << Stats.SpeculativeMotions
            << ", vetoed by live-on-exit: " << Stats.VetoedSpeculations
            << ", renames: " << Stats.Renames << "\n\n";

  // Prove correctness on both branch outcomes.
  for (int64_t R8 : {1, 9}) {
    Interpreter I(*M);
    I.setReg(F.params()[0], R8);
    I.setReg(F.params()[1], 5);
    ExecResult E = I.run(F);
    std::cout << "  r8=" << R8 << " -> prints " << E.Printed.at(0)
              << (E.Printed.at(0) == (R8 > 5 ? 5 : 3) ? "  (correct)"
                                                      : "  (WRONG!)")
            << "\n";
  }
  std::cout << "\n";
}

} // namespace

int main() {
  std::cout << "Paper Section 5.3: \"it is apparent that both of them are "
               "not allowed to move\"\n(into B1) \"since a wrong value may "
               "be printed in B4.\"  Data dependences do\nnot prevent the "
               "motion; the dynamically maintained live-on-exit sets do.\n\n";

  GlobalSchedOptions Spec;
  Spec.Level = SchedLevel::Speculative;
  Spec.EnableRenaming = false;
  scheduleAndShow("x=5 / x=3 with the live-on-exit guard (no renaming)",
                  Section53, Spec);

  std::cout << "Note: exactly one assignment moved; the second was vetoed "
               "because x (r1)\nbecame live on exit from B1 after the "
               "first motion.  Renaming cannot rescue\nit here -- the "
               "value escapes to B4.\n\n";

  // The Figure 6 situation: the conflict is a compare result consumed in
  // the candidate's own block, so renaming *does* rescue it.
  std::cout << "Contrast with the paper's Figure 6: I12's cr6 conflicts "
               "with I5's after\nI5 moves, but the value is block-local, "
               "so the scheduler renames it:\n\n";
  auto M = minmaxFigure2Module();
  Function &F = *M->functions()[0];
  LoopInfo LI = LoopInfo::compute(F);
  SchedRegion R = SchedRegion::build(F, LI, 0);
  GlobalSchedOptions Opts;
  Opts.Level = SchedLevel::Speculative;
  GlobalScheduler GS(MachineDescription::rs6k(), Opts);
  GlobalSchedStats Stats = GS.scheduleRegion(F, R);
  printFunction(F, std::cout);
  std::cout << "speculative motions: " << Stats.SpeculativeMotions
            << ", renames: " << Stats.Renames
            << "  (the second hoisted compare now writes a fresh CR)\n";
  return 0;
}
